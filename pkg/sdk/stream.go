package sdk

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"shmd/internal/trace"
	"shmd/internal/wire"
)

// Stream pipelines detect requests over the client's multiplexed
// connection with a bounded in-flight window: Submit blocks when the
// window is full (backpressure), completed requests surface on
// Results in completion order. One stream mirrors one monitored
// process's continuous window feed.
type Stream struct {
	cl  *Client
	ctx context.Context
	// sem bounds in-flight requests.
	sem chan struct{}
	// seq numbers submissions so a consumer can reorder if it cares.
	seq     atomic.Uint64
	results chan StreamResult
	wg      sync.WaitGroup
	closed  atomic.Bool
}

// StreamResult is one submitted request's outcome. Every accepted
// Submit produces exactly one StreamResult — lost connections surface
// as Err (ErrConnLost), never as silence.
type StreamResult struct {
	// Seq is the submission's 1-based sequence number.
	Seq     uint64
	Verdict wire.Verdict
	Err     error
}

// DetectStream opens a pipelined detect stream. maxInFlight bounds
// concurrent requests (<=0 means 16). Cancel ctx or call Close to end
// the stream; Results closes once every in-flight request resolves.
func (cl *Client) DetectStream(ctx context.Context, maxInFlight int) *Stream {
	if maxInFlight <= 0 {
		maxInFlight = 16
	}
	return &Stream{
		cl:      cl,
		ctx:     ctx,
		sem:     make(chan struct{}, maxInFlight),
		results: make(chan StreamResult, maxInFlight),
	}
}

// Submit enqueues one request, blocking while the in-flight window is
// full. It returns the submission's sequence number, or an error if
// the stream's context ended or the stream was closed (the request
// was NOT submitted in that case).
func (st *Stream) Submit(req wire.DetectRequest) (uint64, error) {
	if st.closed.Load() {
		return 0, ErrClosed
	}
	select {
	case st.sem <- struct{}{}:
	case <-st.ctx.Done():
		return 0, st.ctx.Err()
	}
	if st.closed.Load() {
		<-st.sem
		return 0, ErrClosed
	}
	seq := st.seq.Add(1)
	st.wg.Add(1)
	go func() {
		defer func() { <-st.sem; st.wg.Done() }()
		v, err := st.cl.Detect(st.ctx, req)
		st.results <- StreamResult{Seq: seq, Verdict: v, Err: err}
	}()
	return seq, nil
}

// Results delivers completed requests. The channel closes after Close
// (or context cancellation) once every in-flight request resolves.
func (st *Stream) Results() <-chan StreamResult { return st.results }

// Close stops new submissions and closes Results once in-flight
// requests resolve. The consumer must keep draining Results until it
// closes.
func (st *Stream) Close() {
	if !st.closed.CompareAndSwap(false, true) {
		return
	}
	go func() {
		st.wg.Wait()
		close(st.results)
	}()
}

// WindowStream is a long-lived sliding-window detection stream (wire
// STREAM frames): the client feeds raw windows as they are captured
// and the server re-scores the trailing detection period every stride
// windows, without the client resending history.
//
// Every push carries the stream's label, stride, and tenant tag, so a
// stream transparently re-opens after a reconnect — with an empty
// server-side window buffer, since that state lived on the lost
// connection. Streams talk directly to a backend; routers refuse
// STREAM frames.
type WindowStream struct {
	cl     *Client
	id     uint32
	label  string
	stride uint16
	tenant string
	closed atomic.Bool
}

// OpenWindowStream creates a window stream for one monitored program.
// label is echoed in verdict result IDs as "label#N" (N = the window
// index the re-scoring triggered at). stride <= 0 selects the server's
// per-tenant default. The stream inherits the client's Options.Tenant.
// No frame is sent until the first Push.
func (cl *Client) OpenWindowStream(label string, stride int) *WindowStream {
	ws := &WindowStream{
		cl:    cl,
		id:    cl.streamID.Add(1),
		label: label,
	}
	if stride > 0 && stride <= int(^uint16(0)) {
		ws.stride = uint16(stride)
	}
	ws.tenant = cl.opts.Tenant
	return ws
}

// push round-trips one STREAM frame and maps the reply.
func (ws *WindowStream) push(ctx context.Context, req wire.StreamRequest) ([]wire.VerdictResult, error) {
	payload, err := wire.AppendStreamRequest(nil, req)
	if err != nil {
		return nil, err
	}
	f, err := ws.cl.roundTrip(ctx, wire.FrameStream, payload)
	if err != nil {
		return nil, err
	}
	switch f.Type {
	case wire.FrameVerdict:
		v, err := wire.DecodeVerdict(f.Payload)
		if err != nil {
			return nil, err
		}
		return v.Results, nil
	case wire.FrameError:
		e, decErr := wire.DecodeErrorFrame(f.Payload)
		if decErr != nil {
			return nil, decErr
		}
		return nil, typedError(&e)
	default:
		return nil, fmt.Errorf("sdk: unexpected %v response to stream append", f.Type)
	}
}

// Push appends windows to the stream and returns any re-scorings they
// triggered (empty when the windows only buffered). A tenant-QoS shed
// comes back as *ErrRateLimited with nothing buffered server-side —
// the caller retries the same windows after the hint.
func (ws *WindowStream) Push(ctx context.Context, windows []trace.WindowCounts) ([]wire.VerdictResult, error) {
	if ws.closed.Load() {
		return nil, ErrClosed
	}
	return ws.push(ctx, wire.StreamRequest{
		StreamID: ws.id,
		ID:       ws.label,
		Stride:   ws.stride,
		Tenant:   ws.tenant,
		Windows:  windows,
	})
}

// Close tears the stream's server-side state down. Idempotent; the
// stream refuses pushes afterwards.
func (ws *WindowStream) Close(ctx context.Context) error {
	if !ws.closed.CompareAndSwap(false, true) {
		return nil
	}
	_, err := ws.push(ctx, wire.StreamRequest{
		StreamID: ws.id,
		ID:       ws.label,
		Tenant:   ws.tenant,
		Close:    true,
	})
	return err
}
