package sdk

import (
	"context"
	"sync"
	"sync/atomic"

	"shmd/internal/wire"
)

// Stream pipelines detect requests over the client's multiplexed
// connection with a bounded in-flight window: Submit blocks when the
// window is full (backpressure), completed requests surface on
// Results in completion order. One stream mirrors one monitored
// process's continuous window feed.
type Stream struct {
	cl  *Client
	ctx context.Context
	// sem bounds in-flight requests.
	sem chan struct{}
	// seq numbers submissions so a consumer can reorder if it cares.
	seq     atomic.Uint64
	results chan StreamResult
	wg      sync.WaitGroup
	closed  atomic.Bool
}

// StreamResult is one submitted request's outcome. Every accepted
// Submit produces exactly one StreamResult — lost connections surface
// as Err (ErrConnLost), never as silence.
type StreamResult struct {
	// Seq is the submission's 1-based sequence number.
	Seq     uint64
	Verdict wire.Verdict
	Err     error
}

// DetectStream opens a pipelined detect stream. maxInFlight bounds
// concurrent requests (<=0 means 16). Cancel ctx or call Close to end
// the stream; Results closes once every in-flight request resolves.
func (cl *Client) DetectStream(ctx context.Context, maxInFlight int) *Stream {
	if maxInFlight <= 0 {
		maxInFlight = 16
	}
	return &Stream{
		cl:      cl,
		ctx:     ctx,
		sem:     make(chan struct{}, maxInFlight),
		results: make(chan StreamResult, maxInFlight),
	}
}

// Submit enqueues one request, blocking while the in-flight window is
// full. It returns the submission's sequence number, or an error if
// the stream's context ended or the stream was closed (the request
// was NOT submitted in that case).
func (st *Stream) Submit(req wire.DetectRequest) (uint64, error) {
	if st.closed.Load() {
		return 0, ErrClosed
	}
	select {
	case st.sem <- struct{}{}:
	case <-st.ctx.Done():
		return 0, st.ctx.Err()
	}
	if st.closed.Load() {
		<-st.sem
		return 0, ErrClosed
	}
	seq := st.seq.Add(1)
	st.wg.Add(1)
	go func() {
		defer func() { <-st.sem; st.wg.Done() }()
		v, err := st.cl.Detect(st.ctx, req)
		st.results <- StreamResult{Seq: seq, Verdict: v, Err: err}
	}()
	return seq, nil
}

// Results delivers completed requests. The channel closes after Close
// (or context cancellation) once every in-flight request resolves.
func (st *Stream) Results() <-chan StreamResult { return st.results }

// Close stops new submissions and closes Results once in-flight
// requests resolve. The consumer must keep draining Results until it
// closes.
func (st *Stream) Close() {
	if !st.closed.CompareAndSwap(false, true) {
		return
	}
	go func() {
		st.wg.Wait()
		close(st.results)
	}()
}
