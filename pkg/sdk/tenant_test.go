package sdk_test

// Tests for the SDK's tenant surface: the Dial-time identity riding
// the client HELLO and every payload tag, the typed rate-limit error
// with its machine-readable hint, and the sliding-window stream
// helper.

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"shmd/internal/serve"
	"shmd/internal/tenant"
	"shmd/internal/trace"
	"shmd/internal/wire"
	"shmd/pkg/sdk"
)

// startTenantWireServer boots a wire server with the given tenancy
// config and a frozen clock (no bucket refill: admission counts are
// exact).
func startTenantWireServer(t *testing.T, specs ...tenant.Spec) string {
	t.Helper()
	at := time.Unix(1700000000, 0)
	srv, err := serve.New(newDetector(t), serve.Config{
		Pool:            serve.PoolConfig{Size: 2, Seed: 1, ErrorRate: 0.1},
		QueueDepth:      64,
		JitterSeed:      1,
		ShutdownTimeout: 5 * time.Second,
		Tenancy: &tenant.Config{
			Tenants: specs,
			Now:     func() time.Time { return at },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.ServeWire(ctx, ln) }()
	var once sync.Once
	t.Cleanup(func() {
		once.Do(func() {
			cancel()
			if err := <-done; err != nil {
				t.Errorf("ServeWire: %v", err)
			}
			srv.Close()
		})
	})
	return ln.Addr().String()
}

// TestClientTenantIdentity pins the SDK tenant contract end to end:
// Options.Tenant tags every detect (verdicts echo it back), and once
// the quota runs dry the client gets *ErrRateLimited carrying the
// server's Retry-After hint — machine-readable because the SDK's
// HELLO opted the connection into v1.1 tails.
func TestClientTenantIdentity(t *testing.T) {
	addr := startTenantWireServer(t, tenant.Spec{ID: "acme", Class: tenant.Realtime, Rate: 1, Burst: 2})
	cl, err := sdk.Dial(addr, sdk.Options{JitterSeed: 1, Tenant: "acme", Class: "realtime"})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		v, err := cl.Detect(ctx, detectRequest(t, i))
		if err != nil {
			t.Fatalf("detect %d: %v", i, err)
		}
		if v.Tenant != "acme" {
			t.Fatalf("detect %d: verdict tenant = %q, want acme", i, v.Tenant)
		}
	}
	_, err = cl.Detect(ctx, detectRequest(t, 2))
	var rl *sdk.ErrRateLimited
	if !errors.As(err, &rl) {
		t.Fatalf("over-quota detect error = %v, want *sdk.ErrRateLimited", err)
	}
	if rl.RetryAfter <= 0 {
		t.Errorf("RetryAfter = %v, want > 0 (extended connection)", rl.RetryAfter)
	}
	var frame *wire.ErrorFrame
	if !errors.As(err, &frame) || frame.Code != wire.CodeOverloaded {
		t.Errorf("underlying frame = %+v, want wrapped 429 ErrorFrame", frame)
	}
}

// TestDialRejectsBadClass pins early validation of the class advisory.
func TestDialRejectsBadClass(t *testing.T) {
	if _, err := sdk.Dial("127.0.0.1:1", sdk.Options{Class: "platinum"}); err == nil {
		t.Fatal("bad class accepted")
	}
}

// TestWindowStreamHelper pins the stream helper against a live server:
// pushes buffer server-side, re-scorings come back labelled
// "label#window", close is clean, and a closed stream refuses pushes.
func TestWindowStreamHelper(t *testing.T) {
	ws := startWireServer(t, "127.0.0.1:0")
	cl, err := sdk.Dial(ws.addr, sdk.Options{JitterSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	prog, err := trace.NewProgram(trace.Trojan, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	windows, err := prog.Trace(5, 256)
	if err != nil {
		t.Fatal(err)
	}

	st := cl.OpenWindowStream("cam", 2)
	results, err := st.Push(ctx, windows[:3])
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].ID != "cam#2" {
		t.Fatalf("push 1 results = %+v, want one cam#2", results)
	}
	// Window 3 left one window pending; window 4 completes the stride.
	if results, err = st.Push(ctx, windows[3:4]); err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].ID != "cam#4" {
		t.Fatalf("push 2 results = %+v, want one cam#4", results)
	}
	// One window since the last re-scoring: buffers, acked empty.
	if results, err = st.Push(ctx, windows[4:5]); err != nil || len(results) != 0 {
		t.Fatalf("push 3 = %+v, %v, want empty buffer ack", results, err)
	}
	if err := st.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := st.Close(ctx); err != nil {
		t.Fatalf("re-close: %v", err)
	}
	if _, err := st.Push(ctx, windows[:1]); !errors.Is(err, sdk.ErrClosed) {
		t.Fatalf("push after close = %v, want ErrClosed", err)
	}
}
