package sdk_test

// Torture tests for the SDK's connection lifecycle, run under -race
// in CI: server death mid-stream, drain honoring, context
// cancellation, and many concurrent streams on one client.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"shmd/internal/fann"
	"shmd/internal/features"
	"shmd/internal/hmd"
	"shmd/internal/serve"
	"shmd/internal/trace"
	"shmd/internal/wire"
	"shmd/pkg/sdk"
)

// newDetector synthesizes the deterministic untrained detector the
// serve tests use: arbitrary but stable decisions.
func newDetector(t testing.TB) *hmd.HMD {
	t.Helper()
	n, err := fann.New(fann.Config{
		Layers: []int{features.DimInstrFreq, 8, 1},
		Hidden: fann.SigmoidSymmetric,
		Output: fann.Sigmoid,
		Seed:   7,
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := hmd.FromNetwork(n, hmd.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// wireServer is one SHMDWIRE server instance tests can kill and
// resurrect on a pinned address.
type wireServer struct {
	srv  *serve.Server
	addr string
	stop func()
}

// startWireServer boots a detection server with a SHMDWIRE listener on
// addr ("127.0.0.1:0" picks a port; a previous instance's address pins
// it for resurrection).
func startWireServer(t testing.TB, addr string) *wireServer {
	t.Helper()
	srv, err := serve.New(newDetector(t), serve.Config{
		Pool:            serve.PoolConfig{Size: 2, Seed: 1, ErrorRate: 0.1},
		QueueDepth:      64,
		ShutdownTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.ServeWire(ctx, ln) }()
	var once sync.Once
	ws := &wireServer{srv: srv, addr: ln.Addr().String()}
	ws.stop = func() {
		once.Do(func() {
			cancel()
			if err := <-done; err != nil {
				t.Errorf("ServeWire: %v", err)
			}
			srv.Close()
		})
	}
	t.Cleanup(ws.stop)
	return ws
}

// detectRequest builds a deterministic single-program request.
func detectRequest(t testing.TB, index int) wire.DetectRequest {
	t.Helper()
	prog, err := trace.NewProgram(trace.Trojan, index, 1)
	if err != nil {
		t.Fatal(err)
	}
	windows, err := prog.Trace(2, 256)
	if err != nil {
		t.Fatal(err)
	}
	return wire.DetectRequest{Programs: []wire.DetectProgram{{
		ID:      fmt.Sprintf("prog-%d", index),
		Windows: windows,
	}}}
}

// TestStreamSurvivesServerDeath kills the server mid-stream and
// resurrects it on the same address: every accepted submission must
// produce exactly one result (lost connections surface as typed
// errors, never silence), sequence numbers must be unique, and the
// stream must make progress again after the reconnect.
func TestStreamSurvivesServerDeath(t *testing.T) {
	ws := startWireServer(t, "127.0.0.1:0")
	cl, err := sdk.Dial(ws.addr, sdk.Options{
		JitterSeed:    1,
		ReconnectBase: 5 * time.Millisecond,
		ReconnectMax:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const total = 24
	req := detectRequest(t, 0)
	st := cl.DetectStream(context.Background(), 4)
	seen := make(map[uint64]int)
	okBeforeKill, okAfterKill := 0, 0
	var killed atomic.Bool
	results := 0

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for res := range st.Results() {
			results++
			seen[res.Seq]++
			if res.Err == nil {
				if killed.Load() {
					okAfterKill++
				} else {
					okBeforeKill++
				}
			}
		}
	}()

	// Submissions run in the background: the first third completes
	// against the live server; the rest are held until the kill, then
	// pile into the outage — the in-flight window fills with requests
	// riding the SDK's reconnect loop and Submit blocks until the
	// revival frees slots.
	killedCh := make(chan struct{})
	submitDone := make(chan struct{})
	go func() {
		defer close(submitDone)
		for i := 0; i < total; i++ {
			if i == total/3 {
				<-killedCh
			}
			if _, err := st.Submit(req); err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
		}
	}()

	time.Sleep(100 * time.Millisecond) // let the first third complete...
	ws.stop()                          // ...then kill the server mid-stream...
	killed.Store(true)
	close(killedCh)
	time.Sleep(200 * time.Millisecond) // ...let submissions pile into the outage...
	startWireServer(t, ws.addr)        // ...and resurrect it on the same address.

	select {
	case <-submitDone:
	case <-time.After(30 * time.Second):
		t.Fatal("submissions never drained after the server came back")
	}
	st.Close()
	wg.Wait()

	if results != total {
		t.Fatalf("%d results for %d submissions — requests lost or duplicated", results, total)
	}
	for seq, n := range seen {
		if n != 1 {
			t.Errorf("seq %d delivered %d times", seq, n)
		}
	}
	if okAfterKill == 0 {
		t.Error("no successful detections after the server came back — reconnect never happened")
	}
	if okBeforeKill == 0 {
		t.Error("no successful detections before the kill — the kill timing tested nothing")
	}
}

// TestDrainHonored pins GOAWAY semantics end to end: a request in
// flight when the server starts draining completes successfully, and
// the drained connection is not reused — the next request dials fresh.
func TestDrainHonored(t *testing.T) {
	ws := startWireServer(t, "127.0.0.1:0")
	cl, err := sdk.Dial(ws.addr, sdk.Options{
		JitterSeed:    1,
		ReconnectBase: 5 * time.Millisecond,
		ReconnectMax:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Stall the pool so a detect is in flight when the drain starts.
	slotA, err := ws.srv.Pool().Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	slotB, err := ws.srv.Pool().Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	req := detectRequest(t, 0)
	inflight := make(chan error, 1)
	go func() {
		_, err := cl.Detect(context.Background(), req)
		inflight <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the DETECT land server-side

	go ws.stop() // drain: GOAWAY broadcast, in-flight waits for the pool
	time.Sleep(50 * time.Millisecond)
	ws.srv.Pool().Release(slotA)
	ws.srv.Pool().Release(slotB)
	if err := <-inflight; err != nil {
		t.Fatalf("in-flight request lost to the drain: %v", err)
	}

	// The old connection is draining/dead; a new request must dial a
	// fresh one — resurrect the server to answer it.
	ws.stop() // wait for the full shutdown before rebinding
	startWireServer(t, ws.addr)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := cl.Detect(ctx, req); err != nil {
		t.Fatalf("post-drain request failed: %v", err)
	}
}

// TestContextCancellationReleasesConnection pins that an abandoned
// request frees its correlation slot without poisoning the
// connection: the cancel returns promptly and later requests on the
// same client succeed.
func TestContextCancellationReleasesConnection(t *testing.T) {
	ws := startWireServer(t, "127.0.0.1:0")
	cl, err := sdk.Dial(ws.addr, sdk.Options{JitterSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Stall the pool so the request cannot complete before the cancel.
	slotA, err := ws.srv.Pool().Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	slotB, err := ws.srv.Pool().Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = cl.Detect(ctx, detectRequest(t, 0))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled detect error = %v, want context.Canceled", err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("cancel took %v — request held the caller hostage", waited)
	}
	ws.srv.Pool().Release(slotA)
	ws.srv.Pool().Release(slotB)

	// Same client, same connection: the abandoned correlation id must
	// not confuse later traffic (its late verdict is dropped).
	for i := 0; i < 3; i++ {
		if _, err := cl.Detect(context.Background(), detectRequest(t, i)); err != nil {
			t.Fatalf("post-cancel detect %d: %v", i, err)
		}
	}
	if err := cl.Ping(context.Background()); err != nil {
		t.Fatalf("post-cancel ping: %v", err)
	}
}

// TestManyConcurrentStreams multiplexes 64 streams over one client
// connection under the race detector: every stream's submissions all
// resolve, with no cross-stream interference.
func TestManyConcurrentStreams(t *testing.T) {
	ws := startWireServer(t, "127.0.0.1:0")
	cl, err := sdk.Dial(ws.addr, sdk.Options{JitterSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const streams = 64
	const perStream = 4
	var wg sync.WaitGroup
	errs := make(chan error, streams*perStream)
	for s := 0; s < streams; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			st := cl.DetectStream(context.Background(), 2)
			var drained sync.WaitGroup
			drained.Add(1)
			got := 0
			go func() {
				defer drained.Done()
				for res := range st.Results() {
					got++
					// Typed server rejections (queue full under 128
					// concurrent requests) are resolved results; only
					// transport failures are wrong here.
					var ef *wire.ErrorFrame
					if res.Err != nil && !errors.As(res.Err, &ef) {
						errs <- fmt.Errorf("stream %d seq %d: %w", s, res.Seq, res.Err)
					}
				}
			}()
			for i := 0; i < perStream; i++ {
				if _, err := st.Submit(detectRequest(t, s%4)); err != nil {
					errs <- fmt.Errorf("stream %d submit %d: %w", s, i, err)
				}
			}
			st.Close()
			drained.Wait()
			if got != perStream {
				errs <- fmt.Errorf("stream %d: %d results for %d submissions", s, got, perStream)
			}
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
