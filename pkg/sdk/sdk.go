// Package sdk is the Go client for the SHMDWIRE binary detect
// protocol (PROTOCOL.md): a thin, connection-owning SDK over a
// long-running detection engine.
//
// One Client owns one multiplexed connection. Every request gets a
// client-wide monotonic correlation id — ids are never reused, so a
// response can never be delivered to the wrong waiter, even across
// reconnects. A dedicated reader goroutine demultiplexes response
// frames to their waiting callers; any number of goroutines may call
// Detect concurrently and their frames interleave safely on the one
// connection.
//
// The Client reconnects with seeded equal-jitter backoff when the
// connection dies between requests. Requests in flight when the
// connection dies fail with ErrConnLost — the SDK never silently
// re-dispatches a detection that may already be running server-side;
// retry policy belongs to the caller, who knows whether the work is
// idempotent. A server GOAWAY marks the connection draining: in-flight
// requests finish, new requests dial a fresh connection.
package sdk

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"shmd/internal/backoff"
	"shmd/internal/tenant"
	"shmd/internal/wire"
)

// ErrConnLost marks a request that was in flight when its connection
// died. The detection may or may not have run server-side; the caller
// decides whether to retry.
var ErrConnLost = errors.New("sdk: connection lost with request in flight")

// ErrClosed marks use of a closed Client.
var ErrClosed = errors.New("sdk: client closed")

// ErrRateLimited is the typed rejection for a tenant-QoS shed (wire
// code 429): the tenant's quota, concurrency cap, or a load-shedding
// rule refused the request. It wraps the underlying *wire.ErrorFrame,
// so errors.As against either type works.
type ErrRateLimited struct {
	// RetryAfter is the server's machine-readable backoff hint, zero
	// when the peer predates the v1.1 retry tail (callers fall back to
	// their own backoff).
	RetryAfter time.Duration
	frame      *wire.ErrorFrame
}

// Error names the shed and its hint.
func (e *ErrRateLimited) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("sdk: rate limited (retry after %s): %s", e.RetryAfter, e.frame.Msg)
	}
	return "sdk: rate limited: " + e.frame.Msg
}

// Unwrap exposes the underlying wire error frame.
func (e *ErrRateLimited) Unwrap() error { return e.frame }

// typedError maps a server ERROR frame to the SDK's typed errors.
func typedError(e *wire.ErrorFrame) error {
	if e.Code == wire.CodeOverloaded {
		return &ErrRateLimited{RetryAfter: time.Duration(e.RetryAfterSec) * time.Second, frame: e}
	}
	return e
}

// Options tunes a Client. The zero value is usable.
type Options struct {
	// DialTimeout bounds each connection attempt, handshake included
	// (default 5s).
	DialTimeout time.Duration
	// MaxFramePayload bounds incoming frame payloads
	// (default wire.DefaultMaxFramePayload).
	MaxFramePayload int
	// ReconnectBase/ReconnectMax bound the equal-jitter reconnect
	// backoff (defaults 50ms / 2s).
	ReconnectBase time.Duration
	ReconnectMax  time.Duration
	// JitterSeed seeds the reconnect jitter (0 = from the clock; tests
	// pin a seed).
	JitterSeed int64
	// Tenant is the client's tenant identity. When set, every
	// connection announces it in a v1.1 client HELLO and every DETECT
	// and STREAM payload is tagged with it — per-frame tags survive
	// relays (routers forward payloads verbatim but not connection
	// state), so quota lands on the right tenant end to end.
	Tenant string
	// Class is the client's priority-class advisory ("realtime",
	// "standard", or "batch"), announced in the HELLO metadata. Relays
	// use it to order brownout shedding; the backend's registry stays
	// authoritative for the real class. Invalid values fail Dial.
	Class string
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.DialTimeout == 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.MaxFramePayload == 0 {
		o.MaxFramePayload = wire.DefaultMaxFramePayload
	}
	if o.ReconnectBase == 0 {
		o.ReconnectBase = 50 * time.Millisecond
	}
	if o.ReconnectMax == 0 {
		o.ReconnectMax = 2 * time.Second
	}
	return o
}

// Client is a SHMDWIRE detect client. Safe for concurrent use.
type Client struct {
	addr   string
	opts   Options
	jitter *backoff.Jitter
	// corr issues client-wide monotonic correlation ids, never reused
	// across requests or reconnects.
	corr atomic.Uint64
	// streamID issues window-stream ids, unique client-wide so they are
	// unique on whichever connection a stream's frames land on.
	streamID atomic.Uint32
	closed   atomic.Bool

	mu   sync.Mutex
	conn *clientConn
}

// clientConn is one live connection plus its demux state.
type clientConn struct {
	c *wire.Conn

	mu       sync.Mutex
	inflight map[uint64]chan wire.Frame
	// draining is set by a server GOAWAY: no new requests board this
	// connection, in-flight ones finish.
	draining atomic.Bool
	// dead closes when the reader exits; err holds the reason. once
	// makes fail idempotent — the reader, a failed writer, and Close can
	// race to report the death.
	once sync.Once
	dead chan struct{}
	err  error
}

// Dial connects to a SHMDWIRE server and verifies the handshake. The
// initial dial fails fast (no retries) so misconfiguration surfaces
// immediately; reconnects after a drop use backoff.
func Dial(addr string, opts Options) (*Client, error) {
	opts = opts.withDefaults()
	if opts.Class != "" {
		if _, err := tenant.ParseClass(opts.Class); err != nil {
			return nil, fmt.Errorf("sdk: %w", err)
		}
	}
	seed := opts.JitterSeed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	cl := &Client{addr: addr, opts: opts, jitter: backoff.New(seed)}
	cc, err := cl.connect()
	if err != nil {
		return nil, err
	}
	cl.conn = cc
	return cl, nil
}

// connect opens one connection and starts its reader. A configured
// tenant identity or class advisory is announced in a v1.1 client
// HELLO before any request boards, which also opts the connection into
// extension tails (machine-readable Retry-After on shed ERRORs).
func (cl *Client) connect() (*clientConn, error) {
	c, err := wire.Dial(cl.addr, cl.opts.DialTimeout, cl.opts.MaxFramePayload)
	if err != nil {
		return nil, err
	}
	if cl.opts.Tenant != "" || cl.opts.Class != "" {
		meta := make(map[string]string, 2)
		if cl.opts.Tenant != "" {
			meta[wire.MetaTenant] = cl.opts.Tenant
		}
		if cl.opts.Class != "" {
			meta[wire.MetaClass] = cl.opts.Class
		}
		hello := wire.AppendHello(nil, wire.Hello{
			Version:  wire.ProtoVersion,
			MaxFrame: uint32(cl.opts.MaxFramePayload),
			Meta:     meta,
		})
		if err := c.WriteFrame(wire.Frame{Type: wire.FrameHello, Payload: hello}); err != nil {
			c.Close()
			return nil, fmt.Errorf("sdk: sending HELLO: %w", err)
		}
	}
	cc := &clientConn{
		c:        c,
		inflight: make(map[uint64]chan wire.Frame),
		dead:     make(chan struct{}),
	}
	go cc.readLoop()
	return cc, nil
}

// readLoop demultiplexes response frames to their waiters until the
// connection dies, then fails every remaining waiter with ErrConnLost.
func (cc *clientConn) readLoop() {
	for {
		f, err := cc.c.ReadFrame()
		if err != nil {
			var tooBig *wire.TooLargeError
			if errors.As(err, &tooBig) {
				// The stream is still synchronized; the oversized frame's
				// waiter (if any) learns its fate as a typed failure.
				cc.deliver(wire.Frame{Type: wire.FrameError, Corr: tooBig.Corr,
					Payload: wire.AppendErrorFrame(nil, wire.ErrorFrame{Code: wire.CodeTooLarge, Msg: err.Error()})})
				continue
			}
			cc.fail(err)
			return
		}
		switch f.Type {
		case wire.FrameVerdict, wire.FrameError, wire.FramePong, wire.FrameHealth:
			cc.deliver(f)
		case wire.FrameGoAway:
			cc.draining.Store(true)
		case wire.FrameHello:
			// The server's greeting; nothing to correlate.
		default:
			// Forward compatibility: skip frames we don't understand.
		}
	}
}

// deliver routes one response frame to its registered waiter. The
// response channel is buffered, so a waiter that gave up (context
// cancelled) never blocks the reader.
func (cc *clientConn) deliver(f wire.Frame) {
	cc.mu.Lock()
	ch, ok := cc.inflight[f.Corr]
	if ok {
		delete(cc.inflight, f.Corr)
	}
	cc.mu.Unlock()
	if ok {
		ch <- f
	}
}

// fail marks the connection dead and releases every waiter.
func (cc *clientConn) fail(err error) {
	cc.once.Do(func() {
		cc.mu.Lock()
		waiters := cc.inflight
		cc.inflight = nil
		cc.err = err
		cc.mu.Unlock()
		close(cc.dead)
		cc.c.Close()
		for _, ch := range waiters {
			close(ch) // a closed response channel reads as ErrConnLost
		}
	})
}

// register adds a waiter for corr. It fails if the connection already
// died (the caller will grab a fresh connection and try again).
func (cc *clientConn) register(corr uint64, ch chan wire.Frame) error {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.inflight == nil {
		return ErrConnLost
	}
	cc.inflight[corr] = ch
	return nil
}

// unregister abandons a waiter (context cancelled). The connection
// stays healthy; a late response for corr is dropped by deliver.
func (cc *clientConn) unregister(corr uint64) {
	cc.mu.Lock()
	if cc.inflight != nil {
		delete(cc.inflight, corr)
	}
	cc.mu.Unlock()
}

// alive reports whether the connection can board new requests.
func (cc *clientConn) alive() bool {
	select {
	case <-cc.dead:
		return false
	default:
		return !cc.draining.Load()
	}
}

// getConn returns a boardable connection, reconnecting with jittered
// backoff until ctx expires.
func (cl *Client) getConn(ctx context.Context) (*clientConn, error) {
	if cl.closed.Load() {
		return nil, ErrClosed
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.conn != nil && cl.conn.alive() {
		return cl.conn, nil
	}
	prev := cl.conn
	for attempt := 0; ; attempt++ {
		if cl.closed.Load() {
			return nil, ErrClosed
		}
		cc, err := cl.connect()
		if err == nil {
			cl.conn = cc
			if prev != nil && prev.draining.Load() {
				// Let the drained connection finish its in-flight work,
				// then release it.
				go prev.closeWhenIdle()
			}
			return cc, nil
		}
		select {
		case <-time.After(cl.jitter.Backoff(cl.opts.ReconnectBase, cl.opts.ReconnectMax, attempt)):
		case <-ctx.Done():
			return nil, fmt.Errorf("sdk: reconnecting to %s: %w (last dial error: %v)", cl.addr, ctx.Err(), err)
		}
	}
}

// closeWhenIdle closes a draining connection once its in-flight
// requests have all been answered (or it dies on its own).
func (cc *clientConn) closeWhenIdle() {
	for {
		select {
		case <-cc.dead:
			return
		case <-time.After(10 * time.Millisecond):
		}
		cc.mu.Lock()
		idle := len(cc.inflight) == 0
		cc.mu.Unlock()
		if idle {
			cc.fail(errors.New("sdk: connection drained"))
			return
		}
	}
}

// roundTrip sends one frame and waits for its correlated response.
func (cl *Client) roundTrip(ctx context.Context, t wire.FrameType, payload []byte) (wire.Frame, error) {
	cc, err := cl.getConn(ctx)
	if err != nil {
		return wire.Frame{}, err
	}
	corr := cl.corr.Add(1)
	ch := make(chan wire.Frame, 1)
	if err := cc.register(corr, ch); err != nil {
		return wire.Frame{}, err
	}
	if err := cc.c.WriteFrame(wire.Frame{Type: t, Corr: corr, Payload: payload}); err != nil {
		cc.unregister(corr)
		cc.fail(err)
		return wire.Frame{}, fmt.Errorf("%w: %v", ErrConnLost, err)
	}
	select {
	case f, ok := <-ch:
		if !ok {
			return wire.Frame{}, ErrConnLost
		}
		return f, nil
	case <-ctx.Done():
		// Release the correlation slot; the connection itself stays
		// healthy for other requests.
		cc.unregister(corr)
		return wire.Frame{}, ctx.Err()
	}
}

// Detect runs one detect request and returns the verdict. A request
// without its own tenant tag inherits the client's Options.Tenant. A
// server-side rejection (validation, overload, drain) comes back as a
// *wire.ErrorFrame carrying its typed code; a tenant-QoS shed comes
// back as *ErrRateLimited.
func (cl *Client) Detect(ctx context.Context, req wire.DetectRequest) (wire.Verdict, error) {
	if req.Tenant == "" {
		req.Tenant = cl.opts.Tenant
	}
	payload, err := wire.AppendDetectRequest(nil, req)
	if err != nil {
		return wire.Verdict{}, err
	}
	f, err := cl.roundTrip(ctx, wire.FrameDetect, payload)
	if err != nil {
		return wire.Verdict{}, err
	}
	switch f.Type {
	case wire.FrameVerdict:
		return wire.DecodeVerdict(f.Payload)
	case wire.FrameError:
		e, decErr := wire.DecodeErrorFrame(f.Payload)
		if decErr != nil {
			return wire.Verdict{}, decErr
		}
		return wire.Verdict{}, typedError(&e)
	default:
		return wire.Verdict{}, fmt.Errorf("sdk: unexpected %v response", f.Type)
	}
}

// Ping round-trips a liveness probe.
func (cl *Client) Ping(ctx context.Context) error {
	f, err := cl.roundTrip(ctx, wire.FramePing, nil)
	if err != nil {
		return err
	}
	if f.Type != wire.FramePong {
		return fmt.Errorf("sdk: unexpected %v response to ping", f.Type)
	}
	return nil
}

// Health fetches the server's health report (the same JSON body
// /healthz serves, decoded into the caller's structure of choice).
func (cl *Client) Health(ctx context.Context) (json.RawMessage, error) {
	f, err := cl.roundTrip(ctx, wire.FrameHealthReq, nil)
	if err != nil {
		return nil, err
	}
	switch f.Type {
	case wire.FrameHealth:
		return json.RawMessage(f.Payload), nil
	case wire.FrameError:
		e, decErr := wire.DecodeErrorFrame(f.Payload)
		if decErr != nil {
			return nil, decErr
		}
		return nil, &e
	default:
		return nil, fmt.Errorf("sdk: unexpected %v response to health request", f.Type)
	}
}

// Close tears the client down. In-flight requests fail with
// ErrConnLost.
func (cl *Client) Close() error {
	if !cl.closed.CompareAndSwap(false, true) {
		return nil
	}
	cl.mu.Lock()
	cc := cl.conn
	cl.conn = nil
	cl.mu.Unlock()
	if cc != nil {
		cc.fail(ErrClosed)
	}
	return nil
}
