// Resilience: run the Stochastic-HMD on a hostile operating point and
// watch the session supervisor ride through it. The paper (Section IX)
// holds the detection core just above crash voltage, where real
// silicon drifts with temperature, MSR writes fail, and the regulator
// can die. This demo scripts exactly those events against the chaos
// environment and shows the supervisor retrying, recalibrating, and —
// only when the hardware is gone for good — degrading to flagged
// nominal-voltage detection instead of going dark.
//
//	go run ./examples/resilience
package main

import (
	"fmt"
	"log"

	"shmd/internal/chaos"
	"shmd/internal/core"
	"shmd/internal/dataset"
	"shmd/internal/faults"
	"shmd/internal/hmd"
	"shmd/internal/rng"
	"shmd/internal/volt"
)

func main() {
	// 1. Corpus and baseline detector, as in the quickstart.
	data, err := dataset.Generate(dataset.QuickConfig(1))
	if err != nil {
		log.Fatal(err)
	}
	split, err := data.ThreeFold(0)
	if err != nil {
		log.Fatal(err)
	}
	detector, err := hmd.Train(data.Select(split.VictimTrain), hmd.Config{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Hostile hardware: the ideal regulator wrapped in a chaos
	// environment. Probabilistic rules stay disarmed — this demo
	// scripts every event so the story is deterministic.
	reg, err := volt.NewRegulator(volt.PlaneCore, volt.NewDeviceProfile(0))
	if err != nil {
		log.Fatal(err)
	}
	env, err := chaos.NewEnv(reg, chaos.Config{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	inj, err := faults.NewInjector(0, nil, rng.NewRand(3, 0x5BD))
	if err != nil {
		log.Fatal(err)
	}
	protected, err := core.NewWithHardware(detector, env, inj, core.Options{ErrorRate: 0.1})
	if err != nil {
		log.Fatal(err)
	}

	// 3. The self-healing supervisor: canary every other detection so
	// drift is caught quickly in this short demo.
	sup, err := core.NewSupervisor(protected, core.SupervisorConfig{
		CanaryEvery: 2,
		CanaryMuls:  6000,
	})
	if err != nil {
		log.Fatal(err)
	}
	windows := data.Programs[0].Windows

	detect := func(label string) {
		v, err := sup.DetectProgram(windows)
		if err != nil {
			log.Fatal(err)
		}
		mode := "protected"
		if v.Unprotected {
			mode = "UNPROTECTED"
		}
		fmt.Printf("  %-28s malware=%-5v score=%.4f [%s] depth %.1f mV, plane nominal=%v\n",
			label, v.Malware, v.Score, mode, sup.Session().Depth(), sup.Session().AtNominal())
	}

	fmt.Printf("operating point: %.4f error rate at %.1f mV undervolt, %.0f °C\n\n",
		sup.TargetRate(), sup.Session().Depth(), env.Temperature())

	fmt.Println("phase 1 — healthy environment:")
	detect("detection")
	detect("detection")

	fmt.Println("\nphase 2 — burst of transient MSR write failures:")
	if err := env.Trigger(chaos.Rule{Kind: chaos.TransientMSR, Duration: 3}); err != nil {
		log.Fatal(err)
	}
	detect("detection (through burst)")
	h := sup.Health()
	fmt.Printf("  supervisor absorbed the burst: %d retries, state %v\n", h.Retries, h.State)

	fmt.Println("\nphase 3 — thermal excursion (+40 °C) drifts the fault rate:")
	if err := env.Trigger(chaos.Rule{Kind: chaos.ThermalExcursion, Magnitude: 40, Duration: 10000}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  die now at %.0f °C; silicon would fault at %.4f instead of %.4f\n",
		env.Temperature(),
		env.Profile().ErrorRate(sup.Session().Depth(), env.Temperature()),
		sup.TargetRate())
	detect("detection (canary fires)")
	detect("detection (back in band)")
	h = sup.Health()
	fmt.Printf("  canaries %d, drifts caught %d, recalibrations %d -> new depth %.1f mV\n",
		h.Canaries, h.Drifts, h.Recalibrations, sup.Session().Depth())
	observed, err := sup.Session().ObserveRate(8000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  observed fault rate after self-healing: %.4f (target %.4f)\n",
		observed, sup.TargetRate())

	fmt.Println("\nphase 4 — the regulator dies permanently:")
	if err := env.Trigger(chaos.Rule{Kind: chaos.PermanentMSR}); err != nil {
		log.Fatal(err)
	}
	detect("detection (breaker trips)")
	detect("detection (degraded)")
	detect("detection (degraded)")

	h = sup.Health()
	fmt.Printf("\nfinal health: state=%v detections=%d protected=%d unprotected=%d\n",
		h.State, h.Detections, h.Protected, h.Unprotected)
	fmt.Printf("              retries=%d trips=%d recoveries=%d recalibrations=%d\n",
		h.Retries, h.Trips, h.Recoveries, h.Recalibrations)
	ev := env.Events()
	fmt.Printf("chaos events: writes=%d transients=%d excursions=%d permanents=%d\n",
		ev.Writes, ev.Transients, ev.Excursions, ev.Permanents)
	fmt.Println("\nevery request returned a decision; unprotected ones are flagged so")
	fmt.Println("downstream consumers know the moving-target defense was absent.")
}
