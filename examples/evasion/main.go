// Evasion: the full black-box attack of the paper's threat model, run
// against both the baseline HMD and the Stochastic-HMD.
//
// The attacker (1) reverse-engineers the victim by training a proxy
// MLP on the victim's observable per-window verdicts, (2) crafts
// evasive malware by injecting instructions until the proxy says
// benign, and (3) deploys it against the live victim.
//
//	go run ./examples/evasion
package main

import (
	"fmt"
	"log"

	"shmd/internal/attack"
	"shmd/internal/core"
	"shmd/internal/dataset"
	"shmd/internal/hmd"
	"shmd/internal/isa"
)

func main() {
	data, err := dataset.Generate(dataset.QuickConfig(1))
	if err != nil {
		log.Fatal(err)
	}
	split, err := data.ThreeFold(0)
	if err != nil {
		log.Fatal(err)
	}
	baseline, err := hmd.Train(data.Select(split.VictimTrain), hmd.Config{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	stochastic, err := core.New(baseline.WithFreshBuffers(), core.Options{ErrorRate: 0.1, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}

	attackerData := data.Select(split.AttackerTrain)
	targets := data.Select(data.MalwareOf(split.Test))[:25]

	runCampaign := func(name string, victim hmd.Detector) {
		fmt.Printf("\n=== attacking the %s ===\n", name)
		proxy, err := attack.ReverseEngineer(victim, attackerData, attack.REConfig{Kind: attack.ProxyMLP, Seed: 3})
		if err != nil {
			log.Fatal(err)
		}
		eff, err := attack.Effectiveness(proxy, victim, data.Select(split.Test))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("reverse-engineering effectiveness: %.1f%%\n", 100*eff)

		results, err := attack.EvadeAll(proxy, targets, attack.EvasionConfig{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("evasive variants that fool the proxy: %d/%d\n", len(results), len(targets))
		if len(results) == 0 {
			return
		}

		// Show one crafted sample: which instructions were injected.
		r := results[0]
		fmt.Printf("example: %s diluted by %.0f%% with:", r.Program.Program.Name, 100*r.Overhead)
		for op, n := range r.Injection {
			if n > 0 {
				fmt.Printf(" %s×%d", isa.Catalog()[op].Mnemonic, n)
			}
		}
		fmt.Println()

		trans, err := attack.Transferability(results, victim)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("evasive malware that evades the victim:  %.1f%%\n", 100*trans)
		fmt.Printf("evasive malware caught by the victim:    %.1f%%\n", 100*(1-trans))
	}

	runCampaign("baseline HMD", baseline)
	runCampaign("Stochastic-HMD (er=0.1)", stochastic)

	fmt.Println("\nThe stochastic victim resists on both fronts: its noisy labels")
	fmt.Println("blur the attacker's proxy, and its moving decision boundary")
	fmt.Println("re-catches minimally-evasive samples at detection time.")
}
