// Quickstart: train a baseline hardware malware detector, protect it
// with undervolting (Stochastic-HMD), and classify programs.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"shmd/internal/core"
	"shmd/internal/dataset"
	"shmd/internal/hmd"
)

func main() {
	// 1. Synthesize the evaluation corpus (a scaled-down version of
	// the paper's 3000 malware + 600 benign programs) and split it
	// into the three folds of the threat model.
	data, err := dataset.Generate(dataset.QuickConfig(1))
	if err != nil {
		log.Fatal(err)
	}
	split, err := data.ThreeFold(0)
	if err != nil {
		log.Fatal(err)
	}
	malware, benign := data.Counts()
	fmt.Printf("corpus: %d malware + %d benign programs\n", malware, benign)

	// 2. Train the baseline HMD — a FANN-style MLP over per-window
	// instruction-frequency features.
	detector, err := hmd.Train(data.Select(split.VictimTrain), hmd.Config{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	c := hmd.Evaluate(detector, data.Select(split.Test))
	fmt.Printf("baseline HMD:   accuracy %.1f%%  FPR %.1f%%  FNR %.1f%%\n",
		100*c.Accuracy(), 100*c.FPR(), 100*c.FNR())

	// 3. Protect it: same pre-trained model, undervolted inference.
	// No retraining, no model change — just a voltage knob calibrated
	// to the paper's 10% error-rate operating point.
	protected, err := core.New(detector, core.Options{ErrorRate: 0.1, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Stochastic-HMD: supply voltage %.3f V (error rate %.2f)\n",
		protected.SupplyVoltage(), protected.ErrorRate())
	sc := hmd.Evaluate(protected, data.Select(split.Test))
	fmt.Printf("Stochastic-HMD: accuracy %.1f%%  FPR %.1f%%  FNR %.1f%%\n",
		100*sc.Accuracy(), 100*sc.FPR(), 100*sc.FNR())

	// 4. Classify a few programs; repeated stochastic detections show
	// the moving-target behaviour on the score.
	fmt.Println("\nsample detections (3 stochastic runs each):")
	for _, idx := range split.Test[:6] {
		p := data.Programs[idx]
		fmt.Printf("  %-22s truth=%-5v scores:", p.Program.Name, p.IsMalware())
		for run := 0; run < 3; run++ {
			dec := protected.DetectProgram(p.Windows)
			fmt.Printf(" %.3f", dec.Score)
		}
		fmt.Println()
	}
}
