// RHMD comparison: the Section VII-C / VIII head-to-head between
// Stochastic-HMD and the four RHMD constructions — accuracy, storage,
// latency, and resilience to the evasion pipeline.
//
//	go run ./examples/rhmdcompare
package main

import (
	"fmt"
	"log"

	"shmd/internal/attack"
	"shmd/internal/core"
	"shmd/internal/dataset"
	"shmd/internal/hmd"
	"shmd/internal/power"
	"shmd/internal/rhmd"
	"shmd/internal/volt"
)

func main() {
	data, err := dataset.Generate(dataset.QuickConfig(1))
	if err != nil {
		log.Fatal(err)
	}
	split, err := data.ThreeFold(0)
	if err != nil {
		log.Fatal(err)
	}
	victimTrain := data.Select(split.VictimTrain)
	attackerTrain := data.Select(split.AttackerTrain)
	test := data.Select(split.Test)
	targets := data.Select(data.MalwareOf(split.Test))[:25]

	baseline, err := hmd.Train(victimTrain, hmd.Config{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	stochastic, err := core.New(baseline.WithFreshBuffers(), core.Options{ErrorRate: 0.1, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}

	cpu, lat := power.DefaultCPU(), power.DefaultLatency()
	macs := baseline.Fixed().NumMuls()

	fmt.Println("defense        models  accuracy  evasive-detected  storage   latency")
	report := func(name string, victim hmd.Detector, models int, storage int64) {
		acc := hmd.Evaluate(victim, test).Accuracy()

		proxy, err := attack.ReverseEngineer(victim, attackerTrain, attack.REConfig{Kind: attack.ProxyMLP, Seed: 3})
		if err != nil {
			log.Fatal(err)
		}
		results, err := attack.EvadeAll(proxy, targets, attack.EvasionConfig{})
		if err != nil {
			log.Fatal(err)
		}
		detected := 1.0
		if len(results) > 0 {
			detected, err = attack.DetectionRate(results, victim)
			if err != nil {
				log.Fatal(err)
			}
		}

		var cost power.Report
		if models == 1 {
			cost, err = power.StochasticCost(cpu, lat, macs, volt.SupplyVoltageAt(130))
		} else {
			cost, err = power.RHMDCost(cpu, lat, macs, models)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %-7d %6.1f%%   %8.1f%%         %6.1f KB  %v\n",
			name, models, 100*acc, 100*detected, float64(storage)/1024, cost.Time)
	}

	for _, construction := range rhmd.Constructions() {
		r, err := rhmd.Train(construction, victimTrain, rhmd.Config{TrainSeed: 4, SwitchSeed: 5})
		if err != nil {
			log.Fatal(err)
		}
		n, err := construction.NumDetectors()
		if err != nil {
			log.Fatal(err)
		}
		report(construction.String(), r, n, r.StorageBytes())
	}
	report("Stochastic-HMD", stochastic, 1, baseline.Network().SavedSize())

	savings, err := rhmd.StorageSavings(2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nEq. (1): Stochastic-HMD saves %.0f%% of RHMD-2F's model storage,\n", 100*savings)
	fmt.Println("runs one detector instead of an ensemble, and gets its randomness")
	fmt.Println("from the supply voltage rather than from extra models.")
}
