// Powersave: the deployment calibration flow of Section IX — sweep the
// undervolt depth on a device, measure accuracy and power at each
// point, and pick the operating voltage that maximizes robustness
// under an accuracy-loss budget.
//
//	go run ./examples/powersave
package main

import (
	"fmt"
	"log"

	"shmd/internal/core"
	"shmd/internal/dataset"
	"shmd/internal/hmd"
	"shmd/internal/power"
	"shmd/internal/volt"
)

func main() {
	data, err := dataset.Generate(dataset.QuickConfig(1))
	if err != nil {
		log.Fatal(err)
	}
	split, err := data.ThreeFold(0)
	if err != nil {
		log.Fatal(err)
	}
	detector, err := hmd.Train(data.Select(split.VictimTrain), hmd.Config{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	test := data.Select(split.Test)
	baseAcc := hmd.Evaluate(detector, test).Accuracy()

	cpu := power.DefaultCPU()
	profile := volt.DefaultProfile()
	const accuracyBudget = 0.02 // tolerate at most 2 points of loss

	fmt.Printf("baseline accuracy: %.1f%% at %.2f V (%.2f W)\n\n",
		100*baseAcc, volt.NominalVoltage, cpu.NominalPower())
	fmt.Println("depth(mV)  voltage  error-rate  accuracy  power   saving")

	bestDepth, bestSaving := 0.0, 0.0
	for depth := 100.0; depth <= 170; depth += 10 {
		s, err := core.New(detector.WithFreshBuffers(), core.Options{
			UndervoltMV: depth, Seed: uint64(depth),
		})
		if err != nil {
			log.Fatal(err)
		}
		acc := hmd.Evaluate(s, test).Accuracy()
		v := volt.SupplyVoltageAt(depth)
		p, err := cpu.PowerAt(v)
		if err != nil {
			log.Fatal(err)
		}
		saving, err := cpu.SavingsAt(v)
		if err != nil {
			log.Fatal(err)
		}
		marker := ""
		if baseAcc-acc <= accuracyBudget {
			if saving > bestSaving {
				bestDepth, bestSaving = depth, saving
			}
		} else {
			marker = "  (over accuracy budget)"
		}
		fmt.Printf("  −%3.0f     %.3f V   %.4f     %5.1f%%   %.2f W  %5.1f%%%s\n",
			depth, v, profile.ErrorRate(depth, volt.ReferenceTempC),
			100*acc, p, 100*saving, marker)
	}

	fmt.Printf("\nselected operating point: −%.0f mV (%.3f V), %.1f%% power saving within the %.0f%%-loss budget\n",
		bestDepth, volt.SupplyVoltageAt(bestDepth), 100*bestSaving, 100*accuracyBudget)

	// Temperature drift: the regulator recalibrates the depth to hold
	// the error rate as the die heats up (Section IX).
	s, err := core.New(detector.WithFreshBuffers(), core.Options{UndervoltMV: bestDepth, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	target := s.ErrorRate()
	fmt.Printf("\ntemperature compensation at a fixed %.4f error rate:\n", target)
	for _, temp := range []float64{35, 49, 65, 80} {
		if err := s.SetTemperature(temp); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %2.0f °C → undervolt −%.1f mV (%.3f V)\n",
			temp, volt.DepthAtVoltage(s.SupplyVoltage()), s.SupplyVoltage())
	}
}
