# Stochastic-HMDs reproduction — build & verification entry points.
#
#   make build    tier-1 build
#   make test     tier-1 tests
#   make race     suite under the race detector
#   make verify   vet + build + test + race, in that order
#   make bench    A/B inference benchmarks -> BENCH_inference.json
#
# The race pass is part of `verify` because the deployment layer
# (core.Session / core.Supervisor / chaos.Env) is explicitly
# concurrency-safe and its tests exercise concurrent detections.
#
# internal/experiments is excluded from the race pass only: it is the
# single-goroutine figure-regression harness (no concurrency to
# check) and its full-retraining tests exceed the 10-minute package
# timeout under the race detector. It still runs in `make test`.

GO ?= go

.PHONY: build test race vet verify bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $$($(GO) list ./... | grep -v /internal/experiments)

vet:
	$(GO) vet ./...

verify: vet build test race
	@echo "verify: OK"

# bench regenerates BENCH_inference.json: ns/op, muls/s and allocs/op
# for the fused vs scalar exact kernels and the skip-ahead vs
# per-multiplication Bernoulli fault injectors, plus the headline
# speedup ratios.
bench:
	$(GO) run ./cmd/bench -count 3 -out BENCH_inference.json
