# Stochastic-HMDs reproduction — build & verification entry points.
#
#   make build    tier-1 build
#   make test     tier-1 tests
#   make race     suite under the race detector
#   make verify   vet + build + test + race, in that order
#   make bench    A/B inference benchmarks -> BENCH_inference.json
#
# The race pass is part of `verify` because the deployment layer
# (core.Session / core.Supervisor / chaos.Env / serve.Pool) is
# explicitly concurrency-safe and its tests exercise concurrent
# detections.
#
# The race pass runs every package with -short: internal/experiments
# skips its multi-proxy attack campaigns there (they would exceed the
# 10-minute package timeout under race instrumentation) but still runs
# the concurrency-bearing figure tests — Fig2a/Fig2b drive the sharded
# parallel evaluators. The full campaigns run race-free in `make test`.

GO ?= go
SOAK_DURATION ?= 30s
SOAK_REPORT ?= soak_report.json

.PHONY: build test race vet verify bench soak

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

vet:
	$(GO) vet ./...

verify: vet build test race
	@echo "verify: OK"

# bench regenerates BENCH_inference.json: ns/op, muls/s and allocs/op
# for the fused vs scalar exact kernels and the skip-ahead vs
# per-multiplication Bernoulli fault injectors, plus the headline
# speedup ratios.
bench:
	$(GO) run ./cmd/bench -count 3 -out BENCH_inference.json

# soak chaos-soaks the full detection service under the race detector:
# concurrent clients against a real listener while a scripted storm
# injects faults (including one permanent regulator death). Asserts
# zero double-checkouts, bounded 5xx, and that every quarantined slot
# respawned; writes $(SOAK_REPORT).
soak:
	$(GO) run -race ./cmd/shmd soak -duration $(SOAK_DURATION) -report $(SOAK_REPORT)
