# Stochastic-HMDs reproduction — build & verification entry points.
#
#   make build    tier-1 build
#   make test     tier-1 tests
#   make race     suite under the race detector
#   make verify   vet + build + test + race, in that order
#   make bench    A/B inference benchmarks -> BENCH_inference.json
#
# The race pass is part of `verify` because the deployment layer
# (core.Session / core.Supervisor / chaos.Env / serve.Pool) is
# explicitly concurrency-safe and its tests exercise concurrent
# detections.
#
# The race pass runs every package with -short: internal/experiments
# skips its multi-proxy attack campaigns there (they would exceed the
# 10-minute package timeout under race instrumentation) but still runs
# the concurrency-bearing figure tests — Fig2a/Fig2b drive the sharded
# parallel evaluators. The full campaigns run race-free in `make test`.

GO ?= go
SOAK_DURATION ?= 30s
SOAK_REPORT ?= soak_report.json
SOAK_FLAGS ?=
FLEET_SOAK_FLAGS ?=
TENANT_SOAK_FLAGS ?=
ROLLOUT_SOAK_FLAGS ?=
STATICCHECK_VERSION ?= 2024.1.1

.PHONY: build test race vet verify bench soak fleet-soak tenant-soak rollout-soak conform lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

vet:
	$(GO) vet ./...

verify: vet build test race
	@echo "verify: OK"

# bench regenerates BENCH_inference.json: ns/op, muls/s and allocs/op
# for the fused vs scalar exact kernels and the skip-ahead vs
# per-multiplication Bernoulli fault injectors, plus the headline
# speedup ratios.
bench:
	$(GO) run ./cmd/bench -count 3 -out BENCH_inference.json

# conform runs the statistical conformance suite: chi-square/KS
# goodness-of-fit of the skip-ahead injector (scalar and span-planned
# batch paths) against the closed-form geometric gap law and the Fig 1
# bit-location model, scalar/bulk/batched homogeneity, and the SPRT
# detection-rate checks against their pinned golden value. Fixed seeds:
# deterministic in CI; a fresh seed would pass with probability > 98%
# (alpha 1e-3 per check, <20 checks).
conform:
	$(GO) test ./internal/conform -count=1 -v

# lint runs staticcheck and govulncheck via `go run`, so neither tool
# needs to be preinstalled; both resolve through the module proxy and
# therefore need network (CI always has it — offline dev boxes should
# rely on `make vet`).
lint:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...
	$(GO) run golang.org/x/vuln/cmd/govulncheck@latest ./...

# soak chaos-soaks the full detection service under the race detector:
# concurrent clients against a real listener while a scripted storm
# injects faults (including one permanent regulator death). Asserts
# zero double-checkouts, bounded 5xx, and that every quarantined slot
# respawned; writes $(SOAK_REPORT).
soak:
	$(GO) run -race ./cmd/shmd soak -duration $(SOAK_DURATION) -report $(SOAK_REPORT) $(SOAK_FLAGS)

# fleet-soak chaos-soaks the routed fleet topology under the race
# detector: the router over three real backend listeners, a transient
# fault storm across all of them, and one backend hard-killed
# mid-run. Asserts zero requests lost at the client, bounded 5xx, the
# dead backend ejected from rotation, and traffic re-converged onto
# the survivors; writes $(SOAK_REPORT). FLEET_SOAK_FLAGS="-wire"
# drives the same storm through the SHMDWIRE binary path via the SDK.
fleet-soak:
	$(GO) run -race ./cmd/shmd soak -fleet -duration $(SOAK_DURATION) -report $(SOAK_REPORT) $(FLEET_SOAK_FLAGS)

# tenant-soak runs the multi-tenant isolation soak under the race
# detector: one serve instance with per-tenant QoS on and three
# scripted personas (steady realtime, bursty standard, abusive batch)
# hammering it concurrently. Asserts the isolation SLOs — steady sees
# zero sheds and p99 inside budget, well-behaved tenants lose nothing,
# and the abusive tenant's traffic mostly sheds 429 at admission;
# writes $(SOAK_REPORT).
tenant-soak:
	$(GO) run -race ./cmd/shmd soak -tenants -duration $(SOAK_DURATION) -report $(SOAK_REPORT) $(TENANT_SOAK_FLAGS)

# rollout-soak runs the canary rollout soak under the race detector:
# a registry-backed serve instance under sustained live traffic, a
# conforming v2 pushed mid-storm (must canary on one slot and
# auto-promote fleet-wide), then a deliberately drifted v3 whose
# manifest is self-consistent — only the live canary comparison can
# catch it (must auto-rollback, leaving v2 on every slot). Asserts
# zero lost requests and zero double checkouts while every slot
# rolls; writes $(SOAK_REPORT). SOAK_DURATION is the budget both
# rollouts must resolve within, not a fixed runtime.
rollout-soak:
	$(GO) run -race ./cmd/shmd soak -rollout -duration $(SOAK_DURATION) -report $(SOAK_REPORT) $(ROLLOUT_SOAK_FLAGS)
