package shmd_test

// The benchmark harness: one benchmark per paper figure/table, plus
// micro-benchmarks of the hot paths. Figure benchmarks execute the
// same experiment code as cmd/experiments and report their headline
// numbers as benchmark metrics, so `go test -bench=.` regenerates the
// whole evaluation.
//
// By default the benchmarks run at the quick scale so the suite
// finishes in minutes; set SHMD_BENCH_SCALE=full for the paper-sized
// corpus (3000 malware + 600 benign, 50-repeat sweeps).

import (
	"os"
	"sync"
	"testing"

	"shmd/internal/core"
	"shmd/internal/dataset"
	"shmd/internal/experiments"
	"shmd/internal/faults"
	"shmd/internal/fxp"
	"shmd/internal/hmd"
	"shmd/internal/rng"
	"shmd/internal/trace"
)

var (
	benchOnce sync.Once
	benchEnv  *experiments.Env
	benchErr  error
)

func benchScale() experiments.Scale {
	if os.Getenv("SHMD_BENCH_SCALE") == "full" {
		return experiments.Full(1)
	}
	return experiments.Quick(1)
}

func env(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() {
		benchEnv, benchErr = experiments.NewEnv(benchScale(), 0)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchEnv
}

func BenchmarkFig1BitDistribution(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Fig1(scale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ErrorRate, "error-rate")
		b.ReportMetric(res.ApEn, "ApEn")
	}
}

func BenchmarkFig2aAccuracySweep(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		points, _, err := experiments.Fig2a(e)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(points[1].Accuracy.Mean, "acc@er=0.1")
		b.ReportMetric(points[len(points)-1].Accuracy.Mean, "acc@er=1.0")
	}
}

func BenchmarkFig2bConfidence(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		results, _, err := experiments.Fig2b(e)
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != 3 {
			b.Fatal("unexpected result count")
		}
	}
}

func BenchmarkFig3ReverseEngineering(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig3(e)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Baseline, "MLP-baseline-eff")
		b.ReportMetric(rows[0].Stochastic, "MLP-stochastic-eff")
	}
}

func BenchmarkFig4Transferability(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig4(e)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[1].Baseline, "MLP-baseline-transfer")
		b.ReportMetric(rows[1].Stochastic, "MLP-stochastic-transfer")
	}
}

func BenchmarkFig5RHMDEvasion(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		rows, _, _, err := experiments.Fig5And6(e)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[3].EvasiveDetected, "RHMD-3F2P-detected")
		b.ReportMetric(rows[4].EvasiveDetected, "stochastic-detected")
	}
}

func BenchmarkFig6RHMDAccuracy(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		rows, _, _, err := experiments.Fig5And6(e)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[3].Accuracy, "RHMD-3F2P-acc")
		b.ReportMetric(rows[4].Accuracy, "stochastic-acc")
	}
}

func BenchmarkFig7PowerSavings(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		points, _, err := experiments.Fig7(e)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(points[len(points)-1].SavingsVsRHMD, "savings-vs-RHMD@0.68V")
	}
}

func BenchmarkFig8Tradeoff(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		points, _, err := experiments.Fig8(e)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			if p.ErrorRate == experiments.OperatingErrorRate {
				b.ReportMetric(p.Accuracy, "acc@er=0.1")
				b.ReportMetric(p.TransferRobust, "transfer-robust@er=0.1")
			}
		}
	}
}

func BenchmarkTabInferenceTime(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.TabLatency(e)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[0].Time.Nanoseconds()), "stochastic-ns")
		b.ReportMetric(float64(rows[1].Time.Nanoseconds()), "rhmd2f-ns")
	}
}

func BenchmarkTabMemoryFootprint(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.TabMemory(e)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[0].StorageBytes), "model-bytes")
	}
}

func BenchmarkTabRNGOverhead(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.TabRNG(e)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].TimeFactor, "TRNG-time-x")
		b.ReportMetric(rows[0].EnergyFactor, "TRNG-energy-x")
		b.ReportMetric(rows[1].TimeFactor, "PRNG-time-x")
		b.ReportMetric(rows[1].EnergyFactor, "PRNG-energy-x")
	}
}

// --- ablation benches (DESIGN.md §5) ---

func BenchmarkAblationFaultDistribution(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.AblationFaultDistribution(e)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Accuracy, "fig1-shape-acc@0.1")
		b.ReportMetric(rows[2].Accuracy, "uniform-acc@0.1")
	}
}

func BenchmarkAblationDeterministicAC(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.AblationDeterministicAC(e)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].ScoreStd, "stochastic-score-std")
		b.ReportMetric(rows[1].ScoreStd, "deterministic-score-std")
	}
}

func BenchmarkAblationPersistence(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.AblationPersistence(e)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Detected, "detected@1run")
		b.ReportMetric(rows[3].Detected, "detected@10runs")
	}
}

func BenchmarkAblationEvasionMargin(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.AblationEvasionMargin(e)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[1].StochasticCaught, "caught@margin0.05")
	}
}

func BenchmarkAblationAdaptiveAttacker(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.AblationAdaptiveAttacker(e)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].Caught, "caught-vs-adaptive")
	}
}

// --- micro-benchmarks of the deployment hot paths ---

// BenchmarkDetectionNominal measures one program-level detection on the
// exact (nominal-voltage) multiplier.
func BenchmarkDetectionNominal(b *testing.B) {
	e := env(b)
	p := e.Test()[0]
	det := e.Base.WithFreshBuffers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.DetectProgram(p.Windows)
	}
}

// BenchmarkDetectionUndervolted measures one program-level detection
// through the fault injector at the operating point.
func BenchmarkDetectionUndervolted(b *testing.B) {
	e := env(b)
	p := e.Test()[0]
	s, err := e.Stochastic(experiments.OperatingErrorRate, 0xBE7C)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.DetectProgram(p.Windows)
	}
}

// BenchmarkInjectorMul measures the per-multiplication cost of the
// fault injector against the exact unit.
func BenchmarkInjectorMul(b *testing.B) {
	inj, err := faults.NewInjector(0.1, nil, rng.NewRand(1))
	if err != nil {
		b.Fatal(err)
	}
	var sink fxp.Product
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += inj.Mul(fxp.Value(i), 12345)
	}
	_ = sink
}

// BenchmarkExactMul is the injector's baseline.
func BenchmarkExactMul(b *testing.B) {
	var u fxp.Exact
	var sink fxp.Product
	for i := 0; i < b.N; i++ {
		sink += u.Mul(fxp.Value(i), 12345)
	}
	_ = sink
}

// scalarUnit hides a unit's BulkUnit implementation, forcing fxp.Dot
// down the per-element scalar loop — the pre-fused-kernel code path,
// kept measurable for A/B comparison.
type scalarUnit struct{ u fxp.Unit }

func (s scalarUnit) Mul(a, b fxp.Value) fxp.Product { return s.u.Mul(a, b) }

// benchInput builds a deterministic input vector for the deployed
// network.
func benchInput(n int) []float64 {
	in := make([]float64, n)
	r := rng.NewRand(0xB13)
	for i := range in {
		in[i] = r.Float64()
	}
	return in
}

// BenchmarkInferenceExactFused measures one exact forward pass through
// the fused MAC kernel (the BulkUnit fast path).
func BenchmarkInferenceExactFused(b *testing.B) {
	e := env(b)
	fn := e.Base.Fixed().Clone()
	in := benchInput(fn.NumInputs())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn.Run(fxp.Exact{}, in)
	}
	b.ReportMetric(float64(fn.NumMuls())*float64(b.N)/b.Elapsed().Seconds(), "muls/s")
}

// BenchmarkInferenceExactScalar is the same pass through the scalar
// per-element reference loop.
func BenchmarkInferenceExactScalar(b *testing.B) {
	e := env(b)
	fn := e.Base.Fixed().Clone()
	in := benchInput(fn.NumInputs())
	u := scalarUnit{fxp.Exact{}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn.Run(u, in)
	}
	b.ReportMetric(float64(fn.NumMuls())*float64(b.N)/b.Elapsed().Seconds(), "muls/s")
}

// BenchmarkInferenceFaultySkipAhead measures one undervolted forward
// pass at the operating point through the geometric skip-ahead
// injector (fused kernel between fault sites).
func BenchmarkInferenceFaultySkipAhead(b *testing.B) {
	e := env(b)
	fn := e.Base.Fixed().Clone()
	in := benchInput(fn.NumInputs())
	inj, err := faults.NewInjector(experiments.OperatingErrorRate, nil, rng.NewRand(2))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn.Run(inj, in)
	}
	b.ReportMetric(float64(fn.NumMuls())*float64(b.N)/b.Elapsed().Seconds(), "muls/s")
}

// BenchmarkInferenceFaultyBernoulli is the same undervolted pass
// through the per-multiplication Bernoulli reference injector (one RNG
// draw per mul, scalar loop).
func BenchmarkInferenceFaultyBernoulli(b *testing.B) {
	e := env(b)
	fn := e.Base.Fixed().Clone()
	in := benchInput(fn.NumInputs())
	inj, err := faults.NewBernoulliInjector(experiments.OperatingErrorRate, nil, rng.NewRand(2))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn.Run(inj, in)
	}
	b.ReportMetric(float64(fn.NumMuls())*float64(b.N)/b.Elapsed().Seconds(), "muls/s")
}

// BenchmarkEvaluateSharded measures a full stochastic evaluation over
// the test corpus through the program-sharded parallel path.
func BenchmarkEvaluateSharded(b *testing.B) {
	e := env(b)
	s, err := e.Stochastic(experiments.OperatingErrorRate, 0xE7A1)
	if err != nil {
		b.Fatal(err)
	}
	test := e.Test()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hmd.Evaluate(s, test)
	}
}

// BenchmarkEvaluateSerial is the same evaluation pinned to one worker.
func BenchmarkEvaluateSerial(b *testing.B) {
	e := env(b)
	s, err := e.Stochastic(experiments.OperatingErrorRate, 0xE7A1)
	if err != nil {
		b.Fatal(err)
	}
	test := e.Test()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hmd.EvaluateParallel(s, test, 1)
	}
}

// BenchmarkTraceGeneration measures synthesizing and tracing one
// program.
func BenchmarkTraceGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, err := trace.NewProgram(trace.Trojan, i, 1)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.Trace(trace.DefaultWindows, trace.DefaultWindowSize); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCorpusGeneration measures building the quick corpus.
func BenchmarkCorpusGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := dataset.Generate(dataset.QuickConfig(uint64(i + 1))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVoltageCalibration measures the error-rate calibration loop.
func BenchmarkVoltageCalibration(b *testing.B) {
	e := env(b)
	s, err := e.Stochastic(0.1, 0xCA1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.SetErrorRate(0.05 + float64(i%10)*0.01); err != nil {
			b.Fatal(err)
		}
	}
	_ = core.Owner
}
