module shmd

go 1.22
