package shmd_test

// End-to-end integration test: the full lifecycle a deployment would
// run, crossing every package boundary in one flow —
//
//	synthesize corpus → train baseline → serialize bundle → reload →
//	protect with undervolting → TEE-style detection session →
//	black-box attack campaign → verify the defense's headline property.
import (
	"bytes"
	"testing"

	"shmd/internal/attack"
	"shmd/internal/core"
	"shmd/internal/dataset"
	"shmd/internal/hmd"
	"shmd/internal/volt"
)

func TestEndToEndLifecycle(t *testing.T) {
	// 1. Corpus and folds.
	data, err := dataset.Generate(dataset.QuickConfig(77))
	if err != nil {
		t.Fatal(err)
	}
	split, err := data.ThreeFold(0)
	if err != nil {
		t.Fatal(err)
	}

	// 2. Train and ship the detector as a bundle.
	trained, err := hmd.Train(data.Select(split.VictimTrain), hmd.Config{Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	var artifact bytes.Buffer
	if _, err := trained.SaveBundle(&artifact); err != nil {
		t.Fatal(err)
	}
	deployed, err := hmd.LoadBundle(&artifact)
	if err != nil {
		t.Fatal(err)
	}
	baseAcc := hmd.Evaluate(deployed, data.Select(split.Test)).Accuracy()
	if baseAcc < 0.85 {
		t.Fatalf("deployed baseline accuracy = %v", baseAcc)
	}

	// 3. Protect it: calibrate the locked regulator to the paper's
	// operating point and wrap detection in the enter/exit session.
	protected, err := core.New(deployed, core.Options{ErrorRate: 0.1, Seed: 78})
	if err != nil {
		t.Fatal(err)
	}
	if protected.SupplyVoltage() >= volt.NominalVoltage {
		t.Fatal("protection did not undervolt")
	}
	session, err := core.NewSession(protected)
	if err != nil {
		t.Fatal(err)
	}
	var sc hmd.Decision
	for _, p := range data.Select(split.Test)[:10] {
		if sc, err = session.DetectProgram(p.Windows); err != nil {
			t.Fatal(err)
		}
		if sc.Score < 0 || sc.Score > 1 {
			t.Fatalf("session score = %v", sc.Score)
		}
		if !session.AtNominal() {
			t.Fatal("voltage not restored between detections")
		}
	}

	// 4. Attack the deployment end to end. The session restored the
	// calibrated depth inside each detection, so attack the protected
	// detector directly (its regulator still holds the operating point
	// via the session's enter path).
	if err := protected.SetErrorRate(0.1); err != nil {
		t.Fatal(err)
	}
	proxy, err := attack.ReverseEngineer(protected, data.Select(split.AttackerTrain), attack.REConfig{
		Kind: attack.ProxyMLP,
		Seed: 79,
	})
	if err != nil {
		t.Fatal(err)
	}
	targets := data.Select(data.MalwareOf(split.Test))[:20]
	results, err := attack.EvadeAll(proxy, targets, attack.EvasionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Skip("no samples evaded the proxy at this scale/seed")
	}

	// 5. Headline property: the protected deployment catches evasive
	// malware at a clearly higher rate than the unprotected baseline.
	baseProxy, err := attack.ReverseEngineer(deployed, data.Select(split.AttackerTrain), attack.REConfig{
		Kind: attack.ProxyMLP,
		Seed: 79,
	})
	if err != nil {
		t.Fatal(err)
	}
	baseResults, err := attack.EvadeAll(baseProxy, targets, attack.EvasionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	protCatch, err := attack.DetectionRate(results, protected)
	if err != nil {
		t.Fatal(err)
	}
	baseCatch := 0.0
	if len(baseResults) > 0 {
		baseCatch, err = attack.DetectionRate(baseResults, deployed)
		if err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("end-to-end: baseline acc %.3f; evasive malware caught: baseline %.3f, protected %.3f (n=%d)",
		baseAcc, baseCatch, protCatch, len(results))
	if protCatch <= baseCatch {
		t.Errorf("protected deployment must out-catch the baseline: %v vs %v", protCatch, baseCatch)
	}

	// 6. And the protection stayed essentially free: accuracy within a
	// few points of baseline at the operating point.
	protAcc := hmd.Evaluate(protected, data.Select(split.Test)).Accuracy()
	if baseAcc-protAcc > 0.05 {
		t.Errorf("protection cost too much accuracy: %v -> %v", baseAcc, protAcc)
	}
}
