// Package shmd is a from-scratch Go reproduction of "Stochastic-HMDs:
// Adversarial-Resilient Hardware Malware Detectors via Undervolting"
// (Islam, Alouani, Khasawneh — DAC 2023).
//
// The library implements the paper's contribution — hardware malware
// detectors hardened against black-box evasion by running their
// inference on an undervolted core — together with every substrate the
// evaluation depends on: a FANN-style fixed-point neural network
// library, a stochastic timing-violation fault injector, an MSR-level
// undervolting plane with per-device calibration, a Pin-like synthetic
// program-trace corpus, the RHMD ensemble baseline, the
// reverse-engineering/evasion attack pipeline, and analytic
// power/latency/storage models.
//
// Entry points:
//
//   - internal/core       — the Stochastic-HMD itself
//   - internal/experiments — one function per paper figure/table
//   - cmd/shmd            — train/detect CLI
//   - cmd/experiments     — regenerate the evaluation
//   - cmd/characterize    — the Section II undervolting characterization
//
// See README.md for a walkthrough, DESIGN.md for the system inventory,
// and EXPERIMENTS.md for paper-vs-measured results.
package shmd
