package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"shmd/internal/chaos"
	"shmd/internal/core"
	"shmd/internal/route"
	"shmd/internal/serve"
)

// fleetParams are the knobs the fleet soak inherits from the soak
// flag set.
type fleetParams struct {
	duration   time.Duration
	clients    int
	backends   int
	pool       int
	rate       float64
	seed       uint64
	hedgeAfter time.Duration
	deadline   time.Duration
	stormEvery time.Duration
	killAt     float64
	max5xx     float64
	report     string
	model      string
	// wire drives every client through the SHMDWIRE SDK against the
	// router's binary listener, with binary upstream relays to every
	// backend; probes stay on HTTP.
	wire bool
}

// fleetBackendReport is one backend's row in the fleet soak report.
type fleetBackendReport struct {
	Backend string `json:"backend"`
	// Killed marks the backend the harness hard-killed mid-run.
	Killed bool `json:"killed"`
	// Requests is the router's dispatch-attempt count for this backend
	// at the end of the run; RequestsAfterGrace is the portion that
	// arrived after the post-kill grace window — the convergence
	// evidence (0 for the victim, >0 for survivors).
	Requests           uint64 `json:"requests"`
	RequestsAfterGrace uint64 `json:"requestsAfterGrace"`
	Failures           uint64 `json:"failures"`
	Trips              uint64 `json:"trips"`
	Recoveries         uint64 `json:"recoveries"`
	Ejections          uint64 `json:"ejections"`
	ReadyAtEnd         bool   `json:"readyAtEnd"`
}

// fleetReport is the machine-readable fleet soak result.
type fleetReport struct {
	Duration      string               `json:"duration"`
	Wire          bool                 `json:"wire"`
	Backends      int                  `json:"backends"`
	Requests      uint64               `json:"requests"`
	Status        map[string]int       `json:"status"`
	ClientErrors  uint64               `json:"clientErrors"`
	Rate5xx       float64              `json:"rate5xx"`
	Hedges        uint64               `json:"hedges"`
	HedgeWins     uint64               `json:"hedgeWins"`
	Retries       uint64               `json:"retries"`
	Sheds         uint64               `json:"sheds"`
	Ejections     uint64               `json:"ejections"`
	StormTriggers int                  `json:"stormTriggers"`
	Killed        string               `json:"killed"`
	Fleet         []fleetBackendReport `json:"fleet"`
	Failures      []string             `json:"failures"`
	Pass          bool                 `json:"pass"`
}

// fleetBackend is one running detection backend under the harness.
type fleetBackend struct {
	name string // host:port — matches the router's label
	url  string
	srv  *serve.Server
	ln   net.Listener
	stop context.CancelFunc
	done chan error
	// wireLn/wireAddr/wireDone exist only in wire mode: the backend's
	// SHMDWIRE listener alongside its HTTP one.
	wireLn   net.Listener
	wireAddr string
	wireDone chan error
}

// kill hard-kills the backend: the listeners close first (new
// connections refused at the TCP layer, exactly like a dead host),
// then the serve context is cancelled. The exit error is consumed by
// the harness's cleanup, which waits on done for every backend.
func (fb *fleetBackend) kill() {
	fb.ln.Close()
	if fb.wireLn != nil {
		fb.wireLn.Close()
	}
	fb.stop()
}

// fleetSoakRun drives the full fleet topology — router in front of
// real backend listeners, each backend a complete detection service on
// its own chaos environment — under a transient storm, hard-kills one
// backend partway through, and asserts the routing invariants: no
// client-visible lost requests, bounded 5xx, and traffic re-converged
// onto the survivors.
func fleetSoakRun(ctx context.Context, p fleetParams) error {
	if p.backends < 2 {
		return fmt.Errorf("fleet soak needs at least 2 backends, got %d", p.backends)
	}
	base, err := soakModel(p.model)
	if err != nil {
		return err
	}

	// Boot the backends.
	var fleet []*fleetBackend
	defer func() {
		for _, fb := range fleet {
			fb.stop()
			<-fb.done
			if fb.wireDone != nil {
				<-fb.wireDone
			}
		}
	}()
	for i := 0; i < p.backends; i++ {
		srv, err := serve.New(base, serve.Config{
			Pool: serve.PoolConfig{
				Size:        p.pool,
				ErrorRate:   p.rate,
				Seed:        p.seed + uint64(i)*101,
				ChaosConfig: &chaos.Config{Seed: p.seed + uint64(i)*101},
				Lifecycle: serve.LifecycleConfig{
					Enabled:           true,
					RespawnBackoff:    20 * time.Millisecond,
					RespawnMaxBackoff: time.Second,
				},
				Logf: log.Printf,
			},
			QueueDepth:      4 * p.clients,
			DefaultDeadline: p.deadline,
			ShutdownTimeout: 2 * time.Second,
			JitterSeed:      int64(p.seed) + int64(i) + 1,
		})
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		bctx, stop := context.WithCancel(context.Background())
		fb := &fleetBackend{
			name: ln.Addr().String(),
			url:  "http://" + ln.Addr().String(),
			srv:  srv,
			ln:   ln,
			stop: stop,
			done: make(chan error, 1),
		}
		go func() { fb.done <- fb.srv.Serve(bctx, fb.ln) }()
		if p.wire {
			wln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return err
			}
			fb.wireLn = wln
			fb.wireAddr = wln.Addr().String()
			fb.wireDone = make(chan error, 1)
			go func() { fb.wireDone <- fb.srv.ServeWire(bctx, wln) }()
		}
		fleet = append(fleet, fb)
	}

	// Boot the router over them.
	urls := make([]string, len(fleet))
	for i, fb := range fleet {
		urls[i] = fb.url
	}
	var wireAddrs []string
	if p.wire {
		wireAddrs = make([]string, len(fleet))
		for i, fb := range fleet {
			wireAddrs[i] = fb.wireAddr
		}
	}
	rt, err := route.New(route.Config{
		Backends:      urls,
		WireBackends:  wireAddrs,
		ProbeInterval: 25 * time.Millisecond,
		ProbeTimeout:  time.Second,
		Breaker: core.BreakerConfig{
			Threshold:   3,
			Cooldown:    100 * time.Millisecond,
			MaxCooldown: time.Second,
		},
		HedgeAfter:      p.hedgeAfter,
		MaxRetries:      2,
		Timeout:         p.deadline + 5*time.Second,
		ShutdownTimeout: 5 * time.Second,
		JitterSeed:      int64(p.seed),
	})
	if err != nil {
		return err
	}
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	routeCtx, stopRoute := context.WithCancel(context.Background())
	routeDone := make(chan error, 1)
	go func() { routeDone <- rt.Serve(routeCtx, rln) }()
	defer func() { stopRoute(); <-routeDone }()
	url := "http://" + rln.Addr().String()
	// In wire mode the router also listens on SHMDWIRE; its drain runs
	// before the HTTP shutdown (defers are LIFO) so the wire tier never
	// outlives the probe/breaker machinery it shares.
	var routerWireAddr string
	if p.wire {
		rwln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		routerWireAddr = rwln.Addr().String()
		wireRouteCtx, stopWireRoute := context.WithCancel(context.Background())
		routeWireDone := make(chan error, 1)
		go func() { routeWireDone <- rt.ServeWire(wireRouteCtx, rwln) }()
		defer func() { stopWireRoute(); <-routeWireDone }()
	}
	log.Printf("fleet soak: router %s over %d backends (pool %d each, clients %d, wire %v, %s)",
		rln.Addr(), p.backends, p.pool, p.clients, p.wire, p.duration)

	body, err := soakBody(p.seed)
	if err != nil {
		return err
	}
	wireReq, err := soakWireRequest(p.seed)
	if err != nil {
		return err
	}

	soakCtx, stopSoak := context.WithTimeout(ctx, p.duration)
	defer stopSoak()

	// Client loops: every request goes through the router; a transport
	// error here is a lost request, the thing the fleet must not allow.
	var (
		total, clientErrs atomic.Uint64
		statusMu          sync.Mutex
		status            = map[string]int{}
	)
	record := func(code int) {
		statusMu.Lock()
		status[fmt.Sprintf("%dxx", code/100)]++
		statusMu.Unlock()
	}
	var wg sync.WaitGroup
	for c := 0; c < p.clients; c++ {
		wg.Add(1)
		if p.wire {
			go func(c int) {
				defer wg.Done()
				soakWireClient(soakCtx, routerWireAddr, int64(p.seed)+int64(c)+1, wireReq, &total, &clientErrs, record)
			}(c)
			continue
		}
		go func() {
			defer wg.Done()
			client := &http.Client{Timeout: p.deadline + 10*time.Second}
			for soakCtx.Err() == nil {
				req, err := http.NewRequestWithContext(soakCtx, http.MethodPost, url+"/v1/detect", bytes.NewReader(body))
				if err != nil {
					clientErrs.Add(1)
					continue
				}
				req.Header.Set("Content-Type", "application/json")
				resp, err := client.Do(req)
				if err != nil {
					if soakCtx.Err() == nil {
						clientErrs.Add(1)
					}
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				total.Add(1)
				record(resp.StatusCode)
				if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
					time.Sleep(time.Millisecond) // honor the shed, keep hammering
				}
			}
		}()
	}

	// Storm: scripted transient faults on random slots of random
	// backends. No permanent faults here — the featured failure is the
	// backend death below, and transients keep every supervisor busy
	// while it happens.
	stormTriggers := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		rnd := rand.New(rand.NewSource(int64(p.seed)))
		transients := []chaos.Rule{
			{Kind: chaos.TransientMSR},
			{Kind: chaos.LockContention, Duration: 2},
			{Kind: chaos.ThermalExcursion, Duration: 20, Magnitude: 30},
			{Kind: chaos.SupplyDroop, Duration: 10, Magnitude: 20},
		}
		ticker := time.NewTicker(p.stormEvery)
		defer ticker.Stop()
		for {
			select {
			case <-soakCtx.Done():
				return
			case <-ticker.C:
				fb := fleet[rnd.Intn(len(fleet))]
				slots := fb.srv.Pool().Slots()
				slot := slots[rnd.Intn(len(slots))]
				if env, ok := slot.Det.Regulator().(*chaos.Env); ok {
					if err := env.Trigger(transients[rnd.Intn(len(transients))]); err == nil {
						stormTriggers++
					}
				}
			}
		}
	}()

	// The hard kill: one backend dies mid-run. After a grace window
	// (probes must notice, breakers must open), baseline every
	// backend's dispatch counter; any further victim traffic is a
	// convergence failure.
	victim := fleet[len(fleet)-1]
	baseline := map[string]uint64{}
	var baselineMu sync.Mutex
	killTimer := time.After(time.Duration(float64(p.duration) * p.killAt))
	wg.Add(1)
	go func() {
		defer wg.Done()
		select {
		case <-soakCtx.Done():
			return
		case <-killTimer:
		}
		log.Printf("fleet soak: hard-killing backend %s", victim.name)
		victim.kill()
		// Grace: several probe intervals plus a breaker cooldown.
		select {
		case <-time.After(500 * time.Millisecond):
		case <-soakCtx.Done():
			return
		}
		baselineMu.Lock()
		for _, b := range rt.Health().Backends {
			baseline[b.Backend] = b.Requests
		}
		baselineMu.Unlock()
	}()

	<-soakCtx.Done()
	wg.Wait()

	// Assemble the verdict from the router's fleet view.
	health := rt.Health()
	m := rt.Metrics()
	rep := fleetReport{
		Duration:      p.duration.String(),
		Wire:          p.wire,
		Backends:      p.backends,
		Requests:      total.Load(),
		Status:        status,
		ClientErrors:  clientErrs.Load(),
		Hedges:        m.Hedges(),
		HedgeWins:     m.HedgeWins(),
		Retries:       m.Retries(),
		Sheds:         m.Sheds(),
		Ejections:     m.Ejections(),
		StormTriggers: stormTriggers,
		Killed:        victim.name,
	}
	if rep.Requests > 0 {
		rep.Rate5xx = float64(status["5xx"]) / float64(rep.Requests)
	}
	baselineMu.Lock()
	graceSampled := len(baseline) > 0
	for _, b := range health.Backends {
		row := fleetBackendReport{
			Backend:    b.Backend,
			Killed:     b.Backend == victim.name,
			Requests:   b.Requests,
			Failures:   b.Failures,
			Trips:      b.Trips,
			Recoveries: b.Recoveries,
			Ejections:  b.Ejections,
			ReadyAtEnd: b.Ready,
		}
		if graceSampled {
			row.RequestsAfterGrace = b.Requests - baseline[b.Backend]
		}
		rep.Fleet = append(rep.Fleet, row)
	}
	baselineMu.Unlock()

	fail := func(format string, args ...any) {
		rep.Failures = append(rep.Failures, fmt.Sprintf(format, args...))
	}
	if rep.Requests == 0 {
		fail("no requests completed")
	}
	if status["2xx"] == 0 {
		fail("no successful detections")
	}
	if rep.ClientErrors != 0 {
		fail("%d requests lost at the client (transport errors through the router)", rep.ClientErrors)
	}
	if rep.Rate5xx > p.max5xx {
		fail("5xx rate %.4f exceeds budget %.4f", rep.Rate5xx, p.max5xx)
	}
	if !graceSampled {
		fail("kill+grace never completed within the soak duration (raise -duration or lower -kill-at)")
	}
	if rep.Ejections == 0 {
		fail("dead backend was never ejected from the probe rotation")
	}
	for _, row := range rep.Fleet {
		switch {
		case row.Killed:
			if graceSampled && row.RequestsAfterGrace != 0 {
				fail("dead backend %s still received %d dispatches after the grace window", row.Backend, row.RequestsAfterGrace)
			}
			if row.ReadyAtEnd {
				fail("dead backend %s still marked ready at end", row.Backend)
			}
		default:
			if graceSampled && row.RequestsAfterGrace == 0 {
				fail("surviving backend %s received no traffic after the kill (no re-convergence)", row.Backend)
			}
		}
	}
	rep.Pass = len(rep.Failures) == 0

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(p.report, append(out, '\n'), 0o644); err != nil {
		return err
	}
	log.Printf("fleet soak: %d requests (%.4f 5xx, %d client errors), %d retries, %d hedges (%d wins), %d ejections, killed %s, report %s",
		rep.Requests, rep.Rate5xx, rep.ClientErrors, rep.Retries, rep.Hedges, rep.HedgeWins, rep.Ejections, rep.Killed, p.report)
	if !rep.Pass {
		return fmt.Errorf("fleet soak failed: %v", rep.Failures)
	}
	fmt.Println("fleet soak: PASS")
	return nil
}
