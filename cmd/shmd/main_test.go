package main

import (
	"path/filepath"
	"testing"
)

func TestScaleConfig(t *testing.T) {
	quick, err := scaleConfig("quick", 1)
	if err != nil || quick.MalwarePerFamily != 60 {
		t.Errorf("quick = %+v err=%v", quick, err)
	}
	full, err := scaleConfig("full", 1)
	if err != nil || full.MalwarePerFamily != 600 {
		t.Errorf("full = %+v err=%v", full, err)
	}
	if _, err := scaleConfig("huge", 1); err == nil {
		t.Error("unknown scale must error")
	}
}

func TestCmdDataset(t *testing.T) {
	if err := cmdDataset([]string{"-scale", "quick", "-seed", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestTrainDetectInspectRoundTrip(t *testing.T) {
	model := filepath.Join(t.TempDir(), "model.fann")
	if err := cmdTrain([]string{"-scale", "quick", "-seed", "1", "-out", model}); err != nil {
		t.Fatal(err)
	}
	if err := cmdInspect([]string{"-model", model}); err != nil {
		t.Fatal(err)
	}
	// Nominal detection.
	if err := cmdDetect([]string{"-model", model, "-class", "trojan", "-repeats", "2"}); err != nil {
		t.Fatal(err)
	}
	// Undervolted detection by rate and by depth.
	if err := cmdDetect([]string{"-model", model, "-class", "benign", "-rate", "0.1", "-repeats", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdDetect([]string{"-model", model, "-class", "worm", "-undervolt", "130", "-repeats", "2"}); err != nil {
		t.Fatal(err)
	}
	// Supervised detection on the chaos environment: must return a
	// decision per repeat despite injected faults.
	if err := cmdDetect([]string{"-model", model, "-class", "trojan", "-rate", "0.1",
		"-chaos", "-supervise", "-repeats", "4"}); err != nil {
		t.Fatal(err)
	}
	// Supervisor without chaos (ideal hardware) is a no-op wrapper.
	if err := cmdDetect([]string{"-model", model, "-class", "benign", "-rate", "0.1",
		"-supervise", "-repeats", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdErrors(t *testing.T) {
	if err := cmdTrain([]string{"-scale", "bogus"}); err == nil {
		t.Error("bad scale must error")
	}
	if err := cmdInspect([]string{"-model", "/nonexistent/model.fann"}); err == nil {
		t.Error("missing model must error")
	}
	if err := cmdDetect([]string{"-model", "/nonexistent/model.fann"}); err == nil {
		t.Error("missing model must error")
	}
	model := filepath.Join(t.TempDir(), "model.fann")
	if err := cmdTrain([]string{"-scale", "quick", "-out", model}); err != nil {
		t.Fatal(err)
	}
	if err := cmdDetect([]string{"-model", model, "-class", "virus"}); err == nil {
		t.Error("unknown class must error")
	}
}
