package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"shmd/internal/fann"
	"shmd/internal/features"
	"shmd/internal/hmd"
	"shmd/internal/serve"
	"shmd/internal/trace"
)

// writeTestModel saves a small untrained (but deterministic) detector
// bundle — the serve command only needs a loadable model, not a
// trained one.
func writeTestModel(t *testing.T) string {
	t.Helper()
	net, err := fann.New(fann.Config{
		Layers: []int{features.DimInstrFreq, 4, 1},
		Hidden: fann.Sigmoid,
		Output: fann.Sigmoid,
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	det, err := hmd.FromNetwork(net, hmd.Config{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.fann")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := det.SaveBundle(f); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCmdServe boots the service on an ephemeral port, round-trips a
// detection, scrapes health and metrics, and shuts down via context
// cancellation (the test stand-in for SIGTERM).
func TestCmdServe(t *testing.T) {
	model := writeTestModel(t)

	ready := make(chan string, 1)
	serveReady = func(addr string) { ready <- addr }
	defer func() { serveReady = nil }()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- serveRun(ctx, []string{
			"-model", model, "-addr", "127.0.0.1:0", "-pool", "2", "-seed", "3",
		})
	}()

	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("serve exited before ready: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("serve never became ready")
	}

	// Round-trip a detection.
	prog, err := trace.NewProgram(trace.Trojan, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	windows, err := prog.Trace(4, 256)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(serve.DetectRequest{Programs: []serve.ProgramJSON{
		{ID: "cli-smoke", Windows: serve.EncodeWindows(windows)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/detect", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("detect = %d (%s)", resp.StatusCode, raw)
	}
	var dr serve.DetectResponse
	if err := json.Unmarshal(raw, &dr); err != nil {
		t.Fatal(err)
	}
	if len(dr.Results) != 1 || dr.Results[0].ID != "cli-smoke" {
		t.Fatalf("results = %+v", dr.Results)
	}

	for _, path := range []string{"/healthz", "/metrics"} {
		r, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d (%s)", path, r.StatusCode, b)
		}
	}
	// pprof is off by default.
	r, err := http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode == http.StatusOK {
		t.Error("pprof mounted without -pprof")
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("serve shutdown: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serve never shut down")
	}
}

func TestCmdServeErrors(t *testing.T) {
	if err := serveRun(context.Background(), []string{"-model", "/nonexistent/model.fann"}); err == nil {
		t.Error("missing model must error")
	}
	model := writeTestModel(t)
	if err := serveRun(context.Background(), []string{"-model", model, "-pool", "-1"}); err == nil {
		t.Error("negative pool must error")
	}
	if err := serveRun(context.Background(), []string{"-model", model, "-addr", "256.0.0.1:bad"}); err == nil {
		t.Error("bad listen address must error")
	}
}
