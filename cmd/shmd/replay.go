package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"shmd/internal/hmd"
	"shmd/internal/replay"
	"shmd/internal/serve"
)

// cmdReplay re-executes a decision trace captured by `shmd serve
// -trace` against the same model bundle, off-hardware: every record's
// fault draws are replayed through a deterministic unit and the
// resulting verdict, score, and confidence must match the served ones
// bit for bit. A non-zero exit means the trace does not audit — the
// serving binary, the model, or the trace itself diverged.
func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	model := fs.String("model", "model.fann", "model bundle the trace was served from")
	tracePath := fs.String("trace", "decisions.trace", "decision trace file to verify")
	verbose := fs.Bool("v", false, "print every verified decision")
	if err := fs.Parse(args); err != nil {
		return err
	}

	mf, err := os.Open(*model)
	if err != nil {
		return err
	}
	base, err := hmd.LoadBundle(mf)
	mf.Close()
	if err != nil {
		return err
	}

	tf, err := os.Open(*tracePath)
	if err != nil {
		return err
	}
	defer tf.Close()
	n, err := replayVerifyAll(base, tf, *verbose)
	if err != nil {
		return err
	}
	fmt.Printf("shmd replay: %d decisions verified bit-identical\n", n)
	return nil
}

// replayVerifyAll streams records from r and verifies each one,
// returning the count verified. The first corrupt frame or diverging
// decision aborts with its record index.
func replayVerifyAll(base *hmd.HMD, r io.Reader, verbose bool) (int, error) {
	rd, err := replay.NewReader(r)
	if err != nil {
		return 0, err
	}
	n := 0
	for {
		rec, err := rd.Next()
		if errors.Is(err, io.EOF) {
			return n, nil
		}
		if err != nil {
			return n, fmt.Errorf("record %d: %w", n, err)
		}
		if err := replay.Verify(base, rec, serve.Confidence); err != nil {
			return n, fmt.Errorf("record %d (slot %d gen %d): %w", n, rec.Slot, rec.Gen, err)
		}
		if verbose {
			verdict := "benign"
			if rec.Malware {
				verdict = "MALWARE"
			}
			fmt.Printf("  record %d: slot %d gen %d rate %g depth %.1fmV -> %s score %.4f conf %.4f (%d faults)\n",
				n, rec.Slot, rec.Gen, rec.Rate, rec.DepthMV, verdict, rec.Score, rec.Confidence, rec.Draws.Faults())
		}
		n++
	}
}
