package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"shmd/internal/hmd"
	"shmd/internal/registry"
	"shmd/internal/replay"
	"shmd/internal/serve"
)

// cmdReplay re-executes a decision trace captured by `shmd serve
// -trace` against the same model bundle, off-hardware: every record's
// fault draws are replayed through a deterministic unit and the
// resulting verdict, score, and confidence must match the served ones
// bit for bit. A non-zero exit means the trace does not audit — the
// serving binary, the model, or the trace itself diverged.
//
// Traces captured mid-rollout carry per-record model versions; pass
// -registry so each record verifies against the registry version that
// actually scored it. Version-0 records (compiled-in model) always
// verify against -model.
func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	model := fs.String("model", "model.fann", "model bundle the trace was served from")
	tracePath := fs.String("trace", "decisions.trace", "decision trace file to verify")
	registryDir := fs.String("registry", "", "model registry directory for versioned records (empty = version-0 records only)")
	verbose := fs.Bool("v", false, "print every verified decision")
	if err := fs.Parse(args); err != nil {
		return err
	}

	mf, err := os.Open(*model)
	if err != nil {
		return err
	}
	base, err := hmd.LoadBundle(mf)
	mf.Close()
	if err != nil {
		return err
	}
	resolve := replayResolver(base, nil)
	if *registryDir != "" {
		reg, err := registry.Open(*registryDir, nil)
		if err != nil {
			return err
		}
		resolve = replayResolver(base, reg)
	}

	tf, err := os.Open(*tracePath)
	if err != nil {
		return err
	}
	defer tf.Close()
	n, err := replayVerifyAll(resolve, tf, *verbose)
	if err != nil {
		return err
	}
	fmt.Printf("shmd replay: %d decisions verified bit-identical\n", n)
	return nil
}

// replayResolver maps a record's model version to the detector that
// served it: version 0 is the compiled-in -model bundle, anything else
// resolves through the registry. Resolved versions are memoized so a
// million-record trace decodes each model once.
func replayResolver(base *hmd.HMD, reg *registry.Registry) func(uint32) (*hmd.HMD, error) {
	cache := map[uint32]*hmd.HMD{0: base}
	return func(version uint32) (*hmd.HMD, error) {
		if det, ok := cache[version]; ok {
			return det, nil
		}
		if reg == nil {
			return nil, fmt.Errorf("model version %d needs -registry", version)
		}
		mdl, err := reg.Model(version)
		if err != nil {
			return nil, fmt.Errorf("model version %d: %w", version, err)
		}
		cache[version] = mdl.Detector()
		return cache[version], nil
	}
}

// replayVerifyAll streams records from r and verifies each one against
// the detector its model version resolves to, returning the count
// verified. The first corrupt frame, unresolvable version, or
// diverging decision aborts with its record index.
func replayVerifyAll(resolve func(uint32) (*hmd.HMD, error), r io.Reader, verbose bool) (int, error) {
	rd, err := replay.NewReader(r)
	if err != nil {
		return 0, err
	}
	n := 0
	for {
		rec, err := rd.Next()
		if errors.Is(err, io.EOF) {
			return n, nil
		}
		if err != nil {
			return n, fmt.Errorf("record %d: %w", n, err)
		}
		base, err := resolve(rec.ModelVersion)
		if err != nil {
			return n, fmt.Errorf("record %d: %w", n, err)
		}
		if err := replay.Verify(base, rec, serve.Confidence); err != nil {
			return n, fmt.Errorf("record %d (slot %d gen %d model v%d): %w", n, rec.Slot, rec.Gen, rec.ModelVersion, err)
		}
		if verbose {
			verdict := "benign"
			if rec.Malware {
				verdict = "MALWARE"
			}
			fmt.Printf("  record %d: slot %d gen %d model v%d rate %g depth %.1fmV -> %s score %.4f conf %.4f (%d faults)\n",
				n, rec.Slot, rec.Gen, rec.ModelVersion, rec.Rate, rec.DepthMV, verdict, rec.Score, rec.Confidence, rec.Draws.Faults())
		}
		n++
	}
}
