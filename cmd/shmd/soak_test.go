package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"shmd/internal/journal"
)

// TestCmdSoak runs a short full-service soak — scripted chaos storm,
// permanent fault, quarantine, respawn — and checks the report the
// driver would gate on.
func TestCmdSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak takes seconds; skipped under -short")
	}
	dir := t.TempDir()
	report := filepath.Join(dir, "report.json")
	jpath := filepath.Join(dir, "cal.journal")
	err := soakRun(context.Background(), []string{
		"-duration", "2s",
		"-clients", "3",
		"-pool", "2",
		"-permanent-at", "0.25",
		"-report", report,
		"-journal", jpath,
	})
	if err != nil {
		t.Fatalf("soak: %v", err)
	}

	raw, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var rep soakReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report not valid JSON: %v\n%s", err, raw)
	}
	if !rep.Pass || len(rep.Failures) != 0 {
		t.Errorf("report failures: %v", rep.Failures)
	}
	if rep.Requests == 0 || rep.Status["2xx"] == 0 {
		t.Errorf("no successful traffic: %+v", rep)
	}
	if rep.DoubleCheckouts != 0 {
		t.Errorf("double checkouts = %d", rep.DoubleCheckouts)
	}
	if rep.Quarantines == 0 || rep.Respawns < rep.Quarantines {
		t.Errorf("lifecycle arc incomplete: quarantines %d, respawns %d", rep.Quarantines, rep.Respawns)
	}
	// The soak journaled its calibration; the file must verify.
	if _, err := journal.Load(jpath); err != nil {
		t.Errorf("soak journal: %v", err)
	}
}

// TestCmdSoakBadModel surfaces a missing model file as an error.
func TestCmdSoakBadModel(t *testing.T) {
	err := soakRun(context.Background(), []string{
		"-duration", "1s", "-model", filepath.Join(t.TempDir(), "nope.fann"),
	})
	if err == nil {
		t.Fatal("missing model accepted")
	}
}
