package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"shmd/internal/hmd"
	"shmd/internal/registry"
	"shmd/internal/replay"
	"shmd/internal/serve"
	"shmd/internal/tenant"
)

// tenantSpecs collects repeatable -tenant flags.
type tenantSpecs []tenant.Spec

func (s *tenantSpecs) String() string {
	parts := make([]string, 0, len(*s))
	for _, spec := range *s {
		parts = append(parts, spec.ID)
	}
	return strings.Join(parts, ",")
}

func (s *tenantSpecs) Set(v string) error {
	spec, err := tenant.ParseSpec(v)
	if err != nil {
		return err
	}
	*s = append(*s, spec)
	return nil
}

// serveReady, when non-nil, receives the bound listen address once the
// service is accepting connections (tests hook it to find the port).
var serveReady func(addr string)

// serveWireReady, when non-nil, receives the bound SHMDWIRE listen
// address (tests hook it to find the wire port).
var serveWireReady func(addr string)

// cmdServe runs the long-running detection service until SIGINT or
// SIGTERM, then shuts down gracefully: in-flight requests drain and
// every pooled session's voltage plane rolls back to nominal.
func cmdServe(args []string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return serveRun(ctx, args)
}

// serveRun is cmdServe with a caller-owned lifetime (tests cancel the
// context instead of sending signals).
func serveRun(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	model := fs.String("model", "model.fann", "trained model path")
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	wireAddr := fs.String("wire-addr", "", "SHMDWIRE binary protocol listen address (empty = wire listener off)")
	pool := fs.Int("pool", 4, "pooled detection sessions")
	queue := fs.Int("queue", 0, "waiting requests beyond in-service before 429 (0 = 2x pool)")
	rate := fs.Float64("rate", 0.1, "target multiplier error rate (0 = nominal)")
	undervolt := fs.Float64("undervolt", 0, "explicit undervolt depth in mV (overrides -rate)")
	seed := fs.Uint64("seed", 1, "root seed for the per-session fault streams")
	withChaos := fs.Bool("chaos", false, "run sessions on fault-injecting environments")
	withPprof := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	lifecycle := fs.Bool("lifecycle", true, "quarantine and respawn terminally degraded sessions")
	journalPath := fs.String("journal", "", "calibration journal path (empty = journaling off)")
	hedgeAfter := fs.Duration("hedge-after", 0, "re-dispatch a slow batch to a second slot after this budget (0 = off)")
	maxBatch := fs.Int("max-batch", 0, "coalesce concurrent programs into micro-batches of up to this many lanes (0 or 1 = scalar dispatch)")
	maxBatchWait := fs.Duration("max-batch-wait", 0, "flush a partial micro-batch after this wait (0 = 2ms default when -max-batch enables batching)")
	deadline := fs.Duration("deadline", 0, "default per-request detection deadline (0 = unbounded)")
	registryDir := fs.String("registry", "", "model registry directory (empty = registry off; bootstraps from -model when empty)")
	canarySlots := fs.Int("canary-slots", 1, "pool slots a pushed model canaries on before fleet-wide promotion")
	canaryWindow := fs.Int("canary-window", 64, "sliding decision window the canary conformance check judges over")
	tracePath := fs.String("trace", "", "decision trace file for `shmd replay` audits (empty = tracing off)")
	traceBuffer := fs.Int("trace-buffer", replay.DefaultSinkBuffer, "decision trace ring size; overflow drops records, never blocks serving")
	readHeaderTimeout := fs.Duration("read-header-timeout", 10*time.Second, "HTTP header read timeout")
	shutdownTimeout := fs.Duration("shutdown-timeout", 30*time.Second, "graceful shutdown drain budget")
	var tenants tenantSpecs
	fs.Var(&tenants, "tenant", "tenant QoS spec `id:class[:rate[:burst[:conc[:stride]]]]` (repeatable; any -tenant* flag enables multi-tenant admission)")
	tenantDefault := fs.String("tenant-default", "", "spec template for unregistered tenant ids, same form as -tenant with the id ignored (empty = unknown tenants rejected 403)")
	tenantAnon := fs.String("tenant-anon", "", "spec template for requests carrying no tenant identity (empty = such requests rejected 403)")
	traceTenants := fs.String("trace-tenants", "", "comma-separated tenant ids whose decisions are traced (empty = every tenant; needs -trace)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	f, err := os.Open(*model)
	if err != nil {
		return err
	}
	det, err := hmd.LoadBundle(f)
	f.Close()
	if err != nil {
		return err
	}

	var reg *registry.Registry
	var modelVersion uint32
	if *registryDir != "" {
		reg, err = registry.Open(*registryDir, log.Printf)
		if err != nil {
			return err
		}
		if v, ok := reg.Active(); ok {
			// Warm restart: adopt the registry's active version instead of
			// the -model bundle, so a fleet that promoted a pushed model
			// keeps serving it across restarts.
			mdl, err := reg.Model(v)
			if err != nil {
				return fmt.Errorf("registry: active version %d: %w", v, err)
			}
			det = mdl.Detector()
			modelVersion = v
			fmt.Printf("shmd serve: registry %s: serving active model v%d (%s)\n",
				*registryDir, v, mdl.Fingerprint())
		} else {
			// Cold bootstrap: register the -model bundle as the first
			// version and activate it, so later pushes roll against a
			// registry-tracked incumbent.
			next := uint32(1)
			for _, info := range reg.Versions() {
				if info.Version >= next {
					next = info.Version + 1
				}
			}
			m, err := registry.NewManifest(next, registry.FannType, det, uint64(time.Now().Unix()), registry.DefaultGoldenSpecs())
			if err != nil {
				return fmt.Errorf("registry: bootstrap manifest: %w", err)
			}
			if err := reg.Register(m); err != nil {
				return fmt.Errorf("registry: bootstrap register: %w", err)
			}
			if err := reg.Activate(next); err != nil {
				return fmt.Errorf("registry: bootstrap activate: %w", err)
			}
			mdl, err := reg.Model(next)
			if err != nil {
				return fmt.Errorf("registry: bootstrap load: %w", err)
			}
			det = mdl.Detector()
			modelVersion = next
			fmt.Printf("shmd serve: registry %s: bootstrapped %s as v%d (%s)\n",
				*registryDir, *model, next, mdl.Fingerprint())
		}
	}

	cfg := serve.Config{
		Pool: serve.PoolConfig{
			Size:        *pool,
			ErrorRate:   *rate,
			Seed:        *seed,
			Chaos:       *withChaos,
			Lifecycle:   serve.LifecycleConfig{Enabled: *lifecycle},
			JournalPath:  *journalPath,
			ModelVersion: modelVersion,
			Logf:         log.Printf,
		},
		QueueDepth:        *queue,
		EnablePprof:       *withPprof,
		DefaultDeadline:   *deadline,
		HedgeAfter:        *hedgeAfter,
		MaxBatch:          *maxBatch,
		MaxBatchWait:      *maxBatchWait,
		ReadHeaderTimeout: *readHeaderTimeout,
		ShutdownTimeout:   *shutdownTimeout,
		Registry:          reg,
		Rollout:           serve.RolloutConfig{CanarySlots: *canarySlots, Window: *canaryWindow},
	}
	if *undervolt > 0 {
		cfg.Pool.ErrorRate = 0
		cfg.Pool.UndervoltMV = *undervolt
	}
	if len(tenants) > 0 || *tenantDefault != "" || *tenantAnon != "" {
		tc := &tenant.Config{Tenants: tenants}
		template := func(flagName, v string) (*tenant.Spec, error) {
			if v == "" {
				return nil, nil
			}
			spec, err := tenant.ParseSpec(v)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", flagName, err)
			}
			return &spec, nil
		}
		var terr error
		if tc.Default, terr = template("-tenant-default", *tenantDefault); terr != nil {
			return terr
		}
		if tc.Anonymous, terr = template("-tenant-anon", *tenantAnon); terr != nil {
			return terr
		}
		cfg.Tenancy = tc
	}
	if *traceTenants != "" {
		cfg.TraceTenants = strings.Split(*traceTenants, ",")
	}
	if *tracePath != "" {
		sink, err := replay.OpenSink(*tracePath, *traceBuffer)
		if err != nil {
			return err
		}
		defer func() {
			if err := sink.Close(); err != nil {
				log.Printf("shmd serve: trace sink: %v", err)
			}
			fmt.Printf("shmd serve: trace %s: %d records written, %d dropped\n",
				*tracePath, sink.Written(), sink.Dropped())
		}()
		cfg.Trace = sink
	}
	srv, err := serve.New(det, cfg)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	qd := cfg.QueueDepth
	if qd == 0 {
		qd = 2 * cfg.Pool.Size
	}
	fmt.Printf("shmd serve: listening on %s (pool %d, queue %d, rate %g, chaos %v)\n",
		ln.Addr(), cfg.Pool.Size, qd, cfg.Pool.ErrorRate, cfg.Pool.Chaos)

	// The HTTP listener's shutdown path owns the pool, so when a wire
	// listener runs alongside it the HTTP drain must start only after
	// the wire drain finishes — otherwise the pool could close under an
	// in-flight wire detection.
	httpCtx := ctx
	var wireDone chan error
	if *wireAddr != "" {
		wln, err := net.Listen("tcp", *wireAddr)
		if err != nil {
			return err
		}
		fmt.Printf("shmd serve: SHMDWIRE listening on %s\n", wln.Addr())
		if serveWireReady != nil {
			serveWireReady(wln.Addr().String())
		}
		var httpCancel context.CancelFunc
		httpCtx, httpCancel = context.WithCancel(context.Background())
		wireDone = make(chan error, 1)
		go func() {
			wireDone <- srv.ServeWire(ctx, wln)
			httpCancel()
		}()
	}
	if serveReady != nil {
		serveReady(ln.Addr().String())
	}
	err = srv.Serve(httpCtx, ln)
	if wireDone != nil {
		if werr := <-wireDone; err == nil {
			err = werr
		}
	}
	fmt.Println("shmd serve: shut down, voltage planes at nominal")
	return err
}
