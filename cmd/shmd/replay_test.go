package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"shmd/internal/replay"
	"shmd/internal/serve"
	"shmd/internal/trace"
)

// TestCmdServeTraceThenReplay is the end-to-end audit loop: boot the
// real daemon with -trace, serve live detections, shut down, then run
// `shmd replay` over the captured trace and the same model bundle. The
// replay must verify every served decision bit-identically.
func TestCmdServeTraceThenReplay(t *testing.T) {
	model := writeTestModel(t)
	tracePath := filepath.Join(t.TempDir(), "decisions.trace")

	ready := make(chan string, 1)
	serveReady = func(addr string) { ready <- addr }
	defer func() { serveReady = nil }()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- serveRun(ctx, []string{
			"-model", model, "-addr", "127.0.0.1:0", "-pool", "2", "-seed", "3",
			"-trace", tracePath, "-trace-buffer", "256",
		})
	}()

	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("serve exited before ready: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("serve never became ready")
	}

	served := 0
	for i, cls := range []trace.Class{trace.Trojan, trace.Benign, trace.Worm, trace.Backdoor} {
		prog, err := trace.NewProgram(cls, i, 1)
		if err != nil {
			t.Fatal(err)
		}
		windows, err := prog.Trace(4, 256)
		if err != nil {
			t.Fatal(err)
		}
		body, err := json.Marshal(serve.DetectRequest{Programs: []serve.ProgramJSON{
			{ID: "audit", Windows: serve.EncodeWindows(windows)},
		}})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+"/v1/detect", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("detect %d = %d (%s)", i, resp.StatusCode, raw)
		}
		served++
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve shutdown: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serve never shut down")
	}

	// The audit: the CLI path end to end.
	if err := cmdReplay([]string{"-model", model, "-trace", tracePath, "-v"}); err != nil {
		t.Fatalf("shmd replay failed to verify the served trace: %v", err)
	}

	// And the trace really holds every served decision (buffer 256
	// never overflowed in this run).
	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rd, err := replay.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, err := rd.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != served {
		t.Fatalf("trace holds %d records, served %d decisions", n, served)
	}
}

// TestCmdReplayDetectsTampering flips one payload byte of a captured
// trace and checks the CLI refuses it (the frame CRC catches the
// mutation before any replay runs).
func TestCmdReplayDetectsTampering(t *testing.T) {
	model := writeTestModel(t)
	tracePath := filepath.Join(t.TempDir(), "decisions.trace")

	ready := make(chan string, 1)
	serveReady = func(addr string) { ready <- addr }
	defer func() { serveReady = nil }()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- serveRun(ctx, []string{
			"-model", model, "-addr", "127.0.0.1:0", "-pool", "1",
			"-trace", tracePath,
		})
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("serve exited before ready: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("serve never became ready")
	}
	prog, err := trace.NewProgram(trace.Rogue, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	windows, err := prog.Trace(4, 256)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(serve.DetectRequest{Programs: []serve.ProgramJSON{
		{ID: "x", Windows: serve.EncodeWindows(windows)},
	}})
	resp, err := http.Post(base+"/v1/detect", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < len(replay.Magic)+16 {
		t.Fatalf("trace too short: %d bytes", len(raw))
	}
	raw[len(replay.Magic)+8] ^= 0x40
	if err := os.WriteFile(tracePath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	err = cmdReplay([]string{"-model", model, "-trace", tracePath})
	if err == nil {
		t.Fatal("replay accepted a tampered trace")
	}
	if !strings.Contains(err.Error(), "record 0") {
		t.Errorf("tampering error lacks record index: %v", err)
	}
}
