package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"shmd/internal/hmd"
	"shmd/internal/registry"
	"shmd/internal/replay"
	"shmd/internal/serve"
	"shmd/internal/trace"
)

// TestCmdServeTraceThenReplay is the end-to-end audit loop: boot the
// real daemon with -trace, serve live detections, shut down, then run
// `shmd replay` over the captured trace and the same model bundle. The
// replay must verify every served decision bit-identically.
func TestCmdServeTraceThenReplay(t *testing.T) {
	model := writeTestModel(t)
	tracePath := filepath.Join(t.TempDir(), "decisions.trace")

	ready := make(chan string, 1)
	serveReady = func(addr string) { ready <- addr }
	defer func() { serveReady = nil }()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- serveRun(ctx, []string{
			"-model", model, "-addr", "127.0.0.1:0", "-pool", "2", "-seed", "3",
			"-trace", tracePath, "-trace-buffer", "256",
		})
	}()

	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("serve exited before ready: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("serve never became ready")
	}

	served := 0
	for i, cls := range []trace.Class{trace.Trojan, trace.Benign, trace.Worm, trace.Backdoor} {
		prog, err := trace.NewProgram(cls, i, 1)
		if err != nil {
			t.Fatal(err)
		}
		windows, err := prog.Trace(4, 256)
		if err != nil {
			t.Fatal(err)
		}
		body, err := json.Marshal(serve.DetectRequest{Programs: []serve.ProgramJSON{
			{ID: "audit", Windows: serve.EncodeWindows(windows)},
		}})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+"/v1/detect", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("detect %d = %d (%s)", i, resp.StatusCode, raw)
		}
		served++
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve shutdown: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serve never shut down")
	}

	// The audit: the CLI path end to end.
	if err := cmdReplay([]string{"-model", model, "-trace", tracePath, "-v"}); err != nil {
		t.Fatalf("shmd replay failed to verify the served trace: %v", err)
	}

	// And the trace really holds every served decision (buffer 256
	// never overflowed in this run).
	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rd, err := replay.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, err := rd.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != served {
		t.Fatalf("trace holds %d records, served %d decisions", n, served)
	}
}

// TestCmdServeRegistryTraceVersionedReplay is the mixed-version audit
// loop through the CLI: boot the daemon with -registry (bootstrapping
// -model as v1), serve traffic, hot-activate a pushed v2 mid-trace,
// serve more traffic, then verify the whole trace with `shmd replay
// -registry` — each record against the registry version that scored
// it. The same trace must refuse to verify without -registry, since
// every record names a registry version.
func TestCmdServeRegistryTraceVersionedReplay(t *testing.T) {
	model := writeTestModel(t)
	regDir := filepath.Join(t.TempDir(), "models.d")
	tracePath := filepath.Join(t.TempDir(), "decisions.trace")

	ready := make(chan string, 1)
	serveReady = func(addr string) { ready <- addr }
	defer func() { serveReady = nil }()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- serveRun(ctx, []string{
			"-model", model, "-addr", "127.0.0.1:0", "-pool", "2", "-seed", "5",
			"-registry", regDir, "-trace", tracePath, "-trace-buffer", "256",
		})
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("serve exited before ready: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("serve never became ready")
	}

	detect := func() {
		t.Helper()
		prog, err := trace.NewProgram(trace.Trojan, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		windows, err := prog.Trace(4, 256)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := json.Marshal(serve.DetectRequest{Programs: []serve.ProgramJSON{
			{ID: "audit", Windows: serve.EncodeWindows(windows)},
		}})
		resp, err := http.Post(base+"/v1/detect", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("detect = %d (%s)", resp.StatusCode, raw)
		}
	}
	for i := 0; i < 3; i++ {
		detect()
	}

	// Hot-activate a v2 built from the same bundle; its records carry
	// model version 2.
	mf, err := os.Open(model)
	if err != nil {
		t.Fatal(err)
	}
	det, err := hmd.LoadBundle(mf)
	mf.Close()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := registry.NewManifest(2, registry.FannType, det, 43, registry.DefaultGoldenSpecs())
	if err != nil {
		t.Fatal(err)
	}
	raw, err := registry.EncodeManifest(m2)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/admin/models?mode=activate", "application/octet-stream", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	pushBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("activate v2 = %d (%s)", resp.StatusCode, pushBody)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/admin/models")
		if err != nil {
			t.Fatal(err)
		}
		var report serve.AdminModelsReport
		if err := json.NewDecoder(resp.Body).Decode(&report); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if report.Active == 2 && report.Rollout.Phase == "idle" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("v2 never activated: %+v", report)
		}
		time.Sleep(20 * time.Millisecond)
	}
	for i := 0; i < 3; i++ {
		detect()
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve shutdown: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serve never shut down")
	}

	// The trace spans both versions; with -registry every record
	// verifies against the version that scored it.
	if err := cmdReplay([]string{"-model", model, "-trace", tracePath, "-registry", regDir}); err != nil {
		t.Fatalf("versioned replay failed: %v", err)
	}
	// Without -registry the versioned records cannot resolve.
	err = cmdReplay([]string{"-model", model, "-trace", tracePath})
	if err == nil {
		t.Fatal("replay verified versioned records without -registry")
	}
	if !strings.Contains(err.Error(), "-registry") {
		t.Errorf("error does not point at -registry: %v", err)
	}

	// The trace really holds both versions.
	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rd, err := replay.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	versions := map[uint32]int{}
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		versions[rec.ModelVersion]++
	}
	if versions[1] == 0 || versions[2] == 0 {
		t.Fatalf("trace versions = %v, want records from both v1 and v2", versions)
	}

	// Warm restart: the daemon must adopt the registry's active v2, not
	// the -model bundle.
	ready2 := make(chan string, 1)
	serveReady = func(addr string) { ready2 <- addr }
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	done2 := make(chan error, 1)
	go func() {
		done2 <- serveRun(ctx2, []string{
			"-model", model, "-addr", "127.0.0.1:0", "-pool", "1", "-registry", regDir,
		})
	}()
	select {
	case addr := <-ready2:
		resp, err := http.Get("http://" + addr + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var health serve.HealthReport
		if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if health.ModelVersion != 2 {
			t.Errorf("warm restart serves model v%d, want v2", health.ModelVersion)
		}
	case err := <-done2:
		t.Fatalf("warm restart exited before ready: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("warm restart never became ready")
	}
	cancel2()
	if err := <-done2; err != nil {
		t.Fatalf("warm restart shutdown: %v", err)
	}
}

// TestCmdReplayDetectsTampering flips one payload byte of a captured
// trace and checks the CLI refuses it (the frame CRC catches the
// mutation before any replay runs).
func TestCmdReplayDetectsTampering(t *testing.T) {
	model := writeTestModel(t)
	tracePath := filepath.Join(t.TempDir(), "decisions.trace")

	ready := make(chan string, 1)
	serveReady = func(addr string) { ready <- addr }
	defer func() { serveReady = nil }()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- serveRun(ctx, []string{
			"-model", model, "-addr", "127.0.0.1:0", "-pool", "1",
			"-trace", tracePath,
		})
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("serve exited before ready: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("serve never became ready")
	}
	prog, err := trace.NewProgram(trace.Rogue, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	windows, err := prog.Trace(4, 256)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(serve.DetectRequest{Programs: []serve.ProgramJSON{
		{ID: "x", Windows: serve.EncodeWindows(windows)},
	}})
	resp, err := http.Post(base+"/v1/detect", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < len(replay.Magic)+16 {
		t.Fatalf("trace too short: %d bytes", len(raw))
	}
	raw[len(replay.Magic)+8] ^= 0x40
	if err := os.WriteFile(tracePath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	err = cmdReplay([]string{"-model", model, "-trace", tracePath})
	if err == nil {
		t.Fatal("replay accepted a tampered trace")
	}
	if !strings.Contains(err.Error(), "record 0") {
		t.Errorf("tampering error lacks record index: %v", err)
	}
}
