package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestCmdTenantSoak runs a short tenant-persona soak — one
// multi-tenant serve instance, the steady/bursty/abusive cast — and
// checks the isolation report the CI gate would consume.
func TestCmdTenantSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("tenant soak takes seconds; skipped under -short")
	}
	report := filepath.Join(t.TempDir(), "tenant_report.json")
	err := soakRun(context.Background(), []string{
		"-tenants",
		"-duration", "2s",
		"-pool", "2",
		"-report", report,
	})
	if err != nil {
		t.Fatalf("tenant soak: %v", err)
	}

	raw, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var rep tenantSoakReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report not valid JSON: %v\n%s", err, raw)
	}
	if !rep.Pass || len(rep.Failures) != 0 {
		t.Fatalf("report failed: %v", rep.Failures)
	}
	if len(rep.Personas) != 3 {
		t.Fatalf("personas = %d, want 3", len(rep.Personas))
	}
	byTenant := map[string]personaReport{}
	for _, row := range rep.Personas {
		byTenant[row.Tenant] = row
	}
	if row := byTenant["steady"]; row.Sheds != 0 || row.ClientErrors != 0 {
		t.Errorf("steady row = %+v, want zero sheds and zero lost requests", row)
	}
	if row := byTenant["abusive"]; row.ShedFraction < 0.5 {
		t.Errorf("abusive shed fraction = %.3f, want >= 0.5", row.ShedFraction)
	}
	if rep.TenantSeries != 3 {
		t.Errorf("tenant series = %d, want 3", rep.TenantSeries)
	}
}
