package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestCmdFleetSoak runs a short fleet soak — router over three real
// backend listeners, scripted chaos storm, one hard backend kill — and
// checks the convergence report the CI gate would consume.
func TestCmdFleetSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet soak takes seconds; skipped under -short")
	}
	report := filepath.Join(t.TempDir(), "soak_report.json")
	err := soakRun(context.Background(), []string{
		"-fleet",
		"-duration", "3s",
		"-clients", "3",
		"-fleet-backends", "3",
		"-pool", "2",
		"-kill-at", "0.3",
		"-report", report,
	})
	if err != nil {
		t.Fatalf("fleet soak: %v", err)
	}

	raw, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var rep fleetReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report not valid JSON: %v\n%s", err, raw)
	}
	if !rep.Pass || len(rep.Failures) != 0 {
		t.Errorf("report failures: %v", rep.Failures)
	}
	if rep.Requests == 0 || rep.Status["2xx"] == 0 {
		t.Errorf("no successful traffic: %+v", rep)
	}
	if rep.ClientErrors != 0 {
		t.Errorf("lost %d requests at the client", rep.ClientErrors)
	}
	if rep.Killed == "" || rep.Ejections == 0 {
		t.Errorf("kill arc incomplete: killed=%q ejections=%d", rep.Killed, rep.Ejections)
	}
	var sawVictim bool
	for _, b := range rep.Fleet {
		if b.Killed {
			sawVictim = true
			if b.RequestsAfterGrace != 0 {
				t.Errorf("dead backend %s still dispatched %d requests after grace", b.Backend, b.RequestsAfterGrace)
			}
			if b.ReadyAtEnd {
				t.Errorf("dead backend %s still marked ready", b.Backend)
			}
			continue
		}
		if b.RequestsAfterGrace == 0 {
			t.Errorf("survivor %s received no traffic after the kill", b.Backend)
		}
	}
	if !sawVictim {
		t.Errorf("no killed backend in fleet report: %+v", rep.Fleet)
	}
}

// TestCmdFleetSoakTooFewBackends rejects a single-backend fleet: there
// is nothing to fail over to.
func TestCmdFleetSoakTooFewBackends(t *testing.T) {
	err := soakRun(context.Background(), []string{
		"-fleet", "-duration", "1s", "-fleet-backends", "1",
	})
	if err == nil {
		t.Fatal("single-backend fleet accepted")
	}
}
