// Command shmd is the Stochastic-HMD toolkit CLI: synthesize the
// evaluation corpus, train a baseline detector, protect it with
// undervolting, and classify programs.
//
// Usage:
//
//	shmd dataset  [-seed N] [-scale quick|full]
//	shmd train    [-seed N] [-scale quick|full] -out model.fann
//	shmd detect   [-seed N] [-scale quick|full] -model model.fann
//	              [-class trojan] [-index 0] [-rate 0.1 | -undervolt 130]
//	              [-chaos] [-supervise]
//	shmd serve    -model model.fann [-addr 127.0.0.1:8080] [-pool 4]
//	              [-queue 8] [-rate 0.1 | -undervolt 130] [-chaos] [-pprof]
//	              [-journal cal.journal] [-lifecycle] [-hedge-after 0]
//	              [-deadline 0] [-trace decisions.trace] [-trace-buffer 64]
//	              [-registry models.d] [-canary-slots 1] [-canary-window 64]
//	              [-tenant id:class[:rate[:burst[:conc[:stride]]]] ...]
//	              [-tenant-default spec] [-tenant-anon spec]
//	              [-trace-tenants acme,beta]
//	shmd route    -backends http://127.0.0.1:8801,http://127.0.0.1:8802
//	              [-addr 127.0.0.1:8800] [-hedge-after 0] [-retries 2]
//	              [-breaker-threshold 3] [-breaker-cooldown 1s]
//	shmd soak     [-duration 30s] [-clients 4] [-pool 3] [-report soak_report.json]
//	              [-fleet] [-fleet-backends 3]
//	              [-tenants] [-slo-p99 500ms] [-min-abusive-shed 0.5]
//	              [-rollout]
//	shmd replay   -model model.fann -trace decisions.trace [-v]
//	              [-registry models.d]
//	shmd inspect  -model model.fann
//
// With -chaos the detector runs on a fault-injecting environment
// (transient MSR failures, lock contention, thermal drift, supply
// droop, crash risk) instead of the ideal regulator; with -supervise a
// self-healing supervisor rides through those faults — retrying,
// recalibrating on drift, and degrading to flagged nominal-voltage
// detection rather than erroring out.
package main

import (
	"flag"
	"fmt"
	"os"

	"shmd/internal/chaos"
	"shmd/internal/core"
	"shmd/internal/dataset"
	"shmd/internal/faults"
	"shmd/internal/hmd"
	"shmd/internal/rng"
	"shmd/internal/trace"
	"shmd/internal/volt"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "dataset":
		err = cmdDataset(os.Args[2:])
	case "train":
		err = cmdTrain(os.Args[2:])
	case "detect":
		err = cmdDetect(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "route":
		err = cmdRoute(os.Args[2:])
	case "soak":
		err = cmdSoak(os.Args[2:])
	case "replay":
		err = cmdReplay(os.Args[2:])
	case "inspect":
		err = cmdInspect(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "shmd: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "shmd:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `shmd — Stochastic hardware malware detector toolkit

commands:
  dataset   synthesize the evaluation corpus and print its composition
  train     train a baseline HMD on the victim fold and save the model
  detect    classify a program, optionally undervolted
  serve     run the HTTP/JSON detection service off a session pool
  route     run the fleet router over multiple detection backends
  soak      chaos-soak the full service and assert lifecycle invariants
  replay    re-verify a served decision trace bit-for-bit, off-hardware
  inspect   print a saved model's structure and footprint`)
}

// scaleConfig resolves the -scale flag.
func scaleConfig(scale string, seed uint64) (dataset.Config, error) {
	switch scale {
	case "quick":
		return dataset.QuickConfig(seed), nil
	case "full":
		return dataset.PaperConfig(seed), nil
	default:
		return dataset.Config{}, fmt.Errorf("unknown scale %q (quick|full)", scale)
	}
}

func cmdDataset(args []string) error {
	fs := flag.NewFlagSet("dataset", flag.ExitOnError)
	seed := fs.Uint64("seed", 1, "corpus seed")
	scale := fs.String("scale", "quick", "corpus scale (quick|full)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := scaleConfig(*scale, *seed)
	if err != nil {
		return err
	}
	d, err := dataset.Generate(cfg)
	if err != nil {
		return err
	}
	malware, benign := d.Counts()
	fmt.Printf("corpus: %d programs (%d malware, %d benign), %d windows × %d instructions\n",
		len(d.Programs), malware, benign, cfg.Windows, cfg.WindowSize)
	perClass := map[trace.Class]int{}
	for _, p := range d.Programs {
		perClass[p.Class()]++
	}
	for c := trace.Class(0); int(c) < trace.NumClasses; c++ {
		fmt.Printf("  %-18s %d\n", c.String(), perClass[c])
	}
	split, err := d.ThreeFold(0)
	if err != nil {
		return err
	}
	fmt.Printf("folds: victim-train %d, attacker-train %d, test %d\n",
		len(split.VictimTrain), len(split.AttackerTrain), len(split.Test))
	return nil
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	seed := fs.Uint64("seed", 1, "corpus and training seed")
	scale := fs.String("scale", "quick", "corpus scale (quick|full)")
	out := fs.String("out", "model.fann", "output model path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := scaleConfig(*scale, *seed)
	if err != nil {
		return err
	}
	d, err := dataset.Generate(cfg)
	if err != nil {
		return err
	}
	split, err := d.ThreeFold(0)
	if err != nil {
		return err
	}
	fmt.Printf("training baseline HMD on %d programs...\n", len(split.VictimTrain))
	det, err := hmd.Train(d.Select(split.VictimTrain), hmd.Config{Seed: *seed})
	if err != nil {
		return err
	}
	c := hmd.Evaluate(det, d.Select(split.Test))
	fmt.Printf("test fold: %v\n", c)

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	n, err := det.SaveBundle(f)
	if err != nil {
		return err
	}
	fmt.Printf("saved detector bundle %s (%d bytes)\n", *out, n)
	return nil
}

func cmdDetect(args []string) error {
	fs := flag.NewFlagSet("detect", flag.ExitOnError)
	seed := fs.Uint64("seed", 1, "corpus seed")
	scale := fs.String("scale", "quick", "corpus scale (quick|full)")
	model := fs.String("model", "model.fann", "trained model path")
	class := fs.String("class", "trojan", "program class to run")
	index := fs.Int("index", 0, "program index within the class")
	rate := fs.Float64("rate", 0, "target multiplier error rate (0 = nominal)")
	undervolt := fs.Float64("undervolt", 0, "explicit undervolt depth in mV")
	repeats := fs.Int("repeats", 5, "detection repetitions (shows stochasticity)")
	withChaos := fs.Bool("chaos", false, "run on a fault-injecting environment instead of the ideal regulator")
	supervise := fs.Bool("supervise", false, "wrap detection in the self-healing supervisor")
	if err := fs.Parse(args); err != nil {
		return err
	}

	f, err := os.Open(*model)
	if err != nil {
		return err
	}
	det, err := hmd.LoadBundle(f)
	f.Close()
	if err != nil {
		return err
	}

	cls, err := trace.ParseClass(*class)
	if err != nil {
		return err
	}
	cfg, err := scaleConfig(*scale, *seed)
	if err != nil {
		return err
	}
	prog, err := trace.NewProgram(cls, *index, cfg.Seed)
	if err != nil {
		return err
	}
	windows, err := prog.Trace(cfg.Windows, cfg.WindowSize)
	if err != nil {
		return err
	}

	opts := core.Options{ErrorRate: *rate, UndervoltMV: *undervolt, Seed: *seed}
	var s *core.StochasticHMD
	var env *chaos.Env
	if *withChaos {
		reg, err := volt.NewRegulator(volt.PlaneCore, volt.NewDeviceProfile(opts.DeviceSeed))
		if err != nil {
			return err
		}
		env, err = chaos.NewEnv(reg, chaos.DefaultConfig(*seed))
		if err != nil {
			return err
		}
		inj, err := faults.NewInjector(0, nil, rng.NewRand(*seed, 0x5BD))
		if err != nil {
			return err
		}
		s, err = core.NewWithHardware(det, env, inj, opts)
		if err != nil {
			return err
		}
	} else {
		s, err = core.New(det, opts)
		if err != nil {
			return err
		}
	}
	fmt.Printf("program %s (ground truth: malware=%v)\n", prog.Name, prog.IsMalware())
	fmt.Printf("detector: supply %.3f V (undervolt %.1f mV), error rate %.4f\n",
		s.SupplyVoltage(), volt.DepthAtVoltage(s.SupplyVoltage()), s.ErrorRate())

	if *supervise {
		sup, err := core.NewSupervisor(s, core.SupervisorConfig{})
		if err != nil {
			return err
		}
		for i := 0; i < *repeats; i++ {
			v, err := sup.DetectProgram(windows)
			if err != nil {
				return err
			}
			mode := "protected"
			if v.Unprotected {
				mode = "UNPROTECTED"
			}
			fmt.Printf("  run %d: malware=%v score=%.4f [%s, attempts %d]\n",
				i+1, v.Malware, v.Score, mode, v.Attempts)
		}
		h := sup.Health()
		fmt.Printf("supervisor: state=%v protected=%d unprotected=%d retries=%d trips=%d recalibrations=%d\n",
			h.State, h.Protected, h.Unprotected, h.Retries, h.Trips, h.Recalibrations)
		if env != nil {
			ev := env.Events()
			fmt.Printf("chaos: writes=%d transients=%d contentions=%d excursions=%d droops=%d crashes=%d\n",
				ev.Writes, ev.Transients, ev.Contentions, ev.Excursions, ev.Droops, ev.Crashes)
		}
		return nil
	}
	for i := 0; i < *repeats; i++ {
		dec := s.DetectProgram(windows)
		fmt.Printf("  run %d: malware=%v score=%.4f\n", i+1, dec.Malware, dec.Score)
	}
	return nil
}

func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	model := fs.String("model", "model.fann", "trained model path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := os.Open(*model)
	if err != nil {
		return err
	}
	defer f.Close()
	det, err := hmd.LoadBundle(f)
	if err != nil {
		return err
	}
	net := det.Network()
	cfg := det.Config()
	fmt.Printf("feature set: %v, period %d, threshold %.2f\n", cfg.FeatureSet, cfg.Period, cfg.Threshold)
	fmt.Printf("layers:  %v\n", net.Layers())
	fmt.Printf("weights: %d\n", net.NumWeights())
	fmt.Printf("hidden activation: %v\n", net.HiddenActivation())
	fmt.Printf("output activation: %v\n", net.OutputActivation())
	fmt.Printf("storage: %d bytes (%.1f KB)\n", net.SavedSize(), float64(net.SavedSize())/1024)
	return nil
}
