package main

// The canary-rollout soak: one registry-backed serve instance under
// sustained live traffic, with two model pushes scripted mid-storm:
//
//   - v2 is bit-identical to the incumbent. It must canary on one
//     slot, agree with the baseline over the conformance window, and
//     auto-promote fleet-wide — with zero lost requests and zero
//     double checkouts while every slot rolls under load.
//   - v3 is deliberately drifted (same network, a decision threshold
//     chosen to flip the soak programs' verdicts). Its manifest is
//     perfectly valid — it pins its own goldens — so only the live
//     canary comparison can catch it. The rollout must auto-rollback
//     and leave v2 serving on every slot.
//
// Like the chaos, fleet, and tenant soaks, the run writes a
// machine-readable JSON report for CI artifacts. The -duration flag
// is the budget both phases must complete within, not a fixed
// runtime: the soak ends shortly after the rollback resolves.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"shmd/internal/hmd"
	"shmd/internal/registry"
	"shmd/internal/serve"
	"shmd/internal/trace"
)

// rolloutParams are the knobs the rollout soak inherits from the soak
// flag set.
type rolloutParams struct {
	duration time.Duration
	clients  int
	pool     int
	rate     float64
	seed     uint64
	deadline time.Duration
	report   string
	model    string
	max5xx   float64
}

// rolloutSoakReport is the machine-readable rollout soak result.
type rolloutSoakReport struct {
	Duration        string         `json:"duration"`
	Requests        uint64         `json:"requests"`
	Status          map[string]int `json:"status"`
	ClientErrors    uint64         `json:"clientErrors"`
	Rate5xx         float64        `json:"rate5xx"`
	DoubleCheckouts uint64         `json:"doubleCheckouts"`
	Rolls           uint64         `json:"rolls"`
	Promoted        uint64         `json:"promoted"`
	RolledBack      uint64         `json:"rolledBack"`
	Aborted         uint64         `json:"aborted"`
	ActiveVersion   uint32         `json:"activeVersion"`
	SlotVersions    []uint32       `json:"slotVersions"`
	Failures        []string       `json:"failures"`
	Pass            bool           `json:"pass"`
}

// rolloutSoakRun drives the full canary rollout arc — bootstrap v1,
// push a conforming v2 mid-traffic, push a drifted v3 after the
// promotion — and asserts the fleet ends on v2 with nothing dropped.
func rolloutSoakRun(ctx context.Context, p rolloutParams) error {
	base, err := soakModel(p.model)
	if err != nil {
		return err
	}
	regDir, err := os.MkdirTemp("", "shmd-rollout-soak-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(regDir)
	reg, err := registry.Open(regDir, log.Printf)
	if err != nil {
		return err
	}
	now := uint64(time.Now().Unix())
	m1, err := registry.NewManifest(1, registry.FannType, base, now, registry.DefaultGoldenSpecs())
	if err != nil {
		return err
	}
	if err := reg.Register(m1); err != nil {
		return err
	}
	if err := reg.Activate(1); err != nil {
		return err
	}
	mdl1, err := reg.Model(1)
	if err != nil {
		return err
	}

	cfg := serve.Config{
		Pool: serve.PoolConfig{
			Size:         p.pool,
			ErrorRate:    p.rate,
			Seed:         p.seed,
			ModelVersion: 1,
			Lifecycle: serve.LifecycleConfig{
				Enabled:           true,
				RespawnBackoff:    20 * time.Millisecond,
				RespawnMaxBackoff: time.Second,
			},
			Logf: log.Printf,
		},
		QueueDepth:      4 * p.clients,
		DefaultDeadline: p.deadline,
		Registry:        reg,
		Rollout:         serve.RolloutConfig{CanarySlots: 1, Window: 48, MinCanary: 16},
	}
	srv, err := serve.New(mdl1.Detector(), cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	serveCtx, stopServe := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(serveCtx, ln) }()
	url := "http://" + ln.Addr().String()
	log.Printf("rollout soak: serving on %s (pool %d, clients %d, budget %s)", ln.Addr(), p.pool, p.clients, p.duration)

	body, err := soakBody(p.seed)
	if err != nil {
		stopServe()
		<-serveDone
		return err
	}

	soakCtx, stopSoak := context.WithTimeout(ctx, p.duration)
	defer stopSoak()
	budget := time.Now().Add(p.duration)

	var (
		total, clientErrs atomic.Uint64
		statusMu          sync.Mutex
		status            = map[string]int{}
	)
	var wg sync.WaitGroup
	for c := 0; c < p.clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Timeout: p.deadline + 5*time.Second}
			for soakCtx.Err() == nil {
				req, err := http.NewRequestWithContext(soakCtx, http.MethodPost, url+"/v1/detect", bytes.NewReader(body))
				if err != nil {
					clientErrs.Add(1)
					continue
				}
				req.Header.Set("Content-Type", "application/json")
				resp, err := client.Do(req)
				if err != nil {
					if soakCtx.Err() == nil {
						clientErrs.Add(1)
					}
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				total.Add(1)
				statusMu.Lock()
				status[fmt.Sprintf("%dxx", resp.StatusCode/100)]++
				statusMu.Unlock()
				if resp.StatusCode == http.StatusTooManyRequests {
					time.Sleep(time.Millisecond)
				}
			}
		}()
	}

	// The scripted rollout arc, driven against the live admin surface.
	rep := rolloutSoakReport{Duration: p.duration.String()}
	fail := func(format string, args ...any) {
		rep.Failures = append(rep.Failures, fmt.Sprintf(format, args...))
	}
	arc := func() error {
		// Warm up: the baseline window needs live traffic before a canary
		// comparison means anything.
		if err := rolloutWait(soakCtx, budget, "warmup traffic", func() (bool, error) {
			return total.Load() >= 20, nil
		}); err != nil {
			return err
		}

		// Push v2: same network, fresh manifest. Canary → agree → promote.
		m2, err := registry.NewManifest(2, registry.FannType, base, now+1, registry.DefaultGoldenSpecs())
		if err != nil {
			return err
		}
		if err := rolloutPush(url, m2); err != nil {
			return err
		}
		log.Printf("rollout soak: pushed v2 (conforming), waiting for promotion")
		if err := rolloutWait(soakCtx, budget, "v2 promotion", func() (bool, error) {
			st, err := rolloutAdminStatus(url)
			if err != nil {
				return false, err
			}
			if st.Rollout.RolledBack > 0 || st.Rollout.Aborted > 0 {
				return false, fmt.Errorf("v2 rollout ended %+v, want promotion", st.Rollout)
			}
			return st.Active == 2 && st.Rollout.Phase == "idle" && st.Rollout.Promoted == 1, nil
		}); err != nil {
			return err
		}
		log.Printf("rollout soak: v2 promoted fleet-wide")

		// Push v3: drifted threshold, self-consistent manifest. Canary →
		// disagree → rollback, incumbent v2 untouched.
		drifted, err := rolloutDriftedDetector(base, p.seed)
		if err != nil {
			return err
		}
		m3, err := registry.NewManifest(3, registry.FannType, drifted, now+2, registry.DefaultGoldenSpecs())
		if err != nil {
			return err
		}
		if err := rolloutPush(url, m3); err != nil {
			return err
		}
		log.Printf("rollout soak: pushed v3 (drifted), waiting for rollback")
		if err := rolloutWait(soakCtx, budget, "v3 rollback", func() (bool, error) {
			st, err := rolloutAdminStatus(url)
			if err != nil {
				return false, err
			}
			if st.Rollout.Promoted > 1 {
				return false, fmt.Errorf("drifted v3 was promoted: %+v", st.Rollout)
			}
			return st.Active == 2 && st.Rollout.Phase == "idle" && st.Rollout.RolledBack == 1, nil
		}); err != nil {
			return err
		}
		log.Printf("rollout soak: v3 rolled back, incumbent v2 intact")
		return nil
	}
	if err := arc(); err != nil {
		fail("%v", err)
	} else {
		// A short linger proves the post-rollback fleet still serves.
		select {
		case <-time.After(250 * time.Millisecond):
		case <-soakCtx.Done():
		}
	}
	stopSoak()
	wg.Wait()
	stopServe()
	if err := <-serveDone; err != nil {
		return fmt.Errorf("rollout soak: server shutdown: %w", err)
	}

	pool := srv.Pool()
	st := srv.Rollout().Status()
	rep.Requests = total.Load()
	rep.Status = status
	rep.ClientErrors = clientErrs.Load()
	rep.DoubleCheckouts = pool.DoubleCheckouts()
	rep.Rolls = pool.Rolls()
	rep.Promoted = st.Promoted
	rep.RolledBack = st.RolledBack
	rep.Aborted = st.Aborted
	rep.SlotVersions = pool.ModelVersions()
	if v, ok := reg.Active(); ok {
		rep.ActiveVersion = v
	}
	if rep.Requests > 0 {
		rep.Rate5xx = float64(status["5xx"]) / float64(rep.Requests)
	}

	if rep.Requests == 0 {
		fail("no requests completed")
	}
	if status["2xx"] == 0 {
		fail("no successful detections")
	}
	if rep.ClientErrors != 0 {
		fail("%d requests lost mid-rollout", rep.ClientErrors)
	}
	if rep.DoubleCheckouts != 0 {
		fail("session-exclusivity violated: %d double checkouts", rep.DoubleCheckouts)
	}
	if rep.Rate5xx > p.max5xx {
		fail("5xx rate %.4f exceeds budget %.4f", rep.Rate5xx, p.max5xx)
	}
	if rep.Promoted != 1 {
		fail("v2 promotions = %d, want 1", rep.Promoted)
	}
	if rep.RolledBack != 1 {
		fail("v3 rollbacks = %d, want 1", rep.RolledBack)
	}
	if rep.ActiveVersion != 2 {
		fail("registry active = v%d after the arc, want v2", rep.ActiveVersion)
	}
	for id, v := range rep.SlotVersions {
		if v != 2 {
			fail("slot %d ended on v%d, want v2", id, v)
		}
	}
	// v2 promote rolls every slot once; the v3 canary rolls one slot out
	// and back.
	if want := uint64(p.pool + 2); rep.Rolls < want {
		fail("only %d slot rolls recorded, want >= %d", rep.Rolls, want)
	}
	rep.Pass = len(rep.Failures) == 0

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(p.report, append(out, '\n'), 0o644); err != nil {
		return err
	}
	log.Printf("rollout soak: %d requests (%.4f 5xx), %d rolls, promoted %d, rolled back %d, report %s",
		rep.Requests, rep.Rate5xx, rep.Rolls, rep.Promoted, rep.RolledBack, p.report)
	if !rep.Pass {
		return fmt.Errorf("rollout soak failed: %v", rep.Failures)
	}
	fmt.Println("rollout soak: PASS")
	return nil
}

// rolloutPush POSTs an encoded manifest to the admin surface and
// expects the canary to be accepted.
func rolloutPush(url string, m *registry.Manifest) error {
	raw, err := registry.EncodeManifest(m)
	if err != nil {
		return err
	}
	resp, err := http.Post(url+"/v1/admin/models", "application/octet-stream", bytes.NewReader(raw))
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("push v%d = %d (%s)", m.Version, resp.StatusCode, bytes.TrimSpace(body))
	}
	return nil
}

// rolloutAdminStatus fetches GET /v1/admin/models.
func rolloutAdminStatus(url string) (serve.AdminModelsReport, error) {
	var report serve.AdminModelsReport
	resp, err := http.Get(url + "/v1/admin/models")
	if err != nil {
		return report, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return report, fmt.Errorf("admin status = %d", resp.StatusCode)
	}
	return report, json.NewDecoder(resp.Body).Decode(&report)
}

// rolloutWait polls cond until it holds, the budget expires, or the
// soak window closes. A cond error is terminal (scripted invariants
// like "v3 must not promote" report through it).
func rolloutWait(ctx context.Context, budget time.Time, what string, cond func() (bool, error)) error {
	for {
		ok, err := cond()
		if err != nil {
			return fmt.Errorf("%s: %w", what, err)
		}
		if ok {
			return nil
		}
		if time.Now().After(budget) {
			return fmt.Errorf("%s: not reached within the soak budget", what)
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("%s: soak window closed first: %w", what, ctx.Err())
		case <-time.After(25 * time.Millisecond):
		}
	}
}

// rolloutDriftedDetector builds a detector on the incumbent's network
// whose decision threshold flips the soak programs' nominal verdicts —
// a drift the manifest's self-pinned goldens cannot catch, only the
// live canary comparison can.
func rolloutDriftedDetector(base *hmd.HMD, seed uint64) (*hmd.HMD, error) {
	lo, hi := 1.0, 0.0
	for _, cls := range []trace.Class{trace.Trojan, trace.Benign} {
		prog, err := trace.NewProgram(cls, 0, seed)
		if err != nil {
			return nil, err
		}
		windows, err := prog.Trace(4, 256)
		if err != nil {
			return nil, err
		}
		dec := base.DetectProgram(windows)
		if dec.Score < lo {
			lo = dec.Score
		}
		if dec.Score > hi {
			hi = dec.Score
		}
	}
	cfg := base.Config()
	if lo >= cfg.Threshold {
		// Both programs score malware: raise the threshold above both.
		cfg.Threshold = (hi + 1) / 2
	} else {
		// At least one scores benign: drop the threshold below both, so
		// every soak verdict lands malware and the drift is unmissable.
		cfg.Threshold = lo / 2
	}
	return hmd.FromNetwork(base.Network(), cfg)
}
