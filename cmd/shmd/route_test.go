package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestCmdRoute boots the route subcommand against a fake backend,
// proxies one request through it, and drains it via context cancel.
func TestCmdRoute(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/readyz":
			w.WriteHeader(http.StatusOK)
		case "/v1/detect":
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprint(w, `{"ok":true}`)
		default:
			http.NotFound(w, r)
		}
	}))
	defer backend.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrCh := make(chan string, 1)
	routeReady = func(addr string) { addrCh <- addr }
	defer func() { routeReady = nil }()

	done := make(chan error, 1)
	go func() {
		done <- routeRun(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-backends", backend.URL,
			"-probe-interval", "20ms",
		})
	}()

	var addr string
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("router exited before ready: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("router never became ready")
	}

	resp, err := http.Post("http://"+addr+"/v1/detect", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatalf("proxy request: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxy status = %d, body %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"ok":true`) {
		t.Fatalf("proxy body = %s", body)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("route exited with error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("router did not drain after cancel")
	}
}

// TestCmdRouteRequiresBackends rejects a flagless invocation.
func TestCmdRouteRequiresBackends(t *testing.T) {
	if err := routeRun(context.Background(), nil); err == nil {
		t.Fatal("missing -backends accepted")
	}
}
