package main

// The tenant-persona soak: one serve instance with multi-tenant QoS
// on, three scripted tenant personas hammering it concurrently, and
// isolation SLOs asserted at the end:
//
//   - steady (realtime): paced traffic well inside its quota. The SLO
//     tenant — zero rate sheds, zero lost requests, p99 latency under
//     the pinned budget, no matter what the other tenants do.
//   - bursty (standard): alternating idle windows and bursts sized to
//     its burst capacity. Well-behaved in aggregate: occasional 429s
//     on burst edges are fine, lost requests are not.
//   - abusive (batch): unpaced hammering at many times its sustained
//     rate, never honoring Retry-After. The isolation proof: most of
//     its traffic sheds 429 (cheap, at admission), and none of the
//     pressure leaks into steady's latency or error budget.
//
// Like the chaos and fleet soaks, the run is seeded end to end and
// writes a machine-readable JSON report for CI artifacts.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"shmd/internal/serve"
	"shmd/internal/tenant"
)

// tenantParams are the knobs the tenant soak inherits from the soak
// flag set.
type tenantParams struct {
	duration time.Duration
	pool     int
	rate     float64
	seed     uint64
	deadline time.Duration
	report   string
	model    string
	sloP99   time.Duration
	minShed  float64
	max5xx   float64
}

// persona is one scripted tenant behavior.
type persona struct {
	spec  tenant.Spec
	loops int
	// pace sleeps between requests (steady traffic); zero hammers.
	pace time.Duration
	// burst > 0 sends that many back-to-back requests, then idles.
	burst int
	idle  time.Duration
	// wellBehaved personas must lose nothing: every request answered,
	// client errors zero.
	wellBehaved bool
}

// tenantPersonas is the scripted cast. Quotas are sized relative to
// each persona's offered load, not the machine: steady offers ~half
// its sustained rate, bursty fits its burst capacity, abusive offers
// unbounded load against a small bucket.
func tenantPersonas() []persona {
	return []persona{
		{
			spec:        tenant.Spec{ID: "steady", Class: tenant.Realtime, Rate: 400, Burst: 100},
			loops:       2,
			pace:        10 * time.Millisecond, // 2 × 100/s ≪ 400/s
			wellBehaved: true,
		},
		{
			spec:        tenant.Spec{ID: "bursty", Class: tenant.Standard, Rate: 100, Burst: 60},
			loops:       1,
			burst:       30,
			idle:        250 * time.Millisecond,
			wellBehaved: true,
		},
		{
			spec:  tenant.Spec{ID: "abusive", Class: tenant.Batch, Rate: 20, Burst: 10},
			loops: 2,
		},
	}
}

// personaStats collects one persona's client-side outcomes.
type personaStats struct {
	mu        sync.Mutex
	requests  uint64
	status    map[string]int
	sheds     uint64 // 429s
	clientErr uint64
	latencies []time.Duration // successful (2xx) requests only
}

func (ps *personaStats) record(code int, d time.Duration) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	ps.requests++
	ps.status[fmt.Sprintf("%dxx", code/100)]++
	if code == http.StatusTooManyRequests {
		ps.sheds++
	}
	if code/100 == 2 {
		ps.latencies = append(ps.latencies, d)
	}
}

// p99 returns the 99th-percentile of the recorded latencies.
func (ps *personaStats) p99() time.Duration {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if len(ps.latencies) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(ps.latencies))
	copy(sorted, ps.latencies)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[(len(sorted)-1)*99/100]
}

// personaReport is one persona's row in the JSON report.
type personaReport struct {
	Tenant       string         `json:"tenant"`
	Class        string         `json:"class"`
	Requests     uint64         `json:"requests"`
	Status       map[string]int `json:"status"`
	Sheds        uint64         `json:"sheds"`
	ShedFraction float64        `json:"shedFraction"`
	ClientErrors uint64         `json:"clientErrors"`
	P99Ms        float64        `json:"p99Ms"`
}

// tenantSoakReport is the machine-readable tenant soak result.
type tenantSoakReport struct {
	Duration     string          `json:"duration"`
	SLOP99Ms     float64         `json:"sloP99Ms"`
	MinShed      float64         `json:"minAbusiveShedFraction"`
	Personas     []personaReport `json:"personas"`
	TenantSeries int             `json:"tenantSeries"`
	Failures     []string        `json:"failures"`
	Pass         bool            `json:"pass"`
}

// tenantSoakRun boots one multi-tenant serve instance and runs the
// persona cast against it. A non-nil error means an isolation SLO
// broke.
func tenantSoakRun(ctx context.Context, p tenantParams) error {
	base, err := soakModel(p.model)
	if err != nil {
		return err
	}
	personas := tenantPersonas()
	specs := make([]tenant.Spec, len(personas))
	totalLoops := 0
	for i, per := range personas {
		specs[i] = per.spec
		totalLoops += per.loops
	}
	cfg := serve.Config{
		Pool: serve.PoolConfig{
			Size:      p.pool,
			ErrorRate: p.rate,
			Seed:      p.seed,
			Logf:      log.Printf,
		},
		QueueDepth:      4 * totalLoops,
		DefaultDeadline: p.deadline,
		JitterSeed:      int64(p.seed),
		Tenancy:         &tenant.Config{Tenants: specs},
	}
	srv, err := serve.New(base, cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return err
	}
	serveCtx, stopServe := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(serveCtx, ln) }()
	url := "http://" + ln.Addr().String()
	log.Printf("tenant soak: serving on %s (pool %d, %d personas, %s)", ln.Addr(), p.pool, len(personas), p.duration)

	body, err := soakBody(p.seed)
	if err != nil {
		stopServe()
		<-serveDone
		return err
	}

	soakCtx, stopSoak := context.WithTimeout(ctx, p.duration)
	defer stopSoak()

	stats := make([]*personaStats, len(personas))
	var wg sync.WaitGroup
	for i, per := range personas {
		ps := &personaStats{status: map[string]int{}}
		stats[i] = ps
		for l := 0; l < per.loops; l++ {
			wg.Add(1)
			go func(per persona) {
				defer wg.Done()
				client := &http.Client{Timeout: p.deadline + 5*time.Second}
				sent := 0
				for soakCtx.Err() == nil {
					req, err := http.NewRequestWithContext(soakCtx, http.MethodPost, url+"/v1/detect", bytes.NewReader(body))
					if err != nil {
						ps.mu.Lock()
						ps.clientErr++
						ps.mu.Unlock()
						continue
					}
					req.Header.Set("Content-Type", "application/json")
					req.Header.Set("X-Tenant", per.spec.ID)
					req.Header.Set("X-Tenant-Class", per.spec.Class.String())
					start := time.Now()
					resp, err := client.Do(req)
					if err != nil {
						if soakCtx.Err() == nil {
							ps.mu.Lock()
							ps.clientErr++
							ps.mu.Unlock()
						}
						continue
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					ps.record(resp.StatusCode, time.Since(start))
					sent++
					switch {
					case per.pace > 0:
						sleepCtx(soakCtx, per.pace)
					case per.burst > 0 && sent%per.burst == 0:
						sleepCtx(soakCtx, per.idle)
					}
				}
			}(per)
		}
	}
	<-soakCtx.Done()
	wg.Wait()
	stopServe()
	if err := <-serveDone; err != nil {
		return fmt.Errorf("tenant soak: server shutdown: %w", err)
	}

	rep := tenantSoakReport{
		Duration:     p.duration.String(),
		SLOP99Ms:     float64(p.sloP99) / float64(time.Millisecond),
		MinShed:      p.minShed,
		TenantSeries: srv.Metrics().TenantSeriesCount(),
	}
	fail := func(format string, args ...any) {
		rep.Failures = append(rep.Failures, fmt.Sprintf(format, args...))
	}
	for i, per := range personas {
		ps := stats[i]
		ps.mu.Lock()
		row := personaReport{
			Tenant:       per.spec.ID,
			Class:        per.spec.Class.String(),
			Requests:     ps.requests,
			Status:       ps.status,
			Sheds:        ps.sheds,
			ClientErrors: ps.clientErr,
		}
		fxx := ps.status["5xx"]
		ps.mu.Unlock()
		if row.Requests > 0 {
			row.ShedFraction = float64(row.Sheds) / float64(row.Requests)
		}
		row.P99Ms = float64(ps.p99()) / float64(time.Millisecond)
		rep.Personas = append(rep.Personas, row)

		if row.Requests == 0 {
			fail("%s: no requests completed", row.Tenant)
			continue
		}
		if per.wellBehaved {
			// Zero lost requests: every request gets an answer, and 5xx
			// stays inside the same budget the chaos soak enforces.
			if row.ClientErrors != 0 {
				fail("%s: %d lost requests (want 0 for a well-behaved tenant)", row.Tenant, row.ClientErrors)
			}
			if r5 := float64(fxx) / float64(row.Requests); r5 > p.max5xx {
				fail("%s: 5xx rate %.4f exceeds budget %.4f", row.Tenant, r5, p.max5xx)
			}
		}
		switch row.Tenant {
		case "steady":
			if row.Sheds != 0 {
				fail("steady: %d rate sheds (isolation broken: inside-quota tenant was refused)", row.Sheds)
			}
			if p99 := ps.p99(); p99 > p.sloP99 {
				fail("steady: p99 %s exceeds SLO %s", p99, p.sloP99)
			}
		case "abusive":
			if row.ShedFraction < p.minShed {
				fail("abusive: shed fraction %.3f below %.3f (quota not biting)", row.ShedFraction, p.minShed)
			}
			if row.Status["2xx"] == 0 {
				fail("abusive: zero admits (quota should leak its sustained rate, not starve it)")
			}
		}
	}
	rep.Pass = len(rep.Failures) == 0

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(p.report, append(out, '\n'), 0o644); err != nil {
		return err
	}
	for _, row := range rep.Personas {
		log.Printf("tenant soak: %-7s %5d requests, shed %.3f, p99 %.1fms, %d lost",
			row.Tenant, row.Requests, row.ShedFraction, row.P99Ms, row.ClientErrors)
	}
	if !rep.Pass {
		return fmt.Errorf("tenant soak failed: %v", rep.Failures)
	}
	fmt.Println("tenant soak: PASS")
	return nil
}

// sleepCtx sleeps for d or until ctx ends, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}
