package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestCmdRolloutSoak runs a short canary-rollout soak — bootstrap v1,
// push a conforming v2 mid-traffic, push a drifted v3 after the
// promotion — and checks the report the CI gate would consume: v2
// promoted, v3 rolled back, nothing lost while every slot rolled.
func TestCmdRolloutSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("rollout soak takes seconds; skipped under -short")
	}
	report := filepath.Join(t.TempDir(), "rollout_report.json")
	err := soakRun(context.Background(), []string{
		"-rollout",
		"-duration", "30s",
		"-pool", "3",
		"-clients", "3",
		"-report", report,
	})
	if err != nil {
		t.Fatalf("rollout soak: %v", err)
	}

	raw, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var rep rolloutSoakReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report not valid JSON: %v\n%s", err, raw)
	}
	if !rep.Pass || len(rep.Failures) != 0 {
		t.Fatalf("report failed: %v", rep.Failures)
	}
	if rep.Promoted != 1 || rep.RolledBack != 1 {
		t.Fatalf("promoted %d / rolledBack %d, want 1 / 1", rep.Promoted, rep.RolledBack)
	}
	if rep.ActiveVersion != 2 {
		t.Fatalf("active version = %d, want 2", rep.ActiveVersion)
	}
	for id, v := range rep.SlotVersions {
		if v != 2 {
			t.Errorf("slot %d ended on v%d, want v2", id, v)
		}
	}
	if rep.ClientErrors != 0 {
		t.Errorf("client errors = %d, want 0 (lost requests mid-roll)", rep.ClientErrors)
	}
	if rep.DoubleCheckouts != 0 {
		t.Errorf("double checkouts = %d, want 0", rep.DoubleCheckouts)
	}
}
