package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"shmd/internal/chaos"
	"shmd/internal/fann"
	"shmd/internal/features"
	"shmd/internal/hmd"
	"shmd/internal/serve"
	"shmd/internal/trace"
	"shmd/internal/wire"
	"shmd/pkg/sdk"
)

// cmdSoak runs the chaos soak harness until the configured duration
// elapses or the process is signalled.
func cmdSoak(args []string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return soakRun(ctx, args)
}

// soakReport is the machine-readable soak result written to -report.
type soakReport struct {
	Duration        string         `json:"duration"`
	Wire            bool           `json:"wire"`
	Requests        uint64         `json:"requests"`
	Status          map[string]int `json:"status"`
	ClientErrors    uint64         `json:"clientErrors"`
	Rate5xx         float64        `json:"rate5xx"`
	DoubleCheckouts uint64         `json:"doubleCheckouts"`
	Quarantines     uint64         `json:"quarantines"`
	Respawns        uint64         `json:"respawns"`
	Hedges          uint64         `json:"hedges"`
	HedgeWins       uint64         `json:"hedgeWins"`
	DeadlineExpired uint64         `json:"deadlineExpired"`
	DegradedSeen    bool           `json:"degradedSeen"`
	RecoveredAfter  bool           `json:"recoveredAfterDegraded"`
	StormTriggers   int            `json:"stormTriggers"`
	Failures        []string       `json:"failures"`
	Pass            bool           `json:"pass"`
}

// soakRun drives the full detection service — real listener, real HTTP
// clients — under a scripted chaos storm, then asserts the lifecycle
// invariants: zero double checkouts, every quarantined slot respawned,
// and a bounded 5xx rate. A non-nil error means an invariant broke.
func soakRun(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("soak", flag.ExitOnError)
	duration := fs.Duration("duration", 30*time.Second, "how long to soak")
	clients := fs.Int("clients", 4, "concurrent request loops")
	pool := fs.Int("pool", 3, "pooled detection sessions")
	rate := fs.Float64("rate", 0.1, "target multiplier error rate")
	seed := fs.Uint64("seed", 1, "root seed (fault streams, storm schedule)")
	hedgeAfter := fs.Duration("hedge-after", 5*time.Millisecond, "hedged re-dispatch budget (0 = off)")
	maxBatch := fs.Int("max-batch", 0, "micro-batch lane limit (0 or 1 = scalar dispatch)")
	maxBatchWait := fs.Duration("max-batch-wait", 0, "partial micro-batch flush wait (0 = serve default)")
	deadline := fs.Duration("deadline", 2*time.Second, "server-side default detection deadline")
	journal := fs.String("journal", "", "calibration journal path (empty = journaling off)")
	report := fs.String("report", "soak_report.json", "JSON report output path")
	stormEvery := fs.Duration("storm-every", 100*time.Millisecond, "interval between storm fault triggers")
	permanentAt := fs.Float64("permanent-at", 0.3, "fraction of the duration at which a permanent fault lands")
	max5xx := fs.Float64("max-5xx", 0.05, "maximum tolerated 5xx fraction")
	model := fs.String("model", "", "trained model path (empty = synthesized model)")
	fleet := fs.Bool("fleet", false, "soak the fleet topology: router + real backend listeners + one hard backend kill")
	fleetBackends := fs.Int("fleet-backends", 3, "backend services behind the router (fleet mode)")
	killAt := fs.Float64("kill-at", 0.4, "fraction of the duration at which one backend is hard-killed (fleet mode)")
	wireSoak := fs.Bool("wire", false, "drive detections over the SHMDWIRE binary protocol via the Go SDK instead of HTTP")
	tenants := fs.Bool("tenants", false, "soak the multi-tenant QoS layer: steady/bursty/abusive tenant personas against one server, isolation SLOs asserted")
	rolloutSoak := fs.Bool("rollout", false, "soak the canary rollout arc: push a conforming model mid-traffic (must promote), then a drifted one (must roll back)")
	sloP99 := fs.Duration("slo-p99", 500*time.Millisecond, "steady persona's p99 latency SLO (tenant mode)")
	minShed := fs.Float64("min-abusive-shed", 0.5, "minimum fraction of the abusive persona's requests that must shed 429 (tenant mode)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *rolloutSoak {
		return rolloutSoakRun(ctx, rolloutParams{
			duration: *duration,
			clients:  *clients,
			pool:     *pool,
			rate:     *rate,
			seed:     *seed,
			deadline: *deadline,
			report:   *report,
			model:    *model,
			max5xx:   *max5xx,
		})
	}
	if *tenants {
		return tenantSoakRun(ctx, tenantParams{
			duration: *duration,
			pool:     *pool,
			rate:     *rate,
			seed:     *seed,
			deadline: *deadline,
			report:   *report,
			model:    *model,
			sloP99:   *sloP99,
			minShed:  *minShed,
			max5xx:   *max5xx,
		})
	}
	if *fleet {
		return fleetSoakRun(ctx, fleetParams{
			duration:   *duration,
			clients:    *clients,
			backends:   *fleetBackends,
			pool:       *pool,
			rate:       *rate,
			seed:       *seed,
			hedgeAfter: *hedgeAfter,
			deadline:   *deadline,
			stormEvery: *stormEvery,
			killAt:     *killAt,
			max5xx:     *max5xx,
			report:     *report,
			model:      *model,
			wire:       *wireSoak,
		})
	}

	base, err := soakModel(*model)
	if err != nil {
		return err
	}
	cfg := serve.Config{
		Pool: serve.PoolConfig{
			Size:      *pool,
			ErrorRate: *rate,
			Seed:      *seed,
			// Empty rule set: every fault is a scripted storm trigger, so
			// the run is reproducible from the seed.
			ChaosConfig: &chaos.Config{Seed: *seed},
			Lifecycle: serve.LifecycleConfig{
				Enabled:           true,
				RespawnBackoff:    20 * time.Millisecond,
				RespawnMaxBackoff: time.Second,
			},
			JournalPath: *journal,
			Logf:        log.Printf,
		},
		QueueDepth:      4 * *clients,
		DefaultDeadline: *deadline,
		HedgeAfter:      *hedgeAfter,
		MaxBatch:        *maxBatch,
		MaxBatchWait:    *maxBatchWait,
	}
	srv, err := serve.New(base, cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	serveCtx, stopServe := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(serveCtx, ln) }()
	url := "http://" + ln.Addr().String()
	log.Printf("soak: serving on %s (pool %d, clients %d, %s)", ln.Addr(), *pool, *clients, *duration)

	// In wire mode a SHMDWIRE listener runs alongside HTTP (the health
	// poller stays on HTTP); the wire listener drains before the HTTP
	// shutdown closes the pool.
	var wireAddr string
	wireCtx, stopWire := context.WithCancel(context.Background())
	defer stopWire()
	var wireDone chan error
	if *wireSoak {
		wln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			stopServe()
			<-serveDone
			return err
		}
		wireAddr = wln.Addr().String()
		wireDone = make(chan error, 1)
		go func() { wireDone <- srv.ServeWire(wireCtx, wln) }()
		log.Printf("soak: SHMDWIRE on %s", wireAddr)
	}
	shutdown := func() error {
		if wireDone != nil {
			stopWire()
			<-wireDone
		}
		stopServe()
		return <-serveDone
	}

	body, err := soakBody(*seed)
	if err != nil {
		shutdown()
		return err
	}
	wireReq, err := soakWireRequest(*seed)
	if err != nil {
		shutdown()
		return err
	}

	soakCtx, stopSoak := context.WithTimeout(ctx, *duration)
	defer stopSoak()

	// Request loops: count outcomes by status class.
	var (
		total, clientErrs atomic.Uint64
		statusMu          sync.Mutex
		status            = map[string]int{}
	)
	record := func(code int) {
		statusMu.Lock()
		status[fmt.Sprintf("%dxx", code/100)]++
		statusMu.Unlock()
	}
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		if *wireSoak {
			go func(c int) {
				defer wg.Done()
				soakWireClient(soakCtx, wireAddr, int64(*seed)+int64(c)+1, wireReq, &total, &clientErrs, record)
			}(c)
			continue
		}
		go func() {
			defer wg.Done()
			client := &http.Client{Timeout: *deadline + 5*time.Second}
			for soakCtx.Err() == nil {
				req, err := http.NewRequestWithContext(soakCtx, http.MethodPost, url+"/v1/detect", bytes.NewReader(body))
				if err != nil {
					clientErrs.Add(1)
					continue
				}
				req.Header.Set("Content-Type", "application/json")
				resp, err := client.Do(req)
				if err != nil {
					if soakCtx.Err() == nil {
						clientErrs.Add(1)
					}
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				total.Add(1)
				record(resp.StatusCode)
				if resp.StatusCode == http.StatusTooManyRequests {
					time.Sleep(time.Millisecond) // honor the shed, keep hammering
				}
			}
		}()
	}

	// Health poller: watch for the degraded → ok recovery arc.
	var degradedSeen, recoveredAfter atomic.Bool
	wg.Add(1)
	go func() {
		defer wg.Done()
		client := &http.Client{Timeout: 2 * time.Second}
		for soakCtx.Err() == nil {
			resp, err := client.Get(url + "/healthz")
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusServiceUnavailable {
					degradedSeen.Store(true)
				} else if resp.StatusCode == http.StatusOK && degradedSeen.Load() {
					recoveredAfter.Store(true)
				}
			}
			select {
			case <-time.After(25 * time.Millisecond):
			case <-soakCtx.Done():
			}
		}
	}()

	// Storm: scripted transient faults on random slots at a fixed
	// cadence, plus one permanent regulator death partway through — the
	// fault the supervisor cannot ride out and lifecycle must heal.
	stormTriggers := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		rnd := rand.New(rand.NewSource(int64(*seed)))
		transients := []chaos.Rule{
			{Kind: chaos.TransientMSR},
			{Kind: chaos.LockContention, Duration: 2},
			{Kind: chaos.ThermalExcursion, Duration: 20, Magnitude: 30},
			{Kind: chaos.SupplyDroop, Duration: 10, Magnitude: 20},
		}
		permanentTimer := time.After(time.Duration(float64(*duration) * *permanentAt))
		ticker := time.NewTicker(*stormEvery)
		defer ticker.Stop()
		for {
			select {
			case <-soakCtx.Done():
				return
			case <-permanentTimer:
				slots := srv.Pool().Slots()
				if env, ok := slots[0].Det.Regulator().(*chaos.Env); ok {
					if err := env.Trigger(chaos.Rule{Kind: chaos.PermanentMSR}); err == nil {
						stormTriggers++
						log.Printf("soak: permanent MSR fault injected on slot 0")
					}
				}
			case <-ticker.C:
				slots := srv.Pool().Slots()
				slot := slots[rnd.Intn(len(slots))]
				if env, ok := slot.Det.Regulator().(*chaos.Env); ok {
					rule := transients[rnd.Intn(len(transients))]
					if err := env.Trigger(rule); err == nil {
						stormTriggers++
					}
				}
			}
		}
	}()

	<-soakCtx.Done()
	wg.Wait()

	// Give every quarantined slot its respawn budget before judging.
	drainDeadline := time.Now().Add(10 * time.Second)
	for srv.Pool().QuarantinedNow() > 0 && time.Now().Before(drainDeadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if err := shutdown(); err != nil {
		return fmt.Errorf("soak: server shutdown: %w", err)
	}

	// Assemble the verdict.
	p := srv.Pool()
	m := srv.Metrics()
	rep := soakReport{
		Duration:        duration.String(),
		Wire:            *wireSoak,
		Requests:        total.Load(),
		Status:          status,
		ClientErrors:    clientErrs.Load(),
		DoubleCheckouts: p.DoubleCheckouts(),
		Quarantines:     p.Quarantines(),
		Respawns:        p.Respawns(),
		Hedges:          m.Hedges(),
		HedgeWins:       m.HedgeWins(),
		DeadlineExpired: m.DeadlineExpirations(),
		DegradedSeen:    degradedSeen.Load(),
		RecoveredAfter:  recoveredAfter.Load(),
		StormTriggers:   stormTriggers,
	}
	if rep.Requests > 0 {
		rep.Rate5xx = float64(status["5xx"]) / float64(rep.Requests)
	}
	fail := func(format string, args ...any) {
		rep.Failures = append(rep.Failures, fmt.Sprintf(format, args...))
	}
	if rep.Requests == 0 {
		fail("no requests completed")
	}
	if status["2xx"] == 0 {
		fail("no successful detections")
	}
	if rep.DoubleCheckouts != 0 {
		fail("session-exclusivity violated: %d double checkouts", rep.DoubleCheckouts)
	}
	if rep.Rate5xx > *max5xx {
		fail("5xx rate %.4f exceeds budget %.4f", rep.Rate5xx, *max5xx)
	}
	if rep.Quarantines == 0 {
		fail("permanent fault never quarantined a slot")
	}
	if left := p.QuarantinedNow(); left != 0 {
		fail("%d slot(s) still quarantined after drain", left)
	}
	if rep.Respawns < rep.Quarantines {
		fail("only %d of %d quarantined slots respawned", rep.Respawns, rep.Quarantines)
	}
	rep.Pass = len(rep.Failures) == 0

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*report, append(out, '\n'), 0o644); err != nil {
		return err
	}
	log.Printf("soak: %d requests (%.4f 5xx), %d quarantines, %d respawns, %d hedges (%d wins), report %s",
		rep.Requests, rep.Rate5xx, rep.Quarantines, rep.Respawns, rep.Hedges, rep.HedgeWins, *report)
	if !rep.Pass {
		return fmt.Errorf("soak failed: %v", rep.Failures)
	}
	fmt.Println("soak: PASS")
	return nil
}

// soakModel loads the model at path, or synthesizes a small
// deterministic detector when no path is given (the soak exercises the
// service machinery, not detection quality).
func soakModel(path string) (*hmd.HMD, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return hmd.LoadBundle(f)
	}
	net, err := fann.New(fann.Config{
		Layers: []int{features.DimInstrFreq, 8, 1},
		Hidden: fann.SigmoidSymmetric,
		Output: fann.Sigmoid,
		Seed:   7,
	})
	if err != nil {
		return nil, err
	}
	return hmd.FromNetwork(net, hmd.Config{})
}

// soakWireRequest builds the binary twin of soakBody: the same two
// synthesized programs as a SHMDWIRE detect request.
func soakWireRequest(seed uint64) (wire.DetectRequest, error) {
	var req wire.DetectRequest
	for i, cls := range []trace.Class{trace.Trojan, trace.Benign} {
		prog, err := trace.NewProgram(cls, 0, seed)
		if err != nil {
			return wire.DetectRequest{}, err
		}
		windows, err := prog.Trace(4, 256)
		if err != nil {
			return wire.DetectRequest{}, err
		}
		req.Programs = append(req.Programs, wire.DetectProgram{
			ID:      fmt.Sprintf("soak-%d", i),
			Windows: windows,
		})
	}
	return req, nil
}

// soakWireClient is one SDK-driven request loop: dial once, let the
// SDK's own backoff handle reconnects, and classify every outcome the
// way the HTTP loop classifies status codes. A typed server rejection
// counts as a completed request in its status class; anything else —
// a lost in-flight request, a dial that never recovers — is a client
// error, the metric the soak must keep at zero through a fleet kill.
func soakWireClient(ctx context.Context, addr string, seed int64, req wire.DetectRequest, total, clientErrs *atomic.Uint64, record func(int)) {
	cl, err := sdk.Dial(addr, sdk.Options{JitterSeed: seed})
	if err != nil {
		clientErrs.Add(1)
		return
	}
	defer cl.Close()
	for ctx.Err() == nil {
		_, err := cl.Detect(ctx, req)
		switch {
		case err == nil:
			total.Add(1)
			record(200)
		case ctx.Err() != nil:
			// The soak window closed while this request was in flight.
		default:
			var ef *wire.ErrorFrame
			if errors.As(err, &ef) {
				total.Add(1)
				record(int(ef.Code))
				if ef.Code == wire.CodeOverloaded || ef.Code == wire.CodeUnavailable {
					time.Sleep(time.Millisecond) // honor the shed, keep hammering
				}
				continue
			}
			clientErrs.Add(1)
		}
	}
}

// soakBody marshals a fixed two-program detection batch from
// synthesized traces.
func soakBody(seed uint64) ([]byte, error) {
	req := serve.DetectRequest{}
	for i, cls := range []trace.Class{trace.Trojan, trace.Benign} {
		prog, err := trace.NewProgram(cls, 0, seed)
		if err != nil {
			return nil, err
		}
		windows, err := prog.Trace(4, 256)
		if err != nil {
			return nil, err
		}
		req.Programs = append(req.Programs, serve.ProgramJSON{
			ID:      fmt.Sprintf("soak-%d", i),
			Windows: serve.EncodeWindows(windows),
		})
	}
	return json.Marshal(req)
}
