package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"shmd/internal/core"
	"shmd/internal/route"
)

// routeReady, when non-nil, receives the bound listen address once the
// router is accepting connections (tests hook it to find the port).
var routeReady func(addr string)

// cmdRoute runs the fleet router until SIGINT or SIGTERM, then drains
// gracefully: /readyz flips 503 first, in-flight proxied requests
// finish, and the listener closes.
func cmdRoute(args []string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return routeRun(ctx, args)
}

// routeRun is cmdRoute with a caller-owned lifetime (tests cancel the
// context instead of sending signals).
func routeRun(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("route", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8800", "listen address")
	backends := fs.String("backends", "", "comma-separated backend base URLs (required), e.g. http://127.0.0.1:8801,http://127.0.0.1:8802")
	probeInterval := fs.Duration("probe-interval", 500*time.Millisecond, "backend /readyz poll interval")
	probeTimeout := fs.Duration("probe-timeout", 2*time.Second, "single health probe budget")
	hedgeAfter := fs.Duration("hedge-after", 0, "re-dispatch a slow request to a second backend after this budget (0 = off)")
	retries := fs.Int("retries", 2, "additional backends tried after a connect error or 5xx")
	breakerThreshold := fs.Int("breaker-threshold", 3, "consecutive failures that open a backend's breaker")
	breakerCooldown := fs.Duration("breaker-cooldown", time.Second, "base breaker cooldown before a half-open probe (doubles per failed probe)")
	breakerMaxCooldown := fs.Duration("breaker-max-cooldown", 30*time.Second, "breaker cooldown doubling cap")
	timeout := fs.Duration("timeout", 30*time.Second, "single forwarded attempt budget")
	readHeaderTimeout := fs.Duration("read-header-timeout", 10*time.Second, "HTTP header read timeout")
	shutdownTimeout := fs.Duration("shutdown-timeout", 30*time.Second, "graceful shutdown drain budget")
	drainDelay := fs.Duration("drain-delay", 0, "lame-duck window between /readyz flipping 503 and the listener closing (0 = one probe interval, negative = none)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *backends == "" {
		return fmt.Errorf("route: -backends is required")
	}
	var urls []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			urls = append(urls, b)
		}
	}

	rt, err := route.New(route.Config{
		Backends:      urls,
		ProbeInterval: *probeInterval,
		ProbeTimeout:  *probeTimeout,
		Breaker: core.BreakerConfig{
			Threshold:   *breakerThreshold,
			Cooldown:    *breakerCooldown,
			MaxCooldown: *breakerMaxCooldown,
		},
		HedgeAfter:        *hedgeAfter,
		MaxRetries:        *retries,
		Timeout:           *timeout,
		ReadHeaderTimeout: *readHeaderTimeout,
		ShutdownTimeout:   *shutdownTimeout,
		DrainDelay:        *drainDelay,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("shmd route: listening on %s (%d backends, hedge %v, retries %d)\n",
		ln.Addr(), len(urls), *hedgeAfter, *retries)
	if routeReady != nil {
		routeReady(ln.Addr().String())
	}
	err = rt.Serve(ctx, ln)
	fmt.Println("shmd route: drained and shut down")
	return err
}
