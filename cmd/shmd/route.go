package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"shmd/internal/core"
	"shmd/internal/route"
)

// routeReady, when non-nil, receives the bound listen address once the
// router is accepting connections (tests hook it to find the port).
var routeReady func(addr string)

// routeWireReady, when non-nil, receives the bound SHMDWIRE listen
// address (tests hook it to find the wire port).
var routeWireReady func(addr string)

// cmdRoute runs the fleet router until SIGINT or SIGTERM, then drains
// gracefully: /readyz flips 503 first, in-flight proxied requests
// finish, and the listener closes.
func cmdRoute(args []string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return routeRun(ctx, args)
}

// routeRun is cmdRoute with a caller-owned lifetime (tests cancel the
// context instead of sending signals).
func routeRun(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("route", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8800", "listen address")
	backends := fs.String("backends", "", "comma-separated backend base URLs (required), e.g. http://127.0.0.1:8801,http://127.0.0.1:8802")
	wireAddr := fs.String("wire-addr", "", "SHMDWIRE binary protocol listen address (empty = wire listener off)")
	wireBackends := fs.String("wire-backends", "", "comma-separated backend SHMDWIRE addresses, index-aligned with -backends (blank entry = HTTP-only backend)")
	probeInterval := fs.Duration("probe-interval", 500*time.Millisecond, "backend /readyz poll interval")
	probeTimeout := fs.Duration("probe-timeout", 2*time.Second, "single health probe budget")
	hedgeAfter := fs.Duration("hedge-after", 0, "re-dispatch a slow request to a second backend after this budget (0 = off)")
	retries := fs.Int("retries", 2, "additional backends tried after a connect error or 5xx")
	breakerThreshold := fs.Int("breaker-threshold", 3, "consecutive failures that open a backend's breaker")
	breakerCooldown := fs.Duration("breaker-cooldown", time.Second, "base breaker cooldown before a half-open probe (doubles per failed probe)")
	breakerMaxCooldown := fs.Duration("breaker-max-cooldown", 30*time.Second, "breaker cooldown doubling cap")
	timeout := fs.Duration("timeout", 30*time.Second, "single forwarded attempt budget")
	readHeaderTimeout := fs.Duration("read-header-timeout", 10*time.Second, "HTTP header read timeout")
	shutdownTimeout := fs.Duration("shutdown-timeout", 30*time.Second, "graceful shutdown drain budget")
	drainDelay := fs.Duration("drain-delay", 0, "lame-duck window between /readyz flipping 503 and the listener closing (0 = one probe interval, negative = none)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *backends == "" {
		return fmt.Errorf("route: -backends is required")
	}
	var urls []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			urls = append(urls, b)
		}
	}
	// Wire backend entries stay index-aligned with -backends; blank
	// entries mark HTTP-only backends, so no TrimSpace-and-drop here.
	var wireAddrs []string
	if *wireBackends != "" {
		wireAddrs = strings.Split(*wireBackends, ",")
	}

	rt, err := route.New(route.Config{
		Backends:      urls,
		WireBackends:  wireAddrs,
		ProbeInterval: *probeInterval,
		ProbeTimeout:  *probeTimeout,
		Breaker: core.BreakerConfig{
			Threshold:   *breakerThreshold,
			Cooldown:    *breakerCooldown,
			MaxCooldown: *breakerMaxCooldown,
		},
		HedgeAfter:        *hedgeAfter,
		MaxRetries:        *retries,
		Timeout:           *timeout,
		ReadHeaderTimeout: *readHeaderTimeout,
		ShutdownTimeout:   *shutdownTimeout,
		DrainDelay:        *drainDelay,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("shmd route: listening on %s (%d backends, hedge %v, retries %d)\n",
		ln.Addr(), len(urls), *hedgeAfter, *retries)

	// Mirror cmd serve: the HTTP path owns the prober and request
	// bookkeeping the wire tier shares, so its drain starts only after
	// the wire listener has fully drained.
	httpCtx := ctx
	var wireDone chan error
	if *wireAddr != "" {
		wln, err := net.Listen("tcp", *wireAddr)
		if err != nil {
			return err
		}
		fmt.Printf("shmd route: SHMDWIRE listening on %s\n", wln.Addr())
		if routeWireReady != nil {
			routeWireReady(wln.Addr().String())
		}
		var httpCancel context.CancelFunc
		httpCtx, httpCancel = context.WithCancel(context.Background())
		wireDone = make(chan error, 1)
		go func() {
			wireDone <- rt.ServeWire(ctx, wln)
			httpCancel()
		}()
	}
	if routeReady != nil {
		routeReady(ln.Addr().String())
	}
	err = rt.Serve(httpCtx, ln)
	if wireDone != nil {
		if werr := <-wireDone; err == nil {
			err = werr
		}
	}
	fmt.Println("shmd route: drained and shut down")
	return err
}
