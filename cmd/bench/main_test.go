package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"shmd/internal/experiments"
)

// TestCompareGate pins the regression-gate semantics on synthetic
// reports: speedup ratios and alloc counts gate, raw ns/op does not
// (it is machine-dependent), and degradations inside the margin pass.
func TestCompareGate(t *testing.T) {
	base := &Report{
		MaxProcs: 8,
		Speedups: Speedups{
			ExactFusedVsScalar:         2.0,
			FaultySkipAheadVsBernoulli: 4.0,
			EvaluateShardedVsSerial:    3.0,
			BatchLane64VsScalarFaulty:  5.0,
			BatchLane64VsExactFused:    1.1,
			ServeBatchedVsScalar:       1.8,
			ServeWireVsJSON:            1.3,
		},
		Results: []Result{
			{Name: "inference_exact_fused", NsPerOp: 100, AllocsPerOp: 0},
			{Name: "evaluate_sharded", NsPerOp: 1e6, AllocsPerOp: 40},
		},
	}
	clone := func(mut func(*Report)) *Report {
		r := *base
		r.Results = append([]Result(nil), base.Results...)
		mut(&r)
		return &r
	}

	if p := compare(clone(func(*Report) {}), base, 0.25); len(p) != 0 {
		t.Errorf("identical report flagged: %v", p)
	}
	// 10x slower ns/op on a different machine: not a regression.
	if p := compare(clone(func(r *Report) {
		for i := range r.Results {
			r.Results[i].NsPerOp *= 10
		}
	}), base, 0.25); len(p) != 0 {
		t.Errorf("ns/op wrongly gated: %v", p)
	}
	// Speedup degraded within the margin: passes.
	if p := compare(clone(func(r *Report) {
		r.Speedups.FaultySkipAheadVsBernoulli = 3.2
	}), base, 0.25); len(p) != 0 {
		t.Errorf("in-margin speedup drop flagged: %v", p)
	}
	// Speedup degraded past the margin: fails.
	if p := compare(clone(func(r *Report) {
		r.Speedups.FaultySkipAheadVsBernoulli = 2.9
	}), base, 0.25); len(p) != 1 {
		t.Errorf("25%%+ speedup regression not flagged: %v", p)
	}
	// Alloc growth past margin+slack: fails. Small absolute slack: passes.
	if p := compare(clone(func(r *Report) {
		r.Results[1].AllocsPerOp = 60
	}), base, 0.25); len(p) != 1 {
		t.Errorf("alloc regression not flagged: %v", p)
	}
	if p := compare(clone(func(r *Report) {
		r.Results[0].AllocsPerOp = 2
	}), base, 0.25); len(p) != 0 {
		t.Errorf("2-alloc absolute slack not honored: %v", p)
	}
	// A brand-new benchmark name has no baseline: ignored, not fatal.
	if p := compare(clone(func(r *Report) {
		r.Results = append(r.Results, Result{Name: "new_bench", NsPerOp: 1, AllocsPerOp: 99})
	}), base, 0.25); len(p) != 0 {
		t.Errorf("unknown benchmark gated: %v", p)
	}
	// Batch-lane ratio collapse: fails regardless of proc count.
	if p := compare(clone(func(r *Report) {
		r.Speedups.BatchLane64VsScalarFaulty = 1.0
	}), base, 0.25); len(p) != 1 {
		t.Errorf("batch-lane regression not flagged: %v", p)
	}
	// Parallel ratios on a 1-proc runner: the machine cannot shard or
	// overlap requests, so their gates are skipped, not failed.
	if p := compare(clone(func(r *Report) {
		r.MaxProcs = 1
		r.Speedups.EvaluateShardedVsSerial = 1.0
		r.Speedups.ServeBatchedVsScalar = 0.9
	}), base, 0.25); len(p) != 0 {
		t.Errorf("1-proc parallel ratios wrongly gated: %v", p)
	}
	if p := compare(clone(func(r *Report) {
		r.Speedups.EvaluateShardedVsSerial = 1.0
	}), base, 0.25); len(p) != 1 {
		t.Errorf("multi-proc sharding regression not flagged: %v", p)
	}
	// The serve baseline is capped at 1.0: losing this machine's 1.8x
	// upside passes, dropping well below scalar throughput fails.
	if p := compare(clone(func(r *Report) {
		r.Speedups.ServeBatchedVsScalar = 1.05
	}), base, 0.25); len(p) != 0 {
		t.Errorf("serve upside wrongly gated: %v", p)
	}
	if p := compare(clone(func(r *Report) {
		r.Speedups.ServeBatchedVsScalar = 0.5
	}), base, 0.25); len(p) != 1 {
		t.Errorf("serve throughput collapse not flagged: %v", p)
	}
	// The wire-vs-JSON baseline is capped at 1.0 the same way: losing
	// the binary path's upside passes, falling well behind JSON fails.
	if p := compare(clone(func(r *Report) {
		r.Speedups.ServeWireVsJSON = 1.0
	}), base, 0.25); len(p) != 0 {
		t.Errorf("wire upside wrongly gated: %v", p)
	}
	if p := compare(clone(func(r *Report) {
		r.Speedups.ServeWireVsJSON = 0.5
	}), base, 0.25); len(p) != 1 {
		t.Errorf("wire throughput collapse not flagged: %v", p)
	}
	if p := compare(clone(func(r *Report) {
		r.MaxProcs = 1
		r.Speedups.ServeWireVsJSON = 0.5
	}), base, 0.25); len(p) != 0 {
		t.Errorf("1-proc wire ratio wrongly gated: %v", p)
	}
}

// TestLoadRoundTrip pins load() against write().
func TestLoadRoundTrip(t *testing.T) {
	rep := &Report{Scale: "quick", Seed: 1, Results: []Result{{Name: "x", NsPerOp: 2, Iterations: 3}}}
	path := filepath.Join(t.TempDir(), "r.json")
	if err := write(rep, path); err != nil {
		t.Fatal(err)
	}
	back, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Scale != rep.Scale || len(back.Results) != 1 || back.Results[0] != rep.Results[0] {
		t.Errorf("round trip mismatch: %+v", back)
	}
	if _, err := load(filepath.Join(t.TempDir(), "missing.json")); !os.IsNotExist(err) {
		t.Errorf("missing baseline error = %v, want IsNotExist", err)
	}
}

func TestRunAndWriteReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs ~6 one-second benchmarks")
	}
	rep, err := run(experiments.Quick(1), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 14 {
		t.Fatalf("got %d results, want 14", len(rep.Results))
	}
	for _, r := range rep.Results {
		if r.NsPerOp <= 0 || r.Iterations <= 0 {
			t.Errorf("%s: empty measurement %+v", r.Name, r)
		}
	}
	if rep.Speedups.ExactFusedVsScalar <= 0 || rep.Speedups.FaultySkipAheadVsBernoulli <= 0 {
		t.Errorf("speedups not computed: %+v", rep.Speedups)
	}
	if rep.NumMuls <= 0 {
		t.Errorf("NumMuls = %d", rep.NumMuls)
	}

	path := filepath.Join(t.TempDir(), "bench.json")
	if err := write(rep, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Speedups != rep.Speedups || len(back.Results) != len(rep.Results) {
		t.Errorf("round-trip mismatch")
	}
}
