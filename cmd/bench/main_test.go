package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"shmd/internal/experiments"
)

func TestRunAndWriteReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs ~6 one-second benchmarks")
	}
	rep, err := run(experiments.Quick(1), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 6 {
		t.Fatalf("got %d results, want 6", len(rep.Results))
	}
	for _, r := range rep.Results {
		if r.NsPerOp <= 0 || r.Iterations <= 0 {
			t.Errorf("%s: empty measurement %+v", r.Name, r)
		}
	}
	if rep.Speedups.ExactFusedVsScalar <= 0 || rep.Speedups.FaultySkipAheadVsBernoulli <= 0 {
		t.Errorf("speedups not computed: %+v", rep.Speedups)
	}
	if rep.NumMuls <= 0 {
		t.Errorf("NumMuls = %d", rep.NumMuls)
	}

	path := filepath.Join(t.TempDir(), "bench.json")
	if err := write(rep, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Speedups != rep.Speedups || len(back.Results) != len(rep.Results) {
		t.Errorf("round-trip mismatch")
	}
}
