// Command bench measures the inference hot paths A/B — fused vs scalar
// exact kernels, geometric skip-ahead vs per-multiplication Bernoulli
// fault injection, sharded vs serial evaluation — and writes the
// results to a JSON file (BENCH_inference.json by default) so the
// speedups are recorded alongside the code that produced them.
//
// Usage:
//
//	bench [-scale quick|full] [-seed N] [-count N] [-out BENCH_inference.json]
//
// Each benchmark is run -count times through testing.Benchmark and the
// fastest repetition is kept (per-machine noise only ever slows a run
// down). Speedups are computed within the same report, so the pairs
// share the trained network, the input vector, and the machine state.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"shmd/internal/experiments"
	"shmd/internal/faults"
	"shmd/internal/fxp"
	"shmd/internal/hmd"
	"shmd/internal/rng"
)

// Result is one benchmark row of the report.
type Result struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
	// MulsPerSec is the multiply-accumulate throughput (0 for the
	// corpus-level evaluation rows, where ops are evaluations).
	MulsPerSec  float64 `json:"muls_per_sec,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// Speedups are the headline ratios of the A/B pairs.
type Speedups struct {
	// ExactFusedVsScalar is scalar-loop ns/op over fused-kernel ns/op
	// for a nominal-voltage forward pass.
	ExactFusedVsScalar float64 `json:"exact_fused_vs_scalar"`
	// FaultySkipAheadVsBernoulli is per-mul-Bernoulli ns/op over
	// skip-ahead ns/op for an undervolted forward pass at the
	// operating error rate.
	FaultySkipAheadVsBernoulli float64 `json:"faulty_skipahead_vs_bernoulli"`
	// EvaluateShardedVsSerial is 1-worker ns/op over sharded ns/op for
	// a full test-corpus stochastic evaluation.
	EvaluateShardedVsSerial float64 `json:"evaluate_sharded_vs_serial"`
}

// Report is the JSON document written to -out.
type Report struct {
	Scale     string  `json:"scale"`
	Seed      uint64  `json:"seed"`
	ErrorRate float64 `json:"error_rate"`
	// NumMuls is the multiplication count of one forward pass through
	// the deployed network (weights including bias terms).
	NumMuls   int      `json:"num_muls"`
	GoVersion string   `json:"go_version"`
	GOARCH    string   `json:"goarch"`
	NumCPU    int      `json:"num_cpu"`
	Count     int      `json:"count"`
	Results   []Result `json:"results"`
	Speedups  Speedups `json:"speedups"`
}

// scalarUnit hides a unit's BulkUnit implementation, forcing fxp.Dot
// down the per-element scalar loop — the pre-fused-kernel code path.
type scalarUnit struct{ u fxp.Unit }

func (s scalarUnit) Mul(a, b fxp.Value) fxp.Product { return s.u.Mul(a, b) }

// measure runs f through testing.Benchmark count times and keeps the
// fastest repetition.
func measure(name string, count int, f func(b *testing.B)) Result {
	best := Result{Name: name}
	for i := 0; i < count; i++ {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			f(b)
		})
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		if best.Iterations == 0 || ns < best.NsPerOp {
			best.NsPerOp = ns
			best.AllocsPerOp = r.AllocsPerOp()
			best.BytesPerOp = r.AllocedBytesPerOp()
			best.Iterations = r.N
		}
	}
	return best
}

// run executes the whole A/B suite and assembles the report.
func run(scale experiments.Scale, count int) (*Report, error) {
	env, err := experiments.NewEnv(scale, 0)
	if err != nil {
		return nil, err
	}
	fn := env.Base.Fixed().Clone()
	in := make([]float64, fn.NumInputs())
	r := rng.NewRand(0xB13)
	for i := range in {
		in[i] = r.Float64()
	}
	muls := fn.NumMuls()

	skip, err := faults.NewInjector(experiments.OperatingErrorRate, nil, rng.NewRand(2))
	if err != nil {
		return nil, err
	}
	bern, err := faults.NewBernoulliInjector(experiments.OperatingErrorRate, nil, rng.NewRand(2))
	if err != nil {
		return nil, err
	}
	stoch, err := env.Stochastic(experiments.OperatingErrorRate, 0xE7A1)
	if err != nil {
		return nil, err
	}
	test := env.Test()

	forwardPass := func(u fxp.Unit) func(b *testing.B) {
		net := fn.Clone()
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				net.Run(u, in)
			}
		}
	}

	rep := &Report{
		Scale:     scale.Name,
		Seed:      scale.Seed,
		ErrorRate: experiments.OperatingErrorRate,
		NumMuls:   muls,
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Count:     count,
	}
	add := func(res Result, withMuls bool) Result {
		if withMuls {
			res.MulsPerSec = float64(muls) / (res.NsPerOp * 1e-9)
		}
		rep.Results = append(rep.Results, res)
		return res
	}

	fused := add(measure("inference_exact_fused", count, forwardPass(fxp.Exact{})), true)
	scalar := add(measure("inference_exact_scalar", count, forwardPass(scalarUnit{fxp.Exact{}})), true)
	faulty := add(measure("inference_faulty_skipahead", count, forwardPass(skip)), true)
	bernoulli := add(measure("inference_faulty_bernoulli", count, forwardPass(scalarUnit{bern})), true)
	sharded := add(measure("evaluate_sharded", count, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hmd.Evaluate(stoch, test)
		}
	}), false)
	serial := add(measure("evaluate_serial_1worker", count, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hmd.EvaluateParallel(stoch, test, 1)
		}
	}), false)

	rep.Speedups = Speedups{
		ExactFusedVsScalar:         scalar.NsPerOp / fused.NsPerOp,
		FaultySkipAheadVsBernoulli: bernoulli.NsPerOp / faulty.NsPerOp,
		EvaluateShardedVsSerial:    serial.NsPerOp / sharded.NsPerOp,
	}
	return rep, nil
}

// write renders the report as indented JSON to path.
func write(rep *Report, path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// load reads a previously written report.
func load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &Report{}
	if err := json.Unmarshal(data, rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// compare gates a fresh report against a committed baseline and
// returns one message per regression beyond maxRegress (0.25 = fail
// only when a metric degrades by more than 25%).
//
// Raw ns/op is NOT gated: the committed baseline records one machine
// and CI runs on another, so absolute times differ by far more than
// any code change. The gate instead holds the machine-independent
// signals: the A/B speedup ratios (both sides of each pair run on the
// same host in the same process, so their ratio cancels the host out)
// and the per-op allocation counts (exact, deterministic).
func compare(rep, base *Report, maxRegress float64) []string {
	var problems []string
	ratio := func(name string, got, want float64) {
		if want <= 0 {
			return
		}
		if got < want*(1-maxRegress) {
			problems = append(problems,
				fmt.Sprintf("%s speedup %.2fx, baseline %.2fx (>%d%% regression)",
					name, got, want, int(maxRegress*100)))
		}
	}
	ratio("exact_fused_vs_scalar", rep.Speedups.ExactFusedVsScalar, base.Speedups.ExactFusedVsScalar)
	ratio("faulty_skipahead_vs_bernoulli", rep.Speedups.FaultySkipAheadVsBernoulli, base.Speedups.FaultySkipAheadVsBernoulli)
	ratio("evaluate_sharded_vs_serial", rep.Speedups.EvaluateShardedVsSerial, base.Speedups.EvaluateShardedVsSerial)

	baseByName := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		baseByName[r.Name] = r
	}
	for _, r := range rep.Results {
		b, ok := baseByName[r.Name]
		if !ok {
			continue
		}
		// A couple of allocations of absolute slack: counts this small
		// are ABI noise (interface boxing, map seeds), not leaks.
		limit := float64(b.AllocsPerOp)*(1+maxRegress) + 2
		if float64(r.AllocsPerOp) > limit {
			problems = append(problems,
				fmt.Sprintf("%s allocs/op %d, baseline %d (>%d%% regression)",
					r.Name, r.AllocsPerOp, b.AllocsPerOp, int(maxRegress*100)))
		}
	}
	return problems
}

func main() {
	scaleName := flag.String("scale", "quick", "benchmark scale (quick|full)")
	seed := flag.Uint64("seed", 1, "root seed")
	count := flag.Int("count", 3, "repetitions per benchmark (fastest kept)")
	out := flag.String("out", "BENCH_inference.json", "output JSON path")
	baseline := flag.String("baseline", "", "committed report to gate against (empty = no gate)")
	maxRegress := flag.Float64("max-regress", 0.25, "fail when a gated metric degrades by more than this fraction")
	flag.Parse()

	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.Quick(*seed)
	case "full":
		scale = experiments.Full(*seed)
	default:
		fmt.Fprintf(os.Stderr, "bench: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	// Load the baseline before writing: -out and -baseline may name the
	// same file (the CI invocation regenerates the committed report in
	// place and uploads it as an artifact).
	var base *Report
	if *baseline != "" {
		var err error
		base, err = load(*baseline)
		if os.IsNotExist(err) {
			fmt.Fprintf(os.Stderr, "bench: baseline %s missing, gate skipped\n", *baseline)
		} else if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
	}

	rep, err := run(scale, *count)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	if err := write(rep, *out); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	for _, r := range rep.Results {
		fmt.Printf("%-28s %12.1f ns/op %6d allocs/op", r.Name, r.NsPerOp, r.AllocsPerOp)
		if r.MulsPerSec > 0 {
			fmt.Printf("  %8.1f Mmuls/s", r.MulsPerSec/1e6)
		}
		fmt.Println()
	}
	fmt.Printf("exact fused vs scalar:        %.2fx\n", rep.Speedups.ExactFusedVsScalar)
	fmt.Printf("faulty skip-ahead vs bernoulli: %.2fx\n", rep.Speedups.FaultySkipAheadVsBernoulli)
	fmt.Printf("evaluate sharded vs serial:   %.2fx\n", rep.Speedups.EvaluateShardedVsSerial)
	fmt.Printf("wrote %s\n", *out)

	if base != nil {
		problems := compare(rep, base, *maxRegress)
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "bench: REGRESSION:", p)
		}
		if len(problems) > 0 {
			os.Exit(1)
		}
		fmt.Printf("baseline gate: OK (within %d%% of %s)\n", int(*maxRegress*100), *baseline)
	}
}
