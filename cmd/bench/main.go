// Command bench measures the inference hot paths A/B — fused vs scalar
// exact kernels, geometric skip-ahead vs per-multiplication Bernoulli
// fault injection, sharded vs serial evaluation — and writes the
// results to a JSON file (BENCH_inference.json by default) so the
// speedups are recorded alongside the code that produced them.
//
// Usage:
//
//	bench [-scale quick|full] [-seed N] [-count N] [-out BENCH_inference.json]
//
// Each benchmark is run -count times through testing.Benchmark and the
// fastest repetition is kept (per-machine noise only ever slows a run
// down). Speedups are computed within the same report, so the pairs
// share the trained network, the input vector, and the machine state.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"shmd/internal/experiments"
	"shmd/internal/faults"
	"shmd/internal/fxp"
	"shmd/internal/hmd"
	"shmd/internal/rng"
)

// Result is one benchmark row of the report.
type Result struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
	// MulsPerSec is the multiply-accumulate throughput (0 for the
	// corpus-level evaluation rows, where ops are evaluations).
	MulsPerSec  float64 `json:"muls_per_sec,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// Speedups are the headline ratios of the A/B pairs.
type Speedups struct {
	// ExactFusedVsScalar is scalar-loop ns/op over fused-kernel ns/op
	// for a nominal-voltage forward pass.
	ExactFusedVsScalar float64 `json:"exact_fused_vs_scalar"`
	// FaultySkipAheadVsBernoulli is per-mul-Bernoulli ns/op over
	// skip-ahead ns/op for an undervolted forward pass at the
	// operating error rate.
	FaultySkipAheadVsBernoulli float64 `json:"faulty_skipahead_vs_bernoulli"`
	// EvaluateShardedVsSerial is 1-worker ns/op over sharded ns/op for
	// a full test-corpus stochastic evaluation.
	EvaluateShardedVsSerial float64 `json:"evaluate_sharded_vs_serial"`
}

// Report is the JSON document written to -out.
type Report struct {
	Scale     string  `json:"scale"`
	Seed      uint64  `json:"seed"`
	ErrorRate float64 `json:"error_rate"`
	// NumMuls is the multiplication count of one forward pass through
	// the deployed network (weights including bias terms).
	NumMuls   int      `json:"num_muls"`
	GoVersion string   `json:"go_version"`
	GOARCH    string   `json:"goarch"`
	NumCPU    int      `json:"num_cpu"`
	Count     int      `json:"count"`
	Results   []Result `json:"results"`
	Speedups  Speedups `json:"speedups"`
}

// scalarUnit hides a unit's BulkUnit implementation, forcing fxp.Dot
// down the per-element scalar loop — the pre-fused-kernel code path.
type scalarUnit struct{ u fxp.Unit }

func (s scalarUnit) Mul(a, b fxp.Value) fxp.Product { return s.u.Mul(a, b) }

// measure runs f through testing.Benchmark count times and keeps the
// fastest repetition.
func measure(name string, count int, f func(b *testing.B)) Result {
	best := Result{Name: name}
	for i := 0; i < count; i++ {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			f(b)
		})
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		if best.Iterations == 0 || ns < best.NsPerOp {
			best.NsPerOp = ns
			best.AllocsPerOp = r.AllocsPerOp()
			best.BytesPerOp = r.AllocedBytesPerOp()
			best.Iterations = r.N
		}
	}
	return best
}

// run executes the whole A/B suite and assembles the report.
func run(scale experiments.Scale, count int) (*Report, error) {
	env, err := experiments.NewEnv(scale, 0)
	if err != nil {
		return nil, err
	}
	fn := env.Base.Fixed().Clone()
	in := make([]float64, fn.NumInputs())
	r := rng.NewRand(0xB13)
	for i := range in {
		in[i] = r.Float64()
	}
	muls := fn.NumMuls()

	skip, err := faults.NewInjector(experiments.OperatingErrorRate, nil, rng.NewRand(2))
	if err != nil {
		return nil, err
	}
	bern, err := faults.NewBernoulliInjector(experiments.OperatingErrorRate, nil, rng.NewRand(2))
	if err != nil {
		return nil, err
	}
	stoch, err := env.Stochastic(experiments.OperatingErrorRate, 0xE7A1)
	if err != nil {
		return nil, err
	}
	test := env.Test()

	forwardPass := func(u fxp.Unit) func(b *testing.B) {
		net := fn.Clone()
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				net.Run(u, in)
			}
		}
	}

	rep := &Report{
		Scale:     scale.Name,
		Seed:      scale.Seed,
		ErrorRate: experiments.OperatingErrorRate,
		NumMuls:   muls,
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Count:     count,
	}
	add := func(res Result, withMuls bool) Result {
		if withMuls {
			res.MulsPerSec = float64(muls) / (res.NsPerOp * 1e-9)
		}
		rep.Results = append(rep.Results, res)
		return res
	}

	fused := add(measure("inference_exact_fused", count, forwardPass(fxp.Exact{})), true)
	scalar := add(measure("inference_exact_scalar", count, forwardPass(scalarUnit{fxp.Exact{}})), true)
	faulty := add(measure("inference_faulty_skipahead", count, forwardPass(skip)), true)
	bernoulli := add(measure("inference_faulty_bernoulli", count, forwardPass(scalarUnit{bern})), true)
	sharded := add(measure("evaluate_sharded", count, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hmd.Evaluate(stoch, test)
		}
	}), false)
	serial := add(measure("evaluate_serial_1worker", count, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hmd.EvaluateParallel(stoch, test, 1)
		}
	}), false)

	rep.Speedups = Speedups{
		ExactFusedVsScalar:         scalar.NsPerOp / fused.NsPerOp,
		FaultySkipAheadVsBernoulli: bernoulli.NsPerOp / faulty.NsPerOp,
		EvaluateShardedVsSerial:    serial.NsPerOp / sharded.NsPerOp,
	}
	return rep, nil
}

// write renders the report as indented JSON to path.
func write(rep *Report, path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func main() {
	scaleName := flag.String("scale", "quick", "benchmark scale (quick|full)")
	seed := flag.Uint64("seed", 1, "root seed")
	count := flag.Int("count", 3, "repetitions per benchmark (fastest kept)")
	out := flag.String("out", "BENCH_inference.json", "output JSON path")
	flag.Parse()

	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.Quick(*seed)
	case "full":
		scale = experiments.Full(*seed)
	default:
		fmt.Fprintf(os.Stderr, "bench: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	rep, err := run(scale, *count)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	if err := write(rep, *out); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	for _, r := range rep.Results {
		fmt.Printf("%-28s %12.1f ns/op %6d allocs/op", r.Name, r.NsPerOp, r.AllocsPerOp)
		if r.MulsPerSec > 0 {
			fmt.Printf("  %8.1f Mmuls/s", r.MulsPerSec/1e6)
		}
		fmt.Println()
	}
	fmt.Printf("exact fused vs scalar:        %.2fx\n", rep.Speedups.ExactFusedVsScalar)
	fmt.Printf("faulty skip-ahead vs bernoulli: %.2fx\n", rep.Speedups.FaultySkipAheadVsBernoulli)
	fmt.Printf("evaluate sharded vs serial:   %.2fx\n", rep.Speedups.EvaluateShardedVsSerial)
	fmt.Printf("wrote %s\n", *out)
}
