// Command bench measures the inference hot paths A/B — fused vs scalar
// exact kernels, geometric skip-ahead vs per-multiplication Bernoulli
// fault injection, sharded vs serial evaluation, JSON/HTTP vs SHMDWIRE
// streaming over real sockets — and writes the results to a JSON file
// (BENCH_inference.json by default) so the speedups are recorded
// alongside the code that produced them.
//
// Usage:
//
//	bench [-scale quick|full] [-seed N] [-count N] [-out BENCH_inference.json]
//
// Each benchmark is run -count times through testing.Benchmark and the
// fastest repetition is kept (per-machine noise only ever slows a run
// down). Speedups are computed within the same report, so the pairs
// share the trained network, the input vector, and the machine state.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"shmd/internal/experiments"
	"shmd/internal/faults"
	"shmd/internal/fxp"
	"shmd/internal/hmd"
	"shmd/internal/rng"
	"shmd/internal/serve"
	"shmd/internal/trace"
	"shmd/internal/wire"
	"shmd/pkg/sdk"
)

// Result is one benchmark row of the report.
type Result struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
	// MulsPerSec is the multiply-accumulate throughput (0 for the
	// corpus-level evaluation rows, where ops are evaluations).
	MulsPerSec  float64 `json:"muls_per_sec,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
	// Lanes is the batch width for the batch-lane rows (0 = scalar);
	// per-lane cost is NsPerOp / Lanes.
	Lanes int `json:"lanes,omitempty"`
}

// Speedups are the headline ratios of the A/B pairs.
type Speedups struct {
	// ExactFusedVsScalar is scalar-loop ns/op over fused-kernel ns/op
	// for a nominal-voltage forward pass.
	ExactFusedVsScalar float64 `json:"exact_fused_vs_scalar"`
	// FaultySkipAheadVsBernoulli is per-mul-Bernoulli ns/op over
	// skip-ahead ns/op for an undervolted forward pass at the
	// operating error rate.
	FaultySkipAheadVsBernoulli float64 `json:"faulty_skipahead_vs_bernoulli"`
	// EvaluateShardedVsSerial is 1-worker ns/op over sharded ns/op for
	// a full test-corpus stochastic evaluation.
	EvaluateShardedVsSerial float64 `json:"evaluate_sharded_vs_serial"`
	// BatchLane64VsScalarFaulty is scalar skip-ahead ns/op over the
	// per-lane cost of a 64-lane batched faulty pass.
	BatchLane64VsScalarFaulty float64 `json:"batch_lane64_vs_faulty_skipahead"`
	// BatchLane64VsExactFused is the headline batching criterion:
	// exact-fused scalar ns/op over the 64-lane per-lane faulty cost.
	// >= 1 means a batched UNDERVOLTED lane is no slower than an exact
	// nominal-voltage pass.
	BatchLane64VsExactFused float64 `json:"batch_lane64_vs_exact_fused"`
	// ServeBatchedVsScalar is scalar-dispatch ns/request over
	// micro-batched ns/request for the in-process /v1/detect server
	// under concurrent load.
	ServeBatchedVsScalar float64 `json:"serve_batched_vs_scalar"`
	// ServeWireVsJSON is JSON-over-TCP ns/request over SHMDWIRE
	// streaming ns/request: the same single-program request mix through
	// real sockets both ways, keep-alive HTTP clients vs the SDK's
	// pipelined detect stream on one multiplexed connection.
	ServeWireVsJSON float64 `json:"serve_wire_stream_vs_json"`
}

// Report is the JSON document written to -out.
type Report struct {
	Scale     string  `json:"scale"`
	Seed      uint64  `json:"seed"`
	ErrorRate float64 `json:"error_rate"`
	// NumMuls is the multiplication count of one forward pass through
	// the deployed network (weights including bias terms).
	NumMuls   int    `json:"num_muls"`
	GoVersion string `json:"go_version"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	// MaxProcs is the effective worker count of the parallel rows
	// (sharded evaluation, concurrent serve): with one proc those
	// rows cannot speed up, so their ratio gates are skipped.
	MaxProcs int      `json:"gomaxprocs"`
	Count    int      `json:"count"`
	Results  []Result `json:"results"`
	Speedups Speedups `json:"speedups"`
}

// scalarUnit hides a unit's BulkUnit implementation, forcing fxp.Dot
// down the per-element scalar loop — the pre-fused-kernel code path.
type scalarUnit struct{ u fxp.Unit }

func (s scalarUnit) Mul(a, b fxp.Value) fxp.Product { return s.u.Mul(a, b) }

// measure runs f through testing.Benchmark count times and keeps the
// fastest repetition.
func measure(name string, count int, f func(b *testing.B)) Result {
	best := Result{Name: name}
	for i := 0; i < count; i++ {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			f(b)
		})
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		if best.Iterations == 0 || ns < best.NsPerOp {
			best.NsPerOp = ns
			best.AllocsPerOp = r.AllocsPerOp()
			best.BytesPerOp = r.AllocedBytesPerOp()
			best.Iterations = r.N
		}
	}
	return best
}

// run executes the whole A/B suite and assembles the report.
func run(scale experiments.Scale, count int) (*Report, error) {
	env, err := experiments.NewEnv(scale, 0)
	if err != nil {
		return nil, err
	}
	fn := env.Base.Fixed().Clone()
	in := make([]float64, fn.NumInputs())
	r := rng.NewRand(0xB13)
	for i := range in {
		in[i] = r.Float64()
	}
	muls := fn.NumMuls()

	skip, err := faults.NewInjector(experiments.OperatingErrorRate, nil, rng.NewRand(2))
	if err != nil {
		return nil, err
	}
	bern, err := faults.NewBernoulliInjector(experiments.OperatingErrorRate, nil, rng.NewRand(2))
	if err != nil {
		return nil, err
	}
	stoch, err := env.Stochastic(experiments.OperatingErrorRate, 0xE7A1)
	if err != nil {
		return nil, err
	}
	test := env.Test()

	forwardPass := func(u fxp.Unit) func(b *testing.B) {
		net := fn.Clone()
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				net.Run(u, in)
			}
		}
	}

	rep := &Report{
		Scale:     scale.Name,
		Seed:      scale.Seed,
		ErrorRate: experiments.OperatingErrorRate,
		NumMuls:   muls,
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		MaxProcs:  runtime.GOMAXPROCS(0),
		Count:     count,
	}
	add := func(res Result, withMuls bool) Result {
		if withMuls {
			res.MulsPerSec = float64(muls) / (res.NsPerOp * 1e-9)
		}
		rep.Results = append(rep.Results, res)
		return res
	}

	fused := add(measure("inference_exact_fused", count, forwardPass(fxp.Exact{})), true)
	scalar := add(measure("inference_exact_scalar", count, forwardPass(scalarUnit{fxp.Exact{}})), true)
	faulty := add(measure("inference_faulty_skipahead", count, forwardPass(skip)), true)
	bernoulli := add(measure("inference_faulty_bernoulli", count, forwardPass(scalarUnit{bern})), true)
	sharded := add(measure("evaluate_sharded", count, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hmd.Evaluate(stoch, test)
		}
	}), false)
	serial := add(measure("evaluate_serial_1worker", count, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hmd.EvaluateParallel(stoch, test, 1)
		}
	}), false)

	// Batch-lane faulty passes: one RunBatch over k lanes, each lane on
	// its own fault stream at the operating rate. NsPerOp is the cost of
	// the whole batched call; per-lane cost is NsPerOp / k.
	batchRows := map[int]Result{}
	for _, k := range []int{1, 4, 16, 64} {
		streams := make([]rand.Source64, k)
		for l := range streams {
			streams[l] = rng.NewSource64(2, uint64(l))
		}
		binj, err := faults.NewBatchInjector(experiments.OperatingErrorRate, nil, streams)
		if err != nil {
			return nil, err
		}
		net := fn.Clone()
		ins := make([][]float64, k)
		for j := range ins {
			ins[j] = in
		}
		out := make([]float64, k*net.NumOutputs())
		res := measure(fmt.Sprintf("batch_faulty_%d", k), count, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				net.RunBatch(binj, ins, nil, out)
			}
		})
		res.Lanes = k
		res.MulsPerSec = float64(muls*k) / (res.NsPerOp * 1e-9)
		rep.Results = append(rep.Results, res)
		batchRows[k] = res
	}

	// In-process /v1/detect throughput, scalar dispatch vs micro-batched:
	// same model, same pool shape, concurrent clients through the handler
	// (no sockets). One op = one single-program request.
	serveScalar, err := measureServe(env.Base, count, 0)
	if err != nil {
		return nil, err
	}
	rep.Results = append(rep.Results, serveScalar)
	serveBatched, err := measureServe(env.Base, count, 16)
	if err != nil {
		return nil, err
	}
	rep.Results = append(rep.Results, serveBatched)

	// Transport A/B over real sockets: JSON/HTTP vs SHMDWIRE streaming,
	// same request mix and server shape on both sides.
	serveJSON, serveWire, err := measureServeTransports(env.Base, count, 16)
	if err != nil {
		return nil, err
	}
	rep.Results = append(rep.Results, serveJSON, serveWire)

	lane64 := batchRows[64].NsPerOp / 64
	rep.Speedups = Speedups{
		ExactFusedVsScalar:         scalar.NsPerOp / fused.NsPerOp,
		FaultySkipAheadVsBernoulli: bernoulli.NsPerOp / faulty.NsPerOp,
		EvaluateShardedVsSerial:    serial.NsPerOp / sharded.NsPerOp,
		BatchLane64VsScalarFaulty:  faulty.NsPerOp / lane64,
		BatchLane64VsExactFused:    fused.NsPerOp / lane64,
		ServeBatchedVsScalar:       serveScalar.NsPerOp / serveBatched.NsPerOp,
		ServeWireVsJSON:            serveJSON.NsPerOp / serveWire.NsPerOp,
	}
	return rep, nil
}

// measureServe benchmarks the detection service end to end in-process:
// a real serve.Server (pool of 4 undervolted sessions at the operating
// rate), concurrent clients calling the handler directly. maxBatch 0
// measures the scalar per-request dispatch; > 1 the micro-batching
// dispatcher with that lane limit.
func measureServe(base *hmd.HMD, count, maxBatch int) (Result, error) {
	name := "serve_detect_scalar"
	if maxBatch > 1 {
		name = fmt.Sprintf("serve_detect_batched_%d", maxBatch)
	}
	win := 4
	if p := base.Config().Period; p > win {
		win = p
	}
	prog, err := trace.NewProgram(trace.Trojan, 0, 1)
	if err != nil {
		return Result{}, err
	}
	windows, err := prog.Trace(win, 256)
	if err != nil {
		return Result{}, err
	}
	body, err := json.Marshal(serve.DetectRequest{Programs: []serve.ProgramJSON{{
		ID: "bench", Windows: serve.EncodeWindows(windows),
	}}})
	if err != nil {
		return Result{}, err
	}
	cfg := serve.Config{
		Pool:         serve.PoolConfig{Size: 4, ErrorRate: experiments.OperatingErrorRate, Seed: 1},
		QueueDepth:   1024,
		MaxBatch:     maxBatch,
		MaxBatchWait: 500 * time.Microsecond,
	}
	res := Result{Name: name}
	for i := 0; i < count; i++ {
		srv, err := serve.New(base, cfg)
		if err != nil {
			return Result{}, err
		}
		handler := srv.Handler()
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			// Enough concurrent clients to keep batches forming regardless
			// of core count.
			b.SetParallelism(32/runtime.GOMAXPROCS(0) + 1)
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					req := httptest.NewRequest(http.MethodPost, "/v1/detect", bytes.NewReader(body))
					rec := httptest.NewRecorder()
					handler.ServeHTTP(rec, req)
					if rec.Code != http.StatusOK {
						b.Errorf("detect status %d: %s", rec.Code, rec.Body.Bytes())
						return
					}
				}
			})
		})
		srv.Close()
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		if res.Iterations == 0 || ns < res.NsPerOp {
			res.NsPerOp = ns
			res.AllocsPerOp = r.AllocsPerOp()
			res.BytesPerOp = r.AllocedBytesPerOp()
			res.Iterations = r.N
		}
	}
	return res, nil
}

// measureServeTransports benchmarks the detection service over real
// TCP both ways: JSON/HTTP with keep-alive clients against SHMDWIRE
// driven through the SDK's pipelined detect stream. Same model, same
// single-program request, same pool and micro-batch shape; one op =
// one request, so the ratio is the transport cost alone (connection
// handling, framing, marshalling).
func measureServeTransports(base *hmd.HMD, count, maxBatch int) (Result, Result, error) {
	jsonRow := Result{Name: fmt.Sprintf("serve_json_tcp_batched_%d", maxBatch)}
	wireRow := Result{Name: fmt.Sprintf("serve_wire_stream_batched_%d", maxBatch)}
	win := 4
	if p := base.Config().Period; p > win {
		win = p
	}
	prog, err := trace.NewProgram(trace.Trojan, 0, 1)
	if err != nil {
		return jsonRow, wireRow, err
	}
	windows, err := prog.Trace(win, 256)
	if err != nil {
		return jsonRow, wireRow, err
	}
	body, err := json.Marshal(serve.DetectRequest{Programs: []serve.ProgramJSON{{
		ID: "bench", Windows: serve.EncodeWindows(windows),
	}}})
	if err != nil {
		return jsonRow, wireRow, err
	}
	wireReq := wire.DetectRequest{Programs: []wire.DetectProgram{{ID: "bench", Windows: windows}}}
	cfg := serve.Config{
		Pool:            serve.PoolConfig{Size: 4, ErrorRate: experiments.OperatingErrorRate, Seed: 1},
		QueueDepth:      1024,
		MaxBatch:        maxBatch,
		MaxBatchWait:    500 * time.Microsecond,
		ShutdownTimeout: 5 * time.Second,
	}
	keep := func(res Result, r testing.BenchmarkResult) Result {
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		if res.Iterations == 0 || ns < res.NsPerOp {
			res.NsPerOp = ns
			res.AllocsPerOp = r.AllocsPerOp()
			res.BytesPerOp = r.AllocedBytesPerOp()
			res.Iterations = r.N
		}
		return res
	}
	for i := 0; i < count; i++ {
		srv, err := serve.New(base, cfg)
		if err != nil {
			return jsonRow, wireRow, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return jsonRow, wireRow, err
		}
		wln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			ln.Close()
			return jsonRow, wireRow, err
		}
		httpCtx, stopHTTP := context.WithCancel(context.Background())
		wireCtx, stopWire := context.WithCancel(context.Background())
		httpDone := make(chan error, 1)
		wireDone := make(chan error, 1)
		go func() { httpDone <- srv.Serve(httpCtx, ln) }()
		go func() { wireDone <- srv.ServeWire(wireCtx, wln) }()

		tr := &http.Transport{MaxIdleConnsPerHost: 64}
		client := &http.Client{Transport: tr}
		url := "http://" + ln.Addr().String() + "/v1/detect"
		jsonRow = keep(jsonRow, testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			b.SetParallelism(32/runtime.GOMAXPROCS(0) + 1)
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					resp, err := client.Post(url, "application/json", bytes.NewReader(body))
					if err != nil {
						b.Errorf("detect: %v", err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						b.Errorf("detect status %d", resp.StatusCode)
						return
					}
				}
			})
		}))
		tr.CloseIdleConnections()

		cl, err := sdk.Dial(wln.Addr().String(), sdk.Options{JitterSeed: 1})
		if err == nil {
			wireRow = keep(wireRow, testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				st := cl.DetectStream(context.Background(), 64)
				var streamErr error
				var drained sync.WaitGroup
				drained.Add(1)
				go func() {
					defer drained.Done()
					for res := range st.Results() {
						if res.Err != nil && streamErr == nil {
							streamErr = res.Err
						}
					}
				}()
				for i := 0; i < b.N; i++ {
					if _, err := st.Submit(wireReq); err != nil {
						b.Errorf("submit: %v", err)
						break
					}
				}
				st.Close()
				drained.Wait()
				if streamErr != nil {
					b.Errorf("stream detect: %v", streamErr)
				}
			}))
			cl.Close()
		}
		// Wire drains before the HTTP shutdown closes the pool.
		stopWire()
		<-wireDone
		stopHTTP()
		<-httpDone
		if err != nil {
			return jsonRow, wireRow, err
		}
	}
	return jsonRow, wireRow, nil
}

// write renders the report as indented JSON to path.
func write(rep *Report, path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// load reads a previously written report.
func load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &Report{}
	if err := json.Unmarshal(data, rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// compare gates a fresh report against a committed baseline and
// returns one message per regression beyond maxRegress (0.25 = fail
// only when a metric degrades by more than 25%).
//
// Raw ns/op is NOT gated: the committed baseline records one machine
// and CI runs on another, so absolute times differ by far more than
// any code change. The gate instead holds the machine-independent
// signals: the A/B speedup ratios (both sides of each pair run on the
// same host in the same process, so their ratio cancels the host out)
// and the per-op allocation counts (exact, deterministic).
func compare(rep, base *Report, maxRegress float64) []string {
	var problems []string
	ratio := func(name string, got, want float64) {
		if want <= 0 {
			return
		}
		if got < want*(1-maxRegress) {
			problems = append(problems,
				fmt.Sprintf("%s speedup %.2fx, baseline %.2fx (>%d%% regression)",
					name, got, want, int(maxRegress*100)))
		}
	}
	ratio("exact_fused_vs_scalar", rep.Speedups.ExactFusedVsScalar, base.Speedups.ExactFusedVsScalar)
	ratio("faulty_skipahead_vs_bernoulli", rep.Speedups.FaultySkipAheadVsBernoulli, base.Speedups.FaultySkipAheadVsBernoulli)
	ratio("batch_lane64_vs_faulty_skipahead", rep.Speedups.BatchLane64VsScalarFaulty, base.Speedups.BatchLane64VsScalarFaulty)
	ratio("batch_lane64_vs_exact_fused", rep.Speedups.BatchLane64VsExactFused, base.Speedups.BatchLane64VsExactFused)
	// The parallel rows cannot speed up on one proc: a 1-core runner
	// reporting a ~1.0x ratio against a multi-core baseline is the
	// machine, not a regression — skip those gates there.
	if rep.MaxProcs > 1 {
		ratio("evaluate_sharded_vs_serial", rep.Speedups.EvaluateShardedVsSerial, base.Speedups.EvaluateShardedVsSerial)
		// The serve ratio's upside depends on core count and scheduler,
		// so its baseline is capped at 1.0: the portable invariant is
		// that micro-batching never collapses throughput below scalar
		// dispatch, not the exact speedup this machine happened to see.
		want := base.Speedups.ServeBatchedVsScalar
		if want > 1 {
			want = 1
		}
		ratio("serve_batched_vs_scalar", rep.Speedups.ServeBatchedVsScalar, want)
		// Same cap for the transport ratio: the portable invariant is
		// that SHMDWIRE streaming never falls below JSON req/s, not the
		// exact advantage this machine happened to see.
		wantWire := base.Speedups.ServeWireVsJSON
		if wantWire > 1 {
			wantWire = 1
		}
		ratio("serve_wire_stream_vs_json", rep.Speedups.ServeWireVsJSON, wantWire)
	}

	baseByName := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		baseByName[r.Name] = r
	}
	for _, r := range rep.Results {
		b, ok := baseByName[r.Name]
		if !ok {
			continue
		}
		// The real-socket transport rows include client-side connection
		// churn, so their allocation counts are scheduler-dependent —
		// their gate is the speedup ratio above, not allocs.
		if strings.HasPrefix(r.Name, "serve_json_tcp") || strings.HasPrefix(r.Name, "serve_wire_stream") {
			continue
		}
		// A couple of allocations of absolute slack: counts this small
		// are ABI noise (interface boxing, map seeds), not leaks.
		limit := float64(b.AllocsPerOp)*(1+maxRegress) + 2
		if float64(r.AllocsPerOp) > limit {
			problems = append(problems,
				fmt.Sprintf("%s allocs/op %d, baseline %d (>%d%% regression)",
					r.Name, r.AllocsPerOp, b.AllocsPerOp, int(maxRegress*100)))
		}
	}
	return problems
}

func main() {
	scaleName := flag.String("scale", "quick", "benchmark scale (quick|full)")
	seed := flag.Uint64("seed", 1, "root seed")
	count := flag.Int("count", 3, "repetitions per benchmark (fastest kept)")
	out := flag.String("out", "BENCH_inference.json", "output JSON path")
	baseline := flag.String("baseline", "", "committed report to gate against (empty = no gate)")
	maxRegress := flag.Float64("max-regress", 0.25, "fail when a gated metric degrades by more than this fraction")
	flag.Parse()

	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.Quick(*seed)
	case "full":
		scale = experiments.Full(*seed)
	default:
		fmt.Fprintf(os.Stderr, "bench: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	// Load the baseline before writing: -out and -baseline may name the
	// same file (the CI invocation regenerates the committed report in
	// place and uploads it as an artifact).
	var base *Report
	if *baseline != "" {
		var err error
		base, err = load(*baseline)
		if os.IsNotExist(err) {
			fmt.Fprintf(os.Stderr, "bench: baseline %s missing, gate skipped\n", *baseline)
		} else if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
	}

	rep, err := run(scale, *count)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	if err := write(rep, *out); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	for _, r := range rep.Results {
		fmt.Printf("%-28s %12.1f ns/op %6d allocs/op", r.Name, r.NsPerOp, r.AllocsPerOp)
		if r.Lanes > 1 {
			fmt.Printf("  %10.1f ns/lane", r.NsPerOp/float64(r.Lanes))
		}
		if r.MulsPerSec > 0 {
			fmt.Printf("  %8.1f Mmuls/s", r.MulsPerSec/1e6)
		}
		fmt.Println()
	}
	fmt.Printf("exact fused vs scalar:        %.2fx\n", rep.Speedups.ExactFusedVsScalar)
	fmt.Printf("faulty skip-ahead vs bernoulli: %.2fx\n", rep.Speedups.FaultySkipAheadVsBernoulli)
	fmt.Printf("evaluate sharded vs serial:   %.2fx (%d procs)\n", rep.Speedups.EvaluateShardedVsSerial, rep.MaxProcs)
	fmt.Printf("batch lane64 vs scalar faulty: %.2fx\n", rep.Speedups.BatchLane64VsScalarFaulty)
	fmt.Printf("batch lane64 vs exact fused:  %.2fx\n", rep.Speedups.BatchLane64VsExactFused)
	fmt.Printf("serve batched vs scalar:      %.2fx\n", rep.Speedups.ServeBatchedVsScalar)
	fmt.Printf("serve wire stream vs json:    %.2fx\n", rep.Speedups.ServeWireVsJSON)
	fmt.Printf("wrote %s\n", *out)

	if base != nil {
		problems := compare(rep, base, *maxRegress)
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "bench: REGRESSION:", p)
		}
		if len(problems) > 0 {
			os.Exit(1)
		}
		fmt.Printf("baseline gate: OK (within %d%% of %s)\n", int(*maxRegress*100), *baseline)
	}
}
