package main

import (
	"strings"
	"testing"

	"shmd/internal/volt"
)

func TestRunProducesCharacterization(t *testing.T) {
	var b strings.Builder
	if err := run(&b, volt.DefaultProfile(), 1, 2000, volt.ReferenceTempC); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"fault onset by operand pair",
		"undervolt depth → multiplier error rate",
		"Fig 1",
		"approximate entropy",
		"sign bit 63 and bits 0..7 never fault",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunOnVariantDevice(t *testing.T) {
	var b strings.Builder
	profile := volt.NewDeviceProfile(7)
	if err := run(&b, profile, 2, 1000, 65); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "65.0 °C") {
		t.Error("temperature not reported")
	}
}

func TestBars(t *testing.T) {
	if bars(0) != "" || bars(3) != "###" {
		t.Error("bars rendering wrong")
	}
}

func TestMaxRate(t *testing.T) {
	var hist [64]float64
	hist[20] = 0.5
	if maxRate(hist) != 0.5 {
		t.Errorf("maxRate = %v", maxRate(hist))
	}
	var empty [64]float64
	if maxRate(empty) <= 0 {
		t.Error("maxRate of empty must stay positive (division guard)")
	}
}
