// Command characterize reproduces the paper's Section II undervolting
// characterization: the per-operand fault-onset window, the faulty-bit
// location distribution (Fig 1), the instruction-class fault behaviour,
// and the approximate-entropy stochasticity check.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"shmd/internal/faults"
	"shmd/internal/fxp"
	"shmd/internal/rng"
	"shmd/internal/volt"
)

func main() {
	seed := flag.Uint64("seed", 1, "random stream seed")
	device := flag.Uint64("device", 0, "device profile seed (0 = reference device)")
	operands := flag.Int("operands", 100000, "operand sets for the Fig 1 histogram")
	temp := flag.Float64("temp", volt.ReferenceTempC, "die temperature in °C")
	flag.Parse()

	profile := volt.NewDeviceProfile(*device)
	if err := run(os.Stdout, profile, *seed, *operands, *temp); err != nil {
		fmt.Fprintln(os.Stderr, "characterize:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, profile volt.DeviceProfile, seed uint64, operands int, tempC float64) error {
	fmt.Fprintf(w, "device profile: U50=%.1f mV, guard band=%.1f mV, freeze=%.1f mV (%.1f °C)\n",
		profile.U50MV, profile.GuardBandMV, profile.FreezeMV, tempC)

	// Fault-onset sweep: lower the voltage 1 mV at a time for several
	// operand pairs, reporting the first faulting depth — the
	// −103..−145 mV window of Section II.
	fmt.Fprintln(w, "\nfault onset by operand pair (1 mV steps):")
	pairs := [][2]int32{
		{123456789, 987654321},
		{1, 1},
		{0x7FFFFFF, 0x1234567},
		{-55555555, 44444444},
		{314159265, -271828182},
	}
	for _, p := range pairs {
		onset := profile.OperandOnsetMV(p[0], p[1])
		fmt.Fprintf(w, "  %12d × %12d : first fault at −%.0f mV\n", p[0], p[1], onset)
	}

	// Voltage → error-rate curve.
	fmt.Fprintln(w, "\nundervolt depth → multiplier error rate:")
	for _, depth := range []float64{90, 103, 115, 130, 145, 160, 180, 200} {
		fmt.Fprintf(w, "  −%3.0f mV (%.3f V): %.4f\n",
			depth, volt.SupplyVoltageAt(depth), profile.ErrorRate(depth, tempC))
	}

	// Fig 1: bit-location histogram at −130 mV.
	rate := profile.ErrorRate(130, tempC)
	inj, err := faults.NewInjector(rate, nil, rng.NewRand(seed, 1))
	if err != nil {
		return err
	}
	hist := faults.ObservedBitHistogram(inj, operands, 5, rng.NewRand(seed, 2))
	fmt.Fprintf(w, "\nFig 1 — faulty-bit location rates at −130 mV (er=%.4f, %d operand sets):\n", rate, operands)
	for bit := faults.ProductBits - 1; bit >= 0; bit-- {
		if hist[bit] == 0 {
			continue
		}
		bar := int(hist[bit] * 40 / maxRate(hist))
		fmt.Fprintf(w, "  bit %2d  %8.5f%%  %s\n", bit, 100*hist[bit], bars(bar))
	}
	fmt.Fprintln(w, "  (sign bit 63 and bits 0..7 never fault)")

	// Stochasticity: ApEn of a fixed-operand fault series.
	apInj, err := faults.NewInjector(rate, nil, rng.NewRand(seed, 3))
	if err != nil {
		return err
	}
	ap, err := faults.StochasticityApEn(apInj, fxp.Value(123456789), fxp.Value(987654321), 400)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\napproximate entropy of fixed-operand fault series: %.3f (0 = deterministic)\n", ap)

	// Instruction-class behaviour: only multiplications fault.
	fmt.Fprintln(w, "\ninstruction classes under undervolting:")
	fmt.Fprintln(w, "  multiply (imul/mul/fmul/pmulld): FAULTS (long carry chains)")
	fmt.Fprintln(w, "  add/sub/logic/shift:             no faults observed (short paths)")
	return nil
}

func maxRate(hist [faults.ProductBits]float64) float64 {
	max := 1e-12
	for _, r := range hist {
		if r > max {
			max = r
		}
	}
	return max
}

func bars(n int) string {
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
