// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -scale quick|full [-fig all|1|2a|2b|3|4|5|6|7|8|lat|mem|rng]
//	            [-rotation 0|1|2] [-seed N]
//
// Every figure prints as an aligned text table with the same rows/series
// the paper reports.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"shmd/internal/experiments"
)

func main() {
	scaleName := flag.String("scale", "quick", "experiment scale (quick|full)")
	fig := flag.String("fig", "all", "comma-separated figures: 1,2a,2b,3,4,5,6,7,8,lat,mem,rng,ablations or all")
	rotation := flag.Int("rotation", 0, "cross-validation rotation (0..2)")
	seed := flag.Uint64("seed", 1, "root seed")
	repeats := flag.Int("repeats", 0, "override sweep repeats (0 = scale default)")
	targets := flag.Int("targets", 0, "override evasion target count (0 = scale default)")
	proxyEpochs := flag.Int("proxyepochs", 0, "override proxy training epochs (0 = scale default)")
	outDir := flag.String("out", "", "also write each table as CSV into this directory")
	flag.Parse()

	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.Quick(*seed)
	case "full":
		scale = experiments.Full(*seed)
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	if *repeats > 0 {
		scale.SweepRepeats = *repeats
		scale.ConfRepeats = *repeats
	}
	if *targets > 0 {
		scale.EvadeTargets = *targets
	}
	if *proxyEpochs > 0 {
		scale.ProxyEpochs = *proxyEpochs
	}

	want := map[string]bool{}
	for _, f := range strings.Split(*fig, ",") {
		want[strings.TrimSpace(f)] = true
	}
	all := want["all"]
	selected := func(name string) bool { return all || want[name] }

	if err := run(scale, *rotation, *outDir, selected); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(scale experiments.Scale, rotation int, outDir string, selected func(string) bool) error {
	fmt.Printf("scale=%s rotation=%d seed=%d\n", scale.Name, rotation, scale.Seed)

	// Fig 1 and Fig 7 need no trained detector; everything else shares
	// an Env.
	var env *experiments.Env
	needEnv := false
	for _, f := range []string{"2a", "2b", "3", "4", "5", "6", "7", "8", "lat", "mem", "rng", "ablations"} {
		if selected(f) {
			needEnv = true
		}
	}
	if needEnv {
		start := time.Now()
		fmt.Println("generating corpus and training baseline HMD...")
		var err error
		env, err = experiments.NewEnv(scale, rotation)
		if err != nil {
			return err
		}
		fmt.Printf("ready in %v\n\n", time.Since(start).Round(time.Millisecond))
	}

	emit := func(t *experiments.Table) error {
		fmt.Println(t)
		if outDir == "" {
			return nil
		}
		path, err := t.SaveCSV(outDir)
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
		return nil
	}

	show := func(name string, f func() (*experiments.Table, error)) error {
		if !selected(name) {
			return nil
		}
		start := time.Now()
		t, err := f()
		if err != nil {
			return fmt.Errorf("fig %s: %w", name, err)
		}
		if err := emit(t); err != nil {
			return err
		}
		fmt.Printf("(%v)\n\n", time.Since(start).Round(time.Millisecond))
		return nil
	}

	steps := []struct {
		name string
		fn   func() (*experiments.Table, error)
	}{
		{"1", func() (*experiments.Table, error) { _, t, err := experiments.Fig1(scale); return t, err }},
		{"2a", func() (*experiments.Table, error) { _, t, err := experiments.Fig2a(env); return t, err }},
		{"2b", func() (*experiments.Table, error) { _, t, err := experiments.Fig2b(env); return t, err }},
		{"3", func() (*experiments.Table, error) { _, t, err := experiments.Fig3(env); return t, err }},
		{"4", func() (*experiments.Table, error) { _, t, err := experiments.Fig4(env); return t, err }},
		{"7", func() (*experiments.Table, error) { _, t, err := experiments.Fig7(env); return t, err }},
		{"8", func() (*experiments.Table, error) { _, t, err := experiments.Fig8(env); return t, err }},
		{"lat", func() (*experiments.Table, error) { _, t, err := experiments.TabLatency(env); return t, err }},
		{"mem", func() (*experiments.Table, error) { _, t, err := experiments.TabMemory(env); return t, err }},
		{"rng", func() (*experiments.Table, error) { _, t, err := experiments.TabRNG(env); return t, err }},
	}
	for _, s := range steps {
		if err := show(s.name, s.fn); err != nil {
			return err
		}
	}

	// The design-choice ablations (DESIGN.md §5).
	if selected("ablations") {
		ablations := []struct {
			name string
			fn   func() (*experiments.Table, error)
		}{
			{"fault-distribution", func() (*experiments.Table, error) {
				_, t, err := experiments.AblationFaultDistribution(env)
				return t, err
			}},
			{"deterministic-ac", func() (*experiments.Table, error) {
				_, t, err := experiments.AblationDeterministicAC(env)
				return t, err
			}},
			{"persistence", func() (*experiments.Table, error) {
				_, t, err := experiments.AblationPersistence(env)
				return t, err
			}},
			{"evasion-margin", func() (*experiments.Table, error) {
				_, t, err := experiments.AblationEvasionMargin(env)
				return t, err
			}},
		}
		for _, a := range ablations {
			start := time.Now()
			t, err := a.fn()
			if err != nil {
				return fmt.Errorf("ablation %s: %w", a.name, err)
			}
			if err := emit(t); err != nil {
				return err
			}
			fmt.Printf("(%v)\n\n", time.Since(start).Round(time.Millisecond))
		}
	}

	// Figs 5 and 6 come from one combined experiment.
	if selected("5") || selected("6") {
		start := time.Now()
		_, fig5, fig6, err := experiments.Fig5And6(env)
		if err != nil {
			return fmt.Errorf("fig 5/6: %w", err)
		}
		if selected("5") {
			if err := emit(fig5); err != nil {
				return err
			}
		}
		if selected("6") {
			if err := emit(fig6); err != nil {
				return err
			}
		}
		fmt.Printf("(%v)\n\n", time.Since(start).Round(time.Millisecond))
	}
	return nil
}
