package main

import (
	"testing"

	"shmd/internal/experiments"
)

func TestRunLightFigures(t *testing.T) {
	scale := experiments.Quick(1)
	selected := func(name string) bool {
		switch name {
		case "1", "7", "lat", "mem", "rng":
			return true
		}
		return false
	}
	if err := run(scale, 0, t.TempDir(), selected); err != nil {
		t.Fatal(err)
	}
}

func TestRunNoFigures(t *testing.T) {
	// Selecting nothing must not build an Env or fail.
	if err := run(experiments.Quick(1), 0, "", func(string) bool { return false }); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig1Only(t *testing.T) {
	// Fig 1 needs no detector at all.
	selected := func(name string) bool { return name == "1" }
	if err := run(experiments.Quick(1), 0, "", selected); err != nil {
		t.Fatal(err)
	}
}
