// Package hmd implements the baseline hardware malware detector the
// paper builds on: a FANN multi-layer perceptron over per-window
// execution features, with window-level scores aggregated into a
// program-level decision. RHMD (internal/rhmd) and Stochastic-HMD
// (internal/core) are both built from these detectors.
package hmd

import (
	"fmt"
	"runtime"
	"sync"

	"shmd/internal/dataset"
	"shmd/internal/fann"
	"shmd/internal/features"
	"shmd/internal/fxp"
	"shmd/internal/stats"
	"shmd/internal/trace"
)

// Decision is a program-level verdict.
type Decision struct {
	// Malware is the binary verdict.
	Malware bool
	// Score is the mean window score that produced it.
	Score float64
}

// Detector is the interface shared by the baseline HMD, RHMD, and
// Stochastic-HMD. It is also the black-box boundary of the threat
// model: the adversary can observe decisions, never weights.
type Detector interface {
	// ScoreWindows returns per-decision-window malware scores in
	// [0, 1] for a program trace.
	ScoreWindows(windows []trace.WindowCounts) []float64
	// DetectProgram aggregates window scores into a verdict.
	DetectProgram(windows []trace.WindowCounts) Decision
}

// Config configures a baseline HMD.
type Config struct {
	// FeatureSet selects the feature family (default F1).
	FeatureSet features.Set
	// Period is the detection period in base windows (default 1).
	Period int
	// Hidden is the hidden-layer width (default 32).
	Hidden int
	// Epochs bounds training (default 80).
	Epochs int
	// Threshold is the decision threshold on the mean window score
	// (default 0.5).
	Threshold float64
	// Seed drives weight initialization.
	Seed uint64
	// BenignOversample repeats benign training windows to counter the
	// 5:1 malware/benign imbalance of the corpus (default 3).
	BenignOversample int
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Period == 0 {
		c.Period = features.Period1
	}
	if c.Hidden == 0 {
		c.Hidden = 32
	}
	if c.Epochs == 0 {
		c.Epochs = 80
	}
	if c.Threshold == 0 {
		c.Threshold = 0.5
	}
	if c.BenignOversample == 0 {
		c.BenignOversample = 3
	}
	return c
}

// HMD is a trained baseline detector. Inference runs on the
// fixed-point network (the deployment form); the float network is kept
// for serialization and for white-box uses inside the library.
type HMD struct {
	cfg   Config
	net   *fann.Network
	fixed *fann.FixedNetwork
}

// Train fits a baseline HMD on the training programs' window features,
// labelling every window with its program's class.
func Train(programs []dataset.TracedProgram, cfg Config) (*HMD, error) {
	cfg = cfg.withDefaults()
	dim, err := cfg.FeatureSet.Dim()
	if err != nil {
		return nil, err
	}
	if len(programs) == 0 {
		return nil, fmt.Errorf("hmd: no training programs")
	}
	if cfg.Hidden < 1 || cfg.Epochs < 1 || cfg.BenignOversample < 1 {
		return nil, fmt.Errorf("hmd: invalid config %+v", cfg)
	}
	if cfg.Threshold <= 0 || cfg.Threshold >= 1 {
		return nil, fmt.Errorf("hmd: threshold %v outside (0,1)", cfg.Threshold)
	}

	var samples []fann.TrainSample
	for _, p := range programs {
		vecs, err := features.Extract(p.Windows, cfg.FeatureSet, cfg.Period)
		if err != nil {
			return nil, fmt.Errorf("hmd: %s: %w", p.Program.Name, err)
		}
		target := []float64{0}
		repeats := 1
		if p.IsMalware() {
			target = []float64{1}
		} else {
			repeats = cfg.BenignOversample
		}
		for r := 0; r < repeats; r++ {
			for _, v := range vecs {
				samples = append(samples, fann.TrainSample{Input: v, Target: target})
			}
		}
	}

	net, err := fann.New(fann.Config{
		Layers: []int{dim, cfg.Hidden, 1},
		Hidden: fann.SigmoidSymmetric,
		Output: fann.Sigmoid,
		Seed:   cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	if _, _, err := net.Train(samples, fann.TrainOptions{
		MaxEpochs:      cfg.Epochs,
		MinImprovement: 1e-6,
		Patience:       12,
	}); err != nil {
		return nil, err
	}
	return FromNetwork(net, cfg)
}

// FromNetwork wraps an already-trained network as an HMD (used by
// loaders and by RHMD's base-detector constructor).
func FromNetwork(net *fann.Network, cfg Config) (*HMD, error) {
	cfg = cfg.withDefaults()
	dim, err := cfg.FeatureSet.Dim()
	if err != nil {
		return nil, err
	}
	if net.NumInputs() != dim {
		return nil, fmt.Errorf("hmd: network takes %d inputs, feature set %v has %d",
			net.NumInputs(), cfg.FeatureSet, dim)
	}
	if net.NumOutputs() != 1 {
		return nil, fmt.Errorf("hmd: network has %d outputs, want 1", net.NumOutputs())
	}
	fixed, err := net.ToFixed(fxp.DefaultFormat)
	if err != nil {
		return nil, err
	}
	return &HMD{cfg: cfg, net: net, fixed: fixed}, nil
}

// Config returns the detector configuration (defaults resolved).
func (h *HMD) Config() Config { return h.cfg }

// WithFreshBuffers returns a shallow copy of the detector whose
// fixed-point network owns its own scratch buffers. Weights are
// shared read-only; use one copy per goroutine when evaluating in
// parallel.
func (h *HMD) WithFreshBuffers() *HMD {
	c := *h
	c.fixed = h.fixed.Clone()
	return &c
}

// Network returns the underlying float network (for Save and
// inspection).
func (h *HMD) Network() *fann.Network { return h.net }

// Fixed returns the fixed-point deployment network.
func (h *HMD) Fixed() *fann.FixedNetwork { return h.fixed }

// ScoreWindowsUnit scores a trace through an arbitrary multiplier unit
// — fxp.Exact for the nominal detector, a faults.Injector for the
// undervolted one. This is the integration point internal/core uses.
func (h *HMD) ScoreWindowsUnit(u fxp.Unit, windows []trace.WindowCounts) []float64 {
	vecs, err := features.Extract(windows, h.cfg.FeatureSet, h.cfg.Period)
	if err != nil {
		// A trace too short for the detection period is a caller bug.
		panic(fmt.Sprintf("hmd: %v", err))
	}
	scores := make([]float64, len(vecs))
	for i, v := range vecs {
		scores[i] = h.fixed.Run(u, v)[0]
	}
	return scores
}

// ScoreWindows implements Detector at nominal voltage.
func (h *HMD) ScoreWindows(windows []trace.WindowCounts) []float64 {
	return h.ScoreWindowsUnit(fxp.Exact{}, windows)
}

// DecideFromScores turns window scores into a program decision using
// the configured threshold on the mean score.
func (h *HMD) DecideFromScores(scores []float64) Decision {
	mean := stats.Mean(scores)
	return Decision{Malware: mean >= h.cfg.Threshold, Score: mean}
}

// DetectProgram implements Detector at nominal voltage.
func (h *HMD) DetectProgram(windows []trace.WindowCounts) Decision {
	return h.DecideFromScores(h.ScoreWindows(windows))
}

// DetectProgramUnit is DetectProgram through an arbitrary multiplier.
func (h *HMD) DetectProgramUnit(u fxp.Unit, windows []trace.WindowCounts) Decision {
	return h.DecideFromScores(h.ScoreWindowsUnit(u, windows))
}

var _ Detector = (*HMD)(nil)

// UnitDetector is a Detector view of an HMD through a fixed multiplier
// unit: fxp.Exact for the nominal path, a faults.Injector for an
// undervolted one. Each UnitDetector owns its scratch buffers, so one
// per goroutine is safe.
type UnitDetector struct {
	h *HMD
	u fxp.Unit
}

// WithUnit pairs a buffer-fresh copy of the detector with u.
func (h *HMD) WithUnit(u fxp.Unit) *UnitDetector {
	return &UnitDetector{h: h.WithFreshBuffers(), u: u}
}

// ScoreWindows implements Detector through the bound unit.
func (d *UnitDetector) ScoreWindows(windows []trace.WindowCounts) []float64 {
	return d.h.ScoreWindowsUnit(d.u, windows)
}

// DetectProgram implements Detector through the bound unit.
func (d *UnitDetector) DetectProgram(windows []trace.WindowCounts) Decision {
	return d.h.DetectProgramUnit(d.u, windows)
}

var _ Detector = (*UnitDetector)(nil)

// ProgramSharder is the optional interface a Detector implements to
// opt into program-sharded evaluation. DetectorForProgram returns an
// independent detector for evaluating program index idx, whose
// stochastic stream (if any) is derived deterministically from the
// parent's seed and idx — never from shared mutable RNG state — so a
// sharded evaluation's result depends only on the seed, not on worker
// count or shard order. Returning nil declines sharding for this call
// (evaluation falls back to the serial path).
type ProgramSharder interface {
	Detector
	DetectorForProgram(idx int) Detector
}

// DetectorForProgram implements ProgramSharder for the deterministic
// baseline: every program gets a buffer-fresh copy of the same
// detector.
func (h *HMD) DetectorForProgram(idx int) Detector {
	return h.WithFreshBuffers()
}

var _ ProgramSharder = (*HMD)(nil)

// Evaluate runs a detector over labelled programs and returns the
// confusion matrix of program-level decisions. Detectors implementing
// BatchSharder are evaluated in lane-batched groups fanned out over
// workers (one batched forward pass per window step); detectors
// implementing only ProgramSharder are evaluated in parallel across
// single programs with per-program derived detectors. The result is
// identical for any worker count, including 1.
func Evaluate(d Detector, programs []dataset.TracedProgram) stats.Confusion {
	return EvaluateParallel(d, programs, 0)
}

// EvaluateParallel is Evaluate with an explicit worker count
// (workers <= 0 means GOMAXPROCS). Worker count affects wall-clock
// only, never the result.
func EvaluateParallel(d Detector, programs []dataset.TracedProgram, workers int) stats.Confusion {
	return EvaluateBatch(d, programs, DefaultEvalBatch, workers)
}

// defaultWorkers is the worker count used when callers pass <= 0.
func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// evaluateSharded fans program indices out over workers. Each program
// is scored by its own derived detector, so the verdicts — and hence
// the confusion matrix, whose accumulation is commutative — are a pure
// function of the parent detector's seed.
func evaluateSharded(sharder ProgramSharder, first Detector, programs []dataset.TracedProgram, workers int) stats.Confusion {
	if workers > len(programs) {
		workers = len(programs)
	}
	verdicts := make([]bool, len(programs))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range next {
				det := first
				if idx != 0 {
					det = sharder.DetectorForProgram(idx)
				}
				verdicts[idx] = det.DetectProgram(programs[idx].Windows).Malware
			}
		}()
	}
	for idx := range programs {
		next <- idx
	}
	close(next)
	wg.Wait()
	var c stats.Confusion
	for i, p := range programs {
		c.Record(verdicts[i], p.IsMalware())
	}
	return c
}
