package hmd

import (
	"sync"
	"testing"

	"shmd/internal/dataset"
	"shmd/internal/fann"
	"shmd/internal/features"
	"shmd/internal/fxp"
)

// Shared fixtures: dataset generation and HMD training dominate test
// time, so build them once.
var (
	fixtureOnce sync.Once
	fixtureData *dataset.Dataset
	fixtureHMD  *HMD
	fixtureErr  error
)

func fixtures(t *testing.T) (*dataset.Dataset, *HMD) {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureData, fixtureErr = dataset.Generate(dataset.QuickConfig(1))
		if fixtureErr != nil {
			return
		}
		split, err := fixtureData.ThreeFold(0)
		if err != nil {
			fixtureErr = err
			return
		}
		fixtureHMD, fixtureErr = Train(fixtureData.Select(split.VictimTrain), Config{Seed: 1})
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixtureData, fixtureHMD
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, Config{}); err == nil {
		t.Error("empty training set must error")
	}
	d, _ := fixtures(t)
	progs := d.Programs[:4]
	if _, err := Train(progs, Config{Threshold: 1.5}); err == nil {
		t.Error("threshold outside (0,1) must error")
	}
	if _, err := Train(progs, Config{FeatureSet: features.Set(9)}); err == nil {
		t.Error("unknown feature set must error")
	}
	if _, err := Train(progs, Config{Hidden: -1}); err == nil {
		t.Error("negative hidden width must error")
	}
}

func TestBaselineAccuracy(t *testing.T) {
	d, h := fixtures(t)
	split, _ := d.ThreeFold(0)
	c := Evaluate(h, d.Select(split.Test))
	t.Logf("baseline test confusion: %v", c)
	if acc := c.Accuracy(); acc < 0.85 {
		t.Errorf("baseline accuracy = %v, want >= 0.85", acc)
	}
	// Both error modes must stay moderate: the detector is not allowed
	// to degenerate into the majority class.
	if c.FNR() > 0.25 {
		t.Errorf("FNR = %v, detector missing too much malware", c.FNR())
	}
	if c.FPR() > 0.35 {
		t.Errorf("FPR = %v, detector flagging too many benign programs", c.FPR())
	}
}

func TestScoreWindowsShape(t *testing.T) {
	d, h := fixtures(t)
	p := d.Programs[0]
	scores := h.ScoreWindows(p.Windows)
	if len(scores) != len(p.Windows) {
		t.Fatalf("scores = %d, want %d", len(scores), len(p.Windows))
	}
	for i, s := range scores {
		if s < 0 || s > 1 {
			t.Errorf("score %d = %v outside [0,1]", i, s)
		}
	}
}

func TestDetectDeterministicAtNominal(t *testing.T) {
	d, h := fixtures(t)
	p := d.Programs[3]
	first := h.DetectProgram(p.Windows)
	for i := 0; i < 5; i++ {
		if got := h.DetectProgram(p.Windows); got != first {
			t.Fatal("nominal-voltage detection must be deterministic")
		}
	}
}

func TestDecideFromScores(t *testing.T) {
	_, h := fixtures(t)
	if dec := h.DecideFromScores([]float64{0.9, 0.8, 0.7}); !dec.Malware {
		t.Error("high scores must flag malware")
	}
	if dec := h.DecideFromScores([]float64{0.1, 0.2}); dec.Malware {
		t.Error("low scores must pass as benign")
	}
	dec := h.DecideFromScores([]float64{0.2, 0.8})
	if dec.Score != 0.5 {
		t.Errorf("mean score = %v", dec.Score)
	}
}

func TestDetectProgramUnitMatchesExact(t *testing.T) {
	d, h := fixtures(t)
	p := d.Programs[5]
	a := h.DetectProgram(p.Windows)
	b := h.DetectProgramUnit(fxp.Exact{}, p.Windows)
	if a != b {
		t.Error("DetectProgramUnit(Exact) must equal DetectProgram")
	}
}

func TestFromNetworkValidation(t *testing.T) {
	net, err := fann.New(fann.Config{Layers: []int{10, 4, 1}, Hidden: fann.Sigmoid, Output: fann.Sigmoid})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromNetwork(net, Config{}); err == nil {
		t.Error("input-width mismatch must be rejected")
	}
	twoOut, err := fann.New(fann.Config{Layers: []int{features.DimInstrFreq, 4, 2}, Hidden: fann.Sigmoid, Output: fann.Sigmoid})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromNetwork(twoOut, Config{}); err == nil {
		t.Error("multi-output network must be rejected")
	}
}

func TestConfigDefaults(t *testing.T) {
	_, h := fixtures(t)
	cfg := h.Config()
	if cfg.Period != features.Period1 || cfg.Hidden != 32 || cfg.Threshold != 0.5 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
}

func TestPeriod2Detector(t *testing.T) {
	d, _ := fixtures(t)
	split, _ := d.ThreeFold(0)
	h2, err := Train(d.Select(split.VictimTrain), Config{Period: features.Period2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := d.Programs[0]
	scores := h2.ScoreWindows(p.Windows)
	if len(scores) != len(p.Windows)/2 {
		t.Errorf("period-2 scores = %d, want %d", len(scores), len(p.Windows)/2)
	}
	c := Evaluate(h2, d.Select(split.Test))
	if c.Accuracy() < 0.8 {
		t.Errorf("period-2 accuracy = %v", c.Accuracy())
	}
}

func TestMemoryFeatureDetector(t *testing.T) {
	d, _ := fixtures(t)
	split, _ := d.ThreeFold(0)
	h, err := Train(d.Select(split.VictimTrain), Config{FeatureSet: features.SetMemory, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	c := Evaluate(h, d.Select(split.Test))
	t.Logf("F2 detector confusion: %v", c)
	// The memory-feature detector is weaker than F1 but must beat
	// chance clearly: RHMD depends on diverse usable detectors.
	if c.Accuracy() < 0.7 {
		t.Errorf("F2 accuracy = %v", c.Accuracy())
	}
}
