package hmd

import (
	"runtime"
	"sync"

	"shmd/internal/dataset"
	"shmd/internal/faults"
	"shmd/internal/stats"
	"shmd/internal/trace"
)

// DecisionTrace is the full provenance of one evaluated decision: the
// program index and input windows, the verdict, and the stochastic
// draw log of the scoring pass (empty for deterministic detectors).
// It carries exactly what a replay.Record needs.
type DecisionTrace struct {
	// Program is the index into the evaluated program slice.
	Program int
	// Windows is the scored trace (aliases the program's windows; do
	// not mutate).
	Windows []trace.WindowCounts
	// Decision is the verdict.
	Decision Decision
	// Draws is the stochastic draw log of the scoring pass.
	Draws faults.DrawLog
}

// TracedDetector is a Detector that can report the stochastic draw
// provenance of a decision alongside the verdict. Deterministic
// detectors return an empty log (InitialGap -1): an empty log replays
// as the exact unit.
type TracedDetector interface {
	Detector
	// DetectProgramTraced is DetectProgram plus the draw log of the
	// scoring pass. The returned log is owned by the caller.
	DetectProgramTraced(windows []trace.WindowCounts) (Decision, faults.DrawLog)
}

// DetectProgramTraced implements TracedDetector for the deterministic
// baseline: the verdict plus an empty draw log.
func (h *HMD) DetectProgramTraced(windows []trace.WindowCounts) (Decision, faults.DrawLog) {
	return h.DetectProgram(windows), faults.DrawLog{InitialGap: -1}
}

var _ TracedDetector = (*HMD)(nil)

// DetectProgramTraced implements TracedDetector when the bound unit
// supports draw recording (a faults.Injector); other units yield an
// empty log, which is exact — correct precisely when the unit is
// deterministic.
func (d *UnitDetector) DetectProgramTraced(windows []trace.WindowCounts) (Decision, faults.DrawLog) {
	rec, ok := d.u.(faults.Recordable)
	if !ok {
		return d.DetectProgram(windows), faults.DrawLog{InitialGap: -1}
	}
	var log faults.DrawLog
	rec.StartRecord(&log)
	dec := d.DetectProgram(windows)
	rec.StopRecord()
	return dec, log
}

var _ TracedDetector = (*UnitDetector)(nil)

// EvaluateTraced is Evaluate with a per-decision trace sink: every
// program's decision provenance is delivered to sink serially, in
// program order, regardless of worker count. Detectors implementing
// ProgramSharder are evaluated in parallel exactly as in Evaluate, so
// verdicts — and the recorded draw logs — are a pure function of the
// detector's seed. A detector (or derived per-program detector) that
// is not a TracedDetector contributes an empty draw log.
func EvaluateTraced(d Detector, programs []dataset.TracedProgram, workers int, sink func(DecisionTrace)) stats.Confusion {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	traces := make([]DecisionTrace, len(programs))
	detectTraced := func(det Detector, idx int) {
		dec, log := Decision{}, faults.DrawLog{InitialGap: -1}
		if td, ok := det.(TracedDetector); ok {
			dec, log = td.DetectProgramTraced(programs[idx].Windows)
		} else {
			dec = det.DetectProgram(programs[idx].Windows)
		}
		traces[idx] = DecisionTrace{Program: idx, Windows: programs[idx].Windows, Decision: dec, Draws: log}
	}

	sharded := false
	if len(programs) > 0 {
		if sharder, ok := d.(ProgramSharder); ok {
			if first := sharder.DetectorForProgram(0); first != nil {
				sharded = true
				if workers > len(programs) {
					workers = len(programs)
				}
				next := make(chan int)
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for idx := range next {
							det := first
							if idx != 0 {
								det = sharder.DetectorForProgram(idx)
							}
							detectTraced(det, idx)
						}
					}()
				}
				for idx := range programs {
					next <- idx
				}
				close(next)
				wg.Wait()
			}
		}
	}
	if !sharded {
		for idx := range programs {
			detectTraced(d, idx)
		}
	}

	var c stats.Confusion
	for i, p := range programs {
		c.Record(traces[i].Decision.Malware, p.IsMalware())
		if sink != nil {
			sink(traces[i])
		}
	}
	return c
}
