package hmd

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math"

	"shmd/internal/fann"
	"shmd/internal/features"
)

// Bundle serialization: a deployable detector artifact carrying the
// trained network *and* the configuration needed to run it (feature
// set, detection period, threshold). The bare fann format stores only
// weights; a detector restored without its feature-set binding would
// silently misclassify, so deployments ship bundles.
//
//	magic   [8]byte  "SHMDB\x00\x00\x01"
//	set     uint32   (features.Set)
//	period  uint32
//	thresh  float64
//	network (fann.Save format)
var bundleMagic = [8]byte{'S', 'H', 'M', 'D', 'B', 0, 0, 1}

// ErrBadBundle is returned for malformed bundle streams.
var ErrBadBundle = errors.New("hmd: malformed detector bundle")

// SaveBundle writes the detector and its configuration to w.
func (h *HMD) SaveBundle(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	count := func(k int, err error) error {
		n += int64(k)
		return err
	}
	if err := count(bw.Write(bundleMagic[:])); err != nil {
		return n, err
	}
	hdr := struct {
		Set       uint32
		Period    uint32
		Threshold float64
	}{uint32(h.cfg.FeatureSet), uint32(h.cfg.Period), h.cfg.Threshold}
	if err := binary.Write(bw, binary.LittleEndian, hdr); err != nil {
		return n, err
	}
	n += 16
	if err := bw.Flush(); err != nil {
		return n, err
	}
	k, err := h.net.Save(w)
	n += k
	return n, err
}

// Fingerprint returns a short stable content hash of the detector:
// SHA-256 over the canonical bundle bytes, truncated to 16 bytes and
// hex-encoded. Two detectors fingerprint equal iff SaveBundle would
// emit identical bytes (same feature set, period, threshold, weights),
// which is exactly the bit-identity contract the serve pool and model
// registry care about.
func (h *HMD) Fingerprint() (string, error) {
	sum := sha256.New()
	if _, err := h.SaveBundle(sum); err != nil {
		return "", err
	}
	return hex.EncodeToString(sum.Sum(nil)[:16]), nil
}

// LoadBundle restores a detector saved with SaveBundle.
func LoadBundle(r io.Reader) (*HMD, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadBundle, err)
	}
	if magic != bundleMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadBundle)
	}
	var hdr struct {
		Set       uint32
		Period    uint32
		Threshold float64
	}
	if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadBundle, err)
	}
	if hdr.Set >= uint32(features.NumSets) {
		return nil, fmt.Errorf("%w: unknown feature set %d", ErrBadBundle, hdr.Set)
	}
	if hdr.Period < 1 || hdr.Period > 64 {
		return nil, fmt.Errorf("%w: period %d", ErrBadBundle, hdr.Period)
	}
	if !(hdr.Threshold > 0 && hdr.Threshold < 1) || math.IsNaN(hdr.Threshold) {
		return nil, fmt.Errorf("%w: threshold %v", ErrBadBundle, hdr.Threshold)
	}
	net, err := fann.Load(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadBundle, err)
	}
	return FromNetwork(net, Config{
		FeatureSet: features.Set(hdr.Set),
		Period:     int(hdr.Period),
		Threshold:  hdr.Threshold,
	})
}
