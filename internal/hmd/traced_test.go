package hmd

import (
	"math"
	"testing"

	"shmd/internal/faults"
	"shmd/internal/rng"
)

// tracedSharder is a stochastic ProgramSharder for tests: each program
// gets an injector on a seed-derived stream, mirroring how
// core.StochasticHMD shards evaluation.
type tracedSharder struct {
	*HMD
	rate float64
	seed uint64
}

func (s *tracedSharder) DetectorForProgram(idx int) Detector {
	inj, err := faults.NewInjector(s.rate, nil, rng.NewRand(s.seed, uint64(idx)))
	if err != nil {
		return nil
	}
	return s.HMD.WithUnit(inj)
}

// TestEvaluateTracedMatchesEvaluate pins that the traced evaluation
// path produces the same confusion matrix as the plain one for both a
// deterministic detector and a seed-sharded stochastic one, and that
// the sink sees every program exactly once, in order.
func TestEvaluateTracedMatchesEvaluate(t *testing.T) {
	d, h := fixtures(t)
	split, err := d.ThreeFold(0)
	if err != nil {
		t.Fatal(err)
	}
	test := d.Select(split.Test)

	next := 0
	c := EvaluateTraced(h, test, 0, func(tr DecisionTrace) {
		if tr.Program != next {
			t.Fatalf("sink got program %d, want %d (must be in order)", tr.Program, next)
		}
		next++
		if tr.Draws.Faults() != 0 {
			t.Fatalf("deterministic detector recorded %d faults", tr.Draws.Faults())
		}
	})
	if next != len(test) {
		t.Fatalf("sink saw %d programs of %d", next, len(test))
	}
	if want := Evaluate(h, test); c != want {
		t.Fatalf("traced confusion %+v != plain %+v", c, want)
	}

	sharder := &tracedSharder{HMD: h, rate: 0.5, seed: 77}
	var traces []DecisionTrace
	ct := EvaluateTraced(sharder, test, 0, func(tr DecisionTrace) { traces = append(traces, tr) })
	if ct == c {
		t.Log("stochastic confusion equals deterministic one (possible, but worth noting)")
	}
	if want := Evaluate(sharder, test); ct != want {
		t.Fatalf("traced stochastic confusion %+v != plain %+v", ct, want)
	}
	faulted := 0
	for _, tr := range traces {
		if tr.Draws.Faults() > 0 {
			faulted++
		}
	}
	if faulted == 0 {
		t.Fatal("no evaluated program recorded any faults at rate 0.5")
	}
}

// TestTracedDrawsReplayBitIdentically replays every recorded draw log
// through a faults.Replayer and checks each program's score is
// reproduced bit-for-bit, with the log exactly drained.
func TestTracedDrawsReplayBitIdentically(t *testing.T) {
	d, h := fixtures(t)
	split, err := d.ThreeFold(0)
	if err != nil {
		t.Fatal(err)
	}
	test := d.Select(split.Test)
	if len(test) > 40 {
		test = test[:40]
	}

	sharder := &tracedSharder{HMD: h, rate: 0.3, seed: 101}
	var traces []DecisionTrace
	EvaluateTraced(sharder, test, 0, func(tr DecisionTrace) { traces = append(traces, tr) })
	for _, tr := range traces {
		rep := faults.NewReplayer(tr.Draws)
		dec := h.DetectProgramUnit(rep, tr.Windows)
		if err := rep.Done(); err != nil {
			t.Fatalf("program %d: %v", tr.Program, err)
		}
		if dec.Malware != tr.Decision.Malware ||
			math.Float64bits(dec.Score) != math.Float64bits(tr.Decision.Score) {
			t.Fatalf("program %d: replayed %+v, recorded %+v", tr.Program, dec, tr.Decision)
		}
	}
}

// TestEvaluateTracedWorkerInvariance pins that traces (not just the
// confusion matrix) are identical for any worker count.
func TestEvaluateTracedWorkerInvariance(t *testing.T) {
	d, h := fixtures(t)
	test := d.Programs[:24]
	collect := func(workers int) []DecisionTrace {
		sharder := &tracedSharder{HMD: h, rate: 0.4, seed: 13}
		var traces []DecisionTrace
		EvaluateTraced(sharder, test, workers, func(tr DecisionTrace) { traces = append(traces, tr) })
		return traces
	}
	one, many := collect(1), collect(8)
	for i := range one {
		a, b := one[i], many[i]
		if a.Decision != b.Decision || a.Draws.InitialGap != b.Draws.InitialGap ||
			len(a.Draws.Gaps) != len(b.Draws.Gaps) || len(a.Draws.Bits) != len(b.Draws.Bits) {
			t.Fatalf("program %d: traces differ across worker counts", i)
		}
		for j := range a.Draws.Gaps {
			if a.Draws.Gaps[j] != b.Draws.Gaps[j] {
				t.Fatalf("program %d gap %d differs", i, j)
			}
		}
		for j := range a.Draws.Bits {
			if a.Draws.Bits[j] != b.Draws.Bits[j] {
				t.Fatalf("program %d bit %d differs", i, j)
			}
		}
	}
}
