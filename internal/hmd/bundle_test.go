package hmd

import (
	"bytes"
	"errors"
	"testing"

	"shmd/internal/features"
)

func TestBundleRoundTrip(t *testing.T) {
	d, h := fixtures(t)
	var buf bytes.Buffer
	n, err := h.SaveBundle(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("SaveBundle reported %d bytes, wrote %d", n, buf.Len())
	}

	loaded, err := LoadBundle(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Config().FeatureSet != h.Config().FeatureSet ||
		loaded.Config().Period != h.Config().Period ||
		loaded.Config().Threshold != h.Config().Threshold {
		t.Errorf("config changed: %+v vs %+v", loaded.Config(), h.Config())
	}
	// Decisions agree across the round trip (float32 weight precision
	// can nudge scores, not verdicts, at this scale).
	agree := 0
	for _, p := range d.Programs[:40] {
		if loaded.DetectProgram(p.Windows).Malware == h.DetectProgram(p.Windows).Malware {
			agree++
		}
	}
	if agree < 39 {
		t.Errorf("only %d/40 decisions survived the round trip", agree)
	}
}

func TestBundlePreservesNonDefaultConfig(t *testing.T) {
	d, _ := fixtures(t)
	split, _ := d.ThreeFold(0)
	h, err := Train(d.Select(split.VictimTrain)[:20], Config{
		FeatureSet: features.SetMemory,
		Period:     features.Period2,
		Threshold:  0.4,
		Epochs:     5,
		Seed:       9,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := h.SaveBundle(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBundle(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cfg := loaded.Config()
	if cfg.FeatureSet != features.SetMemory || cfg.Period != 2 || cfg.Threshold != 0.4 {
		t.Errorf("restored config = %+v", cfg)
	}
}

func TestLoadBundleRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("NOTABUNDLE123456789012345678"),
		"truncated": bundleMagic[:],
	}
	for name, data := range cases {
		if _, err := LoadBundle(bytes.NewReader(data)); !errors.Is(err, ErrBadBundle) {
			t.Errorf("%s: err = %v", name, err)
		}
	}
}

func TestLoadBundleRejectsBadHeader(t *testing.T) {
	_, h := fixtures(t)
	var buf bytes.Buffer
	if _, err := h.SaveBundle(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	corrupt := func(offset int, val byte) []byte {
		out := append([]byte(nil), data...)
		out[offset] = val
		return out
	}
	// Feature set byte (offset 8, little endian uint32).
	if _, err := LoadBundle(bytes.NewReader(corrupt(8, 99))); !errors.Is(err, ErrBadBundle) {
		t.Errorf("bad feature set err = %v", err)
	}
	// Period (offset 12).
	if _, err := LoadBundle(bytes.NewReader(corrupt(12, 0))); !errors.Is(err, ErrBadBundle) {
		t.Errorf("bad period err = %v", err)
	}
}
