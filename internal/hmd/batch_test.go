package hmd

import (
	"math"
	"testing"

	"shmd/internal/trace"
)

// TestDetectBatchMatchesDetectProgram pins per-lane bit-identity of
// the exact batched evaluator: every program's batched decision —
// verdict and score bits — equals its scalar DetectProgram decision,
// at batch sizes covering single-lane, ragged-tail, and full-width
// groupings.
func TestDetectBatchMatchesDetectProgram(t *testing.T) {
	programs, h := evalPrograms(t)
	want := make([]Decision, len(programs))
	for i, p := range programs {
		want[i] = h.DetectProgram(p.Windows)
	}
	for _, batch := range []int{1, 2, 7, 64} {
		for start := 0; start < len(programs); start += batch {
			end := min(start+batch, len(programs))
			idxs := make([]int, 0, end-start)
			for i := start; i < end; i++ {
				idxs = append(idxs, i)
			}
			got := h.DetectBatch(idxs, programs)
			for j, idx := range idxs {
				if got[j].Malware != want[idx].Malware ||
					math.Float64bits(got[j].Score) != math.Float64bits(want[idx].Score) {
					t.Fatalf("batch=%d program %d: batched %+v != scalar %+v",
						batch, idx, got[j], want[idx])
				}
			}
		}
	}
}

// TestEvaluateBatchSizeInvariance is the evaluation-level guarantee:
// the confusion matrix is identical for every batch size and worker
// count, and equal to the serial reference.
func TestEvaluateBatchSizeInvariance(t *testing.T) {
	programs, h := evalPrograms(t)
	serial := EvaluateBatch(hideSharder{h}, programs, 0, 1)
	for _, batch := range []int{1, 2, 7, 64} {
		for _, workers := range []int{1, 4} {
			if got := EvaluateBatch(h, programs, batch, workers); got != serial {
				t.Errorf("batch=%d workers=%d: confusion %+v != serial %+v",
					batch, workers, got, serial)
			}
		}
	}
}

// TestDetectBatchLaneOrderInvariance: a program's decision depends
// only on its index, never on where in the batch it lands or which
// programs share the batch.
func TestDetectBatchLaneOrderInvariance(t *testing.T) {
	programs, h := evalPrograms(t)
	n := min(16, len(programs))
	fwd := make([]int, n)
	rev := make([]int, n)
	for i := 0; i < n; i++ {
		fwd[i] = i
		rev[i] = n - 1 - i
	}
	a := h.DetectBatch(fwd, programs)
	b := h.DetectBatch(rev, programs)
	for j := 0; j < n; j++ {
		if a[j] != b[n-1-j] {
			t.Fatalf("program %d: decision %+v in forward order, %+v reversed",
				fwd[j], a[j], b[n-1-j])
		}
	}
}

// embeddingSharder reproduces the method-promotion hazard: it embeds
// the HMD (inheriting its exact-unit DetectBatch) but overrides
// DetectorForProgram with detectors whose verdicts differ. The
// consistency probe must reject the promoted DetectBatch and honour
// the override.
type embeddingSharder struct {
	*HMD
	inverted *HMD
}

func (s *embeddingSharder) DetectorForProgram(idx int) Detector {
	return invertedDetector{s.inverted.WithFreshBuffers()}
}

// invertedDetector flips every verdict, making the override's
// decisions observably different from the embedded HMD's.
type invertedDetector struct{ h *HMD }

func (d invertedDetector) ScoreWindows(w []trace.WindowCounts) []float64 {
	return d.h.ScoreWindows(w)
}
func (d invertedDetector) DetectProgram(w []trace.WindowCounts) Decision {
	dec := d.h.DetectProgram(w)
	dec.Malware = !dec.Malware
	return dec
}

// TestEvaluateBatchRejectsPromotedDetectBatch pins the probe: an
// embedding wrapper with divergent per-program semantics must be
// evaluated through its own DetectorForProgram, not the promoted
// batched path.
func TestEvaluateBatchRejectsPromotedDetectBatch(t *testing.T) {
	programs, h := evalPrograms(t)
	s := &embeddingSharder{HMD: h, inverted: h}
	want := EvaluateBatch(hideSharder{Detector(invertedDetector{h})}, programs, 0, 1)
	if got := EvaluateBatch(s, programs, 0, 4); got != want {
		t.Errorf("promoted DetectBatch won over the override: %+v != %+v", got, want)
	}
}
