package hmd

import (
	"bytes"
	"testing"

	"shmd/internal/fann"
	"shmd/internal/features"
)

// FuzzLoadBundle hardens the deployable-bundle loader: arbitrary bytes
// must yield an error or a working detector, never a panic.
func FuzzLoadBundle(f *testing.F) {
	net, err := fann.New(fann.Config{
		Layers: []int{features.DimInstrFreq, 4, 1},
		Hidden: fann.Sigmoid,
		Output: fann.Sigmoid,
		Seed:   1,
	})
	if err != nil {
		f.Fatal(err)
	}
	h, err := FromNetwork(net, Config{})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := h.SaveBundle(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:20])
	f.Add([]byte{})
	mutated := append([]byte(nil), valid...)
	mutated[8] = 0xEE // feature-set field
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := LoadBundle(bytes.NewReader(data))
		if err != nil {
			return
		}
		cfg := h.Config()
		if _, err := cfg.FeatureSet.Dim(); err != nil {
			t.Fatalf("loaded bundle has invalid feature set: %v", err)
		}
		if cfg.Threshold <= 0 || cfg.Threshold >= 1 {
			t.Fatalf("loaded bundle has threshold %v", cfg.Threshold)
		}
	})
}
