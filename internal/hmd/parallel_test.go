package hmd

import (
	"runtime"
	"testing"

	"shmd/internal/dataset"
	"shmd/internal/stats"
	"shmd/internal/trace"
)

// hideSharder masks a detector's ProgramSharder implementation so
// Evaluate takes the serial reference path.
type hideSharder struct{ d Detector }

func (h hideSharder) ScoreWindows(w []trace.WindowCounts) []float64 { return h.d.ScoreWindows(w) }
func (h hideSharder) DetectProgram(w []trace.WindowCounts) Decision { return h.d.DetectProgram(w) }

// decliningSharder implements ProgramSharder but declines every call,
// exercising the nil-fallback contract.
type decliningSharder struct{ Detector }

func (decliningSharder) DetectorForProgram(int) Detector { return nil }

func evalPrograms(t *testing.T) ([]dataset.TracedProgram, *HMD) {
	t.Helper()
	d, h := fixtures(t)
	split, err := d.ThreeFold(0)
	if err != nil {
		t.Fatal(err)
	}
	return d.Select(split.Test), h
}

// TestEvaluateParallelDeterministic is the satellite guarantee:
// identical confusion matrices for worker counts 1, 2, and GOMAXPROCS,
// and all of them equal to the serial reference path.
func TestEvaluateParallelDeterministic(t *testing.T) {
	programs, h := evalPrograms(t)
	serial := EvaluateParallel(hideSharder{h}, programs, 1)
	counts := []int{1, 2, runtime.GOMAXPROCS(0)}
	results := make([]stats.Confusion, len(counts))
	for i, workers := range counts {
		results[i] = EvaluateParallel(h, programs, workers)
	}
	for i, workers := range counts {
		if results[i] != serial {
			t.Errorf("workers=%d: confusion %+v, serial reference %+v",
				workers, results[i], serial)
		}
	}
	if got := Evaluate(h, programs); got != serial {
		t.Errorf("Evaluate: confusion %+v, serial reference %+v", got, serial)
	}
}

// TestEvaluateFallsBackWithoutSharder pins the compatibility contract:
// detectors that do not (or decline to) shard still evaluate correctly
// through the serial path.
func TestEvaluateFallsBackWithoutSharder(t *testing.T) {
	programs, h := evalPrograms(t)
	want := EvaluateParallel(hideSharder{h}, programs, 1)
	if got := Evaluate(hideSharder{h}, programs); got != want {
		t.Errorf("non-sharder Evaluate %+v != serial %+v", got, want)
	}
	if got := Evaluate(decliningSharder{h}, programs); got != want {
		t.Errorf("declining sharder Evaluate %+v != serial %+v", got, want)
	}
}

// TestEvaluateEmptyPrograms guards the degenerate inputs the sharded
// path has to special-case.
func TestEvaluateEmptyPrograms(t *testing.T) {
	_, h := fixtures(t)
	if got := Evaluate(h, nil); got != (stats.Confusion{}) {
		t.Errorf("empty evaluation = %+v, want zero confusion", got)
	}
	if got := EvaluateParallel(h, nil, 8); got != (stats.Confusion{}) {
		t.Errorf("empty parallel evaluation = %+v, want zero confusion", got)
	}
}
