package hmd

import (
	"fmt"
	"sync"

	"shmd/internal/dataset"
	"shmd/internal/features"
	"shmd/internal/fxp"
	"shmd/internal/stats"
	"shmd/internal/trace"
)

// This file holds batched evaluation: programs are grouped into lanes
// and pushed through the batch-lane kernels (fann.RunBatch), one
// batched forward pass per window step instead of one scalar pass per
// window. Batching is a layout change, never a semantics change — per
// lane the scores and verdicts are bit-identical to the per-program
// path — so every evaluation result is independent of batch size,
// worker count, and shard order.

// DefaultEvalBatch is the lane count EvaluateParallel groups programs
// into when the detector supports batched evaluation. 64 lanes matches
// the widest fused-kernel block (fxp.DotUncheckedBatch's stack arena)
// and is where the per-lane cost bottoms out on the inference bench.
const DefaultEvalBatch = 64

// BatchSharder is the optional interface a ProgramSharder implements
// to evaluate whole groups of programs through batch-lane kernels.
//
// DetectBatch returns program-level decisions for programs[idx], idx
// ranging over idxs, with each lane's stochastic stream (if any)
// derived exactly as DetectorForProgram(idx) would derive it — so the
// verdicts are bit-identical to the per-program path under any
// grouping of idxs. Returning nil declines batching for this detector
// state; the decline must not depend on idxs (a detector that accepts
// one group must accept every group), which is what lets callers probe
// once and then fan batches out over workers.
type BatchSharder interface {
	ProgramSharder
	DetectBatch(idxs []int, programs []dataset.TracedProgram) []Decision
}

// DetectBatch implements BatchSharder for the deterministic baseline:
// every lane runs the exact multiplier, on a buffer-fresh copy so
// concurrent batches never share scratch state.
func (h *HMD) DetectBatch(idxs []int, programs []dataset.TracedProgram) []Decision {
	return h.WithFreshBuffers().DetectBatchUnit(fxp.Exact{}, idxs, programs)
}

var _ BatchSharder = (*HMD)(nil)

// DetectBatchUnit evaluates programs[idx] for each idx in idxs through
// the batch unit u. Packed lane j carries program idxs[j] as unit lane
// j for the whole call: each window step runs one batched forward pass
// over every still-active lane, programs drop out as their windows run
// dry (ragged tails), and the surviving lanes keep their unit lane
// identities so per-lane unit state — fault streams — stays attached
// to its program. Per lane the window scores, and hence the decision,
// are bit-identical to DetectProgramUnit with the lane's unit state.
//
// The receiver's scratch buffers are used; as with ScoreWindowsUnit,
// an HMD is not safe for concurrent calls (WithFreshBuffers per
// goroutine).
func (h *HMD) DetectBatchUnit(u fxp.BatchUnit, idxs []int, programs []dataset.TracedProgram) []Decision {
	traces := make([][]trace.WindowCounts, len(idxs))
	for j, idx := range idxs {
		traces[j] = programs[idx].Windows
	}
	return h.DetectTracesUnit(u, traces)
}

// DetectTracesUnit is DetectBatchUnit over raw window traces — the
// serving path's entry point, where lanes are concurrent requests
// rather than dataset programs. Lane j carries traces[j]; everything
// else (lane identities, ragged dropout, per-lane bit-identity, the
// scratch-buffer caveat) is as documented on DetectBatchUnit.
func (h *HMD) DetectTracesUnit(u fxp.BatchUnit, traces [][]trace.WindowCounts) []Decision {
	k := len(traces)
	out := make([]Decision, k)
	if k == 0 {
		return out
	}
	vecs := make([][][]float64, k)
	scores := make([][]float64, k)
	maxSteps := 0
	for j, windows := range traces {
		v, err := features.Extract(windows, h.cfg.FeatureSet, h.cfg.Period)
		if err != nil {
			// A trace too short for the detection period is a caller
			// bug, as in ScoreWindowsUnit.
			panic(fmt.Sprintf("hmd: %v", err))
		}
		vecs[j] = v
		scores[j] = make([]float64, 0, len(v))
		if len(v) > maxSteps {
			maxSteps = len(v)
		}
	}
	inputs := make([][]float64, 0, k)
	lanes := make([]int, 0, k)
	var outBuf []float64
	for t := 0; t < maxSteps; t++ {
		inputs = inputs[:0]
		lanes = lanes[:0]
		for j := 0; j < k; j++ {
			if t < len(vecs[j]) {
				inputs = append(inputs, vecs[j][t])
				lanes = append(lanes, j)
			}
		}
		outBuf = h.fixed.RunBatch(u, inputs, lanes, outBuf)
		for p, j := range lanes {
			scores[j] = append(scores[j], outBuf[p])
		}
	}
	for j := range out {
		out[j] = h.DecideFromScores(scores[j])
	}
	return out
}

// EvaluateBatch is Evaluate with explicit lane and worker counts
// (batch <= 0 means DefaultEvalBatch, workers <= 0 means GOMAXPROCS).
// Detectors implementing BatchSharder are evaluated in lane-batched
// groups fanned out over workers; ProgramSharder-only detectors fall
// back to per-program sharding, and the rest to the serial path.
// Batch size and worker count affect wall-clock only, never the
// result.
func EvaluateBatch(d Detector, programs []dataset.TracedProgram, batch, workers int) stats.Confusion {
	if workers <= 0 {
		workers = defaultWorkers()
	}
	if batch <= 0 {
		batch = DefaultEvalBatch
	}
	if len(programs) > 0 {
		if bs, ok := d.(BatchSharder); ok {
			if c, ok := evaluateBatched(bs, programs, batch, workers); ok {
				return c
			}
		}
		if sharder, ok := d.(ProgramSharder); ok {
			if first := sharder.DetectorForProgram(0); first != nil {
				return evaluateSharded(sharder, first, programs, workers)
			}
		}
	}
	var c stats.Confusion
	for _, p := range programs {
		c.Record(d.DetectProgram(p.Windows).Malware, p.IsMalware())
	}
	return c
}

// evaluateBatched fans contiguous batches of program indices out over
// workers, each evaluated in one lane-batched call with per-program
// derived streams. The first batch runs inline to honour the decline
// contract before any worker spawns; per BatchSharder's contract a
// detector that accepted it accepts the rest.
func evaluateBatched(bs BatchSharder, programs []dataset.TracedProgram, batch, workers int) (stats.Confusion, bool) {
	idxs := make([]int, len(programs))
	for i := range idxs {
		idxs[i] = i
	}
	first := idxs[:min(batch, len(idxs))]
	firstOut := bs.DetectBatch(first, programs)
	if firstOut == nil || len(firstOut) != len(first) {
		return stats.Confusion{}, false
	}
	// Consistency probe: honest DetectBatch implementations are
	// bit-identical per lane to the per-program derived detector, so
	// program 0 evaluated both ways must agree exactly. A mismatch
	// means this DetectBatch does not speak for this detector — the
	// usual cause is a wrapper that embeds an HMD (inheriting its
	// exact-unit DetectBatch by method promotion) while overriding
	// DetectorForProgram with different semantics. Fall back to the
	// per-program path, which honours the override.
	if ref := bs.DetectorForProgram(idxs[0]); ref == nil ||
		ref.DetectProgram(programs[idxs[0]].Windows) != firstOut[0] {
		return stats.Confusion{}, false
	}
	verdicts := make([]bool, len(programs))
	for j, dec := range firstOut {
		verdicts[j] = dec.Malware
	}
	if rest := idxs[len(first):]; len(rest) > 0 {
		numBatches := (len(rest) + batch - 1) / batch
		if workers > numBatches {
			workers = numBatches
		}
		next := make(chan []int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for b := range next {
					out := bs.DetectBatch(b, programs)
					if out == nil {
						panic("hmd: DetectBatch declined a batch after accepting the first")
					}
					for p, dec := range out {
						verdicts[b[p]] = dec.Malware
					}
				}
			}()
		}
		for start := 0; start < len(rest); start += batch {
			next <- rest[start:min(start+batch, len(rest))]
		}
		close(next)
		wg.Wait()
	}
	var c stats.Confusion
	for i, p := range programs {
		c.Record(verdicts[i], p.IsMalware())
	}
	return c, true
}
