package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// CSV export: every experiment table can be written as a CSV file so
// the figures can be re-plotted with any tool. The text rendering is
// for terminals; the CSV is the machine-readable artifact.

// WriteCSV writes the table as CSV: one comment line with the title,
// the header row, then data rows. Notes become trailing comment lines.
func (t *Table) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "# %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// SaveCSV writes the table to dir/<slug>.csv, deriving the slug from
// the title, and returns the path.
func (t *Table) SaveCSV(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, slugify(t.Title)+".csv")
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	if err := t.WriteCSV(f); err != nil {
		return "", err
	}
	return path, nil
}

// slugify turns a table title into a filesystem-safe stem.
func slugify(title string) string {
	var b strings.Builder
	lastDash := true
	for _, r := range strings.ToLower(title) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
			lastDash = false
		case r == '(' || r == ')':
			// drop
		default:
			if !lastDash {
				b.WriteByte('-')
				lastDash = true
			}
		}
	}
	return strings.Trim(b.String(), "-")
}
