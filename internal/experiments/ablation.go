package experiments

import (
	"fmt"

	"shmd/internal/attack"
	"shmd/internal/core"
	"shmd/internal/faults"
	"shmd/internal/hmd"
	"shmd/internal/rng"
	"shmd/internal/stats"
	"shmd/internal/trace"
)

// Ablations back the design choices DESIGN.md calls out. They are not
// paper figures; they justify the reproduction's mechanisms.

// AblationDistributionRow compares fault-location models.
type AblationDistributionRow struct {
	Name      string
	ErrorRate float64
	Accuracy  float64
}

// AblationFaultDistribution contrasts the measured low-bit-heavy Fig 1
// fault-location model with a uniform one over bits 8..62. The
// uniform model's frequent high-bit flips are catastrophic, which is
// why matching the measured shape matters for the accuracy results.
func AblationFaultDistribution(env *Env) ([]AblationDistributionRow, *Table, error) {
	test := env.Test()
	t := &Table{
		Title:   "Ablation — fault-location distribution shape",
		Headers: []string{"distribution", "error rate", "accuracy"},
	}
	var rows []AblationDistributionRow
	for _, cfg := range []struct {
		name string
		dist *faults.Distribution
	}{
		{"Fig-1 (measured shape)", faults.Fig1Distribution()},
		{"uniform over bits 8..62", faults.UniformDistribution()},
	} {
		for _, rate := range []float64{0.1, 0.5} {
			s, err := core.New(env.Base.WithFreshBuffers(), core.Options{
				ErrorRate: rate,
				Dist:      cfg.dist,
				Seed:      rng.DeriveSeed(env.Scale.Seed, 0xAB1, uint64(rate*100)),
			})
			if err != nil {
				return nil, nil, err
			}
			acc := hmd.Evaluate(s, test).Accuracy()
			rows = append(rows, AblationDistributionRow{Name: cfg.name, ErrorRate: rate, Accuracy: acc})
			t.AddRow(cfg.name, fmt.Sprintf("%.1f", rate), pct(acc))
		}
	}
	return rows, t, nil
}

// AblationDeterministicRow compares noise sources.
type AblationDeterministicRow struct {
	Name string
	// Accuracy on the clean test set.
	Accuracy float64
	// ScoreStd is the run-to-run standard deviation of a borderline
	// program's score — zero means no moving target.
	ScoreStd float64
}

// AblationDeterministicAC contrasts undervolting with a *deterministic*
// circuit-level approximation (operand truncation): a comparable
// accuracy cost buys no run-to-run variation, hence no moving-target
// defense — the paper's Section III rationale (i).
func AblationDeterministicAC(env *Env) ([]AblationDeterministicRow, *Table, error) {
	test := env.Test()
	// Pick the test program whose baseline score sits closest to the
	// threshold: the most noise-sensitive probe.
	var probeWindows []trace.WindowCounts
	bestDist := 2.0
	for _, p := range test {
		score := env.Base.DetectProgram(p.Windows).Score
		if d := abs(score - 0.5); d < bestDist {
			bestDist = d
			probeWindows = p.Windows
		}
	}

	scoreStd := func(det hmd.Detector) float64 {
		var scores []float64
		for i := 0; i < 20; i++ {
			scores = append(scores, det.DetectProgram(probeWindows).Score)
		}
		return stats.StdDev(scores)
	}

	t := &Table{
		Title:   "Ablation — stochastic undervolting vs deterministic approximation",
		Headers: []string{"noise source", "accuracy", "borderline score std (20 runs)"},
	}
	var rows []AblationDeterministicRow

	// Stochastic: the Fig-1 injector at the operating point.
	s, err := env.Stochastic(OperatingErrorRate, 0xAB2)
	if err != nil {
		return nil, nil, err
	}
	rows = append(rows, AblationDeterministicRow{
		Name:     "undervolting (stochastic, er=0.1)",
		Accuracy: hmd.Evaluate(s, test).Accuracy(),
		ScoreStd: scoreStd(s),
	})

	// Deterministic: truncation-based approximate multiplier.
	trunc := truncatedDetector{base: env.Base.WithFreshBuffers(), unit: faults.TruncatedUnit{DropBits: 6}}
	rows = append(rows, AblationDeterministicRow{
		Name:     "operand truncation (deterministic, 6 bits)",
		Accuracy: hmd.Evaluate(trunc, test).Accuracy(),
		ScoreStd: scoreStd(trunc),
	})

	for _, r := range rows {
		t.AddRow(r.Name, pct(r.Accuracy), fmt.Sprintf("%.4f", r.ScoreStd))
	}
	t.Notes = append(t.Notes,
		"a deterministic approximation has zero run-to-run variation: no moving target, reverse-engineerable like the baseline")
	return rows, t, nil
}

// truncatedDetector runs the baseline HMD on a deterministic
// approximate multiplier.
type truncatedDetector struct {
	base *hmd.HMD
	unit faults.TruncatedUnit
}

func (d truncatedDetector) ScoreWindows(windows []trace.WindowCounts) []float64 {
	return d.base.ScoreWindowsUnit(d.unit, windows)
}

func (d truncatedDetector) DetectProgram(windows []trace.WindowCounts) hmd.Decision {
	return d.base.DecideFromScores(d.ScoreWindows(windows))
}

// AblationPersistenceRow measures detection vs classification count.
type AblationPersistenceRow struct {
	Runs     int
	Detected float64
}

// AblationPersistence shows how evasive-malware detection accumulates
// over repeated classifications by the always-on detector: a single
// observation catches a fraction; continuous monitoring (the
// deployment reality, and the transferability protocol used in
// Figs 4/5) converges toward certainty. The baseline victim is
// deterministic, so its row is flat — the moving target is what makes
// persistence pay.
func AblationPersistence(env *Env) ([]AblationPersistenceRow, *Table, error) {
	targets := env.TestMalware(env.Scale.EvadeTargets)
	victim, err := env.Stochastic(OperatingErrorRate, 0xAB3)
	if err != nil {
		return nil, nil, err
	}
	proxy, err := attack.ReverseEngineer(victim, env.AttackerTrain(), attack.REConfig{
		Kind:   attack.ProxyMLP,
		Epochs: env.Scale.ProxyEpochs,
		Seed:   rng.DeriveSeed(env.Scale.Seed, 0xAB4),
	})
	if err != nil {
		return nil, nil, err
	}
	results, err := attack.EvadeAll(proxy, targets, attack.EvasionConfig{})
	if err != nil {
		return nil, nil, err
	}
	t := &Table{
		Title:   "Ablation — evasive-malware detection vs classification count",
		Headers: []string{"classifications", "evasive malware detected"},
		Notes: []string{
			fmt.Sprintf("%d proxy-evasive samples; Stochastic-HMD at er=%.2f", len(results), OperatingErrorRate),
		},
	}
	// One detection trajectory per sample: record the classification
	// index at which the victim first flags it (or never). Every row
	// derives from the same trajectories, so the curve is exactly
	// monotone — each additional classification can only help.
	runCounts := []int{1, 2, 4, attack.PersistentRuns, 2 * attack.PersistentRuns}
	maxRuns := runCounts[len(runCounts)-1]
	firstDetect := make([]int, len(results)) // 1-based; 0 = never
	for i, r := range results {
		for run := 1; run <= maxRuns; run++ {
			if victim.DetectProgram(r.Windows).Malware {
				firstDetect[i] = run
				break
			}
		}
	}
	var rows []AblationPersistenceRow
	for _, runs := range runCounts {
		detected := 1.0
		if len(results) > 0 {
			n := 0
			for _, first := range firstDetect {
				if first > 0 && first <= runs {
					n++
				}
			}
			detected = float64(n) / float64(len(results))
		}
		rows = append(rows, AblationPersistenceRow{Runs: runs, Detected: detected})
		t.AddRow(fmt.Sprintf("%d", runs), pct(detected))
	}
	return rows, t, nil
}

// AblationMarginRow measures the evasion margin trade-off from the
// attacker's side.
type AblationMarginRow struct {
	Margin           float64
	BaselineEvaded   float64
	StochasticCaught float64
}

// AblationEvasionMargin sweeps the attacker's stopping margin: pushing
// deeper past the proxy boundary transfers better to the deterministic
// baseline but costs more overhead, while against the stochastic
// victim even deep margins leave samples inside the moving boundary's
// reach — there is no margin that wins both.
func AblationEvasionMargin(env *Env) ([]AblationMarginRow, *Table, error) {
	targets := env.TestMalware(env.Scale.EvadeTargets)

	baseProxy, err := attack.ReverseEngineer(env.Base, env.AttackerTrain(), attack.REConfig{
		Kind:   attack.ProxyMLP,
		Epochs: env.Scale.ProxyEpochs,
		Seed:   rng.DeriveSeed(env.Scale.Seed, 0xAB5),
	})
	if err != nil {
		return nil, nil, err
	}
	victim, err := env.Stochastic(OperatingErrorRate, 0xAB6)
	if err != nil {
		return nil, nil, err
	}
	stochProxy, err := attack.ReverseEngineer(victim, env.AttackerTrain(), attack.REConfig{
		Kind:   attack.ProxyMLP,
		Epochs: env.Scale.ProxyEpochs,
		Seed:   rng.DeriveSeed(env.Scale.Seed, 0xAB7),
	})
	if err != nil {
		return nil, nil, err
	}

	t := &Table{
		Title:   "Ablation — evasion stopping margin",
		Headers: []string{"margin", "evade baseline victim", "caught by Stochastic-HMD"},
	}
	var rows []AblationMarginRow
	for _, margin := range []float64{0.02, 0.05, 0.1, 0.2} {
		cfg := attack.EvasionConfig{Margin: margin}
		baseResults, err := attack.EvadeAll(baseProxy, targets, cfg)
		if err != nil {
			return nil, nil, err
		}
		baseEvade := 0.0
		if len(baseResults) > 0 {
			baseEvade, err = attack.TransferabilityRuns(baseResults, env.Base, 1)
			if err != nil {
				return nil, nil, err
			}
		}
		stochResults, err := attack.EvadeAll(stochProxy, targets, cfg)
		if err != nil {
			return nil, nil, err
		}
		caught := 1.0
		if len(stochResults) > 0 {
			caught, err = attack.DetectionRate(stochResults, victim)
			if err != nil {
				return nil, nil, err
			}
		}
		rows = append(rows, AblationMarginRow{Margin: margin, BaselineEvaded: baseEvade, StochasticCaught: caught})
		t.AddRow(fmt.Sprintf("%.2f", margin), pct(baseEvade), pct(caught))
	}
	return rows, t, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// AblationAdaptiveRow measures the adaptive (label-averaging) attacker.
type AblationAdaptiveRow struct {
	QueryRepeats  int
	Effectiveness float64
	Caught        float64
}

// AblationAdaptiveAttacker evaluates the natural counter-attack to a
// stochastic defense: query the victim repeatedly and majority-vote
// the labels before training the proxy. De-noising recovers some
// reverse-engineering effectiveness (at a proportional query cost),
// but the detection-time stochasticity is untouched — evasive samples
// near the boundary are still re-caught, so the defense degrades
// gracefully rather than collapsing.
func AblationAdaptiveAttacker(env *Env) ([]AblationAdaptiveRow, *Table, error) {
	targets := env.TestMalware(env.Scale.EvadeTargets)
	test := env.Test()
	victim, err := env.Stochastic(OperatingErrorRate, 0xAB8)
	if err != nil {
		return nil, nil, err
	}
	t := &Table{
		Title:   "Ablation — adaptive attacker (majority-voted labels)",
		Headers: []string{"queries/program", "RE effectiveness", "evasive malware caught"},
		Notes: []string{
			"the attacker pays queries × programs victim executions per proxy",
		},
	}
	var rows []AblationAdaptiveRow
	for _, repeats := range []int{1, 5, 15} {
		proxy, err := attack.ReverseEngineer(victim, env.AttackerTrain(), attack.REConfig{
			Kind:         attack.ProxyMLP,
			Epochs:       env.Scale.ProxyEpochs,
			QueryRepeats: repeats,
			Seed:         rng.DeriveSeed(env.Scale.Seed, 0xAB9, uint64(repeats)),
		})
		if err != nil {
			return nil, nil, err
		}
		eff, err := attack.Effectiveness(proxy, victim, test)
		if err != nil {
			return nil, nil, err
		}
		results, err := attack.EvadeAll(proxy, targets, attack.EvasionConfig{})
		if err != nil {
			return nil, nil, err
		}
		caught := 1.0
		if len(results) > 0 {
			caught, err = attack.DetectionRate(results, victim)
			if err != nil {
				return nil, nil, err
			}
		}
		rows = append(rows, AblationAdaptiveRow{QueryRepeats: repeats, Effectiveness: eff, Caught: caught})
		t.AddRow(fmt.Sprintf("%d", repeats), pct(eff), pct(caught))
	}
	return rows, t, nil
}
