package experiments

import (
	"sync"
	"testing"
)

// The headline security campaigns are expensive (tens of seconds each
// at quick scale), so every test that needs their rows — the shape
// tests and the golden regression below — shares one computation.

var (
	fig4Once sync.Once
	fig4Rows []Fig4Row
	fig4Tab  *Table
	fig4Err  error

	fig56Once    sync.Once
	fig56Rows    []Fig5Row
	fig56Fig5Tab *Table
	fig56Fig6Tab *Table
	fig56Err     error
)

// fig4Results runs the Fig 4 transferability campaign once per test
// binary and returns the cached rows.
func fig4Results(t *testing.T) ([]Fig4Row, *Table) {
	t.Helper()
	env := quickEnv(t)
	fig4Once.Do(func() {
		fig4Rows, fig4Tab, fig4Err = Fig4(env)
	})
	if fig4Err != nil {
		t.Fatal(fig4Err)
	}
	return fig4Rows, fig4Tab
}

// fig56Results runs the Fig 5/6 evasive-malware campaign once per test
// binary and returns the cached rows.
func fig56Results(t *testing.T) ([]Fig5Row, *Table, *Table) {
	t.Helper()
	env := quickEnv(t)
	fig56Once.Do(func() {
		fig56Rows, fig56Fig5Tab, fig56Fig6Tab, fig56Err = Fig5And6(env)
	})
	if fig56Err != nil {
		t.Fatal(fig56Err)
	}
	return fig56Rows, fig56Fig5Tab, fig56Fig6Tab
}

// TestGoldenNumbers pins the exact quick-scale seed-1 values of the
// paper's headline results — Fig 4 transferability and the Fig 5
// evasive-malware detection rates. Every stage of these campaigns is
// seeded through rng.DeriveSeed's labelled streams, so the numbers are
// bit-stable: any refactor that reorders RNG draws, changes a stream
// label, or perturbs the fixed-point kernels fails this test loudly
// instead of silently shifting the reproduced figures.
//
// If a change is *supposed* to move these numbers (a new stream label,
// a different campaign schedule), re-derive them with
//
//	go test ./internal/experiments -run 'TestGolden' -v
//
// and update the constants together with EXPERIMENTS.md.
func TestGoldenNumbers(t *testing.T) {
	skipCampaign(t)

	// Rates are ratios of integer counts over fixed sample sizes, so
	// equality holds to float precision; the tolerance only absorbs
	// decimal rounding in the constants below.
	const tol = 5e-5

	rows, _ := fig4Results(t)
	if len(rows) != 6 {
		t.Fatalf("Fig4 rows = %d", len(rows))
	}
	goldenFig4 := []struct {
		baseline, stochastic float64
	}{
		{goldenFig4MLPVictimBase, goldenFig4MLPVictimStoch},
		{goldenFig4MLPAttackerBase, goldenFig4MLPAttackerStoch},
		{goldenFig4LRVictimBase, goldenFig4LRVictimStoch},
		{goldenFig4LRAttackerBase, goldenFig4LRAttackerStoch},
		{goldenFig4DTVictimBase, goldenFig4DTVictimStoch},
		{goldenFig4DTAttackerBase, goldenFig4DTAttackerStoch},
	}
	for i, r := range rows {
		t.Logf("Fig4[%d] %v/%s: baseline %.10f stochastic %.10f",
			i, r.Cell.Kind, r.Cell.dataName(), r.Baseline, r.Stochastic)
		if diff(r.Baseline, goldenFig4[i].baseline) > tol {
			t.Errorf("Fig4[%d] baseline = %.10f, golden %.10f — RNG stream or kernel changed",
				i, r.Baseline, goldenFig4[i].baseline)
		}
		if diff(r.Stochastic, goldenFig4[i].stochastic) > tol {
			t.Errorf("Fig4[%d] stochastic = %.10f, golden %.10f — RNG stream or kernel changed",
				i, r.Stochastic, goldenFig4[i].stochastic)
		}
	}

	rows56, _, _ := fig56Results(t)
	if len(rows56) != 5 {
		t.Fatalf("Fig5 rows = %d", len(rows56))
	}
	goldenFig5 := []float64{
		goldenFig5RHMD2F, goldenFig5RHMD3F, goldenFig5RHMD2F2P,
		goldenFig5RHMD3F2P, goldenFig5Stochastic,
	}
	for i, r := range rows56 {
		t.Logf("Fig5[%d] %s: evasive detected %.10f", i, r.Name, r.EvasiveDetected)
		if diff(r.EvasiveDetected, goldenFig5[i]) > tol {
			t.Errorf("Fig5[%d] %s detected = %.10f, golden %.10f — RNG stream or kernel changed",
				i, r.Name, r.EvasiveDetected, goldenFig5[i])
		}
	}
}

// The pinned quick-scale (Quick(1), fold 0) values. Derived once and
// checked bit-for-bit ever since; see TestGoldenNumbers for the
// re-derivation recipe.
const (
	goldenFig4MLPVictimBase    = 0.5333333333
	goldenFig4MLPVictimStoch   = 0.3000000000
	goldenFig4MLPAttackerBase  = 0.3666666667
	goldenFig4MLPAttackerStoch = 0.3000000000
	goldenFig4LRVictimBase     = 0.0666666667
	goldenFig4LRVictimStoch    = 0.0222222222
	goldenFig4LRAttackerBase   = 0.1000000000
	goldenFig4LRAttackerStoch  = 0.0555555556
	goldenFig4DTVictimBase     = 0.0333333333
	goldenFig4DTVictimStoch    = 0.1822222222
	goldenFig4DTAttackerBase   = 0.2333333333
	goldenFig4DTAttackerStoch  = 0.1888888889

	goldenFig5RHMD2F     = 1.0000000000
	goldenFig5RHMD3F     = 0.9333333333
	goldenFig5RHMD2F2P   = 0.8666666667
	goldenFig5RHMD3F2P   = 0.6333333333
	goldenFig5Stochastic = 0.5333333333
)

func diff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}
