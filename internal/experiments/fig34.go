package experiments

import (
	"fmt"

	"shmd/internal/attack"
	"shmd/internal/dataset"
	"shmd/internal/hmd"
	"shmd/internal/rng"
)

// AttackCell is one of the six proxy configurations of Figs 3 and 4:
// a model family crossed with the attacker's data knowledge.
type AttackCell struct {
	Kind attack.ProxyKind
	// VictimData is true when the attacker reverse-engineers with the
	// victim's own training fold (the stronger scenario).
	VictimData bool
}

// attackCells enumerates the six configurations in the figures' order.
func attackCells() []AttackCell {
	var out []AttackCell
	for _, kind := range attack.ProxyKinds() {
		out = append(out, AttackCell{Kind: kind, VictimData: true})
		out = append(out, AttackCell{Kind: kind, VictimData: false})
	}
	return out
}

// dataName renders the fold-knowledge label used in the figures.
func (c AttackCell) dataName() string {
	if c.VictimData {
		return "victim training"
	}
	return "attacker training"
}

// Fig3Row is one bar pair of Fig 3.
type Fig3Row struct {
	Cell AttackCell
	// Baseline and Stochastic are the reverse-engineering
	// effectiveness values against each victim.
	Baseline   float64
	Stochastic float64
}

// reData picks the attacker's query fold for a cell.
func reData(env *Env, c AttackCell) []dataset.TracedProgram {
	if c.VictimData {
		return env.VictimTrain()
	}
	return env.AttackerTrain()
}

// reverseEngineerCell trains the cell's proxy against a victim.
func reverseEngineerCell(env *Env, victim hmd.Detector, c AttackCell, label uint64) (*attack.Proxy, error) {
	return attack.ReverseEngineer(victim, reData(env, c), attack.REConfig{
		Kind:   c.Kind,
		Epochs: env.Scale.ProxyEpochs,
		Seed:   rng.DeriveSeed(env.Scale.Seed, 0xA77, uint64(env.Rotation), label),
	})
}

// Fig3 measures reverse-engineering effectiveness for every proxy
// configuration against the baseline HMD and against the
// Stochastic-HMD at the operating error rate.
func Fig3(env *Env) ([]Fig3Row, *Table, error) {
	test := env.Test()
	t := &Table{
		Title:   "Fig 3 — reverse-engineering effectiveness",
		Headers: []string{"proxy", "attacker data", "baseline HMD", "Stochastic-HMD"},
		Notes: []string{
			fmt.Sprintf("Stochastic-HMD at error rate %.2f", OperatingErrorRate),
		},
	}
	var rows []Fig3Row
	for i, cell := range attackCells() {
		baseProxy, err := reverseEngineerCell(env, env.Base, cell, uint64(i))
		if err != nil {
			return nil, nil, err
		}
		baseEff, err := attack.Effectiveness(baseProxy, env.Base, test)
		if err != nil {
			return nil, nil, err
		}

		victim, err := env.Stochastic(OperatingErrorRate, uint64(100+i))
		if err != nil {
			return nil, nil, err
		}
		stochProxy, err := reverseEngineerCell(env, victim, cell, uint64(200+i))
		if err != nil {
			return nil, nil, err
		}
		stochEff, err := attack.Effectiveness(stochProxy, victim, test)
		if err != nil {
			return nil, nil, err
		}

		rows = append(rows, Fig3Row{Cell: cell, Baseline: baseEff, Stochastic: stochEff})
		t.AddRow(cell.Kind.String(), cell.dataName(), pct(baseEff), pct(stochEff))
	}
	return rows, t, nil
}

// Fig4Row is one bar pair of Fig 4.
type Fig4Row struct {
	Cell AttackCell
	// Baseline and Stochastic are the transferability-attack success
	// rates against each victim.
	Baseline   float64
	Stochastic float64
	// Samples counts the proxy-evasive malware per victim.
	BaselineSamples   int
	StochasticSamples int
}

// Fig4 runs the transferability experiment: evasive malware is crafted
// against each cell's proxy (reverse-engineered from the respective
// victim) and its success rate in evading that victim is measured.
//
// The stochastic half of each cell is averaged over
// Scale.AttackRepeats independently seeded victims (each with its own
// reverse-engineered proxy and crafted samples). A single roll is a
// near-Bernoulli draw per cell — proxy quality decides whether the
// crafted samples clear the victim's noisy boundary, so cell rates
// swing between 0 and 1 across seeds; averaging rolls measures the
// defense, not the roll. The baseline victim is deterministic, so its
// half needs no repeats.
func Fig4(env *Env) ([]Fig4Row, *Table, error) {
	targets := env.TestMalware(env.Scale.EvadeTargets)
	repeats := env.Scale.AttackRepeats
	if repeats < 1 {
		repeats = 1
	}
	t := &Table{
		Title:   "Fig 4 — 'transferability attack' success rate",
		Headers: []string{"proxy", "attacker data", "baseline HMD", "Stochastic-HMD"},
		Notes: []string{
			fmt.Sprintf("Stochastic-HMD at error rate %.2f; persistent detection over %d classifications",
				OperatingErrorRate, attack.PersistentRuns),
			fmt.Sprintf("%d malware targets per cell", len(targets)),
			fmt.Sprintf("stochastic column averaged over %d victim re-rolls per cell", repeats),
		},
	}
	var rows []Fig4Row
	for i, cell := range attackCells() {
		baseProxy, err := reverseEngineerCell(env, env.Base, cell, uint64(300+i))
		if err != nil {
			return nil, nil, err
		}
		baseResults, err := attack.EvadeAll(baseProxy, targets, attack.EvasionConfig{})
		if err != nil {
			return nil, nil, err
		}
		baseTrans := 0.0
		if len(baseResults) > 0 {
			baseTrans, err = attack.Transferability(baseResults, env.Base)
			if err != nil {
				return nil, nil, err
			}
		}

		stochTrans := 0.0
		stochSamples := 0
		for r := 0; r < repeats; r++ {
			// Each roll gets its own victim stream and proxy-training
			// stream; the +1000*r offsets keep the labels disjoint from
			// every other cell and roll.
			victim, err := env.Stochastic(OperatingErrorRate, uint64(400+i+1000*r))
			if err != nil {
				return nil, nil, err
			}
			stochProxy, err := reverseEngineerCell(env, victim, cell, uint64(500+i+1000*r))
			if err != nil {
				return nil, nil, err
			}
			stochResults, err := attack.EvadeAll(stochProxy, targets, attack.EvasionConfig{})
			if err != nil {
				return nil, nil, err
			}
			if len(stochResults) > 0 {
				roll, err := attack.Transferability(stochResults, victim)
				if err != nil {
					return nil, nil, err
				}
				stochTrans += roll
			}
			stochSamples += len(stochResults)
		}
		stochTrans /= float64(repeats)

		rows = append(rows, Fig4Row{
			Cell:              cell,
			Baseline:          baseTrans,
			Stochastic:        stochTrans,
			BaselineSamples:   len(baseResults),
			StochasticSamples: stochSamples,
		})
		t.AddRow(cell.Kind.String(), cell.dataName(), pct(baseTrans), pct(stochTrans))
	}
	return rows, t, nil
}
