package experiments

import (
	"fmt"
	"time"

	"shmd/internal/power"
	"shmd/internal/rhmd"
	"shmd/internal/volt"
)

// LatencyRow is one entry of the Section VIII inference-time
// comparison.
type LatencyRow struct {
	Name string
	Time time.Duration
}

// TabLatency reproduces the inference-time comparison: Stochastic-HMD
// vs RHMD-2F vs RHMD-2F2P (the paper's 7 / 7.7 / 7.8 µs), and verifies
// undervolting leaves the time unchanged.
func TabLatency(env *Env) ([]LatencyRow, *Table, error) {
	cpu, lat := power.DefaultCPU(), power.DefaultLatency()
	macs := env.Base.Fixed().NumMuls()

	st, err := power.StochasticCost(cpu, lat, macs, volt.SupplyVoltageAt(130))
	if err != nil {
		return nil, nil, err
	}
	r2, err := power.RHMDCost(cpu, lat, macs, 2)
	if err != nil {
		return nil, nil, err
	}
	r4, err := power.RHMDCost(cpu, lat, macs, 4)
	if err != nil {
		return nil, nil, err
	}
	rows := []LatencyRow{
		{Name: "Stochastic-HMD", Time: st.Time},
		{Name: "RHMD-2F (2 base detectors)", Time: r2.Time},
		{Name: "RHMD-2F2P (4 base detectors)", Time: r4.Time},
	}
	t := &Table{
		Title:   "§VIII — average inference time per detection",
		Headers: []string{"detector", "time"},
		Notes: []string{
			"voltage scaling has no effect on inference time (frequency unchanged)",
			fmt.Sprintf("RHMD overhead comes from model selection and L1 eviction (paper: ≥10%%); modeled overhead %.1f%%",
				100*float64(r2.Time-st.Time)/float64(st.Time)),
		},
	}
	for _, r := range rows {
		t.AddRow(r.Name, r.Time.String())
	}
	return rows, t, nil
}

// MemoryRow is one entry of the storage comparison.
type MemoryRow struct {
	Name         string
	Detectors    int
	StorageBytes int64
	SavingsEq1   float64
}

// TabMemory reproduces the Section VIII memory-footprint comparison
// and Eq. (1): per-model storage, per-construction totals, and the
// storage savings of the single-model Stochastic-HMD.
func TabMemory(env *Env) ([]MemoryRow, *Table, error) {
	perModel := env.Base.Network().SavedSize()
	rows := []MemoryRow{{Name: "Stochastic-HMD", Detectors: 1, StorageBytes: perModel}}
	for _, c := range rhmd.Constructions() {
		n, err := c.NumDetectors()
		if err != nil {
			return nil, nil, err
		}
		savings, err := rhmd.StorageSavings(n)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, MemoryRow{
			Name:         c.String(),
			Detectors:    n,
			StorageBytes: perModel * int64(n),
			SavingsEq1:   savings,
		})
	}
	t := &Table{
		Title:   "§VIII — model storage and Eq. (1) savings",
		Headers: []string{"detector", "base models", "storage", "Stochastic-HMD saving (Eq. 1)"},
		Notes: []string{
			fmt.Sprintf("one serialized model: %d bytes (%0.1f KB); the paper's FANN model was 71 KB; Intel Tiger Lake L1D is 32 KB",
				perModel, float64(perModel)/1024),
		},
	}
	for _, r := range rows {
		saving := "—"
		if r.Detectors > 1 {
			saving = pct(r.SavingsEq1)
		}
		t.AddRow(r.Name, fmt.Sprintf("%d", r.Detectors),
			fmt.Sprintf("%.1f KB", float64(r.StorageBytes)/1024), saving)
	}
	return rows, t, nil
}

// RNGRow is one entry of the TRNG/PRNG comparison.
type RNGRow struct {
	Name         string
	TimeFactor   float64
	EnergyFactor float64
}

// TabRNG reproduces the TRNG/PRNG noise-injection overhead comparison:
// modifying the baseline HMD to query a random source per MAC costs
// ≈62×/≈112× (TRNG) and ≈4×/≈5.7× (PRNG) in time/energy, against the
// free stochasticity of undervolting.
func TabRNG(env *Env) ([]RNGRow, *Table, error) {
	cpu, lat := power.DefaultCPU(), power.DefaultLatency()
	macs := env.Base.Fixed().NumMuls()

	base, err := power.BaselineCost(cpu, lat, macs)
	if err != nil {
		return nil, nil, err
	}
	trng, err := power.TRNGCost(cpu, lat, macs)
	if err != nil {
		return nil, nil, err
	}
	prng, err := power.PRNGCost(cpu, lat, macs)
	if err != nil {
		return nil, nil, err
	}
	st, err := power.StochasticCost(cpu, lat, macs, volt.SupplyVoltageAt(130))
	if err != nil {
		return nil, nil, err
	}

	tf, ef := power.Overhead(trng, base)
	pf, pe := power.Overhead(prng, base)
	sf, se := power.Overhead(st, base)
	rows := []RNGRow{
		{Name: "TRNG per-MAC noise injection", TimeFactor: tf, EnergyFactor: ef},
		{Name: "PRNG (LGM [25]) per-MAC noise injection", TimeFactor: pf, EnergyFactor: pe},
		{Name: "Stochastic-HMD (undervolting)", TimeFactor: sf, EnergyFactor: se},
	}
	t := &Table{
		Title:   "§VIII — noise-source overhead vs the plain baseline HMD",
		Headers: []string{"noise source", "time factor", "energy factor"},
		Notes: []string{
			"undervolting injects stochasticity with no time overhead and an energy *saving*",
		},
	}
	for _, r := range rows {
		t.AddRow(r.Name, fmt.Sprintf("%.1f×", r.TimeFactor), fmt.Sprintf("%.2f×", r.EnergyFactor))
	}
	return rows, t, nil
}
