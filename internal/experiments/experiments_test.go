package experiments

import (
	"strings"
	"sync"
	"testing"
)

var (
	envOnce sync.Once
	envVal  *Env
	envErr  error
)

func quickEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() {
		envVal, envErr = NewEnv(Quick(1), 0)
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return envVal
}

// skipCampaign gates the heavy attack-campaign and retraining tests
// out of the -short fast path. `make race` runs `go test -race -short
// ./...` over every package — including this one — so the fast path
// must keep the concurrency-bearing tests (Fig2a/Fig2b drive the
// sharded parallel evaluators) while shedding the multi-proxy
// campaigns whose race-instrumented runtime would blow the package
// timeout.
func skipCampaign(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("attack campaign skipped with -short (race fast path runs the concurrent evaluators only)")
	}
}

func TestScaleConfigs(t *testing.T) {
	q := Quick(1)
	f := Full(1)
	if err := q.Dataset.Validate(); err != nil {
		t.Errorf("quick dataset invalid: %v", err)
	}
	if err := f.Dataset.Validate(); err != nil {
		t.Errorf("full dataset invalid: %v", err)
	}
	if f.SweepRepeats != 50 {
		t.Errorf("full sweep repeats = %d, paper uses 50", f.SweepRepeats)
	}
	if f.Rotations != 3 {
		t.Errorf("full rotations = %d, paper uses 3-fold CV", f.Rotations)
	}
	if q.SweepRepeats >= f.SweepRepeats {
		t.Error("quick must be smaller than full")
	}
}

func TestEnvFolds(t *testing.T) {
	env := quickEnv(t)
	if len(env.VictimTrain()) == 0 || len(env.AttackerTrain()) == 0 || len(env.Test()) == 0 {
		t.Fatal("empty folds")
	}
	malware := env.TestMalware(5)
	if len(malware) != 5 {
		t.Errorf("TestMalware(5) = %d", len(malware))
	}
	for _, p := range malware {
		if !p.IsMalware() {
			t.Error("TestMalware returned benign program")
		}
	}
	all := env.TestMalware(0)
	if len(all) <= 5 {
		t.Errorf("TestMalware(0) should return all: %d", len(all))
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Headers: []string{"a", "bee"},
		Notes:   []string{"a note"},
	}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	s := tab.String()
	for _, want := range []string{"demo", "bee", "333", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestFig1(t *testing.T) {
	env := quickEnv(t)
	res, tab, err := Fig1(env.Scale)
	if err != nil {
		t.Fatal(err)
	}
	if res.ErrorRate < 0.05 || res.ErrorRate > 0.2 {
		t.Errorf("error rate at -130 mV = %v", res.ErrorRate)
	}
	// Forbidden bits carry no observed faults.
	for _, bit := range []int{0, 7, 63} {
		if res.Observed[bit] != 0 {
			t.Errorf("observed fault at forbidden bit %d", bit)
		}
	}
	total := 0.0
	for _, r := range res.Observed {
		total += r
	}
	if total <= 0 {
		t.Error("no faults observed")
	}
	if res.ApEn < 0.1 {
		t.Errorf("ApEn = %v, fault process looks deterministic", res.ApEn)
	}
	if len(tab.Rows) == 0 {
		t.Error("empty table")
	}
}

func TestFig2a(t *testing.T) {
	env := quickEnv(t)
	points, tab, err := Fig2a(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(Fig2aRates) {
		t.Fatalf("points = %d", len(points))
	}
	// Headline shape: small loss at 0.1, larger at 1.0.
	if loss := points[0].Accuracy.Mean - points[1].Accuracy.Mean; loss > 0.04 {
		t.Errorf("accuracy loss at er=0.1 = %v", loss)
	}
	if points[10].Accuracy.Mean >= points[1].Accuracy.Mean-0.05 {
		t.Errorf("er=1.0 accuracy %v should be well below er=0.1 %v",
			points[10].Accuracy.Mean, points[1].Accuracy.Mean)
	}
	if len(tab.Rows) != len(Fig2aRates) {
		t.Error("table rows mismatch")
	}
}

func TestFig2b(t *testing.T) {
	env := quickEnv(t)
	results, tab, err := Fig2b(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(Fig2bRates) {
		t.Fatalf("results = %d", len(results))
	}
	// Uncertainty grows with the error rate: the malware-class score
	// std at er=1.0 exceeds that at er=0.1.
	_, stdLow := histMoments(results[0].Malware)
	_, stdHigh := histMoments(results[2].Malware)
	if stdHigh <= stdLow {
		t.Errorf("malware confidence std: er=0.1 %v, er=1.0 %v — should widen", stdLow, stdHigh)
	}
	if len(tab.Rows) != 3 {
		t.Error("table rows mismatch")
	}
}

func TestFig3(t *testing.T) {
	skipCampaign(t)
	env := quickEnv(t)
	rows, tab, err := Fig3(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for _, r := range rows {
		if r.Baseline <= 0 || r.Baseline > 1 || r.Stochastic <= 0 || r.Stochastic > 1 {
			t.Errorf("%v/%v effectiveness out of range: %+v", r.Cell.Kind, r.Cell.dataName(), r)
		}
	}
	// The MLP/victim-data cell shows the paper's headline drop:
	// stochastic strictly below baseline.
	if rows[0].Stochastic >= rows[0].Baseline {
		t.Errorf("stochastic RE effectiveness %v must drop below baseline %v",
			rows[0].Stochastic, rows[0].Baseline)
	}
	if len(tab.Rows) != 6 {
		t.Error("table rows mismatch")
	}
}

func TestFig7(t *testing.T) {
	env := quickEnv(t)
	points, tab, err := Fig7(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(Fig7Voltages) {
		t.Fatalf("points = %d", len(points))
	}
	if points[0].SavingsVsBase != 0 {
		t.Errorf("nominal voltage saving = %v", points[0].SavingsVsBase)
	}
	last := points[len(points)-1]
	if last.SavingsVsRHMD < 0.65 {
		t.Errorf("savings vs RHMD at 0.68 V = %v", last.SavingsVsRHMD)
	}
	if len(tab.Rows) != len(Fig7Voltages) {
		t.Error("table rows mismatch")
	}
}

func TestTabLatency(t *testing.T) {
	env := quickEnv(t)
	rows, tab, err := TabLatency(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if !(rows[0].Time < rows[1].Time && rows[1].Time < rows[2].Time) {
		t.Errorf("latency ordering: %v", rows)
	}
	if len(tab.Rows) != 3 {
		t.Error("table rows mismatch")
	}
}

func TestTabMemory(t *testing.T) {
	env := quickEnv(t)
	rows, tab, err := TabMemory(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Name != "Stochastic-HMD" || rows[0].Detectors != 1 {
		t.Errorf("first row = %+v", rows[0])
	}
	// RHMD-2F: 2 detectors, 50% saving (the paper's example).
	if rows[1].Detectors != 2 || rows[1].SavingsEq1 != 0.5 {
		t.Errorf("RHMD-2F row = %+v", rows[1])
	}
	// Storage scales with detector count.
	if rows[4].StorageBytes != rows[0].StorageBytes*6 {
		t.Errorf("3F2P storage = %d, want 6 models", rows[4].StorageBytes)
	}
	if len(tab.Rows) != 5 {
		t.Error("table rows mismatch")
	}
}

func TestTabRNG(t *testing.T) {
	env := quickEnv(t)
	rows, tab, err := TabRNG(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	trng, prng, st := rows[0], rows[1], rows[2]
	if trng.TimeFactor < 50 || trng.EnergyFactor < 90 {
		t.Errorf("TRNG factors = %+v, want ≈62×/≈112×", trng)
	}
	if prng.TimeFactor < 3 || prng.TimeFactor > 5 {
		t.Errorf("PRNG time factor = %v, want ≈4×", prng.TimeFactor)
	}
	if st.TimeFactor != 1 {
		t.Errorf("stochastic time factor = %v, undervolting must be free", st.TimeFactor)
	}
	if st.EnergyFactor >= 1 {
		t.Errorf("stochastic energy factor = %v, must save energy", st.EnergyFactor)
	}
	if len(tab.Rows) != 3 {
		t.Error("table rows mismatch")
	}
}
