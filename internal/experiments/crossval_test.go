package experiments

import "testing"

func TestCrossValidate(t *testing.T) {
	skipCampaign(t)
	scale := Quick(1)
	scale.Rotations = 3
	scale.SweepRepeats = 2
	envs, err := CrossValidate(scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != 3 {
		t.Fatalf("envs = %d", len(envs))
	}
	// All rotations share the corpus but see different folds.
	if envs[0].Data != envs[1].Data {
		t.Error("rotations must share one corpus")
	}
	if envs[0].Split.VictimTrain[0] == envs[1].Split.VictimTrain[0] &&
		envs[0].Split.VictimTrain[1] == envs[1].Split.VictimTrain[1] {
		// Rotation permutes roles; victim folds must differ.
		t.Error("rotations appear to share the victim fold")
	}

	points, tab, err := Fig2aCV(envs)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(Fig2aRates) {
		t.Fatalf("points = %d", len(points))
	}
	// Cross-validated shape: small loss at er=0.1, collapse at er=1.
	if points[1].Accuracy.Mean < points[10].Accuracy.Mean {
		t.Error("accuracy ordering violated across CV")
	}
	for _, p := range points {
		if p.Accuracy.Mean < 0 || p.Accuracy.Mean > 1 {
			t.Errorf("accuracy out of range at er=%v", p.ErrorRate)
		}
	}
	if len(tab.Rows) != len(Fig2aRates) {
		t.Error("table rows mismatch")
	}
}

func TestCrossValidateValidation(t *testing.T) {
	scale := Quick(1)
	scale.Rotations = 0
	if _, err := CrossValidate(scale); err == nil {
		t.Error("zero rotations must error")
	}
	scale.Rotations = 4
	if _, err := CrossValidate(scale); err == nil {
		t.Error("four rotations must error")
	}
	if _, _, err := Fig2aCV(nil); err == nil {
		t.Error("empty env list must error")
	}
}
