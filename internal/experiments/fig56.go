package experiments

import (
	"fmt"

	"shmd/internal/attack"
	"shmd/internal/features"
	"shmd/internal/hmd"
	"shmd/internal/rhmd"
	"shmd/internal/rng"
)

// Fig5Row is one bar of Fig 5 / Fig 6: a defense construction with its
// evasive-malware detection rate and baseline accuracy.
type Fig5Row struct {
	// Name labels the construction ("RHMD-2F" ... or "Stochastic-HMD").
	Name string
	// EvasiveDetected is the Fig 5 metric.
	EvasiveDetected float64
	// Accuracy is the Fig 6 metric (non-evasive test accuracy).
	Accuracy float64
	// Samples counts the proxy-evasive malware evaluated.
	Samples int
}

// Fig5And6 runs the RHMD comparison: every construction is trained,
// reverse-engineered using all of its feature vectors (the strongest
// proxy), attacked with the evasion framework, and measured on both
// evasive-malware detection (Fig 5) and plain accuracy (Fig 6). The
// Stochastic-HMD at the operating point is evaluated identically.
func Fig5And6(env *Env) ([]Fig5Row, *Table, *Table, error) {
	targets := env.TestMalware(env.Scale.EvadeTargets)
	test := env.Test()

	fig5 := &Table{
		Title:   "Fig 5 — percentage of evasive malware detected",
		Headers: []string{"defense", "evasive malware detected"},
		Notes: []string{
			fmt.Sprintf("persistent detection over %d classifications; %d malware targets",
				attack.PersistentRuns, len(targets)),
		},
	}
	fig6 := &Table{
		Title:   "Fig 6 — detection accuracy of RHMDs and Stochastic-HMD",
		Headers: []string{"defense", "accuracy"},
	}

	var rows []Fig5Row
	evaluate := func(name string, victim hmd.Detector, sets []features.Set, label uint64) error {
		proxy, err := attack.ReverseEngineer(victim, env.AttackerTrain(), attack.REConfig{
			Kind:        attack.ProxyMLP,
			FeatureSets: sets,
			Epochs:      env.Scale.ProxyEpochs,
			Seed:        rng.DeriveSeed(env.Scale.Seed, 0xF56, uint64(env.Rotation), label),
		})
		if err != nil {
			return err
		}
		results, err := attack.EvadeAll(proxy, targets, attack.EvasionConfig{})
		if err != nil {
			return err
		}
		detected := 1.0 // nothing evaded the proxy: everything is caught
		if len(results) > 0 {
			detected, err = attack.DetectionRate(results, victim)
			if err != nil {
				return err
			}
		}
		acc := hmd.Evaluate(victim, test).Accuracy()
		rows = append(rows, Fig5Row{Name: name, EvasiveDetected: detected, Accuracy: acc, Samples: len(results)})
		fig5.AddRow(name, pct(detected))
		fig6.AddRow(name, pct(acc))
		return nil
	}

	for i, construction := range rhmd.Constructions() {
		r, err := rhmd.Train(construction, env.VictimTrain(), rhmd.Config{
			TrainSeed:  rng.DeriveSeed(env.Scale.Seed, 0x12D, uint64(env.Rotation), uint64(i)),
			SwitchSeed: rng.DeriveSeed(env.Scale.Seed, 0x12E, uint64(env.Rotation), uint64(i)),
		})
		if err != nil {
			return nil, nil, nil, err
		}
		sets, err := construction.FeatureSets()
		if err != nil {
			return nil, nil, nil, err
		}
		if err := evaluate(construction.String(), r, sets, uint64(i)); err != nil {
			return nil, nil, nil, err
		}
	}

	victim, err := env.Stochastic(OperatingErrorRate, 0xF56)
	if err != nil {
		return nil, nil, nil, err
	}
	if err := evaluate("Stochastic-HMD", victim, nil, 99); err != nil {
		return nil, nil, nil, err
	}

	// Cross-check the paper's "detects >53% of the evasive malware
	// missed by RHMD-3F2P" style claim as a note.
	if len(rows) == 5 {
		missedBy3F2P := 1 - rows[3].EvasiveDetected
		if missedBy3F2P > 0 {
			fig5.Notes = append(fig5.Notes, fmt.Sprintf(
				"Stochastic-HMD catches %s of evasive malware vs %s for RHMD-3F2P (%.0f%% of the gap to perfect)",
				pct(rows[4].EvasiveDetected), pct(rows[3].EvasiveDetected),
				100*(rows[4].EvasiveDetected-rows[3].EvasiveDetected)/missedBy3F2P))
		}
	}
	return rows, fig5, fig6, nil
}
