package experiments

import (
	"fmt"

	"shmd/internal/core"
	"shmd/internal/dataset"
	"shmd/internal/hmd"
	"shmd/internal/rng"
)

// OperatingErrorRate is the paper's selected configuration: "the most
// resilient Stochastic-HMD (with 10% error rate)".
const OperatingErrorRate = 0.1

// Scale sizes an experiment run. Quick keeps unit tests fast; Full is
// the paper-sized evaluation used by the benchmarks and the CLI.
type Scale struct {
	Name string
	// Dataset is the corpus configuration.
	Dataset dataset.Config
	// SweepRepeats is the per-error-rate repetition count of Fig 2(a)
	// (the paper repeats 50×).
	SweepRepeats int
	// ConfRepeats pools this many stochastic evaluations into the
	// Fig 2(b) confidence histograms.
	ConfRepeats int
	// EvadeTargets caps how many test-fold malware programs the
	// evasion experiments transform.
	EvadeTargets int
	// ProxyEpochs bounds reverse-engineering training.
	ProxyEpochs int
	// AttackRepeats is how many independent stochastic victims the
	// transferability experiment (Fig 4) attacks per cell, averaging
	// the success rate. One roll is extremely high-variance: the
	// reverse-engineered proxy's quality — and with it the crafted
	// samples' depth past the decision boundary — swings the per-cell
	// rate between 0 and 1 at quick scale.
	AttackRepeats int
	// Rotations is how many of the three cross-validation rotations
	// to run (the paper uses all three).
	Rotations int
	// Seed roots every random stream of the run.
	Seed uint64
}

// Quick is the test-sized scale.
func Quick(seed uint64) Scale {
	return Scale{
		Name:          "quick",
		Dataset:       dataset.QuickConfig(seed),
		SweepRepeats:  5,
		ConfRepeats:   5,
		EvadeTargets:  30,
		ProxyEpochs:   60,
		AttackRepeats: 3,
		Rotations:     1,
		Seed:          seed,
	}
}

// Full is the paper-sized scale: 3000 malware + 600 benign, 50-repeat
// sweeps, 3-fold cross-validation.
func Full(seed uint64) Scale {
	return Scale{
		Name:          "full",
		Dataset:       dataset.PaperConfig(seed),
		SweepRepeats:  50,
		ConfRepeats:   20,
		EvadeTargets:  200,
		ProxyEpochs:   150,
		AttackRepeats: 3,
		Rotations:     3,
		Seed:          seed,
	}
}

// Env bundles the per-rotation artifacts every security experiment
// needs: the corpus, the fold split, and the trained baseline HMD.
type Env struct {
	Scale    Scale
	Rotation int
	Data     *dataset.Dataset
	Split    dataset.Split
	Base     *hmd.HMD
}

// NewEnv generates the corpus (or reuses a shared one) and trains the
// baseline victim for one rotation.
func NewEnv(scale Scale, rotation int) (*Env, error) {
	data, err := dataset.Generate(scale.Dataset)
	if err != nil {
		return nil, err
	}
	return NewEnvFromData(scale, rotation, data)
}

// NewEnvFromData is NewEnv with a pre-generated corpus, so multi-
// rotation runs do not regenerate it.
func NewEnvFromData(scale Scale, rotation int, data *dataset.Dataset) (*Env, error) {
	split, err := data.ThreeFold(rotation)
	if err != nil {
		return nil, err
	}
	base, err := hmd.Train(data.Select(split.VictimTrain), hmd.Config{
		Seed: rng.DeriveSeed(scale.Seed, 0xBA5E, uint64(rotation)),
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: training baseline (rotation %d): %w", rotation, err)
	}
	return &Env{Scale: scale, Rotation: rotation, Data: data, Split: split, Base: base}, nil
}

// VictimTrain returns the victim-training programs.
func (e *Env) VictimTrain() []dataset.TracedProgram { return e.Data.Select(e.Split.VictimTrain) }

// AttackerTrain returns the attacker-training programs.
func (e *Env) AttackerTrain() []dataset.TracedProgram { return e.Data.Select(e.Split.AttackerTrain) }

// Test returns the testing programs.
func (e *Env) Test() []dataset.TracedProgram { return e.Data.Select(e.Split.Test) }

// TestMalware returns up to n malware programs from the test fold
// (n <= 0 means all).
func (e *Env) TestMalware(n int) []dataset.TracedProgram {
	idx := e.Data.MalwareOf(e.Split.Test)
	if n > 0 && n < len(idx) {
		idx = idx[:n]
	}
	return e.Data.Select(idx)
}

// Stochastic builds the protected detector at the operating point with
// a labelled random stream.
func (e *Env) Stochastic(rate float64, streamLabel uint64) (*core.StochasticHMD, error) {
	return core.New(e.Base.WithFreshBuffers(), core.Options{
		ErrorRate: rate,
		Seed:      rng.DeriveSeed(e.Scale.Seed, 0x570C, uint64(e.Rotation), streamLabel),
	})
}
