// Package experiments regenerates every table and figure of the
// paper's evaluation. Each FigN/TabN function is self-contained,
// returns structured results plus a formatted Table, and is shared by
// cmd/experiments and the root benchmark suite. The Scale type
// switches between a fast test-sized run and the paper-sized corpus.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment artifact: the rows the paper's
// figure/table reports, in text form.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	// Notes carry per-table caveats (e.g. scale used, protocol).
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// pct formats a fraction as a percentage.
func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// pctPair formats mean±std fractions as percentages.
func pctPair(mean, std float64) string {
	return fmt.Sprintf("%.1f%% ± %.1f", 100*mean, 100*std)
}
