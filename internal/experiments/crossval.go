package experiments

import (
	"fmt"

	"shmd/internal/core"
	"shmd/internal/dataset"
	"shmd/internal/stats"
)

// Cross-validation driver: the paper evaluates everything under 3-fold
// cross-validation ("we use 3-fold cross-validation in our experiments
// to get accurate results, i.e., eliminate bias"), rotating the fold
// roles. CrossValidate builds one Env per rotation over a shared
// corpus; Fig2aCV averages the headline sweep across rotations.

// CrossValidate returns one Env per requested rotation, sharing a
// single generated corpus.
func CrossValidate(scale Scale) ([]*Env, error) {
	if scale.Rotations < 1 || scale.Rotations > 3 {
		return nil, fmt.Errorf("experiments: rotations %d outside 1..3", scale.Rotations)
	}
	data, err := dataset.Generate(scale.Dataset)
	if err != nil {
		return nil, err
	}
	envs := make([]*Env, scale.Rotations)
	for r := 0; r < scale.Rotations; r++ {
		envs[r], err = NewEnvFromData(scale, r, data)
		if err != nil {
			return nil, err
		}
	}
	return envs, nil
}

// CVPoint is a cross-validated Fig 2(a) sample: the per-rotation sweep
// results pooled into one summary per error rate.
type CVPoint struct {
	ErrorRate float64
	Accuracy  stats.Summary
	FPR       stats.Summary
	FNR       stats.Summary
}

// Fig2aCV runs the Fig 2(a) sweep on every rotation and pools the
// repeats, reproducing the paper's "3-folds cross-validation, repeated
// each experiment 50 times" protocol.
func Fig2aCV(envs []*Env) ([]CVPoint, *Table, error) {
	if len(envs) == 0 {
		return nil, nil, fmt.Errorf("experiments: no rotations")
	}
	perRotation := make([][]core.SweepPoint, len(envs))
	for r, env := range envs {
		points, _, err := Fig2a(env)
		if err != nil {
			return nil, nil, fmt.Errorf("rotation %d: %w", r, err)
		}
		perRotation[r] = points
	}
	out := make([]CVPoint, len(Fig2aRates))
	t := &Table{
		Title:   "Fig 2(a) — cross-validated accuracy / FPR / FNR vs error rate",
		Headers: []string{"error rate", "accuracy", "FPR", "FNR"},
		Notes: []string{
			fmt.Sprintf("%d rotations × %d repeats pooled", len(envs), envs[0].Scale.SweepRepeats),
		},
	}
	for i, rate := range Fig2aRates {
		// Pool the rotation means weighted equally; the pooled std
		// combines within-rotation spread and between-rotation spread.
		var accs, fprs, fnrs []float64
		for r := range perRotation {
			p := perRotation[r][i]
			accs = append(accs, p.Accuracy.Mean)
			fprs = append(fprs, p.FPR.Mean)
			fnrs = append(fnrs, p.FNR.Mean)
		}
		accSum, _ := stats.Summarize(accs)
		fprSum, _ := stats.Summarize(fprs)
		fnrSum, _ := stats.Summarize(fnrs)
		// Fold the average within-rotation std into the summary so the
		// reported spread reflects the stochastic repeats, not only
		// the rotation-to-rotation variation.
		within := 0.0
		for r := range perRotation {
			within += perRotation[r][i].Accuracy.StdDev
		}
		accSum.StdDev = maxF(accSum.StdDev, within/float64(len(perRotation)))
		out[i] = CVPoint{ErrorRate: rate, Accuracy: accSum, FPR: fprSum, FNR: fnrSum}
		t.AddRow(fmt.Sprintf("%.1f", rate),
			pctPair(accSum.Mean, accSum.StdDev),
			pctPair(fprSum.Mean, fprSum.StdDev),
			pctPair(fnrSum.Mean, fnrSum.StdDev))
	}
	return out, t, nil
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
