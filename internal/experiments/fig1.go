package experiments

import (
	"fmt"

	"shmd/internal/faults"
	"shmd/internal/fxp"
	"shmd/internal/rng"
	"shmd/internal/volt"
)

// Fig1Result reproduces Fig 1: the probability distribution of faulty
// bit locations for undervolted multiplication results (i7-5557U-like
// device at 2.2 GHz, 49 °C, −130 mV).
type Fig1Result struct {
	// ErrorRate is the per-multiplication fault rate the device
	// calibration yields at −130 mV.
	ErrorRate float64
	// Observed is the measured per-bit fault rate over the operand
	// sweep (the bars of Fig 1).
	Observed [faults.ProductBits]float64
	// Model is the underlying fault-location distribution mass.
	Model [faults.ProductBits]float64
	// ApEn is the approximate-entropy score of the fault on/off series
	// for a fixed operand pair — the Section II stochasticity check.
	ApEn float64
}

// Fig1 runs the characterization experiment: repeated multiplications
// over random operand sets on the undervolted multiplier, histogram of
// faulty bit locations.
func Fig1(scale Scale) (Fig1Result, *Table, error) {
	profile := volt.DefaultProfile()
	rate := profile.ErrorRate(130, volt.ReferenceTempC)

	inj, err := faults.NewInjector(rate, nil, rng.NewRand(scale.Seed, 0xF16A))
	if err != nil {
		return Fig1Result{}, nil, err
	}
	operandSets := 100000
	if scale.Name == "quick" {
		operandSets = 10000
	}
	res := Fig1Result{ErrorRate: rate}
	res.Observed = faults.ObservedBitHistogram(inj, operandSets, 5, rng.NewRand(scale.Seed, 0xF16B))
	res.Model = faults.Fig1Distribution().Weights()

	apInj, err := faults.NewInjector(rate, nil, rng.NewRand(scale.Seed, 0xF16C))
	if err != nil {
		return Fig1Result{}, nil, err
	}
	ap, err := faults.StochasticityApEn(apInj, fxp.Value(123456789), fxp.Value(987654321), 400)
	if err != nil {
		return Fig1Result{}, nil, err
	}
	res.ApEn = ap

	t := &Table{
		Title:   "Fig 1 — faulty-bit location distribution (−130 mV, 49 °C)",
		Headers: []string{"product bit", "observed fault rate", "model mass"},
		Notes: []string{
			fmt.Sprintf("device error rate at −130 mV: %.4f per multiplication", rate),
			fmt.Sprintf("stochasticity ApEn(m=2) of fixed-operand fault series: %.3f (0 would be deterministic)", ap),
			"sign bit (63) and bits 0..7 never fault, as characterized in Section II",
		},
	}
	for bit := faults.ProductBits - 1; bit >= 0; bit-- {
		if res.Observed[bit] == 0 && res.Model[bit] == 0 {
			continue
		}
		t.AddRow(fmt.Sprintf("%d", bit),
			fmt.Sprintf("%.5f%%", 100*res.Observed[bit]),
			fmt.Sprintf("%.5f", res.Model[bit]))
	}
	return res, t, nil
}
