package experiments

import (
	"fmt"
	"math"

	"shmd/internal/core"
	"shmd/internal/hmd"
	"shmd/internal/rng"
	"shmd/internal/stats"
)

// Fig2aRates is the error-rate axis of the space exploration.
var Fig2aRates = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}

// Fig2a runs the detection-accuracy space exploration: accuracy, FPR
// and FNR (mean ± std over repeated stochastic evaluations) while
// increasing the error rate.
func Fig2a(env *Env) ([]core.SweepPoint, *Table, error) {
	points, err := core.AccuracySweep(env.Base, env.Test(), Fig2aRates,
		env.Scale.SweepRepeats, rng.DeriveSeed(env.Scale.Seed, 0xF2A, uint64(env.Rotation)))
	if err != nil {
		return nil, nil, err
	}
	baseline := hmd.Evaluate(env.Base, env.Test())
	t := &Table{
		Title:   "Fig 2(a) — accuracy / FPR / FNR vs error rate",
		Headers: []string{"error rate", "accuracy", "FPR", "FNR"},
		Notes: []string{
			fmt.Sprintf("baseline (no undervolting): acc %s fpr %s fnr %s",
				pct(baseline.Accuracy()), pct(baseline.FPR()), pct(baseline.FNR())),
			fmt.Sprintf("%d repeats per point, rotation %d", env.Scale.SweepRepeats, env.Rotation),
		},
	}
	for _, p := range points {
		t.AddRow(fmt.Sprintf("%.1f", p.ErrorRate),
			pctPair(p.Accuracy.Mean, p.Accuracy.StdDev),
			pctPair(p.FPR.Mean, p.FPR.StdDev),
			pctPair(p.FNR.Mean, p.FNR.StdDev))
	}
	return points, t, nil
}

// Fig2bRates are the error rates whose confidence distributions Fig
// 2(b) plots.
var Fig2bRates = []float64{0.1, 0.5, 1.0}

// Fig2bResult holds the confidence distributions at one error rate.
type Fig2bResult struct {
	ErrorRate float64
	Benign    *stats.Histogram
	Malware   *stats.Histogram
}

// Fig2b computes the program-level confidence distributions of benign
// and malware samples at the Fig 2(b) error rates.
func Fig2b(env *Env) ([]Fig2bResult, *Table, error) {
	t := &Table{
		Title: "Fig 2(b) — confidence distribution by class vs error rate",
		Headers: []string{"error rate", "benign mean", "benign std",
			"malware mean", "malware std"},
		Notes: []string{"statistics of the malware-class confidence, pooled over repeats"},
	}
	var out []Fig2bResult
	for i, rate := range Fig2bRates {
		benign, malware, err := core.ConfidenceDistributions(env.Base, env.Test(), rate,
			env.Scale.ConfRepeats, 20, rng.DeriveSeed(env.Scale.Seed, 0xF2B, uint64(env.Rotation), uint64(i)))
		if err != nil {
			return nil, nil, err
		}
		out = append(out, Fig2bResult{ErrorRate: rate, Benign: benign, Malware: malware})
		bm, bs := histMoments(benign)
		mm, ms := histMoments(malware)
		t.AddRow(fmt.Sprintf("%.1f", rate),
			fmt.Sprintf("%.3f", bm), fmt.Sprintf("%.3f", bs),
			fmt.Sprintf("%.3f", mm), fmt.Sprintf("%.3f", ms))
	}
	return out, t, nil
}

// histMoments returns the mean and standard deviation of a histogram's
// distribution (bin centers weighted by density).
func histMoments(h *stats.Histogram) (mean, std float64) {
	d := h.Density()
	for i, p := range d {
		mean += p * h.BinCenter(i)
	}
	varsum := 0.0
	for i, p := range d {
		diff := h.BinCenter(i) - mean
		varsum += p * diff * diff
	}
	return mean, math.Sqrt(varsum)
}
