package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	tab := &Table{
		Title:   "Fig 9 — demo (test)",
		Headers: []string{"x", "y"},
		Notes:   []string{"a note"},
	}
	tab.AddRow("1", "2.5")
	tab.AddRow("2", "3,5") // comma inside a cell must be quoted

	var b strings.Builder
	if err := tab.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"# Fig 9 — demo (test)", "x,y", "1,2.5", `"3,5"`, "# a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}
}

func TestSaveCSV(t *testing.T) {
	tab := &Table{
		Title:   "Fig 2(a) — accuracy / FPR / FNR vs error rate",
		Headers: []string{"er", "acc"},
	}
	tab.AddRow("0.1", "0.96")
	dir := t.TempDir()
	path, err := tab.SaveCSV(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := filepath.Join(dir, "fig-2a-accuracy-fpr-fnr-vs-error-rate.csv")
	if path != want {
		t.Errorf("path = %q, want %q", path, want)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "0.1,0.96") {
		t.Errorf("file contents = %q", data)
	}
}

func TestSlugify(t *testing.T) {
	cases := map[string]string{
		"Fig 7 — power savings": "fig-7-power-savings",
		"§VIII — model storage": "viii-model-storage",
		"(weird)   spacing  ":   "weird-spacing",
		"already-clean-slug":    "already-clean-slug",
	}
	for in, want := range cases {
		if got := slugify(in); got != want {
			t.Errorf("slugify(%q) = %q, want %q", in, got, want)
		}
	}
}
