package experiments

import (
	"fmt"

	"shmd/internal/attack"
	"shmd/internal/hmd"
	"shmd/internal/rng"
)

// Fig8Rates is the error-rate axis of the trade-off figure. It is
// sparser than Fig 2(a)'s because every point carries a full
// reverse-engineering and evasion campaign.
var Fig8Rates = []float64{0, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0}

// Fig8Point is one error-rate sample of the trade-off: accuracy,
// transferability robustness (share of evasive malware that fails),
// and reverse-engineering robustness (1 − effectiveness).
type Fig8Point struct {
	ErrorRate      float64
	Accuracy       float64
	TransferRobust float64
	RERobust       float64
}

// Fig8 sweeps the error rate and measures the three trade-off curves,
// using the MLP proxy with attacker-training data (the figure's attack
// configuration).
func Fig8(env *Env) ([]Fig8Point, *Table, error) {
	targets := env.TestMalware(env.Scale.EvadeTargets)
	test := env.Test()
	t := &Table{
		Title: "Fig 8 — Stochastic-HMD trade-off",
		Headers: []string{"error rate", "accuracy",
			"transferability robustness", "RE robustness"},
		Notes: []string{
			"MLP proxy, attacker-training data",
			fmt.Sprintf("persistent detection over %d classifications", attack.PersistentRuns),
		},
	}
	var out []Fig8Point
	for i, rate := range Fig8Rates {
		victim, err := env.Stochastic(rate, uint64(0xF80+i))
		if err != nil {
			return nil, nil, err
		}
		acc := hmd.Evaluate(victim, test).Accuracy()

		proxy, err := attack.ReverseEngineer(victim, env.AttackerTrain(), attack.REConfig{
			Kind:   attack.ProxyMLP,
			Epochs: env.Scale.ProxyEpochs,
			Seed:   rng.DeriveSeed(env.Scale.Seed, 0xF8, uint64(env.Rotation), uint64(i)),
		})
		if err != nil {
			return nil, nil, err
		}
		eff, err := attack.Effectiveness(proxy, victim, test)
		if err != nil {
			return nil, nil, err
		}

		results, err := attack.EvadeAll(proxy, targets, attack.EvasionConfig{})
		if err != nil {
			return nil, nil, err
		}
		robust := 1.0
		if len(results) > 0 {
			trans, err := attack.Transferability(results, victim)
			if err != nil {
				return nil, nil, err
			}
			robust = 1 - trans
		}

		p := Fig8Point{ErrorRate: rate, Accuracy: acc, TransferRobust: robust, RERobust: 1 - eff}
		out = append(out, p)
		t.AddRow(fmt.Sprintf("%.2f", rate), pct(p.Accuracy), pct(p.TransferRobust), pct(p.RERobust))
	}
	return out, t, nil
}
