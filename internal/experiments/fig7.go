package experiments

import (
	"fmt"

	"shmd/internal/power"
)

// Fig7Voltages is the paper's sweep: nominal 1.18 V down to 0.68 V in
// 0.1 V steps.
var Fig7Voltages = []float64{1.18, 1.08, 0.98, 0.88, 0.78, 0.68}

// Fig7 computes the power-savings curves of Fig 7 with the reference
// detector's MAC count.
func Fig7(env *Env) ([]power.Fig7Point, *Table, error) {
	cpu, lat := power.DefaultCPU(), power.DefaultLatency()
	macs := env.Base.Fixed().NumMuls()
	points, err := power.Fig7Sweep(cpu, lat, macs, Fig7Voltages)
	if err != nil {
		return nil, nil, err
	}
	t := &Table{
		Title:   "Fig 7 — power savings of Stochastic-HMD",
		Headers: []string{"supply voltage (V)", "savings over baseline HMD", "savings over RHMD", "power (W)"},
		Notes: []string{
			fmt.Sprintf("detector inference: %d MACs", macs),
			"undervolting leaves inference time unchanged (voltage-only scaling)",
		},
	}
	for _, p := range points {
		t.AddRow(fmt.Sprintf("%.2f", p.SupplyV), pct(p.SavingsVsBase), pct(p.SavingsVsRHMD),
			fmt.Sprintf("%.2f", p.StochasticPowerW))
	}
	return points, t, nil
}
