package experiments

import "testing"

func TestAblationFaultDistribution(t *testing.T) {
	skipCampaign(t)
	env := quickEnv(t)
	rows, tab, err := AblationFaultDistribution(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The measured shape is gentler than uniform flips at every rate.
	if rows[0].Accuracy <= rows[2].Accuracy {
		t.Errorf("Fig-1 shape at er=0.1 (%v) should beat uniform (%v)",
			rows[0].Accuracy, rows[2].Accuracy)
	}
	if rows[1].Accuracy <= rows[3].Accuracy {
		t.Errorf("Fig-1 shape at er=0.5 (%v) should beat uniform (%v)",
			rows[1].Accuracy, rows[3].Accuracy)
	}
	if len(tab.Rows) != 4 {
		t.Error("table rows mismatch")
	}
}

func TestAblationDeterministicAC(t *testing.T) {
	env := quickEnv(t)
	rows, tab, err := AblationDeterministicAC(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	stoch, det := rows[0], rows[1]
	if stoch.ScoreStd <= 0 {
		t.Error("stochastic detector must vary run to run")
	}
	if det.ScoreStd != 0 {
		t.Errorf("deterministic approximation varied: std %v", det.ScoreStd)
	}
	if det.Accuracy < 0.6 {
		t.Errorf("truncation destroyed the detector: %v", det.Accuracy)
	}
	if len(tab.Rows) != 2 {
		t.Error("table rows mismatch")
	}
}

func TestAblationPersistence(t *testing.T) {
	skipCampaign(t)
	env := quickEnv(t)
	rows, tab, err := AblationPersistence(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Detection is monotone non-decreasing in the classification count.
	for i := 1; i < len(rows); i++ {
		if rows[i].Detected < rows[i-1].Detected-1e-9 {
			t.Errorf("detection decreased from %d to %d runs: %v -> %v",
				rows[i-1].Runs, rows[i].Runs, rows[i-1].Detected, rows[i].Detected)
		}
	}
	if rows[len(rows)-1].Detected < rows[0].Detected {
		t.Error("persistence must not hurt")
	}
	if len(tab.Rows) != 5 {
		t.Error("table rows mismatch")
	}
}

func TestAblationAdaptiveAttacker(t *testing.T) {
	skipCampaign(t)
	env := quickEnv(t)
	rows, tab, err := AblationAdaptiveAttacker(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		t.Logf("queries=%d eff=%.3f caught=%.3f", r.QueryRepeats, r.Effectiveness, r.Caught)
	}
	// Label averaging should not make reverse-engineering *worse*; we
	// allow small sampling jitter but expect a non-trivial recovery
	// from 1 to 15 queries per program.
	if rows[2].Effectiveness < rows[0].Effectiveness-0.03 {
		t.Errorf("15-query effectiveness %v fell below 1-query %v",
			rows[2].Effectiveness, rows[0].Effectiveness)
	}
	// Even the strongest adaptive proxy faces the detection-time
	// moving target: caught rate stays well above zero.
	if rows[2].Caught < 0.2 {
		t.Errorf("adaptive attacker fully defeated the defense: caught = %v", rows[2].Caught)
	}
	if len(tab.Rows) != 3 {
		t.Error("table rows mismatch")
	}
}

func TestAblationEvasionMargin(t *testing.T) {
	skipCampaign(t)
	env := quickEnv(t)
	rows, tab, err := AblationEvasionMargin(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		t.Logf("margin %.2f: evade baseline %.3f, caught by stochastic %.3f",
			r.Margin, r.BaselineEvaded, r.StochasticCaught)
		if r.BaselineEvaded < 0 || r.BaselineEvaded > 1 ||
			r.StochasticCaught < 0 || r.StochasticCaught > 1 {
			t.Errorf("rates out of range: %+v", r)
		}
	}
	if len(tab.Rows) != 4 {
		t.Error("table rows mismatch")
	}
}
