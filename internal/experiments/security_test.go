package experiments

import (
	"testing"
)

// The heavier security experiments (full attack campaigns) get their
// own test functions so -run can select them independently.

func TestFig4(t *testing.T) {
	skipCampaign(t)
	rows, tab := fig4Results(t)
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for _, r := range rows {
		t.Logf("Fig4 %v/%s: baseline %.3f (n=%d) stochastic %.3f (n=%d)",
			r.Cell.Kind, r.Cell.dataName(), r.Baseline, r.BaselineSamples,
			r.Stochastic, r.StochasticSamples)
		if r.Baseline < 0 || r.Baseline > 1 || r.Stochastic < 0 || r.Stochastic > 1 {
			t.Errorf("transferability out of range: %+v", r)
		}
	}
	// Headline shape: in at least one MLP cell the stochastic victim
	// resists transfer better than the baseline. (At quick scale
	// individual cells are noisy; the full-scale run in EXPERIMENTS.md
	// shows the gap across all six.)
	gap := false
	for _, r := range rows[:2] {
		if r.BaselineSamples > 0 && r.StochasticSamples > 0 && r.Stochastic < r.Baseline {
			gap = true
		}
	}
	if !gap {
		t.Error("no MLP cell showed the stochastic victim resisting transfer")
	}
	if len(tab.Rows) != 6 {
		t.Error("table rows mismatch")
	}
}

func TestFig5And6(t *testing.T) {
	skipCampaign(t)
	rows, fig5, fig6 := fig56Results(t)
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 4 RHMDs + Stochastic-HMD", len(rows))
	}
	for _, r := range rows {
		t.Logf("Fig5/6 %s: evasive detected %.3f (n=%d), accuracy %.3f",
			r.Name, r.EvasiveDetected, r.Samples, r.Accuracy)
		if r.EvasiveDetected < 0 || r.EvasiveDetected > 1 {
			t.Errorf("%s detection out of range", r.Name)
		}
		if r.Accuracy < 0.6 {
			t.Errorf("%s accuracy = %v, degenerate detector", r.Name, r.Accuracy)
		}
	}
	st := rows[4]
	if st.Name != "Stochastic-HMD" {
		t.Fatalf("last row = %s", st.Name)
	}
	// Fig 6 shape: Stochastic-HMD stays within a few points of the
	// best RHMD construction.
	best := 0.0
	for _, r := range rows[:4] {
		if r.Accuracy > best {
			best = r.Accuracy
		}
	}
	if best-st.Accuracy > 0.08 {
		t.Errorf("Stochastic-HMD accuracy %v too far below best RHMD %v", st.Accuracy, best)
	}
	if len(fig5.Rows) != 5 || len(fig6.Rows) != 5 {
		t.Error("table rows mismatch")
	}
}

func TestFig8(t *testing.T) {
	skipCampaign(t)
	env := quickEnv(t)
	// A reduced rate axis keeps the quick run fast while preserving
	// the regions the figure annotates (area 1 vs area 2).
	saved := Fig8Rates
	Fig8Rates = []float64{0, 0.1, 0.5}
	defer func() { Fig8Rates = saved }()

	points, tab, err := Fig8(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		t.Logf("Fig8 er=%.2f acc=%.3f transferRobust=%.3f reRobust=%.3f",
			p.ErrorRate, p.Accuracy, p.TransferRobust, p.RERobust)
	}
	// RE robustness grows with the error rate.
	if points[2].RERobust <= points[0].RERobust {
		t.Errorf("RE robustness must grow with er: %v vs %v",
			points[2].RERobust, points[0].RERobust)
	}
	// At er=0.1 (area 1) accuracy stays close to the baseline while
	// transferability robustness is already high.
	if points[1].Accuracy < points[0].Accuracy-0.05 {
		t.Errorf("area-1 accuracy dropped too much: %v vs %v",
			points[1].Accuracy, points[0].Accuracy)
	}
	if len(tab.Rows) != 3 {
		t.Error("table rows mismatch")
	}
}
