package tenant

import (
	"context"
	"errors"
	"sync"
)

// ErrQueueFull is returned by Gate.Acquire when the bounded wait
// queue is at capacity — the caller sheds with 429 exactly like the
// flat admission queue did.
var ErrQueueFull = errors.New("tenant: admission queue full")

// Gate is a class-aware admission semaphore: free capacity is granted
// immediately, and under saturation a released unit wakes the
// highest-priority waiter first (FIFO within a class). It sits
// between tenant admission and the slot pool so that when the pool
// saturates, realtime lanes dequeue ahead of batch — the fairness
// property the admission tests pin without a clock.
type Gate struct {
	mu       sync.Mutex
	capacity int
	maxWait  int
	inUse    int
	waiting  int
	// waiters holds per-class FIFO queues; each waiter owns a
	// 1-buffered channel that receives the granted unit.
	waiters [NumClasses][]chan struct{}
}

// NewGate builds a gate over capacity units with at most maxWait
// queued waiters (maxWait <= 0 means unbounded).
func NewGate(capacity, maxWait int) *Gate {
	if capacity < 1 {
		capacity = 1
	}
	return &Gate{capacity: capacity, maxWait: maxWait}
}

// TryAcquire grants a unit only if capacity is free right now.
func (g *Gate) TryAcquire() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.inUse < g.capacity {
		g.inUse++
		return true
	}
	return false
}

// Acquire grants a unit, waiting in c's FIFO lane under saturation.
// Returns ErrQueueFull when the wait queue is at its bound, or the
// context error if ctx ends first.
func (g *Gate) Acquire(ctx context.Context, c Class) error {
	g.mu.Lock()
	if g.inUse < g.capacity {
		g.inUse++
		g.mu.Unlock()
		return nil
	}
	if g.maxWait > 0 && g.waiting >= g.maxWait {
		g.mu.Unlock()
		return ErrQueueFull
	}
	ch := make(chan struct{}, 1)
	g.waiters[c] = append(g.waiters[c], ch)
	g.waiting++
	g.mu.Unlock()

	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		g.mu.Lock()
		for i, w := range g.waiters[c] {
			if w == ch {
				g.waiters[c] = append(g.waiters[c][:i], g.waiters[c][i+1:]...)
				g.waiting--
				g.mu.Unlock()
				return ctx.Err()
			}
		}
		g.mu.Unlock()
		// The grant raced the cancellation and is already in ch: we
		// own a unit we no longer want — hand it on.
		<-ch
		g.Release()
		return ctx.Err()
	}
}

// Release returns one unit, waking the highest-priority waiter if any
// (the unit transfers; inUse is unchanged in that case).
func (g *Gate) Release() {
	g.mu.Lock()
	defer g.mu.Unlock()
	for c := int(NumClasses) - 1; c >= 0; c-- {
		if q := g.waiters[c]; len(q) > 0 {
			ch := q[0]
			g.waiters[c] = q[1:]
			g.waiting--
			ch <- struct{}{}
			return
		}
	}
	if g.inUse > 0 {
		g.inUse--
	}
}

// Load is the admission pressure signal the shaping rules consume:
// (in-use + waiting) / capacity. > 1 means a queue has formed.
func (g *Gate) Load() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return float64(g.inUse+g.waiting) / float64(g.capacity)
}

// Waiting reports the queued waiters in class c (tests use it to
// sequence saturation deterministically).
func (g *Gate) Waiting(c Class) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.waiters[c])
}

// InUse reports the granted units.
func (g *Gate) InUse() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inUse
}
