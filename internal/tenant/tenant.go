// Package tenant is the multi-tenant QoS layer for the serving tier:
// a registry of tenants with priority classes, deterministic token
// buckets, per-tenant concurrency caps, rule-matched progressive
// degradation under load, and a priority-aware admission gate.
//
// The design splits admission into two questions asked in order:
//
//  1. May this tenant send this request now? The Registry answers
//     with a token-bucket draw (sustained Rate, capacity Burst),
//     a concurrency cap, and the load-shaping rules — all
//     deterministic given an injected clock, so isolation properties
//     are assertable in tests without sleeping.
//  2. When may the request run? The Gate answers: a class-aware
//     semaphore in front of the slot pool that always grants free
//     capacity immediately but, under saturation, wakes waiters
//     highest-priority-first (realtime before standard before batch).
//
// Degradation is progressive, borrowing the chaos package's
// rule-matched injector idiom: shaping Rules fire by priority class
// as the admission load crosses their thresholds, with breaker-style
// hysteresis so the system does not flap at a boundary — first batch
// traffic is throttled (its bucket drains twice as fast), then batch
// is shed outright, then standard too; realtime is only ever refused
// by its own bucket or the hard queue bound.
package tenant

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Class is a tenant's priority class. Higher values dequeue first at
// the Gate; the zero value is the lowest priority so an unspecified
// class never outranks a configured one.
type Class uint8

const (
	// Batch is best-effort traffic: first throttled, first shed.
	Batch Class = iota
	// Standard is the default interactive class.
	Standard
	// Realtime is latency-critical traffic: dequeues first, shed only
	// by its own quota or a full queue.
	Realtime
	// NumClasses sizes per-class arrays.
	NumClasses = 3
)

// String names the class (the metrics label and wire advisory value).
func (c Class) String() string {
	switch c {
	case Batch:
		return "batch"
	case Standard:
		return "standard"
	case Realtime:
		return "realtime"
	default:
		return fmt.Sprintf("tenant.Class(%d)", uint8(c))
	}
}

// ParseClass parses a class name as it appears in config and wire
// metadata.
func ParseClass(s string) (Class, error) {
	switch s {
	case "batch":
		return Batch, nil
	case "standard":
		return Standard, nil
	case "realtime":
		return Realtime, nil
	default:
		return Standard, fmt.Errorf("tenant: unknown class %q (want realtime, standard, or batch)", s)
	}
}

// ClassMask selects classes for a shaping rule. The zero mask matches
// every class.
type ClassMask uint8

// MaskOf builds a mask matching exactly the given classes.
func MaskOf(classes ...Class) ClassMask {
	var m ClassMask
	for _, c := range classes {
		m |= 1 << c
	}
	return m
}

// Has reports whether the mask matches c (zero mask matches all).
func (m ClassMask) Has(c Class) bool {
	return m == 0 || m&(1<<c) != 0
}

// Spec configures one tenant.
type Spec struct {
	// ID is the tenant identity as it appears in the X-Tenant header
	// and wire metadata/tags.
	ID string
	// Class is the tenant's priority class.
	Class Class
	// Rate is the sustained admission rate in requests per second.
	// <= 0 means unlimited (no bucket).
	Rate float64
	// Burst is the bucket capacity; <= 0 defaults to max(1, Rate).
	Burst float64
	// MaxInFlight caps the tenant's concurrently admitted requests;
	// <= 0 means uncapped.
	MaxInFlight int
	// Stride is the tenant's default sliding-window re-detection
	// stride for wire streams, in windows; <= 0 selects the server
	// default (the model's detection period).
	Stride int
}

// burst returns the effective bucket capacity.
func (s Spec) burst() float64 {
	if s.Burst > 0 {
		return s.Burst
	}
	return math.Max(1, s.Rate)
}

// ParseSpec parses the CLI form "id:class[:rate[:burst[:conc[:stride]]]]",
// e.g. "acme:realtime:200:400:16:4". Empty positions keep defaults.
func ParseSpec(s string) (Spec, error) {
	parts := strings.Split(s, ":")
	if len(parts) < 2 || parts[0] == "" {
		return Spec{}, fmt.Errorf("tenant: spec %q: want id:class[:rate[:burst[:conc[:stride]]]]", s)
	}
	spec := Spec{ID: parts[0]}
	var err error
	if spec.Class, err = ParseClass(parts[1]); err != nil {
		return Spec{}, fmt.Errorf("tenant: spec %q: %w", s, err)
	}
	num := func(i int, what string, dst *float64) error {
		if len(parts) <= i || parts[i] == "" {
			return nil
		}
		v, err := strconv.ParseFloat(parts[i], 64)
		if err != nil {
			return fmt.Errorf("tenant: spec %q: bad %s %q", s, what, parts[i])
		}
		*dst = v
		return nil
	}
	if err := num(2, "rate", &spec.Rate); err != nil {
		return Spec{}, err
	}
	if err := num(3, "burst", &spec.Burst); err != nil {
		return Spec{}, err
	}
	var conc, stride float64
	if err := num(4, "concurrency cap", &conc); err != nil {
		return Spec{}, err
	}
	if err := num(5, "stride", &stride); err != nil {
		return Spec{}, err
	}
	spec.MaxInFlight = int(conc)
	spec.Stride = int(stride)
	return spec, nil
}

// Config configures a Registry.
type Config struct {
	// Tenants are the statically registered tenants.
	Tenants []Spec
	// Default, when non-nil, is the spec template auto-registered for
	// tenant IDs the registry has not seen (its ID field is ignored).
	// Nil makes unknown tenants a hard reject (HTTP 403).
	Default *Spec
	// Anonymous, when non-nil, is the spec that accounts requests
	// carrying no tenant identity (registered under the ID
	// "anonymous"). Nil rejects unidentified requests.
	Anonymous *Spec
	// Rules are the progressive-degradation shaping rules; nil
	// selects DefaultRules.
	Rules []Rule
	// Hysteresis is how far load must fall below a rule's threshold
	// before the rule disengages; <= 0 defaults to 0.15.
	Hysteresis float64
	// Now is the clock; nil selects time.Now. Tests inject a virtual
	// clock to make bucket refill deterministic.
	Now func() time.Time
}

// AnonymousID is the accounting label for requests with no identity.
const AnonymousID = "anonymous"

// Outcome classifies one admission attempt.
type Outcome uint8

const (
	// Admitted: the request may proceed to the Gate.
	Admitted Outcome = iota
	// ShedRate: the tenant's token bucket is empty (429).
	ShedRate
	// ShedConcurrency: the tenant's in-flight cap is reached (429).
	ShedConcurrency
	// ShedPressure: a shaping rule shed this class under load (429).
	ShedPressure
	// Unknown: the tenant is not registered and no Default spec
	// exists (403).
	Unknown
)

// String names the outcome (the shed-reason metrics label).
func (o Outcome) String() string {
	switch o {
	case Admitted:
		return "admitted"
	case ShedRate:
		return "rate"
	case ShedConcurrency:
		return "concurrency"
	case ShedPressure:
		return "pressure"
	case Unknown:
		return "unknown"
	default:
		return fmt.Sprintf("tenant.Outcome(%d)", uint8(o))
	}
}

// Admission is the result of Registry.Admit. When OK, the caller owns
// one unit of the tenant's in-flight budget and must Release it.
type Admission struct {
	// Tenant is the resolved accounting identity (AnonymousID when the
	// request carried none).
	Tenant string
	// Class is the tenant's authoritative priority class.
	Class Class
	// Stride is the tenant's sliding-window stride default.
	Stride int
	// Outcome classifies the decision; OK() is Outcome == Admitted.
	Outcome Outcome

	release func()
	once    sync.Once
}

// OK reports whether the request was admitted.
func (a *Admission) OK() bool { return a.Outcome == Admitted }

// Release returns the tenant's in-flight unit. Safe to call more than
// once and on rejected admissions.
func (a *Admission) Release() {
	if a.release != nil {
		a.once.Do(a.release)
	}
}

// state is one tenant's live accounting.
type state struct {
	spec     Spec
	tokens   float64
	last     time.Time
	inflight int
}

// Registry tracks tenants and answers admission questions. Safe for
// concurrent use; all time flows through the injected clock so the
// bucket math is deterministic under test.
type Registry struct {
	mu      sync.Mutex
	now     func() time.Time
	def     *Spec
	anon    *Spec
	shaper  *Shaper
	tenants map[string]*state
}

// NewRegistry builds a Registry from cfg.
func NewRegistry(cfg Config) (*Registry, error) {
	r := &Registry{
		now:     cfg.Now,
		def:     cfg.Default,
		anon:    cfg.Anonymous,
		shaper:  NewShaper(cfg.Rules, cfg.Hysteresis),
		tenants: make(map[string]*state, len(cfg.Tenants)),
	}
	if r.now == nil {
		r.now = time.Now
	}
	for _, spec := range cfg.Tenants {
		if spec.ID == "" {
			return nil, fmt.Errorf("tenant: registered spec with empty id")
		}
		if _, dup := r.tenants[spec.ID]; dup {
			return nil, fmt.Errorf("tenant: duplicate spec for %q", spec.ID)
		}
		r.tenants[spec.ID] = &state{spec: spec, tokens: spec.burst(), last: r.now()}
	}
	return r, nil
}

// resolve returns the tenant's state, auto-registering from the
// Default/Anonymous templates when allowed. Callers hold r.mu.
func (r *Registry) resolve(id string) *state {
	if id == "" {
		if r.anon == nil {
			return nil
		}
		id = AnonymousID
		if st, ok := r.tenants[id]; ok {
			return st
		}
		spec := *r.anon
		spec.ID = id
		st := &state{spec: spec, tokens: spec.burst(), last: r.now()}
		r.tenants[id] = st
		return st
	}
	if st, ok := r.tenants[id]; ok {
		return st
	}
	if r.def == nil {
		return nil
	}
	spec := *r.def
	spec.ID = id
	st := &state{spec: spec, tokens: spec.burst(), last: r.now()}
	r.tenants[id] = st
	return st
}

// Lookup resolves id without charging anything: the tenant's class
// and stride config, or Unknown. It auto-registers like Admit so a
// stream open and its appends agree on config.
func (r *Registry) Lookup(id string) *Admission {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.resolve(id)
	if st == nil {
		return &Admission{Tenant: labelFor(id), Outcome: Unknown}
	}
	return &Admission{Tenant: st.spec.ID, Class: st.spec.Class, Stride: st.spec.Stride, Outcome: Admitted}
}

// labelFor is the accounting label for an unresolvable identity.
func labelFor(id string) string {
	if id == "" {
		return AnonymousID
	}
	return id
}

// Admit runs the full tenant-QoS decision for one request: shaping
// rules at the given admission load (0..1+), then the token bucket,
// then the concurrency cap. On success the returned Admission holds
// one in-flight unit until Release.
func (r *Registry) Admit(id string, load float64) *Admission {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.resolve(id)
	if st == nil {
		return &Admission{Tenant: labelFor(id), Outcome: Unknown}
	}
	adm := &Admission{Tenant: st.spec.ID, Class: st.spec.Class, Stride: st.spec.Stride}

	// Progressive degradation first: a shed class does not drain its
	// bucket (the tenant is not misbehaving — the server is loaded).
	action := r.shaper.Shape(st.spec.Class, load)
	if action == ActionShed {
		adm.Outcome = ShedPressure
		return adm
	}

	// Token bucket, charged before the concurrency check so an
	// over-cap burst still spends quota (holding a request open is
	// not a way to bank tokens).
	if st.spec.Rate > 0 {
		now := r.now()
		if dt := now.Sub(st.last).Seconds(); dt > 0 {
			st.tokens = math.Min(st.spec.burst(), st.tokens+dt*st.spec.Rate)
		}
		st.last = now
		cost := 1.0
		if action == ActionThrottle {
			// Throttled classes drain double: half the sustained rate
			// without a hard cliff.
			cost = 2.0
		}
		if st.tokens < cost {
			adm.Outcome = ShedRate
			return adm
		}
		st.tokens -= cost
	}

	if st.spec.MaxInFlight > 0 && st.inflight >= st.spec.MaxInFlight {
		adm.Outcome = ShedConcurrency
		return adm
	}
	st.inflight++
	adm.release = func() {
		r.mu.Lock()
		st.inflight--
		r.mu.Unlock()
	}
	return adm
}

// InFlight reports a tenant's live admitted count (0 for unknown).
func (r *Registry) InFlight(id string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if st, ok := r.tenants[labelFor(id)]; ok {
		return st.inflight
	}
	return 0
}
