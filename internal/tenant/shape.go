package tenant

// Rule-matched progressive degradation, in the same idiom as the
// chaos package's fault injectors: an ordered rule table where each
// rule names the classes it shapes, the load threshold that arms it,
// and the action it takes. Rules latch breaker-style — a rule that
// engaged at MinLoad stays engaged until load falls a hysteresis
// margin below it — so the system steps down (and back up) through
// degradation levels instead of flapping at a threshold.

// Action is what an engaged shaping rule does to a matching request.
type Action uint8

const (
	// ActionAllow is the no-op action (no engaged rule matched).
	ActionAllow Action = iota
	// ActionThrottle doubles the request's token cost, halving the
	// class's sustained rate without a hard cliff.
	ActionThrottle
	// ActionShed rejects the request with 429 + jittered Retry-After.
	ActionShed
)

// String names the action for logs and reports.
func (a Action) String() string {
	switch a {
	case ActionAllow:
		return "allow"
	case ActionThrottle:
		return "throttle"
	case ActionShed:
		return "shed"
	default:
		return "tenant.Action(?)"
	}
}

// Rule is one shaping rule.
type Rule struct {
	// Classes the rule shapes; the zero mask matches every class.
	Classes ClassMask
	// MinLoad is the admission load (0..1+) at which the rule engages.
	MinLoad float64
	// Action applies to matching requests while the rule is engaged.
	Action Action
}

// DefaultRules is the stock degradation ladder: batch throttles at
// 75% admission load, sheds at 90%, and standard joins the shed at
// 97% — realtime is never load-shed, only quota-limited.
var DefaultRules = []Rule{
	{Classes: MaskOf(Batch), MinLoad: 0.75, Action: ActionThrottle},
	{Classes: MaskOf(Batch), MinLoad: 0.90, Action: ActionShed},
	{Classes: MaskOf(Batch, Standard), MinLoad: 0.97, Action: ActionShed},
}

// DefaultHysteresis is how far load must drop below MinLoad before an
// engaged rule releases.
const DefaultHysteresis = 0.15

// Shaper evaluates shaping rules with per-rule latched state. Not
// safe for concurrent use on its own; the Registry serializes calls
// under its lock.
type Shaper struct {
	rules      []Rule
	engaged    []bool
	hysteresis float64
}

// NewShaper builds a Shaper; nil rules selects DefaultRules,
// hysteresis <= 0 selects DefaultHysteresis.
func NewShaper(rules []Rule, hysteresis float64) *Shaper {
	if rules == nil {
		rules = DefaultRules
	}
	if hysteresis <= 0 {
		hysteresis = DefaultHysteresis
	}
	return &Shaper{rules: rules, engaged: make([]bool, len(rules)), hysteresis: hysteresis}
}

// Shape updates every rule's engaged state against the current load
// and returns the strongest action an engaged rule takes on class c.
func (s *Shaper) Shape(c Class, load float64) Action {
	out := ActionAllow
	for i, r := range s.rules {
		if s.engaged[i] {
			if load < r.MinLoad-s.hysteresis {
				s.engaged[i] = false
			}
		} else if load >= r.MinLoad {
			s.engaged[i] = true
		}
		if s.engaged[i] && r.Classes.Has(c) && r.Action > out {
			out = r.Action
		}
	}
	return out
}

// Engaged reports how many rules are currently latched (for health
// reports and soak assertions).
func (s *Shaper) Engaged() int {
	n := 0
	for _, e := range s.engaged {
		if e {
			n++
		}
	}
	return n
}

// ShaperState exposes the registry's shaper for introspection.
func (r *Registry) ShaperState() (engaged int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.shaper.Engaged()
}
