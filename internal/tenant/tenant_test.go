package tenant

import (
	"context"
	"runtime"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock: bucket refill becomes pure
// arithmetic, so every quota assertion below is exact.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func reg(t *testing.T, cfg Config) *Registry {
	t.Helper()
	r, err := NewRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestTokenBucketDeterministic(t *testing.T) {
	clk := newFakeClock()
	r := reg(t, Config{
		Tenants: []Spec{{ID: "acme", Class: Standard, Rate: 2, Burst: 4}},
		Now:     clk.now,
	})
	// The bucket starts full: exactly Burst admissions succeed.
	for i := 0; i < 4; i++ {
		a := r.Admit("acme", 0)
		if !a.OK() {
			t.Fatalf("admission %d: %v", i, a.Outcome)
		}
		a.Release()
	}
	if a := r.Admit("acme", 0); a.Outcome != ShedRate {
		t.Fatalf("drained bucket admitted: %v", a.Outcome)
	}
	// 1.5s at 2 tokens/s refills exactly 3.
	clk.advance(1500 * time.Millisecond)
	for i := 0; i < 3; i++ {
		if a := r.Admit("acme", 0); !a.OK() {
			t.Fatalf("refill admission %d: %v", i, a.Outcome)
		}
	}
	if a := r.Admit("acme", 0); a.Outcome != ShedRate {
		t.Fatalf("over-refill admitted: %v", a.Outcome)
	}
	// Refill caps at Burst no matter how long the idle gap.
	clk.advance(time.Hour)
	admitted := 0
	for {
		a := r.Admit("acme", 0)
		if !a.OK() {
			break
		}
		admitted++
		if admitted > 10 {
			t.Fatal("bucket refilled past burst")
		}
	}
	if admitted != 4 {
		t.Fatalf("after idle gap admitted %d, want burst 4", admitted)
	}
}

func TestConcurrencyCap(t *testing.T) {
	r := reg(t, Config{Tenants: []Spec{{ID: "acme", Class: Realtime, MaxInFlight: 2}}})
	a1, a2 := r.Admit("acme", 0), r.Admit("acme", 0)
	if !a1.OK() || !a2.OK() {
		t.Fatalf("under-cap admissions failed: %v %v", a1.Outcome, a2.Outcome)
	}
	if a := r.Admit("acme", 0); a.Outcome != ShedConcurrency {
		t.Fatalf("over-cap admitted: %v", a.Outcome)
	}
	a1.Release()
	a1.Release() // idempotent
	if a := r.Admit("acme", 0); !a.OK() {
		t.Fatalf("post-release admission failed: %v", a.Outcome)
	}
	if got := r.InFlight("acme"); got != 2 {
		t.Fatalf("inflight = %d, want 2", got)
	}
}

func TestUnknownAndDefaultTenants(t *testing.T) {
	// Strict registry: unknown identity and anonymous traffic reject.
	strict := reg(t, Config{Tenants: []Spec{{ID: "acme", Class: Standard}}})
	if a := strict.Admit("ghost", 0); a.Outcome != Unknown {
		t.Fatalf("unknown tenant: %v", a.Outcome)
	}
	if a := strict.Admit("", 0); a.Outcome != Unknown || a.Tenant != AnonymousID {
		t.Fatalf("anonymous on strict registry: %+v", a)
	}
	// Open registry: unknown IDs register from the Default template,
	// each with its own bucket.
	open := reg(t, Config{
		Default:   &Spec{Class: Batch, Rate: 1, Burst: 1},
		Anonymous: &Spec{Class: Batch, Rate: 1, Burst: 2},
	})
	if a := open.Admit("fresh", 0); !a.OK() || a.Class != Batch || a.Tenant != "fresh" {
		t.Fatalf("defaulted tenant: %+v", a)
	}
	if a := open.Admit("fresh", 0); a.Outcome != ShedRate {
		t.Fatalf("defaulted tenant second draw: %v", a.Outcome)
	}
	if a := open.Admit("other", 0); !a.OK() {
		t.Fatalf("separate defaulted tenant shares a bucket: %v", a.Outcome)
	}
	if a := open.Admit("", 0); !a.OK() || a.Tenant != AnonymousID {
		t.Fatalf("anonymous on open registry: %+v", a)
	}
}

// TestShaperLadder walks the default degradation ladder up and down
// and pins the breaker-style hysteresis: each rule engages at its
// threshold and releases only a margin below it.
func TestShaperLadder(t *testing.T) {
	s := NewShaper(nil, 0)
	steps := []struct {
		load     float64
		batch    Action
		standard Action
		realtime Action
	}{
		{0.10, ActionAllow, ActionAllow, ActionAllow},
		{0.80, ActionThrottle, ActionAllow, ActionAllow},
		{0.92, ActionShed, ActionAllow, ActionAllow},
		{0.98, ActionShed, ActionShed, ActionAllow},
		// Hysteresis: 0.85 is below both shed thresholds but above
		// their release points (0.90-0.15 and 0.97-0.15), so both
		// sheds stay latched.
		{0.85, ActionShed, ActionShed, ActionAllow},
		// 0.80 < 0.82 releases the standard shed; batch shed (0.90)
		// needs < 0.75 so it stays; batch throttle stays engaged.
		{0.80, ActionShed, ActionAllow, ActionAllow},
		{0.70, ActionThrottle, ActionAllow, ActionAllow},
		// Batch shed releases below 0.75; throttle needs < 0.60.
		{0.55, ActionAllow, ActionAllow, ActionAllow},
	}
	for i, st := range steps {
		if got := s.Shape(Batch, st.load); got != st.batch {
			t.Fatalf("step %d load %.2f: batch %v, want %v", i, st.load, got, st.batch)
		}
		if got := s.Shape(Standard, st.load); got != st.standard {
			t.Fatalf("step %d load %.2f: standard %v, want %v", i, st.load, got, st.standard)
		}
		if got := s.Shape(Realtime, st.load); got != st.realtime {
			t.Fatalf("step %d load %.2f: realtime %v, want %v", i, st.load, got, st.realtime)
		}
	}
}

// TestShedPressureDoesNotDrainBucket: a load-shed request must not
// spend the tenant's tokens — the server is loaded, not the tenant.
func TestShedPressureDoesNotDrainBucket(t *testing.T) {
	r := reg(t, Config{Tenants: []Spec{{ID: "b", Class: Batch, Rate: 1, Burst: 1}}})
	if a := r.Admit("b", 0.95); a.Outcome != ShedPressure {
		t.Fatalf("batch at 0.95 load: %v", a.Outcome)
	}
	if a := r.Admit("b", 0); !a.OK() {
		t.Fatalf("bucket drained by a pressure shed: %v", a.Outcome)
	}
}

// TestThrottleDoublesCost: an engaged throttle rule halves the
// sustained rate by charging two tokens per admission.
func TestThrottleDoublesCost(t *testing.T) {
	r := reg(t, Config{Tenants: []Spec{{ID: "b", Class: Batch, Rate: 1, Burst: 4}}})
	// Load 0.80 engages the batch throttle rule: 4 tokens = 2 admissions.
	for i := 0; i < 2; i++ {
		if a := r.Admit("b", 0.80); !a.OK() {
			t.Fatalf("throttled admission %d: %v", i, a.Outcome)
		}
	}
	if a := r.Admit("b", 0.80); a.Outcome != ShedRate {
		t.Fatalf("throttled bucket should be dry: %v", a.Outcome)
	}
}

// TestGatePriorityFairness is the deterministic no-clock fairness
// proof (same idiom as the batcher shed test: the test owns every
// unit, nothing sleeps): under saturation, a realtime waiter enqueued
// AFTER a batch waiter still dequeues first, and FIFO order holds
// within a class.
func TestGatePriorityFairness(t *testing.T) {
	g := NewGate(2, 0)
	// Saturate the gate: the test owns both units.
	if !g.TryAcquire() || !g.TryAcquire() {
		t.Fatal("could not saturate gate")
	}
	if g.TryAcquire() {
		t.Fatal("saturated gate granted a third unit")
	}

	order := make(chan string, 4)
	wait := func(name string, c Class) {
		go func() {
			if err := g.Acquire(context.Background(), c); err != nil {
				t.Errorf("%s: %v", name, err)
				return
			}
			order <- name
		}()
	}
	await := func(c Class, n int) {
		deadline := time.Now().Add(5 * time.Second)
		for g.Waiting(c) != n && time.Now().Before(deadline) {
			runtime.Gosched()
		}
		if got := g.Waiting(c); got != n {
			t.Fatalf("class %v waiting = %d, want %d", c, got, n)
		}
	}

	// Enqueue batch first, then standard, then two realtime waiters —
	// strictly sequenced via Waiting so arrival order is fixed.
	wait("batch-0", Batch)
	await(Batch, 1)
	wait("standard-0", Standard)
	await(Standard, 1)
	wait("realtime-0", Realtime)
	await(Realtime, 1)
	wait("realtime-1", Realtime)
	await(Realtime, 2)

	// Each release must wake exactly the highest-priority head:
	// realtime FIFO first, then standard, then batch.
	want := []string{"realtime-0", "realtime-1", "standard-0", "batch-0"}
	for _, name := range want {
		g.Release()
		if got := <-order; got != name {
			t.Fatalf("dequeue order: got %s, want %s", got, name)
		}
	}
	select {
	case extra := <-order:
		t.Fatalf("unexpected extra grant: %s", extra)
	default:
	}
}

func TestGateBoundsAndCancel(t *testing.T) {
	g := NewGate(1, 1)
	if !g.TryAcquire() {
		t.Fatal("fresh gate refused")
	}
	// One waiter fits.
	done := make(chan error, 1)
	go func() { done <- g.Acquire(context.Background(), Standard) }()
	deadline := time.Now().Add(5 * time.Second)
	for g.Waiting(Standard) != 1 && time.Now().Before(deadline) {
		runtime.Gosched()
	}
	// The second exceeds maxWait and sheds immediately.
	if err := g.Acquire(context.Background(), Batch); err != ErrQueueFull {
		t.Fatalf("over-bound acquire: %v, want ErrQueueFull", err)
	}
	// A cancelled waiter leaves the queue (unbounded gate, so the
	// wait-queue bound cannot mask the context error).
	g2 := NewGate(1, 0)
	if !g2.TryAcquire() {
		t.Fatal("fresh gate refused")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := g2.Acquire(ctx, Realtime); err != context.Canceled {
		t.Fatalf("cancelled acquire: %v", err)
	}
	if got := g2.Waiting(Realtime); got != 0 {
		t.Fatalf("cancelled waiter still queued: %d", got)
	}
	g.Release()
	if err := <-done; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	g.Release()
	if got := g.InUse(); got != 0 {
		t.Fatalf("in-use after drain = %d", got)
	}
	if got := g.Load(); got != 0 {
		t.Fatalf("load after drain = %v", got)
	}
}

func TestParseSpecAndClass(t *testing.T) {
	spec, err := ParseSpec("acme:realtime:200:400:16:4")
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{ID: "acme", Class: Realtime, Rate: 200, Burst: 400, MaxInFlight: 16, Stride: 4}
	if spec != want {
		t.Fatalf("ParseSpec = %+v, want %+v", spec, want)
	}
	if spec, err = ParseSpec("b:batch"); err != nil || spec.Class != Batch || spec.Rate != 0 {
		t.Fatalf("short spec: %+v, %v", spec, err)
	}
	for _, bad := range []string{"", "acme", ":realtime", "acme:vip", "acme:batch:fast"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
	if c, err := ParseClass("realtime"); err != nil || c != Realtime {
		t.Fatalf("ParseClass realtime: %v %v", c, err)
	}
	if _, err := ParseClass("vip"); err == nil {
		t.Fatal("ParseClass vip accepted")
	}
	for c := Class(0); c < NumClasses; c++ {
		if c.String() == "" {
			t.Fatalf("class %d has no name", c)
		}
	}
}
