package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"shmd/internal/trace"
)

// fuzzSeedFrames returns encoded frames of every v1 type plus the
// adversarial variants the issue calls out: truncated, bit-flipped,
// oversized, and version-skewed bytes.
func fuzzSeedFrames(t interface{ Helper() }) [][]byte {
	t.Helper()
	detect, _ := AppendDetectRequest(nil, DetectRequest{
		DeadlineMs: 100,
		Programs:   []DetectProgram{{ID: "p", Windows: []trace.WindowCounts{goldenWindow(1)}}},
	})
	verdict, _ := AppendVerdict(nil, Verdict{Session: 1, Results: []VerdictResult{{ID: "p", Score: 0.5, Confidence: 1, Attempts: 1, Windows: 1}}})
	// v1.1 extension seeds: HELLO with the metadata section,
	// tenant-tagged DETECT/STREAM, ERROR with a retry hint.
	detectTenant, _ := AppendDetectRequest(nil, DetectRequest{
		DeadlineMs: 100,
		Programs:   []DetectProgram{{ID: "p", Windows: []trace.WindowCounts{goldenWindow(1)}}},
		Tenant:     "acme",
	})
	stream, _ := AppendStreamRequest(nil, StreamRequest{
		StreamID: 1, Stride: 2, ID: "s",
		Windows: []trace.WindowCounts{goldenWindow(2)},
		Tenant:  "acme",
	})
	frames := [][]byte{
		EncodeFrame(Frame{Type: FrameHello, Payload: AppendHello(nil, Hello{Version: 1, MaxFrame: 1 << 20})}),
		EncodeFrame(Frame{Type: FrameHello, Payload: AppendHello(nil, Hello{Version: 1, MaxFrame: 1 << 20, Meta: map[string]string{MetaClass: "batch", MetaTenant: "acme"}})}),
		EncodeFrame(Frame{Type: FrameDetect, Corr: 1, Payload: detect}),
		EncodeFrame(Frame{Type: FrameDetect, Corr: 6, Payload: detectTenant}),
		EncodeFrame(Frame{Type: FrameStream, Corr: 7, Payload: stream}),
		EncodeFrame(Frame{Type: FrameError, Corr: 8, Payload: AppendErrorFrame(nil, ErrorFrame{Code: CodeOverloaded, Msg: "queue full", RetryAfterSec: 2})}),
		EncodeFrame(Frame{Type: FrameVerdict, Corr: 1, Payload: verdict}),
		EncodeFrame(Frame{Type: FrameError, Corr: 2, Payload: AppendErrorFrame(nil, ErrorFrame{Code: CodeUnavailable, Msg: "draining"})}),
		EncodeFrame(Frame{Type: FramePing, Corr: 3}),
		EncodeFrame(Frame{Type: FramePong, Corr: 3}),
		EncodeFrame(Frame{Type: FrameGoAway, Payload: AppendGoAway(nil, GoAway{Msg: "bye"})}),
		EncodeFrame(Frame{Type: FrameHealthReq, Corr: 4}),
		EncodeFrame(Frame{Type: FrameHealth, Corr: 4, Payload: []byte(`{"status":"ok"}`)}),
		EncodeFrame(Frame{Type: 0x7F, Corr: 5, Payload: []byte("future")}),
	}
	seeds := append([][]byte{}, frames...)
	for _, f := range frames {
		// Truncated at an awkward boundary.
		seeds = append(seeds, f[:len(f)/2])
		// Bit-flipped mid-frame.
		flipped := append([]byte{}, f...)
		flipped[len(flipped)/2] ^= 0x10
		seeds = append(seeds, flipped)
	}
	// Oversized: a header whose length field dwarfs any real payload.
	huge := append([]byte{}, frames[1]...)
	huge[10], huge[11] = 0x7f, 0xff
	seeds = append(seeds,
		huge,
		// Version-skewed preambles where a frame should be.
		AppendPreamble(nil, ProtoVersion),
		AppendPreamble(nil, 2),
		AppendPreamble(nil, 0xff),
	)
	return seeds
}

// FuzzWireFrameDecode holds the frame decoder to its contract on
// arbitrary bytes: it never panics, every failure is ErrCorrupt-family
// or *TooLargeError, and a successful decode re-encodes to exactly the
// bytes consumed (identity). Typed payload decoders get the same
// treatment on whatever payload survives framing.
func FuzzWireFrameDecode(f *testing.F) {
	for _, seed := range fuzzSeedFrames(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := DecodeFrame(data, DefaultMaxFramePayload)
		if err != nil {
			var tooBig *TooLargeError
			if !errors.Is(err, ErrCorrupt) && !errors.As(err, &tooBig) {
				t.Fatalf("untyped decode error: %v", err)
			}
		} else {
			if n <= 0 || n > len(data) {
				t.Fatalf("consumed %d of %d bytes", n, len(data))
			}
			if enc := EncodeFrame(fr); !bytes.Equal(enc, data[:n]) {
				t.Fatalf("re-encode is not identity:\n got %x\nwant %x", enc, data[:n])
			}
			// The streaming reader must agree with the buffer decoder.
			rf, rerr := ReadWireFrame(bytes.NewReader(data), DefaultMaxFramePayload)
			if rerr != nil {
				t.Fatalf("ReadWireFrame disagrees: %v", rerr)
			}
			if rf.Type != fr.Type || rf.Corr != fr.Corr || !bytes.Equal(rf.Payload, fr.Payload) {
				t.Fatalf("ReadWireFrame decoded %+v, DecodeFrame %+v", rf, fr)
			}
			checkPayloadDecoder(t, fr)
		}
		// The streaming reader independently must never panic and only
		// fail typed (or io.EOF at a clean boundary).
		if _, rerr := ReadWireFrame(bytes.NewReader(data), DefaultMaxFramePayload); rerr != nil {
			var tooBig *TooLargeError
			if rerr != io.EOF && !errors.Is(rerr, ErrCorrupt) && !errors.As(rerr, &tooBig) {
				t.Fatalf("untyped stream error: %v", rerr)
			}
		}
	})
}

// checkPayloadDecoder runs the typed codec for fr's type; failures
// must wrap ErrCorrupt, successes must re-encode canonically.
func checkPayloadDecoder(t *testing.T, fr Frame) {
	t.Helper()
	assert := func(reenc []byte, err error) {
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("%v payload: untyped error %v", fr.Type, err)
			}
			return
		}
		if !bytes.Equal(reenc, fr.Payload) {
			t.Fatalf("%v payload re-encode is not identity:\n got %x\nwant %x", fr.Type, reenc, fr.Payload)
		}
	}
	switch fr.Type {
	case FrameDetect:
		req, err := DecodeDetectRequest(fr.Payload)
		if err != nil {
			assert(nil, err)
			return
		}
		enc, encErr := AppendDetectRequest(nil, req)
		if encErr != nil {
			t.Fatalf("decoded request failed to re-encode: %v", encErr)
		}
		assert(enc, nil)
	case FrameVerdict:
		v, err := DecodeVerdict(fr.Payload)
		if err != nil {
			assert(nil, err)
			return
		}
		enc, encErr := AppendVerdict(nil, v)
		if encErr != nil {
			t.Fatalf("decoded verdict failed to re-encode: %v", encErr)
		}
		assert(enc, nil)
	case FrameError:
		e, err := DecodeErrorFrame(fr.Payload)
		if err != nil {
			assert(nil, err)
			return
		}
		assert(AppendErrorFrame(nil, e), nil)
	case FrameHello:
		h, err := DecodeHello(fr.Payload)
		if err != nil {
			assert(nil, err)
			return
		}
		assert(AppendHello(nil, h), nil)
	case FrameGoAway:
		g, err := DecodeGoAway(fr.Payload)
		if err != nil {
			assert(nil, err)
			return
		}
		assert(AppendGoAway(nil, g), nil)
	case FrameStream:
		s, err := DecodeStreamRequest(fr.Payload)
		if err != nil {
			assert(nil, err)
			return
		}
		enc, encErr := AppendStreamRequest(nil, s)
		if encErr != nil {
			t.Fatalf("decoded stream append failed to re-encode: %v", encErr)
		}
		assert(enc, nil)
	}
}

// FuzzDetectFrameRoundTrip drives the DETECT and VERDICT payload
// codecs directly with raw bytes: any payload that decodes must
// re-encode to the identical bytes (the encoding is canonical), and
// any rejection must be typed. This is the decode→encode dual of the
// construct→encode→decode tests.
func FuzzDetectFrameRoundTrip(f *testing.F) {
	detect, _ := AppendDetectRequest(nil, DetectRequest{
		DeadlineMs: 250,
		Programs: []DetectProgram{
			{ID: "prog-0", Windows: []trace.WindowCounts{goldenWindow(2), goldenWindow(3)}},
			{Windows: []trace.WindowCounts{goldenWindow(4)}},
		},
	})
	verdict, _ := AppendVerdict(nil, Verdict{
		Session: 3, Hedged: true,
		Results: []VerdictResult{{ID: "prog-0", Malware: true, Score: 0.75, Confidence: 0.5, Attempts: 2, Windows: 2}},
	})
	f.Add(detect)
	f.Add(verdict)
	f.Add([]byte{})
	trunc := detect[:len(detect)-5]
	f.Add(trunc)
	f.Fuzz(func(t *testing.T, data []byte) {
		if req, err := DecodeDetectRequest(data); err == nil {
			enc, encErr := AppendDetectRequest(nil, req)
			if encErr != nil {
				t.Fatalf("decoded request failed to re-encode: %v", encErr)
			}
			if !bytes.Equal(enc, data) {
				t.Fatalf("detect round trip not identity:\n got %x\nwant %x", enc, data)
			}
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("untyped detect decode error: %v", err)
		}
		if v, err := DecodeVerdict(data); err == nil {
			enc, encErr := AppendVerdict(nil, v)
			if encErr != nil {
				t.Fatalf("decoded verdict failed to re-encode: %v", encErr)
			}
			if !bytes.Equal(enc, data) {
				t.Fatalf("verdict round trip not identity:\n got %x\nwant %x", enc, data)
			}
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("untyped verdict decode error: %v", err)
		}
	})
}
