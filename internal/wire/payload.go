package wire

// SHMDWIRE v1 payload codecs: the bodies of DETECT, VERDICT, ERROR,
// HELLO, and GOAWAY frames. All integers are big-endian; float64
// values travel as their IEEE-754 bit patterns, so a verdict's score
// and confidence survive the wire bit-exactly — the property the
// cross-transport equivalence suite pins.
//
// Encoding is canonical: there is exactly one byte sequence for a
// given value (window stride histograms are always emitted, string
// lengths are exact), which is what lets the golden-frame corpus
// assert decode→re-encode byte identity. Every decode failure wraps
// ErrCorrupt; decoders bound every length they allocate for and never
// panic on any input — the frame fuzzers hold them to it.

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"time"

	"shmd/internal/isa"
	"shmd/internal/trace"
)

// Structural decode bounds. These cap what a decoder will allocate
// for; the serving layer applies its own (tighter, configurable)
// semantic limits on top.
const (
	// MaxPrograms bounds the programs in one DETECT frame.
	MaxPrograms = 4096
	// MaxWindows bounds the windows in one program.
	MaxWindows = 65535
	// MaxIDLen bounds a program id (u8 length prefix).
	MaxIDLen = 255
	// MaxMsgLen bounds an error / goaway message (u16 length prefix).
	MaxMsgLen = 65535
	// windowWireLen is the fixed encoded size of one window: taken +
	// opcode counts + stride buckets, 4 bytes each.
	windowWireLen = 4 * (1 + isa.NumOpcodes + trace.StrideBuckets)
	// maxWireCount bounds any single count on the wire (u32).
	maxWireCount = math.MaxUint32
	// MaxMetaPairs bounds the HELLO metadata section.
	MaxMetaPairs = 16
)

// Well-known HELLO metadata keys. Endpoints ignore keys they do not
// recognize.
const (
	// MetaTenant names the tenant the connection's traffic belongs to.
	MetaTenant = "tenant"
	// MetaClass is the tenant's advisory priority class
	// ("realtime"/"standard"/"batch") — routers use it to key brownout
	// shedding without a registry; backends always resolve the
	// authoritative class from their own registry.
	MetaClass = "class"
)

// DetectProgram is one program in a DETECT frame.
type DetectProgram struct {
	// ID is an optional caller-assigned label echoed in the verdict.
	ID string
	// Windows are the per-window instruction-count measurements.
	Windows []trace.WindowCounts
}

// DetectRequest is the DETECT frame payload.
type DetectRequest struct {
	// DeadlineMs bounds the detection server-side, in integer
	// milliseconds (0 = server default), mirroring the HTTP transport's
	// X-Detect-Deadline-Ms header.
	DeadlineMs uint32
	Programs   []DetectProgram
	// Tenant is the optional tenant tag (v1.1 extension tail, see
	// PROTOCOL.md §4): empty means "use the connection's HELLO tenant".
	// Carried in the payload so a router's shared upstream connections
	// relay it verbatim, untouched by pooling.
	Tenant string
}

// Deadline converts the millisecond field to a duration.
func (r DetectRequest) Deadline() time.Duration {
	return time.Duration(r.DeadlineMs) * time.Millisecond
}

// AppendDetectRequest appends the canonical encoding of req. Encoding
// fails only on values the wire cannot carry (oversized ids or
// counts, too many programs or windows, negative counts).
func AppendDetectRequest(dst []byte, req DetectRequest) ([]byte, error) {
	if len(req.Programs) > MaxPrograms {
		return nil, fmt.Errorf("wire: %d programs exceeds %d", len(req.Programs), MaxPrograms)
	}
	dst = binary.BigEndian.AppendUint32(dst, req.DeadlineMs)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(req.Programs)))
	for i, p := range req.Programs {
		if len(p.ID) > MaxIDLen {
			return nil, fmt.Errorf("wire: program %d id is %d bytes, limit %d", i, len(p.ID), MaxIDLen)
		}
		if len(p.Windows) > MaxWindows {
			return nil, fmt.Errorf("wire: program %d has %d windows, limit %d", i, len(p.Windows), MaxWindows)
		}
		dst = append(dst, byte(len(p.ID)))
		dst = append(dst, p.ID...)
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(p.Windows)))
		for w, win := range p.Windows {
			var err error
			if dst, err = appendWindow(dst, win, i, w); err != nil {
				return nil, err
			}
		}
	}
	return appendTenantTail(dst, req.Tenant)
}

// appendTenantTail appends the optional tenant tag tail: omitted
// entirely when empty (canonical form), a str8 otherwise.
func appendTenantTail(dst []byte, tenant string) ([]byte, error) {
	if tenant == "" {
		return dst, nil
	}
	if len(tenant) > MaxIDLen {
		return nil, fmt.Errorf("wire: tenant tag is %d bytes, limit %d", len(tenant), MaxIDLen)
	}
	dst = append(dst, byte(len(tenant)))
	return append(dst, tenant...), nil
}

// tenantTail decodes the optional tenant tag tail if any payload
// remains. A present-but-empty tag is non-canonical and rejected.
func (d *decoder) tenantTail() string {
	if d.err != nil || d.off == len(d.buf) {
		return ""
	}
	tenant := d.str8("tenant tag")
	if d.err == nil && tenant == "" {
		d.err = corrupt("empty tenant tag (omit the tail instead)")
	}
	return tenant
}

// appendWindow appends one window's fixed-size encoding.
func appendWindow(dst []byte, w trace.WindowCounts, prog, idx int) ([]byte, error) {
	count := func(n int) (uint32, error) {
		if n < 0 || n > maxWireCount {
			return 0, fmt.Errorf("wire: program %d window %d: count %d outside [0, %d]", prog, idx, n, int64(maxWireCount))
		}
		return uint32(n), nil
	}
	c, err := count(w.Taken)
	if err != nil {
		return nil, err
	}
	dst = binary.BigEndian.AppendUint32(dst, c)
	for _, n := range w.Opcode {
		if c, err = count(n); err != nil {
			return nil, err
		}
		dst = binary.BigEndian.AppendUint32(dst, c)
	}
	for _, n := range w.Stride {
		if c, err = count(n); err != nil {
			return nil, err
		}
		dst = binary.BigEndian.AppendUint32(dst, c)
	}
	return dst, nil
}

// DecodeDetectRequest decodes a DETECT payload. Every failure wraps
// ErrCorrupt; the decoder never allocates more than the payload's own
// length implies and never panics.
func DecodeDetectRequest(p []byte) (DetectRequest, error) {
	d := decoder{buf: p}
	req := DetectRequest{DeadlineMs: d.u32("deadline")}
	n := int(d.u16("program count"))
	if n > MaxPrograms {
		return DetectRequest{}, corrupt("%d programs exceeds %d", n, MaxPrograms)
	}
	if d.err == nil && n > 0 {
		req.Programs = make([]DetectProgram, 0, min(n, len(p)/windowWireLen+1))
	}
	for i := 0; i < n && d.err == nil; i++ {
		prog := DetectProgram{ID: d.str8("program id")}
		w := int(d.u16("window count"))
		if w > MaxWindows {
			return DetectRequest{}, corrupt("program %d: %d windows exceeds %d", i, w, MaxWindows)
		}
		if d.err == nil && w > 0 {
			if rem := len(d.buf) - d.off; rem < w*windowWireLen {
				return DetectRequest{}, corrupt("program %d claims %d windows, %d bytes remain", i, w, rem)
			}
			prog.Windows = make([]trace.WindowCounts, w)
			for j := range prog.Windows {
				prog.Windows[j] = d.window()
			}
		}
		req.Programs = append(req.Programs, prog)
	}
	req.Tenant = d.tenantTail()
	d.done()
	if d.err != nil {
		return DetectRequest{}, d.err
	}
	return req, nil
}

// VerdictResult is one program's verdict in a VERDICT frame.
type VerdictResult struct {
	ID          string
	Malware     bool
	Unprotected bool
	Score       float64
	Confidence  float64
	Attempts    uint32
	Windows     uint32
}

// Verdict is the VERDICT frame payload.
type Verdict struct {
	// Session is the backend pool slot that served the batch.
	Session int32
	// Hedged marks a reply won by a hedge runner.
	Hedged  bool
	Results []VerdictResult
	// Tenant echoes the tenant the request was accounted to (v1.1
	// extension tail) so identity round-trips bit-identically.
	Tenant string
}

const (
	verdictHedged     = 1 << 0
	resultMalware     = 1 << 0
	resultUnprotected = 1 << 1
)

// AppendVerdict appends the canonical encoding of v.
func AppendVerdict(dst []byte, v Verdict) ([]byte, error) {
	if len(v.Results) > MaxPrograms {
		return nil, fmt.Errorf("wire: %d results exceeds %d", len(v.Results), MaxPrograms)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(v.Session))
	var flags byte
	if v.Hedged {
		flags |= verdictHedged
	}
	dst = append(dst, flags)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(v.Results)))
	for i, r := range v.Results {
		if len(r.ID) > MaxIDLen {
			return nil, fmt.Errorf("wire: result %d id is %d bytes, limit %d", i, len(r.ID), MaxIDLen)
		}
		dst = append(dst, byte(len(r.ID)))
		dst = append(dst, r.ID...)
		var rf byte
		if r.Malware {
			rf |= resultMalware
		}
		if r.Unprotected {
			rf |= resultUnprotected
		}
		dst = append(dst, rf)
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(r.Score))
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(r.Confidence))
		dst = binary.BigEndian.AppendUint32(dst, r.Attempts)
		dst = binary.BigEndian.AppendUint32(dst, r.Windows)
	}
	return appendTenantTail(dst, v.Tenant)
}

// DecodeVerdict decodes a VERDICT payload.
func DecodeVerdict(p []byte) (Verdict, error) {
	d := decoder{buf: p}
	v := Verdict{Session: int32(d.u32("session"))}
	flags := d.u8("verdict flags")
	if d.err == nil && flags&^byte(verdictHedged) != 0 {
		return Verdict{}, corrupt("reserved verdict flags 0x%02x set", flags)
	}
	v.Hedged = flags&verdictHedged != 0
	n := int(d.u16("result count"))
	if n > MaxPrograms {
		return Verdict{}, corrupt("%d results exceeds %d", n, MaxPrograms)
	}
	if d.err == nil && n > 0 {
		v.Results = make([]VerdictResult, 0, min(n, len(p)/26+1))
	}
	for i := 0; i < n && d.err == nil; i++ {
		r := VerdictResult{ID: d.str8("result id")}
		rf := d.u8("result flags")
		if d.err == nil && rf&^byte(resultMalware|resultUnprotected) != 0 {
			return Verdict{}, corrupt("result %d: reserved flags 0x%02x set", i, rf)
		}
		r.Malware = rf&resultMalware != 0
		r.Unprotected = rf&resultUnprotected != 0
		r.Score = math.Float64frombits(d.u64("score"))
		r.Confidence = math.Float64frombits(d.u64("confidence"))
		r.Attempts = d.u32("attempts")
		r.Windows = d.u32("windows")
		v.Results = append(v.Results, r)
	}
	v.Tenant = d.tenantTail()
	d.done()
	if d.err != nil {
		return Verdict{}, d.err
	}
	return v, nil
}

// ErrorFrame is the ERROR frame payload: a typed failure code (HTTP
// vocabulary) plus a human-readable message.
type ErrorFrame struct {
	Code ErrorCode
	Msg  string
	// RetryAfterSec is the sender's machine-readable backoff hint in
	// whole seconds (v1.1 extension tail, the wire twin of the HTTP
	// Retry-After header). 0 means "no hint" and is omitted from the
	// encoding; servers only emit it to peers that announced themselves
	// with a client HELLO.
	RetryAfterSec uint16
}

// Error implements error so a relayed frame can flow as a Go error.
func (e *ErrorFrame) Error() string {
	return fmt.Sprintf("wire: server error %d: %s", e.Code, e.Msg)
}

// AppendErrorFrame appends the canonical encoding of e, truncating
// the message at MaxMsgLen (an error about an error must never itself
// fail to encode).
func AppendErrorFrame(dst []byte, e ErrorFrame) []byte {
	msg := e.Msg
	if len(msg) > MaxMsgLen {
		msg = msg[:MaxMsgLen]
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(e.Code))
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(msg)))
	dst = append(dst, msg...)
	if e.RetryAfterSec > 0 {
		dst = binary.BigEndian.AppendUint16(dst, e.RetryAfterSec)
	}
	return dst
}

// DecodeErrorFrame decodes an ERROR payload.
func DecodeErrorFrame(p []byte) (ErrorFrame, error) {
	d := decoder{buf: p}
	e := ErrorFrame{Code: ErrorCode(d.u16("error code"))}
	e.Msg = d.str16("error message")
	if d.err == nil && d.off != len(d.buf) {
		e.RetryAfterSec = d.u16("retry-after hint")
		if d.err == nil && e.RetryAfterSec == 0 {
			return ErrorFrame{}, corrupt("zero retry-after hint (omit the tail instead)")
		}
	}
	d.done()
	if d.err != nil {
		return ErrorFrame{}, d.err
	}
	return e, nil
}

// Hello is the HELLO frame payload: the speaker's protocol version,
// the largest frame payload it will accept, and (since v1.1) an
// optional metadata section. The server greets with a HELLO after the
// preamble as before; a client MAY now send its own HELLO to announce
// identity (MetaTenant/MetaClass) and opt into v1.1 extension tails.
type Hello struct {
	Version  uint8
	MaxFrame uint32
	// Meta carries optional key/value metadata. Unknown keys are
	// ignored by the receiver; an empty map encodes identically to a
	// pre-metadata HELLO, so the base encoding never changed.
	Meta map[string]string
}

// AppendHello appends the canonical encoding of h: the metadata
// section is omitted when empty and entries are sorted by key, so
// there is exactly one encoding per value. Callers validate bounds up
// front with ValidHelloMeta; AppendHello itself never fails.
func AppendHello(dst []byte, h Hello) []byte {
	dst = append(dst, h.Version)
	dst = binary.BigEndian.AppendUint32(dst, h.MaxFrame)
	if len(h.Meta) == 0 {
		return dst
	}
	keys := make([]string, 0, len(h.Meta))
	for k := range h.Meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	dst = append(dst, byte(len(keys)))
	for _, k := range keys {
		dst = append(dst, byte(len(k)))
		dst = append(dst, k...)
		v := h.Meta[k]
		dst = append(dst, byte(len(v)))
		dst = append(dst, v...)
	}
	return dst
}

// ValidHelloMeta reports whether meta can be carried on the wire:
// at most MaxMetaPairs entries, keys non-empty, keys and values at
// most MaxIDLen bytes.
func ValidHelloMeta(meta map[string]string) error {
	if len(meta) > MaxMetaPairs {
		return fmt.Errorf("wire: %d metadata pairs exceeds %d", len(meta), MaxMetaPairs)
	}
	for k, v := range meta {
		if k == "" {
			return fmt.Errorf("wire: empty metadata key")
		}
		if len(k) > MaxIDLen || len(v) > MaxIDLen {
			return fmt.Errorf("wire: metadata pair %q is over %d bytes", k, MaxIDLen)
		}
	}
	return nil
}

// DecodeHello decodes a HELLO payload, with or without the v1.1
// metadata section. Per PROTOCOL.md's unknown-field rule the section
// is a strictly appended tail: a pre-metadata value occupies exactly
// the first 5 bytes, so the extension never moves existing fields.
func DecodeHello(p []byte) (Hello, error) {
	d := decoder{buf: p}
	h := Hello{Version: d.u8("version")}
	h.MaxFrame = d.u32("max frame")
	if d.err == nil && d.off != len(d.buf) {
		n := int(d.u8("metadata count"))
		if d.err == nil && (n == 0 || n > MaxMetaPairs) {
			return Hello{}, corrupt("metadata count %d outside [1, %d]", n, MaxMetaPairs)
		}
		if d.err == nil {
			h.Meta = make(map[string]string, n)
		}
		prev := ""
		for i := 0; i < n && d.err == nil; i++ {
			k := d.str8("metadata key")
			v := d.str8("metadata value")
			if d.err != nil {
				break
			}
			if k == "" {
				return Hello{}, corrupt("metadata entry %d has an empty key", i)
			}
			if i > 0 && k <= prev {
				return Hello{}, corrupt("metadata keys not strictly sorted (%q after %q)", k, prev)
			}
			prev = k
			h.Meta[k] = v
		}
	}
	d.done()
	if d.err != nil {
		return Hello{}, d.err
	}
	return h, nil
}

// GoAway is the GOAWAY frame payload: the drain reason.
type GoAway struct {
	// Code 0 means a graceful drain; other values are reserved.
	Code uint16
	Msg  string
}

// AppendGoAway appends the canonical encoding of g (message truncated
// at MaxMsgLen, as for errors).
func AppendGoAway(dst []byte, g GoAway) []byte {
	msg := g.Msg
	if len(msg) > MaxMsgLen {
		msg = msg[:MaxMsgLen]
	}
	dst = binary.BigEndian.AppendUint16(dst, g.Code)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(msg)))
	return append(dst, msg...)
}

// DecodeGoAway decodes a GOAWAY payload.
func DecodeGoAway(p []byte) (GoAway, error) {
	d := decoder{buf: p}
	g := GoAway{Code: d.u16("goaway code")}
	g.Msg = d.str16("goaway message")
	d.done()
	if d.err != nil {
		return GoAway{}, d.err
	}
	return g, nil
}

// StreamRequest is the STREAM frame payload: one append to a
// long-lived sliding-window detection stream. The stream id is a
// client-chosen handle scoped to the connection; each append is a
// normal correlated request-response exchange (the server answers
// with a VERDICT carrying the re-scorings this append triggered,
// possibly zero), so streams multiplex like any other frame.
type StreamRequest struct {
	// StreamID identifies the stream on this connection. The first
	// append with a given id opens the stream.
	StreamID uint32
	// Close tears the stream down after this append's windows are
	// scored; the server drops the buffered session state.
	Close bool
	// Stride is the re-detection stride in windows — how many new
	// windows arrive between overlapping re-scorings. Honored on the
	// opening append; 0 selects the tenant's configured default.
	Stride uint16
	// ID is the program label echoed in verdicts (opening append).
	ID string
	// Windows are appended to the stream's sliding buffer in order.
	Windows []trace.WindowCounts
	// Tenant optionally tags the append (extension tail, like DETECT).
	Tenant string
}

// streamClose is the STREAM payload flag bit for Close.
const streamClose = 1 << 0

// AppendStreamRequest appends the canonical encoding of req.
func AppendStreamRequest(dst []byte, req StreamRequest) ([]byte, error) {
	if len(req.ID) > MaxIDLen {
		return nil, fmt.Errorf("wire: stream id label is %d bytes, limit %d", len(req.ID), MaxIDLen)
	}
	if len(req.Windows) > MaxWindows {
		return nil, fmt.Errorf("wire: stream append has %d windows, limit %d", len(req.Windows), MaxWindows)
	}
	dst = binary.BigEndian.AppendUint32(dst, req.StreamID)
	var flags byte
	if req.Close {
		flags |= streamClose
	}
	dst = append(dst, flags)
	dst = binary.BigEndian.AppendUint16(dst, req.Stride)
	dst = append(dst, byte(len(req.ID)))
	dst = append(dst, req.ID...)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(req.Windows)))
	for w, win := range req.Windows {
		var err error
		if dst, err = appendWindow(dst, win, 0, w); err != nil {
			return nil, err
		}
	}
	return appendTenantTail(dst, req.Tenant)
}

// DecodeStreamRequest decodes a STREAM payload.
func DecodeStreamRequest(p []byte) (StreamRequest, error) {
	d := decoder{buf: p}
	req := StreamRequest{StreamID: d.u32("stream id")}
	flags := d.u8("stream flags")
	if d.err == nil && flags&^byte(streamClose) != 0 {
		return StreamRequest{}, corrupt("reserved stream flags 0x%02x set", flags)
	}
	req.Close = flags&streamClose != 0
	req.Stride = d.u16("stride")
	req.ID = d.str8("stream label")
	w := int(d.u16("window count"))
	if w > MaxWindows {
		return StreamRequest{}, corrupt("%d windows exceeds %d", w, MaxWindows)
	}
	if d.err == nil && w > 0 {
		if rem := len(d.buf) - d.off; rem < w*windowWireLen {
			return StreamRequest{}, corrupt("stream append claims %d windows, %d bytes remain", w, rem)
		}
		req.Windows = make([]trace.WindowCounts, w)
		for j := range req.Windows {
			req.Windows[j] = d.window()
		}
	}
	req.Tenant = d.tenantTail()
	d.done()
	if d.err != nil {
		return StreamRequest{}, d.err
	}
	return req, nil
}

// decoder is a bounds-checked big-endian cursor. The first failure
// latches in err and every later read returns zero values, so payload
// codecs read straight-line and check once at the end.
type decoder struct {
	buf []byte
	off int
	err error
}

// need reserves n bytes, latching a corruption error when they are
// not there.
func (d *decoder) need(n int, what string) bool {
	if d.err != nil {
		return false
	}
	if len(d.buf)-d.off < n {
		d.err = corrupt("truncated %s: need %d bytes, %d remain", what, n, len(d.buf)-d.off)
		return false
	}
	return true
}

func (d *decoder) u8(what string) uint8 {
	if !d.need(1, what) {
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *decoder) u16(what string) uint16 {
	if !d.need(2, what) {
		return 0
	}
	v := binary.BigEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v
}

func (d *decoder) u32(what string) uint32 {
	if !d.need(4, what) {
		return 0
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64(what string) uint64 {
	if !d.need(8, what) {
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

// str8 reads a u8-length-prefixed string.
func (d *decoder) str8(what string) string {
	n := int(d.u8(what))
	if !d.need(n, what) {
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

// str16 reads a u16-length-prefixed string.
func (d *decoder) str16(what string) string {
	n := int(d.u16(what))
	if !d.need(n, what) {
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

// window reads one fixed-size window encoding.
func (d *decoder) window() trace.WindowCounts {
	var w trace.WindowCounts
	if !d.need(windowWireLen, "window") {
		return w
	}
	w.Taken = int(binary.BigEndian.Uint32(d.buf[d.off:]))
	d.off += 4
	for i := range w.Opcode {
		w.Opcode[i] = int(binary.BigEndian.Uint32(d.buf[d.off:]))
		d.off += 4
	}
	for i := range w.Stride {
		w.Stride[i] = int(binary.BigEndian.Uint32(d.buf[d.off:]))
		d.off += 4
	}
	return w
}

// done asserts the payload was consumed exactly: trailing garbage is
// corruption, not padding.
func (d *decoder) done() {
	if d.err == nil && d.off != len(d.buf) {
		d.err = corrupt("%d trailing payload bytes", len(d.buf)-d.off)
	}
}
