package wire

// SHMDWIRE v1 payload codecs: the bodies of DETECT, VERDICT, ERROR,
// HELLO, and GOAWAY frames. All integers are big-endian; float64
// values travel as their IEEE-754 bit patterns, so a verdict's score
// and confidence survive the wire bit-exactly — the property the
// cross-transport equivalence suite pins.
//
// Encoding is canonical: there is exactly one byte sequence for a
// given value (window stride histograms are always emitted, string
// lengths are exact), which is what lets the golden-frame corpus
// assert decode→re-encode byte identity. Every decode failure wraps
// ErrCorrupt; decoders bound every length they allocate for and never
// panic on any input — the frame fuzzers hold them to it.

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"shmd/internal/isa"
	"shmd/internal/trace"
)

// Structural decode bounds. These cap what a decoder will allocate
// for; the serving layer applies its own (tighter, configurable)
// semantic limits on top.
const (
	// MaxPrograms bounds the programs in one DETECT frame.
	MaxPrograms = 4096
	// MaxWindows bounds the windows in one program.
	MaxWindows = 65535
	// MaxIDLen bounds a program id (u8 length prefix).
	MaxIDLen = 255
	// MaxMsgLen bounds an error / goaway message (u16 length prefix).
	MaxMsgLen = 65535
	// windowWireLen is the fixed encoded size of one window: taken +
	// opcode counts + stride buckets, 4 bytes each.
	windowWireLen = 4 * (1 + isa.NumOpcodes + trace.StrideBuckets)
	// maxWireCount bounds any single count on the wire (u32).
	maxWireCount = math.MaxUint32
)

// DetectProgram is one program in a DETECT frame.
type DetectProgram struct {
	// ID is an optional caller-assigned label echoed in the verdict.
	ID string
	// Windows are the per-window instruction-count measurements.
	Windows []trace.WindowCounts
}

// DetectRequest is the DETECT frame payload.
type DetectRequest struct {
	// DeadlineMs bounds the detection server-side, in integer
	// milliseconds (0 = server default), mirroring the HTTP transport's
	// X-Detect-Deadline-Ms header.
	DeadlineMs uint32
	Programs   []DetectProgram
}

// Deadline converts the millisecond field to a duration.
func (r DetectRequest) Deadline() time.Duration {
	return time.Duration(r.DeadlineMs) * time.Millisecond
}

// AppendDetectRequest appends the canonical encoding of req. Encoding
// fails only on values the wire cannot carry (oversized ids or
// counts, too many programs or windows, negative counts).
func AppendDetectRequest(dst []byte, req DetectRequest) ([]byte, error) {
	if len(req.Programs) > MaxPrograms {
		return nil, fmt.Errorf("wire: %d programs exceeds %d", len(req.Programs), MaxPrograms)
	}
	dst = binary.BigEndian.AppendUint32(dst, req.DeadlineMs)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(req.Programs)))
	for i, p := range req.Programs {
		if len(p.ID) > MaxIDLen {
			return nil, fmt.Errorf("wire: program %d id is %d bytes, limit %d", i, len(p.ID), MaxIDLen)
		}
		if len(p.Windows) > MaxWindows {
			return nil, fmt.Errorf("wire: program %d has %d windows, limit %d", i, len(p.Windows), MaxWindows)
		}
		dst = append(dst, byte(len(p.ID)))
		dst = append(dst, p.ID...)
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(p.Windows)))
		for w, win := range p.Windows {
			var err error
			if dst, err = appendWindow(dst, win, i, w); err != nil {
				return nil, err
			}
		}
	}
	return dst, nil
}

// appendWindow appends one window's fixed-size encoding.
func appendWindow(dst []byte, w trace.WindowCounts, prog, idx int) ([]byte, error) {
	count := func(n int) (uint32, error) {
		if n < 0 || n > maxWireCount {
			return 0, fmt.Errorf("wire: program %d window %d: count %d outside [0, %d]", prog, idx, n, int64(maxWireCount))
		}
		return uint32(n), nil
	}
	c, err := count(w.Taken)
	if err != nil {
		return nil, err
	}
	dst = binary.BigEndian.AppendUint32(dst, c)
	for _, n := range w.Opcode {
		if c, err = count(n); err != nil {
			return nil, err
		}
		dst = binary.BigEndian.AppendUint32(dst, c)
	}
	for _, n := range w.Stride {
		if c, err = count(n); err != nil {
			return nil, err
		}
		dst = binary.BigEndian.AppendUint32(dst, c)
	}
	return dst, nil
}

// DecodeDetectRequest decodes a DETECT payload. Every failure wraps
// ErrCorrupt; the decoder never allocates more than the payload's own
// length implies and never panics.
func DecodeDetectRequest(p []byte) (DetectRequest, error) {
	d := decoder{buf: p}
	req := DetectRequest{DeadlineMs: d.u32("deadline")}
	n := int(d.u16("program count"))
	if n > MaxPrograms {
		return DetectRequest{}, corrupt("%d programs exceeds %d", n, MaxPrograms)
	}
	if d.err == nil && n > 0 {
		req.Programs = make([]DetectProgram, 0, min(n, len(p)/windowWireLen+1))
	}
	for i := 0; i < n && d.err == nil; i++ {
		prog := DetectProgram{ID: d.str8("program id")}
		w := int(d.u16("window count"))
		if w > MaxWindows {
			return DetectRequest{}, corrupt("program %d: %d windows exceeds %d", i, w, MaxWindows)
		}
		if d.err == nil && w > 0 {
			if rem := len(d.buf) - d.off; rem < w*windowWireLen {
				return DetectRequest{}, corrupt("program %d claims %d windows, %d bytes remain", i, w, rem)
			}
			prog.Windows = make([]trace.WindowCounts, w)
			for j := range prog.Windows {
				prog.Windows[j] = d.window()
			}
		}
		req.Programs = append(req.Programs, prog)
	}
	d.done()
	if d.err != nil {
		return DetectRequest{}, d.err
	}
	return req, nil
}

// VerdictResult is one program's verdict in a VERDICT frame.
type VerdictResult struct {
	ID          string
	Malware     bool
	Unprotected bool
	Score       float64
	Confidence  float64
	Attempts    uint32
	Windows     uint32
}

// Verdict is the VERDICT frame payload.
type Verdict struct {
	// Session is the backend pool slot that served the batch.
	Session int32
	// Hedged marks a reply won by a hedge runner.
	Hedged  bool
	Results []VerdictResult
}

const (
	verdictHedged     = 1 << 0
	resultMalware     = 1 << 0
	resultUnprotected = 1 << 1
)

// AppendVerdict appends the canonical encoding of v.
func AppendVerdict(dst []byte, v Verdict) ([]byte, error) {
	if len(v.Results) > MaxPrograms {
		return nil, fmt.Errorf("wire: %d results exceeds %d", len(v.Results), MaxPrograms)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(v.Session))
	var flags byte
	if v.Hedged {
		flags |= verdictHedged
	}
	dst = append(dst, flags)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(v.Results)))
	for i, r := range v.Results {
		if len(r.ID) > MaxIDLen {
			return nil, fmt.Errorf("wire: result %d id is %d bytes, limit %d", i, len(r.ID), MaxIDLen)
		}
		dst = append(dst, byte(len(r.ID)))
		dst = append(dst, r.ID...)
		var rf byte
		if r.Malware {
			rf |= resultMalware
		}
		if r.Unprotected {
			rf |= resultUnprotected
		}
		dst = append(dst, rf)
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(r.Score))
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(r.Confidence))
		dst = binary.BigEndian.AppendUint32(dst, r.Attempts)
		dst = binary.BigEndian.AppendUint32(dst, r.Windows)
	}
	return dst, nil
}

// DecodeVerdict decodes a VERDICT payload.
func DecodeVerdict(p []byte) (Verdict, error) {
	d := decoder{buf: p}
	v := Verdict{Session: int32(d.u32("session"))}
	flags := d.u8("verdict flags")
	if d.err == nil && flags&^byte(verdictHedged) != 0 {
		return Verdict{}, corrupt("reserved verdict flags 0x%02x set", flags)
	}
	v.Hedged = flags&verdictHedged != 0
	n := int(d.u16("result count"))
	if n > MaxPrograms {
		return Verdict{}, corrupt("%d results exceeds %d", n, MaxPrograms)
	}
	if d.err == nil && n > 0 {
		v.Results = make([]VerdictResult, 0, min(n, len(p)/26+1))
	}
	for i := 0; i < n && d.err == nil; i++ {
		r := VerdictResult{ID: d.str8("result id")}
		rf := d.u8("result flags")
		if d.err == nil && rf&^byte(resultMalware|resultUnprotected) != 0 {
			return Verdict{}, corrupt("result %d: reserved flags 0x%02x set", i, rf)
		}
		r.Malware = rf&resultMalware != 0
		r.Unprotected = rf&resultUnprotected != 0
		r.Score = math.Float64frombits(d.u64("score"))
		r.Confidence = math.Float64frombits(d.u64("confidence"))
		r.Attempts = d.u32("attempts")
		r.Windows = d.u32("windows")
		v.Results = append(v.Results, r)
	}
	d.done()
	if d.err != nil {
		return Verdict{}, d.err
	}
	return v, nil
}

// ErrorFrame is the ERROR frame payload: a typed failure code (HTTP
// vocabulary) plus a human-readable message.
type ErrorFrame struct {
	Code ErrorCode
	Msg  string
}

// Error implements error so a relayed frame can flow as a Go error.
func (e *ErrorFrame) Error() string {
	return fmt.Sprintf("wire: server error %d: %s", e.Code, e.Msg)
}

// AppendErrorFrame appends the canonical encoding of e, truncating
// the message at MaxMsgLen (an error about an error must never itself
// fail to encode).
func AppendErrorFrame(dst []byte, e ErrorFrame) []byte {
	msg := e.Msg
	if len(msg) > MaxMsgLen {
		msg = msg[:MaxMsgLen]
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(e.Code))
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(msg)))
	return append(dst, msg...)
}

// DecodeErrorFrame decodes an ERROR payload.
func DecodeErrorFrame(p []byte) (ErrorFrame, error) {
	d := decoder{buf: p}
	e := ErrorFrame{Code: ErrorCode(d.u16("error code"))}
	e.Msg = d.str16("error message")
	d.done()
	if d.err != nil {
		return ErrorFrame{}, d.err
	}
	return e, nil
}

// Hello is the HELLO frame payload: the server's protocol version and
// the largest frame payload it will accept.
type Hello struct {
	Version  uint8
	MaxFrame uint32
}

// AppendHello appends the canonical encoding of h.
func AppendHello(dst []byte, h Hello) []byte {
	dst = append(dst, h.Version)
	return binary.BigEndian.AppendUint32(dst, h.MaxFrame)
}

// DecodeHello decodes a HELLO payload.
func DecodeHello(p []byte) (Hello, error) {
	d := decoder{buf: p}
	h := Hello{Version: d.u8("version")}
	h.MaxFrame = d.u32("max frame")
	d.done()
	if d.err != nil {
		return Hello{}, d.err
	}
	return h, nil
}

// GoAway is the GOAWAY frame payload: the drain reason.
type GoAway struct {
	// Code 0 means a graceful drain; other values are reserved.
	Code uint16
	Msg  string
}

// AppendGoAway appends the canonical encoding of g (message truncated
// at MaxMsgLen, as for errors).
func AppendGoAway(dst []byte, g GoAway) []byte {
	msg := g.Msg
	if len(msg) > MaxMsgLen {
		msg = msg[:MaxMsgLen]
	}
	dst = binary.BigEndian.AppendUint16(dst, g.Code)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(msg)))
	return append(dst, msg...)
}

// DecodeGoAway decodes a GOAWAY payload.
func DecodeGoAway(p []byte) (GoAway, error) {
	d := decoder{buf: p}
	g := GoAway{Code: d.u16("goaway code")}
	g.Msg = d.str16("goaway message")
	d.done()
	if d.err != nil {
		return GoAway{}, d.err
	}
	return g, nil
}

// decoder is a bounds-checked big-endian cursor. The first failure
// latches in err and every later read returns zero values, so payload
// codecs read straight-line and check once at the end.
type decoder struct {
	buf []byte
	off int
	err error
}

// need reserves n bytes, latching a corruption error when they are
// not there.
func (d *decoder) need(n int, what string) bool {
	if d.err != nil {
		return false
	}
	if len(d.buf)-d.off < n {
		d.err = corrupt("truncated %s: need %d bytes, %d remain", what, n, len(d.buf)-d.off)
		return false
	}
	return true
}

func (d *decoder) u8(what string) uint8 {
	if !d.need(1, what) {
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *decoder) u16(what string) uint16 {
	if !d.need(2, what) {
		return 0
	}
	v := binary.BigEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v
}

func (d *decoder) u32(what string) uint32 {
	if !d.need(4, what) {
		return 0
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64(what string) uint64 {
	if !d.need(8, what) {
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

// str8 reads a u8-length-prefixed string.
func (d *decoder) str8(what string) string {
	n := int(d.u8(what))
	if !d.need(n, what) {
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

// str16 reads a u16-length-prefixed string.
func (d *decoder) str16(what string) string {
	n := int(d.u16(what))
	if !d.need(n, what) {
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

// window reads one fixed-size window encoding.
func (d *decoder) window() trace.WindowCounts {
	var w trace.WindowCounts
	if !d.need(windowWireLen, "window") {
		return w
	}
	w.Taken = int(binary.BigEndian.Uint32(d.buf[d.off:]))
	d.off += 4
	for i := range w.Opcode {
		w.Opcode[i] = int(binary.BigEndian.Uint32(d.buf[d.off:]))
		d.off += 4
	}
	for i := range w.Stride {
		w.Stride[i] = int(binary.BigEndian.Uint32(d.buf[d.off:]))
		d.off += 4
	}
	return w
}

// done asserts the payload was consumed exactly: trailing garbage is
// corruption, not padding.
func (d *decoder) done() {
	if d.err == nil && d.off != len(d.buf) {
		d.err = corrupt("%d trailing payload bytes", len(d.buf)-d.off)
	}
}
