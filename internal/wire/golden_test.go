package wire

import (
	"bytes"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"shmd/internal/trace"
)

// update regenerates the golden-frame corpus. The corpus is the wire
// compatibility contract: regenerating it is an intentional,
// reviewed protocol change, never a test-fixing reflex.
var update = flag.Bool("update", false, "rewrite the golden frame corpus")

// goldenWindow builds a deterministic window for the corpus.
func goldenWindow(salt int) trace.WindowCounts {
	var w trace.WindowCounts
	for i := range w.Opcode {
		w.Opcode[i] = (i*7+salt)%5 + 1
	}
	w.Taken = 2
	for i := range w.Stride {
		w.Stride[i] = (i + salt) % 3
	}
	return w
}

// goldenFrames enumerates every v1 frame type with a canonical sample
// value. Each entry becomes a byte-exact hex fixture under testdata/.
func goldenFrames(t *testing.T) map[string]Frame {
	t.Helper()
	detect, err := AppendDetectRequest(nil, DetectRequest{
		DeadlineMs: 250,
		Programs: []DetectProgram{
			{ID: "prog-0", Windows: []trace.WindowCounts{goldenWindow(1), goldenWindow(2)}},
			{Windows: []trace.WindowCounts{goldenWindow(3)}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	verdict, err := AppendVerdict(nil, Verdict{
		Session: 2,
		Hedged:  true,
		Results: []VerdictResult{
			{ID: "prog-0", Malware: true, Score: 0.8125, Confidence: 0.625, Attempts: 1, Windows: 2},
			{Unprotected: true, Score: 0.25, Confidence: 0.5, Attempts: 3, Windows: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	detectTenant, err := AppendDetectRequest(nil, DetectRequest{
		DeadlineMs: 250,
		Programs:   []DetectProgram{{ID: "prog-0", Windows: []trace.WindowCounts{goldenWindow(1)}}},
		Tenant:     "acme",
	})
	if err != nil {
		t.Fatal(err)
	}
	verdictTenant, err := AppendVerdict(nil, Verdict{
		Session: 2,
		Results: []VerdictResult{{ID: "prog-0", Score: 0.8125, Confidence: 0.625, Attempts: 1, Windows: 1}},
		Tenant:  "acme",
	})
	if err != nil {
		t.Fatal(err)
	}
	stream, err := AppendStreamRequest(nil, StreamRequest{
		StreamID: 7,
		Stride:   4,
		ID:       "collector-0",
		Windows:  []trace.WindowCounts{goldenWindow(1), goldenWindow(2)},
		Tenant:   "acme",
	})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Frame{
		"hello":      {Type: FrameHello, Payload: AppendHello(nil, Hello{Version: ProtoVersion, MaxFrame: DefaultMaxFramePayload})},
		"hello_meta": {Type: FrameHello, Payload: AppendHello(nil, Hello{Version: ProtoVersion, MaxFrame: DefaultMaxFramePayload, Meta: map[string]string{MetaTenant: "acme", MetaClass: "realtime"}})},
		"detect":     {Type: FrameDetect, Corr: 1, Payload: detect},
		"detect_tenant": {Type: FrameDetect, Corr: 1, Payload: detectTenant},
		"verdict":        {Type: FrameVerdict, Corr: 1, Payload: verdict},
		"verdict_tenant": {Type: FrameVerdict, Corr: 1, Payload: verdictTenant},
		"stream":         {Type: FrameStream, Corr: 6, Payload: stream},
		"error":          {Type: FrameError, Corr: 7, Payload: AppendErrorFrame(nil, ErrorFrame{Code: CodeOverloaded, Msg: "detection queue full"})},
		"error_retry":    {Type: FrameError, Corr: 7, Payload: AppendErrorFrame(nil, ErrorFrame{Code: CodeOverloaded, Msg: "detection queue full", RetryAfterSec: 2})},
		"ping":           {Type: FramePing, Corr: 9},
		"pong":       {Type: FramePong, Corr: 9},
		"goaway":     {Type: FrameGoAway, Payload: AppendGoAway(nil, GoAway{Code: 0, Msg: "draining"})},
		"health_req": {Type: FrameHealthReq, Corr: 3},
		"health":     {Type: FrameHealth, Corr: 3, Payload: []byte(`{"status":"ok"}`)},
	}
}

// goldenPath is a fixture's on-disk location.
func goldenPath(name string) string {
	return filepath.Join("testdata", "frame_"+name+".hex")
}

// readGolden loads one hex fixture.
func readGolden(t *testing.T, name string) []byte {
	t.Helper()
	raw, err := os.ReadFile(goldenPath(name))
	if err != nil {
		t.Fatalf("golden fixture %s missing (run with -update to regenerate): %v", name, err)
	}
	data, err := hex.DecodeString(strings.TrimSpace(string(raw)))
	if err != nil {
		t.Fatalf("golden fixture %s is not hex: %v", name, err)
	}
	return data
}

// TestGoldenFrameCorpus pins every v1 frame type byte-exactly: the
// committed fixture must decode, and re-encoding the decoded value
// must reproduce the fixture bit for bit. Any accidental wire change
// fails here loudly.
func TestGoldenFrameCorpus(t *testing.T) {
	frames := goldenFrames(t)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		for name, f := range frames {
			enc := hex.EncodeToString(EncodeFrame(f)) + "\n"
			if err := os.WriteFile(goldenPath(name), []byte(enc), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		// The unknown-type fixture: a future frame type that v1 must
		// skip with a warning, never treat as fatal.
		unknown := EncodeFrame(Frame{Type: 0x7F, Corr: 5, Payload: []byte("future frame")})
		if err := os.WriteFile(goldenPath("unknown"), []byte(hex.EncodeToString(unknown)+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	for name, want := range frames {
		t.Run(name, func(t *testing.T) {
			raw := readGolden(t, name)
			// The in-memory sample must encode to the committed bytes.
			if enc := EncodeFrame(want); !bytes.Equal(enc, raw) {
				t.Fatalf("encoding drifted from committed fixture:\n got %x\nwant %x", enc, raw)
			}
			f, n, err := DecodeFrame(raw, DefaultMaxFramePayload)
			if err != nil {
				t.Fatalf("decoding committed fixture: %v", err)
			}
			if n != len(raw) {
				t.Fatalf("consumed %d of %d fixture bytes", n, len(raw))
			}
			// Decode the payload with its typed codec and re-encode: the
			// canonical encoding must round-trip byte-exactly.
			reenc := reencodePayload(t, f)
			if !bytes.Equal(AppendFrame(nil, Frame{Type: f.Type, Corr: f.Corr, Payload: reenc}), raw) {
				t.Fatalf("payload re-encode drifted:\n got %x\nwant %x", reenc, f.Payload)
			}
		})
	}
}

// reencodePayload decodes f's payload with the typed codec for its
// frame type and re-encodes it canonically.
func reencodePayload(t *testing.T, f Frame) []byte {
	t.Helper()
	switch f.Type {
	case FrameDetect:
		req, err := DecodeDetectRequest(f.Payload)
		if err != nil {
			t.Fatal(err)
		}
		out, err := AppendDetectRequest(nil, req)
		if err != nil {
			t.Fatal(err)
		}
		return out
	case FrameVerdict:
		v, err := DecodeVerdict(f.Payload)
		if err != nil {
			t.Fatal(err)
		}
		out, err := AppendVerdict(nil, v)
		if err != nil {
			t.Fatal(err)
		}
		return out
	case FrameError:
		e, err := DecodeErrorFrame(f.Payload)
		if err != nil {
			t.Fatal(err)
		}
		return AppendErrorFrame(nil, e)
	case FrameHello:
		h, err := DecodeHello(f.Payload)
		if err != nil {
			t.Fatal(err)
		}
		return AppendHello(nil, h)
	case FrameGoAway:
		g, err := DecodeGoAway(f.Payload)
		if err != nil {
			t.Fatal(err)
		}
		return AppendGoAway(nil, g)
	case FrameStream:
		s, err := DecodeStreamRequest(f.Payload)
		if err != nil {
			t.Fatal(err)
		}
		out, err := AppendStreamRequest(nil, s)
		if err != nil {
			t.Fatal(err)
		}
		return out
	default:
		// PING/PONG/HEALTH_REQ are empty; HEALTH is opaque JSON.
		return f.Payload
	}
}

// TestGoldenUnknownFrameSkips pins the forward-compatibility
// behavior: a structurally valid frame of an unknown type decodes
// fine (so a reader can skip it) and reports Known() == false — the
// serving layer's contract is skip-with-warning, not
// kill-connection.
func TestGoldenUnknownFrameSkips(t *testing.T) {
	raw := readGolden(t, "unknown")
	f, n, err := DecodeFrame(raw, DefaultMaxFramePayload)
	if err != nil {
		t.Fatalf("unknown frame type must still decode structurally: %v", err)
	}
	if n != len(raw) {
		t.Fatalf("consumed %d of %d bytes", n, len(raw))
	}
	if f.Type.Known() {
		t.Fatalf("fixture type %v unexpectedly known to v1", f.Type)
	}
	// A stream carrying [unknown, ping] must deliver the ping after
	// the unknown frame is skipped.
	stream := append(append([]byte{}, raw...), EncodeFrame(Frame{Type: FramePing, Corr: 11})...)
	r := bytes.NewReader(stream)
	first, err := ReadWireFrame(r, DefaultMaxFramePayload)
	if err != nil || first.Type.Known() {
		t.Fatalf("first frame: %+v, %v", first, err)
	}
	second, err := ReadWireFrame(r, DefaultMaxFramePayload)
	if err != nil || second.Type != FramePing || second.Corr != 11 {
		t.Fatalf("second frame after skip: %+v, %v", second, err)
	}
}

// TestGoldenCorpusMutationsFailTyped flips every byte of every
// fixture and asserts the decoder reports a typed error — never a
// panic, never a silent success (CRC32 catches every single-byte
// mutation).
func TestGoldenCorpusMutationsFailTyped(t *testing.T) {
	names := make([]string, 0)
	for name := range goldenFrames(t) {
		names = append(names, name)
	}
	names = append(names, "unknown")
	for _, name := range names {
		raw := readGolden(t, name)
		for i := range raw {
			for _, flip := range []byte{0x01, 0x80} {
				mut := append([]byte{}, raw...)
				mut[i] ^= flip
				f, _, err := DecodeFrame(mut, DefaultMaxFramePayload)
				if err == nil {
					t.Fatalf("%s: byte %d ^ %#x decoded silently to %+v", name, i, flip, f)
				}
				var tooBig *TooLargeError
				if !errors.Is(err, ErrCorrupt) && !errors.As(err, &tooBig) {
					t.Fatalf("%s: byte %d ^ %#x: untyped error %v", name, i, flip, err)
				}
			}
		}
	}
}

// TestPreambleVersionSkew pins version negotiation at the preamble:
// good magic with a future version is readable (the caller decides
// how to answer), bad magic is corruption.
func TestPreambleVersionSkew(t *testing.T) {
	v, err := ReadPreamble(bytes.NewReader(AppendPreamble(nil, 2)))
	if err != nil || v != 2 {
		t.Fatalf("future version preamble: v=%d err=%v", v, err)
	}
	if _, err := ReadPreamble(strings.NewReader("SHMDJNL1\x01")); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("wrong magic: %v", err)
	}
	if _, err := ReadPreamble(strings.NewReader("SHMD")); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated preamble: %v", err)
	}
}

// TestFrameTypeStrings keeps the log vocabulary stable.
func TestFrameTypeStrings(t *testing.T) {
	if s := FrameDetect.String(); s != "DETECT" {
		t.Fatalf("FrameDetect = %q", s)
	}
	if s := FrameType(0x7F).String(); s != fmt.Sprintf("wire.FrameType(0x%02x)", 0x7F) {
		t.Fatalf("unknown type = %q", s)
	}
}
