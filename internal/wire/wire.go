// Package wire is the repo's shared framed-codec discipline. Three
// subsystems grew the same hand-rolled framing independently — the
// calibration journal (SHMDJNL1), the decision-trace format (SHMDTRC1),
// and anything that will ship detector state over a socket next — so
// the mechanics live here once:
//
//   - a *block* codec for whole-file payloads: magic + big-endian
//     uint32 length + payload + CRC32-IEEE trailer over every byte
//     before it, written atomically (temp file in the same directory,
//     fsync, rename) so a crash mid-write leaves the previous file
//     intact;
//   - a *frame* codec for record streams: the magic once, then per
//     record a big-endian uint32 length + payload + CRC32-IEEE of the
//     payload, so a torn tail loses at most the final record.
//
// Both codecs bound the lengths they will allocate for, so a corrupt
// length field can never drive a huge allocation, and both report
// every structural failure wrapped in ErrCorrupt. Callers that expose
// their own corruption sentinel (journal.ErrCorrupt, replay.ErrCorrupt)
// wrap these errors; the on-disk bytes are identical to what the
// hand-rolled encoders produced.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// ErrCorrupt marks data that failed structural or checksum validation.
var ErrCorrupt = errors.New("wire: corrupt")

// corrupt wraps a validation failure with ErrCorrupt.
func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// EncodeBlock frames payload as magic + BE32 length + payload +
// CRC32-IEEE over everything preceding the trailer.
func EncodeBlock(magic string, payload []byte) []byte {
	buf := make([]byte, 0, len(magic)+4+len(payload)+4)
	buf = append(buf, magic...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	return binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// DecodeBlock verifies a block's framing — magic, length, checksum —
// and returns the payload (aliasing raw). maxPayload bounds the length
// field it will believe.
func DecodeBlock(magic string, raw []byte, maxPayload int) ([]byte, error) {
	overhead := len(magic) + 4 + 4
	if len(raw) < overhead {
		return nil, corrupt("%d bytes, shorter than header+trailer", len(raw))
	}
	if string(raw[:len(magic)]) != magic {
		return nil, corrupt("bad magic %q", raw[:len(magic)])
	}
	n := binary.BigEndian.Uint32(raw[len(magic):])
	if n > uint32(maxPayload) || int(n) != len(raw)-overhead {
		return nil, corrupt("payload length %d does not match file size %d", n, len(raw))
	}
	bodyEnd := len(raw) - 4
	want := binary.BigEndian.Uint32(raw[bodyEnd:])
	if got := crc32.ChecksumIEEE(raw[:bodyEnd]); got != want {
		return nil, corrupt("CRC32 %08x, trailer says %08x", got, want)
	}
	return raw[len(magic)+4 : bodyEnd], nil
}

// WriteFileAtomic writes data to path via a temp file in the same
// directory, fsync, and rename, so a reader concurrent with the write
// sees either the old file or the new one, never a mixture, and a
// crash at any point leaves a loadable file. The directory itself is
// synced best-effort (some filesystems refuse directory fsync).
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+"-*")
	if err != nil {
		return fmt.Errorf("wire: temp file: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("wire: write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("wire: fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("wire: close: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("wire: rename: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// SaveBlock atomically writes one framed block to path.
func SaveBlock(path, magic string, payload []byte) error {
	return WriteFileAtomic(path, EncodeBlock(magic, payload))
}

// LoadBlock reads and verifies one framed block. A missing file
// returns the underlying fs.ErrNotExist untouched; structural damage
// wraps ErrCorrupt.
func LoadBlock(path, magic string, maxPayload int) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeBlock(magic, raw, maxPayload)
}

// FrameWriter streams length+payload+CRC frames after a one-time
// magic header.
type FrameWriter struct {
	w io.Writer
}

// NewFrameWriter writes the stream magic and returns a frame writer.
func NewFrameWriter(w io.Writer, magic string) (*FrameWriter, error) {
	if _, err := io.WriteString(w, magic); err != nil {
		return nil, err
	}
	return &FrameWriter{w: w}, nil
}

// WriteFrame writes one BE32 length + payload + CRC32(payload) frame.
func (fw *FrameWriter) WriteFrame(payload []byte) error {
	var frame [4]byte
	binary.BigEndian.PutUint32(frame[:], uint32(len(payload)))
	if _, err := fw.w.Write(frame[:]); err != nil {
		return err
	}
	if _, err := fw.w.Write(payload); err != nil {
		return err
	}
	binary.BigEndian.PutUint32(frame[:], crc32.ChecksumIEEE(payload))
	_, err := fw.w.Write(frame[:])
	return err
}

// FrameReader streams frames back out. Next returns io.EOF at a clean
// frame boundary; every other failure wraps ErrCorrupt.
type FrameReader struct {
	r          io.Reader
	maxPayload int
}

// NewFrameReader checks the stream magic and returns a frame reader
// whose Next refuses frames longer than maxPayload.
func NewFrameReader(r io.Reader, magic string, maxPayload int) (*FrameReader, error) {
	buf := make([]byte, len(magic))
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, corrupt("reading magic: %v", err)
	}
	if string(buf) != magic {
		return nil, corrupt("bad magic %q", buf)
	}
	return &FrameReader{r: r, maxPayload: maxPayload}, nil
}

// Next reads one frame's payload. io.EOF means the stream ended
// cleanly at a frame boundary; a torn or damaged frame wraps
// ErrCorrupt.
func (fr *FrameReader) Next() ([]byte, error) {
	var frame [4]byte
	if _, err := io.ReadFull(fr.r, frame[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, corrupt("torn record length: %v", err)
	}
	n := binary.BigEndian.Uint32(frame[:])
	if n > uint32(fr.maxPayload) {
		return nil, corrupt("record length %d exceeds %d", n, fr.maxPayload)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		return nil, corrupt("torn record payload: %v", err)
	}
	if _, err := io.ReadFull(fr.r, frame[:]); err != nil {
		return nil, corrupt("torn record checksum: %v", err)
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.BigEndian.Uint32(frame[:]); got != want {
		return nil, corrupt("checksum mismatch: %08x != %08x", got, want)
	}
	return payload, nil
}
