package wire

import (
	"bytes"
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
)

const testMagic = "SHMDTST1"

// TestBlockRoundTrip saves and loads a block through the atomic file
// path, then overwrites it to prove atomic replacement keeps the file
// loadable.
func TestBlockRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "block.bin")
	want := []byte(`{"entries":[{"k":"v"}]}`)
	if err := SaveBlock(path, testMagic, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBlock(path, testMagic, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("payload = %q, want %q", got, want)
	}
	if err := SaveBlock(path, testMagic, want[:4]); err != nil {
		t.Fatal(err)
	}
	got, err = LoadBlock(path, testMagic, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want[:4]) {
		t.Errorf("after overwrite: %q", got)
	}
}

func TestLoadBlockMissing(t *testing.T) {
	_, err := LoadBlock(filepath.Join(t.TempDir(), "nope.bin"), testMagic, 1<<20)
	if !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("missing file err = %v, want fs.ErrNotExist", err)
	}
	if errors.Is(err, ErrCorrupt) {
		t.Error("missing file misclassified as corrupt")
	}
}

// TestBlockCorruption is the exhaustive corruption corpus (moved here
// from internal/journal): flip every byte position in a valid block in
// turn and demand each mutant is rejected as corrupt — including the
// CRC trailer bytes — then reject every truncation length and trailing
// garbage.
func TestBlockCorruption(t *testing.T) {
	raw := EncodeBlock(testMagic, []byte(`{"entries":[{"rate":0.1,"depthMV":131.5}]}`))
	for i := range raw {
		flipped := append([]byte(nil), raw...)
		flipped[i] ^= 0xFF
		if _, err := DecodeBlock(testMagic, flipped, 1<<20); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("byte %d flipped: err = %v, want ErrCorrupt", i, err)
		}
	}
	for n := 0; n < len(raw); n++ {
		if _, err := DecodeBlock(testMagic, raw[:n], 1<<20); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncated to %d bytes: err = %v, want ErrCorrupt", n, err)
		}
	}
	if _, err := DecodeBlock(testMagic, append(append([]byte(nil), raw...), 'x'), 1<<20); !errors.Is(err, ErrCorrupt) {
		t.Errorf("trailing garbage: err = %v, want ErrCorrupt", err)
	}
}

// TestBlockLengthBound refuses a length field beyond maxPayload even
// when the file is self-consistent, so a hostile file cannot force a
// large allocation downstream.
func TestBlockLengthBound(t *testing.T) {
	raw := EncodeBlock(testMagic, bytes.Repeat([]byte{7}, 64))
	if _, err := DecodeBlock(testMagic, raw, 16); !errors.Is(err, ErrCorrupt) {
		t.Errorf("over-budget payload accepted: %v", err)
	}
}

// TestFrameRoundTrip streams several frames through the writer and
// reads them back, ending in a clean io.EOF.
func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	fw, err := NewFrameWriter(&buf, testMagic)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{[]byte("first"), {}, []byte("third-record")}
	for _, p := range want {
		if err := fw.WriteFrame(p); err != nil {
			t.Fatal(err)
		}
	}
	fr, err := NewFrameReader(bytes.NewReader(buf.Bytes()), testMagic, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range want {
		got, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, p) {
			t.Errorf("frame %d = %q, want %q", i, got, p)
		}
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Errorf("end of stream err = %v, want io.EOF", err)
	}
}

// TestFrameCorruption is the stream-side corruption corpus (moved here
// from internal/replay's reader tests): every byte flip and every
// truncation inside a framed record must surface as ErrCorrupt, never
// as a clean EOF or a silently different payload.
func TestFrameCorruption(t *testing.T) {
	var buf bytes.Buffer
	fw, err := NewFrameWriter(&buf, testMagic)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.WriteFrame([]byte("the-only-record")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	decode := func(b []byte) error {
		fr, err := NewFrameReader(bytes.NewReader(b), testMagic, 1<<10)
		if err != nil {
			return err
		}
		_, err = fr.Next()
		return err
	}
	if err := decode(raw); err != nil {
		t.Fatalf("pristine stream rejected: %v", err)
	}
	for i := range raw {
		flipped := append([]byte(nil), raw...)
		flipped[i] ^= 0xFF
		if err := decode(flipped); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("byte %d flipped: err = %v, want ErrCorrupt", i, err)
		}
	}
	// A stream cut exactly at the magic is a clean empty stream, not
	// corruption: the next frame simply never started.
	{
		fr, err := NewFrameReader(bytes.NewReader(raw[:len(testMagic)]), testMagic, 1<<10)
		if err != nil {
			t.Fatalf("bare magic rejected: %v", err)
		}
		if _, err := fr.Next(); err != io.EOF {
			t.Errorf("bare magic Next err = %v, want io.EOF", err)
		}
	}
	// Truncations past the magic tear the record; before that they tear
	// the magic itself. Both are corrupt, at every length.
	for n := len(testMagic) + 1; n < len(raw); n++ {
		if err := decode(raw[:n]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncated to %d bytes: err = %v, want ErrCorrupt", n, err)
		}
	}
	for n := 0; n < len(testMagic); n++ {
		if err := decode(raw[:n]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("magic truncated to %d bytes: err = %v, want ErrCorrupt", n, err)
		}
	}
	// An oversized length field is refused before allocation.
	huge := append([]byte(nil), raw...)
	huge[len(testMagic)] = 0xFF
	if err := decode(huge); !errors.Is(err, ErrCorrupt) {
		t.Errorf("oversized length accepted: %v", err)
	}
}

// TestWriteFileAtomicReplaces proves the temp+rename path replaces an
// existing file and never leaves the temp file behind.
func TestWriteFileAtomicReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := WriteFileAtomic(path, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("two")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "two" {
		t.Errorf("content = %q", got)
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 {
		t.Errorf("stray files in dir: %v", names)
	}
}
