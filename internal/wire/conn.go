package wire

// Conn wraps a net.Conn with the SHMDWIRE preamble exchange and
// frame-at-a-time I/O. It is the one connection type every SHMDWIRE
// endpoint shares — the serve listener, the router's upstream pool,
// and the client SDK — so handshake and framing behave identically
// at every hop.
//
// Reads are single-consumer (one reader goroutine per connection);
// writes are serialized internally, so any number of goroutines may
// WriteFrame concurrently — that is what lets a server interleave
// verdict frames from concurrent detections onto one connection.

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"
)

// Conn is one SHMDWIRE connection. Construct with NewConn, then
// Handshake before any frame I/O.
type Conn struct {
	nc net.Conn
	br *bufio.Reader

	wmu sync.Mutex
	bw  *bufio.Writer
	// encBuf is the reusable frame-encoding buffer (guarded by wmu).
	encBuf []byte

	maxPayload  int
	peerVersion uint8
}

// NewConn wraps nc. maxPayload bounds incoming frame payloads
// (0 = DefaultMaxFramePayload).
func NewConn(nc net.Conn, maxPayload int) *Conn {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxFramePayload
	}
	return &Conn{
		nc:         nc,
		br:         bufio.NewReaderSize(nc, 32<<10),
		bw:         bufio.NewWriterSize(nc, 32<<10),
		maxPayload: maxPayload,
	}
}

// Handshake sends our preamble and reads the peer's, within the given
// budget (0 = no deadline). It returns the peer's advertised version
// without judging it: the caller decides whether to answer a skewed
// version with a typed ERROR frame (server) or hang up (client).
func (c *Conn) Handshake(timeout time.Duration) (uint8, error) {
	if timeout > 0 {
		if err := c.nc.SetDeadline(time.Now().Add(timeout)); err != nil {
			return 0, err
		}
		defer c.nc.SetDeadline(time.Time{})
	}
	// Write first, then read: both sides send eagerly, so neither
	// blocks waiting for the other's preamble.
	c.wmu.Lock()
	err := WritePreamble(c.bw, ProtoVersion)
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		return 0, fmt.Errorf("wire: sending preamble: %w", err)
	}
	v, err := ReadPreamble(c.br)
	if err != nil {
		return 0, err
	}
	c.peerVersion = v
	return v, nil
}

// PeerVersion returns the version the peer advertised in Handshake.
func (c *Conn) PeerVersion() uint8 { return c.peerVersion }

// MaxPayload returns the incoming payload bound.
func (c *Conn) MaxPayload() int { return c.maxPayload }

// ReadFrame reads the next frame. io.EOF means the peer closed at a
// frame boundary; *TooLargeError means an oversized frame was skipped
// and the stream is still synchronized; everything else wraps
// ErrCorrupt or is a transport error.
func (c *Conn) ReadFrame() (Frame, error) {
	return ReadWireFrame(c.br, c.maxPayload)
}

// SetReadDeadline bounds the next ReadFrame (zero clears it).
func (c *Conn) SetReadDeadline(t time.Time) error { return c.nc.SetReadDeadline(t) }

// WriteFrame encodes and sends one frame. Safe for concurrent use;
// each frame is flushed whole, so frames from concurrent writers
// never interleave.
func (c *Conn) WriteFrame(f Frame) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.encBuf = AppendFrame(c.encBuf[:0], f)
	if _, err := c.bw.Write(c.encBuf); err != nil {
		return err
	}
	return c.bw.Flush()
}

// WriteError sends an ERROR frame correlated to corr.
func (c *Conn) WriteError(corr uint64, code ErrorCode, msg string) error {
	return c.WriteFrame(Frame{Type: FrameError, Corr: corr, Payload: AppendErrorFrame(nil, ErrorFrame{Code: code, Msg: msg})})
}

// RemoteAddr exposes the peer address for logs.
func (c *Conn) RemoteAddr() net.Addr { return c.nc.RemoteAddr() }

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.nc.Close() }

// Dial opens a SHMDWIRE connection to addr and completes the
// handshake. A peer speaking an unsupported version (or not speaking
// SHMDWIRE at all) fails here, never mid-stream.
func Dial(addr string, timeout time.Duration, maxPayload int) (*Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	c := NewConn(nc, maxPayload)
	v, err := c.Handshake(timeout)
	if err != nil {
		nc.Close()
		return nil, err
	}
	if v != ProtoVersion {
		nc.Close()
		return nil, fmt.Errorf("%w: peer %s speaks v%d, this client speaks v%d", ErrVersion, addr, v, ProtoVersion)
	}
	return c, nil
}
