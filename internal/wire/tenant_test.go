package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"shmd/internal/trace"
)

// TestHelloMetaRoundTrip pins the v1.1 HELLO metadata section: an
// empty map encodes byte-identically to a pre-metadata HELLO, and a
// populated map survives a round trip with sorted, canonical bytes.
func TestHelloMetaRoundTrip(t *testing.T) {
	bare := AppendHello(nil, Hello{Version: 1, MaxFrame: 1 << 20})
	if len(bare) != 5 {
		t.Fatalf("bare HELLO is %d bytes, want the pre-metadata 5", len(bare))
	}
	h := Hello{Version: 1, MaxFrame: 1 << 20, Meta: map[string]string{
		MetaTenant: "acme",
		MetaClass:  "realtime",
	}}
	enc := AppendHello(nil, h)
	if !bytes.Equal(enc[:5], bare) {
		t.Fatalf("metadata moved the base fields:\n got %x\nwant prefix %x", enc, bare)
	}
	got, err := DecodeHello(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta[MetaTenant] != "acme" || got.Meta[MetaClass] != "realtime" || len(got.Meta) != 2 {
		t.Fatalf("meta round trip: %+v", got.Meta)
	}
	if re := AppendHello(nil, got); !bytes.Equal(re, enc) {
		t.Fatalf("re-encode not canonical:\n got %x\nwant %x", re, enc)
	}
}

// TestHelloMetaLegacySkip is the version-stability regression: an
// endpoint built before the metadata section existed must handle a
// metadata-bearing HELLO cleanly. Two layers guarantee that:
//
//  1. the frame layer is payload-agnostic — the frame decodes, and a
//     stream carrying [hello+meta, ping] still delivers the ping;
//  2. the pre-metadata payload fields sit byte-for-byte at the front,
//     so a legacy reader that stops after version+max_frame (frozen
//     here exactly as v1.0 read them) extracts the right values and
//     skips the tail it does not know.
func TestHelloMetaLegacySkip(t *testing.T) {
	payload := AppendHello(nil, Hello{Version: 1, MaxFrame: 1 << 20, Meta: map[string]string{MetaTenant: "acme"}})
	raw := EncodeFrame(Frame{Type: FrameHello, Payload: payload})

	f, n, err := DecodeFrame(raw, DefaultMaxFramePayload)
	if err != nil || n != len(raw) || f.Type != FrameHello {
		t.Fatalf("frame-level decode of metadata-bearing HELLO: %+v, n=%d, %v", f, n, err)
	}

	// Frozen v1.0 payload reader: version u8 + max_frame u32, tail
	// ignored (the unknown-field rule in PROTOCOL.md §3).
	if len(f.Payload) < 5 {
		t.Fatalf("payload too short: %d", len(f.Payload))
	}
	if v := f.Payload[0]; v != 1 {
		t.Fatalf("legacy version read = %d", v)
	}
	if mf := binary.BigEndian.Uint32(f.Payload[1:5]); mf != 1<<20 {
		t.Fatalf("legacy max_frame read = %d", mf)
	}

	// The connection keeps flowing past it.
	streamBytes := append(append([]byte{}, raw...), EncodeFrame(Frame{Type: FramePing, Corr: 3})...)
	r := bytes.NewReader(streamBytes)
	if first, err := ReadWireFrame(r, DefaultMaxFramePayload); err != nil || first.Type != FrameHello {
		t.Fatalf("first frame: %+v, %v", first, err)
	}
	if second, err := ReadWireFrame(r, DefaultMaxFramePayload); err != nil || second.Type != FramePing || second.Corr != 3 {
		t.Fatalf("second frame after metadata HELLO: %+v, %v", second, err)
	}
}

// TestHelloMetaNonCanonical pins the rejects that keep the encoding
// one-to-one: a present-but-empty section, unsorted or duplicate
// keys, and empty keys are corruption, not alternate spellings.
func TestHelloMetaNonCanonical(t *testing.T) {
	base := AppendHello(nil, Hello{Version: 1, MaxFrame: 64})
	cases := map[string][]byte{
		"empty section":  append(append([]byte{}, base...), 0),
		"empty key":      append(append([]byte{}, base...), 1, 0, 1, 'x'),
		"unsorted keys":  append(append([]byte{}, base...), 2, 1, 'b', 0, 1, 'a', 0),
		"duplicate keys": append(append([]byte{}, base...), 2, 1, 'a', 0, 1, 'a', 0),
		"truncated pair": append(append([]byte{}, base...), 1, 3, 'a'),
	}
	for name, p := range cases {
		if _, err := DecodeHello(p); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: got %v, want ErrCorrupt", name, err)
		}
	}
}

// TestTenantTailRoundTrip pins the DETECT/VERDICT/STREAM tenant tag
// tails: absent encodes to the v1.0 bytes, present round-trips, and a
// present-but-empty tag is rejected as non-canonical.
func TestTenantTailRoundTrip(t *testing.T) {
	req := DetectRequest{
		DeadlineMs: 9,
		Programs:   []DetectProgram{{ID: "p", Windows: []trace.WindowCounts{goldenWindow(1)}}},
	}
	bare, err := AppendDetectRequest(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	req.Tenant = "acme"
	tagged, err := AppendDetectRequest(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tagged[:len(bare)], bare) {
		t.Fatal("tenant tag moved the base DETECT fields")
	}
	got, err := DecodeDetectRequest(tagged)
	if err != nil || got.Tenant != "acme" {
		t.Fatalf("tagged DETECT decode: tenant=%q err=%v", got.Tenant, err)
	}
	if _, err := DecodeDetectRequest(append(append([]byte{}, bare...), 0)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("empty tenant tag must be corrupt, got %v", err)
	}

	v := Verdict{Session: 1, Results: []VerdictResult{{ID: "p", Windows: 1, Attempts: 1}}, Tenant: "acme"}
	venc, err := AppendVerdict(nil, v)
	if err != nil {
		t.Fatal(err)
	}
	vgot, err := DecodeVerdict(venc)
	if err != nil || vgot.Tenant != "acme" {
		t.Fatalf("tagged VERDICT decode: tenant=%q err=%v", vgot.Tenant, err)
	}
}

// TestStreamRequestRoundTrip pins the STREAM payload codec.
func TestStreamRequestRoundTrip(t *testing.T) {
	req := StreamRequest{
		StreamID: 42,
		Close:    true,
		Stride:   3,
		ID:       "collector",
		Windows:  []trace.WindowCounts{goldenWindow(1), goldenWindow(2)},
		Tenant:   "acme",
	}
	enc, err := AppendStreamRequest(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeStreamRequest(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.StreamID != 42 || !got.Close || got.Stride != 3 || got.ID != "collector" ||
		len(got.Windows) != 2 || got.Tenant != "acme" {
		t.Fatalf("round trip: %+v", got)
	}
	re, err := AppendStreamRequest(nil, got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re, enc) {
		t.Fatalf("re-encode not identity:\n got %x\nwant %x", re, enc)
	}
	// Reserved flag bits are corruption.
	bad := append([]byte{}, enc...)
	bad[4] |= 0x80
	if _, err := DecodeStreamRequest(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("reserved stream flags: got %v", err)
	}
}

// TestErrorRetryAfterTail pins the ERROR retry-hint tail: the v1.0
// two-field form still decodes, the hint round-trips, and an explicit
// zero hint is non-canonical.
func TestErrorRetryAfterTail(t *testing.T) {
	old := AppendErrorFrame(nil, ErrorFrame{Code: CodeOverloaded, Msg: "full"})
	if e, err := DecodeErrorFrame(old); err != nil || e.RetryAfterSec != 0 {
		t.Fatalf("v1.0 ERROR decode: %+v, %v", e, err)
	}
	hinted := AppendErrorFrame(nil, ErrorFrame{Code: CodeOverloaded, Msg: "full", RetryAfterSec: 2})
	if !bytes.Equal(hinted[:len(old)], old) {
		t.Fatal("retry hint moved the base ERROR fields")
	}
	e, err := DecodeErrorFrame(hinted)
	if err != nil || e.RetryAfterSec != 2 {
		t.Fatalf("hinted ERROR decode: %+v, %v", e, err)
	}
	zero := append(append([]byte{}, old...), 0, 0)
	if _, err := DecodeErrorFrame(zero); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("zero retry hint must be corrupt, got %v", err)
	}
}
