package wire

// SHMDWIRE v1 — the repo's binary wire protocol for persistent detect
// connections. The full specification lives in PROTOCOL.md; this file
// is the frame layer only:
//
//   - a connection preamble each direction sends once: the 8-byte
//     magic "SHMDWIRE" followed by a 1-byte protocol version;
//   - self-delimiting frames: type(1) + flags(1) + correlation id
//     (8, BE) + payload length (4, BE) + payload + CRC32-IEEE (4, BE)
//     over every byte of the frame before the trailer.
//
// Framing is version-stable by construction: a v1 endpoint can skip
// any structurally valid frame it does not understand (the length and
// checksum never depend on the type), which is what lets unknown
// frame types be skipped with a warning instead of killing the
// connection, and lets future versions add frame types without a
// flag day. Every structural failure wraps ErrCorrupt, consistent
// with the block and record codecs in this package; an oversized
// frame is the one recoverable failure and gets its own typed error
// (TooLargeError) because the reader can resynchronize past it.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

const (
	// ProtoMagic opens every SHMDWIRE connection, once per direction.
	ProtoMagic = "SHMDWIRE"
	// ProtoVersion is the protocol version this package implements.
	ProtoVersion = 1
	// PreambleLen is the connection preamble size: magic + version.
	PreambleLen = len(ProtoMagic) + 1
	// FrameHeaderLen is type + flags + correlation id + payload length.
	FrameHeaderLen = 1 + 1 + 8 + 4
	// FrameTrailerLen is the CRC32-IEEE trailer.
	FrameTrailerLen = 4
	// DefaultMaxFramePayload bounds the payload length a reader will
	// believe (matching the HTTP transport's default body limit).
	DefaultMaxFramePayload = 4 << 20
)

// FrameType identifies a v1 frame. The zero value is invalid on the
// wire, so a torn header never masquerades as a real frame type.
type FrameType uint8

const (
	// FrameHello is the server's post-preamble greeting: its version
	// and frame payload limit.
	FrameHello FrameType = 0x01
	// FrameDetect carries one detect request (client → server).
	FrameDetect FrameType = 0x02
	// FrameVerdict carries the verdicts for one detect request.
	FrameVerdict FrameType = 0x03
	// FrameError is a per-request typed failure (correlated) or a
	// connection-level failure (correlation id 0).
	FrameError FrameType = 0x04
	// FramePing / FramePong are liveness probes; the pong echoes the
	// ping's correlation id.
	FramePing FrameType = 0x05
	FramePong FrameType = 0x06
	// FrameGoAway is the drain signal: the sender will accept no new
	// requests on this connection but will finish in-flight ones.
	FrameGoAway FrameType = 0x07
	// FrameHealthReq asks for the server's health report.
	FrameHealthReq FrameType = 0x08
	// FrameHealth answers FrameHealthReq with an opaque JSON payload.
	FrameHealth FrameType = 0x09
	// FrameStream appends windows to a long-lived sliding-window
	// detection stream (client → server); the server answers each
	// append with a VERDICT carrying the re-scorings it triggered.
	FrameStream FrameType = 0x0A
)

// Known reports whether t is a frame type this version understands.
// Unknown types with valid framing are skipped, never fatal.
func (t FrameType) Known() bool {
	return t >= FrameHello && t <= FrameStream
}

// String names the frame type for logs and errors.
func (t FrameType) String() string {
	switch t {
	case FrameHello:
		return "HELLO"
	case FrameDetect:
		return "DETECT"
	case FrameVerdict:
		return "VERDICT"
	case FrameError:
		return "ERROR"
	case FramePing:
		return "PING"
	case FramePong:
		return "PONG"
	case FrameGoAway:
		return "GOAWAY"
	case FrameHealthReq:
		return "HEALTH_REQ"
	case FrameHealth:
		return "HEALTH"
	case FrameStream:
		return "STREAM"
	default:
		return fmt.Sprintf("wire.FrameType(0x%02x)", uint8(t))
	}
}

// ErrorCode classifies a FrameError payload. The values deliberately
// mirror HTTP status codes so the two transports shed, reject, and
// fail with the same vocabulary (and the same metrics buckets).
type ErrorCode uint16

const (
	// CodeBadRequest: the request failed validation.
	CodeBadRequest ErrorCode = 400
	// CodeForbidden: the tenant is unknown to the server's registry.
	CodeForbidden ErrorCode = 403
	// CodeTooLarge: the frame exceeded the receiver's payload limit.
	CodeTooLarge ErrorCode = 413
	// CodeOverloaded: admission queue full; retry after backoff.
	CodeOverloaded ErrorCode = 429
	// CodeBadGateway: a router's backends are reachable but misbehaving.
	CodeBadGateway ErrorCode = 502
	// CodeInternal: the detection itself failed.
	CodeInternal ErrorCode = 500
	// CodeUnavailable: draining, pool closed, or deadline expired.
	CodeUnavailable ErrorCode = 503
	// CodeVersion: the peer's protocol version is not supported.
	CodeVersion ErrorCode = 505
)

// ErrVersion marks a connection whose peer speaks an unsupported
// protocol version.
var ErrVersion = errors.New("wire: unsupported protocol version")

// Frame is one decoded SHMDWIRE frame.
type Frame struct {
	Type FrameType
	// Flags is reserved in v1 and must be zero on the wire.
	Flags uint8
	// Corr correlates requests with their responses on a multiplexed
	// connection. 0 is reserved for connection-level frames.
	Corr uint64
	// Payload is the frame body; its codec depends on Type.
	Payload []byte
}

// TooLargeError reports a frame whose payload length exceeded the
// reader's limit. The reader has already consumed and discarded the
// frame, so the connection is still synchronized: the receiver can
// answer with a typed CodeTooLarge error instead of dying.
type TooLargeError struct {
	Type FrameType
	Corr uint64
	Len  int
	Max  int
}

// Error implements error.
func (e *TooLargeError) Error() string {
	return fmt.Sprintf("wire: %v frame payload %d exceeds limit %d", e.Type, e.Len, e.Max)
}

// AppendPreamble appends the connection preamble for version v.
func AppendPreamble(dst []byte, v uint8) []byte {
	dst = append(dst, ProtoMagic...)
	return append(dst, v)
}

// WritePreamble writes the connection preamble for version v.
func WritePreamble(w io.Writer, v uint8) error {
	_, err := w.Write(AppendPreamble(nil, v))
	return err
}

// ReadPreamble consumes and validates the peer's connection preamble,
// returning the version it advertises. Bad magic wraps ErrCorrupt —
// nothing after it can be trusted.
func ReadPreamble(r io.Reader) (uint8, error) {
	buf := make([]byte, PreambleLen)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, corrupt("reading preamble: %v", err)
	}
	if string(buf[:len(ProtoMagic)]) != ProtoMagic {
		return 0, corrupt("bad protocol magic %q", buf[:len(ProtoMagic)])
	}
	return buf[len(ProtoMagic)], nil
}

// AppendFrame appends the encoded frame to dst and returns it.
func AppendFrame(dst []byte, f Frame) []byte {
	start := len(dst)
	dst = append(dst, byte(f.Type), f.Flags)
	dst = binary.BigEndian.AppendUint64(dst, f.Corr)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(f.Payload)))
	dst = append(dst, f.Payload...)
	return binary.BigEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:]))
}

// EncodeFrame encodes one frame.
func EncodeFrame(f Frame) []byte {
	return AppendFrame(make([]byte, 0, FrameHeaderLen+len(f.Payload)+FrameTrailerLen), f)
}

// DecodeFrame decodes the first frame in raw, returning the frame and
// the number of bytes consumed. Structural damage wraps ErrCorrupt; a
// payload length beyond maxPayload returns a *TooLargeError with the
// consumed size set so a buffer-based caller can skip the frame.
func DecodeFrame(raw []byte, maxPayload int) (Frame, int, error) {
	if len(raw) < FrameHeaderLen+FrameTrailerLen {
		return Frame{}, 0, corrupt("%d bytes, shorter than frame header+trailer", len(raw))
	}
	f := Frame{
		Type:  FrameType(raw[0]),
		Flags: raw[1],
		Corr:  binary.BigEndian.Uint64(raw[2:10]),
	}
	n := binary.BigEndian.Uint32(raw[10:14])
	if n > uint32(maxPayload) {
		total := FrameHeaderLen + int(n) + FrameTrailerLen
		if int(n) < 0 || total < 0 {
			return Frame{}, 0, corrupt("frame length %d overflows", n)
		}
		return Frame{}, total, &TooLargeError{Type: f.Type, Corr: f.Corr, Len: int(n), Max: maxPayload}
	}
	total := FrameHeaderLen + int(n) + FrameTrailerLen
	if len(raw) < total {
		return Frame{}, 0, corrupt("frame claims %d payload bytes, only %d remain", n, len(raw)-FrameHeaderLen-FrameTrailerLen)
	}
	body := raw[:FrameHeaderLen+int(n)]
	want := binary.BigEndian.Uint32(raw[FrameHeaderLen+int(n) : total])
	if got := crc32.ChecksumIEEE(body); got != want {
		return Frame{}, 0, corrupt("frame CRC32 %08x, trailer says %08x", got, want)
	}
	if f.Flags != 0 {
		return Frame{}, 0, corrupt("reserved frame flags 0x%02x set", f.Flags)
	}
	f.Payload = raw[FrameHeaderLen : FrameHeaderLen+int(n)]
	return f, total, nil
}

// ReadWireFrame reads one frame from r. An oversized frame is consumed
// (payload discarded) and reported as *TooLargeError, leaving the
// stream synchronized on the next frame boundary; every other failure
// wraps ErrCorrupt except a clean io.EOF at a frame boundary.
func ReadWireFrame(r io.Reader, maxPayload int) (Frame, error) {
	var hdr [FrameHeaderLen]byte
	if n, err := io.ReadFull(r, hdr[:]); err != nil {
		if n == 0 {
			// Nothing of the frame arrived: a clean close (io.EOF) or a
			// transport error at a frame boundary, not corruption —
			// returned unwrapped so callers can match net.ErrClosed.
			return Frame{}, err
		}
		return Frame{}, corrupt("torn frame header: %v", err)
	}
	f := Frame{
		Type:  FrameType(hdr[0]),
		Flags: hdr[1],
		Corr:  binary.BigEndian.Uint64(hdr[2:10]),
	}
	n := binary.BigEndian.Uint32(hdr[10:14])
	if n > uint32(maxPayload) {
		// Drain payload + trailer so the next read starts on a frame
		// boundary; the peer's framing is fine, only the size is not.
		if _, err := io.CopyN(io.Discard, r, int64(n)+FrameTrailerLen); err != nil {
			return Frame{}, corrupt("torn oversized frame: %v", err)
		}
		return Frame{}, &TooLargeError{Type: f.Type, Corr: f.Corr, Len: int(n), Max: maxPayload}
	}
	body := make([]byte, FrameHeaderLen+int(n)+FrameTrailerLen)
	copy(body, hdr[:])
	if _, err := io.ReadFull(r, body[FrameHeaderLen:]); err != nil {
		return Frame{}, corrupt("torn frame payload: %v", err)
	}
	want := binary.BigEndian.Uint32(body[FrameHeaderLen+int(n):])
	if got := crc32.ChecksumIEEE(body[:FrameHeaderLen+int(n)]); got != want {
		return Frame{}, corrupt("frame CRC32 %08x, trailer says %08x", got, want)
	}
	if f.Flags != 0 {
		return Frame{}, corrupt("reserved frame flags 0x%02x set", f.Flags)
	}
	f.Payload = body[FrameHeaderLen : FrameHeaderLen+int(n)]
	return f, nil
}
