package attack

import (
	"sync"
	"testing"

	"shmd/internal/core"
	"shmd/internal/dataset"
	"shmd/internal/features"
	"shmd/internal/hmd"
)

var (
	fixtureOnce sync.Once
	fixtureData *dataset.Dataset
	fixtureHMD  *hmd.HMD
	fixtureErr  error
)

func fixtures(t *testing.T) (*dataset.Dataset, *hmd.HMD) {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureData, fixtureErr = dataset.Generate(dataset.QuickConfig(1))
		if fixtureErr != nil {
			return
		}
		split, err := fixtureData.ThreeFold(0)
		if err != nil {
			fixtureErr = err
			return
		}
		fixtureHMD, fixtureErr = hmd.Train(fixtureData.Select(split.VictimTrain), hmd.Config{Seed: 1})
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixtureData, fixtureHMD
}

func stochasticVictim(t *testing.T, base *hmd.HMD, seed uint64) *core.StochasticHMD {
	t.Helper()
	s, err := core.New(base.WithFreshBuffers(), core.Options{ErrorRate: 0.1, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestProxyKindStrings(t *testing.T) {
	if ProxyMLP.String() != "MLP" || ProxyLR.String() != "LR" || ProxyDT.String() != "DT" {
		t.Error("proxy kind names wrong")
	}
	if ProxyKind(9).String() != "proxy(9)" {
		t.Error("unknown kind name wrong")
	}
	if len(ProxyKinds()) != 3 {
		t.Error("three proxy kinds expected")
	}
}

func TestReverseEngineerValidation(t *testing.T) {
	_, base := fixtures(t)
	if _, err := ReverseEngineer(base, nil, REConfig{}); err == nil {
		t.Error("empty query set must error")
	}
	d, _ := fixtures(t)
	if _, err := ReverseEngineer(base, d.Programs[:2], REConfig{Kind: ProxyKind(9)}); err == nil {
		t.Error("unknown kind must error")
	}
}

func TestBaselineReverseEngineeringIsEffective(t *testing.T) {
	// Fig 3 baseline bars: against a deterministic victim the MLP
	// proxy agrees almost perfectly.
	d, base := fixtures(t)
	split, _ := d.ThreeFold(0)
	for _, kind := range ProxyKinds() {
		proxy, err := ReverseEngineer(base, d.Select(split.AttackerTrain), REConfig{Kind: kind, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		eff, err := Effectiveness(proxy, base, d.Select(split.Test))
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("baseline RE effectiveness (%v, attacker data): %.4f", kind, eff)
		min := 0.9
		if kind != ProxyMLP {
			min = 0.8
		}
		if eff < min {
			t.Errorf("%v effectiveness = %v, want >= %v", kind, eff, min)
		}
	}
}

func TestStochasticVictimResistsReverseEngineering(t *testing.T) {
	// Fig 3 stochastic bars: RE effectiveness drops against the
	// undervolted victim.
	d, base := fixtures(t)
	split, _ := d.ThreeFold(0)
	attacker := d.Select(split.AttackerTrain)
	test := d.Select(split.Test)

	baseProxy, err := ReverseEngineer(base, attacker, REConfig{Kind: ProxyMLP, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	baseEff, err := Effectiveness(baseProxy, base, test)
	if err != nil {
		t.Fatal(err)
	}

	victim := stochasticVictim(t, base, 4)
	stochProxy, err := ReverseEngineer(victim, attacker, REConfig{Kind: ProxyMLP, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	stochEff, err := Effectiveness(stochProxy, victim, test)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("MLP RE effectiveness: baseline %.4f, stochastic %.4f", baseEff, stochEff)
	if stochEff >= baseEff {
		t.Errorf("stochastic victim must be harder to reverse-engineer: %v vs %v", stochEff, baseEff)
	}
}

func TestEvadeValidation(t *testing.T) {
	d, base := fixtures(t)
	split, _ := d.ThreeFold(0)
	proxy, err := ReverseEngineer(base, d.Select(split.AttackerTrain)[:20], REConfig{Kind: ProxyLR, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var benign dataset.TracedProgram
	for _, p := range d.Programs {
		if !p.IsMalware() {
			benign = p
			break
		}
	}
	if _, err := Evade(proxy, benign, EvasionConfig{}); err == nil {
		t.Error("evading with a benign program must error")
	}
	malware := d.Select(d.MalwareOf(split.Test))[0]
	if _, err := Evade(proxy, malware, EvasionConfig{Margin: 0.6}); err == nil {
		t.Error("margin >= 0.5 must error")
	}
	if _, err := Evade(proxy, malware, EvasionConfig{StepFraction: 2, MaxOverhead: 1}); err == nil {
		t.Error("step above overhead cap must error")
	}
}

func TestEvasionAgainstBaselineTransfers(t *testing.T) {
	// Fig 4 baseline bars: evasive malware crafted on an accurate
	// proxy transfers to the deterministic victim at a high rate.
	d, base := fixtures(t)
	split, _ := d.ThreeFold(0)
	attacker := d.Select(split.AttackerTrain)
	proxy, err := ReverseEngineer(base, attacker, REConfig{Kind: ProxyMLP, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	targets := d.Select(d.MalwareOf(split.Test))[:40]
	results, err := EvadeAll(proxy, targets, EvasionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) < 10 {
		t.Fatalf("only %d/%d samples evaded the proxy", len(results), len(targets))
	}
	transfer, err := Transferability(results, base)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("baseline transferability (MLP proxy): %.4f over %d evasive samples", transfer, len(results))
	if transfer < 0.5 {
		t.Errorf("baseline transferability = %v, want >= 0.5", transfer)
	}

	// Evasion preserves the payload: injections only ever add.
	for _, r := range results {
		for w := range r.Windows {
			for op, n := range r.Windows[w].Opcode {
				if n < r.Program.Windows[w].Opcode[op] {
					t.Fatal("evasion removed payload instructions")
				}
			}
		}
		if r.Overhead > 1.0001 {
			t.Errorf("overhead %v exceeds cap", r.Overhead)
		}
	}
}

func TestStochasticHMDCatchesEvasiveMalware(t *testing.T) {
	// The headline result (Figs 4/5): evasive malware crafted against
	// a proxy of the stochastic victim is still detected at a high
	// rate, far above the baseline victim's.
	d, base := fixtures(t)
	split, _ := d.ThreeFold(0)
	attacker := d.Select(split.AttackerTrain)
	targets := d.Select(d.MalwareOf(split.Test))[:40]

	// Attack the baseline victim.
	baseProxy, err := ReverseEngineer(base, attacker, REConfig{Kind: ProxyMLP, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	baseResults, err := EvadeAll(baseProxy, targets, EvasionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	baseDetect, err := DetectionRate(baseResults, base)
	if err != nil {
		t.Fatal(err)
	}

	// Attack the stochastic victim end to end: reverse-engineer it,
	// craft on that proxy, test against it. Pooled over three
	// independently seeded victims — a single roll is dominated by
	// that roll's proxy quality (the same variance Fig 4 averages
	// over), not by the defense.
	detected, total := 0.0, 0
	for r := uint64(0); r < 3; r++ {
		victim := stochasticVictim(t, base, 8+100*r)
		stochProxy, err := ReverseEngineer(victim, attacker, REConfig{Kind: ProxyMLP, Seed: 7 + 100*r})
		if err != nil {
			t.Fatal(err)
		}
		stochResults, err := EvadeAll(stochProxy, targets, EvasionConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if len(stochResults) == 0 {
			continue
		}
		roll, err := DetectionRate(stochResults, victim)
		if err != nil {
			t.Fatal(err)
		}
		detected += roll * float64(len(stochResults))
		total += len(stochResults)
	}
	if total == 0 {
		t.Skip("no samples evaded any stochastic proxy at test scale")
	}
	stochDetect := detected / float64(total)
	t.Logf("evasive-malware detection: baseline %.4f, stochastic %.4f (n=%d/%d)",
		baseDetect, stochDetect, len(baseResults), total)
	if stochDetect <= baseDetect {
		t.Errorf("stochastic detection %v must beat baseline %v", stochDetect, baseDetect)
	}
	// Quick-scale proxies are weak, so the absolute rate sits well
	// below the full-scale ≈93% (see TestFullScaleProbe); the floor
	// here guards the mechanism, not the paper's magnitude.
	if stochDetect < 0.3 {
		t.Errorf("stochastic detection = %v, want >= 0.3 at test scale", stochDetect)
	}
}

func TestProxyDetectorInterface(t *testing.T) {
	d, base := fixtures(t)
	split, _ := d.ThreeFold(0)
	proxy, err := ReverseEngineer(base, d.Select(split.AttackerTrain)[:30], REConfig{Kind: ProxyLR, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	p := d.Programs[0]
	scores := proxy.ScoreWindows(p.Windows)
	if len(scores) != len(p.Windows) {
		t.Errorf("proxy scores = %d", len(scores))
	}
	dec := proxy.DetectProgram(p.Windows)
	if dec.Score < 0 || dec.Score > 1 {
		t.Errorf("proxy score = %v", dec.Score)
	}
	if proxy.Kind() != ProxyLR {
		t.Error("kind mismatch")
	}
}

func TestEffectivenessValidation(t *testing.T) {
	d, base := fixtures(t)
	split, _ := d.ThreeFold(0)
	proxy, err := ReverseEngineer(base, d.Select(split.AttackerTrain)[:20], REConfig{Kind: ProxyLR, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Effectiveness(proxy, base, nil); err == nil {
		t.Error("empty evaluation set must error")
	}
	if _, err := Transferability(nil, base); err == nil {
		t.Error("empty evasive set must error")
	}
}

func TestMultiFeatureProxy(t *testing.T) {
	// The RHMD attack path uses concatenated feature sets.
	d, base := fixtures(t)
	split, _ := d.ThreeFold(0)
	proxy, err := ReverseEngineer(base, d.Select(split.AttackerTrain)[:40], REConfig{
		Kind:        ProxyMLP,
		FeatureSets: []features.Set{features.SetInstrFreq, features.SetMemory},
		Seed:        11,
		Epochs:      30,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := d.Programs[0]
	if got := len(proxy.ScoreWindows(p.Windows)); got != len(p.Windows) {
		t.Errorf("multi-feature proxy scores = %d", got)
	}
}
