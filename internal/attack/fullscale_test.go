package attack

import (
	"os"
	"testing"

	"shmd/internal/dataset"
	"shmd/internal/hmd"
	"shmd/internal/stats"
)

// TestFullScaleProbe reproduces the attack pipeline at the paper's
// corpus scale (3000 malware + 600 benign). It takes minutes, so it
// only runs when SHMD_FULLSCALE=1.
func TestFullScaleProbe(t *testing.T) {
	if os.Getenv("SHMD_FULLSCALE") == "" {
		t.Skip("set SHMD_FULLSCALE=1 to run the full-scale probe")
	}
	d, err := dataset.Generate(dataset.PaperConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	split, _ := d.ThreeFold(0)
	base, err := hmd.Train(d.Select(split.VictimTrain), hmd.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := hmd.Evaluate(base, d.Select(split.Test))
	t.Logf("baseline: %v", c)

	victim := stochasticVictim(t, base, 100)
	attacker := d.Select(split.AttackerTrain)
	test := d.Select(split.Test)

	baseProxy, err := ReverseEngineer(base, attacker, REConfig{Kind: ProxyMLP, Seed: 101, Epochs: 200})
	if err != nil {
		t.Fatal(err)
	}
	baseEff, _ := Effectiveness(baseProxy, base, test)
	stochProxy, err := ReverseEngineer(victim, attacker, REConfig{Kind: ProxyMLP, Seed: 101, Epochs: 200})
	if err != nil {
		t.Fatal(err)
	}
	stochEff, _ := Effectiveness(stochProxy, victim, test)
	t.Logf("RE effectiveness: baseline=%.4f stochastic=%.4f", baseEff, stochEff)

	targets := d.Select(d.MalwareOf(split.Test))[:150]

	for _, margin := range []float64{0.05, 0.1, 0.15} {
		cfg := EvasionConfig{Margin: margin}
		baseResults, err := EvadeAll(baseProxy, targets, cfg)
		if err != nil {
			t.Fatal(err)
		}
		baseTrans, _ := TransferabilityRuns(baseResults, base, 1)
		t.Logf("margin=%.2f baseline victim: evaded proxy %d/%d, transferability=%.4f",
			margin, len(baseResults), len(targets), baseTrans)

		stochResults, err := EvadeAll(stochProxy, targets, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var victimScores []float64
		for _, r := range stochResults {
			victimScores = append(victimScores, base.DetectProgram(r.Windows).Score)
		}
		q10, _ := stats.Quantile(victimScores, 0.1)
		q50, _ := stats.Quantile(victimScores, 0.5)
		q90, _ := stats.Quantile(victimScores, 0.9)
		t.Logf("margin=%.2f stoch-evasive victim(base-net) score q10/50/90 = %.3f/%.3f/%.3f",
			margin, q10, q50, q90)
		for _, runs := range []int{1, 8, 16} {
			trans, _ := TransferabilityRuns(stochResults, victim, runs)
			t.Logf("margin=%.2f stochastic victim: transferability(runs=%d)=%.4f detection=%.4f",
				margin, runs, trans, 1-trans)
		}
	}
}
