// Package attack implements the black-box adversary of the paper's
// threat model (Section V), following the RHMD attack methodology the
// paper adopts: (1) reverse-engineer the victim HMD into a proxy model
// by training on the victim's observed decisions, then (2) craft
// evasive malware against the proxy by injecting instructions, and
// (3) measure transferability — whether the proxy-evasive malware also
// evades the victim.
package attack

import (
	"fmt"

	"shmd/internal/dataset"
	"shmd/internal/fann"
	"shmd/internal/features"
	"shmd/internal/hmd"
	"shmd/internal/mlkit"
	"shmd/internal/stats"
	"shmd/internal/trace"
)

// ProxyKind selects the reverse-engineering model family.
type ProxyKind int

// The three families of Section VII-A: MLP for state-of-the-art
// accuracy, LR for simplicity, DT for non-differentiability.
const (
	ProxyMLP ProxyKind = iota
	ProxyLR
	ProxyDT
)

// String implements fmt.Stringer.
func (k ProxyKind) String() string {
	switch k {
	case ProxyMLP:
		return "MLP"
	case ProxyLR:
		return "LR"
	case ProxyDT:
		return "DT"
	default:
		return fmt.Sprintf("proxy(%d)", int(k))
	}
}

// ProxyKinds lists the families in evaluation order.
func ProxyKinds() []ProxyKind { return []ProxyKind{ProxyMLP, ProxyLR, ProxyDT} }

// REConfig configures reverse engineering.
type REConfig struct {
	// Kind is the proxy model family.
	Kind ProxyKind
	// FeatureSets is the attacker's feature representation (default
	// just F1; against RHMD the attacker uses every set of the
	// construction).
	FeatureSets []features.Set
	// Period is the attacker's observation window (default 1).
	Period int
	// Hidden/Epochs parameterize the MLP proxy (defaults 32/60).
	Hidden int
	Epochs int
	// QueryRepeats is the adaptive-attacker knob: the victim is
	// queried this many times per program and each window's label is
	// the majority verdict, de-noising a stochastic victim's labels at
	// a proportional query cost (default 1 — the paper's attacker).
	QueryRepeats int
	// Seed drives proxy initialization.
	Seed uint64
}

func (c REConfig) withDefaults() REConfig {
	if len(c.FeatureSets) == 0 {
		c.FeatureSets = []features.Set{features.SetInstrFreq}
	}
	if c.Period == 0 {
		c.Period = features.Period1
	}
	if c.Hidden == 0 {
		c.Hidden = 32
	}
	if c.Epochs == 0 {
		c.Epochs = 60
	}
	if c.QueryRepeats == 0 {
		c.QueryRepeats = 1
	}
	return c
}

// Proxy is a reverse-engineered model of the victim.
type Proxy struct {
	kind   ProxyKind
	sets   []features.Set
	period int
	clf    mlkit.Classifier
}

// mlpClassifier adapts a fann network to mlkit.Classifier.
type mlpClassifier struct {
	net *fann.Network
}

func (m mlpClassifier) Score(f []float64) float64 { return m.net.Run(f)[0] }
func (m mlpClassifier) Predict(f []float64) bool  { return m.Score(f) >= 0.5 }

// ReverseEngineer trains a proxy on the victim's decisions over the
// attacker's program corpus. The attacker runs each query program and
// observes the alarm the always-on victim raises (or not) for every
// detection window — the black-box boundary of the threat model — and
// uses those per-window verdicts as training labels.
//
// Against the baseline victim the labels are a clean sample of its
// decision function, so the proxy converges on it (the ≈99% bars of
// Fig 3). Against a stochastic victim, windows near the moving
// boundary get differently-labelled across observations; the proxy
// trains on contradictory labels and can only learn a blurred,
// displaced boundary — the mechanism behind the Fig 3 drop and,
// downstream, the Fig 4 transferability collapse.
func ReverseEngineer(victim hmd.Detector, programs []dataset.TracedProgram, cfg REConfig) (*Proxy, error) {
	cfg = cfg.withDefaults()
	if len(programs) == 0 {
		return nil, fmt.Errorf("attack: no query programs")
	}

	var samples []mlkit.Sample
	for _, p := range programs {
		// Query the victim; an adaptive attacker (QueryRepeats > 1)
		// re-runs the program and majority-votes the per-window
		// verdicts to wash out a stochastic victim's label noise.
		votes := make([]int, len(p.Windows))
		var verdictCount int
		for q := 0; q < cfg.QueryRepeats; q++ {
			verdicts := victim.ScoreWindows(p.Windows)
			verdictCount = len(verdicts)
			for i := range votes {
				vi := i * len(verdicts) / len(votes)
				if vi >= len(verdicts) {
					vi = len(verdicts) - 1
				}
				if verdicts[vi] >= 0.5 {
					votes[i]++
				}
			}
		}
		if verdictCount == 0 {
			return nil, fmt.Errorf("attack: victim produced no verdicts for %s", p.Program.Name)
		}
		vecs, err := features.Concat(p.Windows, cfg.FeatureSets, cfg.Period)
		if err != nil {
			return nil, fmt.Errorf("attack: %s: %w", p.Program.Name, err)
		}
		for i, v := range vecs {
			// Map the attacker's observation window onto the victim's
			// verdict granularity (they coincide at the base period).
			vi := i * len(votes) / len(vecs)
			if vi >= len(votes) {
				vi = len(votes) - 1
			}
			samples = append(samples, mlkit.Sample{
				Features: v,
				Label:    2*votes[vi] > cfg.QueryRepeats,
			})
		}
	}

	proxy := &Proxy{kind: cfg.Kind, sets: cfg.FeatureSets, period: cfg.Period}
	switch cfg.Kind {
	case ProxyMLP:
		dim := len(samples[0].Features)
		net, err := fann.New(fann.Config{
			Layers: []int{dim, cfg.Hidden, 1},
			Hidden: fann.SigmoidSymmetric,
			Output: fann.Sigmoid,
			Seed:   cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		train := make([]fann.TrainSample, len(samples))
		for i, s := range samples {
			target := []float64{0}
			if s.Label {
				target = []float64{1}
			}
			train[i] = fann.TrainSample{Input: s.Features, Target: target}
		}
		if _, _, err := net.Train(train, fann.TrainOptions{
			MaxEpochs:      cfg.Epochs,
			MinImprovement: 1e-6,
			Patience:       10,
		}); err != nil {
			return nil, err
		}
		proxy.clf = mlpClassifier{net: net}
	case ProxyLR:
		// Frequency features have magnitudes around 1/64, so the
		// logistic loss surface is shallow: convergence needs many
		// more full-batch steps and a larger rate than the defaults,
		// otherwise the model degenerates to the class prior.
		clf, err := mlkit.TrainLogistic(samples, mlkit.LogisticOptions{
			Epochs:       cfg.Epochs * 60,
			LearningRate: 2.0,
			L2:           1e-5,
		})
		if err != nil {
			return nil, err
		}
		proxy.clf = clf
	case ProxyDT:
		clf, err := mlkit.TrainTree(samples, mlkit.TreeOptions{MaxDepth: 12, MinLeaf: 5})
		if err != nil {
			return nil, err
		}
		proxy.clf = clf
	default:
		return nil, fmt.Errorf("attack: unknown proxy kind %d", int(cfg.Kind))
	}
	return proxy, nil
}

// Kind returns the proxy family.
func (p *Proxy) Kind() ProxyKind { return p.kind }

// ScoreWindows implements hmd.Detector for the proxy.
func (p *Proxy) ScoreWindows(windows []trace.WindowCounts) []float64 {
	vecs, err := features.Concat(windows, p.sets, p.period)
	if err != nil {
		panic(fmt.Sprintf("attack: %v", err))
	}
	out := make([]float64, len(vecs))
	for i, v := range vecs {
		out[i] = p.clf.Score(v)
	}
	return out
}

// DetectProgram implements hmd.Detector with the 0.5 threshold on the
// mean window score.
func (p *Proxy) DetectProgram(windows []trace.WindowCounts) hmd.Decision {
	mean := stats.Mean(p.ScoreWindows(windows))
	return hmd.Decision{Malware: mean >= 0.5, Score: mean}
}

var _ hmd.Detector = (*Proxy)(nil)

// Effectiveness is the paper's reverse-engineering metric: how often
// the proxy's window-level decision matches the victim's on the
// testing set. Against a stochastic victim the victim is queried live,
// so its own run-to-run variation bounds the achievable agreement.
func Effectiveness(proxy *Proxy, victim hmd.Detector, programs []dataset.TracedProgram) (float64, error) {
	if len(programs) == 0 {
		return 0, fmt.Errorf("attack: no evaluation programs")
	}
	agree, total := 0, 0
	for _, p := range programs {
		victimScores := victim.ScoreWindows(p.Windows)
		proxyScores := proxy.ScoreWindows(p.Windows)
		n := len(victimScores)
		if len(proxyScores) < n {
			n = len(proxyScores)
		}
		for w := 0; w < n; w++ {
			if (victimScores[w] >= 0.5) == (proxyScores[w] >= 0.5) {
				agree++
			}
			total++
		}
	}
	if total == 0 {
		return 0, fmt.Errorf("attack: no comparable windows")
	}
	return float64(agree) / float64(total), nil
}
