package attack

import (
	"fmt"

	"shmd/internal/dataset"
	"shmd/internal/features"
	"shmd/internal/hmd"
	"shmd/internal/isa"
	"shmd/internal/trace"
)

// EvasionConfig bounds the instruction-injection search.
type EvasionConfig struct {
	// MaxOverhead caps injected instructions as a fraction of the
	// original window size (default 1.0 — the evasive variant may at
	// most double its execution). Evasive malware must still perform
	// its function, so dilution is bounded.
	MaxOverhead float64
	// StepFraction is the injection granularity per greedy move, as a
	// fraction of the window size (default 0.05).
	StepFraction float64
	// Margin is how far below the 0.5 threshold the proxy's program
	// score must fall before the attacker stops (default 0.05). A
	// minimal-margin attacker lands just across the boundary — exactly
	// the samples a moving boundary re-catches.
	Margin float64
}

func (c EvasionConfig) withDefaults() EvasionConfig {
	if c.MaxOverhead == 0 {
		c.MaxOverhead = 1.0
	}
	if c.StepFraction == 0 {
		c.StepFraction = 0.05
	}
	if c.Margin == 0 {
		c.Margin = 0.05
	}
	return c
}

// EvasionResult is the outcome of crafting one evasive sample.
type EvasionResult struct {
	// Program is the original malware.
	Program dataset.TracedProgram
	// Injection is the per-window injected-opcode vector.
	Injection []int
	// Windows is the evasive trace (original plus injection).
	Windows []trace.WindowCounts
	// EvadedProxy reports whether the proxy classifies the evasive
	// trace as benign with the required margin.
	EvadedProxy bool
	// ProxyScore is the proxy's final program score.
	ProxyScore float64
	// Overhead is the injected fraction actually used.
	Overhead float64
}

// Evade greedily crafts an instruction-injection vector that drives
// the proxy's program score below threshold−margin: per move, it
// evaluates one step of every candidate opcode and commits the one
// that lowers the proxy score most. Only additions are allowed — the
// malicious payload stays intact.
//
// The search treats the proxy as a cheap oracle (the attacker owns
// it), so the same routine works for differentiable (MLP/LR) and
// non-differentiable (DT) proxies; for the DT the moves follow the
// piecewise-constant score downhill wherever a step crosses a split.
func Evade(proxy *Proxy, program dataset.TracedProgram, cfg EvasionConfig) (EvasionResult, error) {
	cfg = cfg.withDefaults()
	if cfg.MaxOverhead <= 0 || cfg.StepFraction <= 0 || cfg.StepFraction > cfg.MaxOverhead {
		return EvasionResult{}, fmt.Errorf("attack: invalid evasion config %+v", cfg)
	}
	if cfg.Margin < 0 || cfg.Margin >= 0.5 {
		return EvasionResult{}, fmt.Errorf("attack: margin %v outside [0, 0.5)", cfg.Margin)
	}
	if !program.IsMalware() {
		return EvasionResult{}, fmt.Errorf("attack: %s is not malware", program.Program.Name)
	}

	windowSize := program.Windows[0].Total()
	step := int(cfg.StepFraction * float64(windowSize))
	if step < 1 {
		step = 1
	}
	maxInject := int(cfg.MaxOverhead * float64(windowSize))

	injection := make([]int, isa.NumOpcodes)
	injected := 0
	target := 0.5 - cfg.Margin

	current, err := features.InjectAll(program.Windows, injection)
	if err != nil {
		return EvasionResult{}, err
	}
	score := proxy.DetectProgram(current).Score

	scoreAt := func(inj []int) (float64, error) {
		cand, err := features.InjectAll(program.Windows, inj)
		if err != nil {
			return 0, err
		}
		return proxy.DetectProgram(cand).Score, nil
	}

	lastOp := -1
	for score >= target && injected+step <= maxInject {
		bestOp, bestScore := -1, score
		for op := 0; op < isa.NumOpcodes; op++ {
			injection[op] += step
			s, err := scoreAt(injection)
			if err != nil {
				return EvasionResult{}, err
			}
			if s < bestScore {
				bestScore, bestOp = s, op
			}
			injection[op] -= step
		}
		if bestOp < 0 {
			break // no single-opcode step improves: stuck (DT plateaus)
		}
		injection[bestOp] += step
		injected += step
		score = bestScore
		lastOp = bestOp
	}

	// Minimal-perturbation refinement: the sigmoid is steep near the
	// boundary, so the last full step usually overshoots deep into the
	// proxy's benign region — where even a very different victim would
	// agree. A real evader stops as soon as it is safely past the
	// boundary; binary-search the final move down to the smallest
	// amount that still clears the margin.
	if score < target && lastOp >= 0 {
		lo, hi := 0, step // amount of the last step to keep
		for lo < hi {
			mid := (lo + hi) / 2
			injection[lastOp] += mid - step // try reduced final move
			s, err := scoreAt(injection)
			injection[lastOp] += step - mid
			if err != nil {
				return EvasionResult{}, err
			}
			if s < target {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		injection[lastOp] -= step - lo
		injected -= step - lo
		s, err := scoreAt(injection)
		if err != nil {
			return EvasionResult{}, err
		}
		score = s
	}

	final, err := features.InjectAll(program.Windows, injection)
	if err != nil {
		return EvasionResult{}, err
	}
	return EvasionResult{
		Program:     program,
		Injection:   injection,
		Windows:     final,
		EvadedProxy: score < target,
		ProxyScore:  score,
		Overhead:    features.Overhead(injection, windowSize),
	}, nil
}

// EvadeAll crafts evasive variants for every malware program, keeping
// only those that actually evade the proxy (the attacker would not
// deploy the rest).
func EvadeAll(proxy *Proxy, programs []dataset.TracedProgram, cfg EvasionConfig) ([]EvasionResult, error) {
	var out []EvasionResult
	for _, p := range programs {
		if !p.IsMalware() {
			continue
		}
		res, err := Evade(proxy, p, cfg)
		if err != nil {
			return nil, err
		}
		if res.EvadedProxy {
			out = append(out, res)
		}
	}
	return out, nil
}

// PersistentRuns is how many times the always-on detector classifies a
// program over its execution in the transferability protocol. HMDs are
// continuous monitors: to operate, malware must evade *every*
// classification, while the defender only needs to win once — the
// operational content of the moving-target defense. A deterministic
// victim gives the same verdict every run, so this parameter only
// matters for stochastic defenders (Stochastic-HMD, RHMD).
const PersistentRuns = 10

// DetectPersistent reports whether the victim flags the trace in any of
// `runs` independent classifications.
func DetectPersistent(victim hmd.Detector, windows []trace.WindowCounts, runs int) bool {
	if runs < 1 {
		runs = 1
	}
	for i := 0; i < runs; i++ {
		if victim.DetectProgram(windows).Malware {
			return true
		}
	}
	return false
}

// Transferability is the Fig 4 metric: the fraction of proxy-evasive
// samples that also evade the victim over a persistent execution
// (PersistentRuns classifications). Its complement is the Fig 5
// metric.
func Transferability(results []EvasionResult, victim hmd.Detector) (float64, error) {
	return TransferabilityRuns(results, victim, PersistentRuns)
}

// TransferabilityRuns is Transferability with an explicit
// classification count; runs = 1 gives the single-shot ablation.
func TransferabilityRuns(results []EvasionResult, victim hmd.Detector, runs int) (float64, error) {
	if len(results) == 0 {
		return 0, fmt.Errorf("attack: no evasive samples")
	}
	evaded := 0
	for _, r := range results {
		if !DetectPersistent(victim, r.Windows, runs) {
			evaded++
		}
	}
	return float64(evaded) / float64(len(results)), nil
}

// DetectionRate is the share of evasive malware the victim still
// catches: 1 − Transferability.
func DetectionRate(results []EvasionResult, victim hmd.Detector) (float64, error) {
	t, err := Transferability(results, victim)
	if err != nil {
		return 0, err
	}
	return 1 - t, nil
}
