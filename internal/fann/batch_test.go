package fann

import (
	"math/rand"
	"testing"

	"shmd/internal/faults"
	"shmd/internal/fxp"
	"shmd/internal/rng"
)

// trainedWide builds a trained network with the deployed model's
// shape class (multi-layer, sigmoid hidden) but small enough for fast
// tests.
func trainedWide(t *testing.T) *FixedNetwork {
	t.Helper()
	n := trainedToy(t)
	fn, err := n.ToFixed(fxp.DefaultFormat)
	if err != nil {
		t.Fatal(err)
	}
	return fn
}

func batchInputs(seed int64, k, dim int) [][]float64 {
	rnd := rand.New(rand.NewSource(seed))
	ins := make([][]float64, k)
	for j := range ins {
		v := make([]float64, dim)
		for i := range v {
			v[i] = rnd.Float64()*2 - 1
		}
		ins[j] = v
	}
	return ins
}

// TestRunBatchExactMatchesRun pins RunBatch with the exact unit to the
// scalar Run at every issue batch size: same inputs, bit-identical
// scores.
func TestRunBatchExactMatchesRun(t *testing.T) {
	fn := trainedWide(t)
	dim := fn.NumInputs()
	for _, k := range []int{1, 2, 7, 64} {
		ins := batchInputs(int64(k), k, dim)
		got := fn.RunBatch(fxp.Exact{}, ins, nil, nil)
		for j := 0; j < k; j++ {
			want := fn.Run(fxp.Exact{}, ins[j])
			for o, wv := range want {
				if got[j*fn.NumOutputs()+o] != wv {
					t.Fatalf("k=%d lane %d out %d: batch %v, scalar %v", k, j, o, got[j*fn.NumOutputs()+o], wv)
				}
			}
		}
	}
}

// TestRunBatchInjectorMatchesRun is the end-to-end bit-identity test
// through the fault path: each lane of a batched faulty forward pass
// must equal a scalar Run through an identically-seeded scalar
// injector, across batch sizes and multiple sequential windows
// (so gap state carries across RunBatch calls exactly as it carries
// across scalar Runs).
func TestRunBatchInjectorMatchesRun(t *testing.T) {
	fn := trainedWide(t)
	dim := fn.NumInputs()
	const windows = 9
	for _, rate := range []float64{0.05, 0.3} {
		for _, k := range []int{1, 2, 7, 64} {
			streams := make([]rand.Source64, k)
			refs := make([]*faults.Injector, k)
			for l := 0; l < k; l++ {
				streams[l] = rng.NewSource64(0xFA, uint64(k), uint64(l))
				ref, err := faults.NewInjector(rate, nil, rng.NewRand(0xFA, uint64(k), uint64(l)))
				if err != nil {
					t.Fatal(err)
				}
				refs[l] = ref
			}
			b, err := faults.NewBatchInjector(rate, nil, streams)
			if err != nil {
				t.Fatal(err)
			}
			batch := fn.Clone()
			scalar := fn.Clone()
			for wdx := 0; wdx < windows; wdx++ {
				ins := batchInputs(int64(100*wdx+k), k, dim)
				got := batch.RunBatch(b, ins, nil, nil)
				for j := 0; j < k; j++ {
					want := scalar.Run(refs[j], ins[j])
					for o, wv := range want {
						if got[j*fn.NumOutputs()+o] != wv {
							t.Fatalf("rate %v k=%d window %d lane %d out %d: batch %v, scalar %v",
								rate, k, wdx, j, o, got[j*fn.NumOutputs()+o], wv)
						}
					}
				}
			}
		}
	}
}

// TestRunBatchRaggedLanes drops lanes across calls (shrinking packed
// batches with a Lanes map) and checks survivors match a full-width
// run lane for lane.
func TestRunBatchRaggedLanes(t *testing.T) {
	fn := trainedWide(t)
	dim := fn.NumInputs()
	const k, windows = 7, 6
	laneWindows := []int{6, 5, 5, 3, 2, 1, 1}
	mkStreams := func() []rand.Source64 {
		s := make([]rand.Source64, k)
		for l := range s {
			s[l] = rng.NewSource64(0xBAD9, uint64(l))
		}
		return s
	}

	run := func(ragged bool) map[int][]float64 {
		b, err := faults.NewBatchInjector(0.2, nil, mkStreams())
		if err != nil {
			t.Fatal(err)
		}
		net := fn.Clone()
		outs := make(map[int][]float64)
		for wdx := 0; wdx < windows; wdx++ {
			var lanes []int
			for l := 0; l < k; l++ {
				if !ragged || wdx < laneWindows[l] {
					lanes = append(lanes, l)
				}
			}
			all := batchInputs(int64(wdx), k, dim)
			ins := make([][]float64, len(lanes))
			for p, l := range lanes {
				ins[p] = all[l]
			}
			got := net.RunBatch(b, ins, lanes, nil)
			for p, l := range lanes {
				outs[l] = append(outs[l], got[p*fn.NumOutputs()])
			}
		}
		return outs
	}

	full := run(false)
	ragged := run(true)
	for l := 0; l < k; l++ {
		for wdx := 0; wdx < laneWindows[l]; wdx++ {
			if full[l][wdx] != ragged[l][wdx] {
				t.Fatalf("lane %d window %d: full %v, ragged %v", l, wdx, full[l][wdx], ragged[l][wdx])
			}
		}
	}
}

// TestRunBatchZeroAlloc pins the zero-alloc steady state: after
// warmup, batched runs reuse the arenas.
func TestRunBatchZeroAlloc(t *testing.T) {
	fn := trainedWide(t)
	ins := batchInputs(7, 16, fn.NumInputs())
	out := make([]float64, 16*fn.NumOutputs())
	fn.RunBatch(fxp.Exact{}, ins, nil, out) // warm the arenas
	allocs := testing.AllocsPerRun(50, func() {
		fn.RunBatch(fxp.Exact{}, ins, nil, out)
	})
	if allocs != 0 {
		t.Fatalf("steady-state RunBatch allocates %v times per call", allocs)
	}
}

// TestRunBatchValidation covers the panic contracts.
func TestRunBatchValidation(t *testing.T) {
	fn := trainedWide(t)
	if got := fn.RunBatch(fxp.Exact{}, nil, nil, nil); len(got) != 0 {
		t.Fatalf("empty batch returned %v", got)
	}
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("bad input length", func() {
		fn.RunBatch(fxp.Exact{}, [][]float64{{1}}, nil, nil)
	})
	mustPanic("lane map length mismatch", func() {
		in := make([]float64, fn.NumInputs())
		fn.RunBatch(fxp.Exact{}, [][]float64{in}, []int{0, 1}, nil)
	})
}
