package fann

import "math"

// QuickpropTrainer implements Fahlman's Quickprop (FANN_TRAIN_QUICKPROP),
// the second batch algorithm FANN ships alongside iRPROP−. Each weight
// is updated by a local quadratic (secant) approximation of the error
// surface:
//
//	Δw = Δw_prev · g / (g_prev − g)
//
// clamped by the growth factor Mu, with a plain gradient-descent term
// when no previous step exists. It is provided for completeness of the
// FANN substrate and for training experiments; the HMDs default to
// iRPROP−, which FANN also defaults to.
type QuickpropTrainer struct {
	// LearningRate scales the plain gradient term (default 0.7,
	// FANN's quickprop factor).
	LearningRate float64
	// Mu is the maximum growth factor of a step (default 1.75).
	Mu float64
	// Decay is a small weight-shrink term stabilizing the quadratic
	// estimate (default 1e-4, FANN's quickprop decay is -0.0001).
	Decay float64

	net      *Network
	prevStep [][]float64
	prevGrad [][]float64
}

// NewQuickpropTrainer creates a trainer bound to net with FANN's
// default hyper-parameters.
func NewQuickpropTrainer(net *Network) *QuickpropTrainer {
	return &QuickpropTrainer{
		LearningRate: 0.7,
		Mu:           1.75,
		Decay:        1e-4,
		net:          net,
		prevStep:     net.newGradBuffer(),
		prevGrad:     net.newGradBuffer(),
	}
}

// Epoch runs one batch epoch over samples and returns the mean squared
// error measured before the update.
func (t *QuickpropTrainer) Epoch(samples []TrainSample) (float64, error) {
	n := t.net
	if err := n.checkSamples(samples); err != nil {
		return 0, err
	}
	grad := n.newGradBuffer()
	totalSq := 0.0
	for _, s := range samples {
		totalSq += n.gradients(s.Input, s.Target, grad)
	}

	shrink := t.Mu / (1 + t.Mu)
	for l := range n.weights {
		w := n.weights[l]
		g := grad[l]
		prevSlopes := t.prevGrad[l] // stores previous slopes (−gradient)
		ps := t.prevStep[l]
		for i := range w {
			// Slope is the downhill direction; weight decay keeps the
			// quadratic model bounded.
			slope := -(g[i] + t.Decay*w[i])
			prevSlope := prevSlopes[i]

			step := 0.0
			switch {
			case ps[i] > 1e-12: // previous step moved up
				if slope > 0 {
					step += t.LearningRate * slope
				}
				if slope > shrink*prevSlope {
					step += t.Mu * ps[i] // quadratic would overshoot: cap growth
				} else {
					step += ps[i] * slope / (prevSlope - slope)
				}
			case ps[i] < -1e-12: // previous step moved down
				if slope < 0 {
					step += t.LearningRate * slope
				}
				if slope < shrink*prevSlope {
					step += t.Mu * ps[i]
				} else {
					step += ps[i] * slope / (prevSlope - slope)
				}
			default:
				// No usable history: plain gradient descent.
				step = t.LearningRate * slope
			}

			// Clamp pathological secant steps.
			if math.IsNaN(step) || math.IsInf(step, 0) {
				step = t.LearningRate * slope
			}
			if step > 1000 {
				step = 1000
			}
			if step < -1000 {
				step = -1000
			}

			w[i] += step
			ps[i] = step
			prevSlopes[i] = slope
		}
	}
	return totalSq / float64(len(samples)*n.NumOutputs()), nil
}

// TrainQuickprop fits the network on samples with Quickprop under the
// same stopping rules as Train.
func (n *Network) TrainQuickprop(samples []TrainSample, opts TrainOptions) (mse float64, epochs int, err error) {
	if opts.MaxEpochs <= 0 {
		opts.MaxEpochs = 200
	}
	trainer := NewQuickpropTrainer(n)
	best := math.Inf(1)
	stale := 0
	for epochs = 1; epochs <= opts.MaxEpochs; epochs++ {
		mse, err = trainer.Epoch(samples)
		if err != nil {
			return 0, epochs, err
		}
		if opts.TargetMSE > 0 && mse <= opts.TargetMSE {
			return mse, epochs, nil
		}
		if opts.Patience > 0 {
			if best-mse > opts.MinImprovement {
				best = mse
				stale = 0
			} else {
				stale++
				if stale >= opts.Patience {
					return mse, epochs, nil
				}
			}
		}
	}
	return mse, opts.MaxEpochs, nil
}
