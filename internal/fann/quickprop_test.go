package fann

import (
	"math"
	"testing"
)

func TestQuickpropConvergesOnAffine(t *testing.T) {
	n := mustNew(t, Config{Layers: []int{2, 1}, Hidden: Linear, Output: Linear, Seed: 2})
	samples := []TrainSample{
		{Input: []float64{0, 0}, Target: []float64{1}},
		{Input: []float64{1, 0}, Target: []float64{3}},
		{Input: []float64{0, 1}, Target: []float64{0}},
		{Input: []float64{1, 1}, Target: []float64{2}},
	}
	mse, _, err := n.TrainQuickprop(samples, TrainOptions{MaxEpochs: 500, TargetMSE: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if mse > 1e-6 {
		t.Fatalf("quickprop affine fit MSE = %v", mse)
	}
}

func TestQuickpropConvergesOnXOR(t *testing.T) {
	n := mustNew(t, Config{Layers: []int{2, 8, 1}, Hidden: SigmoidSymmetric, Output: Sigmoid, Seed: 1})
	samples := []TrainSample{
		{Input: []float64{0, 0}, Target: []float64{0}},
		{Input: []float64{0, 1}, Target: []float64{1}},
		{Input: []float64{1, 0}, Target: []float64{1}},
		{Input: []float64{1, 1}, Target: []float64{0}},
	}
	mse, epochs, err := n.TrainQuickprop(samples, TrainOptions{MaxEpochs: 3000, TargetMSE: 0.005})
	if err != nil {
		t.Fatal(err)
	}
	if mse > 0.05 {
		t.Fatalf("quickprop XOR MSE = %v after %d epochs", mse, epochs)
	}
}

func TestQuickpropReducesError(t *testing.T) {
	n := mustNew(t, Config{Layers: []int{3, 5, 2}, Hidden: Sigmoid, Output: Sigmoid, Seed: 7})
	samples := []TrainSample{
		{Input: []float64{0.1, 0.5, 0.9}, Target: []float64{1, 0}},
		{Input: []float64{0.9, 0.5, 0.1}, Target: []float64{0, 1}},
	}
	trainer := NewQuickpropTrainer(n)
	first, err := trainer.Epoch(samples)
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	for i := 0; i < 100; i++ {
		last, err = trainer.Epoch(samples)
		if err != nil {
			t.Fatal(err)
		}
	}
	if last >= first {
		t.Errorf("quickprop did not reduce error: %v -> %v", first, last)
	}
}

func TestQuickpropValidation(t *testing.T) {
	n := mustNew(t, Config{Layers: []int{2, 1}, Hidden: Sigmoid, Output: Sigmoid})
	if _, _, err := n.TrainQuickprop(nil, TrainOptions{}); err != ErrNoSamples {
		t.Errorf("empty set err = %v", err)
	}
}

func TestQuickpropWeightsStayFinite(t *testing.T) {
	n := mustNew(t, Config{Layers: []int{2, 4, 1}, Hidden: Sigmoid, Output: Sigmoid, Seed: 3})
	// Conflicting targets for the same input can destabilize secant
	// methods; weights must stay finite anyway.
	samples := []TrainSample{
		{Input: []float64{0.5, 0.5}, Target: []float64{0}},
		{Input: []float64{0.5, 0.5}, Target: []float64{1}},
	}
	if _, _, err := n.TrainQuickprop(samples, TrainOptions{MaxEpochs: 200}); err != nil {
		t.Fatal(err)
	}
	for _, layer := range n.weights {
		for _, w := range layer {
			if math.IsNaN(w) || math.IsInf(w, 0) {
				t.Fatal("quickprop produced a non-finite weight")
			}
		}
	}
}
