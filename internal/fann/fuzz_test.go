package fann

import (
	"bytes"
	"testing"
)

// FuzzLoad hardens the network deserializer against malformed input:
// whatever the bytes, Load must return an error or a usable network —
// never panic or hang.
func FuzzLoad(f *testing.F) {
	// Seed with a valid stream and truncations/mutations of it.
	n, err := New(Config{Layers: []int{3, 4, 2}, Hidden: Sigmoid, Output: Sigmoid, Seed: 1})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := n.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add(fannMagic[:])
	mutated := append([]byte(nil), valid...)
	mutated[9] = 0xFF // layer count byte
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		net, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully loaded network must be runnable.
		in := make([]float64, net.NumInputs())
		out := net.Run(in)
		if len(out) != net.NumOutputs() {
			t.Fatalf("loaded network produced %d outputs, wants %d", len(out), net.NumOutputs())
		}
	})
}
