// Package fann is a from-scratch reimplementation of the subset of the
// Fast Artificial Neural Network Library (FANN) that the Stochastic-HMD
// paper relies on: fully-connected multi-layer perceptrons with
// sigmoid-family activations, gradient training (incremental backprop
// and iRPROP−), serialization, and — crucially — a fixed-point
// execution mode whose every multiplication goes through an fxp.Unit.
// The paper integrated its stochastic fault-injection tool into FANN at
// exactly that point ("we integrated our tool to the Fast Artificial
// Neural Network Library (FANN) to simulate the behavior of our neural
// network model under undervolting").
package fann

import (
	"fmt"
	"math"
)

// Activation selects a neuron activation function.
type Activation int

// Supported activations (the FANN names in comments).
const (
	// Sigmoid is the logistic function with outputs in (0, 1)
	// (FANN_SIGMOID).
	Sigmoid Activation = iota
	// SigmoidSymmetric is the tanh-shaped logistic with outputs in
	// (-1, 1) (FANN_SIGMOID_SYMMETRIC).
	SigmoidSymmetric
	// Linear is the identity (FANN_LINEAR).
	Linear
	// ReLU is the rectifier (FANN_LINEAR_PIECE_RECT).
	ReLU
)

// String implements fmt.Stringer.
func (a Activation) String() string {
	switch a {
	case Sigmoid:
		return "sigmoid"
	case SigmoidSymmetric:
		return "sigmoid-symmetric"
	case Linear:
		return "linear"
	case ReLU:
		return "relu"
	default:
		return fmt.Sprintf("activation(%d)", int(a))
	}
}

// valid reports whether a names a supported activation.
func (a Activation) valid() bool {
	return a >= Sigmoid && a <= ReLU
}

// apply evaluates the activation at x.
func (a Activation) apply(x float64) float64 {
	switch a {
	case Sigmoid:
		return 1 / (1 + math.Exp(-x))
	case SigmoidSymmetric:
		return 2/(1+math.Exp(-2*x)) - 1
	case Linear:
		return x
	case ReLU:
		if x < 0 {
			return 0
		}
		return x
	default:
		panic("fann: unknown activation " + a.String())
	}
}

// derivFromOutput returns the derivative of the activation expressed in
// terms of its output y (the usual backprop shortcut for the sigmoid
// family). For ReLU the output is enough to recover the derivative
// except exactly at 0, where the subgradient 0 is used.
func (a Activation) derivFromOutput(y float64) float64 {
	switch a {
	case Sigmoid:
		return y * (1 - y)
	case SigmoidSymmetric:
		return 1 - y*y
	case Linear:
		return 1
	case ReLU:
		if y > 0 {
			return 1
		}
		return 0
	default:
		panic("fann: unknown activation " + a.String())
	}
}

// Range returns the output range of the activation, used by callers to
// pick thresholds.
func (a Activation) Range() (lo, hi float64) {
	switch a {
	case Sigmoid:
		return 0, 1
	case SigmoidSymmetric:
		return -1, 1
	default:
		return math.Inf(-1), math.Inf(1)
	}
}
