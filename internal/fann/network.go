package fann

import (
	"fmt"
	"math"

	"shmd/internal/rng"
)

// Config describes a fully-connected feed-forward network.
type Config struct {
	// Layers lists the neuron counts from input to output,
	// e.g. {64, 32, 1}. At least two layers are required.
	Layers []int
	// Hidden is the activation of every hidden layer.
	Hidden Activation
	// Output is the activation of the output layer.
	Output Activation
	// Seed drives the deterministic Nguyen-Widrow-style weight
	// initialization; equal seeds yield identical networks.
	Seed uint64
}

// Network is a float64 multi-layer perceptron. Weights are stored per
// layer as a (fan-out × fan-in+1) row-major matrix; the +1 column is
// the bias, matching FANN's bias-neuron convention.
type Network struct {
	layers  []int
	hidden  Activation
	output  Activation
	weights [][]float64
}

// New creates a network with small random initial weights.
func New(cfg Config) (*Network, error) {
	if len(cfg.Layers) < 2 {
		return nil, fmt.Errorf("fann: need at least input and output layers, got %d", len(cfg.Layers))
	}
	for i, n := range cfg.Layers {
		if n < 1 {
			return nil, fmt.Errorf("fann: layer %d has %d neurons", i, n)
		}
	}
	if !cfg.Hidden.valid() || !cfg.Output.valid() {
		return nil, fmt.Errorf("fann: unknown activation")
	}
	n := &Network{
		layers: append([]int(nil), cfg.Layers...),
		hidden: cfg.Hidden,
		output: cfg.Output,
	}
	r := rng.NewRand(cfg.Seed, 0xFA22)
	n.weights = make([][]float64, len(cfg.Layers)-1)
	for l := range n.weights {
		fanIn := cfg.Layers[l]
		fanOut := cfg.Layers[l+1]
		w := make([]float64, fanOut*(fanIn+1))
		// Scaled uniform init: keeps pre-activations in the sigmoid's
		// responsive region regardless of fan-in.
		scale := 1.0 / math.Sqrt(float64(fanIn))
		for i := range w {
			w[i] = (r.Float64()*2 - 1) * scale
		}
		n.weights[l] = w
	}
	return n, nil
}

// Layers returns a copy of the layer sizes.
func (n *Network) Layers() []int { return append([]int(nil), n.layers...) }

// NumInputs returns the input dimensionality.
func (n *Network) NumInputs() int { return n.layers[0] }

// NumOutputs returns the output dimensionality.
func (n *Network) NumOutputs() int { return n.layers[len(n.layers)-1] }

// NumWeights returns the total parameter count including biases.
func (n *Network) NumWeights() int {
	total := 0
	for _, w := range n.weights {
		total += len(w)
	}
	return total
}

// HiddenActivation returns the hidden-layer activation.
func (n *Network) HiddenActivation() Activation { return n.hidden }

// OutputActivation returns the output-layer activation.
func (n *Network) OutputActivation() Activation { return n.output }

// Clone returns a deep copy of the network.
func (n *Network) Clone() *Network {
	c := &Network{
		layers: append([]int(nil), n.layers...),
		hidden: n.hidden,
		output: n.output,
	}
	c.weights = make([][]float64, len(n.weights))
	for l, w := range n.weights {
		c.weights[l] = append([]float64(nil), w...)
	}
	return c
}

// activationAt returns the activation used after layer l (0-based
// weight-layer index).
func (n *Network) activationAt(l int) Activation {
	if l == len(n.weights)-1 {
		return n.output
	}
	return n.hidden
}

// Run performs a float64 forward pass. The input length must equal
// NumInputs; the returned slice is freshly allocated.
func (n *Network) Run(input []float64) []float64 {
	if len(input) != n.layers[0] {
		panic(fmt.Sprintf("fann: input length %d, network expects %d", len(input), n.layers[0]))
	}
	act := append([]float64(nil), input...)
	for l, w := range n.weights {
		fanIn := n.layers[l]
		fanOut := n.layers[l+1]
		next := make([]float64, fanOut)
		a := n.activationAt(l)
		for j := 0; j < fanOut; j++ {
			row := w[j*(fanIn+1) : (j+1)*(fanIn+1)]
			sum := row[fanIn] // bias
			for i := 0; i < fanIn; i++ {
				sum += row[i] * act[i]
			}
			next[j] = a.apply(sum)
		}
		act = next
	}
	return act
}

// forwardAll runs a forward pass keeping every layer's activations;
// used by training.
func (n *Network) forwardAll(input []float64) [][]float64 {
	acts := make([][]float64, len(n.layers))
	acts[0] = append([]float64(nil), input...)
	for l, w := range n.weights {
		fanIn := n.layers[l]
		fanOut := n.layers[l+1]
		next := make([]float64, fanOut)
		a := n.activationAt(l)
		for j := 0; j < fanOut; j++ {
			row := w[j*(fanIn+1) : (j+1)*(fanIn+1)]
			sum := row[fanIn]
			for i := 0; i < fanIn; i++ {
				sum += row[i] * acts[l][i]
			}
			next[j] = a.apply(sum)
		}
		acts[l+1] = next
	}
	return acts
}

// gradients computes per-weight MSE gradients for one sample and adds
// them into grad (same shape as weights). It returns the sample's
// squared error.
func (n *Network) gradients(input, target []float64, grad [][]float64) float64 {
	if len(target) != n.NumOutputs() {
		panic(fmt.Sprintf("fann: target length %d, network outputs %d", len(target), n.NumOutputs()))
	}
	acts := n.forwardAll(input)
	out := acts[len(acts)-1]

	// Output deltas.
	sqErr := 0.0
	delta := make([]float64, len(out))
	for j := range out {
		err := out[j] - target[j]
		sqErr += err * err
		delta[j] = err * n.output.derivFromOutput(out[j])
	}

	for l := len(n.weights) - 1; l >= 0; l-- {
		fanIn := n.layers[l]
		fanOut := n.layers[l+1]
		w := n.weights[l]
		g := grad[l]
		prev := acts[l]
		// Accumulate gradient for this layer.
		for j := 0; j < fanOut; j++ {
			base := j * (fanIn + 1)
			d := delta[j]
			for i := 0; i < fanIn; i++ {
				g[base+i] += d * prev[i]
			}
			g[base+fanIn] += d // bias
		}
		// Propagate deltas to the previous layer.
		if l > 0 {
			a := n.activationAt(l - 1)
			newDelta := make([]float64, fanIn)
			for i := 0; i < fanIn; i++ {
				sum := 0.0
				for j := 0; j < fanOut; j++ {
					sum += delta[j] * w[j*(fanIn+1)+i]
				}
				newDelta[i] = sum * a.derivFromOutput(prev[i])
			}
			delta = newDelta
		}
	}
	return sqErr
}

// newGradBuffer allocates a zeroed gradient accumulator matching the
// weight layout.
func (n *Network) newGradBuffer() [][]float64 {
	g := make([][]float64, len(n.weights))
	for l := range g {
		g[l] = make([]float64, len(n.weights[l]))
	}
	return g
}
