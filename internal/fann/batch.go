package fann

import (
	"fmt"
	"math"

	"shmd/internal/fxp"
)

// This file holds the batch-lane forward pass: RunBatch pushes N
// independent input windows ("lanes") through the network with one
// weight-row walk per neuron driving every lane, via an fxp.BatchUnit.
// Activations live in lane-major structure-of-arrays arenas owned by
// the FixedNetwork and reused across calls, so a steady-state batched
// inference allocates nothing.
//
// Per lane the computation is bit-identical to Run: the same quantize
// → MAC → activation → quantize pipeline with the same rounding and
// saturation at every step. The only differences are layout and
// hoisted constants (the 2^F scale factor is precomputed; multiplying
// by the exact power-of-two reciprocal is the same IEEE operation as
// dividing by the scale).

// batchScratch is the reusable lane-major state of batched runs.
type batchScratch struct {
	act, next  []fxp.Value // (maxWidth+1) * lanes activation arenas
	rowOut     []fxp.Value // one row's output per lane
	maxAbs     []int64     // per-lane |activation| bound, current layer
	nextMaxAbs []int64
	identity   []int     // 0..k-1 lane ids for nil lane maps
	bt         fxp.Batch // reused so the per-layer batch view never escapes
}

// grow sizes the arenas for k lanes of width maxWidth, reusing prior
// capacity.
func (s *batchScratch) grow(k, maxWidth int) {
	need := (maxWidth + 1) * k
	if cap(s.act) < need {
		s.act = make([]fxp.Value, need)
		s.next = make([]fxp.Value, need)
	}
	s.act = s.act[:need]
	s.next = s.next[:need]
	if cap(s.rowOut) < k {
		s.rowOut = make([]fxp.Value, k)
		s.maxAbs = make([]int64, k)
		s.nextMaxAbs = make([]int64, k)
	}
	s.rowOut = s.rowOut[:k]
	s.maxAbs = s.maxAbs[:k]
	s.nextMaxAbs = s.nextMaxAbs[:k]
}

// quantizeBatch is fxp.Format.FromFloat with the scale factor hoisted
// out of the per-element path; it must stay branch-for-branch
// identical to FromFloat so batched quantization is bit-identical.
func quantizeBatch(x, scale float64) fxp.Value {
	if math.IsNaN(x) {
		return 0
	}
	s := math.RoundToEven(x * scale)
	if s >= float64(math.MaxInt32) {
		return math.MaxInt32
	}
	if s <= float64(math.MinInt32) {
		return math.MinInt32
	}
	return fxp.Value(s)
}

// RunBatch performs one fixed-point forward pass per lane, every
// multiplication going through u, with one DotRowBatch call per neuron
// driving all lanes. inputs[j] is packed lane j's input vector;
// lanes[j] maps packed positions to the unit's stable lane identities
// (nil = identity), which is how callers keep per-lane fault streams
// attached to the right program as lanes drop out across calls.
//
// Results are written lane-major into out (grown if needed) and
// returned: packed lane j's outputs are out[j*NumOutputs :
// (j+1)*NumOutputs]. Per lane the scores are bit-identical to
// Run(unit, inputs[j]) with the unit in the same stream state. The
// scratch arenas are reused, so a FixedNetwork is not safe for
// concurrent runs (Clone per goroutine, as with Run).
func (fn *FixedNetwork) RunBatch(u fxp.BatchUnit, inputs [][]float64, lanes []int, out []float64) []float64 {
	k := len(inputs)
	if k == 0 {
		return out[:0]
	}
	if lanes != nil && len(lanes) != k {
		panic(fmt.Sprintf("fann: %d lane ids for %d inputs", len(lanes), k))
	}
	f := fn.format
	scale := float64(int64(1) << f.FracBits)
	inv := 1 / scale
	one := f.One()

	maxWidth := len(fn.actA) - 1
	fn.batch.grow(k, maxWidth)
	s := &fn.batch

	// Quantize every lane's input into the lane-major arena, tracking
	// the per-lane magnitude bound the fast-path MAC kernels need.
	stride := fn.layers[0] + 1
	for j, input := range inputs {
		if len(input) != fn.layers[0] {
			panic(fmt.Sprintf("fann: lane %d input length %d, network expects %d", j, len(input), fn.layers[0]))
		}
		base := j * stride
		var m int64
		for i, x := range input {
			v := quantizeBatch(x, scale)
			s.act[base+i] = v
			if a := int64(v); a > m {
				m = a
			} else if -a > m {
				m = -a
			}
		}
		s.maxAbs[j] = m
	}

	// A forward pass is a fixed multiplication sequence; announce it so
	// fault units can presample each lane's draws in one hot loop.
	// Planning consumes lane streams, so the announced list must be
	// exactly the lanes this batch walks.
	if sp, ok := u.(fxp.SpanPlanner); ok {
		span := lanes
		if span == nil {
			if cap(s.identity) < k {
				s.identity = make([]int, k)
				for j := range s.identity {
					s.identity[j] = j
				}
			}
			span = s.identity[:k]
		}
		sp.BeginSpan(span, fn.NumMuls())
	}

	act, next := s.act, s.next
	maxAbs, nextMax := s.maxAbs, s.nextMaxAbs
	for l, w := range fn.weights {
		fanIn := fn.layers[l]
		fanOut := fn.layers[l+1]
		a := fn.activationAtFixed(l)
		stride = fanIn + 1
		for j := 0; j < k; j++ {
			act[j*stride+fanIn] = one // bias input
			if maxAbs[j] < int64(one) {
				maxAbs[j] = int64(one)
			}
			nextMax[j] = 0
		}
		s.bt = fxp.Batch{Xs: act, Stride: stride, Lanes: lanes, MaxAbs: maxAbs}
		nextStride := fanOut + 1
		for r := 0; r < fanOut; r++ {
			row := w[r*stride : (r+1)*stride]
			s.bt.WAbs = fn.rowAbs[l][r]
			u.DotRowBatch(f, row, &s.bt, s.rowOut)
			// The activation dispatch is hoisted out of the lane loop;
			// each case's float expression is Activation.apply's,
			// verbatim, so batched activations stay bit-identical.
			switch a {
			case Sigmoid:
				for j := 0; j < k; j++ {
					x := float64(s.rowOut[j]) * inv
					v := quantizeBatch(1/(1+math.Exp(-x)), scale)
					next[j*nextStride+r] = v
					if av := int64(v); av > nextMax[j] {
						nextMax[j] = av
					} else if -av > nextMax[j] {
						nextMax[j] = -av
					}
				}
			case SigmoidSymmetric:
				for j := 0; j < k; j++ {
					x := float64(s.rowOut[j]) * inv
					v := quantizeBatch(2/(1+math.Exp(-2*x))-1, scale)
					next[j*nextStride+r] = v
					if av := int64(v); av > nextMax[j] {
						nextMax[j] = av
					} else if -av > nextMax[j] {
						nextMax[j] = -av
					}
				}
			case Linear:
				for j := 0; j < k; j++ {
					x := float64(s.rowOut[j]) * inv
					v := quantizeBatch(x, scale)
					next[j*nextStride+r] = v
					if av := int64(v); av > nextMax[j] {
						nextMax[j] = av
					} else if -av > nextMax[j] {
						nextMax[j] = -av
					}
				}
			case ReLU:
				for j := 0; j < k; j++ {
					x := float64(s.rowOut[j]) * inv
					if x < 0 {
						x = 0
					}
					v := quantizeBatch(x, scale)
					next[j*nextStride+r] = v
					if av := int64(v); av > nextMax[j] {
						nextMax[j] = av
					} else if -av > nextMax[j] {
						nextMax[j] = -av
					}
				}
			default:
				for j := 0; j < k; j++ {
					v := quantizeBatch(a.apply(float64(s.rowOut[j])*inv), scale)
					next[j*nextStride+r] = v
					if av := int64(v); av > nextMax[j] {
						nextMax[j] = av
					} else if -av > nextMax[j] {
						nextMax[j] = -av
					}
				}
			}
		}
		act, next = next, act
		maxAbs, nextMax = nextMax, maxAbs
	}

	numOut := fn.NumOutputs()
	if cap(out) < k*numOut {
		out = make([]float64, k*numOut)
	}
	out = out[:k*numOut]
	outStride := numOut + 1
	for j := 0; j < k; j++ {
		for o := 0; o < numOut; o++ {
			out[j*numOut+o] = float64(act[j*outStride+o]) * inv
		}
	}
	return out
}
