package fann

import (
	"math"
	"testing"

	"shmd/internal/faults"
	"shmd/internal/fxp"
	"shmd/internal/rng"
)

func trainedToy(t *testing.T) *Network {
	t.Helper()
	n := mustNew(t, Config{Layers: []int{4, 6, 1}, Hidden: SigmoidSymmetric, Output: Sigmoid, Seed: 21})
	samples := []TrainSample{
		{Input: []float64{1, 0, 1, 0}, Target: []float64{1}},
		{Input: []float64{0, 1, 0, 1}, Target: []float64{0}},
		{Input: []float64{1, 1, 0, 0}, Target: []float64{1}},
		{Input: []float64{0, 0, 1, 1}, Target: []float64{0}},
	}
	if _, _, err := n.Train(samples, TrainOptions{MaxEpochs: 500, TargetMSE: 0.001}); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestToFixedValidation(t *testing.T) {
	n := trainedToy(t)
	if _, err := n.ToFixed(fxp.Format{FracBits: 0}); err == nil {
		t.Error("invalid format must be rejected")
	}
}

func TestFixedMatchesFloat(t *testing.T) {
	n := trainedToy(t)
	fn, err := n.ToFixed(fxp.DefaultFormat)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.NewRand(31)
	for i := 0; i < 200; i++ {
		in := []float64{r.Float64(), r.Float64(), r.Float64(), r.Float64()}
		want := n.Run(in)[0]
		got := fn.Run(fxp.Exact{}, in)[0]
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("fixed/float divergence: %v vs %v on %v", got, want, in)
		}
	}
}

func TestFixedDeterministicWithExactUnit(t *testing.T) {
	n := trainedToy(t)
	fn, _ := n.ToFixed(fxp.DefaultFormat)
	in := []float64{0.2, 0.8, 0.5, 0.1}
	first := fn.Run(fxp.Exact{}, in)[0]
	for i := 0; i < 20; i++ {
		if fn.Run(fxp.Exact{}, in)[0] != first {
			t.Fatal("exact fixed-point inference must be deterministic")
		}
	}
}

func TestFixedStochasticWithInjector(t *testing.T) {
	// The defining property of the Stochastic-HMD: with the undervolted
	// multiplier, repeated inference on the same input yields varying
	// outputs — the moving-target decision boundary.
	n := trainedToy(t)
	fn, _ := n.ToFixed(fxp.DefaultFormat)
	inj, err := faults.NewInjector(0.5, nil, rng.NewRand(41))
	if err != nil {
		t.Fatal(err)
	}
	in := []float64{0.2, 0.8, 0.5, 0.1}
	seen := map[float64]bool{}
	for i := 0; i < 100; i++ {
		seen[fn.Run(inj, in)[0]] = true
	}
	if len(seen) < 5 {
		t.Errorf("only %d distinct outputs across 100 undervolted runs", len(seen))
	}
}

func TestFixedZeroRateInjectorMatchesExact(t *testing.T) {
	n := trainedToy(t)
	fn, _ := n.ToFixed(fxp.DefaultFormat)
	inj, err := faults.NewInjector(0, nil, rng.NewRand(43))
	if err != nil {
		t.Fatal(err)
	}
	in := []float64{0.9, 0.1, 0.4, 0.6}
	if fn.Run(inj, in)[0] != fn.Run(fxp.Exact{}, in)[0] {
		t.Error("zero-rate injector must match the exact unit")
	}
}

func TestFixedRunPanicsOnBadInput(t *testing.T) {
	n := trainedToy(t)
	fn, _ := n.ToFixed(fxp.DefaultFormat)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on wrong input length")
		}
	}()
	fn.Run(fxp.Exact{}, []float64{1})
}

func TestNumMuls(t *testing.T) {
	n := mustNew(t, Config{Layers: []int{64, 32, 2}, Hidden: Sigmoid, Output: Sigmoid})
	fn, _ := n.ToFixed(fxp.DefaultFormat)
	// Each MAC row is fanIn+1 long (the bias input multiplies too), so
	// bias multiplications are part of the count.
	if got, want := fn.NumMuls(), (64+1)*32+(32+1)*2; got != want {
		t.Errorf("NumMuls = %d, want %d", got, want)
	}
	// The TRNG-overhead accounting and the injector's observed counters
	// must agree: one forward pass issues exactly NumMuls
	// multiplications through the fault unit.
	inj, _ := faults.NewInjector(0, nil, rng.NewRand(1))
	fn.Run(inj, make([]float64, 64))
	if got := inj.Stats().Muls; got != uint64(fn.NumMuls()) {
		t.Errorf("observed muls = %d, want NumMuls = %d", got, fn.NumMuls())
	}
}

func TestFixedAccessors(t *testing.T) {
	n := mustNew(t, Config{Layers: []int{3, 5, 2}, Hidden: Sigmoid, Output: Sigmoid})
	fn, _ := n.ToFixed(fxp.DefaultFormat)
	if fn.NumInputs() != 3 || fn.NumOutputs() != 2 {
		t.Errorf("dims = %d/%d", fn.NumInputs(), fn.NumOutputs())
	}
	if fn.Format() != fxp.DefaultFormat {
		t.Error("Format mismatch")
	}
	ls := fn.Layers()
	if len(ls) != 3 || ls[1] != 5 {
		t.Errorf("Layers = %v", ls)
	}
	ls[0] = 99
	if fn.NumInputs() != 3 {
		t.Error("Layers must return a copy")
	}
}

// The multi-layer buffer swap must not corrupt activations in deeper
// networks (regression guard for the scratch-buffer reuse).
func TestFixedDeepNetwork(t *testing.T) {
	n := mustNew(t, Config{Layers: []int{6, 9, 4, 7, 2}, Hidden: SigmoidSymmetric, Output: Sigmoid, Seed: 77})
	fn, _ := n.ToFixed(fxp.DefaultFormat)
	r := rng.NewRand(78)
	for i := 0; i < 50; i++ {
		in := make([]float64, 6)
		for j := range in {
			in[j] = r.Float64()*2 - 1
		}
		want := n.Run(in)
		got := fn.Run(fxp.Exact{}, in)
		for j := range want {
			if math.Abs(got[j]-want[j]) > 0.02 {
				t.Fatalf("deep net divergence at output %d: %v vs %v", j, got[j], want[j])
			}
		}
	}
}
