package fann

import (
	"bytes"
	"errors"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	n := trainedToy(t)
	var buf bytes.Buffer
	written, err := n.Save(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if written != int64(buf.Len()) {
		t.Errorf("Save reported %d bytes, buffer has %d", written, buf.Len())
	}
	if written != n.SavedSize() {
		t.Errorf("SavedSize = %d, actual %d", n.SavedSize(), written)
	}

	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumInputs() != n.NumInputs() || loaded.NumOutputs() != n.NumOutputs() {
		t.Fatalf("dims changed: %d/%d", loaded.NumInputs(), loaded.NumOutputs())
	}
	if loaded.HiddenActivation() != n.HiddenActivation() || loaded.OutputActivation() != n.OutputActivation() {
		t.Error("activations changed")
	}
	// float32 round trip costs precision; outputs must agree closely.
	in := []float64{0.3, 0.6, 0.1, 0.8}
	a, b := n.Run(in)[0], loaded.Run(in)[0]
	if diff := a - b; diff > 1e-5 || diff < -1e-5 {
		t.Errorf("loaded network diverges: %v vs %v", a, b)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("NOTFANN0xxxxxxxxxxxxxxxx"),
		"truncated": fannMagic[:],
	}
	for name, data := range cases {
		if _, err := Load(bytes.NewReader(data)); !errors.Is(err, ErrBadFormat) {
			t.Errorf("%s: err = %v, want ErrBadFormat", name, err)
		}
	}
}

func TestLoadRejectsTruncatedWeights(t *testing.T) {
	n := trainedToy(t)
	var buf bytes.Buffer
	if _, err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-4]
	if _, err := Load(bytes.NewReader(data)); !errors.Is(err, ErrBadFormat) {
		t.Errorf("truncated weights err = %v", err)
	}
}

func TestLoadRejectsTrailingData(t *testing.T) {
	n := trainedToy(t)
	var buf bytes.Buffer
	if _, err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	buf.WriteByte(0xFF)
	if _, err := Load(&buf); !errors.Is(err, ErrBadFormat) {
		t.Errorf("trailing data err = %v", err)
	}
}

func TestSavedSizeScalesWithModel(t *testing.T) {
	small := mustNew(t, Config{Layers: []int{4, 2, 1}, Hidden: Sigmoid, Output: Sigmoid})
	big := mustNew(t, Config{Layers: []int{64, 32, 2}, Hidden: Sigmoid, Output: Sigmoid})
	if small.SavedSize() >= big.SavedSize() {
		t.Errorf("sizes: small %d, big %d", small.SavedSize(), big.SavedSize())
	}
}
