package fann

import (
	"errors"
	"fmt"
	"math"
)

// TrainSample is one supervised example.
type TrainSample struct {
	Input  []float64
	Target []float64
}

// Dataset validation errors.
var (
	ErrNoSamples = errors.New("fann: empty training set")
)

// checkSamples validates sample shapes against the network.
func (n *Network) checkSamples(samples []TrainSample) error {
	if len(samples) == 0 {
		return ErrNoSamples
	}
	for i, s := range samples {
		if len(s.Input) != n.NumInputs() {
			return fmt.Errorf("fann: sample %d input length %d, want %d", i, len(s.Input), n.NumInputs())
		}
		if len(s.Target) != n.NumOutputs() {
			return fmt.Errorf("fann: sample %d target length %d, want %d", i, len(s.Target), n.NumOutputs())
		}
	}
	return nil
}

// TrainIncremental runs one epoch of per-sample gradient descent
// (FANN_TRAIN_INCREMENTAL) with the given learning rate and returns the
// epoch mean squared error.
func (n *Network) TrainIncremental(samples []TrainSample, learningRate float64) (float64, error) {
	if err := n.checkSamples(samples); err != nil {
		return 0, err
	}
	if learningRate <= 0 {
		return 0, fmt.Errorf("fann: learning rate %v must be positive", learningRate)
	}
	grad := n.newGradBuffer()
	totalSq := 0.0
	for _, s := range samples {
		for l := range grad {
			for i := range grad[l] {
				grad[l][i] = 0
			}
		}
		totalSq += n.gradients(s.Input, s.Target, grad)
		for l := range n.weights {
			w := n.weights[l]
			g := grad[l]
			for i := range w {
				w[i] -= learningRate * g[i]
			}
		}
	}
	return totalSq / float64(len(samples)*n.NumOutputs()), nil
}

// RPROPTrainer implements iRPROP− (FANN_TRAIN_RPROP, FANN's default
// training algorithm), the batch method the paper's HMDs are trained
// with. Per-weight step sizes adapt by the sign of successive
// gradients; weight updates ignore the gradient magnitude, which makes
// the method robust to the saturated-sigmoid plateaus common in
// frequency-feature HMD training.
type RPROPTrainer struct {
	// EtaPlus/EtaMinus grow/shrink the per-weight step (defaults 1.2, 0.5).
	EtaPlus, EtaMinus float64
	// DeltaMin/DeltaMax bound the step (defaults 1e-6, 50).
	DeltaMin, DeltaMax float64
	// DeltaZero is the initial step (default 0.1).
	DeltaZero float64

	net      *Network
	steps    [][]float64
	prevGrad [][]float64
}

// NewRPROPTrainer creates a trainer bound to net with FANN's default
// hyper-parameters.
func NewRPROPTrainer(net *Network) *RPROPTrainer {
	t := &RPROPTrainer{
		EtaPlus:   1.2,
		EtaMinus:  0.5,
		DeltaMin:  1e-6,
		DeltaMax:  50,
		DeltaZero: 0.1,
		net:       net,
		steps:     net.newGradBuffer(),
		prevGrad:  net.newGradBuffer(),
	}
	for l := range t.steps {
		for i := range t.steps[l] {
			t.steps[l][i] = t.DeltaZero
		}
	}
	return t
}

// Epoch runs one batch epoch over samples and returns the mean squared
// error measured before the weight update.
func (t *RPROPTrainer) Epoch(samples []TrainSample) (float64, error) {
	n := t.net
	if err := n.checkSamples(samples); err != nil {
		return 0, err
	}
	grad := n.newGradBuffer()
	totalSq := 0.0
	for _, s := range samples {
		totalSq += n.gradients(s.Input, s.Target, grad)
	}

	for l := range n.weights {
		w := n.weights[l]
		g := grad[l]
		pg := t.prevGrad[l]
		st := t.steps[l]
		for i := range w {
			sign := g[i] * pg[i]
			switch {
			case sign > 0:
				st[i] = math.Min(st[i]*t.EtaPlus, t.DeltaMax)
				w[i] -= math.Copysign(st[i], g[i])
				pg[i] = g[i]
			case sign < 0:
				st[i] = math.Max(st[i]*t.EtaMinus, t.DeltaMin)
				// iRPROP−: no weight revert, just zero the stored
				// gradient so the next epoch restarts adaptation.
				pg[i] = 0
			default:
				if g[i] != 0 {
					w[i] -= math.Copysign(st[i], g[i])
				}
				pg[i] = g[i]
			}
		}
	}
	return totalSq / float64(len(samples)*n.NumOutputs()), nil
}

// TrainOptions configures Train.
type TrainOptions struct {
	// MaxEpochs bounds the training run (default 200).
	MaxEpochs int
	// TargetMSE stops training early when reached (default 0: never).
	TargetMSE float64
	// MinImprovement and Patience implement early stopping: training
	// stops when MSE has not improved by MinImprovement for Patience
	// consecutive epochs. Patience 0 disables the check.
	MinImprovement float64
	Patience       int
}

// Train fits the network on samples with iRPROP− and returns the final
// mean squared error and the number of epochs run.
func (n *Network) Train(samples []TrainSample, opts TrainOptions) (mse float64, epochs int, err error) {
	if opts.MaxEpochs <= 0 {
		opts.MaxEpochs = 200
	}
	trainer := NewRPROPTrainer(n)
	best := math.Inf(1)
	stale := 0
	for epochs = 1; epochs <= opts.MaxEpochs; epochs++ {
		mse, err = trainer.Epoch(samples)
		if err != nil {
			return 0, epochs, err
		}
		if opts.TargetMSE > 0 && mse <= opts.TargetMSE {
			return mse, epochs, nil
		}
		if opts.Patience > 0 {
			if best-mse > opts.MinImprovement {
				best = mse
				stale = 0
			} else {
				stale++
				if stale >= opts.Patience {
					return mse, epochs, nil
				}
			}
		}
	}
	return mse, opts.MaxEpochs, nil
}

// MSE computes the mean squared error of the network on samples
// without updating weights.
func (n *Network) MSE(samples []TrainSample) (float64, error) {
	if err := n.checkSamples(samples); err != nil {
		return 0, err
	}
	total := 0.0
	for _, s := range samples {
		out := n.Run(s.Input)
		for j := range out {
			d := out[j] - s.Target[j]
			total += d * d
		}
	}
	return total / float64(len(samples)*n.NumOutputs()), nil
}
