package fann

import (
	"math"
	"testing"

	"shmd/internal/rng"
)

func mustNew(t *testing.T, cfg Config) *Network {
	t.Helper()
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Layers: []int{4}}); err == nil {
		t.Error("single layer must be rejected")
	}
	if _, err := New(Config{Layers: []int{4, 0, 1}}); err == nil {
		t.Error("zero-width layer must be rejected")
	}
	if _, err := New(Config{Layers: []int{4, 1}, Hidden: Activation(99)}); err == nil {
		t.Error("unknown activation must be rejected")
	}
}

func TestNewDeterministicPerSeed(t *testing.T) {
	cfg := Config{Layers: []int{3, 4, 2}, Hidden: Sigmoid, Output: Sigmoid, Seed: 7}
	a := mustNew(t, cfg)
	b := mustNew(t, cfg)
	in := []float64{0.1, -0.2, 0.3}
	outA, outB := a.Run(in), b.Run(in)
	for i := range outA {
		if outA[i] != outB[i] {
			t.Fatal("same seed must give identical networks")
		}
	}
	cfg.Seed = 8
	c := mustNew(t, cfg)
	outC := c.Run(in)
	if outA[0] == outC[0] && outA[1] == outC[1] {
		t.Error("different seeds should give different networks")
	}
}

func TestDimensions(t *testing.T) {
	n := mustNew(t, Config{Layers: []int{5, 7, 3}, Hidden: Sigmoid, Output: Sigmoid})
	if n.NumInputs() != 5 || n.NumOutputs() != 3 {
		t.Errorf("dims = %d/%d", n.NumInputs(), n.NumOutputs())
	}
	want := 7*(5+1) + 3*(7+1)
	if n.NumWeights() != want {
		t.Errorf("NumWeights = %d, want %d", n.NumWeights(), want)
	}
	layers := n.Layers()
	layers[0] = 99
	if n.NumInputs() != 5 {
		t.Error("Layers must return a copy")
	}
}

func TestRunPanicsOnBadInput(t *testing.T) {
	n := mustNew(t, Config{Layers: []int{3, 2}, Hidden: Sigmoid, Output: Sigmoid})
	defer func() {
		if recover() == nil {
			t.Error("expected panic on wrong input length")
		}
	}()
	n.Run([]float64{1, 2})
}

func TestLinearNetworkComputesAffineMap(t *testing.T) {
	// A 2->1 linear network is an affine function; set the weights by
	// training on an exactly realizable target and verify convergence
	// to near-zero error, which pins both forward pass and gradients.
	n := mustNew(t, Config{Layers: []int{2, 1}, Hidden: Linear, Output: Linear, Seed: 1})
	samples := []TrainSample{
		{Input: []float64{0, 0}, Target: []float64{1}},
		{Input: []float64{1, 0}, Target: []float64{3}},
		{Input: []float64{0, 1}, Target: []float64{0}},
		{Input: []float64{1, 1}, Target: []float64{2}},
	}
	mse, _, err := n.Train(samples, TrainOptions{MaxEpochs: 500, TargetMSE: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if mse > 1e-8 {
		t.Fatalf("affine fit MSE = %v", mse)
	}
	// f(x, y) = 1 + 2x - y
	if got := n.Run([]float64{2, 1})[0]; math.Abs(got-4) > 1e-3 {
		t.Errorf("f(2,1) = %v, want 4", got)
	}
}

func TestXORConvergesWithRPROP(t *testing.T) {
	n := mustNew(t, Config{Layers: []int{2, 8, 1}, Hidden: SigmoidSymmetric, Output: Sigmoid, Seed: 1})
	samples := []TrainSample{
		{Input: []float64{0, 0}, Target: []float64{0}},
		{Input: []float64{0, 1}, Target: []float64{1}},
		{Input: []float64{1, 0}, Target: []float64{1}},
		{Input: []float64{1, 1}, Target: []float64{0}},
	}
	mse, epochs, err := n.Train(samples, TrainOptions{MaxEpochs: 2000, TargetMSE: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if mse > 0.01 {
		t.Fatalf("XOR failed to converge: MSE %v after %d epochs", mse, epochs)
	}
	for _, s := range samples {
		out := n.Run(s.Input)[0]
		if math.Abs(out-s.Target[0]) > 0.2 {
			t.Errorf("XOR(%v) = %v, want %v", s.Input, out, s.Target[0])
		}
	}
}

func TestTrainIncrementalReducesError(t *testing.T) {
	n := mustNew(t, Config{Layers: []int{2, 3, 1}, Hidden: Sigmoid, Output: Sigmoid, Seed: 5})
	samples := []TrainSample{
		{Input: []float64{0.1, 0.9}, Target: []float64{1}},
		{Input: []float64{0.9, 0.1}, Target: []float64{0}},
	}
	before, err := n.MSE(samples)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := n.TrainIncremental(samples, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	after, err := n.MSE(samples)
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Errorf("incremental training did not reduce error: %v -> %v", before, after)
	}
}

func TestTrainValidation(t *testing.T) {
	n := mustNew(t, Config{Layers: []int{2, 1}, Hidden: Sigmoid, Output: Sigmoid})
	if _, err := n.TrainIncremental(nil, 0.5); err != ErrNoSamples {
		t.Errorf("empty set err = %v", err)
	}
	if _, err := n.TrainIncremental([]TrainSample{{Input: []float64{1}, Target: []float64{0}}}, 0.5); err == nil {
		t.Error("bad input shape must error")
	}
	if _, err := n.TrainIncremental([]TrainSample{{Input: []float64{1, 2}, Target: []float64{0, 1}}}, 0.5); err == nil {
		t.Error("bad target shape must error")
	}
	if _, err := n.TrainIncremental([]TrainSample{{Input: []float64{1, 2}, Target: []float64{0}}}, -1); err == nil {
		t.Error("negative learning rate must error")
	}
}

func TestEarlyStopping(t *testing.T) {
	n := mustNew(t, Config{Layers: []int{2, 2, 1}, Hidden: Sigmoid, Output: Sigmoid, Seed: 9})
	samples := []TrainSample{
		{Input: []float64{0, 0}, Target: []float64{0.5}},
	}
	_, epochs, err := n.Train(samples, TrainOptions{
		MaxEpochs:      5000,
		MinImprovement: 1e-9,
		Patience:       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if epochs >= 5000 {
		t.Errorf("early stopping never fired (epochs=%d)", epochs)
	}
}

func TestCloneIndependence(t *testing.T) {
	n := mustNew(t, Config{Layers: []int{2, 3, 1}, Hidden: Sigmoid, Output: Sigmoid, Seed: 2})
	c := n.Clone()
	in := []float64{0.3, 0.7}
	if n.Run(in)[0] != c.Run(in)[0] {
		t.Fatal("clone must compute the same function")
	}
	// Train the clone; the original must not move.
	before := n.Run(in)[0]
	if _, err := c.TrainIncremental([]TrainSample{{Input: in, Target: []float64{0}}}, 1.0); err != nil {
		t.Fatal(err)
	}
	if n.Run(in)[0] != before {
		t.Error("training the clone mutated the original")
	}
}

func TestSigmoidOutputsInRange(t *testing.T) {
	n := mustNew(t, Config{Layers: []int{4, 8, 2}, Hidden: Sigmoid, Output: Sigmoid, Seed: 11})
	r := rng.NewRand(12)
	for i := 0; i < 200; i++ {
		in := []float64{r.NormFloat64() * 10, r.NormFloat64() * 10, r.NormFloat64() * 10, r.NormFloat64() * 10}
		for _, o := range n.Run(in) {
			if o < 0 || o > 1 || math.IsNaN(o) {
				t.Fatalf("sigmoid output %v outside [0,1]", o)
			}
		}
	}
}

func TestActivationString(t *testing.T) {
	for _, a := range []Activation{Sigmoid, SigmoidSymmetric, Linear, ReLU} {
		if a.String() == "" {
			t.Errorf("empty name for activation %d", a)
		}
	}
	if Activation(42).String() != "activation(42)" {
		t.Errorf("unknown activation name = %q", Activation(42).String())
	}
}

func TestActivationRange(t *testing.T) {
	if lo, hi := Sigmoid.Range(); lo != 0 || hi != 1 {
		t.Errorf("sigmoid range = (%v, %v)", lo, hi)
	}
	if lo, hi := SigmoidSymmetric.Range(); lo != -1 || hi != 1 {
		t.Errorf("symmetric range = (%v, %v)", lo, hi)
	}
	if lo, _ := Linear.Range(); !math.IsInf(lo, -1) {
		t.Errorf("linear range lo = %v", lo)
	}
}

func TestActivationShapes(t *testing.T) {
	// Sanity anchors for each activation.
	if got := Sigmoid.apply(0); got != 0.5 {
		t.Errorf("sigmoid(0) = %v", got)
	}
	if got := SigmoidSymmetric.apply(0); got != 0 {
		t.Errorf("symmetric(0) = %v", got)
	}
	if got := ReLU.apply(-2); got != 0 {
		t.Errorf("relu(-2) = %v", got)
	}
	if got := ReLU.apply(3); got != 3 {
		t.Errorf("relu(3) = %v", got)
	}
	if got := Linear.apply(-1.5); got != -1.5 {
		t.Errorf("linear(-1.5) = %v", got)
	}
	// tanh identity: symmetric sigmoid equals tanh.
	for _, x := range []float64{-2, -0.5, 0.5, 2} {
		if math.Abs(SigmoidSymmetric.apply(x)-math.Tanh(x)) > 1e-12 {
			t.Errorf("symmetric(%v) != tanh", x)
		}
	}
}

func TestDerivativesMatchNumerical(t *testing.T) {
	const h = 1e-6
	for _, a := range []Activation{Sigmoid, SigmoidSymmetric, Linear} {
		for _, x := range []float64{-1.5, -0.2, 0.4, 2.0} {
			y := a.apply(x)
			numeric := (a.apply(x+h) - a.apply(x-h)) / (2 * h)
			analytic := a.derivFromOutput(y)
			if math.Abs(numeric-analytic) > 1e-5 {
				t.Errorf("%v'(%v): numeric %v, analytic %v", a, x, numeric, analytic)
			}
		}
	}
}
