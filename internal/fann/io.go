package fann

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Serialization format: a compact binary layout comparable to FANN's
// .net files (float32 weights). The Section VIII memory-footprint
// comparison measures the size of exactly this artifact: RHMD must
// store one per base detector, Stochastic-HMD stores one total.
//
//	magic   [8]byte  "FANNGO\x00\x01"
//	nLayers uint32
//	layers  [nLayers]uint32
//	hidden  uint32 (Activation)
//	output  uint32 (Activation)
//	weights [sum fanOut*(fanIn+1)]float32
var fannMagic = [8]byte{'F', 'A', 'N', 'N', 'G', 'O', 0, 1}

// ErrBadFormat is returned when Load encounters a malformed stream.
var ErrBadFormat = errors.New("fann: malformed network stream")

// Save writes the network to w and returns the number of bytes
// written, which is the model's storage footprint.
func (n *Network) Save(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	if _, err := bw.Write(fannMagic[:]); err != nil {
		return cw.n, err
	}
	write := func(v any) error { return binary.Write(bw, binary.LittleEndian, v) }
	if err := write(uint32(len(n.layers))); err != nil {
		return cw.n, err
	}
	for _, l := range n.layers {
		if err := write(uint32(l)); err != nil {
			return cw.n, err
		}
	}
	if err := write(uint32(n.hidden)); err != nil {
		return cw.n, err
	}
	if err := write(uint32(n.output)); err != nil {
		return cw.n, err
	}
	for _, layer := range n.weights {
		for _, v := range layer {
			if err := write(float32(v)); err != nil {
				return cw.n, err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// SavedSize returns the byte size Save would produce without writing.
func (n *Network) SavedSize() int64 {
	return int64(len(fannMagic)) + 4 + 4*int64(len(n.layers)) + 8 + 4*int64(n.NumWeights())
}

// Load reads a network previously written by Save.
func Load(r io.Reader) (*Network, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if magic != fannMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadFormat)
	}
	read := func(v any) error { return binary.Read(br, binary.LittleEndian, v) }
	var nLayers uint32
	if err := read(&nLayers); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if nLayers < 2 || nLayers > 64 {
		return nil, fmt.Errorf("%w: %d layers", ErrBadFormat, nLayers)
	}
	layers := make([]int, nLayers)
	for i := range layers {
		var v uint32
		if err := read(&v); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
		if v < 1 || v > 1<<20 {
			return nil, fmt.Errorf("%w: layer size %d", ErrBadFormat, v)
		}
		layers[i] = int(v)
	}
	var hidden, output uint32
	if err := read(&hidden); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if err := read(&output); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if !Activation(hidden).valid() || !Activation(output).valid() {
		return nil, fmt.Errorf("%w: unknown activation", ErrBadFormat)
	}
	n := &Network{
		layers: layers,
		hidden: Activation(hidden),
		output: Activation(output),
	}
	n.weights = make([][]float64, nLayers-1)
	for l := range n.weights {
		count := layers[l+1] * (layers[l] + 1)
		w := make([]float64, count)
		for i := range w {
			var v float32
			if err := read(&v); err != nil {
				return nil, fmt.Errorf("%w: truncated weights: %v", ErrBadFormat, err)
			}
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				return nil, fmt.Errorf("%w: non-finite weight", ErrBadFormat)
			}
			w[i] = float64(v)
		}
		n.weights[l] = w
	}
	// Any trailing bytes mean the stream was not produced by Save.
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("%w: trailing data", ErrBadFormat)
	}
	return n, nil
}

// countingWriter tracks bytes written through it.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
