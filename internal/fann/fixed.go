package fann

import (
	"fmt"

	"shmd/internal/fxp"
)

// FixedNetwork is the fixed-point execution form of a Network,
// mirroring FANN's fann_save_to_fixed/fann_run pipeline: weights are
// quantized once, and every forward-pass multiplication is routed
// through an fxp.Unit. Running it with fxp.Exact gives the nominal-
// voltage detector; running it with a faults.Injector gives the
// undervolted Stochastic-HMD — same weights, no retraining.
type FixedNetwork struct {
	format  fxp.Format
	layers  []int
	hidden  Activation
	output  Activation
	weights [][]fxp.Value

	// rowAbs caches Σ|w| per layer per neuron row (read-only, shared
	// across Clones): the magnitude bound the batch kernels use to
	// prove the unchecked fast path safe without re-walking weights.
	rowAbs [][]float64

	// scratch buffers reused across runs to keep the per-inference
	// allocation count flat (the detector is "always on").
	actA, actB []fxp.Value
	batch      batchScratch
}

// ToFixed quantizes the network into the given format.
func (n *Network) ToFixed(f fxp.Format) (*FixedNetwork, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	fn := &FixedNetwork{
		format: f,
		layers: append([]int(nil), n.layers...),
		hidden: n.hidden,
		output: n.output,
	}
	fn.weights = make([][]fxp.Value, len(n.weights))
	for l, w := range n.weights {
		q := make([]fxp.Value, len(w))
		for i, v := range w {
			q[i] = f.FromFloat(v)
		}
		fn.weights[l] = q
	}
	maxWidth := 0
	for _, width := range fn.layers {
		if width > maxWidth {
			maxWidth = width
		}
	}
	fn.actA = make([]fxp.Value, maxWidth+1)
	fn.actB = make([]fxp.Value, maxWidth+1)
	fn.rowAbs = make([][]float64, len(fn.weights))
	for l, w := range fn.weights {
		stride := fn.layers[l] + 1
		rows := make([]float64, fn.layers[l+1])
		for r := range rows {
			rows[r] = float64(fxp.SumAbs(w[r*stride : (r+1)*stride]))
		}
		fn.rowAbs[l] = rows
	}
	return fn, nil
}

// Clone returns a FixedNetwork sharing the (read-only) quantized
// weights but owning fresh scratch buffers, so each goroutine of a
// parallel evaluation can run its own copy safely.
func (fn *FixedNetwork) Clone() *FixedNetwork {
	c := *fn
	c.actA = make([]fxp.Value, len(fn.actA))
	c.actB = make([]fxp.Value, len(fn.actB))
	c.batch = batchScratch{}
	return &c
}

// Format returns the fixed-point format in use.
func (fn *FixedNetwork) Format() fxp.Format { return fn.format }

// Layers returns a copy of the layer sizes.
func (fn *FixedNetwork) Layers() []int { return append([]int(nil), fn.layers...) }

// NumInputs returns the input dimensionality.
func (fn *FixedNetwork) NumInputs() int { return fn.layers[0] }

// NumOutputs returns the output dimensionality.
func (fn *FixedNetwork) NumOutputs() int { return fn.layers[len(fn.layers)-1] }

// NumMuls returns the number of multiplications one forward pass
// issues — the quantity the TRNG-overhead comparison charges one RNG
// query per. Each neuron's MAC row is fanIn+1 long because the bias is
// a constant-1 input that multiplies like any other weight (FANN's
// representation), so bias multiplications are included; the count
// equals exactly what a fault injector observes over one Run.
func (fn *FixedNetwork) NumMuls() int {
	total := 0
	for l := 0; l < len(fn.weights); l++ {
		total += (fn.layers[l] + 1) * fn.layers[l+1]
	}
	return total
}

// Run performs a fixed-point forward pass with every multiplication
// going through u. Input is given in float64 and quantized on entry;
// outputs are returned in float64. The returned slice is fresh; the
// internal activation buffers are reused, so a FixedNetwork is not safe
// for concurrent Runs.
func (fn *FixedNetwork) Run(u fxp.Unit, input []float64) []float64 {
	if len(input) != fn.layers[0] {
		panic(fmt.Sprintf("fann: input length %d, network expects %d", len(input), fn.layers[0]))
	}
	f := fn.format
	cur := fn.actA[:len(input)+1]
	for i, x := range input {
		cur[i] = f.FromFloat(x)
	}

	nextBuf := fn.actB
	for l, w := range fn.weights {
		fanIn := fn.layers[l]
		fanOut := fn.layers[l+1]
		a := fn.activationAtFixed(l)
		cur = cur[:fanIn+1]
		cur[fanIn] = f.One() // bias input
		next := nextBuf[:fanOut+1]
		for j := 0; j < fanOut; j++ {
			row := w[j*(fanIn+1) : (j+1)*(fanIn+1)]
			pre := fxp.Dot(u, f, row, cur)
			// Activation is evaluated via float64 — the equivalent of
			// FANN's fixed-point sigmoid lookup. The multiplier faults
			// land in the MAC, which is where the paper characterizes
			// them; the activation lookup has no long carry chains.
			next[j] = f.FromFloat(a.apply(f.ToFloat(pre)))
		}
		cur, nextBuf = next, cur[:cap(cur)]
	}

	out := make([]float64, fn.NumOutputs())
	for j := range out {
		out[j] = f.ToFloat(cur[j])
	}
	return out
}

// activationAtFixed mirrors Network.activationAt.
func (fn *FixedNetwork) activationAtFixed(l int) Activation {
	if l == len(fn.weights)-1 {
		return fn.output
	}
	return fn.hidden
}
