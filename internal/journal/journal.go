// Package journal persists calibrated operating points across process
// restarts. Section IX's calibration flow — sweep the undervolt depth
// until the device produces the target fault rate at the current
// temperature — is the expensive part of bringing a Stochastic-HMD
// slot up; a service that recalibrates every slot from scratch on
// every restart pays it again and again for an answer that rarely
// changes. The journal records the depth each (device, rate) pair
// calibrated to, so a restart can jump straight to the journaled depth
// and merely *verify* it with a cheap known-answer canary read.
//
// The journal is crash-safe, never trusted blindly:
//
//   - writes go to a temp file in the same directory, fsync, then an
//     atomic rename — a crash mid-write leaves the previous journal
//     intact, never a half-written one;
//   - the file carries a magic header and a CRC32 (IEEE) trailer over
//     everything before it; any flipped bit fails the checksum and the
//     load reports ErrCorrupt, after which the caller recalibrates and
//     regenerates the file;
//   - entries carry their save time so callers can age them out
//     (temperature and supply conditions drift; an old depth is a
//     hypothesis to verify, not a fact).
package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math"

	"shmd/internal/volt"
	"shmd/internal/wire"
)

// Magic identifies a calibration journal file (8 bytes, version in the
// last byte).
const Magic = "SHMDJNL1"

// maxPayload bounds the JSON payload a loader will accept, so a
// corrupt length field cannot drive a huge allocation.
const maxPayload = 1 << 20

// ErrCorrupt marks a journal that failed structural or checksum
// validation. Callers must discard it and recalibrate.
var ErrCorrupt = errors.New("journal: corrupt")

// Entry is one journaled operating point: the undervolt depth that
// produced Rate on the device identified by Device at TempC.
type Entry struct {
	// Device fingerprints the device calibration profile (DeviceKey);
	// a journal written on one device is never applied to another.
	Device string `json:"device"`
	// Rate is the calibrated target fault rate.
	Rate float64 `json:"rate"`
	// DepthMV is the undervolt depth CalibrateToRate landed on.
	DepthMV float64 `json:"depthMV"`
	// TempC is the die temperature the calibration ran at.
	TempC float64 `json:"tempC"`
	// SavedUnix is when the entry was written (Unix seconds), for
	// staleness checks.
	SavedUnix int64 `json:"savedUnix"`
}

// validate rejects entries no device could have produced, so a
// structurally intact but semantically absurd journal is still refused.
func (e Entry) validate() error {
	if e.Device == "" {
		return fmt.Errorf("%w: entry with empty device key", ErrCorrupt)
	}
	if !(e.Rate > 0 && e.Rate <= 1) || math.IsNaN(e.Rate) {
		return fmt.Errorf("%w: rate %v outside (0, 1]", ErrCorrupt, e.Rate)
	}
	if !(e.DepthMV >= 0 && e.DepthMV < 10000) {
		return fmt.Errorf("%w: depth %v mV implausible", ErrCorrupt, e.DepthMV)
	}
	if e.TempC < -40 || e.TempC > 110 || math.IsNaN(e.TempC) {
		return fmt.Errorf("%w: temperature %v outside operating range", ErrCorrupt, e.TempC)
	}
	return nil
}

// payload is the JSON body between header and trailer.
type payload struct {
	Entries []Entry `json:"entries"`
}

// Save writes entries atomically through the shared wire block codec:
// temp file in the same directory, fsync, rename over path. A reader
// concurrent with Save sees either the old journal or the new one,
// never a mixture, and a crash at any point leaves a loadable file.
func Save(path string, entries []Entry) error {
	for _, e := range entries {
		if err := e.validate(); err != nil {
			return fmt.Errorf("journal: refusing to save invalid entry: %w", err)
		}
	}
	body, err := json.Marshal(payload{Entries: entries})
	if err != nil {
		return fmt.Errorf("journal: encode: %w", err)
	}
	if len(body) > maxPayload {
		return fmt.Errorf("journal: payload %d bytes exceeds %d", len(body), maxPayload)
	}
	return wire.SaveBlock(path, Magic, body)
}

// Load reads and verifies a journal. A missing file returns the
// underlying fs.ErrNotExist (callers treat it as a cold start); any
// structural damage — bad magic, bad length, checksum mismatch,
// invalid JSON, implausible entries — returns an error wrapping
// ErrCorrupt so callers can recalibrate and regenerate. (Framing
// failures from the wire codec are re-wrapped so the journal's own
// sentinel keeps working.)
func Load(path string) ([]Entry, error) {
	body, err := wire.LoadBlock(path, Magic, maxPayload)
	if err != nil {
		if errors.Is(err, wire.ErrCorrupt) {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		return nil, err
	}
	var p payload
	if err := json.Unmarshal(body, &p); err != nil {
		return nil, fmt.Errorf("%w: payload: %v", ErrCorrupt, err)
	}
	for _, e := range p.Entries {
		if err := e.validate(); err != nil {
			return nil, err
		}
	}
	return p.Entries, nil
}

// DeviceKey fingerprints a device calibration profile. Two devices
// whose fault-rate curves differ in any parameter get distinct keys,
// so a journal can never apply one device's depth to another.
func DeviceKey(p volt.DeviceProfile) string {
	h := fnv.New64a()
	for _, f := range []float64{p.U50MV, p.SlopeMV, p.GuardBandMV, p.TempCoeffMVPerC, p.FreezeMV} {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], math.Float64bits(f))
		h.Write(b[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
