package journal

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
	"time"

	"shmd/internal/volt"
	"shmd/internal/wire"
)

func testEntries() []Entry {
	return []Entry{
		{Device: DeviceKey(volt.DefaultProfile()), Rate: 0.1, DepthMV: 131.5, TempC: 49, SavedUnix: time.Now().Unix()},
		{Device: DeviceKey(volt.NewDeviceProfile(7)), Rate: 0.5, DepthMV: 168.25, TempC: 60, SavedUnix: 1700000000},
	}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cal.journal")
	want := testEntries()
	if err := Save(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("entries = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("entry %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	// Overwrite keeps the file loadable (atomic replacement).
	if err := Save(path, want[:1]); err != nil {
		t.Fatal(err)
	}
	got, err = Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != want[0] {
		t.Errorf("after overwrite: %+v", got)
	}
}

func TestLoadMissing(t *testing.T) {
	_, err := Load(filepath.Join(t.TempDir(), "nope.journal"))
	if !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("missing file err = %v, want fs.ErrNotExist", err)
	}
	if errors.Is(err, ErrCorrupt) {
		t.Error("missing file misclassified as corrupt")
	}
}

// TestCorruption checks the journal re-wraps the shared codec's
// framing failures in its own ErrCorrupt sentinel, and that corrupt
// *content* inside an intact frame (bad JSON, implausible entries) is
// refused the same way. The exhaustive byte-flip/truncation corpus
// lives with the codec in internal/wire.
func TestCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cal.journal")
	if err := Save(path, testEntries()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mut := filepath.Join(t.TempDir(), "mut.journal")
	cases := map[string][]byte{
		"flipped magic":    append([]byte("XHMDJNL1"), raw[8:]...),
		"flipped payload":  append(append([]byte(nil), raw[:len(raw)/2]...), append([]byte{raw[len(raw)/2] ^ 0xFF}, raw[len(raw)/2+1:]...)...),
		"flipped trailer":  append(append([]byte(nil), raw[:len(raw)-1]...), raw[len(raw)-1]^0xFF),
		"truncated":        raw[:len(raw)-5],
		"trailing garbage": append(append([]byte(nil), raw...), 'x'),
	}
	for name, mutant := range cases {
		if err := os.WriteFile(mut, mutant, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(mut); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
	// Intact framing around a semantically absurd entry is still
	// refused: wire accepts the frame, the journal rejects the content.
	if err := os.WriteFile(mut, wire.EncodeBlock(Magic, []byte(`{"entries":[{"device":"d","rate":9,"depthMV":1,"tempC":0}]}`)), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(mut); !errors.Is(err, ErrCorrupt) {
		t.Errorf("absurd entry: err = %v, want ErrCorrupt", err)
	}
}

func TestInvalidEntriesRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cal.journal")
	bad := []Entry{
		{Device: "", Rate: 0.1, DepthMV: 100, TempC: 49},
		{Device: "d", Rate: 0, DepthMV: 100, TempC: 49},
		{Device: "d", Rate: 1.5, DepthMV: 100, TempC: 49},
		{Device: "d", Rate: 0.1, DepthMV: -3, TempC: 49},
		{Device: "d", Rate: 0.1, DepthMV: 100, TempC: 400},
	}
	for i, e := range bad {
		if err := Save(path, []Entry{e}); err == nil {
			t.Errorf("entry %d: invalid entry %+v saved", i, e)
		}
	}
}

func TestDeviceKey(t *testing.T) {
	a := DeviceKey(volt.DefaultProfile())
	if b := DeviceKey(volt.DefaultProfile()); b != a {
		t.Errorf("key not deterministic: %s vs %s", a, b)
	}
	seen := map[string]uint64{a: 0}
	for seed := uint64(1); seed < 32; seed++ {
		k := DeviceKey(volt.NewDeviceProfile(seed))
		if k == a {
			t.Errorf("device seed %d collides with default profile", seed)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("device seeds %d and %d share key %s", prev, seed, k)
		}
		seen[k] = seed
	}
	p := volt.DefaultProfile()
	p.U50MV += 0.5
	if DeviceKey(p) == a {
		t.Error("perturbed profile keeps the same key")
	}
}
