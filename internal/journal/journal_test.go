package journal

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
	"time"

	"shmd/internal/volt"
)

func testEntries() []Entry {
	return []Entry{
		{Device: DeviceKey(volt.DefaultProfile()), Rate: 0.1, DepthMV: 131.5, TempC: 49, SavedUnix: time.Now().Unix()},
		{Device: DeviceKey(volt.NewDeviceProfile(7)), Rate: 0.5, DepthMV: 168.25, TempC: 60, SavedUnix: 1700000000},
	}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cal.journal")
	want := testEntries()
	if err := Save(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("entries = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("entry %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	// Overwrite keeps the file loadable (atomic replacement).
	if err := Save(path, want[:1]); err != nil {
		t.Fatal(err)
	}
	got, err = Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != want[0] {
		t.Errorf("after overwrite: %+v", got)
	}
}

func TestLoadMissing(t *testing.T) {
	_, err := Load(filepath.Join(t.TempDir(), "nope.journal"))
	if !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("missing file err = %v, want fs.ErrNotExist", err)
	}
	if errors.Is(err, ErrCorrupt) {
		t.Error("missing file misclassified as corrupt")
	}
}

// TestCorruption flips every byte position in a valid journal in turn
// and demands each mutant is rejected as corrupt — including the CRC
// trailer bytes the acceptance criterion singles out.
func TestCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cal.journal")
	if err := Save(path, testEntries()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mut := filepath.Join(t.TempDir(), "mut.journal")
	for i := range raw {
		flipped := append([]byte(nil), raw...)
		flipped[i] ^= 0xFF
		if err := os.WriteFile(mut, flipped, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(mut); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("byte %d flipped: err = %v, want ErrCorrupt", i, err)
		}
	}
	// Truncations are corrupt too, at every length.
	for n := 0; n < len(raw); n++ {
		if err := os.WriteFile(mut, raw[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(mut); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncated to %d bytes: err = %v, want ErrCorrupt", n, err)
		}
	}
	// Trailing garbage breaks the length/CRC contract.
	if err := os.WriteFile(mut, append(append([]byte(nil), raw...), 'x'), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(mut); !errors.Is(err, ErrCorrupt) {
		t.Errorf("trailing garbage: err = %v, want ErrCorrupt", err)
	}
}

func TestInvalidEntriesRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cal.journal")
	bad := []Entry{
		{Device: "", Rate: 0.1, DepthMV: 100, TempC: 49},
		{Device: "d", Rate: 0, DepthMV: 100, TempC: 49},
		{Device: "d", Rate: 1.5, DepthMV: 100, TempC: 49},
		{Device: "d", Rate: 0.1, DepthMV: -3, TempC: 49},
		{Device: "d", Rate: 0.1, DepthMV: 100, TempC: 400},
	}
	for i, e := range bad {
		if err := Save(path, []Entry{e}); err == nil {
			t.Errorf("entry %d: invalid entry %+v saved", i, e)
		}
	}
}

func TestDeviceKey(t *testing.T) {
	a := DeviceKey(volt.DefaultProfile())
	if b := DeviceKey(volt.DefaultProfile()); b != a {
		t.Errorf("key not deterministic: %s vs %s", a, b)
	}
	seen := map[string]uint64{a: 0}
	for seed := uint64(1); seed < 32; seed++ {
		k := DeviceKey(volt.NewDeviceProfile(seed))
		if k == a {
			t.Errorf("device seed %d collides with default profile", seed)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("device seeds %d and %d share key %s", prev, seed, k)
		}
		seen[k] = seed
	}
	p := volt.DefaultProfile()
	p.U50MV += 0.5
	if DeviceKey(p) == a {
		t.Error("perturbed profile keeps the same key")
	}
}
