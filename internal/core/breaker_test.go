package core

import (
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for driving a Breaker through
// its cooldown schedule without real sleeps.
type fakeClock struct{ now time.Time }

func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) Advance(d time.Duration) { c.now = c.now.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{now: time.Unix(1000, 0)} }
func newTestBreaker(clk *fakeClock, cfg BreakerConfig) *Breaker {
	cfg.Now = clk.Now
	return NewBreaker(cfg)
}

// TestBreakerTransitions drives the full state machine table-style:
// each case is a scripted sequence of events and clock advances with
// the state expected after every step.
func TestBreakerTransitions(t *testing.T) {
	const (
		evFail    = "fail"    // Failure()
		evOK      = "ok"      // Success()
		evTrip    = "trip"    // Trip()
		evAllow   = "allow"   // Allow() must return true
		evRefuse  = "refuse"  // Allow() must return false
		evAdvance = "advance" // clock += d
	)
	type step struct {
		ev    string
		d     time.Duration
		state BreakerState
	}
	cfg := BreakerConfig{Threshold: 3, Cooldown: time.Second, MaxCooldown: 4 * time.Second}
	cases := []struct {
		name  string
		steps []step
	}{
		{
			name: "stays closed below threshold",
			steps: []step{
				{ev: evFail, state: BreakerClosed},
				{ev: evFail, state: BreakerClosed},
				{ev: evOK, state: BreakerClosed},
				// Success reset the run: two more failures still don't trip.
				{ev: evFail, state: BreakerClosed},
				{ev: evFail, state: BreakerClosed},
			},
		},
		{
			name: "threshold trips and cooldown gates the probe",
			steps: []step{
				{ev: evFail, state: BreakerClosed},
				{ev: evFail, state: BreakerClosed},
				{ev: evFail, state: BreakerOpen},
				{ev: evRefuse, state: BreakerOpen},
				{ev: evAdvance, d: 999 * time.Millisecond},
				{ev: evRefuse, state: BreakerOpen},
				{ev: evAdvance, d: time.Millisecond},
				{ev: evAllow, state: BreakerHalfOpen},
				// The probe is singular: a second caller is refused.
				{ev: evRefuse, state: BreakerHalfOpen},
				{ev: evOK, state: BreakerClosed},
			},
		},
		{
			name: "trip opens immediately",
			steps: []step{
				{ev: evTrip, state: BreakerOpen},
				{ev: evRefuse, state: BreakerOpen},
				{ev: evAdvance, d: time.Second},
				{ev: evAllow, state: BreakerHalfOpen},
				{ev: evOK, state: BreakerClosed},
			},
		},
		{
			name: "failed probe re-opens with doubled backoff",
			steps: []step{
				{ev: evTrip, state: BreakerOpen},
				{ev: evAdvance, d: time.Second},
				{ev: evAllow, state: BreakerHalfOpen},
				{ev: evFail, state: BreakerOpen},
				// Cooldown doubled to 2s: the old 1s cadence is refused.
				{ev: evAdvance, d: time.Second},
				{ev: evRefuse, state: BreakerOpen},
				{ev: evAdvance, d: time.Second},
				{ev: evAllow, state: BreakerHalfOpen},
				{ev: evFail, state: BreakerOpen},
				// Doubled again to 4s == MaxCooldown.
				{ev: evAdvance, d: 2 * time.Second},
				{ev: evRefuse, state: BreakerOpen},
				{ev: evAdvance, d: 2 * time.Second},
				{ev: evAllow, state: BreakerHalfOpen},
				{ev: evFail, state: BreakerOpen},
				// Capped: still 4s, not 8s.
				{ev: evAdvance, d: 4 * time.Second},
				{ev: evAllow, state: BreakerHalfOpen},
				// Recovery resets the cooldown to its base value.
				{ev: evOK, state: BreakerClosed},
				{ev: evFail, state: BreakerClosed},
				{ev: evFail, state: BreakerClosed},
				{ev: evFail, state: BreakerOpen},
				{ev: evAdvance, d: time.Second},
				{ev: evAllow, state: BreakerHalfOpen},
			},
		},
		{
			name: "open failures are no-ops",
			steps: []step{
				{ev: evTrip, state: BreakerOpen},
				// Stragglers admitted before the trip report failures; they
				// must not stretch the cooldown or count as probe failures.
				{ev: evFail, state: BreakerOpen},
				{ev: evFail, state: BreakerOpen},
				{ev: evAdvance, d: time.Second},
				{ev: evAllow, state: BreakerHalfOpen},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clk := newFakeClock()
			b := newTestBreaker(clk, cfg)
			for i, s := range tc.steps {
				switch s.ev {
				case evFail:
					b.Failure()
				case evOK:
					b.Success()
				case evTrip:
					b.Trip()
				case evAllow:
					if !b.Allow() {
						t.Fatalf("step %d: Allow() = false, want true", i)
					}
				case evRefuse:
					if b.Allow() {
						t.Fatalf("step %d: Allow() = true, want false", i)
					}
				case evAdvance:
					clk.Advance(s.d)
					continue
				default:
					t.Fatalf("step %d: unknown event %q", i, s.ev)
				}
				if got := b.State(); got != s.state {
					t.Fatalf("step %d (%s): state = %v, want %v", i, s.ev, got, s.state)
				}
			}
		})
	}
}

// TestBreakerCounters pins the counter semantics the router's metrics
// endpoint exports: trips on closed→open only, reopens on failed
// probes, recoveries on successful closes from a non-closed state.
func TestBreakerCounters(t *testing.T) {
	clk := newFakeClock()
	b := newTestBreaker(clk, BreakerConfig{Threshold: 2, Cooldown: time.Second, MaxCooldown: 8 * time.Second})

	b.Failure()
	b.Failure() // trip 1
	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe refused after cooldown")
	}
	b.Failure() // reopen 1 (not a trip)
	clk.Advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("probe refused after doubled cooldown")
	}
	b.Success() // recovery 1
	b.Trip()    // trip 2
	b.Trip()    // already open: restarts cooldown, not a new trip
	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe refused after re-trip cooldown")
	}
	b.Success() // recovery 2

	snap := b.Snapshot()
	if snap.State != BreakerClosed {
		t.Errorf("state = %v, want closed", snap.State)
	}
	if snap.Trips != 2 || snap.Reopens != 1 || snap.Recoveries != 2 {
		t.Errorf("counters = trips %d reopens %d recoveries %d, want 2/1/2",
			snap.Trips, snap.Reopens, snap.Recoveries)
	}
	if snap.Cooldown != time.Second {
		t.Errorf("cooldown = %v, want reset to 1s", snap.Cooldown)
	}
	if snap.ConsecFails != 0 {
		t.Errorf("consecFails = %d, want 0", snap.ConsecFails)
	}
}

// TestBreakerRelease pins the abandoned-probe contract: Release hands
// a claimed half-open probe back to open with the current cooldown
// restarted — not doubled, not counted as a reopen — so a probe whose
// holder vanishes (client disconnect mid-probe) cannot wedge the
// breaker half-open forever. In any other state it is a no-op.
func TestBreakerRelease(t *testing.T) {
	clk := newFakeClock()
	b := newTestBreaker(clk, BreakerConfig{Threshold: 1, Cooldown: time.Second, MaxCooldown: 8 * time.Second})

	// No-op while closed.
	b.Release()
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("Release on closed breaker moved it to %v", st)
	}

	b.Failure() // trip
	// No-op while open.
	b.Release()
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("Release on open breaker moved it to %v", st)
	}

	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe refused after cooldown")
	}
	b.Release()
	snap := b.Snapshot()
	if snap.State != BreakerOpen {
		t.Fatalf("state after Release = %v, want open", snap.State)
	}
	if snap.Reopens != 0 {
		t.Errorf("Release counted a reopen (%d)", snap.Reopens)
	}
	if snap.Cooldown != time.Second {
		t.Errorf("Release changed the cooldown to %v, want 1s (not doubled)", snap.Cooldown)
	}

	// The cooldown restarted at Release: a probe is refused until it
	// elapses again, then granted — the breaker is not wedged.
	if b.Allow() {
		t.Fatal("probe granted immediately after Release; cooldown did not restart")
	}
	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe refused one cooldown after Release; breaker wedged")
	}
	b.Success()
	if st := b.State(); st != BreakerClosed {
		t.Errorf("state after post-Release recovery = %v, want closed", st)
	}
}

// TestBreakerStateString keeps the metric label names stable.
func TestBreakerStateString(t *testing.T) {
	for st, want := range map[BreakerState]string{
		BreakerClosed:   "closed",
		BreakerOpen:     "open",
		BreakerHalfOpen: "half-open",
	} {
		if got := st.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", st, got, want)
		}
	}
}

// TestBreakerDefaults exercises the zero-value config path.
func TestBreakerDefaults(t *testing.T) {
	b := NewBreaker(BreakerConfig{})
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatal("closed breaker refused a request")
		}
		b.Failure()
	}
	if b.State() != BreakerOpen {
		t.Errorf("state after 3 failures = %v, want open (default threshold 3)", b.State())
	}
}
