package core

import (
	"math"
	"testing"

	"shmd/internal/volt"
)

func TestSessionProtocol(t *testing.T) {
	d, base := fixtures(t)
	s, err := New(base, Options{ErrorRate: 0.1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	detectionDepth := s.Regulator().UndervoltMV()
	if detectionDepth <= 0 {
		t.Fatal("operating point not calibrated")
	}

	sess, err := NewSession(s)
	if err != nil {
		t.Fatal(err)
	}
	// Between detections the plane is nominal: the rest of the system
	// never sees undervolting-induced faults.
	if !sess.AtNominal() {
		t.Fatal("fresh session must sit at nominal voltage")
	}
	if s.ErrorRate() != 0 {
		t.Fatalf("injector rate outside detection = %v", s.ErrorRate())
	}

	p := d.Programs[0]
	dec, err := sess.DetectProgram(p.Windows)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Score < 0 || dec.Score > 1 {
		t.Errorf("score = %v", dec.Score)
	}
	// After the detection the voltage is restored.
	if !sess.AtNominal() {
		t.Error("voltage not restored after detection")
	}
	if s.ErrorRate() != 0 {
		t.Errorf("injector rate after detection = %v", s.ErrorRate())
	}

	// The detection itself really ran undervolted: repeated session
	// detections on a borderline input vary (stochastic), and the
	// calibrated depth was re-applied inside the cycle.
	seen := map[float64]bool{}
	for i := 0; i < 20; i++ {
		dec, err := sess.DetectProgram(p.Windows)
		if err != nil {
			t.Fatal(err)
		}
		seen[dec.Score] = true
	}
	if len(seen) < 2 {
		t.Error("session detections never varied; undervolting not applied")
	}
}

func TestSessionScoreWindows(t *testing.T) {
	d, base := fixtures(t)
	s, err := New(base, Options{ErrorRate: 0.2, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(s)
	if err != nil {
		t.Fatal(err)
	}
	scores, err := sess.ScoreWindows(d.Programs[1].Windows)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != len(d.Programs[1].Windows) {
		t.Errorf("scores = %d", len(scores))
	}
	if !sess.AtNominal() {
		t.Error("voltage not restored after scoring")
	}
}

func TestSessionNilDetector(t *testing.T) {
	if _, err := NewSession(nil); err == nil {
		t.Error("nil detector must be rejected")
	}
}

func TestSessionPreservesOperatingPoint(t *testing.T) {
	_, base := fixtures(t)
	s, err := New(base, Options{ErrorRate: 0.1, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	wantDepth := s.Regulator().UndervoltMV()
	sess, err := NewSession(s)
	if err != nil {
		t.Fatal(err)
	}
	// Run a few cycles; the calibrated depth must be re-applied each
	// time, not drift.
	p, basep := fixtures(t)
	_ = basep
	for i := 0; i < 3; i++ {
		if _, err := sess.DetectProgram(p.Programs[2].Windows); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.enter(); err != nil {
		t.Fatal(err)
	}
	if got := s.Regulator().UndervoltMV(); math.Abs(got-wantDepth) > 1e-9 {
		t.Errorf("detection depth drifted: %v vs %v", got, wantDepth)
	}
	if err := sess.exit(); err != nil {
		t.Fatal(err)
	}
	if s.SupplyVoltage() != volt.NominalVoltage {
		t.Error("exit did not restore nominal")
	}
}

func TestSessionDoubleEnter(t *testing.T) {
	_, base := fixtures(t)
	s, err := New(base, Options{ErrorRate: 0.1, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.enter(); err != nil {
		t.Fatal(err)
	}
	if err := sess.enter(); err == nil {
		t.Error("double enter must be rejected")
	}
	if err := sess.exit(); err != nil {
		t.Fatal(err)
	}
}
