package core

import (
	"errors"
	"math"
	"sync"
	"testing"

	"shmd/internal/fxp"
	"shmd/internal/volt"
)

func TestSessionProtocol(t *testing.T) {
	d, base := fixtures(t)
	s, err := New(base, Options{ErrorRate: 0.1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	detectionDepth := s.Regulator().UndervoltMV()
	if detectionDepth <= 0 {
		t.Fatal("operating point not calibrated")
	}

	sess, err := NewSession(s)
	if err != nil {
		t.Fatal(err)
	}
	// Between detections the plane is nominal: the rest of the system
	// never sees undervolting-induced faults.
	if !sess.AtNominal() {
		t.Fatal("fresh session must sit at nominal voltage")
	}
	if s.ErrorRate() != 0 {
		t.Fatalf("injector rate outside detection = %v", s.ErrorRate())
	}

	p := d.Programs[0]
	dec, err := sess.DetectProgram(p.Windows)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Score < 0 || dec.Score > 1 {
		t.Errorf("score = %v", dec.Score)
	}
	// After the detection the voltage is restored.
	if !sess.AtNominal() {
		t.Error("voltage not restored after detection")
	}
	if s.ErrorRate() != 0 {
		t.Errorf("injector rate after detection = %v", s.ErrorRate())
	}

	// The detection itself really ran undervolted: repeated session
	// detections on a borderline input vary (stochastic), and the
	// calibrated depth was re-applied inside the cycle.
	seen := map[float64]bool{}
	for i := 0; i < 20; i++ {
		dec, err := sess.DetectProgram(p.Windows)
		if err != nil {
			t.Fatal(err)
		}
		seen[dec.Score] = true
	}
	if len(seen) < 2 {
		t.Error("session detections never varied; undervolting not applied")
	}
}

func TestSessionScoreWindows(t *testing.T) {
	d, base := fixtures(t)
	s, err := New(base, Options{ErrorRate: 0.2, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(s)
	if err != nil {
		t.Fatal(err)
	}
	scores, err := sess.ScoreWindows(d.Programs[1].Windows)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != len(d.Programs[1].Windows) {
		t.Errorf("scores = %d", len(scores))
	}
	if !sess.AtNominal() {
		t.Error("voltage not restored after scoring")
	}
}

func TestSessionNilDetector(t *testing.T) {
	if _, err := NewSession(nil); err == nil {
		t.Error("nil detector must be rejected")
	}
}

func TestSessionPreservesOperatingPoint(t *testing.T) {
	_, base := fixtures(t)
	s, err := New(base, Options{ErrorRate: 0.1, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	wantDepth := s.Regulator().UndervoltMV()
	sess, err := NewSession(s)
	if err != nil {
		t.Fatal(err)
	}
	// Run a few cycles; the calibrated depth must be re-applied each
	// time, not drift.
	p, basep := fixtures(t)
	_ = basep
	for i := 0; i < 3; i++ {
		if _, err := sess.DetectProgram(p.Programs[2].Windows); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.enter(); err != nil {
		t.Fatal(err)
	}
	if got := s.Regulator().UndervoltMV(); math.Abs(got-wantDepth) > 1e-9 {
		t.Errorf("detection depth drifted: %v vs %v", got, wantDepth)
	}
	if err := sess.exit(); err != nil {
		t.Fatal(err)
	}
	if s.SupplyVoltage() != volt.NominalVoltage {
		t.Error("exit did not restore nominal")
	}
}

func TestSessionDoubleEnter(t *testing.T) {
	_, base := fixtures(t)
	s, err := New(base, Options{ErrorRate: 0.1, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.enter(); err != nil {
		t.Fatal(err)
	}
	if err := sess.enter(); err == nil {
		t.Error("double enter must be rejected")
	}
	if err := sess.exit(); err != nil {
		t.Fatal(err)
	}
}

// flakyUnit is a FaultUnit whose SetRate can be made to fail for any
// non-zero rate — the injector-side failure that used to leak an
// undervolted plane out of a half-completed enter.
type flakyUnit struct {
	rate        float64
	failNonZero bool
}

func (f *flakyUnit) Mul(a, b fxp.Value) fxp.Product { return fxp.Exact{}.Mul(a, b) }
func (f *flakyUnit) Rate() float64                  { return f.rate }
func (f *flakyUnit) SetRate(r float64) error {
	if f.failNonZero && r != 0 {
		return errors.New("flaky: injector refused the rate")
	}
	f.rate = r
	return nil
}

func TestSessionEnterRollsBackOnInjectorFailure(t *testing.T) {
	_, base := fixtures(t)
	reg, err := volt.NewRegulator(volt.PlaneCore, volt.DefaultProfile())
	if err != nil {
		t.Fatal(err)
	}
	unit := &flakyUnit{}
	s, err := NewWithHardware(base, reg, unit, Options{UndervoltMV: 130})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(s)
	if err != nil {
		t.Fatal(err)
	}
	unit.failNonZero = true
	if _, err := sess.DetectProgram(nil); err == nil {
		t.Fatal("enter must fail when the injector rejects the rate")
	}
	// The plane must have been rolled back to nominal: a failed enter
	// may never leave the system undervolted with entered == false.
	if !sess.AtNominal() {
		t.Fatalf("partial enter leaked an undervolted plane: depth %v mV", reg.UndervoltMV())
	}
	if sess.entered {
		t.Error("entered flag set after failed enter")
	}
	// The session recovers once the injector does.
	unit.failNonZero = false
	if err := sess.enter(); err != nil {
		t.Fatal(err)
	}
	if err := sess.exit(); err != nil {
		t.Fatal(err)
	}
}

func TestSessionExitNeverWedges(t *testing.T) {
	_, base := fixtures(t)
	reg, err := volt.NewRegulator(volt.PlaneCore, volt.DefaultProfile())
	if err != nil {
		t.Fatal(err)
	}
	unit := &flakyUnit{}
	s, err := NewWithHardware(base, reg, unit, Options{UndervoltMV: 130})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.enter(); err != nil {
		t.Fatal(err)
	}
	// Unlock the regulator out from under the session so exit's
	// voltage restore fails, then relock: the protocol state must
	// have cleared anyway, and the next cycle must work.
	if err := reg.Unlock(Owner); err != nil {
		t.Fatal(err)
	}
	if err := reg.Lock("intruder"); err != nil {
		t.Fatal(err)
	}
	if err := sess.exit(); err == nil {
		t.Fatal("exit with a stolen lock must report the failure")
	}
	if sess.entered {
		t.Error("failed exit wedged the session")
	}
	if err := reg.Unlock("intruder"); err != nil {
		t.Fatal(err)
	}
	if err := reg.Lock(Owner); err != nil {
		t.Fatal(err)
	}
	if err := sess.ForceNominal(); err != nil {
		t.Fatal(err)
	}
	if !sess.AtNominal() {
		t.Error("ForceNominal did not restore nominal")
	}
}

func TestSessionConcurrentDetections(t *testing.T) {
	d, base := fixtures(t)
	s, err := New(base, Options{ErrorRate: 0.1, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(s)
	if err != nil {
		t.Fatal(err)
	}
	// Hammer the session from many goroutines; run under -race this
	// verifies the enter/infer/exit protocol serializes correctly and
	// the entered flag is never corrupted.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		prog := d.Programs[g%len(d.Programs)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				dec, err := sess.DetectProgram(prog.Windows)
				if err != nil {
					t.Error(err)
					return
				}
				if dec.Score < 0 || dec.Score > 1 {
					t.Errorf("score = %v", dec.Score)
					return
				}
			}
		}()
	}
	wg.Wait()
	if !sess.AtNominal() {
		t.Error("voltage not nominal after concurrent detections")
	}
	if s.ErrorRate() != 0 {
		t.Errorf("injector rate after concurrent detections = %v", s.ErrorRate())
	}
}

func TestSessionRecalibrate(t *testing.T) {
	_, base := fixtures(t)
	s, err := New(base, Options{ErrorRate: 0.1, Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(s)
	if err != nil {
		t.Fatal(err)
	}
	oldDepth := sess.Depth()
	// Hotter silicon: the same rate needs a shallower depth.
	if err := s.Regulator().SetTemperature(volt.ReferenceTempC + 30); err != nil {
		t.Fatal(err)
	}
	depth, err := sess.Recalibrate(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if depth >= oldDepth {
		t.Errorf("recalibrated depth %v not shallower than %v", depth, oldDepth)
	}
	if sess.Depth() != depth {
		t.Errorf("session depth %v != returned %v", sess.Depth(), depth)
	}
	if !sess.AtNominal() {
		t.Error("recalibration outside detection must leave the plane nominal")
	}
	// Unreachable rate propagates the calibration error.
	if _, err := sess.Recalibrate(math.NaN()); err == nil {
		t.Error("NaN rate must be rejected")
	}
}
