package core

import (
	"runtime"
	"testing"

	"shmd/internal/faults"
	"shmd/internal/hmd"
	"shmd/internal/rng"
	"shmd/internal/volt"
)

// TestStochasticEvaluateDeterministicAcrossWorkers is the satellite
// determinism guarantee on the stochastic detector itself: with fault
// streams derived per program from the root seed, parallel Evaluate
// produces identical confusion matrices for worker counts 1, 2, and
// GOMAXPROCS on the same seed — the stochasticity is in the faults,
// never in the scheduling.
func TestStochasticEvaluateDeterministicAcrossWorkers(t *testing.T) {
	d, base := fixtures(t)
	split, err := d.ThreeFold(0)
	if err != nil {
		t.Fatal(err)
	}
	test := d.Select(split.Test)
	for _, rate := range []float64{0.1, 0.5} {
		s, err := New(base, Options{ErrorRate: rate, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		ref := hmd.EvaluateParallel(s, test, 1)
		for _, workers := range []int{2, runtime.GOMAXPROCS(0)} {
			if got := hmd.EvaluateParallel(s, test, workers); got != ref {
				t.Errorf("rate %v workers=%d: confusion %+v != workers=1 %+v",
					rate, workers, got, ref)
			}
		}
		// Evaluate (auto worker count) and a rebuilt detector with the
		// same seed must also agree: the result is a pure function of
		// (seed, rate, programs).
		if got := hmd.Evaluate(s, test); got != ref {
			t.Errorf("rate %v: Evaluate %+v != workers=1 %+v", rate, got, ref)
		}
		s2, err := New(base, Options{ErrorRate: rate, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		if got := hmd.Evaluate(s2, test); got != ref {
			t.Errorf("rate %v: rebuilt same-seed detector %+v != %+v", rate, got, ref)
		}
	}
}

// TestStochasticEvaluateSeedSensitivity: different seeds must give
// different fault streams (with overwhelming probability the verdict
// scores differ somewhere), and evaluating must not consume the
// detector's own stream — a DetectProgram call after Evaluate sees the
// same faults it would have seen before.
func TestStochasticEvaluateSeedSensitivity(t *testing.T) {
	d, base := fixtures(t)
	split, err := d.ThreeFold(0)
	if err != nil {
		t.Fatal(err)
	}
	test := d.Select(split.Test)
	p := d.Programs[0]

	s, err := New(base, Options{ErrorRate: 0.5, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	before := s.DetectProgram(p.Windows).Score
	// Re-derive an identical detector, run a full evaluation first, and
	// check the own-stream detection is unaffected by it.
	s2, err := New(base, Options{ErrorRate: 0.5, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	hmd.Evaluate(s2, test)
	if after := s2.DetectProgram(p.Windows).Score; after != before {
		t.Errorf("Evaluate consumed the detector's own fault stream: %v != %v", after, before)
	}
}

// TestHardwareDetectorDeclinesSharding: a detector on caller-supplied
// hardware cannot re-derive per-program fault streams, so it must
// decline sharding and still evaluate (serially) with correct counts.
func TestHardwareDetectorDeclinesSharding(t *testing.T) {
	d, base := fixtures(t)
	split, err := d.ThreeFold(0)
	if err != nil {
		t.Fatal(err)
	}
	test := d.Select(split.Test)

	reg, err := volt.NewRegulator(volt.PlaneCore, volt.NewDeviceProfile(0))
	if err != nil {
		t.Fatal(err)
	}
	inj, err := faults.NewInjector(0, nil, rng.NewRand(11))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewWithHardware(base, reg, inj, Options{ErrorRate: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if det := s.DetectorForProgram(0); det != nil {
		t.Fatal("hardware-supplied detector must decline sharding")
	}
	c := hmd.Evaluate(s, test)
	if c.TP+c.TN+c.FP+c.FN != len(test) {
		t.Errorf("serial fallback recorded %+v verdicts, want %d", c, len(test))
	}
}
