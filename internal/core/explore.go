package core

import (
	"fmt"
	"runtime"
	"sync"

	"shmd/internal/dataset"
	"shmd/internal/faults"
	"shmd/internal/hmd"
	"shmd/internal/rng"
	"shmd/internal/stats"
)

// Space exploration (Section VI): sweep the error rate and measure
// detection accuracy and the stochasticity of the decision boundary,
// to pick the operating point that maximizes robustness under the
// constraint of minimal accuracy loss.

// SweepPoint is one error-rate sample of the Fig 2(a) exploration:
// accuracy/FPR/FNR summarized over repeated stochastic evaluations.
// The standard deviation is the paper's stochasticity signal ("the
// standard deviation represents the stochasticity that undervolting
// adds to the output").
type SweepPoint struct {
	ErrorRate float64
	Accuracy  stats.Summary
	FPR       stats.Summary
	FNR       stats.Summary
}

// AccuracySweep evaluates the protected detector at every error rate,
// repeating each evaluation `repeats` times with independent fault
// streams. Repeats run in parallel.
func AccuracySweep(base *hmd.HMD, programs []dataset.TracedProgram, rates []float64, repeats int, seed uint64) ([]SweepPoint, error) {
	if len(programs) == 0 {
		return nil, fmt.Errorf("core: no evaluation programs")
	}
	if repeats < 1 {
		return nil, fmt.Errorf("core: repeats %d < 1", repeats)
	}
	out := make([]SweepPoint, len(rates))
	for ri, rate := range rates {
		accs := make([]float64, repeats)
		fprs := make([]float64, repeats)
		fnrs := make([]float64, repeats)
		if err := forEachRepeat(repeats, func(rep int) error {
			s, err := New(base.WithFreshBuffers(), Options{
				ErrorRate: rate,
				Seed:      rng.DeriveSeed(seed, uint64(ri)+1, uint64(rep)+1),
			})
			if err != nil {
				return err
			}
			c := hmd.Evaluate(s, programs)
			accs[rep] = c.Accuracy()
			fprs[rep] = c.FPR()
			fnrs[rep] = c.FNR()
			return nil
		}); err != nil {
			return nil, err
		}
		accS, _ := stats.Summarize(accs)
		fprS, _ := stats.Summarize(fprs)
		fnrS, _ := stats.Summarize(fnrs)
		out[ri] = SweepPoint{ErrorRate: rate, Accuracy: accS, FPR: fprS, FNR: fnrS}
	}
	return out, nil
}

// ConfidenceDistributions computes the Fig 2(b) view: the distribution
// of program-level malware-class confidence for benign samples and for
// malware samples, at a given error rate, pooled over repeats.
//
// Work is sharded over every (repeat, program) cell: each cell scores
// through its own injector on a stream derived from (seed, repeat,
// program index), so the pooled histograms are a pure function of the
// arguments — independent of GOMAXPROCS and of the order shards
// complete in.
func ConfidenceDistributions(base *hmd.HMD, programs []dataset.TracedProgram, rate float64, repeats, bins int, seed uint64) (benign, malware *stats.Histogram, err error) {
	if len(programs) == 0 {
		return nil, nil, fmt.Errorf("core: no evaluation programs")
	}
	if repeats < 1 || bins < 1 {
		return nil, nil, fmt.Errorf("core: invalid repeats %d / bins %d", repeats, bins)
	}
	if rate < 0 || rate > 1 {
		return nil, nil, fmt.Errorf("core: error rate %v outside [0,1]", rate)
	}
	benign = stats.NewHistogram(0, 1, bins)
	malware = stats.NewHistogram(0, 1, bins)
	scores := make([]float64, repeats*len(programs))
	if err := forEachRepeat(repeats*len(programs), func(job int) error {
		rep, pi := job/len(programs), job%len(programs)
		inj, err := faults.NewInjector(rate, nil,
			rng.NewRand(seed, 0xC0F, uint64(rep)+1, uint64(pi)))
		if err != nil {
			return err
		}
		scores[job] = base.WithUnit(inj).DetectProgram(programs[pi].Windows).Score
		return nil
	}); err != nil {
		return nil, nil, err
	}
	for job, score := range scores {
		if programs[job%len(programs)].IsMalware() {
			malware.Add(score)
		} else {
			benign.Add(score)
		}
	}
	return benign, malware, nil
}

// forEachRepeat runs fn(0..n-1) across GOMAXPROCS workers and collects
// the first error.
func forEachRepeat(n int, fn func(rep int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := range next {
				errs[rep] = fn(rep)
			}
		}()
	}
	for rep := 0; rep < n; rep++ {
		next <- rep
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
