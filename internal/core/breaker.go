package core

import (
	"fmt"
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position in its state machine.
type BreakerState int32

const (
	// BreakerClosed: requests flow; consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: requests are refused until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: one probe request is in flight; its outcome
	// decides between closing and re-opening with a longer cooldown.
	BreakerHalfOpen
)

// String names the state for logs, health reports, and metrics.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("core.BreakerState(%d)", int32(s))
	}
}

// BreakerConfig tunes a Breaker. The zero value selects the defaults.
type BreakerConfig struct {
	// Threshold is how many consecutive failures trip the breaker
	// (default 3). Trip opens it immediately regardless.
	Threshold int
	// Cooldown is how long the breaker stays open before Allow grants
	// a half-open probe (default 1s). A failed probe re-opens with the
	// cooldown doubled, capped at MaxCooldown (default 30s) — the
	// capped-backoff probe schedule.
	Cooldown    time.Duration
	MaxCooldown time.Duration
	// Now is the clock (default time.Now). Tests inject a fake; the
	// Supervisor injects a detection-counting virtual clock so its
	// cooldown is measured in degraded detections, not wall time.
	Now func() time.Time
}

// withDefaults fills unset fields.
func (cfg BreakerConfig) withDefaults() BreakerConfig {
	if cfg.Threshold == 0 {
		cfg.Threshold = 3
	}
	if cfg.Cooldown == 0 {
		cfg.Cooldown = time.Second
	}
	if cfg.MaxCooldown == 0 {
		cfg.MaxCooldown = 30 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return cfg
}

// Breaker is the repo's shared circuit-breaker state machine:
// closed → open (threshold consecutive failures, or an explicit Trip
// on a permanent fault) → half-open (one probe after the cooldown)
// → closed on probe success, or back to open with a doubled, capped
// cooldown on probe failure.
//
// It was extracted from the Supervisor's recovery machinery so the
// fleet router can run the identical discipline per backend: the
// Supervisor breaks on a slot's hardware, the router breaks on a
// backend's HTTP behavior, and both heal through capped-backoff
// probes. A Breaker is safe for concurrent use.
type Breaker struct {
	mu       sync.Mutex
	cfg      BreakerConfig
	state    BreakerState
	fails    int
	cooldown time.Duration
	openedAt time.Time

	trips      uint64
	reopens    uint64
	recoveries uint64
}

// NewBreaker builds a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg = cfg.withDefaults()
	return &Breaker{cfg: cfg, cooldown: cfg.Cooldown}
}

// Allow reports whether a request may proceed. Closed always allows.
// Open allows exactly one caller once the cooldown has elapsed — that
// caller holds the half-open probe and MUST report Success or Failure.
// Half-open (probe already claimed) refuses.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.cfg.Now().Sub(b.openedAt) >= b.cooldown {
			b.state = BreakerHalfOpen
			return true
		}
		return false
	default: // BreakerHalfOpen
		return false
	}
}

// Success records a successful request: the breaker closes (from any
// state), the failure run resets, and the cooldown returns to its
// base value.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerClosed {
		b.recoveries++
	}
	b.state = BreakerClosed
	b.fails = 0
	b.cooldown = b.cfg.Cooldown
}

// Failure records a failed request and returns the resulting state.
// In closed it counts toward the threshold; reaching it trips the
// breaker. In half-open the probe failed: the breaker re-opens with
// the cooldown doubled, capped at MaxCooldown. In open it is a no-op
// (the failure belongs to a request admitted before the trip).
func (b *Breaker) Failure() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.fails++
		if b.fails >= b.cfg.Threshold {
			b.open(b.cfg.Cooldown)
			b.trips++
		}
	case BreakerHalfOpen:
		next := 2 * b.cooldown
		if next > b.cfg.MaxCooldown {
			next = b.cfg.MaxCooldown
		}
		b.open(next)
		b.reopens++
	}
	return b.state
}

// Release abandons the half-open probe without a verdict: the breaker
// returns to open and the current cooldown restarts — neither doubled
// nor counted as a reopen, because the probe proved nothing about the
// protected resource. A caller that claimed the probe through Allow
// but cannot deliver an outcome (the router's case: the request
// holding the probe is cancelled by a departing client or loses a
// hedge race) MUST call it; an unresolved probe leaves the breaker
// half-open forever, where Allow refuses every caller. No-op in any
// other state.
func (b *Breaker) Release() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.open(b.cooldown)
	}
}

// Trip force-opens the breaker immediately (permanent faults skip the
// threshold count). Re-tripping an already open breaker restarts the
// current cooldown without counting a new trip.
func (b *Breaker) Trip() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerOpen {
		b.trips++
	}
	b.open(b.cooldown)
}

// open transitions to BreakerOpen with the given cooldown. Callers
// hold b.mu.
func (b *Breaker) open(cooldown time.Duration) {
	b.state = BreakerOpen
	b.cooldown = cooldown
	b.openedAt = b.cfg.Now()
	b.fails = 0
}

// State returns the current state without advancing it: an open
// breaker whose cooldown has elapsed still reports open until a
// caller claims the probe through Allow.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// BreakerSnapshot is a breaker's counter block for health and metrics.
type BreakerSnapshot struct {
	State BreakerState
	// ConsecFails is the current run of consecutive failures (closed
	// state only; trips reset it).
	ConsecFails int
	// Cooldown is the open interval currently in force (doubles on
	// failed probes, capped).
	Cooldown time.Duration
	// Trips counts closed→open transitions (including Trip calls);
	// Reopens counts failed half-open probes; Recoveries counts
	// successful closes from open/half-open.
	Trips      uint64
	Reopens    uint64
	Recoveries uint64
}

// Snapshot returns the breaker's counters.
func (b *Breaker) Snapshot() BreakerSnapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerSnapshot{
		State:       b.state,
		ConsecFails: b.fails,
		Cooldown:    b.cooldown,
		Trips:       b.trips,
		Reopens:     b.reopens,
		Recoveries:  b.recoveries,
	}
}
