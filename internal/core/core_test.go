package core

import (
	"math"
	"sync"
	"testing"

	"shmd/internal/dataset"
	"shmd/internal/hmd"
	"shmd/internal/volt"
)

var (
	fixtureOnce sync.Once
	fixtureData *dataset.Dataset
	fixtureHMD  *hmd.HMD
	fixtureErr  error
)

func fixtures(t *testing.T) (*dataset.Dataset, *hmd.HMD) {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureData, fixtureErr = dataset.Generate(dataset.QuickConfig(1))
		if fixtureErr != nil {
			return
		}
		split, err := fixtureData.ThreeFold(0)
		if err != nil {
			fixtureErr = err
			return
		}
		fixtureHMD, fixtureErr = hmd.Train(fixtureData.Select(split.VictimTrain), hmd.Config{Seed: 1})
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixtureData, fixtureHMD
}

func TestNewValidation(t *testing.T) {
	_, base := fixtures(t)
	if _, err := New(nil, Options{}); err == nil {
		t.Error("nil base must be rejected")
	}
	if _, err := New(base, Options{ErrorRate: 0.1, UndervoltMV: 130}); err == nil {
		t.Error("both knobs set must be rejected")
	}
	if _, err := New(base, Options{ErrorRate: -1}); err == nil {
		t.Error("negative rate must be rejected")
	}
	if _, err := New(base, Options{ErrorRate: 2}); err == nil {
		t.Error("rate 2 must be rejected")
	}
	if _, err := New(base, Options{UndervoltMV: -5}); err == nil {
		t.Error("negative depth must be rejected")
	}
}

func TestTrustedControlLocked(t *testing.T) {
	_, base := fixtures(t)
	s, err := New(base, Options{ErrorRate: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The adversary cannot restore nominal voltage: the regulator is
	// locked to the detector.
	if err := s.Regulator().SetUndervolt("malware", 0); err == nil {
		t.Error("adversary voltage write must fail")
	}
	if s.Regulator().Owner() != Owner {
		t.Errorf("owner = %q", s.Regulator().Owner())
	}
}

func TestErrorRateCalibration(t *testing.T) {
	_, base := fixtures(t)
	s, err := New(base, Options{ErrorRate: 0.1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.ErrorRate(); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("ErrorRate = %v", got)
	}
	// The regulator really moved: supply voltage is below nominal,
	// near the −130 mV operating point of the default device.
	depth := volt.DepthAtVoltage(s.SupplyVoltage())
	if depth < 110 || depth > 155 {
		t.Errorf("calibrated depth = %v mV, want ≈130", depth)
	}
}

func TestUndervoltKnob(t *testing.T) {
	_, base := fixtures(t)
	s, err := New(base, Options{UndervoltMV: 130, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if er := s.ErrorRate(); er < 0.05 || er > 0.2 {
		t.Errorf("error rate at -130 mV = %v", er)
	}
	if math.Abs(s.SupplyVoltage()-1.05) > 0.001 {
		t.Errorf("supply voltage = %v", s.SupplyVoltage())
	}
}

func TestTemperatureRecalibration(t *testing.T) {
	_, base := fixtures(t)
	s, err := New(base, Options{ErrorRate: 0.1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	coldDepth := volt.DepthAtVoltage(s.SupplyVoltage())
	if err := s.SetTemperature(80); err != nil {
		t.Fatal(err)
	}
	hotDepth := volt.DepthAtVoltage(s.SupplyVoltage())
	if math.Abs(s.ErrorRate()-0.1) > 1e-9 {
		t.Errorf("rate after temp change = %v", s.ErrorRate())
	}
	if hotDepth >= coldDepth {
		t.Errorf("hot depth %v should be shallower than cold %v", hotDepth, coldDepth)
	}
}

func TestStochasticDetectionVaries(t *testing.T) {
	d, base := fixtures(t)
	s, err := New(base, Options{ErrorRate: 0.5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	p := d.Programs[0]
	seen := map[float64]bool{}
	for i := 0; i < 30; i++ {
		seen[s.DetectProgram(p.Windows).Score] = true
	}
	if len(seen) < 10 {
		t.Errorf("only %d distinct program scores across 30 runs", len(seen))
	}
}

func TestZeroRateMatchesBaseline(t *testing.T) {
	d, base := fixtures(t)
	s, err := New(base, Options{Seed: 6}) // no knob: nominal voltage
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range d.Programs[:20] {
		if s.DetectProgram(p.Windows) != base.DetectProgram(p.Windows) {
			t.Fatal("zero-rate stochastic HMD must equal the baseline")
		}
	}
}

func TestAccuracySweepShape(t *testing.T) {
	// The headline Fig 2(a) property at test scale: at er = 0.1 the
	// accuracy loss is small (paper: < 2%), and degradation grows
	// toward er = 1.
	d, base := fixtures(t)
	split, _ := d.ThreeFold(0)
	test := d.Select(split.Test)

	baseAcc := hmd.Evaluate(base, test).Accuracy()
	points, err := AccuracySweep(base, test, []float64{0.1, 0.5, 1.0}, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range points {
		t.Logf("er=%.1f acc=%.4f±%.4f fpr=%.4f fnr=%.4f",
			pt.ErrorRate, pt.Accuracy.Mean, pt.Accuracy.StdDev, pt.FPR.Mean, pt.FNR.Mean)
	}
	if loss := baseAcc - points[0].Accuracy.Mean; loss > 0.04 {
		t.Errorf("accuracy loss at er=0.1 is %v, want < 0.04 (baseline %v)", loss, baseAcc)
	}
	if points[2].Accuracy.Mean >= points[0].Accuracy.Mean {
		t.Errorf("accuracy must degrade from er=0.1 (%v) to er=1 (%v)",
			points[0].Accuracy.Mean, points[2].Accuracy.Mean)
	}
	// Stochasticity: the er=0.5 point must show clearly nonzero
	// run-to-run standard deviation.
	if points[1].Accuracy.StdDev <= 0 {
		t.Error("er=0.5 accuracy must vary across repeats")
	}
}

func TestAccuracySweepValidation(t *testing.T) {
	d, base := fixtures(t)
	if _, err := AccuracySweep(base, nil, []float64{0.1}, 1, 1); err == nil {
		t.Error("no programs must error")
	}
	if _, err := AccuracySweep(base, d.Select([]int{0}), []float64{0.1}, 0, 1); err == nil {
		t.Error("zero repeats must error")
	}
}

func TestConfidenceDistributions(t *testing.T) {
	d, base := fixtures(t)
	split, _ := d.ThreeFold(0)
	test := d.Select(split.Test)
	benign, malware, err := ConfidenceDistributions(base, test, 0.1, 4, 20, 8)
	if err != nil {
		t.Fatal(err)
	}
	if benign.Total() == 0 || malware.Total() == 0 {
		t.Fatal("empty confidence distributions")
	}
	// Malware samples must concentrate high, benign low.
	meanOf := func(h interface {
		Density() []float64
		BinCenter(int) float64
	}) float64 {
		m := 0.0
		for i, p := range h.Density() {
			m += p * h.BinCenter(i)
		}
		return m
	}
	if mb, bb := meanOf(malware), meanOf(benign); mb <= bb {
		t.Errorf("malware confidence mean %v must exceed benign %v", mb, bb)
	}
}

func TestConfidenceDistributionsValidation(t *testing.T) {
	d, base := fixtures(t)
	test := d.Select([]int{0, 1})
	if _, _, err := ConfidenceDistributions(base, nil, 0.1, 1, 10, 1); err == nil {
		t.Error("no programs must error")
	}
	if _, _, err := ConfidenceDistributions(base, test, 0.1, 0, 10, 1); err == nil {
		t.Error("zero repeats must error")
	}
	if _, _, err := ConfidenceDistributions(base, test, 0.1, 1, 0, 1); err == nil {
		t.Error("zero bins must error")
	}
}
