package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"shmd/internal/hmd"
	"shmd/internal/trace"
)

// Supervisor keeps a detection Session alive in a hostile environment.
// The paper's operating point sits just above crash voltage, where a
// real regulator fails transiently, the mailbox gets contended, and
// temperature or supply drift silently move the fault rate off its
// calibrated, accuracy-preserving band. The supervisor's contract is
// fail-safe availability: every detection request returns a decision.
//
// It layers four mechanisms over the bare Session:
//
//   - bounded retry with exponential backoff on faulted cycles;
//   - a circuit breaker that trips after repeated failures (or at once
//     on a permanent fault) into degraded mode — deterministic
//     nominal-voltage detection with decisions flagged Unprotected —
//     and half-open probes that restore protected mode when the
//     environment heals;
//   - periodic known-answer canary probes that measure the fault rate
//     the silicon actually produces and, when it leaves the tolerance
//     band around the calibrated target, recalibrate the undervolt
//     depth at the current temperature;
//   - health counters exposing every recovery action taken.
//
// State machine: Healthy → Retrying (transient faults being absorbed)
// → Degraded (breaker open, Unprotected decisions) → Healthy again
// (recovery probe succeeded; Health.Recoveries increments).
//
// A Supervisor is safe for concurrent use.
type Supervisor struct {
	mu   sync.Mutex
	s    *StochasticHMD
	sess *Session
	cfg  SupervisorConfig

	// targetRate is the calibrated operating-point fault rate the
	// canary defends.
	targetRate float64

	// breaker is the shared circuit-breaker state machine, driven by a
	// virtual clock that advances one nanosecond per degraded
	// detection: BreakerCooldown is therefore measured in degraded
	// detections served, exactly as the supervisor's original inline
	// counter did, while the router reuses the same Breaker against
	// wall time. MaxCooldown is pinned to Cooldown so the half-open
	// backoff stays flat here (a fixed probe cadence keeps time-to-
	// recovery bounded for a plane that heals when the excursion ends).
	breaker *Breaker
	ticks   int64

	state             State
	sinceCanary       int
	consecCanaryFails int
	h                 Health
}

// State is the supervisor's position in its recovery state machine.
type State int

const (
	// Healthy: the last detection cycle succeeded without retries.
	Healthy State = iota
	// Retrying: recent cycles needed retries or failed, but the
	// breaker has not tripped; detections are still protected.
	Retrying
	// Degraded: the breaker is open; detections run deterministically
	// at nominal voltage and are flagged Unprotected.
	Degraded
)

// String names the state for logs and health reports.
func (st State) String() string {
	switch st {
	case Healthy:
		return "healthy"
	case Retrying:
		return "retrying"
	case Degraded:
		return "degraded"
	default:
		return fmt.Sprintf("core.State(%d)", int(st))
	}
}

// SupervisorConfig tunes the recovery machinery. The zero value
// selects the documented defaults.
type SupervisorConfig struct {
	// MaxRetries is how many times a faulted detection cycle is
	// retried before counting as a failure (default 3).
	MaxRetries int
	// Backoff is the sleep before the first retry; it doubles per
	// retry up to MaxBackoff (defaults 500µs and 8ms).
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Sleep is the backoff clock (default time.Sleep); tests inject a
	// recorder to avoid real sleeps.
	Sleep func(time.Duration)
	// CanaryEvery is the number of successful protected detections
	// between known-answer canary probes (default 8; negative
	// disables probing).
	CanaryEvery int
	// CanaryMuls is the probe length in multiplications (default
	// 4096). Longer probes resolve smaller drifts.
	CanaryMuls int
	// RateTolerance is the relative band around the target fault rate
	// the canary accepts before recalibrating (default 0.35).
	RateTolerance float64
	// BreakerThreshold is how many consecutive failed detection
	// cycles trip the breaker (default 3). A permanent fault trips it
	// immediately.
	BreakerThreshold int
	// BreakerCooldown is how many degraded detections pass before a
	// half-open probe retries protected detection (default 8).
	BreakerCooldown int
}

func (cfg SupervisorConfig) withDefaults() SupervisorConfig {
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 3
	}
	if cfg.Backoff == 0 {
		cfg.Backoff = 500 * time.Microsecond
	}
	if cfg.MaxBackoff == 0 {
		cfg.MaxBackoff = 8 * time.Millisecond
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	if cfg.CanaryEvery == 0 {
		cfg.CanaryEvery = 8
	}
	if cfg.CanaryMuls == 0 {
		cfg.CanaryMuls = 4096
	}
	if cfg.RateTolerance == 0 {
		cfg.RateTolerance = 0.35
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown == 0 {
		cfg.BreakerCooldown = 8
	}
	return cfg
}

// Health is the supervisor's counter block: everything the recovery
// machinery has done, for observability.
type Health struct {
	State State
	// Detections is the total requests served; Protected of them ran
	// undervolted, Unprotected ran degraded at nominal voltage.
	Detections  uint64
	Protected   uint64
	Unprotected uint64
	// Retries counts individual cycle retries; Failures counts
	// detection requests whose protected attempts were all faulted.
	Retries  uint64
	Failures uint64
	// Trips and Recoveries count breaker transitions.
	Trips      uint64
	Recoveries uint64
	// Canaries counts probes run; Drifts how many found the observed
	// rate outside the tolerance band; Recalibrations how many depth
	// recalibrations succeeded.
	Canaries       uint64
	Drifts         uint64
	Recalibrations uint64
	// CanaryFailures counts probes whose every attempt faulted (no rate
	// reading obtained); CanaryFailStreak is the current run of
	// consecutive failed probes — a rising streak means the plane can no
	// longer be measured at all, the terminal-degradation signal pool
	// lifecycle management quarantines on.
	CanaryFailures   uint64
	CanaryFailStreak uint64
	// LastCanaryRate is the fault rate the most recent successful
	// canary probe observed (meaningful once Canaries > 0) — the online
	// fault-rate reading monitoring systems compare against the target.
	LastCanaryRate float64
}

// Verdict is a supervised detection result.
type Verdict struct {
	hmd.Decision
	// Unprotected marks a degraded decision: the inference ran
	// deterministically at nominal voltage, so it carries none of the
	// moving-target protection. Consumers treating such decisions as
	// authoritative do so at their own risk.
	Unprotected bool
	// Attempts is the number of protected cycles tried (0 when the
	// breaker was already open).
	Attempts int
}

// NewSupervisor wraps the detector in a self-healing session. The
// detector's current fault rate becomes the canary target; the plane
// is restored to nominal until the first detection.
func NewSupervisor(s *StochasticHMD, cfg SupervisorConfig) (*Supervisor, error) {
	if s == nil {
		return nil, fmt.Errorf("core: nil detector")
	}
	target := s.ErrorRate()
	sess, err := NewSession(s)
	if err != nil {
		return nil, err
	}
	sup := &Supervisor{
		s:          s,
		sess:       sess,
		cfg:        cfg.withDefaults(),
		targetRate: target,
	}
	sup.breaker = NewBreaker(BreakerConfig{
		Threshold:   sup.cfg.BreakerThreshold,
		Cooldown:    time.Duration(sup.cfg.BreakerCooldown),
		MaxCooldown: time.Duration(sup.cfg.BreakerCooldown),
		Now:         func() time.Time { return time.Unix(0, sup.ticks) },
	})
	return sup, nil
}

// Session exposes the supervised session (demos inspect its depth and
// nominal-voltage invariant).
func (sup *Supervisor) Session() *Session { return sup.sess }

// TargetRate returns the calibrated fault rate the canary defends.
func (sup *Supervisor) TargetRate() float64 { return sup.targetRate }

// Health returns a snapshot of the recovery counters.
func (sup *Supervisor) Health() Health {
	sup.mu.Lock()
	defer sup.mu.Unlock()
	h := sup.h
	h.State = sup.state
	return h
}

// State returns the supervisor's current recovery state.
func (sup *Supervisor) State() State {
	sup.mu.Lock()
	defer sup.mu.Unlock()
	return sup.state
}

// DetectProgram serves one detection request. It never returns an
// error for environmental faults: protected detection is retried,
// then the request degrades to a deterministic nominal-voltage
// decision flagged Unprotected. The returned error is reserved for
// programming errors (nil windows panics upstream, not here).
func (sup *Supervisor) DetectProgram(windows []trace.WindowCounts) (Verdict, error) {
	sup.mu.Lock()
	defer sup.mu.Unlock()
	sup.h.Detections++

	if sup.state == Degraded {
		sup.ticks++ // degraded detections are the breaker's clock
		if sup.breaker.Allow() {
			// Half-open probe: one protected attempt set.
			if v, err := sup.tryProtected(windows); err == nil {
				sup.breaker.Success()
				sup.state = Healthy
				sup.h.Recoveries++
				return v, nil
			}
			sup.breaker.Failure()
		}
		return sup.degraded(windows), nil
	}

	v, err := sup.tryProtected(windows)
	if err != nil {
		sup.h.Failures++
		sup.state = Retrying
		if permanentErr(err) {
			sup.breaker.Trip()
		} else {
			sup.breaker.Failure()
		}
		if sup.breaker.State() == BreakerOpen {
			sup.state = Degraded
			sup.h.Trips++
		}
		return sup.degraded(windows), nil
	}
	sup.breaker.Success()
	if v.Attempts > 1 {
		sup.state = Retrying
	} else {
		sup.state = Healthy
	}

	if sup.cfg.CanaryEvery > 0 && sup.targetRate > 0 {
		sup.sinceCanary++
		if sup.sinceCanary >= sup.cfg.CanaryEvery {
			sup.sinceCanary = 0
			sup.canary()
		}
	}
	return v, nil
}

// tryProtected runs the enter → infer → exit cycle with bounded retry
// and exponential backoff. On final failure the plane is forced back
// to nominal (best effort). Callers hold sup.mu.
func (sup *Supervisor) tryProtected(windows []trace.WindowCounts) (Verdict, error) {
	var lastErr error
	for attempt := 0; attempt <= sup.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			sup.h.Retries++
			sup.backoff(attempt)
		}
		dec, err := sup.sess.DetectProgram(windows)
		if err == nil {
			sup.h.Protected++
			return Verdict{Decision: dec, Attempts: attempt + 1}, nil
		}
		lastErr = err
		if permanentErr(err) {
			break
		}
	}
	sup.failSafe()
	return Verdict{}, lastErr
}

// degraded serves the request deterministically at nominal voltage —
// the paper's unprotected baseline HMD — after making a best-effort
// pass at restoring the plane. Callers hold sup.mu.
func (sup *Supervisor) degraded(windows []trace.WindowCounts) Verdict {
	sup.failSafe()
	sup.h.Unprotected++
	dec := sup.s.Base().DetectProgram(windows)
	return Verdict{Decision: dec, Unprotected: true}
}

// canary probes the true fault rate and recalibrates when it has
// drifted outside the tolerance band. Probe faults count as retries
// but never fail the detection that triggered them. Callers hold
// sup.mu.
func (sup *Supervisor) canary() {
	sup.h.Canaries++
	var observed float64
	err := errors.New("unprobed")
	for attempt := 0; attempt <= sup.cfg.MaxRetries && err != nil; attempt++ {
		if attempt > 0 {
			sup.h.Retries++
			sup.backoff(attempt)
		}
		observed, err = sup.sess.ObserveRate(sup.cfg.CanaryMuls)
		if err != nil && permanentErr(err) {
			break
		}
	}
	if err != nil {
		sup.h.CanaryFailures++
		sup.consecCanaryFails++
		sup.h.CanaryFailStreak = uint64(sup.consecCanaryFails)
		sup.failSafe()
		return
	}
	sup.consecCanaryFails = 0
	sup.h.CanaryFailStreak = 0
	sup.h.LastCanaryRate = observed
	lo := sup.targetRate * (1 - sup.cfg.RateTolerance)
	hi := sup.targetRate * (1 + sup.cfg.RateTolerance)
	if observed >= lo && observed <= hi {
		return
	}
	sup.h.Drifts++
	if _, err := sup.sess.Recalibrate(sup.targetRate); err == nil {
		sup.h.Recalibrations++
	} else {
		sup.failSafe()
	}
}

// failSafe insists the plane sits at nominal voltage with a zero
// fault rate, retrying through transient faults. With a dead
// regulator this cannot succeed; reads still verify the plane never
// left nominal in that case. Callers hold sup.mu.
func (sup *Supervisor) failSafe() {
	for i := 0; i <= sup.cfg.MaxRetries; i++ {
		if err := sup.sess.ForceNominal(); err == nil {
			return
		}
	}
}

// backoff sleeps for the attempt's exponential backoff. Callers hold
// sup.mu.
func (sup *Supervisor) backoff(attempt int) {
	d := sup.cfg.Backoff << uint(attempt-1)
	if d > sup.cfg.MaxBackoff || d <= 0 {
		d = sup.cfg.MaxBackoff
	}
	sup.cfg.Sleep(d)
}

// permanentErr classifies an error as unrecoverable without importing
// the chaos package: any error in the chain advertising
// Permanent() == true (the convention chaos errors follow).
func permanentErr(err error) bool {
	var p interface{ Permanent() bool }
	return errors.As(err, &p) && p.Permanent()
}
