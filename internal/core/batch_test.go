package core

import (
	"math"
	"testing"

	"shmd/internal/hmd"
	"shmd/internal/trace"
)

// hideBatch masks DetectBatch so evaluation takes the per-program
// sharded reference path.
type hideBatch struct{ s *StochasticHMD }

func (h hideBatch) ScoreWindows(w []trace.WindowCounts) []float64 { return h.s.ScoreWindows(w) }
func (h hideBatch) DetectProgram(w []trace.WindowCounts) hmd.Decision {
	return h.s.DetectProgram(w)
}
func (h hideBatch) DetectorForProgram(idx int) hmd.Detector { return h.s.DetectorForProgram(idx) }

// TestStochasticDetectBatchBitIdentity is the tentpole guarantee at
// the detector level: batched stochastic evaluation is bit-identical
// per program to the per-program derived path — same verdicts, same
// score bits — for batch sizes covering single-lane, ragged, and
// full-width groupings, and for any lane order.
func TestStochasticDetectBatchBitIdentity(t *testing.T) {
	d, base := fixtures(t)
	split, err := d.ThreeFold(0)
	if err != nil {
		t.Fatal(err)
	}
	test := d.Select(split.Test)
	if len(test) > 48 {
		test = test[:48]
	}
	for _, rate := range []float64{0.1, 0.5} {
		s, err := New(base, Options{ErrorRate: rate, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		// Per-program reference decisions through DetectorForProgram —
		// the exact contract DetectBatch lanes must reproduce.
		want := make([]hmd.Decision, len(test))
		for i := range test {
			want[i] = s.DetectorForProgram(i).DetectProgram(test[i].Windows)
		}
		for _, batch := range []int{1, 2, 7, 64} {
			for start := 0; start < len(test); start += batch {
				end := start + batch
				if end > len(test) {
					end = len(test)
				}
				idxs := make([]int, 0, end-start)
				for i := start; i < end; i++ {
					idxs = append(idxs, i)
				}
				got := s.DetectBatch(idxs, test)
				for j, idx := range idxs {
					if got[j].Malware != want[idx].Malware ||
						math.Float64bits(got[j].Score) != math.Float64bits(want[idx].Score) {
						t.Fatalf("rate %v batch=%d program %d: batched %+v != per-program %+v",
							rate, batch, idx, got[j], want[idx])
					}
				}
			}
		}
		// Lane order must not matter: reversed batch, same decisions.
		n := len(test)
		if n > 16 {
			n = 16
		}
		rev := make([]int, n)
		for i := range rev {
			rev[i] = n - 1 - i
		}
		got := s.DetectBatch(rev, test)
		for j, idx := range rev {
			if got[j].Malware != want[idx].Malware ||
				math.Float64bits(got[j].Score) != math.Float64bits(want[idx].Score) {
				t.Fatalf("rate %v reversed lane %d (program %d): %+v != %+v",
					rate, j, idx, got[j], want[idx])
			}
		}
	}
}

// TestStochasticEvaluateBatchMatchesSharded pins the evaluation-level
// equivalence: the batched evaluator and the per-program sharded
// reference produce the same confusion matrix at every batch size.
func TestStochasticEvaluateBatchMatchesSharded(t *testing.T) {
	d, base := fixtures(t)
	split, err := d.ThreeFold(0)
	if err != nil {
		t.Fatal(err)
	}
	test := d.Select(split.Test)
	s, err := New(base, Options{ErrorRate: 0.3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ref := hmd.EvaluateParallel(hideBatch{s}, test, 2)
	for _, batch := range []int{1, 7, 64} {
		if got := hmd.EvaluateBatch(s, test, batch, 2); got != ref {
			t.Errorf("batch=%d: confusion %+v != per-program reference %+v", batch, got, ref)
		}
	}
}
