// Package core implements Stochastic-HMD, the paper's contribution: a
// hardware malware detector whose inference runs on an undervolted
// core, so every multiplication may suffer a stochastic
// timing-violation bit flip. The decision boundary becomes a moving
// target — reverse-engineering sees noisy labels and minimally-evasive
// malware is re-caught — while the unchanged pre-trained model keeps
// its baseline accuracy and the lowered supply voltage saves power.
//
// No retraining, no model change, no extra hardware: the construction
// is exactly (pre-trained HMD) + (voltage knob), matching the paper's
// deployment story.
package core

import (
	"fmt"
	"math"
	"math/rand"

	"shmd/internal/dataset"
	"shmd/internal/faults"
	"shmd/internal/fxp"
	"shmd/internal/hmd"
	"shmd/internal/rng"
	"shmd/internal/trace"
	"shmd/internal/volt"
)

// Owner is the lock identity the Stochastic-HMD holds on its voltage
// regulator (Section III "Trusted control").
const Owner = "stochastic-hmd"

// Plane is the voltage-plane surface the detector drives. It is the
// method set of *volt.Regulator that the detection path uses;
// environmental wrappers (internal/chaos) implement it to interpose
// faults and drift between the detector and the ideal device.
type Plane interface {
	Lock(owner string) error
	Unlock(owner string) error
	Owner() string
	SetUndervolt(caller string, depthMV float64) error
	CalibrateToRate(caller string, rate float64) (float64, error)
	SetTemperature(tempC float64) error
	Temperature() float64
	UndervoltMV() float64
	SupplyVoltage() float64
	ErrorRate() float64
	Profile() volt.DeviceProfile
}

var _ Plane = (*volt.Regulator)(nil)

// FaultUnit is the stochastic multiplier surface: an arithmetic unit
// whose per-multiplication fault rate tracks the supply voltage.
type FaultUnit interface {
	fxp.Unit
	Rate() float64
	SetRate(rate float64) error
}

var _ FaultUnit = (*faults.Injector)(nil)

// Options configures a Stochastic-HMD.
type Options struct {
	// ErrorRate directly requests a multiplier fault rate in [0, 1].
	// When set (non-zero), the regulator is calibrated to the depth
	// that yields it. Mutually exclusive with UndervoltMV.
	ErrorRate float64
	// UndervoltMV requests an explicit undervolt depth below nominal.
	UndervoltMV float64
	// DeviceSeed selects the device calibration profile (0 = the
	// reference i7-5557U-like device).
	DeviceSeed uint64
	// TempC is the die temperature (default 49 °C, the
	// characterization point).
	TempC float64
	// Seed drives the stochastic fault stream. Runs with the same
	// seed reproduce exactly; deployments would use a hardware
	// entropy source, tests use fixed seeds.
	Seed uint64
	// Dist overrides the fault-location distribution (nil = Fig 1
	// model).
	Dist *faults.Distribution
}

// StochasticHMD wraps a baseline HMD with an undervolted inference
// path.
type StochasticHMD struct {
	base *hmd.HMD
	reg  Plane
	inj  FaultUnit

	// Sharded-evaluation support (hmd.ProgramSharder): the root seed
	// and fault-location distribution from which per-program fault
	// streams are derived. Only populated by New, where the fault unit
	// is known to be a standard injector; detectors on caller-supplied
	// hardware decline sharding.
	shardable bool
	seed      uint64
	dist      *faults.Distribution

	// Batched-serving support (DetectTracesBatch): laneSeeded marks a
	// detector whose seed/dist were installed by EnableBatchStreams
	// (the opt-in for caller-supplied hardware), and batchPass counts
	// batched passes so every batch draws fresh per-lane fault streams
	// — the moving-target property across batches.
	laneSeeded bool
	batchPass  uint64

	// Decision tracing (opt-in, see EnableDecisionTrace): when on,
	// every ScoreWindows pass records its stochastic draws into
	// lastDraws so the serving layer can attach provenance to the
	// verdict it just produced. Purely observational — the injector's
	// RNG stream is untouched.
	traceOn   bool
	lastDraws faults.DrawLog
}

// New builds a Stochastic-HMD around base on ideal hardware: a fresh
// volt.Regulator for the core plane and a faults.Injector seeded from
// the options. The regulator is locked to the detector (trusted
// control) and calibrated per the options.
func New(base *hmd.HMD, opts Options) (*StochasticHMD, error) {
	reg, err := volt.NewRegulator(volt.PlaneCore, volt.NewDeviceProfile(opts.DeviceSeed))
	if err != nil {
		return nil, err
	}
	dist := opts.Dist
	if dist == nil {
		dist = faults.Fig1Distribution()
	}
	inj, err := faults.NewInjector(0, dist, rng.NewRand(opts.Seed, 0x5BD))
	if err != nil {
		return nil, err
	}
	s, err := NewWithHardware(base, reg, inj, opts)
	if err != nil {
		return nil, err
	}
	s.shardable = true
	s.seed = opts.Seed
	s.dist = dist
	return s, nil
}

// NewWithHardware builds a Stochastic-HMD on caller-supplied hardware:
// any Plane (an ideal regulator, or a chaos.Env wrapping one) and any
// FaultUnit. The DeviceSeed, Seed, and Dist options are ignored — they
// configure the hardware New would have built. The plane is locked to
// the detector and calibrated per the remaining options.
func NewWithHardware(base *hmd.HMD, reg Plane, inj FaultUnit, opts Options) (*StochasticHMD, error) {
	if base == nil {
		return nil, fmt.Errorf("core: nil base detector")
	}
	if reg == nil {
		return nil, fmt.Errorf("core: nil voltage plane")
	}
	if inj == nil {
		return nil, fmt.Errorf("core: nil fault unit")
	}
	if opts.ErrorRate != 0 && opts.UndervoltMV != 0 {
		return nil, fmt.Errorf("core: set ErrorRate or UndervoltMV, not both")
	}
	if opts.ErrorRate < 0 || opts.ErrorRate > 1 {
		return nil, fmt.Errorf("core: error rate %v outside [0,1]", opts.ErrorRate)
	}
	if opts.UndervoltMV < 0 {
		return nil, fmt.Errorf("core: negative undervolt depth %v", opts.UndervoltMV)
	}
	if opts.TempC == 0 {
		opts.TempC = volt.ReferenceTempC
	}
	if err := reg.Lock(Owner); err != nil {
		return nil, err
	}
	if err := reg.SetTemperature(opts.TempC); err != nil {
		return nil, err
	}
	s := &StochasticHMD{base: base, reg: reg, inj: inj}
	switch {
	case opts.ErrorRate > 0:
		if err := s.SetErrorRate(opts.ErrorRate); err != nil {
			return nil, err
		}
	case opts.UndervoltMV > 0:
		if err := s.SetUndervolt(opts.UndervoltMV); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Base returns the protected baseline detector.
func (s *StochasticHMD) Base() *hmd.HMD { return s.base }

// Regulator exposes the (locked) voltage plane.
func (s *StochasticHMD) Regulator() Plane { return s.reg }

// Injector exposes the fault unit, mainly for statistics.
func (s *StochasticHMD) Injector() FaultUnit { return s.inj }

// ErrorRate returns the current per-multiplication fault rate.
func (s *StochasticHMD) ErrorRate() float64 { return s.inj.Rate() }

// SupplyVoltage returns the detection core's supply voltage.
func (s *StochasticHMD) SupplyVoltage() float64 { return s.reg.SupplyVoltage() }

// SetErrorRate calibrates the regulator so the device produces the
// requested fault rate at the current temperature (the Section IX
// calibration flow) and points the injector at it.
func (s *StochasticHMD) SetErrorRate(rate float64) error {
	if _, err := s.reg.CalibrateToRate(Owner, rate); err != nil {
		return err
	}
	// The device curve saturates below 1; honour the exact requested
	// rate in the injector (the paper's tool-space sweep does the
	// same: the er axis is the injected rate).
	return s.inj.SetRate(rate)
}

// SetUndervolt sets an explicit depth and derives the fault rate from
// the device profile.
func (s *StochasticHMD) SetUndervolt(depthMV float64) error {
	if err := s.reg.SetUndervolt(Owner, depthMV); err != nil {
		return err
	}
	return s.inj.SetRate(s.reg.ErrorRate())
}

// SetTemperature updates the die temperature and recalibrates the
// undervolt depth to keep the fault rate stable — the dynamic
// adjustment Section IX calls for.
func (s *StochasticHMD) SetTemperature(tempC float64) error {
	rate := s.inj.Rate()
	if err := s.reg.SetTemperature(tempC); err != nil {
		return err
	}
	return s.SetErrorRate(rate)
}

// ScoreWindows implements hmd.Detector: per-window scores through the
// undervolted multiplier. Every call re-rolls the stochastic faults —
// the moving-target property.
func (s *StochasticHMD) ScoreWindows(windows []trace.WindowCounts) []float64 {
	if s.traceOn {
		if rec, ok := s.inj.(faults.Recordable); ok {
			rec.StartRecord(&s.lastDraws)
			defer rec.StopRecord()
		}
	}
	return s.base.ScoreWindowsUnit(s.inj, windows)
}

// EnableDecisionTrace turns on draw recording: after each ScoreWindows
// (or DetectProgram) call, LastDraws returns the stochastic draw log
// of that pass. Recording is observational — scores and the fault
// stream are bit-identical to an untraced run. No-op tracing (a fault
// unit that is not faults.Recordable) yields empty logs, which replay
// as the exact unit.
func (s *StochasticHMD) EnableDecisionTrace() {
	s.traceOn = true
	s.lastDraws = faults.DrawLog{InitialGap: -1}
}

// LastDraws returns a copy of the draw log of the most recent scoring
// pass. Meaningful only after EnableDecisionTrace.
func (s *StochasticHMD) LastDraws() faults.DrawLog { return s.lastDraws.Clone() }

// DetectProgramTraced implements hmd.TracedDetector: the verdict plus
// the draw log of its scoring pass, whether or not tracing is enabled.
func (s *StochasticHMD) DetectProgramTraced(windows []trace.WindowCounts) (hmd.Decision, faults.DrawLog) {
	rec, ok := s.inj.(faults.Recordable)
	if !ok {
		return s.DetectProgram(windows), faults.DrawLog{InitialGap: -1}
	}
	var log faults.DrawLog
	rec.StartRecord(&log)
	dec := s.base.DecideFromScores(s.base.ScoreWindowsUnit(s.inj, windows))
	rec.StopRecord()
	return dec, log
}

// DetectProgram implements hmd.Detector.
func (s *StochasticHMD) DetectProgram(windows []trace.WindowCounts) hmd.Decision {
	return s.base.DecideFromScores(s.ScoreWindows(windows))
}

// shardStreamLabel separates per-program evaluation fault streams from
// the detector's own stream (label 0x5BD in New).
const shardStreamLabel = 0x5A4D

// DetectorForProgram implements hmd.ProgramSharder: an independent
// detector for program idx whose fault stream is derived from the
// detector's root seed, the current error rate, and idx. Evaluation
// results are therefore a pure function of (seed, rate, programs) —
// independent of worker count and shard order — and evaluating never
// consumes the detector's own fault stream. Detectors built on
// caller-supplied hardware (NewWithHardware) return nil: an arbitrary
// FaultUnit cannot be re-derived per program.
func (s *StochasticHMD) DetectorForProgram(idx int) hmd.Detector {
	if !s.shardable {
		return nil
	}
	rate := s.inj.Rate()
	inj, err := faults.NewInjector(rate, s.dist,
		rng.NewRand(s.seed, shardStreamLabel, math.Float64bits(rate), uint64(idx)))
	if err != nil {
		return nil
	}
	return s.base.WithUnit(inj)
}

// DetectBatch implements hmd.BatchSharder: one lane-batched evaluation
// pass over programs[idx], idx in idxs, where lane j's fault stream is
// the per-program derived stream DetectorForProgram(idxs[j]) would use
// — same seed, label, rate, and program index — so the batched
// verdicts are bit-identical to the per-program path under any batch
// grouping. Declines (nil) exactly when DetectorForProgram declines.
func (s *StochasticHMD) DetectBatch(idxs []int, programs []dataset.TracedProgram) []hmd.Decision {
	if !s.shardable {
		return nil
	}
	rate := s.inj.Rate()
	srcs := make([]rand.Source64, len(idxs))
	for j, idx := range idxs {
		srcs[j] = rng.NewSource64(s.seed, shardStreamLabel, math.Float64bits(rate), uint64(idx))
	}
	binj, err := faults.NewBatchInjector(rate, s.dist, srcs)
	if err != nil {
		return nil
	}
	return s.base.WithFreshBuffers().DetectBatchUnit(binj, idxs, programs)
}

var _ hmd.Detector = (*StochasticHMD)(nil)
var _ hmd.ProgramSharder = (*StochasticHMD)(nil)
var _ hmd.BatchSharder = (*StochasticHMD)(nil)
var _ hmd.TracedDetector = (*StochasticHMD)(nil)
