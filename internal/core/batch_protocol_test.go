package core

import (
	"math"
	"testing"
	"time"

	"shmd/internal/chaos"
	"shmd/internal/faults"
	"shmd/internal/fxp"
	"shmd/internal/hmd"
	"shmd/internal/trace"
)

// batchTraces picks n program traces from the shared fixture corpus.
func batchTraces(t *testing.T, n int) [][]trace.WindowCounts {
	t.Helper()
	d, _ := fixtures(t)
	if len(d.Programs) < n {
		t.Fatalf("fixture corpus has %d programs, need %d", len(d.Programs), n)
	}
	traces := make([][]trace.WindowCounts, n)
	for i := range traces {
		traces[i] = d.Programs[i].Windows
	}
	return traces
}

// sameDecisions requires bit-level equality (verdict and score bits).
func sameDecisions(t *testing.T, phase string, a, b []hmd.Decision) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d decisions vs %d", phase, len(a), len(b))
	}
	for j := range a {
		if a[j].Malware != b[j].Malware ||
			math.Float64bits(a[j].Score) != math.Float64bits(b[j].Score) {
			t.Fatalf("%s: lane %d: %+v != %+v", phase, j, a[j], b[j])
		}
	}
}

// replayLanes replays every lane's draw log off-hardware through the
// scalar Replayer and requires the batched lane score bit-for-bit.
func replayLanes(t *testing.T, phase string, base *hmd.HMD, traces [][]trace.WindowCounts, decs []hmd.Decision, logs []faults.DrawLog) {
	t.Helper()
	if len(logs) != len(traces) {
		t.Fatalf("%s: %d logs for %d lanes", phase, len(logs), len(traces))
	}
	for j := range traces {
		rep := faults.NewReplayer(logs[j])
		got := base.WithFreshBuffers().DecideFromScores(
			base.WithFreshBuffers().ScoreWindowsUnit(rep, traces[j]))
		if math.Float64bits(got.Score) != math.Float64bits(decs[j].Score) {
			t.Fatalf("%s: lane %d replay score %v != batched %v", phase, j, got.Score, decs[j].Score)
		}
		if err := rep.Done(); err != nil {
			t.Fatalf("%s: lane %d: %v", phase, j, err)
		}
	}
}

// TestDetectTracesBatchReproducibleAndMoving pins the two stream
// properties batched serving rests on: identical (seed, pass, rate)
// reproduces bit-for-bit across detector instances, and consecutive
// passes on one detector re-roll their faults (the moving target).
// Each pass's per-lane draw logs replay off-hardware to the exact
// batched scores.
func TestDetectTracesBatchReproducibleAndMoving(t *testing.T) {
	_, base := fixtures(t)
	traces := batchTraces(t, 6)
	build := func() *StochasticHMD {
		s, err := New(base, Options{ErrorRate: 0.4, Seed: 101})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := build(), build()
	decA, logsA, ok := a.DetectTracesBatch(traces, true)
	if !ok {
		t.Fatal("New-built detector declined batching")
	}
	decB, _, ok := b.DetectTracesBatch(traces, true)
	if !ok {
		t.Fatal("second instance declined batching")
	}
	sameDecisions(t, "same seed+pass", decA, decB)
	replayLanes(t, "pass 0", base, traces, decA, logsA)

	// Second pass on the same detector: fresh lane streams. At rate
	// 0.4 over thousands of multiplications per lane, identical draw
	// logs would mean the pass counter is not feeding the streams.
	_, logsA1, ok := a.DetectTracesBatch(traces, true)
	if !ok {
		t.Fatal("second pass declined")
	}
	moved := false
	for j := range logsA {
		if len(logsA[j].Gaps) != len(logsA1[j].Gaps) {
			moved = true
			break
		}
		for i := range logsA[j].Gaps {
			if logsA[j].Gaps[i] != logsA1[j].Gaps[i] {
				moved = true
				break
			}
		}
	}
	if !moved {
		t.Fatal("consecutive batched passes drew identical fault streams")
	}
}

// TestSessionDetectBatchProtocol: a batched detection is one enter →
// infer → exit cycle — nominal voltage before and after, decisions
// reproducible across identically-built stacks, draw logs replayable.
func TestSessionDetectBatchProtocol(t *testing.T) {
	_, base := fixtures(t)
	traces := batchTraces(t, 5)
	build := func() *Session {
		s, err := New(base, Options{ErrorRate: 0.3, Seed: 17})
		if err != nil {
			t.Fatal(err)
		}
		sess, err := NewSession(s)
		if err != nil {
			t.Fatal(err)
		}
		return sess
	}
	sa, sb := build(), build()
	if !sa.AtNominal() {
		t.Fatal("not nominal before first batch")
	}
	decA, logsA, err := sa.DetectBatch(traces, true)
	if err != nil {
		t.Fatal(err)
	}
	if !sa.AtNominal() {
		t.Fatal("batch left the plane undervolted")
	}
	decB, _, err := sb.DetectBatch(traces, true)
	if err != nil {
		t.Fatal(err)
	}
	sameDecisions(t, "identical stacks", decA, decB)
	replayLanes(t, "session batch", base, traces, decA, logsA)

	// record=false returns no logs.
	if _, logs, err := sa.DetectBatch(traces, false); err != nil || logs != nil {
		t.Fatalf("unrecorded batch: logs=%v err=%v", logs, err)
	}
}

// TestSessionDetectBatchFallback: a detector on caller-supplied
// hardware (no derivable lane streams) still serves the whole group in
// one cycle, sequentially, with per-lane logs that replay exactly.
func TestSessionDetectBatchFallback(t *testing.T) {
	_, base := fixtures(t)
	traces := batchTraces(t, 4)
	s, _ := chaosFixture(t, chaos.Config{Seed: 37})
	if s.BatchCapable() {
		t.Fatal("hardware-backed detector unexpectedly batch-capable")
	}
	sess, err := NewSession(s)
	if err != nil {
		t.Fatal(err)
	}
	decs, logs, err := sess.DetectBatch(traces, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(decs) != len(traces) {
		t.Fatalf("%d decisions for %d traces", len(decs), len(traces))
	}
	for j, dec := range decs {
		if dec.Score < 0 || dec.Score > 1 {
			t.Fatalf("lane %d score %v", j, dec.Score)
		}
	}
	if !sess.AtNominal() {
		t.Fatal("fallback batch left the plane undervolted")
	}
	replayLanes(t, "fallback", base, traces, decs, logs)
}

// TestEnableBatchStreams: the opt-in makes a hardware-backed detector
// batch-capable, and the derived lane streams are a pure function of
// the installed seed — reproducible across identically-built stacks.
func TestEnableBatchStreams(t *testing.T) {
	_, base := fixtures(t)
	traces := batchTraces(t, 5)
	build := func() *Session {
		s, _ := chaosFixture(t, chaos.Config{Seed: 41})
		s.EnableBatchStreams(777, nil)
		if !s.BatchCapable() {
			t.Fatal("EnableBatchStreams did not enable batching")
		}
		sess, err := NewSession(s)
		if err != nil {
			t.Fatal(err)
		}
		return sess
	}
	sa, sb := build(), build()
	decA, logsA, err := sa.DetectBatch(traces, true)
	if err != nil {
		t.Fatal(err)
	}
	decB, _, err := sb.DetectBatch(traces, true)
	if err != nil {
		t.Fatal(err)
	}
	sameDecisions(t, "lane-seeded stacks", decA, decB)
	replayLanes(t, "lane-seeded", base, traces, decA, logsA)
}

// TestSupervisorDetectBatchHealthy: one batch is one protected cycle;
// the per-request counters (Detections, Protected, canary cadence)
// scale by the batch size so Health reads identically whether requests
// arrive singly or coalesced.
func TestSupervisorDetectBatchHealthy(t *testing.T) {
	traces := batchTraces(t, 5)
	s, _ := chaosFixture(t, chaos.Config{Seed: 43})
	s.EnableBatchStreams(43, nil)
	sup, err := NewSupervisor(s, SupervisorConfig{
		Sleep:      func(time.Duration) {},
		CanaryMuls: 2000, // CanaryEvery defaults to 8
	})
	if err != nil {
		t.Fatal(err)
	}
	if out, logs, err := sup.DetectBatch(nil, false); out != nil || logs != nil || err != nil {
		t.Fatalf("empty batch: %v %v %v", out, logs, err)
	}
	v, logs, err := sup.DetectBatch(traces, true)
	if err != nil {
		t.Fatal(err)
	}
	for j, verdict := range v {
		if verdict.Unprotected || verdict.Attempts != 1 {
			t.Fatalf("lane %d verdict %+v", j, verdict)
		}
	}
	if len(logs) != len(traces) {
		t.Fatalf("%d logs for %d lanes", len(logs), len(traces))
	}
	if !sup.Session().AtNominal() {
		t.Fatal("batch left the plane undervolted")
	}
	h := sup.Health()
	if h.Detections != 5 || h.Protected != 5 || h.Unprotected != 0 || h.Canaries != 0 {
		t.Errorf("after 5-lane batch: %+v", h)
	}
	// Three more lanes push sinceCanary to 8 = CanaryEvery: the canary
	// must fire on the batch boundary, proving the cadence counts
	// requests, not batches.
	if _, _, err := sup.DetectBatch(traces[:3], false); err != nil {
		t.Fatal(err)
	}
	h = sup.Health()
	if h.Detections != 8 || h.Protected != 8 || h.Canaries != 1 {
		t.Errorf("after 8 total lanes: %+v", h)
	}
}

// TestSupervisorDetectBatchDegradesAndRecovers mirrors the scalar
// breaker scenario with batches: an exhausted transient burst degrades
// the whole group together (deterministic nominal-voltage decisions,
// no logs), the breaker's cooldown clock advances per lane served, and
// a half-open probe restores protected batches once the burst ends.
func TestSupervisorDetectBatchDegradesAndRecovers(t *testing.T) {
	_, base := fixtures(t)
	traces := batchTraces(t, 4)
	s, env := chaosFixture(t, chaos.Config{Seed: 47})
	s.EnableBatchStreams(47, nil)
	sup, err := NewSupervisor(s, SupervisorConfig{
		Sleep:            func(time.Duration) {},
		CanaryEvery:      -1,
		MaxRetries:       1,
		BreakerThreshold: 1,
		BreakerCooldown:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Trigger(chaos.Rule{Kind: chaos.TransientMSR, Duration: 8}); err != nil {
		t.Fatal(err)
	}
	v, logs, err := sup.DetectBatch(traces, true)
	if err != nil {
		t.Fatal(err)
	}
	if logs != nil {
		t.Fatal("degraded batch returned draw logs")
	}
	want := base.WithFreshBuffers().DetectTracesUnit(fxp.Exact{}, traces)
	for j, verdict := range v {
		if !verdict.Unprotected {
			t.Fatalf("lane %d not flagged Unprotected", j)
		}
		if verdict.Malware != want[j].Malware ||
			math.Float64bits(verdict.Score) != math.Float64bits(want[j].Score) {
			t.Fatalf("lane %d degraded verdict %+v != exact %+v", j, verdict.Decision, want[j])
		}
	}
	if sup.State() != Degraded {
		t.Fatalf("state = %v", sup.State())
	}
	h := sup.Health()
	if h.Detections != 4 || h.Unprotected != 4 || h.Failures != 4 || h.Trips != 1 {
		t.Errorf("degraded health = %+v", h)
	}
	// One 4-lane degraded batch advances the breaker clock past the
	// 2-tick cooldown; the burst has meanwhile dissipated, so the next
	// batch half-open probes and recovers.
	var recovered bool
	for i := 0; i < 4 && !recovered; i++ {
		v, _, err := sup.DetectBatch(traces, false)
		if err != nil {
			t.Fatal(err)
		}
		recovered = !v[0].Unprotected
	}
	if !recovered {
		t.Fatalf("batched breaker never recovered: %+v", sup.Health())
	}
	if h := sup.Health(); h.Recoveries != 1 || h.State != Healthy {
		t.Errorf("post-recovery health = %+v", h)
	}
}
