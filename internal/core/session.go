package core

import (
	"errors"
	"fmt"
	"sync"

	"shmd/internal/fxp"
	"shmd/internal/hmd"
	"shmd/internal/trace"
)

// Session implements the Section IX deployment protocol for systems
// that cannot dedicate a whole core to detection: "the voltage needs
// to be undervolted directly after entering the TEE and scaled back to
// the nominal voltage just before exiting the TEE". Undervolting is
// applied only while the detector's own inference runs, so
// timing-violation faults never reach the rest of the system.
//
// A Session wraps a StochasticHMD; every detection enters (undervolts),
// infers, and exits (restores nominal) — even on panic — and the
// voltage is verifiably nominal between detections.
//
// A Session is safe for concurrent use: detections serialize on an
// internal mutex, so the enter/infer/exit protocol state can never be
// corrupted by overlapping calls.
type Session struct {
	mu sync.Mutex
	s  *StochasticHMD
	// depthMV is the calibrated detection-time undervolt depth.
	depthMV float64
	// entered tracks protocol state for misuse detection.
	entered bool
}

// NewSession captures the detector's calibrated operating point and
// restores nominal voltage until the first detection.
func NewSession(s *StochasticHMD) (*Session, error) {
	if s == nil {
		return nil, fmt.Errorf("core: nil detector")
	}
	sess := &Session{s: s, depthMV: s.reg.UndervoltMV()}
	if err := sess.exit(); err != nil {
		return nil, err
	}
	return sess, nil
}

// Depth returns the detection-time undervolt depth the session applies
// on enter.
func (sess *Session) Depth() float64 {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.depthMV
}

// enter scales the voltage down for detection. Callers hold sess.mu.
func (sess *Session) enter() error {
	if sess.entered {
		return fmt.Errorf("core: session already entered")
	}
	if err := sess.s.reg.SetUndervolt(Owner, sess.depthMV); err != nil {
		return err
	}
	// The fault rate follows the device curve at the restored depth.
	if err := sess.s.inj.SetRate(sess.s.reg.ErrorRate()); err != nil {
		// Roll the plane back to nominal: it must never be left
		// undervolted while the protocol state says "not entered".
		if rbErr := sess.s.reg.SetUndervolt(Owner, 0); rbErr != nil {
			return errors.Join(err, rbErr)
		}
		return err
	}
	sess.entered = true
	return nil
}

// exit restores nominal voltage; the injector rate drops to zero with
// it, so any computation outside detection is exact. The protocol
// state always clears — a failed restore must not wedge the session —
// and both restores are attempted even if the first fails, so a
// partial failure degrades as little as possible. Callers hold
// sess.mu.
func (sess *Session) exit() error {
	sess.entered = false
	errV := sess.s.reg.SetUndervolt(Owner, 0)
	errR := sess.s.inj.SetRate(0)
	return errors.Join(errV, errR)
}

// ForceNominal unconditionally restores nominal voltage and a zero
// fault rate, clearing any in-flight protocol state. Supervisors call
// it as the fail-safe after a faulted detection cycle.
func (sess *Session) ForceNominal() error {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.exit()
}

// Recalibrate re-derives the detection-time undervolt depth so the
// device produces the target fault rate at the current temperature —
// the dynamic adjustment Section IX calls for when the environment
// drifts — and adopts it as the session operating point. Outside a
// detection the plane is returned to nominal.
func (sess *Session) Recalibrate(rate float64) (float64, error) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	depth, err := sess.s.reg.CalibrateToRate(Owner, rate)
	if err != nil {
		return 0, err
	}
	sess.depthMV = depth
	if !sess.entered {
		if err := sess.s.reg.SetUndervolt(Owner, 0); err != nil {
			return depth, err
		}
	}
	return depth, nil
}

// AtNominal reports whether the plane currently sits at nominal
// voltage (true whenever no detection is in flight).
func (sess *Session) AtNominal() bool {
	return sess.s.reg.UndervoltMV() == 0
}

// DetectProgram runs one enter → infer → exit cycle.
func (sess *Session) DetectProgram(windows []trace.WindowCounts) (dec hmd.Decision, err error) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if err := sess.enter(); err != nil {
		return hmd.Decision{}, err
	}
	defer func() {
		if exitErr := sess.exit(); exitErr != nil && err == nil {
			err = exitErr
		}
	}()
	dec = sess.s.DetectProgram(windows)
	return dec, nil
}

// ScoreWindows runs one enter → score → exit cycle.
func (sess *Session) ScoreWindows(windows []trace.WindowCounts) (scores []float64, err error) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if err := sess.enter(); err != nil {
		return nil, err
	}
	defer func() {
		if exitErr := sess.exit(); exitErr != nil && err == nil {
			err = exitErr
		}
	}()
	return sess.s.ScoreWindows(windows), nil
}

// ObserveRate runs one enter → probe → exit cycle that streams n
// known-answer multiplications through the undervolted multiplier and
// returns the observed fault fraction. This is the canary a
// supervisor uses to detect that the effective operating point has
// drifted away from calibration: any product differing from the exact
// one is a fault (a timing-violation flip always changes the product).
func (sess *Session) ObserveRate(n int) (rate float64, err error) {
	if n <= 0 {
		return 0, fmt.Errorf("core: canary length %d < 1", n)
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if err := sess.enter(); err != nil {
		return 0, err
	}
	defer func() {
		if exitErr := sess.exit(); exitErr != nil && err == nil {
			err = exitErr
		}
	}()
	// Arbitrary non-trivial operands; the injector's flips are
	// operand-independent, so any fixed pair measures the true rate.
	const a, b = fxp.Value(24571), fxp.Value(-13007)
	want := fxp.Exact{}.Mul(a, b)
	faulted := 0
	for i := 0; i < n; i++ {
		if sess.s.inj.Mul(a, b) != want {
			faulted++
		}
	}
	return float64(faulted) / float64(n), nil
}
