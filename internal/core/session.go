package core

import (
	"fmt"

	"shmd/internal/hmd"
	"shmd/internal/trace"
)

// Session implements the Section IX deployment protocol for systems
// that cannot dedicate a whole core to detection: "the voltage needs
// to be undervolted directly after entering the TEE and scaled back to
// the nominal voltage just before exiting the TEE". Undervolting is
// applied only while the detector's own inference runs, so
// timing-violation faults never reach the rest of the system.
//
// A Session wraps a StochasticHMD; every detection enters (undervolts),
// infers, and exits (restores nominal) — even on panic — and the
// voltage is verifiably nominal between detections.
type Session struct {
	s *StochasticHMD
	// depthMV is the calibrated detection-time undervolt depth.
	depthMV float64
	// entered tracks protocol state for misuse detection.
	entered bool
}

// NewSession captures the detector's calibrated operating point and
// restores nominal voltage until the first detection.
func NewSession(s *StochasticHMD) (*Session, error) {
	if s == nil {
		return nil, fmt.Errorf("core: nil detector")
	}
	sess := &Session{s: s, depthMV: s.reg.UndervoltMV()}
	if err := sess.exit(); err != nil {
		return nil, err
	}
	return sess, nil
}

// enter scales the voltage down for detection.
func (sess *Session) enter() error {
	if sess.entered {
		return fmt.Errorf("core: session already entered")
	}
	if err := sess.s.reg.SetUndervolt(Owner, sess.depthMV); err != nil {
		return err
	}
	// The fault rate follows the device curve at the restored depth.
	if err := sess.s.inj.SetRate(sess.s.reg.ErrorRate()); err != nil {
		return err
	}
	sess.entered = true
	return nil
}

// exit restores nominal voltage; the injector rate drops to zero with
// it, so any computation outside detection is exact.
func (sess *Session) exit() error {
	if err := sess.s.reg.SetUndervolt(Owner, 0); err != nil {
		return err
	}
	if err := sess.s.inj.SetRate(0); err != nil {
		return err
	}
	sess.entered = false
	return nil
}

// AtNominal reports whether the plane currently sits at nominal
// voltage (true whenever no detection is in flight).
func (sess *Session) AtNominal() bool {
	return sess.s.reg.UndervoltMV() == 0
}

// DetectProgram runs one enter → infer → exit cycle.
func (sess *Session) DetectProgram(windows []trace.WindowCounts) (dec hmd.Decision, err error) {
	if err := sess.enter(); err != nil {
		return hmd.Decision{}, err
	}
	defer func() {
		if exitErr := sess.exit(); exitErr != nil && err == nil {
			err = exitErr
		}
	}()
	dec = sess.s.DetectProgram(windows)
	return dec, nil
}

// ScoreWindows runs one enter → score → exit cycle.
func (sess *Session) ScoreWindows(windows []trace.WindowCounts) (scores []float64, err error) {
	if err := sess.enter(); err != nil {
		return nil, err
	}
	defer func() {
		if exitErr := sess.exit(); exitErr != nil && err == nil {
			err = exitErr
		}
	}()
	return sess.s.ScoreWindows(windows), nil
}
