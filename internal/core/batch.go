package core

import (
	"math"
	"math/rand"

	"shmd/internal/faults"
	"shmd/internal/fxp"
	"shmd/internal/hmd"
	"shmd/internal/rng"
	"shmd/internal/trace"
)

// This file is the serving-side batch surface: whole groups of traces
// — concurrent requests coalesced by the serve dispatcher — evaluated
// in one lane-batched undervolted pass, carried through the Session
// enter/exit protocol and the Supervisor recovery machinery with the
// same guarantees the scalar path gives each program individually.

// batchPassLabel separates serving-batch lane streams from the
// detector's own stream (0x5BD in New), the evaluation shard streams
// (0x5A4D), and the pool slot streams (0x5E54).
const batchPassLabel = 0x5BA7

// EnableBatchStreams installs a root seed and fault-location
// distribution for batched detection on a detector whose fault streams
// could not otherwise be re-derived per lane — one built by
// NewWithHardware on caller-supplied hardware (nil dist selects the
// Fig 1 model). Detectors built by New already carry their seed and
// need no opt-in. The caller-supplied FaultUnit keeps serving the
// scalar path; batched passes run on derived per-lane injectors at the
// unit's current rate, so the moving-target property and the
// calibrated operating point are preserved either way.
func (s *StochasticHMD) EnableBatchStreams(seed uint64, dist *faults.Distribution) {
	if dist == nil {
		dist = faults.Fig1Distribution()
	}
	s.laneSeeded = true
	s.seed = seed
	s.dist = dist
}

// BatchCapable reports whether DetectTracesBatch will accept batches:
// true for detectors built by New and for hardware-backed detectors
// after EnableBatchStreams.
func (s *StochasticHMD) BatchCapable() bool { return s.shardable || s.laneSeeded }

// DetectTracesBatch evaluates every trace in one lane-batched pass
// through the undervolted multiplier. Lane j's fault stream is derived
// from (root seed, pass counter, current rate, lane index), so lanes
// are mutually independent, every batched pass re-rolls its faults
// exactly as consecutive scalar detections would — the moving-target
// property — and a given (seed, pass, rate, lane) reproduces exactly.
//
// When record is set, the returned logs hold lane j's stochastic draw
// log (replayable off-hardware via faults.Replayer); otherwise logs is
// nil. ok is false when the detector cannot derive per-lane streams
// (NewWithHardware without EnableBatchStreams) — callers fall back to
// the scalar path.
//
// Unlike ScoreWindows, a batched pass never consumes the detector's
// own fault stream; it is not safe for concurrent use with itself or
// the scalar path (the serving layer serializes through Session).
func (s *StochasticHMD) DetectTracesBatch(traces [][]trace.WindowCounts, record bool) (decs []hmd.Decision, logs []faults.DrawLog, ok bool) {
	if !s.BatchCapable() {
		return nil, nil, false
	}
	rate := s.inj.Rate()
	pass := s.batchPass
	s.batchPass++
	srcs := make([]rand.Source64, len(traces))
	for j := range srcs {
		srcs[j] = rng.NewSource64(s.seed, batchPassLabel, pass, math.Float64bits(rate), uint64(j))
	}
	binj, err := faults.NewBatchInjector(rate, s.dist, srcs)
	if err != nil {
		return nil, nil, false
	}
	if record {
		logs = make([]faults.DrawLog, len(traces))
		for j := range logs {
			binj.Lane(j).StartRecord(&logs[j])
		}
		defer func() {
			for j := range logs {
				binj.Lane(j).StopRecord()
			}
		}()
	}
	decs = s.base.WithFreshBuffers().DetectTracesUnit(binj, traces)
	return decs, logs, true
}

// DetectBatch runs one enter → batched infer → exit cycle: a whole
// group of coalesced requests pays a single undervolt transition
// instead of one per program, while faults still never reach
// computation outside the cycle. When the detector cannot derive
// per-lane streams the group is served sequentially inside the same
// cycle, so callers get batch semantics either way. logs follows
// DetectTracesBatch's contract (per-lane draw logs when record is
// set; the sequential fallback records through the detector's own
// recordable unit, if any).
func (sess *Session) DetectBatch(traces [][]trace.WindowCounts, record bool) (decs []hmd.Decision, logs []faults.DrawLog, err error) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if err := sess.enter(); err != nil {
		return nil, nil, err
	}
	defer func() {
		if exitErr := sess.exit(); exitErr != nil && err == nil {
			err = exitErr
		}
	}()
	decs, logs, ok := sess.s.DetectTracesBatch(traces, record)
	if !ok {
		decs = make([]hmd.Decision, len(traces))
		if record {
			logs = make([]faults.DrawLog, len(traces))
			for j, w := range traces {
				decs[j], logs[j] = sess.s.DetectProgramTraced(w)
			}
		} else {
			logs = nil
			for j, w := range traces {
				decs[j] = sess.s.DetectProgram(w)
			}
		}
	}
	return decs, logs, nil
}

// DetectBatch serves one coalesced group of detection requests through
// the recovery state machine. It mirrors DetectProgram exactly — the
// whole batch is one protected cycle (retried, breaker-gated, canary-
// counted), and on exhaustion the whole batch degrades together to
// deterministic nominal-voltage decisions flagged Unprotected — with
// per-request counters scaled by the batch size, so Health reads the
// same whether requests arrive one at a time or coalesced. Like
// DetectProgram, it never returns an error for environmental faults.
//
// logs[j] is lane j's draw log when record is set and the batch ran
// protected; degraded batches return nil logs (there are no draws at
// nominal voltage).
func (sup *Supervisor) DetectBatch(traces [][]trace.WindowCounts, record bool) ([]Verdict, []faults.DrawLog, error) {
	n := len(traces)
	if n == 0 {
		return nil, nil, nil
	}
	sup.mu.Lock()
	defer sup.mu.Unlock()
	sup.h.Detections += uint64(n)

	if sup.state == Degraded {
		sup.ticks += int64(n) // degraded detections are the breaker's clock
		if sup.breaker.Allow() {
			// Half-open probe: one protected attempt set for the batch.
			if v, logs, err := sup.tryProtectedBatch(traces, record); err == nil {
				sup.breaker.Success()
				sup.state = Healthy
				sup.h.Recoveries++
				return v, logs, nil
			}
			sup.breaker.Failure()
		}
		return sup.degradedBatch(traces), nil, nil
	}

	v, logs, err := sup.tryProtectedBatch(traces, record)
	if err != nil {
		sup.h.Failures += uint64(n)
		sup.state = Retrying
		if permanentErr(err) {
			sup.breaker.Trip()
		} else {
			sup.breaker.Failure()
		}
		if sup.breaker.State() == BreakerOpen {
			sup.state = Degraded
			sup.h.Trips++
		}
		return sup.degradedBatch(traces), nil, nil
	}
	sup.breaker.Success()
	if v[0].Attempts > 1 {
		sup.state = Retrying
	} else {
		sup.state = Healthy
	}

	if sup.cfg.CanaryEvery > 0 && sup.targetRate > 0 {
		sup.sinceCanary += n
		if sup.sinceCanary >= sup.cfg.CanaryEvery {
			sup.sinceCanary = 0
			sup.canary()
		}
	}
	return v, logs, nil
}

// tryProtectedBatch is tryProtected for a coalesced group: the whole
// batch is one retriable cycle, Retries counts cycle retries (not per
// lane — one faulted cycle is one recovery action), Protected scales
// by the lanes served. Callers hold sup.mu.
func (sup *Supervisor) tryProtectedBatch(traces [][]trace.WindowCounts, record bool) ([]Verdict, []faults.DrawLog, error) {
	var lastErr error
	for attempt := 0; attempt <= sup.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			sup.h.Retries++
			sup.backoff(attempt)
		}
		decs, logs, err := sup.sess.DetectBatch(traces, record)
		if err == nil {
			sup.h.Protected += uint64(len(traces))
			out := make([]Verdict, len(decs))
			for j, dec := range decs {
				out[j] = Verdict{Decision: dec, Attempts: attempt + 1}
			}
			return out, logs, nil
		}
		lastErr = err
		if permanentErr(err) {
			break
		}
	}
	sup.failSafe()
	return nil, nil, lastErr
}

// degradedBatch serves the group deterministically at nominal voltage
// through the exact batch kernels — the unprotected baseline HMD, one
// batched pass. Callers hold sup.mu.
func (sup *Supervisor) degradedBatch(traces [][]trace.WindowCounts) []Verdict {
	sup.failSafe()
	sup.h.Unprotected += uint64(len(traces))
	decs := sup.s.Base().WithFreshBuffers().DetectTracesUnit(fxp.Exact{}, traces)
	out := make([]Verdict, len(decs))
	for j, dec := range decs {
		out[j] = Verdict{Decision: dec, Unprotected: true}
	}
	return out
}
