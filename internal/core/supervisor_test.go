package core

import (
	"math"
	"testing"
	"time"

	"shmd/internal/chaos"
	"shmd/internal/faults"
	"shmd/internal/rng"
	"shmd/internal/volt"
)

// The chaos environment must be able to stand in for the ideal
// regulator everywhere the detection path touches it.
var _ Plane = (*chaos.Env)(nil)

// chaosFixture builds a detector on a chaos-wrapped regulator with
// scripted-only faults (no probabilistic rules unless given).
func chaosFixture(t *testing.T, cfg chaos.Config) (*StochasticHMD, *chaos.Env) {
	t.Helper()
	_, base := fixtures(t)
	reg, err := volt.NewRegulator(volt.PlaneCore, volt.NewDeviceProfile(0))
	if err != nil {
		t.Fatal(err)
	}
	env, err := chaos.NewEnv(reg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := faults.NewInjector(0, nil, rng.NewRand(cfg.Seed, 0x5BD))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewWithHardware(base.WithFreshBuffers(), env, inj, Options{ErrorRate: 0.1, Seed: cfg.Seed})
	if err != nil {
		t.Fatal(err)
	}
	return s, env
}

// noSleep is the test backoff clock: counts calls, never sleeps.
func noSleep(n *int) func(time.Duration) {
	return func(time.Duration) { *n++ }
}

func TestNewSupervisorValidation(t *testing.T) {
	if _, err := NewSupervisor(nil, SupervisorConfig{}); err == nil {
		t.Error("nil detector must be rejected")
	}
}

func TestSupervisorHealthyPath(t *testing.T) {
	d, _ := fixtures(t)
	s, _ := chaosFixture(t, chaos.Config{Seed: 21})
	sup, err := NewSupervisor(s, SupervisorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	w := d.Programs[0].Windows
	for i := 0; i < 3; i++ {
		v, err := sup.DetectProgram(w)
		if err != nil {
			t.Fatal(err)
		}
		if v.Unprotected {
			t.Fatal("healthy detection flagged Unprotected")
		}
		if v.Attempts != 1 {
			t.Errorf("attempts = %d", v.Attempts)
		}
		if !sup.Session().AtNominal() {
			t.Fatal("voltage not nominal between detections")
		}
	}
	h := sup.Health()
	if h.State != Healthy || h.Protected != 3 || h.Retries != 0 || h.Unprotected != 0 {
		t.Errorf("health = %+v", h)
	}
}

// TestSupervisorSelfHealing is the end-to-end resilience scenario:
// transient MSR failures are retried through, a thermal drift event is
// caught by the canary and recalibrated away, every detection returns
// a decision, the plane is verifiably nominal between detections, and
// permanent regulator death degrades to flagged nominal-voltage
// detection instead of erroring out.
func TestSupervisorSelfHealing(t *testing.T) {
	d, _ := fixtures(t)
	s, env := chaosFixture(t, chaos.Config{Seed: 23})
	slept := 0
	sup, err := NewSupervisor(s, SupervisorConfig{
		Sleep:            noSleep(&slept),
		CanaryEvery:      1,
		CanaryMuls:       6000,
		BreakerThreshold: 2,
		BreakerCooldown:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := d.Programs[0].Windows
	target := sup.TargetRate()
	if target != 0.1 {
		t.Fatalf("target rate = %v", target)
	}

	check := func(phase string, wantUnprotected bool) Verdict {
		t.Helper()
		v, err := sup.DetectProgram(w)
		if err != nil {
			t.Fatalf("%s: supervised detection errored: %v", phase, err)
		}
		if v.Unprotected != wantUnprotected {
			t.Fatalf("%s: Unprotected = %v, want %v", phase, v.Unprotected, wantUnprotected)
		}
		if v.Score < 0 || v.Score > 1 {
			t.Fatalf("%s: score = %v", phase, v.Score)
		}
		if !sup.Session().AtNominal() {
			t.Fatalf("%s: voltage not nominal between detections", phase)
		}
		return v
	}

	// Phase 1 — healthy baseline.
	check("healthy", false)
	if sup.State() != Healthy {
		t.Fatalf("state = %v", sup.State())
	}

	// Phase 2 — a burst of transient MSR write failures: the
	// supervisor retries through them without degrading.
	if err := env.Trigger(chaos.Rule{Kind: chaos.TransientMSR, Duration: 2}); err != nil {
		t.Fatal(err)
	}
	check("transient burst", false)
	if h := sup.Health(); h.Retries == 0 {
		t.Error("transient burst absorbed without any retry?")
	}
	if slept == 0 {
		t.Error("retries must back off")
	}

	// Phase 3 — thermal drift: a +40 °C excursion moves the true
	// fault rate far off the calibrated band. The canary (every
	// detection here) must notice and recalibrate the depth for the
	// hotter silicon.
	depthBefore := sup.Session().Depth()
	if err := env.Trigger(chaos.Rule{Kind: chaos.ThermalExcursion, Magnitude: 40, Duration: 10000}); err != nil {
		t.Fatal(err)
	}
	// The rate the hot silicon would produce at the old depth.
	drifted := env.Profile().ErrorRate(depthBefore, env.Temperature())
	// Sanity: the drift is actually outside the tolerance band.
	if drifted < target*1.35 {
		t.Fatalf("excursion too small to matter: %v", drifted)
	}
	check("thermal drift", false)
	h := sup.Health()
	if h.Drifts == 0 || h.Recalibrations == 0 {
		t.Fatalf("canary missed the drift: %+v", h)
	}
	depthAfter := sup.Session().Depth()
	if depthAfter >= depthBefore {
		t.Errorf("hotter silicon must need a shallower depth: %v -> %v", depthBefore, depthAfter)
	}
	// The recalibrated operating point is back inside the band.
	rate, err := sup.Session().ObserveRate(8000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rate-target) > target*0.35 {
		t.Errorf("recalibrated rate = %v, want within 35%% of %v", rate, target)
	}
	if !sup.Session().AtNominal() {
		t.Fatal("canary left the plane undervolted")
	}

	// Phase 4 — the regulator dies for good: the breaker trips
	// immediately and every subsequent request still returns a
	// decision, flagged Unprotected, with the plane still nominal.
	if err := env.Trigger(chaos.Rule{Kind: chaos.PermanentMSR}); err != nil {
		t.Fatal(err)
	}
	check("permanent death", true)
	if sup.State() != Degraded {
		t.Fatalf("state = %v, want Degraded", sup.State())
	}
	if h := sup.Health(); h.Trips == 0 {
		t.Errorf("breaker never tripped: %+v", h)
	}
	// Ride well past the cooldown: half-open probes keep failing
	// against the dead regulator and the supervisor keeps serving.
	for i := 0; i < 6; i++ {
		check("degraded", true)
	}
	h = sup.Health()
	if h.Detections != 10 || h.Unprotected < 7 {
		t.Errorf("health after death = %+v", h)
	}
	if h.Recoveries != 0 {
		t.Errorf("recovered from permanent death? %+v", h)
	}
}

func TestSupervisorBreakerRecovers(t *testing.T) {
	d, _ := fixtures(t)
	s, env := chaosFixture(t, chaos.Config{Seed: 29})
	sup, err := NewSupervisor(s, SupervisorConfig{
		Sleep:            func(time.Duration) {},
		CanaryEvery:      -1,
		MaxRetries:       1,
		BreakerThreshold: 1,
		BreakerCooldown:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := d.Programs[1].Windows

	// A long transient burst exhausts the retries and trips the
	// breaker on the first detection.
	if err := env.Trigger(chaos.Rule{Kind: chaos.TransientMSR, Duration: 8}); err != nil {
		t.Fatal(err)
	}
	v, err := sup.DetectProgram(w)
	if err != nil || !v.Unprotected {
		t.Fatalf("burst must degrade: v=%+v err=%v", v, err)
	}
	if sup.State() != Degraded {
		t.Fatalf("state = %v", sup.State())
	}

	// Degraded detections ride the cooldown; the burst meanwhile
	// dissipates (fail-safe restores consume it), so the half-open
	// probe succeeds and the breaker closes.
	var recovered bool
	for i := 0; i < 6; i++ {
		v, err := sup.DetectProgram(w)
		if err != nil {
			t.Fatal(err)
		}
		if !v.Unprotected {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Fatalf("breaker never recovered: %+v", sup.Health())
	}
	h := sup.Health()
	if h.Recoveries != 1 || h.State != Healthy {
		t.Errorf("health = %+v", h)
	}
	// After recovery, protected detection works again.
	v, err = sup.DetectProgram(w)
	if err != nil || v.Unprotected {
		t.Fatalf("post-recovery detection: v=%+v err=%v", v, err)
	}
}

func TestSupervisorUnderDefaultChaos(t *testing.T) {
	// Soak: the stock chaos ruleset with every fault kind armed. The
	// supervisor must return a decision for every single request and
	// end every request at nominal voltage.
	d, _ := fixtures(t)
	s, env := chaosFixture(t, chaos.DefaultConfig(31))
	sup, err := NewSupervisor(s, SupervisorConfig{
		Sleep:       func(time.Duration) {},
		CanaryEvery: 4,
		CanaryMuls:  2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := d.Programs[2].Windows
	for i := 0; i < 40; i++ {
		v, err := sup.DetectProgram(w)
		if err != nil {
			t.Fatalf("request %d errored: %v", i, err)
		}
		if v.Score < 0 || v.Score > 1 {
			t.Fatalf("request %d: score %v", i, v.Score)
		}
		if !sup.Session().AtNominal() {
			t.Fatalf("request %d left the plane undervolted", i)
		}
	}
	h := sup.Health()
	if h.Detections != 40 {
		t.Errorf("detections = %d", h.Detections)
	}
	if ev := env.Events(); ev.Transients == 0 {
		t.Errorf("soak injected nothing: %+v", ev)
	}
}

func TestSupervisorStateString(t *testing.T) {
	for st := Healthy; st <= Degraded; st++ {
		if st.String() == "" {
			t.Errorf("State(%d) unnamed", int(st))
		}
	}
}
