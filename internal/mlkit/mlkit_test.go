package mlkit

import (
	"errors"
	"math"
	"testing"

	"shmd/internal/rng"
)

// blobSamples generates two Gaussian blobs, label true centered at
// +sep/2 and false at -sep/2 on every coordinate.
func blobSamples(n, dim int, sep float64, seed uint64) []Sample {
	r := rng.NewRand(seed)
	out := make([]Sample, n)
	for i := range out {
		label := i%2 == 0
		center := -sep / 2
		if label {
			center = sep / 2
		}
		f := make([]float64, dim)
		for j := range f {
			f[j] = center + r.NormFloat64()
		}
		out[i] = Sample{Features: f, Label: label}
	}
	return out
}

func TestCheckSamples(t *testing.T) {
	if _, err := checkSamples(nil); !errors.Is(err, ErrNoTrainingData) {
		t.Errorf("empty err = %v", err)
	}
	oneClass := []Sample{
		{Features: []float64{1}, Label: true},
		{Features: []float64{2}, Label: true},
	}
	if _, err := checkSamples(oneClass); !errors.Is(err, ErrOneClass) {
		t.Errorf("one-class err = %v", err)
	}
	ragged := []Sample{
		{Features: []float64{1, 2}, Label: true},
		{Features: []float64{1}, Label: false},
	}
	if _, err := checkSamples(ragged); err == nil {
		t.Error("ragged features must be rejected")
	}
	zeroDim := []Sample{
		{Features: nil, Label: true},
		{Features: nil, Label: false},
	}
	if _, err := checkSamples(zeroDim); err == nil {
		t.Error("zero-dim features must be rejected")
	}
}

func TestLogisticSeparatesBlobs(t *testing.T) {
	train := blobSamples(400, 4, 3.0, 1)
	test := blobSamples(400, 4, 3.0, 2)
	m, err := TrainLogistic(train, LogisticOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(m, test); acc < 0.95 {
		t.Errorf("logistic accuracy = %v, want >= 0.95", acc)
	}
}

func TestLogisticScoreRange(t *testing.T) {
	train := blobSamples(100, 3, 2.0, 3)
	m, err := TrainLogistic(train, LogisticOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.NewRand(4)
	for i := 0; i < 100; i++ {
		f := []float64{r.NormFloat64() * 5, r.NormFloat64() * 5, r.NormFloat64() * 5}
		s := m.Score(f)
		if s < 0 || s > 1 || math.IsNaN(s) {
			t.Fatalf("score %v outside [0,1]", s)
		}
		if (s >= 0.5) != m.Predict(f) {
			t.Fatal("Predict inconsistent with Score")
		}
	}
}

func TestLogisticValidation(t *testing.T) {
	train := blobSamples(50, 2, 2.0, 5)
	if _, err := TrainLogistic(train, LogisticOptions{LearningRate: -1}); err == nil {
		t.Error("negative learning rate must be rejected")
	}
	if _, err := TrainLogistic(train, LogisticOptions{L2: -1}); err == nil {
		t.Error("negative L2 must be rejected")
	}
	if _, err := TrainLogistic(nil, LogisticOptions{}); !errors.Is(err, ErrNoTrainingData) {
		t.Error("empty training set must be rejected")
	}
}

func TestLogisticPanicsOnDimMismatch(t *testing.T) {
	m := &LogisticRegression{Weights: []float64{1, 2}}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	m.Score([]float64{1})
}

func TestTreeSeparatesBlobs(t *testing.T) {
	train := blobSamples(400, 4, 3.0, 6)
	test := blobSamples(400, 4, 3.0, 7)
	m, err := TrainTree(train, TreeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(m, test); acc < 0.9 {
		t.Errorf("tree accuracy = %v, want >= 0.9", acc)
	}
}

func TestTreeLearnsNonlinearBoundary(t *testing.T) {
	// XOR-style checkerboard: linearly inseparable, tree-friendly.
	r := rng.NewRand(8)
	make2 := func(n int) []Sample {
		out := make([]Sample, n)
		for i := range out {
			x, y := r.Float64()*2-1, r.Float64()*2-1
			out[i] = Sample{Features: []float64{x, y}, Label: (x > 0) != (y > 0)}
		}
		return out
	}
	train, test := make2(600), make2(300)
	tree, err := TrainTree(train, TreeOptions{MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(tree, test); acc < 0.9 {
		t.Errorf("tree XOR accuracy = %v", acc)
	}
	// Logistic regression cannot do better than chance-ish here —
	// the contrast motivating the paper's model diversity.
	lr, err := TrainLogistic(train, LogisticOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(lr, test); acc > 0.7 {
		t.Errorf("logistic XOR accuracy = %v, unexpectedly high", acc)
	}
}

func TestTreeRespectsMaxDepth(t *testing.T) {
	train := blobSamples(500, 3, 1.0, 9)
	for _, depth := range []int{1, 2, 4} {
		tree, err := TrainTree(train, TreeOptions{MaxDepth: depth, MinLeaf: 1})
		if err != nil {
			t.Fatal(err)
		}
		if got := tree.Depth(); got > depth {
			t.Errorf("MaxDepth %d produced depth %d", depth, got)
		}
	}
}

func TestTreePureLeafShortCircuit(t *testing.T) {
	// Perfectly separable on one feature: the tree needs depth 1.
	var train []Sample
	for i := 0; i < 40; i++ {
		v := float64(i)
		train = append(train, Sample{Features: []float64{v}, Label: v >= 20})
	}
	tree, err := TrainTree(train, TreeOptions{MaxDepth: 8, MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() != 1 {
		t.Errorf("separable data grew depth %d, want 1", tree.Depth())
	}
	if tree.Leaves() != 2 {
		t.Errorf("leaves = %d, want 2", tree.Leaves())
	}
	if tree.Predict([]float64{5}) || !tree.Predict([]float64{35}) {
		t.Error("tree predictions wrong on separable data")
	}
}

func TestTreeScoreIsLeafFraction(t *testing.T) {
	// With MaxDepth 0 forced to 1 via defaults... use MinLeaf large
	// enough that the root stays a leaf: score = global malware rate.
	train := []Sample{
		{Features: []float64{0}, Label: true},
		{Features: []float64{1}, Label: false},
		{Features: []float64{2}, Label: false},
		{Features: []float64{3}, Label: false},
	}
	tree, err := TrainTree(train, TreeOptions{MaxDepth: 5, MinLeaf: 10})
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Score([]float64{99}); got != 0.25 {
		t.Errorf("root-leaf score = %v, want 0.25", got)
	}
}

func TestTreePanicsOnDimMismatch(t *testing.T) {
	train := blobSamples(50, 2, 2.0, 10)
	tree, err := TrainTree(train, TreeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	tree.Score([]float64{1, 2, 3})
}

func TestAccuracyEmpty(t *testing.T) {
	m := &LogisticRegression{Weights: []float64{1}}
	if Accuracy(m, nil) != 0 {
		t.Error("accuracy of empty set must be 0")
	}
}

func TestAgreement(t *testing.T) {
	// Two models that always disagree on sign.
	a := &LogisticRegression{Weights: []float64{10}}
	b := &LogisticRegression{Weights: []float64{-10}}
	features := [][]float64{{1}, {-1}, {2}, {-2}}
	if got := Agreement(a, a, features); got != 1 {
		t.Errorf("self agreement = %v", got)
	}
	if got := Agreement(a, b, features); got != 0 {
		t.Errorf("opposite agreement = %v", got)
	}
	if Agreement(a, b, nil) != 0 {
		t.Error("empty agreement must be 0")
	}
}
