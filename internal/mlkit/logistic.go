package mlkit

import (
	"fmt"
	"math"
)

// LogisticRegression is a binary logistic model: Score(x) =
// sigmoid(w·x + b).
type LogisticRegression struct {
	Weights []float64
	Bias    float64
}

// LogisticOptions configures TrainLogistic.
type LogisticOptions struct {
	// Epochs of full-batch gradient descent (default 300).
	Epochs int
	// LearningRate for the gradient steps (default 0.5).
	LearningRate float64
	// L2 is the ridge penalty applied to the weights (default 1e-4).
	L2 float64
}

// withDefaults fills in unset options.
func (o LogisticOptions) withDefaults() LogisticOptions {
	if o.Epochs == 0 {
		o.Epochs = 300
	}
	if o.LearningRate == 0 {
		o.LearningRate = 0.5
	}
	if o.L2 == 0 {
		o.L2 = 1e-4
	}
	return o
}

// TrainLogistic fits a logistic-regression model with full-batch
// gradient descent on the cross-entropy loss.
func TrainLogistic(samples []Sample, opts LogisticOptions) (*LogisticRegression, error) {
	dim, err := checkSamples(samples)
	if err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	if opts.Epochs < 0 || opts.LearningRate <= 0 || opts.L2 < 0 {
		return nil, fmt.Errorf("mlkit: invalid logistic options %+v", opts)
	}

	m := &LogisticRegression{Weights: make([]float64, dim)}
	n := float64(len(samples))
	gradW := make([]float64, dim)
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		for i := range gradW {
			gradW[i] = 0
		}
		gradB := 0.0
		for _, s := range samples {
			p := m.Score(s.Features)
			y := 0.0
			if s.Label {
				y = 1
			}
			diff := p - y
			for i, x := range s.Features {
				gradW[i] += diff * x
			}
			gradB += diff
		}
		for i := range m.Weights {
			m.Weights[i] -= opts.LearningRate * (gradW[i]/n + opts.L2*m.Weights[i])
		}
		m.Bias -= opts.LearningRate * gradB / n
	}
	return m, nil
}

// Score returns the malware probability sigmoid(w·x + b).
func (m *LogisticRegression) Score(features []float64) float64 {
	if len(features) != len(m.Weights) {
		panic(fmt.Sprintf("mlkit: logistic got %d features, model has %d", len(features), len(m.Weights)))
	}
	z := m.Bias
	for i, w := range m.Weights {
		z += w * features[i]
	}
	return 1 / (1 + math.Exp(-z))
}

// Predict applies the 0.5 decision threshold.
func (m *LogisticRegression) Predict(features []float64) bool {
	return m.Score(features) >= 0.5
}

var _ Classifier = (*LogisticRegression)(nil)
