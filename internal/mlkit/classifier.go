// Package mlkit provides the classical ML algorithms the paper's
// attacker uses for reverse-engineering — logistic regression (chosen
// for its simplicity) and a CART decision tree (chosen for its
// non-differentiability) — behind a shared Classifier interface also
// implemented by the MLP proxy. (Section VII-A: "we perform reverse
// engineering using Multi-Layer Perceptron (MLP) neural network,
// Logistic Regression (LR), and Decision Tree (DT)".)
package mlkit

import (
	"errors"
	"fmt"
)

// Sample is one labelled feature vector; Label true means malware.
type Sample struct {
	Features []float64
	Label    bool
}

// Classifier scores feature vectors. Score is a malware probability in
// [0, 1]; Predict applies the 0.5 threshold.
type Classifier interface {
	Score(features []float64) float64
	Predict(features []float64) bool
}

// Common training errors.
var (
	ErrNoTrainingData = errors.New("mlkit: empty training set")
	ErrOneClass       = errors.New("mlkit: training set contains a single class")
)

// checkSamples validates a training set and returns its feature
// dimensionality.
func checkSamples(samples []Sample) (dim int, err error) {
	if len(samples) == 0 {
		return 0, ErrNoTrainingData
	}
	dim = len(samples[0].Features)
	if dim == 0 {
		return 0, fmt.Errorf("mlkit: zero-dimensional features")
	}
	pos, neg := false, false
	for i, s := range samples {
		if len(s.Features) != dim {
			return 0, fmt.Errorf("mlkit: sample %d has %d features, want %d", i, len(s.Features), dim)
		}
		if s.Label {
			pos = true
		} else {
			neg = true
		}
	}
	if !pos || !neg {
		return 0, ErrOneClass
	}
	return dim, nil
}

// Accuracy evaluates a classifier against labelled samples.
func Accuracy(c Classifier, samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	correct := 0
	for _, s := range samples {
		if c.Predict(s.Features) == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(samples))
}

// Agreement measures how often two classifiers make the same decision
// over a set of feature vectors — the paper's reverse-engineering
// effectiveness metric (proxy vs victim agreement on the testing set).
func Agreement(a, b Classifier, features [][]float64) float64 {
	if len(features) == 0 {
		return 0
	}
	same := 0
	for _, f := range features {
		if a.Predict(f) == b.Predict(f) {
			same++
		}
	}
	return float64(same) / float64(len(features))
}
