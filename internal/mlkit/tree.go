package mlkit

import (
	"fmt"
	"sort"
)

// DecisionTree is a CART-style binary classification tree with Gini
// splitting. The paper picks a decision tree as one of the
// reverse-engineering models precisely because it is
// non-differentiable — gradient-based evasion guidance does not apply,
// which is why DT-crafted evasive malware transfers worst even against
// the undefended baseline (Fig 4).
type DecisionTree struct {
	root *treeNode
	dim  int
}

// treeNode is either an internal split (left if x[feature] <= threshold)
// or a leaf carrying the malware fraction of its training samples.
type treeNode struct {
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode

	leaf  bool
	score float64
}

// TreeOptions configures TrainTree.
type TreeOptions struct {
	// MaxDepth bounds the tree height (default 10).
	MaxDepth int
	// MinLeaf is the minimum samples per leaf (default 5).
	MinLeaf int
}

func (o TreeOptions) withDefaults() TreeOptions {
	if o.MaxDepth == 0 {
		o.MaxDepth = 10
	}
	if o.MinLeaf == 0 {
		o.MinLeaf = 5
	}
	return o
}

// TrainTree grows a CART tree on samples.
func TrainTree(samples []Sample, opts TreeOptions) (*DecisionTree, error) {
	dim, err := checkSamples(samples)
	if err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	if opts.MaxDepth < 1 || opts.MinLeaf < 1 {
		return nil, fmt.Errorf("mlkit: invalid tree options %+v", opts)
	}
	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}
	t := &DecisionTree{dim: dim}
	t.root = t.grow(samples, idx, opts, 0)
	return t, nil
}

// malwareFraction returns the positive-label fraction of the indexed
// samples.
func malwareFraction(samples []Sample, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	pos := 0
	for _, i := range idx {
		if samples[i].Label {
			pos++
		}
	}
	return float64(pos) / float64(len(idx))
}

// gini computes the Gini impurity of a malware fraction.
func gini(p float64) float64 { return 2 * p * (1 - p) }

// grow recursively builds the tree over the indexed samples.
func (t *DecisionTree) grow(samples []Sample, idx []int, opts TreeOptions, depth int) *treeNode {
	frac := malwareFraction(samples, idx)
	if depth >= opts.MaxDepth || len(idx) < 2*opts.MinLeaf || frac == 0 || frac == 1 {
		return &treeNode{leaf: true, score: frac}
	}

	bestFeature, bestThreshold, bestImpurity := -1, 0.0, gini(frac)
	n := float64(len(idx))
	values := make([]float64, 0, len(idx))
	for feature := 0; feature < t.dim; feature++ {
		// Sort sample indices by this feature to scan thresholds.
		order := append([]int(nil), idx...)
		sort.Slice(order, func(a, b int) bool {
			return samples[order[a]].Features[feature] < samples[order[b]].Features[feature]
		})
		values = values[:0]
		for _, i := range order {
			values = append(values, samples[i].Features[feature])
		}
		leftPos := 0
		totalPos := 0
		for _, i := range order {
			if samples[i].Label {
				totalPos++
			}
		}
		for k := 0; k < len(order)-1; k++ {
			if samples[order[k]].Label {
				leftPos++
			}
			if values[k] == values[k+1] {
				continue // no threshold separates equal values
			}
			nLeft := float64(k + 1)
			nRight := n - nLeft
			if int(nLeft) < opts.MinLeaf || int(nRight) < opts.MinLeaf {
				continue
			}
			pLeft := float64(leftPos) / nLeft
			pRight := float64(totalPos-leftPos) / nRight
			impurity := (nLeft*gini(pLeft) + nRight*gini(pRight)) / n
			if impurity < bestImpurity-1e-12 {
				bestImpurity = impurity
				bestFeature = feature
				bestThreshold = (values[k] + values[k+1]) / 2
			}
		}
	}

	if bestFeature < 0 {
		return &treeNode{leaf: true, score: frac}
	}

	var leftIdx, rightIdx []int
	for _, i := range idx {
		if samples[i].Features[bestFeature] <= bestThreshold {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	return &treeNode{
		feature:   bestFeature,
		threshold: bestThreshold,
		left:      t.grow(samples, leftIdx, opts, depth+1),
		right:     t.grow(samples, rightIdx, opts, depth+1),
	}
}

// Score returns the malware fraction of the leaf the features land in.
func (t *DecisionTree) Score(features []float64) float64 {
	if len(features) != t.dim {
		panic(fmt.Sprintf("mlkit: tree got %d features, model has %d", len(features), t.dim))
	}
	node := t.root
	for !node.leaf {
		if features[node.feature] <= node.threshold {
			node = node.left
		} else {
			node = node.right
		}
	}
	return node.score
}

// Predict applies the 0.5 decision threshold.
func (t *DecisionTree) Predict(features []float64) bool {
	return t.Score(features) >= 0.5
}

// Depth returns the height of the tree (a leaf-only tree has depth 0).
func (t *DecisionTree) Depth() int { return t.root.depth() }

func (n *treeNode) depth() int {
	if n.leaf {
		return 0
	}
	l, r := n.left.depth(), n.right.depth()
	if l > r {
		return l + 1
	}
	return r + 1
}

// Leaves returns the number of leaf nodes.
func (t *DecisionTree) Leaves() int { return t.root.leaves() }

func (n *treeNode) leaves() int {
	if n.leaf {
		return 1
	}
	return n.left.leaves() + n.right.leaves()
}

var _ Classifier = (*DecisionTree)(nil)
