package serve

import (
	"os"
	"testing"
	"time"

	"shmd/internal/journal"
)

// TestJournalAdoptionEdges drives the journal-adoption flow through
// its structural and semantic edge cases. Every case must leave the
// pool serving (adoption failures degrade to recalibration, never to
// a boot failure) and must leave a loadable journal on disk.
func TestJournalAdoptionEdges(t *testing.T) {
	cases := []struct {
		name string
		// mutate corrupts the valid journal written by a cold boot.
		mutate func(t *testing.T, path string, entries []journal.Entry)
		// maxAge overrides PoolConfig.JournalMaxAge (0 = default 30d).
		maxAge time.Duration
		// wantAdopt: true = the entry must be trusted (zero calibration
		// calls), false = the pool must recalibrate from scratch.
		wantAdopt bool
	}{
		{
			name: "zero-length file",
			mutate: func(t *testing.T, path string, _ []journal.Entry) {
				if err := os.WriteFile(path, nil, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantAdopt: false,
		},
		{
			name: "trailing garbage after valid CRC",
			mutate: func(t *testing.T, path string, _ []journal.Entry) {
				raw, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				raw = append(raw, 0xDE, 0xAD, 0xBE, 0xEF)
				if err := os.WriteFile(path, raw, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantAdopt: false,
		},
		{
			name: "depth beyond the regulator freeze threshold",
			mutate: func(t *testing.T, path string, entries []journal.Entry) {
				// 9 V of undervolt passes the journal's own plausibility
				// check (< 10000 mV) but no regulator will set it; the
				// adoption path must drop the entry and recalibrate.
				for i := range entries {
					entries[i].DepthMV = 9000
				}
				if err := journal.Save(path, entries); err != nil {
					t.Fatal(err)
				}
			},
			wantAdopt: false,
		},
		{
			name: "entry just inside the staleness horizon",
			mutate: func(t *testing.T, path string, entries []journal.Entry) {
				for i := range entries {
					entries[i].SavedUnix = time.Now().Add(-time.Hour + time.Minute).Unix()
				}
				if err := journal.Save(path, entries); err != nil {
					t.Fatal(err)
				}
			},
			maxAge:    time.Hour,
			wantAdopt: true,
		},
		{
			name: "entry just past the staleness horizon",
			mutate: func(t *testing.T, path string, entries []journal.Entry) {
				for i := range entries {
					entries[i].SavedUnix = time.Now().Add(-time.Hour - time.Minute).Unix()
				}
				if err := journal.Save(path, entries); err != nil {
					t.Fatal(err)
				}
			},
			maxAge:    time.Hour,
			wantAdopt: false,
		},
		{
			name: "clock-skewed future entry",
			mutate: func(t *testing.T, path string, entries []journal.Entry) {
				// A journal written under a fast clock (SavedUnix in our
				// future) is not stale — skew must not force a pointless
				// recalibration.
				for i := range entries {
					entries[i].SavedUnix = time.Now().Add(time.Hour).Unix()
				}
				if err := journal.Save(path, entries); err != nil {
					t.Fatal(err)
				}
			},
			maxAge:    time.Hour,
			wantAdopt: true,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := t.TempDir() + "/cal.journal"
			cfg := PoolConfig{Size: 1, ErrorRate: 0.1, Seed: 1, JournalPath: path, Logf: t.Logf}

			// Cold boot writes a valid journal for the mutation to start
			// from.
			p1, err := NewPool(testHMD(t), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := p1.Close(); err != nil {
				t.Fatal(err)
			}
			entries, err := journal.Load(path)
			if err != nil || len(entries) == 0 {
				t.Fatalf("cold boot journal: entries=%d err=%v", len(entries), err)
			}
			tc.mutate(t, path, entries)

			cfg.JournalMaxAge = tc.maxAge
			p2, err := NewPool(testHMD(t), cfg)
			if err != nil {
				t.Fatalf("pool must boot despite journal state: %v", err)
			}
			defer p2.Close()
			got := calibrationCount(t, p2)
			if tc.wantAdopt && got != 0 {
				t.Errorf("entry should have been adopted; ran %d calibrations", got)
			}
			if !tc.wantAdopt && got == 0 {
				t.Error("entry should have been rejected; no recalibration ran")
			}
			// Whatever happened, the journal on disk must be valid again
			// (regenerated or untouched).
			if _, err := journal.Load(path); err != nil {
				t.Errorf("journal not loadable after boot: %v", err)
			}
		})
	}
}
