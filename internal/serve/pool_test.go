package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"shmd/internal/core"
	"shmd/internal/trace"
)

func newTestPool(t testing.TB, cfg PoolConfig) *Pool {
	t.Helper()
	if cfg.ErrorRate == 0 && cfg.UndervoltMV == 0 {
		cfg.ErrorRate = 0.1
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	p, err := NewPool(testHMD(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPoolExclusivity hammers checkout from many goroutines and proves
// no session is ever held by two owners at once.
func TestPoolExclusivity(t *testing.T) {
	const workers, rounds = 32, 50
	p := newTestPool(t, PoolConfig{Size: 4})
	windows := testWindows(t, trace.Trojan, 0, 2)

	// held[id] flips 0→1→0 under each checkout; a CAS failure means
	// two goroutines owned the same slot simultaneously.
	held := make([]sync.Mutex, p.Size())
	owned := make([]bool, p.Size())
	var mu sync.Mutex

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				slot, err := p.Acquire(context.Background())
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				if owned[slot.ID] {
					mu.Unlock()
					t.Errorf("slot %d acquired while owned", slot.ID)
					p.Release(slot)
					return
				}
				owned[slot.ID] = true
				mu.Unlock()

				// Exercise the session while exclusively owned.
				held[slot.ID].Lock()
				if _, err := slot.Sup.DetectProgram(windows); err != nil {
					t.Error(err)
				}
				held[slot.ID].Unlock()

				mu.Lock()
				owned[slot.ID] = false
				mu.Unlock()
				p.Release(slot)
			}
		}()
	}
	wg.Wait()
	if got := p.DoubleCheckouts(); got != 0 {
		t.Errorf("double checkouts = %d", got)
	}
	// Every slot parked again.
	if got := len(p.slots); got != p.Size() {
		t.Errorf("parked slots = %d, want %d", got, p.Size())
	}
	var served uint64
	for _, slot := range p.Slots() {
		served += slot.Sup.Health().Detections
	}
	if served != workers*rounds {
		t.Errorf("served = %d, want %d", served, workers*rounds)
	}
}

// TestPoolAcquireContext verifies a canceled wait surfaces ctx.Err.
func TestPoolAcquireContext(t *testing.T) {
	p := newTestPool(t, PoolConfig{Size: 1})
	slot, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := p.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want deadline exceeded", err)
	}
	p.Release(slot)
	// The released slot is acquirable again.
	slot2, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	p.Release(slot2)
}

// TestPoolClose verifies close refuses new checkouts and rolls every
// plane back to nominal.
func TestPoolClose(t *testing.T) {
	p := newTestPool(t, PoolConfig{Size: 2})
	windows := testWindows(t, trace.Worm, 0, 2)
	slot, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := slot.Sup.DetectProgram(windows); err != nil {
		t.Fatal(err)
	}
	p.Release(slot)

	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Acquire(context.Background()); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("acquire after close = %v, want ErrPoolClosed", err)
	}
	for _, slot := range p.Slots() {
		if !slot.Sup.Session().AtNominal() {
			t.Errorf("slot %d not at nominal after close", slot.ID)
		}
	}
	// Close is idempotent.
	if err := p.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

// TestPoolFreshBuffers proves pooled detectors share weights but not
// scratch state: concurrent inference from every slot yields the same
// decisions as serial inference.
func TestPoolFreshBuffers(t *testing.T) {
	p := newTestPool(t, PoolConfig{Size: 4, ErrorRate: 0.2})
	windows := testWindows(t, trace.Backdoor, 0, 8)

	// Serial reference pass, one per slot (fresh pool for identical
	// fault-stream positions).
	ref := newTestPool(t, PoolConfig{Size: 4, ErrorRate: 0.2})
	want := make([]core.Verdict, ref.Size())
	for i, slot := range ref.Slots() {
		v, err := slot.Sup.DetectProgram(windows)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = v
	}

	got := make([]core.Verdict, p.Size())
	var wg sync.WaitGroup
	for i, slot := range p.Slots() {
		wg.Add(1)
		go func(i int, slot *Slot) {
			defer wg.Done()
			v, err := slot.Sup.DetectProgram(windows)
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = v
		}(i, slot)
	}
	wg.Wait()
	for i := range want {
		if got[i].Malware != want[i].Malware || got[i].Score != want[i].Score {
			t.Errorf("slot %d concurrent verdict %+v, serial %+v", i, got[i], want[i])
		}
	}
}

// TestPoolDistinctStreams verifies slots draw from distinct fault
// streams (per-slot derived seeds), so the pool as a whole is a moving
// target rather than four copies of one stochastic trajectory.
func TestPoolDistinctStreams(t *testing.T) {
	p := newTestPool(t, PoolConfig{Size: 4, ErrorRate: 0.2})
	windows := testWindows(t, trace.PasswordStealer, 0, 8)
	scores := map[float64]int{}
	for _, slot := range p.Slots() {
		v, err := slot.Sup.DetectProgram(windows)
		if err != nil {
			t.Fatal(err)
		}
		scores[v.Score]++
	}
	if len(scores) < 2 {
		t.Errorf("all %d slots produced identical scores %v — shared fault stream?", p.Size(), scores)
	}
}
