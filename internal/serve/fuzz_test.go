package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"shmd/internal/faults"
	"shmd/internal/replay"
	"shmd/internal/trace"
)

// FuzzDetectRequestDecode drives arbitrary request bodies through the
// decoder. Invariants: never panic; every rejection carries a 4xx
// status (malformed input must map to a client error, not a 5xx or a
// zero status); every accepted request survives an encode/decode
// round-trip unchanged.
func FuzzDetectRequestDecode(f *testing.F) {
	// Seed with a fully valid request built from a real synthesized
	// trace, so the fuzzer starts inside the accepted grammar...
	prog, err := trace.NewProgram(trace.Trojan, 0, 1)
	if err != nil {
		f.Fatal(err)
	}
	windows, err := prog.Trace(4, 256)
	if err != nil {
		f.Fatal(err)
	}
	valid, err := json.Marshal(DetectRequest{Programs: []ProgramJSON{
		{ID: "seed", Windows: EncodeWindows(windows)},
	}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	// ...and with representative rejections so each validation branch
	// is in the corpus.
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"programs":[]}`))
	f.Add([]byte(`{"programs":[{"windows":[]}]}`))
	f.Add([]byte(`{"programs":[{"windows":[{"opcode":[1,2]}]}]}`))
	f.Add([]byte(`{"programs":[{"windows":[{"opcode":[-1],"taken":5}]}]}`))
	f.Add([]byte(`{"programs":[{"id":"x","windows":[{"stride":[1,2,3]}]}]}`))
	f.Add(append(valid, []byte("{}")...))
	// Journal-shaped bodies: a calibration journal POSTed at the detect
	// endpoint by a confused client must be a clean 4xx, and its binary
	// framing (magic, big-endian length, CRC trailer) gives the mutator
	// structured non-JSON material to splice.
	f.Add([]byte("SHMDJNL1\x00\x00\x00\x10{\"entries\":[]}\xde\xad\xbe\xef"))
	f.Add([]byte(`{"programs":[{"id":"SHMDJNL1","windows":[{"opcode":[1]}]}]}`))
	// Deadline-header-shaped bodies: header text leaking into the body,
	// and header-like keys inside the JSON grammar.
	f.Add([]byte("X-Detect-Deadline-Ms: 250\r\n\r\n" + `{"programs":[]}`))
	f.Add([]byte(`{"X-Detect-Deadline-Ms":250,"programs":[{"windows":[{"opcode":[1]}]}]}`))
	// Trace-framed bodies: a decision-trace file POSTed at the detect
	// endpoint (an auditor piping the wrong file) must also be a clean
	// 4xx, and a genuine framed record seeds the mutator with the trace
	// grammar (magic, length prefix, varints, CRC trailer).
	var framed bytes.Buffer
	tw, err := replay.NewWriter(&framed)
	if err != nil {
		f.Fatal(err)
	}
	if err := tw.WriteRecord(replay.Record{
		Seed: 7, Rate: 0.1, DepthMV: 150, Threshold: 0.5,
		Malware: true, Score: 0.75, Confidence: 0.5,
		Draws:   faults.DrawLog{InitialGap: -1},
		Windows: windows[:1],
	}); err != nil {
		f.Fatal(err)
	}
	f.Add(framed.Bytes())
	f.Add([]byte(replay.Magic))
	f.Add([]byte(`{"programs":[{"id":"SHMDTRC1","windows":[{"opcode":[1]}]}]}`))

	lim := Limits{MaxPrograms: 8, MaxWindows: 16, MinWindows: 1}.withDefaults()
	f.Fuzz(func(t *testing.T, body []byte) {
		programs, err := DecodeDetectRequest(bytes.NewReader(body), lim)
		if err != nil {
			// Rejections must map to client-error statuses.
			if code := StatusOf(err); code < 400 || code > 499 {
				t.Fatalf("decode error %q mapped to status %d", err, code)
			}
			return
		}
		// Accepted: the batch respects the limits...
		if len(programs) < 1 || len(programs) > lim.MaxPrograms {
			t.Fatalf("accepted batch of %d programs (limit %d)", len(programs), lim.MaxPrograms)
		}
		for _, p := range programs {
			if len(p.Windows) < lim.MinWindows || len(p.Windows) > lim.MaxWindows {
				t.Fatalf("accepted %d windows (limits %d..%d)", len(p.Windows), lim.MinWindows, lim.MaxWindows)
			}
			for _, wc := range p.Windows {
				if wc.Total() <= 0 {
					t.Fatalf("accepted empty window %+v", wc)
				}
				if wc.Taken < 0 || wc.Taken > wc.Branches() {
					t.Fatalf("accepted taken %d outside [0, %d]", wc.Taken, wc.Branches())
				}
			}
		}
		// ...and round-trips: re-encoding and re-decoding reproduces
		// the same window counts.
		req := DetectRequest{}
		for _, p := range programs {
			req.Programs = append(req.Programs, ProgramJSON{ID: p.ID, Windows: EncodeWindows(p.Windows)})
		}
		encoded, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		again, err := DecodeDetectRequest(bytes.NewReader(encoded), lim)
		if err != nil {
			t.Fatalf("accepted request failed round-trip: %v\nbody: %s", err, encoded)
		}
		if len(again) != len(programs) {
			t.Fatalf("round-trip program count %d != %d", len(again), len(programs))
		}
		for i := range programs {
			if again[i].ID != programs[i].ID {
				t.Fatalf("program %d id %q != %q", i, again[i].ID, programs[i].ID)
			}
			if len(again[i].Windows) != len(programs[i].Windows) {
				t.Fatalf("program %d window count changed", i)
			}
			for j := range programs[i].Windows {
				if again[i].Windows[j] != programs[i].Windows[j] {
					t.Fatalf("program %d window %d changed: %+v != %+v",
						i, j, again[i].Windows[j], programs[i].Windows[j])
				}
			}
		}
	})
}

// TestStatusOf pins the error-to-status mapping the fuzz target relies
// on.
func TestStatusOf(t *testing.T) {
	if got := StatusOf(&RequestError{Status: 422, Msg: "x"}); got != 422 {
		t.Errorf("RequestError status = %d", got)
	}
	if got := StatusOf(&http.MaxBytesError{Limit: 1}); got != http.StatusRequestEntityTooLarge {
		t.Errorf("MaxBytesError status = %d", got)
	}
	if got := StatusOf(bytes.ErrTooLarge); got != http.StatusBadRequest {
		t.Errorf("generic error status = %d", got)
	}
}
