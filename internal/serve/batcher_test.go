package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"shmd/internal/chaos"
	"shmd/internal/replay"
	"shmd/internal/trace"
)

// TestBatchedDetectFullFlush pins the size-triggered path: a request
// carrying exactly MaxBatch programs fills the forming batch on
// arrival, so it flushes with reason "full" and every program gets a
// well-formed verdict from one batched pass.
func TestBatchedDetectFullFlush(t *testing.T) {
	srv := newTestServer(t, Config{MaxBatch: 4, MaxBatchWait: time.Hour})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	body := detectBody(t,
		testWindows(t, trace.Trojan, 0, 8),
		testWindows(t, trace.Benign, 0, 8),
		testWindows(t, trace.Worm, 1, 8),
		testWindows(t, trace.Backdoor, 2, 8))
	resp, raw := postDetect(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, raw)
	}
	var dr DetectResponse
	if err := json.Unmarshal(raw, &dr); err != nil {
		t.Fatalf("bad response %s: %v", raw, err)
	}
	if len(dr.Results) != 4 {
		t.Fatalf("results = %d, want 4", len(dr.Results))
	}
	if dr.Session < 0 || dr.Session >= srv.Pool().Size() {
		t.Errorf("session = %d outside pool", dr.Session)
	}
	for i, r := range dr.Results {
		if r.ID != fmt.Sprintf("prog-%d", i) {
			t.Errorf("result %d id = %q", i, r.ID)
		}
		if r.Score < 0 || r.Score > 1 {
			t.Errorf("result %d score = %v", i, r.Score)
		}
		if r.Unprotected {
			t.Errorf("result %d unprotected on ideal hardware", i)
		}
		if r.Attempts < 1 {
			t.Errorf("result %d attempts = %d", i, r.Attempts)
		}
		if want := Confidence(r.Score, 0.5, r.Malware); r.Confidence != want {
			t.Errorf("result %d confidence %v, margin says %v", i, r.Confidence, want)
		}
	}
	// The wait timer was pinned at an hour, so only the size trigger can
	// have flushed — and it must have, exactly once for four lanes.
	full, timer := srv.Metrics().BatchFlushes()
	if full != 1 || timer != 0 {
		t.Errorf("flushes full=%d timer=%d, want 1/0", full, timer)
	}

	// Each lane is one supervisor detection on the slot that served it.
	var served uint64
	for _, slot := range srv.Pool().Slots() {
		served += slot.Sup.Health().Detections
	}
	if served != 4 {
		t.Errorf("supervisors served %d detections, want 4", served)
	}
}

// TestBatchedDetectTimerFlush pins the wait-triggered path: a partial
// batch must not wait for lanes that never come — the MaxBatchWait
// timer flushes it.
func TestBatchedDetectTimerFlush(t *testing.T) {
	srv := newTestServer(t, Config{MaxBatch: 8, MaxBatchWait: time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	resp, raw := postDetect(t, ts, detectBody(t,
		testWindows(t, trace.Trojan, 3, 8),
		testWindows(t, trace.Benign, 3, 8)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, raw)
	}
	var dr DetectResponse
	if err := json.Unmarshal(raw, &dr); err != nil {
		t.Fatal(err)
	}
	if len(dr.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(dr.Results))
	}
	full, timer := srv.Metrics().BatchFlushes()
	if full != 0 || timer == 0 {
		t.Errorf("flushes full=%d timer=%d, want 0/1+", full, timer)
	}
}

// TestBatchedMixedDeadlines is the batching analogue of the scalar
// deadline contract, driven with the race detector in mind: 64
// concurrent clients share one batcher, half with a deadline far
// shorter than the batch wait (they must shed 503 without ever
// occupying a kernel lane) and half unbounded (they must all get
// verdicts, unaffected by their expired neighbours). MaxBatch is
// larger than the client count so no flush can beat the wait timer,
// and the margins absorb scheduler jitter: a deadline lane only
// avoids shedding if its request arrives within 50ms of a flush that
// fires a full second after the first arrival, i.e. after 950ms of
// goroutine start skew. (TestBatchedShedSkipsDetection pins the same
// invariant with no clock at all.)
func TestBatchedMixedDeadlines(t *testing.T) {
	const clients = 64
	srv := newTestServer(t, Config{
		Pool:         PoolConfig{Size: 2},
		QueueDepth:   clients * 2,
		MaxBatch:     100,
		MaxBatchWait: time.Second,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ts.Client().Transport = &http.Transport{MaxIdleConnsPerHost: clients}

	body := detectBody(t, testWindows(t, trace.Trojan, 1, 4))
	var wg sync.WaitGroup
	var ok200, ok503 atomic.Uint64
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/detect", bytes.NewReader(body))
			if err != nil {
				errc <- err
				return
			}
			req.Header.Set("Content-Type", "application/json")
			expired := c%2 == 1
			if expired {
				req.Header.Set(deadlineHeader, "50")
			}
			resp, err := ts.Client().Do(req)
			if err != nil {
				errc <- err
				return
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			switch {
			case expired && resp.StatusCode == http.StatusServiceUnavailable:
				if resp.Header.Get("Retry-After") == "" {
					errc <- fmt.Errorf("client %d: 503 missing Retry-After", c)
					return
				}
				ok503.Add(1)
			case !expired && resp.StatusCode == http.StatusOK:
				var dr DetectResponse
				if err := json.Unmarshal(raw, &dr); err != nil {
					errc <- fmt.Errorf("client %d: %v", c, err)
					return
				}
				if len(dr.Results) != 1 {
					errc <- fmt.Errorf("client %d: %d results", c, len(dr.Results))
					return
				}
				ok200.Add(1)
			default:
				errc <- fmt.Errorf("client %d (expired=%v): status %d, body %s", c, expired, resp.StatusCode, raw)
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if got := ok200.Load(); got != clients/2 {
		t.Errorf("unbounded clients served = %d, want %d", got, clients/2)
	}
	if got := ok503.Load(); got != clients/2 {
		t.Errorf("deadline clients shed = %d, want %d", got, clients/2)
	}
	if got := srv.Metrics().DeadlineExpirations(); got != clients/2 {
		t.Errorf("deadline expirations = %d, want %d", got, clients/2)
	}
	if got := srv.Pool().DoubleCheckouts(); got != 0 {
		t.Fatalf("pool handed out a session twice: %d violations", got)
	}
	// Shed lanes never reach a supervisor: exactly the live lanes count.
	var served uint64
	for _, slot := range srv.Pool().Slots() {
		served += slot.Sup.Health().Detections
	}
	if served != clients/2 {
		t.Errorf("supervisors served %d detections, want %d", served, clients/2)
	}
}

// TestBatchedShedSkipsDetection pins the shed-saves-work invariant
// with no wall-clock in play: lanes whose context is already dead
// when their batch flushes are shed without ever reaching a
// supervisor, while live lanes in the same batch are served.
func TestBatchedShedSkipsDetection(t *testing.T) {
	srv := newTestServer(t, Config{
		Pool:         PoolConfig{Size: 1},
		MaxBatch:     3,
		MaxBatchWait: time.Hour,
	})
	defer srv.Close()
	progs := []DecodedProgram{{ID: "p", Windows: testWindows(t, trace.Trojan, 0, 8)}}

	// Two lanes born dead: dispatch returns their context error
	// immediately, but the lanes stay in the forming batch.
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	for i := 0; i < 2; i++ {
		if _, err := srv.batcher.dispatch(dead, "", progs); !errors.Is(err, context.Canceled) {
			t.Fatalf("dead lane %d: err = %v, want context.Canceled", i, err)
		}
	}
	// The live lane fills the batch (size trigger, the wait timer is
	// pinned at an hour) and must be the only one detected.
	out, err := srv.batcher.dispatch(context.Background(), "", progs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.results) != 1 {
		t.Fatalf("live lane results = %d, want 1", len(out.results))
	}
	if full, timer := srv.Metrics().BatchFlushes(); full != 1 || timer != 0 {
		t.Errorf("flushes full=%d timer=%d, want 1/0", full, timer)
	}
	var served uint64
	for _, slot := range srv.Pool().Slots() {
		served += slot.Sup.Health().Detections
	}
	if served != 1 {
		t.Errorf("supervisors served %d detections, want 1 (dead lanes shed)", served)
	}
}

// TestBatchedMetricsScrape pins the batching counters in the
// Prometheus rendering: flush reasons, the batch-size histogram, the
// batch-wait histogram, and that every non-comment line parses as
// `name{labels} value`.
func TestBatchedMetricsScrape(t *testing.T) {
	srv := newTestServer(t, Config{MaxBatch: 2, MaxBatchWait: time.Hour})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	resp, raw := postDetect(t, ts, detectBody(t,
		testWindows(t, trace.Trojan, 0, 4),
		testWindows(t, trace.Benign, 0, 4)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("detect status = %d (%s)", resp.StatusCode, raw)
	}

	mResp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mRaw, _ := io.ReadAll(mResp.Body)
	mResp.Body.Close()
	metrics := string(mRaw)
	for _, want := range []string{
		`shmd_batch_flush_total{reason="full"} 1`,
		`shmd_batch_flush_total{reason="timer"} 0`,
		`shmd_batch_size_bucket{le="2"} 1`,
		`shmd_batch_size_bucket{le="+Inf"} 1`,
		"shmd_batch_size_sum 2",
		"shmd_batch_size_count 1",
		`shmd_batch_wait_seconds_bucket{le="+Inf"} 2`,
		"shmd_batch_wait_seconds_count 2",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
	// Exposition-format sanity: every non-comment line is a sample with
	// a parseable float value.
	for _, line := range strings.Split(metrics, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Errorf("unparseable metric line %q", line)
			continue
		}
		if _, err := strconv.ParseFloat(line[i+1:], 64); err != nil {
			t.Errorf("metric line %q: bad value: %v", line, err)
		}
		name := line[:i]
		if j := strings.IndexByte(name, '{'); j >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Errorf("metric line %q: unbalanced labels", line)
			}
			name = name[:j]
		}
		if !strings.HasPrefix(name, "shmd_") {
			t.Errorf("metric line %q: name outside the shmd namespace", line)
		}
	}
}

// TestBatchedChaosPool runs the batched path over a chaos-built pool:
// chaos slots use caller-supplied hardware, which only serves batches
// because the pool opts them into lane streams (EnableBatchStreams) —
// this test pins that wiring.
func TestBatchedChaosPool(t *testing.T) {
	srv := newTestServer(t, Config{
		Pool:         PoolConfig{Size: 1, ChaosConfig: &chaos.Config{Seed: 9}},
		MaxBatch:     3,
		MaxBatchWait: time.Hour,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	det := srv.Pool().Slots()[0].Det
	if _, ok := det.Regulator().(*chaos.Env); !ok {
		t.Fatalf("slot regulator is %T, want *chaos.Env", det.Regulator())
	}
	if !det.BatchCapable() {
		t.Fatal("chaos-built slot detector is not batch-capable")
	}

	resp, raw := postDetect(t, ts, detectBody(t,
		testWindows(t, trace.Trojan, 0, 8),
		testWindows(t, trace.Benign, 0, 8),
		testWindows(t, trace.Worm, 0, 8)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, raw)
	}
	var dr DetectResponse
	if err := json.Unmarshal(raw, &dr); err != nil {
		t.Fatal(err)
	}
	if len(dr.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(dr.Results))
	}
	for i, r := range dr.Results {
		if r.Score < 0 || r.Score > 1 {
			t.Errorf("result %d score = %v", i, r.Score)
		}
	}
	if full, _ := srv.Metrics().BatchFlushes(); full != 1 {
		t.Errorf("full flushes = %d, want 1", full)
	}
}

// TestBatchedTraceReplaysBitIdentically extends the tentpole replay
// contract to the batched path: every lane's verdict records its own
// per-lane draw log, and each replays off-hardware through the
// unchanged scalar replayer to the exact served verdict, score, and
// confidence — batched lane scores are bit-identical to scalar.
func TestBatchedTraceReplaysBitIdentically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "batched.trace")
	sink, err := replay.OpenSink(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	srv := newTestServer(t, Config{
		Trace:        sink,
		MaxBatch:     4,
		MaxBatchWait: time.Millisecond,
	})
	ts := httptest.NewServer(srv.Handler())

	scored := 0
	for i := 0; i < 4; i++ {
		body := detectBody(t,
			testWindows(t, trace.Trojan, i, 8),
			testWindows(t, trace.Benign, i, 8))
		resp, raw := postDetect(t, ts, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d, body %s", i, resp.StatusCode, raw)
		}
		scored += 2
	}

	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if sink.Written()+sink.Dropped() < uint64(scored) {
		t.Fatalf("sink accounted %d+%d records, served %d decisions",
			sink.Written(), sink.Dropped(), scored)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rd, err := replay.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	base := testHMD(t)
	n := 0
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("record %d: %v", n, err)
		}
		if rec.Unprotected {
			t.Errorf("record %d: unprotected on ideal hardware", n)
		}
		if len(rec.Draws.Bits) == 0 && len(rec.Draws.Gaps) == 0 && rec.Draws.InitialGap == -1 && rec.Rate > 0 {
			// A protected batched lane at a nonzero rate should usually
			// carry draws; an empty log is legal (no faults hit) but a
			// missing one would replay exact and still verify, so pin the
			// stronger invariant through Verify below.
			t.Logf("record %d: empty draw log at rate %v", n, rec.Rate)
		}
		if err := replay.Verify(base, rec, Confidence); err != nil {
			t.Errorf("record %d (slot %d gen %d): %v", n, rec.Slot, rec.Gen, err)
		}
		n++
	}
	if uint64(n) != sink.Written() {
		t.Fatalf("trace holds %d records, sink wrote %d", n, sink.Written())
	}
}

// TestBatchedConfig pins the construction contract: negative MaxBatch
// is rejected, 0 and 1 leave the scalar path, >1 installs the batcher
// and defaults the wait.
func TestBatchedConfig(t *testing.T) {
	if _, err := New(testHMD(t), Config{MaxBatch: -1}); err == nil {
		t.Error("negative MaxBatch accepted")
	}
	for _, mb := range []int{0, 1} {
		srv := newTestServer(t, Config{MaxBatch: mb})
		if srv.batcher != nil {
			t.Errorf("MaxBatch %d installed a batcher", mb)
		}
		srv.Close()
	}
	srv := newTestServer(t, Config{MaxBatch: 16})
	if srv.batcher == nil {
		t.Fatal("MaxBatch 16 left the scalar path")
	}
	if srv.batcher.wait != 2*time.Millisecond {
		t.Errorf("default MaxBatchWait = %v, want 2ms", srv.batcher.wait)
	}
	srv.Close()
}
