// Package serve exposes a trained Stochastic-HMD as a long-running
// detection service: an HTTP/JSON API backed by a pool of supervised
// stochastic sessions. POST /v1/detect classifies batches of
// per-window instruction-category counts and returns decisions with
// per-decision confidence scores; GET /healthz reports supervisor
// health; GET /metrics exports Prometheus-style counters.
//
// The service is the online counterpart of the offline evaluation
// harness: the same enter → infer → exit undervolting protocol
// (core.Session), the same self-healing supervision (core.Supervisor),
// but driven by concurrent request traffic with bounded-queue
// backpressure instead of batch sweeps.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"shmd/internal/isa"
	"shmd/internal/trace"
)

// Decode limits. The defaults bound worst-case request cost: a full
// batch of maximum-length programs stays well under a second of
// inference on one pooled session.
const (
	DefaultMaxBodyBytes = 4 << 20
	DefaultMaxPrograms  = 64
	DefaultMaxWindows   = 1024
	// maxCount bounds any single opcode/stride/taken count so window
	// totals can never overflow the int arithmetic in the feature
	// extractors.
	maxCount = 1 << 30
)

// Limits bounds what a single /v1/detect request may carry.
type Limits struct {
	// MaxBodyBytes caps the request body (enforced with
	// http.MaxBytesReader; overruns map to 413).
	MaxBodyBytes int64
	// MaxPrograms caps the programs per batch.
	MaxPrograms int
	// MaxWindows caps the windows per program.
	MaxWindows int
	// MinWindows is the fewest windows a program needs for one complete
	// detection period (set from the model's period by the server).
	MinWindows int
}

// withDefaults fills unset fields.
func (l Limits) withDefaults() Limits {
	if l.MaxBodyBytes == 0 {
		l.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if l.MaxPrograms == 0 {
		l.MaxPrograms = DefaultMaxPrograms
	}
	if l.MaxWindows == 0 {
		l.MaxWindows = DefaultMaxWindows
	}
	if l.MinWindows == 0 {
		l.MinWindows = 1
	}
	return l
}

// WindowJSON is the wire form of one decision window: the raw
// per-opcode instruction counts plus the branch and memory
// side-channels, exactly the trace.WindowCounts measurement a
// Pin-like collector produces.
type WindowJSON struct {
	// Opcode must hold exactly isa.NumOpcodes non-negative counts.
	Opcode []int `json:"opcode"`
	// Taken counts taken branches; it cannot exceed the branch
	// instructions present in Opcode.
	Taken int `json:"taken,omitempty"`
	// Stride is the optional memory-stride histogram: empty or exactly
	// trace.StrideBuckets non-negative counts.
	Stride []int `json:"stride,omitempty"`
}

// ProgramJSON is one program trace in a detection batch.
type ProgramJSON struct {
	// ID is an optional caller-assigned label echoed in the result.
	ID      string       `json:"id,omitempty"`
	Windows []WindowJSON `json:"windows"`
}

// DetectRequest is the POST /v1/detect body.
type DetectRequest struct {
	Programs []ProgramJSON `json:"programs"`
}

// DetectResult is one program's verdict.
type DetectResult struct {
	ID      string `json:"id,omitempty"`
	Malware bool   `json:"malware"`
	// Score is the mean window score behind the verdict.
	Score float64 `json:"score"`
	// Confidence is the decision margin normalized into [0, 1]: how far
	// the mean score sits from the decision threshold, relative to the
	// room on the decided side. Stochastic inference makes it an online
	// per-decision uncertainty signal — scores near the threshold are
	// exactly the ones the fault noise can flip.
	Confidence float64 `json:"confidence"`
	// Unprotected marks a degraded decision (nominal voltage, no
	// moving-target protection) served while the supervisor's breaker
	// is open.
	Unprotected bool `json:"unprotected,omitempty"`
	// Attempts is the number of protected cycles the supervisor tried.
	Attempts int `json:"attempts"`
	// Windows is the number of decision windows scored.
	Windows int `json:"windows"`
}

// DetectResponse is the POST /v1/detect reply.
type DetectResponse struct {
	Results []DetectResult `json:"results"`
	// Session is the pool slot that served the batch (observability).
	Session int `json:"session"`
	// Hedged marks a reply won by the hedge runner: the primary slot
	// was still working when a re-dispatch onto an idle slot finished
	// first.
	Hedged bool `json:"hedged,omitempty"`
	// Tenant echoes the resolved accounting identity the request was
	// served under (empty when tenancy is off).
	Tenant string `json:"tenant,omitempty"`
}

// DecodedProgram is a validated program ready for detection.
type DecodedProgram struct {
	ID      string
	Windows []trace.WindowCounts
}

// RequestError is a client-side decode/validation failure carrying the
// HTTP status it maps to.
type RequestError struct {
	Status int
	Msg    string
}

// Error implements error.
func (e *RequestError) Error() string { return e.Msg }

func badRequest(format string, args ...any) *RequestError {
	return &RequestError{Status: http.StatusBadRequest, Msg: fmt.Sprintf(format, args...)}
}

// StatusOf maps a decode error to its HTTP status: RequestErrors carry
// their own, body-size overruns are 413, anything else (malformed
// JSON, truncated body) is a 400.
func StatusOf(err error) int {
	var reqErr *RequestError
	if errors.As(err, &reqErr) {
		return reqErr.Status
	}
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// DecodeDetectRequest parses and validates a /v1/detect body. Every
// rejection is a *RequestError (or a JSON syntax error) classifying to
// a 4xx via StatusOf; the decoder never panics on any input.
func DecodeDetectRequest(r io.Reader, lim Limits) ([]DecodedProgram, error) {
	lim = lim.withDefaults()
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req DetectRequest
	if err := dec.Decode(&req); err != nil {
		return nil, err
	}
	// Exactly one JSON value: trailing garbage is a malformed request.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, badRequest("request body holds more than one JSON value")
	}
	if len(req.Programs) == 0 {
		return nil, badRequest("empty batch: need at least one program")
	}
	if len(req.Programs) > lim.MaxPrograms {
		return nil, badRequest("batch of %d programs exceeds limit %d", len(req.Programs), lim.MaxPrograms)
	}
	out := make([]DecodedProgram, len(req.Programs))
	for i, p := range req.Programs {
		windows, err := decodeProgram(p, i, lim)
		if err != nil {
			return nil, err
		}
		out[i] = DecodedProgram{ID: p.ID, Windows: windows}
	}
	return out, nil
}

// decodeProgram validates one program's windows.
func decodeProgram(p ProgramJSON, idx int, lim Limits) ([]trace.WindowCounts, error) {
	if len(p.Windows) < lim.MinWindows {
		return nil, badRequest("program %d: %d windows, need at least %d for one detection period",
			idx, len(p.Windows), lim.MinWindows)
	}
	if len(p.Windows) > lim.MaxWindows {
		return nil, badRequest("program %d: %d windows exceeds limit %d", idx, len(p.Windows), lim.MaxWindows)
	}
	out := make([]trace.WindowCounts, len(p.Windows))
	for w, win := range p.Windows {
		wc, err := decodeWindow(win, idx, w)
		if err != nil {
			return nil, err
		}
		out[w] = wc
	}
	return out, nil
}

// decodeWindow validates one window's JSON shape, converts it to the
// internal measurement type, and applies the transport-independent
// semantic checks.
func decodeWindow(win WindowJSON, prog, idx int) (trace.WindowCounts, error) {
	var wc trace.WindowCounts
	if len(win.Opcode) != isa.NumOpcodes {
		return wc, badRequest("program %d window %d: %d opcode counts, want %d",
			prog, idx, len(win.Opcode), isa.NumOpcodes)
	}
	copy(wc.Opcode[:], win.Opcode)
	wc.Taken = win.Taken
	if len(win.Stride) != 0 && len(win.Stride) != trace.StrideBuckets {
		return wc, badRequest("program %d window %d: %d stride buckets, want 0 or %d",
			prog, idx, len(win.Stride), trace.StrideBuckets)
	}
	copy(wc.Stride[:], win.Stride)
	if err := validateWindowCounts(wc, prog, idx); err != nil {
		return trace.WindowCounts{}, err
	}
	return wc, nil
}

// validateWindowCounts applies the semantic checks every transport
// shares — the JSON decoder after shape conversion, the binary wire
// path on already-structured measurements. Both transports therefore
// accept and reject exactly the same windows, which the cross-transport
// equivalence suite depends on.
func validateWindowCounts(wc trace.WindowCounts, prog, idx int) error {
	total := 0
	for op, n := range wc.Opcode {
		if n < 0 || n > maxCount {
			return badRequest("program %d window %d: opcode %d count %d outside [0, %d]",
				prog, idx, op, n, maxCount)
		}
		total += n
	}
	if total == 0 {
		return badRequest("program %d window %d: empty window (all opcode counts zero)", prog, idx)
	}
	if total > maxCount {
		return badRequest("program %d window %d: window total %d exceeds %d", prog, idx, total, maxCount)
	}
	if wc.Taken < 0 {
		return badRequest("program %d window %d: negative taken-branch count %d", prog, idx, wc.Taken)
	}
	if branches := wc.Branches(); wc.Taken > branches {
		return badRequest("program %d window %d: %d taken branches but only %d branch instructions",
			prog, idx, wc.Taken, branches)
	}
	for b, n := range wc.Stride {
		if n < 0 || n > maxCount {
			return badRequest("program %d window %d: stride bucket %d count %d outside [0, %d]",
				prog, idx, b, n, maxCount)
		}
	}
	return nil
}

// ValidatePrograms applies the request-level semantic limits to
// already-structured programs — the binary transport's counterpart of
// DecodeDetectRequest. Every rejection is a *RequestError mapping to
// the same status the JSON decoder would have produced.
func ValidatePrograms(programs []DecodedProgram, lim Limits) error {
	lim = lim.withDefaults()
	if len(programs) == 0 {
		return badRequest("empty batch: need at least one program")
	}
	if len(programs) > lim.MaxPrograms {
		return badRequest("batch of %d programs exceeds limit %d", len(programs), lim.MaxPrograms)
	}
	for i, p := range programs {
		if len(p.Windows) < lim.MinWindows {
			return badRequest("program %d: %d windows, need at least %d for one detection period",
				i, len(p.Windows), lim.MinWindows)
		}
		if len(p.Windows) > lim.MaxWindows {
			return badRequest("program %d: %d windows exceeds limit %d", i, len(p.Windows), lim.MaxWindows)
		}
		for w, win := range p.Windows {
			if err := validateWindowCounts(win, i, w); err != nil {
				return err
			}
		}
	}
	return nil
}

// EncodeWindows converts internal window measurements back to the wire
// form (used by clients, tests, and the fuzz round-trip).
func EncodeWindows(windows []trace.WindowCounts) []WindowJSON {
	out := make([]WindowJSON, len(windows))
	for i, w := range windows {
		wj := WindowJSON{Opcode: make([]int, isa.NumOpcodes), Taken: w.Taken}
		copy(wj.Opcode, w.Opcode[:])
		wj.Stride = make([]int, trace.StrideBuckets)
		copy(wj.Stride, w.Stride[:])
		out[i] = wj
	}
	return out
}
