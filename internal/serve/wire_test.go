package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"shmd/internal/replay"
	"shmd/internal/trace"
	"shmd/internal/wire"
	"shmd/pkg/sdk"
)

// startWireServer serves srv's SHMDWIRE listener on a loopback port.
// The returned stop drains the listener; the pool stays open (the
// caller closes srv as usual).
func startWireServer(t testing.TB, srv *Server) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.ServeWire(ctx, ln) }()
	return ln.Addr().String(), func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("ServeWire: %v", err)
		}
	}
}

// wireDetectRequest is detectBody's binary twin: the same program IDs
// over the same windows.
func wireDetectRequest(traces ...[]trace.WindowCounts) wire.DetectRequest {
	var req wire.DetectRequest
	for i, tr := range traces {
		req.Programs = append(req.Programs, wire.DetectProgram{
			ID:      fmt.Sprintf("prog-%d", i),
			Windows: tr,
		})
	}
	return req
}

// wireDial opens a raw protocol connection (preamble exchanged, HELLO
// consumed) for tests that speak frames directly.
func wireDial(t *testing.T, addr string) *wire.Conn {
	t.Helper()
	c, err := wire.Dial(addr, 5*time.Second, wire.DefaultMaxFramePayload)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	f, err := c.ReadFrame()
	if err != nil {
		t.Fatalf("reading HELLO: %v", err)
	}
	if f.Type != wire.FrameHello {
		t.Fatalf("first frame = %v, want HELLO", f.Type)
	}
	return c
}

// TestWireCrossTransportBitIdentical is the transport conformance
// pin: the same seeded detect program served over HTTP/JSON and over
// SHMDWIRE produces bit-identical verdicts, scores, and confidences —
// at scalar dispatch and through the micro-batcher. Two fresh servers
// share a pool seed; each transport consumes its server's fault
// streams in the same order, so any divergence is a transport bug.
func TestWireCrossTransportBitIdentical(t *testing.T) {
	for _, maxBatch := range []int{0, 16} {
		t.Run(fmt.Sprintf("maxBatch=%d", maxBatch), func(t *testing.T) {
			cfg := Config{
				Pool:     PoolConfig{Size: 1, Seed: 11, ErrorRate: 0.1},
				MaxBatch: maxBatch,
			}
			httpSrv := newTestServer(t, cfg)
			defer httpSrv.Close()
			ts := httptest.NewServer(httpSrv.Handler())
			defer ts.Close()

			wireSrv := newTestServer(t, cfg)
			defer wireSrv.Close()
			addr, stop := startWireServer(t, wireSrv)
			defer stop()
			cl, err := sdk.Dial(addr, sdk.Options{JitterSeed: 1})
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()

			for i := 0; i < 4; i++ {
				traces := [][]trace.WindowCounts{
					testWindows(t, trace.Trojan, i, 8),
					testWindows(t, trace.Benign, i, 8),
				}
				resp, raw := postDetect(t, ts, detectBody(t, traces[0], traces[1]))
				if resp.StatusCode != 200 {
					t.Fatalf("request %d: HTTP status %d: %s", i, resp.StatusCode, raw)
				}
				var httpResp DetectResponse
				if err := json.Unmarshal(raw, &httpResp); err != nil {
					t.Fatal(err)
				}
				v, err := cl.Detect(context.Background(), wireDetectRequest(traces...))
				if err != nil {
					t.Fatalf("request %d: wire detect: %v", i, err)
				}
				if len(v.Results) != len(httpResp.Results) {
					t.Fatalf("request %d: %d wire results, %d HTTP", i, len(v.Results), len(httpResp.Results))
				}
				for j, wr := range v.Results {
					hr := httpResp.Results[j]
					if wr.ID != hr.ID || wr.Malware != hr.Malware || wr.Unprotected != hr.Unprotected {
						t.Errorf("request %d result %d: wire %+v vs HTTP %+v", i, j, wr, hr)
					}
					if math.Float64bits(wr.Score) != math.Float64bits(hr.Score) {
						t.Errorf("request %d result %d: score %v != %v", i, j, wr.Score, hr.Score)
					}
					if math.Float64bits(wr.Confidence) != math.Float64bits(hr.Confidence) {
						t.Errorf("request %d result %d: confidence %v != %v", i, j, wr.Confidence, hr.Confidence)
					}
					if int(wr.Attempts) != hr.Attempts || int(wr.Windows) != hr.Windows {
						t.Errorf("request %d result %d: attempts/windows %d/%d != %d/%d",
							i, j, wr.Attempts, wr.Windows, hr.Attempts, hr.Windows)
					}
				}
			}
		})
	}
}

// TestServeWireTraceReplaysBitIdentically extends the replay contract
// to the wire transport: every decision served over SHMDWIRE with a
// trace sink attached replays off-hardware to the recorded verdict.
func TestServeWireTraceReplaysBitIdentically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "decisions.trace")
	sink, err := replay.OpenSink(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	srv := newTestServer(t, Config{Trace: sink})
	addr, stop := startWireServer(t, srv)
	cl, err := sdk.Dial(addr, sdk.Options{JitterSeed: 1})
	if err != nil {
		t.Fatal(err)
	}

	scored := 0
	for i := 0; i < 4; i++ {
		req := wireDetectRequest(
			testWindows(t, trace.Trojan, i, 8),
			testWindows(t, trace.Benign, i, 8))
		v, err := cl.Detect(context.Background(), req)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		scored += len(v.Results)
	}
	cl.Close()
	stop()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if sink.Written()+sink.Dropped() < uint64(scored) {
		t.Fatalf("sink accounted %d+%d records, served %d decisions",
			sink.Written(), sink.Dropped(), scored)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rd, err := replay.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	base := testHMD(t)
	n := 0
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("record %d: %v", n, err)
		}
		if err := replay.Verify(base, rec, Confidence); err != nil {
			t.Errorf("record %d (slot %d gen %d): %v", n, rec.Slot, rec.Gen, err)
		}
		n++
	}
	if uint64(n) != sink.Written() {
		t.Fatalf("trace holds %d records, sink wrote %d", n, sink.Written())
	}
}

// TestWireBackpressure mirrors TestBackpressure on the binary path:
// with the only session held and the admission queue full, a DETECT
// sheds with a typed 429 and the queued ones complete after release.
func TestWireBackpressure(t *testing.T) {
	srv := newTestServer(t, Config{Pool: PoolConfig{Size: 1}, QueueDepth: 1})
	defer srv.Close()
	addr, stop := startWireServer(t, srv)
	defer stop()

	slot, err := srv.Pool().Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cl, err := sdk.Dial(addr, sdk.Options{JitterSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	req := wireDetectRequest(testWindows(t, trace.Trojan, 0, 2))

	// Fill the admission queue (capacity pool+queue = 2).
	results := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := cl.Detect(context.Background(), req)
			results <- err
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(srv.queue) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("queued detects never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	// The queue is full: the next DETECT must shed with a typed 429.
	_, err = cl.Detect(context.Background(), req)
	var ef *wire.ErrorFrame
	if !errors.As(err, &ef) || ef.Code != wire.CodeOverloaded {
		t.Fatalf("overload error = %v, want typed %d", err, wire.CodeOverloaded)
	}

	srv.Pool().Release(slot)
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Errorf("queued detect: %v", err)
		}
	}
	if srv.Metrics().queueRejects.Load() == 0 {
		t.Error("queue reject not counted")
	}
}

// TestWireVersionSkew pins the handshake contract: an unsupported
// client version gets a typed 505 ERROR, not a silent hangup.
func TestWireVersionSkew(t *testing.T) {
	srv := newTestServer(t, Config{})
	defer srv.Close()
	addr, stop := startWireServer(t, srv)
	defer stop()

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if _, err := nc.Write(wire.AppendPreamble(nil, 99)); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.ReadPreamble(nc); err != nil {
		t.Fatalf("server preamble: %v", err)
	}
	f, err := wire.ReadWireFrame(nc, wire.DefaultMaxFramePayload)
	if err != nil {
		t.Fatalf("reading skew reply: %v", err)
	}
	if f.Type != wire.FrameError {
		t.Fatalf("skew reply = %v, want ERROR", f.Type)
	}
	e, err := wire.DecodeErrorFrame(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if e.Code != wire.CodeVersion {
		t.Fatalf("skew code = %d, want %d", e.Code, wire.CodeVersion)
	}
}

// TestWireUnknownFrameSkipped pins forward compatibility: a valid
// frame of an unknown type is skipped with a warning — the connection
// keeps serving and the skip is counted.
func TestWireUnknownFrameSkipped(t *testing.T) {
	srv := newTestServer(t, Config{})
	defer srv.Close()
	addr, stop := startWireServer(t, srv)
	defer stop()

	c := wireDial(t, addr)
	if err := c.WriteFrame(wire.Frame{Type: wire.FrameType(0x7F), Corr: 9, Payload: []byte("future")}); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteFrame(wire.Frame{Type: wire.FramePing, Corr: 10}); err != nil {
		t.Fatal(err)
	}
	f, err := c.ReadFrame()
	if err != nil {
		t.Fatalf("connection died after unknown frame: %v", err)
	}
	if f.Type != wire.FramePong || f.Corr != 10 {
		t.Fatalf("got %v corr %d, want PONG corr 10", f.Type, f.Corr)
	}
	if got := srv.Metrics().WireUnknownFrames(); got != 1 {
		t.Errorf("unknown-frame counter = %d, want 1", got)
	}
}

// TestWireOversizedFrameRecoverable pins the 413 path: a frame beyond
// the payload limit earns a typed error and the stream stays usable.
func TestWireOversizedFrameRecoverable(t *testing.T) {
	srv := newTestServer(t, Config{Limits: Limits{MaxBodyBytes: 1024}})
	defer srv.Close()
	addr, stop := startWireServer(t, srv)
	defer stop()

	c := wireDial(t, addr)
	if err := c.WriteFrame(wire.Frame{Type: wire.FrameDetect, Corr: 7, Payload: make([]byte, 4096)}); err != nil {
		t.Fatal(err)
	}
	f, err := c.ReadFrame()
	if err != nil {
		t.Fatalf("connection died after oversized frame: %v", err)
	}
	if f.Type != wire.FrameError || f.Corr != 7 {
		t.Fatalf("got %v corr %d, want ERROR corr 7", f.Type, f.Corr)
	}
	e, err := wire.DecodeErrorFrame(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if e.Code != wire.CodeTooLarge {
		t.Fatalf("code = %d, want %d", e.Code, wire.CodeTooLarge)
	}
	// Still synchronized: a PING round-trips.
	if err := c.WriteFrame(wire.Frame{Type: wire.FramePing, Corr: 8}); err != nil {
		t.Fatal(err)
	}
	if f, err := c.ReadFrame(); err != nil || f.Type != wire.FramePong {
		t.Fatalf("post-413 ping: frame %v err %v", f.Type, err)
	}
}

// TestWireDrainSendsGoAway pins graceful drain: cancelling ServeWire
// broadcasts GOAWAY, lets an in-flight detect finish, and closes.
func TestWireDrainSendsGoAway(t *testing.T) {
	srv := newTestServer(t, Config{})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.ServeWire(ctx, ln) }()

	c := wireDial(t, ln.Addr().String())
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	sawGoAway := false
	for !sawGoAway {
		if time.Now().After(deadline) {
			t.Fatal("no GOAWAY before the drain closed the connection")
		}
		f, err := c.ReadFrame()
		if err != nil {
			t.Fatalf("connection closed without GOAWAY: %v", err)
		}
		sawGoAway = f.Type == wire.FrameGoAway
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if srv.Metrics().wireGoAways.Load() == 0 {
		t.Error("GOAWAY not counted")
	}
}

// TestWireHealth pins the HEALTH_REQ round-trip: the same JSON body
// /healthz serves, carried in a HEALTH frame.
func TestWireHealth(t *testing.T) {
	srv := newTestServer(t, Config{})
	defer srv.Close()
	addr, stop := startWireServer(t, srv)
	defer stop()

	cl, err := sdk.Dial(addr, sdk.Options{JitterSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	raw, err := cl.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var report HealthReport
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("health payload not a report: %v", err)
	}
	if report.Status != "ok" {
		t.Errorf("health status = %q, want ok", report.Status)
	}
	if len(report.Sessions) != 2 {
		t.Errorf("health sessions = %d, want 2", len(report.Sessions))
	}
}
