package serve

// The SHMDWIRE streaming listener: persistent binary connections
// multiplexing detect streams into the same admission queue, deadline
// plumbing, micro-batcher, hedged dispatch, tracing, and metrics as
// the HTTP transport. One connection carries many concurrent DETECT
// frames; each frame becomes one tracked detection whose VERDICT (or
// typed ERROR) is written back under the frame's correlation id, so
// windows from a Pin-style collector stream without per-request
// connection or JSON re-encoding cost.
//
// Graceful drain mirrors the HTTP path: the server broadcasts a
// GOAWAY frame to every live connection, stops admitting new DETECTs
// (typed 503), finishes in-flight ones, and only then closes.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"shmd/internal/tenant"
	"shmd/internal/trace"
	"shmd/internal/wire"
)

// wireState tracks live SHMDWIRE connections for drain broadcast.
type wireState struct {
	mu    sync.Mutex
	conns map[*wireConn]struct{}
}

// wireConn is one accepted SHMDWIRE connection.
type wireConn struct {
	c *wire.Conn
	// wg counts in-flight detect goroutines on this connection.
	wg sync.WaitGroup
	// cancel ends the connection's context, unblocking any dispatch
	// still waiting when the connection is force-closed.
	cancel context.CancelFunc
	// extended latches when the client sends its own HELLO (the v1.1
	// opt-in); only extended peers receive ERROR retry-after tails.
	// Atomic because detect goroutines read it while the read loop may
	// still process a late HELLO.
	extended atomic.Bool
	// tenantID is the connection-level identity bound by the client
	// HELLO metadata; per-frame tenant tags take precedence. Written
	// and read only on the connection's read loop.
	tenantID string
	// streams holds the connection's live sliding-window detection
	// streams, keyed by client-chosen stream id. Touched only on the
	// read loop, so no lock.
	streams map[uint32]*windowStream
}

// maxWireStreams bounds the live sliding-window streams one
// connection may hold open.
const maxWireStreams = 64

// windowStream is one long-lived sliding-window detection stream: a
// trailing buffer of the model period's windows, re-scored every
// stride appended windows.
type windowStream struct {
	label  string
	tenant string
	class  tenant.Class
	stride int
	period int
	// buf holds the trailing period windows.
	buf []trace.WindowCounts
	// total counts windows ever appended; a re-scoring triggered at
	// window N is labelled "<label>#N" in its verdict.
	total int
	// sinceScore counts windows appended since the last re-scoring.
	sinceScore int
}

// register adds a live connection (nil map allocates on first use).
func (ws *wireState) register(wc *wireConn) {
	ws.mu.Lock()
	if ws.conns == nil {
		ws.conns = make(map[*wireConn]struct{})
	}
	ws.conns[wc] = struct{}{}
	ws.mu.Unlock()
}

// unregister removes a connection.
func (ws *wireState) unregister(wc *wireConn) {
	ws.mu.Lock()
	delete(ws.conns, wc)
	ws.mu.Unlock()
}

// snapshot copies the live connection set.
func (ws *wireState) snapshot() []*wireConn {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	out := make([]*wireConn, 0, len(ws.conns))
	for wc := range ws.conns {
		out = append(out, wc)
	}
	return out
}

// ServeWire accepts SHMDWIRE connections on ln until ctx is cancelled,
// then drains gracefully: GOAWAY to every connection, in-flight
// detects finish (bounded by ShutdownTimeout), stragglers are cut.
// It serves the same pool as the HTTP listener and does not close it —
// the caller owns the pool's lifetime (Serve's shutdown path, or an
// explicit Close when running wire-only).
func (s *Server) ServeWire(ctx context.Context, ln net.Listener) error {
	done := make(chan error, 1)
	go func() { done <- s.acceptWire(ln) }()
	select {
	case <-ctx.Done():
		s.draining.Store(true) // /readyz goes 503 before the drain starts
		ln.Close()
		shCtx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownTimeout)
		defer cancel()
		s.drainWire(shCtx)
		s.waitRunners(shCtx)
		<-done
		return nil
	case err := <-done:
		return err
	}
}

// acceptWire runs the accept loop; a closed listener ends it cleanly.
func (s *Server) acceptWire(ln net.Listener) error {
	for {
		nc, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.handleWireConn(nc)
	}
}

// drainWire broadcasts GOAWAY, waits for every connection's in-flight
// detects (bounded by ctx), then closes whatever remains.
func (s *Server) drainWire(ctx context.Context) {
	conns := s.wire.snapshot()
	goaway := wire.AppendGoAway(nil, wire.GoAway{Code: 0, Msg: "draining"})
	for _, wc := range conns {
		s.metrics.WireGoAway()
		wc.c.WriteFrame(wire.Frame{Type: wire.FrameGoAway, Payload: goaway})
	}
	idle := make(chan struct{})
	go func() {
		for _, wc := range conns {
			wc.wg.Wait()
		}
		close(idle)
	}()
	select {
	case <-idle:
	case <-ctx.Done():
	}
	for _, wc := range conns {
		wc.cancel()
		wc.c.Close()
	}
}

// handleWireConn owns one connection: handshake, HELLO, then the frame
// loop. Detect frames run in per-frame goroutines so one slow batch
// never blocks the next frame — that concurrency is what feeds the
// micro-batcher from a single connection.
func (s *Server) handleWireConn(nc net.Conn) {
	c := wire.NewConn(nc, int(s.cfg.Limits.MaxBodyBytes))
	v, err := c.Handshake(s.cfg.ReadHeaderTimeout)
	if err != nil {
		c.Close()
		return
	}
	s.metrics.WireConnOpen()
	defer s.metrics.WireConnClose()
	if v != wire.ProtoVersion {
		// Answer skew with a typed error, not a silent hangup, so the
		// client can report something actionable.
		c.WriteError(0, wire.CodeVersion, fmt.Sprintf("server speaks SHMDWIRE v%d, client sent v%d", wire.ProtoVersion, v))
		c.Close()
		return
	}
	if err := c.WriteFrame(wire.Frame{
		Type:    wire.FrameHello,
		Payload: wire.AppendHello(nil, wire.Hello{Version: wire.ProtoVersion, MaxFrame: uint32(c.MaxPayload())}),
	}); err != nil {
		c.Close()
		return
	}

	ctx, cancel := context.WithCancel(context.Background())
	wc := &wireConn{c: c, cancel: cancel}
	s.wire.register(wc)
	defer func() {
		s.wire.unregister(wc)
		cancel()
		// The reader is gone; wait for in-flight detects (their verdict
		// writes fail fast once the conn closes) before releasing the conn.
		wc.wg.Wait()
		c.Close()
	}()
	if s.draining.Load() {
		s.metrics.WireGoAway()
		c.WriteFrame(wire.Frame{Type: wire.FrameGoAway, Payload: wire.AppendGoAway(nil, wire.GoAway{Code: 0, Msg: "draining"})})
	}

	for {
		f, err := c.ReadFrame()
		if err != nil {
			var tooBig *wire.TooLargeError
			if errors.As(err, &tooBig) {
				// The stream is still synchronized: reject this frame and
				// keep the connection.
				s.metrics.Request(int(wire.CodeTooLarge))
				c.WriteError(tooBig.Corr, wire.CodeTooLarge, err.Error())
				continue
			}
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				log.Printf("serve: wire: closing %s: %v", c.RemoteAddr(), err)
			}
			return
		}
		s.metrics.WireFrame()
		switch f.Type {
		case wire.FrameDetect:
			s.wireDetect(ctx, wc, f)
		case wire.FrameStream:
			s.wireStream(ctx, wc, f)
		case wire.FrameHello:
			s.wireHello(wc, f)
		case wire.FramePing:
			c.WriteFrame(wire.Frame{Type: wire.FramePong, Corr: f.Corr})
		case wire.FrameHealthReq:
			s.wireHealth(c, f.Corr)
		case wire.FrameGoAway:
			// The client is draining its side; it will close when its
			// in-flight requests complete. Nothing to do server-side.
		default:
			if !f.Type.Known() {
				// Forward compatibility: skip with a warning, never kill
				// the connection over a frame we don't understand.
				s.metrics.WireUnknownFrame()
				log.Printf("serve: wire: skipping unknown frame type 0x%02x from %s", uint8(f.Type), c.RemoteAddr())
				continue
			}
			s.metrics.Request(int(wire.CodeBadRequest))
			c.WriteError(f.Corr, wire.CodeBadRequest, fmt.Sprintf("unexpected %v frame", f.Type))
		}
	}
}

// wireHello handles a client HELLO — the v1.1 opt-in, new in this
// direction (the server's own HELLO still opens every connection).
// Its metadata binds a connection-level tenant identity; per-frame
// tenant tags take precedence over it. The class advisory
// (wire.MetaClass) is for relays: this server resolves the
// authoritative class from its tenant registry.
func (s *Server) wireHello(wc *wireConn, f wire.Frame) {
	h, err := wire.DecodeHello(f.Payload)
	if err != nil {
		s.metrics.Request(int(wire.CodeBadRequest))
		wc.c.WriteError(f.Corr, wire.CodeBadRequest, err.Error())
		return
	}
	wc.extended.Store(true)
	if id, ok := h.Meta[wire.MetaTenant]; ok {
		wc.tenantID = id
	}
}

// writeWireError sends a typed ERROR with an optional backoff hint:
// extended (v1.1) peers get the machine-readable RetryAfterSec tail;
// legacy peers get only the message, whose text carries the hint.
func (s *Server) writeWireError(wc *wireConn, corr uint64, code wire.ErrorCode, msg string, retryAfter int) {
	e := wire.ErrorFrame{Code: code, Msg: msg}
	if retryAfter > 0 && retryAfter <= int(^uint16(0)) && wc.extended.Load() {
		e.RetryAfterSec = uint16(retryAfter)
	}
	wc.c.WriteFrame(wire.Frame{Type: wire.FrameError, Corr: corr, Payload: wire.AppendErrorFrame(nil, e)})
}

// rejectWireTenant writes the wire twin of rejectTenant: 403 for an
// unknown tenant, 429 with a jittered backoff hint for quota and
// pressure sheds.
func (s *Server) rejectWireTenant(wc *wireConn, corr uint64, adm *tenant.Admission) {
	s.metrics.TenantShed(adm.Tenant, adm.Class.String(), adm.Outcome.String())
	if adm.Outcome == tenant.Unknown {
		s.metrics.Request(int(wire.CodeForbidden))
		wc.c.WriteError(corr, wire.CodeForbidden, fmt.Sprintf("unknown tenant %q", adm.Tenant))
		return
	}
	s.metrics.Request(int(wire.CodeOverloaded))
	hint := s.jitter.RetryAfter()
	s.writeWireError(wc, corr, wire.CodeOverloaded, fmt.Sprintf("tenant %s over %s limit; retry in %ds", adm.Tenant, adm.Outcome, hint), hint)
}

// wireHealth answers a HEALTH_REQ with the same JSON report /healthz
// serves, carried opaquely in a HEALTH frame.
func (s *Server) wireHealth(c *wire.Conn, corr uint64) {
	report, code := s.healthReport()
	s.metrics.Request(code)
	payload, err := json.Marshal(report)
	if err != nil {
		c.WriteError(corr, wire.CodeInternal, err.Error())
		return
	}
	c.WriteFrame(wire.Frame{Type: wire.FrameHealth, Corr: corr, Payload: payload})
}

// wireDetect admits, decodes, and launches one DETECT frame. The flat
// queue probe and decode happen on the read loop (both are cheap and
// their typed rejections must preserve frame order); tenant QoS runs
// after decode — unlike the HTTP path, the per-frame tenant tag lives
// in the payload — and the dispatch itself runs in a tracked
// goroutine so the connection keeps multiplexing.
func (s *Server) wireDetect(ctx context.Context, wc *wireConn, f wire.Frame) {
	start := time.Now()
	c := wc.c
	if s.draining.Load() {
		s.metrics.Request(int(wire.CodeUnavailable))
		c.WriteError(f.Corr, wire.CodeUnavailable, "draining")
		return
	}
	// Admission control before any decode work, exactly like the HTTP
	// path: shed at the backpressure limit with a typed 429.
	select {
	case s.queue <- struct{}{}:
	default:
		s.metrics.QueueReject()
		s.metrics.Request(int(wire.CodeOverloaded))
		hint := s.jitter.RetryAfter()
		s.writeWireError(wc, f.Corr, wire.CodeOverloaded, fmt.Sprintf("detection queue full; retry in %ds", hint), hint)
		return
	}
	// Holding a queue token guarantees inflight capacity (same sizes).
	s.inflight <- struct{}{}
	release := func() { <-s.inflight; <-s.queue }

	req, err := wire.DecodeDetectRequest(f.Payload)
	if err != nil {
		release()
		s.metrics.Request(int(wire.CodeBadRequest))
		c.WriteError(f.Corr, wire.CodeBadRequest, err.Error())
		return
	}
	// Tenant QoS: the frame tag outranks the connection HELLO binding.
	var tenantID string
	var class tenant.Class
	var adm *tenant.Admission
	if s.tenants != nil {
		id := req.Tenant
		if id == "" {
			id = wc.tenantID
		}
		adm = s.tenants.Admit(id, s.admissionLoad())
		tenantID, class = adm.Tenant, adm.Class
		if !adm.OK() {
			release()
			s.rejectWireTenant(wc, f.Corr, adm)
			return
		}
		s.metrics.TenantAccepted(tenantID, class.String())
	}
	programs := make([]DecodedProgram, len(req.Programs))
	for i, p := range req.Programs {
		programs[i] = DecodedProgram{ID: p.ID, Windows: p.Windows}
	}
	if err := ValidatePrograms(programs, s.cfg.Limits); err != nil {
		release()
		if adm != nil {
			adm.Release()
		}
		s.metrics.Request(StatusOf(err))
		c.WriteError(f.Corr, wire.ErrorCode(StatusOf(err)), err.Error())
		return
	}
	deadline := req.Deadline()
	if deadline == 0 {
		deadline = s.cfg.DefaultDeadline
	}

	wc.wg.Add(1)
	go func() {
		defer wc.wg.Done()
		defer release()
		if adm != nil {
			defer adm.Release()
		}
		dctx := ctx
		if deadline > 0 {
			var cancel context.CancelFunc
			dctx, cancel = context.WithTimeout(dctx, deadline)
			defer cancel()
		}
		var out batchOutcome
		var err error
		if s.batcher != nil {
			out, err = s.batcher.dispatch(dctx, tenantID, programs)
		} else {
			out, err = s.dispatch(dctx, class, tenantID, programs)
		}
		if err != nil {
			s.failWireDetect(ctx, wc, f.Corr, err)
			return
		}
		if out.hedge {
			s.metrics.HedgeWin()
		}
		for _, res := range out.results {
			s.metrics.Decision(res.Malware, res.Unprotected)
		}
		payload, encErr := s.encodeVerdict(out, tenantID)
		if encErr != nil {
			s.metrics.Request(int(wire.CodeInternal))
			c.WriteError(f.Corr, wire.CodeInternal, encErr.Error())
			return
		}
		s.metrics.Request(200)
		s.metrics.Observe(time.Since(start))
		c.WriteFrame(wire.Frame{Type: wire.FrameVerdict, Corr: f.Corr, Payload: payload})
	}()
}

// encodeVerdict builds the VERDICT payload for a finished batch,
// tagging it with the serving tenant so identity round-trips
// bit-identically across transports.
func (s *Server) encodeVerdict(out batchOutcome, tenantID string) ([]byte, error) {
	results := make([]wire.VerdictResult, len(out.results))
	for i, res := range out.results {
		results[i] = wire.VerdictResult{
			ID:          res.ID,
			Malware:     res.Malware,
			Unprotected: res.Unprotected,
			Score:       res.Score,
			Confidence:  res.Confidence,
			Attempts:    uint32(res.Attempts),
			Windows:     uint32(res.Windows),
		}
	}
	return wire.AppendVerdict(nil, wire.Verdict{
		Session: int32(out.session),
		Hedged:  out.hedge,
		Results: results,
		Tenant:  tenantID,
	})
}

// wireStream handles one STREAM frame: an append to (or open/close
// of) a long-lived sliding-window detection stream. The stream keeps
// the trailing detection-period windows buffered server-side and
// re-scores them every stride appended windows, so a Pin-style
// collector ships each window once and still gets overlapping
// verdicts. Buffer bookkeeping runs on the read loop (appends must
// stay ordered); any triggered re-scorings dispatch in a tracked
// goroutine exactly like a DETECT, answering a VERDICT under the
// append's correlation id (zero results = ack, windows buffered but
// no re-scoring due).
//
// Tenant QoS is applied per append, not just at open: every
// window-carrying append charges the stream tenant's bucket, so a
// stream cannot smuggle unmetered load past admission.
func (s *Server) wireStream(ctx context.Context, wc *wireConn, f wire.Frame) {
	start := time.Now()
	c := wc.c
	if s.draining.Load() {
		s.metrics.Request(int(wire.CodeUnavailable))
		c.WriteError(f.Corr, wire.CodeUnavailable, "draining")
		return
	}
	req, err := wire.DecodeStreamRequest(f.Payload)
	if err != nil {
		s.metrics.Request(int(wire.CodeBadRequest))
		c.WriteError(f.Corr, wire.CodeBadRequest, err.Error())
		return
	}
	if wc.streams == nil {
		wc.streams = make(map[uint32]*windowStream)
	}
	st, open := wc.streams[req.StreamID]
	if !open {
		if req.Close {
			// Closing a stream that is not open is idempotent: ack.
			s.ackStream(c, f.Corr, "")
			return
		}
		if len(wc.streams) >= maxWireStreams {
			s.metrics.Request(int(wire.CodeOverloaded))
			hint := s.jitter.RetryAfter()
			s.writeWireError(wc, f.Corr, wire.CodeOverloaded, fmt.Sprintf("connection holds %d streams, limit %d", len(wc.streams), maxWireStreams), hint)
			return
		}
		st = &windowStream{
			label:  req.ID,
			period: s.cfg.Limits.MinWindows,
			stride: int(req.Stride),
		}
		if s.tenants != nil {
			id := req.Tenant
			if id == "" {
				id = wc.tenantID
			}
			look := s.tenants.Lookup(id)
			if !look.OK() {
				s.rejectWireTenant(wc, f.Corr, look)
				return
			}
			st.tenant, st.class = look.Tenant, look.Class
			if st.stride == 0 {
				st.stride = look.Stride
			}
		}
		if st.stride <= 0 {
			st.stride = st.period
		}
		wc.streams[req.StreamID] = st
	} else if req.Tenant != "" && req.Tenant != st.tenant {
		// An append cannot re-bill an open stream to another tenant.
		s.metrics.Request(int(wire.CodeBadRequest))
		c.WriteError(f.Corr, wire.CodeBadRequest, fmt.Sprintf("stream %d is bound to tenant %q, append tagged %q", req.StreamID, st.tenant, req.Tenant))
		return
	}
	if req.Close {
		defer delete(wc.streams, req.StreamID)
	}
	if len(req.Windows) == 0 {
		s.ackStream(c, f.Corr, st.tenant)
		return
	}

	// Per-append admission: tenant QoS first, then the flat queue,
	// mirroring the HTTP ordering. A shed append buffers nothing — the
	// client retries the same windows after the hint.
	var adm *tenant.Admission
	if s.tenants != nil {
		adm = s.tenants.Admit(st.tenant, s.admissionLoad())
		if !adm.OK() {
			s.rejectWireTenant(wc, f.Corr, adm)
			return
		}
		s.metrics.TenantAccepted(adm.Tenant, adm.Class.String())
	}
	select {
	case s.queue <- struct{}{}:
	default:
		s.metrics.QueueReject()
		if adm != nil {
			s.metrics.TenantShed(adm.Tenant, adm.Class.String(), "queue")
			adm.Release()
		}
		s.metrics.Request(int(wire.CodeOverloaded))
		hint := s.jitter.RetryAfter()
		s.writeWireError(wc, f.Corr, wire.CodeOverloaded, fmt.Sprintf("detection queue full; retry in %ds", hint), hint)
		return
	}
	s.inflight <- struct{}{}
	release := func() { <-s.inflight; <-s.queue }

	// Slide the buffer and collect the spans due for re-scoring.
	var programs []DecodedProgram
	for _, w := range req.Windows {
		st.buf = append(st.buf, w)
		if len(st.buf) > st.period {
			st.buf = st.buf[len(st.buf)-st.period:]
		}
		st.total++
		st.sinceScore++
		if len(st.buf) == st.period && st.sinceScore >= st.stride {
			span := make([]trace.WindowCounts, st.period)
			copy(span, st.buf)
			programs = append(programs, DecodedProgram{
				ID:      fmt.Sprintf("%s#%d", st.label, st.total),
				Windows: span,
			})
			st.sinceScore = 0
		}
	}
	if len(programs) == 0 {
		release()
		if adm != nil {
			adm.Release()
		}
		s.ackStream(c, f.Corr, st.tenant)
		return
	}

	tenantID, class := st.tenant, st.class
	wc.wg.Add(1)
	go func() {
		defer wc.wg.Done()
		defer release()
		if adm != nil {
			defer adm.Release()
		}
		dctx := ctx
		if s.cfg.DefaultDeadline > 0 {
			var cancel context.CancelFunc
			dctx, cancel = context.WithTimeout(dctx, s.cfg.DefaultDeadline)
			defer cancel()
		}
		var out batchOutcome
		var err error
		if s.batcher != nil {
			out, err = s.batcher.dispatch(dctx, tenantID, programs)
		} else {
			out, err = s.dispatch(dctx, class, tenantID, programs)
		}
		if err != nil {
			s.failWireDetect(ctx, wc, f.Corr, err)
			return
		}
		if out.hedge {
			s.metrics.HedgeWin()
		}
		for _, res := range out.results {
			s.metrics.Decision(res.Malware, res.Unprotected)
		}
		payload, encErr := s.encodeVerdict(out, tenantID)
		if encErr != nil {
			s.metrics.Request(int(wire.CodeInternal))
			c.WriteError(f.Corr, wire.CodeInternal, encErr.Error())
			return
		}
		s.metrics.Request(200)
		s.metrics.Observe(time.Since(start))
		c.WriteFrame(wire.Frame{Type: wire.FrameVerdict, Corr: f.Corr, Payload: payload})
	}()
}

// ackStream answers a STREAM append that triggered no re-scoring with
// an empty VERDICT under the append's correlation id.
func (s *Server) ackStream(c *wire.Conn, corr uint64, tenantID string) {
	payload, err := wire.AppendVerdict(nil, wire.Verdict{Session: -1, Tenant: tenantID})
	if err != nil {
		s.metrics.Request(int(wire.CodeInternal))
		c.WriteError(corr, wire.CodeInternal, err.Error())
		return
	}
	s.metrics.Request(200)
	c.WriteFrame(wire.Frame{Type: wire.FrameVerdict, Corr: corr, Payload: payload})
}

// failWireDetect maps a dispatch failure to its typed ERROR frame,
// mirroring the HTTP transport's failDetect status mapping so the two
// transports shed and fail with the same vocabulary.
func (s *Server) failWireDetect(connCtx context.Context, wc *wireConn, corr uint64, err error) {
	c := wc.c
	switch {
	case connCtx.Err() != nil:
		// The connection is gone; nobody is listening.
		s.metrics.Request(statusClientClosedRequest)
	case errors.Is(err, context.DeadlineExceeded):
		s.metrics.DeadlineExpired()
		s.metrics.Request(int(wire.CodeUnavailable))
		c.WriteError(corr, wire.CodeUnavailable, "detection deadline exceeded")
	case errors.Is(err, tenant.ErrQueueFull):
		s.metrics.QueueReject()
		s.metrics.Request(int(wire.CodeOverloaded))
		hint := s.jitter.RetryAfter()
		s.writeWireError(wc, corr, wire.CodeOverloaded, err.Error(), hint)
	case errors.Is(err, ErrPoolClosed):
		s.metrics.Request(int(wire.CodeUnavailable))
		c.WriteError(corr, wire.CodeUnavailable, err.Error())
	default:
		var ae *AcquireError
		if errors.As(err, &ae) {
			s.metrics.Request(int(wire.CodeUnavailable))
			c.WriteError(corr, wire.CodeUnavailable, err.Error())
			return
		}
		s.metrics.Request(int(wire.CodeInternal))
		c.WriteError(corr, wire.CodeInternal, err.Error())
	}
}
