package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// numLatencyBuckets sizes the fixed histogram.
const numLatencyBuckets = 12

// latencyBuckets are the histogram upper bounds in seconds, spanning
// sub-millisecond cache-warm inference to multi-second degraded
// batches.
var latencyBuckets = [numLatencyBuckets]float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// Metrics is the service's hand-rolled counter block, rendered in the
// Prometheus text exposition format. Hot-path updates are lock-free
// atomics; the status-code map takes a mutex only on a code's first
// appearance.
type Metrics struct {
	mu       sync.Mutex
	requests map[int]*atomic.Uint64

	decisionsMalware atomic.Uint64
	decisionsBenign  atomic.Uint64
	unprotected      atomic.Uint64
	queueRejects     atomic.Uint64
	hedges           atomic.Uint64
	hedgeWins        atomic.Uint64
	deadlineExpired  atomic.Uint64

	latencyCount atomic.Uint64
	latencySumNS atomic.Uint64
	latency      [numLatencyBuckets]atomic.Uint64 // non-cumulative per-bucket counts
	latencyOver  atomic.Uint64                    // observations above the last bound

	// Micro-batching: flush counters by reason, batch-size histogram,
	// and the per-lane wait between enqueue and flush.
	batchFlushFull  atomic.Uint64
	batchFlushTimer atomic.Uint64
	batchSizeCount  atomic.Uint64
	batchSizeSum    atomic.Uint64
	batchSize       [numBatchSizeBuckets]atomic.Uint64
	batchSizeOver   atomic.Uint64
	batchWaitCount  atomic.Uint64
	batchWaitSumNS  atomic.Uint64
	batchWait       [numBatchWaitBuckets]atomic.Uint64
	batchWaitOver   atomic.Uint64

	// SHMDWIRE transport: connection lifecycle, frame volume, and the
	// forward-compatibility skip counter.
	wireConnsTotal    atomic.Uint64
	wireConnsActive   atomic.Int64
	wireFrames        atomic.Uint64
	wireUnknownFrames atomic.Uint64
	wireGoAways       atomic.Uint64

	// Model registry: per-version decision counters and rollout
	// outcome counters. Versions are operator-minted (registry
	// registration gates them), so the label cardinality is bounded by
	// deployment practice, not by clients.
	modelMu       sync.Mutex
	modelSeries   map[uint32]*modelCounters
	modelRollouts map[string]*atomic.Uint64

	// Tenant QoS: per-tenant admission counters (cardinality-capped —
	// see tenantSeries) and per-class admission-gate wait histograms
	// (classes are a fixed enum, so their cardinality needs no guard).
	tenantMu       sync.Mutex
	tenantSeries   map[string]*tenantCounters
	tenantOverflow atomic.Uint64
	classWaitCount [numClasses]atomic.Uint64
	classWaitSumNS [numClasses]atomic.Uint64
	classWait      [numClasses][numClassWaitBuckets]atomic.Uint64
	classWaitOver  [numClasses]atomic.Uint64
}

// maxTenantSeries caps how many distinct tenant IDs get their own
// metric series. The tenant label is attacker-influenced (any client
// can mint IDs when a Default spec auto-registers them), so past the
// cap new tenants aggregate under the overflow label instead of
// growing the exposition without bound.
const maxTenantSeries = 64

// tenantOverflowLabel aggregates tenants past the cardinality cap.
const tenantOverflowLabel = "other"

// numClasses mirrors tenant.NumClasses without importing the package
// here; classLabel pins the correspondence.
const numClasses = 3

// classLabel names a class index in the exposition.
var classLabel = [numClasses]string{"batch", "standard", "realtime"}

// numClassWaitBuckets sizes the per-class gate-wait histogram.
const numClassWaitBuckets = 10

// classWaitBuckets are the gate-wait upper bounds in seconds: waits
// span an uncontended grant (sub-ms) to a queue drained behind
// multi-second degraded batches.
var classWaitBuckets = [numClassWaitBuckets]float64{
	0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// tenantCounters is one tenant's admission ledger. Shed reasons are a
// fixed enum (tenant.Outcome strings plus "queue"), so the inner map
// is bounded.
type tenantCounters struct {
	class    string
	accepted atomic.Uint64
	shed     map[string]*atomic.Uint64
}

// modelCounters is one model version's decision ledger.
type modelCounters struct {
	malware atomic.Uint64
	benign  atomic.Uint64
}

// numBatchSizeBuckets sizes the batch-size histogram.
const numBatchSizeBuckets = 7

// batchSizeBuckets are the histogram upper bounds in lanes, spanning a
// solo flush to the widest fused-kernel block.
var batchSizeBuckets = [numBatchSizeBuckets]float64{1, 2, 4, 8, 16, 32, 64}

// numBatchWaitBuckets sizes the batch-wait histogram.
const numBatchWaitBuckets = 10

// batchWaitBuckets are the histogram upper bounds in seconds: waits are
// bounded by MaxBatchWait, so the range sits well below the end-to-end
// latency buckets.
var batchWaitBuckets = [numBatchWaitBuckets]float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
}

// NewMetrics builds an empty counter block.
func NewMetrics() *Metrics {
	return &Metrics{requests: make(map[int]*atomic.Uint64)}
}

// Request records one served HTTP request by final status code.
func (m *Metrics) Request(code int) {
	m.mu.Lock()
	c, ok := m.requests[code]
	if !ok {
		c = new(atomic.Uint64)
		m.requests[code] = c
	}
	m.mu.Unlock()
	c.Add(1)
}

// Decision records one program verdict.
func (m *Metrics) Decision(malware, unprotected bool) {
	if malware {
		m.decisionsMalware.Add(1)
	} else {
		m.decisionsBenign.Add(1)
	}
	if unprotected {
		m.unprotected.Add(1)
	}
}

// QueueReject records one request shed with a 429.
func (m *Metrics) QueueReject() { m.queueRejects.Add(1) }

// Hedge records one hedged re-dispatch onto a second slot.
func (m *Metrics) Hedge() { m.hedges.Add(1) }

// HedgeWin records one reply won by the hedge runner.
func (m *Metrics) HedgeWin() { m.hedgeWins.Add(1) }

// DeadlineExpired records one request shed at its detection deadline.
func (m *Metrics) DeadlineExpired() { m.deadlineExpired.Add(1) }

// Hedges reports hedged re-dispatches.
func (m *Metrics) Hedges() uint64 { return m.hedges.Load() }

// HedgeWins reports replies won by the hedge runner.
func (m *Metrics) HedgeWins() uint64 { return m.hedgeWins.Load() }

// DeadlineExpirations reports requests shed at their deadline.
func (m *Metrics) DeadlineExpirations() uint64 { return m.deadlineExpired.Load() }

// Observe records one /v1/detect latency.
func (m *Metrics) Observe(d time.Duration) {
	m.latencyCount.Add(1)
	m.latencySumNS.Add(uint64(d.Nanoseconds()))
	s := d.Seconds()
	for i, le := range latencyBuckets {
		if s <= le {
			m.latency[i].Add(1)
			return
		}
	}
	m.latencyOver.Add(1)
}

// BatchFlush records one micro-batch flush with its trigger ("full" or
// "timer") and the number of lanes it carried.
func (m *Metrics) BatchFlush(reason string, size int) {
	if reason == "full" {
		m.batchFlushFull.Add(1)
	} else {
		m.batchFlushTimer.Add(1)
	}
	m.batchSizeCount.Add(1)
	m.batchSizeSum.Add(uint64(size))
	for i, le := range batchSizeBuckets {
		if float64(size) <= le {
			m.batchSize[i].Add(1)
			return
		}
	}
	m.batchSizeOver.Add(1)
}

// ObserveBatchWait records one lane's wait between enqueue and flush.
func (m *Metrics) ObserveBatchWait(d time.Duration) {
	m.batchWaitCount.Add(1)
	m.batchWaitSumNS.Add(uint64(d.Nanoseconds()))
	s := d.Seconds()
	for i, le := range batchWaitBuckets {
		if s <= le {
			m.batchWait[i].Add(1)
			return
		}
	}
	m.batchWaitOver.Add(1)
}

// BatchFlushes reports micro-batch flushes by trigger.
func (m *Metrics) BatchFlushes() (full, timer uint64) {
	return m.batchFlushFull.Load(), m.batchFlushTimer.Load()
}

// WireConnOpen records one accepted SHMDWIRE connection.
func (m *Metrics) WireConnOpen() {
	m.wireConnsTotal.Add(1)
	m.wireConnsActive.Add(1)
}

// WireConnClose records one closed SHMDWIRE connection.
func (m *Metrics) WireConnClose() { m.wireConnsActive.Add(-1) }

// WireFrame records one frame read from a SHMDWIRE connection.
func (m *Metrics) WireFrame() { m.wireFrames.Add(1) }

// WireUnknownFrame records one unknown-type frame skipped with a
// warning (forward compatibility, never fatal).
func (m *Metrics) WireUnknownFrame() { m.wireUnknownFrames.Add(1) }

// WireUnknownFrames reports skipped unknown-type frames.
func (m *Metrics) WireUnknownFrames() uint64 { return m.wireUnknownFrames.Load() }

// WireGoAway records one GOAWAY frame sent to a draining client.
func (m *Metrics) WireGoAway() { m.wireGoAways.Add(1) }

// ModelDecision records one winning verdict against the model version
// that produced it.
func (m *Metrics) ModelDecision(version uint32, malware bool) {
	m.modelMu.Lock()
	if m.modelSeries == nil {
		m.modelSeries = make(map[uint32]*modelCounters)
	}
	mc, ok := m.modelSeries[version]
	if !ok {
		mc = &modelCounters{}
		m.modelSeries[version] = mc
	}
	m.modelMu.Unlock()
	if malware {
		mc.malware.Add(1)
	} else {
		mc.benign.Add(1)
	}
}

// ModelRollout records one finished rollout by outcome ("promoted",
// "rolledback", or "aborted").
func (m *Metrics) ModelRollout(outcome string) {
	m.modelMu.Lock()
	if m.modelRollouts == nil {
		m.modelRollouts = make(map[string]*atomic.Uint64)
	}
	c, ok := m.modelRollouts[outcome]
	if !ok {
		c = new(atomic.Uint64)
		m.modelRollouts[outcome] = c
	}
	m.modelMu.Unlock()
	c.Add(1)
}

// ModelRollouts reports finished rollouts for an outcome.
func (m *Metrics) ModelRollouts(outcome string) uint64 {
	m.modelMu.Lock()
	defer m.modelMu.Unlock()
	if c, ok := m.modelRollouts[outcome]; ok {
		return c.Load()
	}
	return 0
}

// writeModelProm renders the per-version decision counters and the
// rollout outcome counters, sorted for a deterministic exposition.
func (m *Metrics) writeModelProm(w io.Writer) {
	m.modelMu.Lock()
	versions := make([]uint32, 0, len(m.modelSeries))
	for v := range m.modelSeries {
		versions = append(versions, v)
	}
	sort.Slice(versions, func(i, j int) bool { return versions[i] < versions[j] })
	type decRow struct {
		version          uint32
		malware, benign  uint64
	}
	decs := make([]decRow, 0, len(versions))
	for _, v := range versions {
		mc := m.modelSeries[v]
		decs = append(decs, decRow{v, mc.malware.Load(), mc.benign.Load()})
	}
	outcomes := make([]string, 0, len(m.modelRollouts))
	for o := range m.modelRollouts {
		outcomes = append(outcomes, o)
	}
	sort.Strings(outcomes)
	rolls := make(map[string]uint64, len(outcomes))
	for _, o := range outcomes {
		rolls[o] = m.modelRollouts[o].Load()
	}
	m.modelMu.Unlock()
	if len(decs) > 0 {
		fmt.Fprintln(w, "# HELP shmd_model_decisions_total Winning verdicts, by model version and class.")
		fmt.Fprintln(w, "# TYPE shmd_model_decisions_total counter")
		for _, r := range decs {
			fmt.Fprintf(w, "shmd_model_decisions_total{version=\"%d\",verdict=\"malware\"} %d\n", r.version, r.malware)
			fmt.Fprintf(w, "shmd_model_decisions_total{version=\"%d\",verdict=\"benign\"} %d\n", r.version, r.benign)
		}
	}
	if len(outcomes) > 0 {
		fmt.Fprintln(w, "# HELP shmd_model_rollouts_total Finished canary rollouts, by outcome.")
		fmt.Fprintln(w, "# TYPE shmd_model_rollouts_total counter")
		for _, o := range outcomes {
			fmt.Fprintf(w, "shmd_model_rollouts_total{outcome=%q} %d\n", o, rolls[o])
		}
	}
}

// tenantEntry resolves (creating on first sight) the counter row for a
// tenant, folding tenants past the cardinality cap into the overflow
// row. Callers hold tenantMu.
func (m *Metrics) tenantEntry(tenant, class string) *tenantCounters {
	if m.tenantSeries == nil {
		m.tenantSeries = make(map[string]*tenantCounters)
	}
	if tc, ok := m.tenantSeries[tenant]; ok {
		return tc
	}
	if len(m.tenantSeries) >= maxTenantSeries {
		m.tenantOverflow.Add(1)
		tenant = tenantOverflowLabel
		// The overflow row mixes classes; label it by its own name so
		// the series stays stable whatever lands in it.
		class = tenantOverflowLabel
		if tc, ok := m.tenantSeries[tenant]; ok {
			return tc
		}
	}
	tc := &tenantCounters{class: class, shed: make(map[string]*atomic.Uint64)}
	m.tenantSeries[tenant] = tc
	return tc
}

// TenantAccepted records one admitted request for a tenant.
func (m *Metrics) TenantAccepted(tenant, class string) {
	m.tenantMu.Lock()
	tc := m.tenantEntry(tenant, class)
	m.tenantMu.Unlock()
	tc.accepted.Add(1)
}

// TenantShed records one rejected request for a tenant with its shed
// reason ("rate", "concurrency", "pressure", "unknown", or "queue").
func (m *Metrics) TenantShed(tenant, class, reason string) {
	m.tenantMu.Lock()
	tc := m.tenantEntry(tenant, class)
	c, ok := tc.shed[reason]
	if !ok {
		c = new(atomic.Uint64)
		tc.shed[reason] = c
	}
	m.tenantMu.Unlock()
	c.Add(1)
}

// TenantSeriesCount reports the distinct tenant rows (tests pin the
// cardinality cap with it).
func (m *Metrics) TenantSeriesCount() int {
	m.tenantMu.Lock()
	defer m.tenantMu.Unlock()
	return len(m.tenantSeries)
}

// ObserveClassWait records one admission-gate wait for a priority
// class (index per classLabel).
func (m *Metrics) ObserveClassWait(class int, d time.Duration) {
	if class < 0 || class >= numClasses {
		return
	}
	m.classWaitCount[class].Add(1)
	m.classWaitSumNS[class].Add(uint64(d.Nanoseconds()))
	s := d.Seconds()
	for i, le := range classWaitBuckets {
		if s <= le {
			m.classWait[class][i].Add(1)
			return
		}
	}
	m.classWaitOver[class].Add(1)
}

// WriteProm renders every counter plus per-session pool gauges in the
// Prometheus text format.
func (m *Metrics) WriteProm(w io.Writer, pool *Pool) {
	fmt.Fprintln(w, "# HELP shmd_requests_total HTTP requests served, by final status code.")
	fmt.Fprintln(w, "# TYPE shmd_requests_total counter")
	m.mu.Lock()
	codes := make([]int, 0, len(m.requests))
	for code := range m.requests {
		codes = append(codes, code)
	}
	sort.Ints(codes)
	counts := make(map[int]uint64, len(codes))
	for _, code := range codes {
		counts[code] = m.requests[code].Load()
	}
	m.mu.Unlock()
	for _, code := range codes {
		fmt.Fprintf(w, "shmd_requests_total{code=\"%d\"} %d\n", code, counts[code])
	}

	fmt.Fprintln(w, "# HELP shmd_decisions_total Program verdicts returned, by class.")
	fmt.Fprintln(w, "# TYPE shmd_decisions_total counter")
	fmt.Fprintf(w, "shmd_decisions_total{verdict=\"malware\"} %d\n", m.decisionsMalware.Load())
	fmt.Fprintf(w, "shmd_decisions_total{verdict=\"benign\"} %d\n", m.decisionsBenign.Load())

	fmt.Fprintln(w, "# HELP shmd_unprotected_decisions_total Verdicts served degraded at nominal voltage.")
	fmt.Fprintln(w, "# TYPE shmd_unprotected_decisions_total counter")
	fmt.Fprintf(w, "shmd_unprotected_decisions_total %d\n", m.unprotected.Load())

	fmt.Fprintln(w, "# HELP shmd_queue_rejects_total Requests shed with 429 at the backpressure limit.")
	fmt.Fprintln(w, "# TYPE shmd_queue_rejects_total counter")
	fmt.Fprintf(w, "shmd_queue_rejects_total %d\n", m.queueRejects.Load())

	fmt.Fprintln(w, "# HELP shmd_hedged_dispatches_total Batches re-dispatched onto a second slot past the hedge budget.")
	fmt.Fprintln(w, "# TYPE shmd_hedged_dispatches_total counter")
	fmt.Fprintf(w, "shmd_hedged_dispatches_total %d\n", m.hedges.Load())

	fmt.Fprintln(w, "# HELP shmd_hedge_wins_total Replies won by the hedge runner.")
	fmt.Fprintln(w, "# TYPE shmd_hedge_wins_total counter")
	fmt.Fprintf(w, "shmd_hedge_wins_total %d\n", m.hedgeWins.Load())

	fmt.Fprintln(w, "# HELP shmd_deadline_expirations_total Requests shed at their detection deadline.")
	fmt.Fprintln(w, "# TYPE shmd_deadline_expirations_total counter")
	fmt.Fprintf(w, "shmd_deadline_expirations_total %d\n", m.deadlineExpired.Load())

	fmt.Fprintln(w, "# HELP shmd_detect_duration_seconds /v1/detect handling latency.")
	fmt.Fprintln(w, "# TYPE shmd_detect_duration_seconds histogram")
	cum := uint64(0)
	for i, le := range latencyBuckets {
		cum += m.latency[i].Load()
		fmt.Fprintf(w, "shmd_detect_duration_seconds_bucket{le=\"%g\"} %d\n", le, cum)
	}
	cum += m.latencyOver.Load()
	fmt.Fprintf(w, "shmd_detect_duration_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "shmd_detect_duration_seconds_sum %g\n", float64(m.latencySumNS.Load())/1e9)
	fmt.Fprintf(w, "shmd_detect_duration_seconds_count %d\n", m.latencyCount.Load())

	fmt.Fprintln(w, "# HELP shmd_batch_flush_total Micro-batch flushes, by trigger.")
	fmt.Fprintln(w, "# TYPE shmd_batch_flush_total counter")
	fmt.Fprintf(w, "shmd_batch_flush_total{reason=\"full\"} %d\n", m.batchFlushFull.Load())
	fmt.Fprintf(w, "shmd_batch_flush_total{reason=\"timer\"} %d\n", m.batchFlushTimer.Load())

	fmt.Fprintln(w, "# HELP shmd_batch_size Lanes per micro-batch flush.")
	fmt.Fprintln(w, "# TYPE shmd_batch_size histogram")
	cum = 0
	for i, le := range batchSizeBuckets {
		cum += m.batchSize[i].Load()
		fmt.Fprintf(w, "shmd_batch_size_bucket{le=\"%g\"} %d\n", le, cum)
	}
	cum += m.batchSizeOver.Load()
	fmt.Fprintf(w, "shmd_batch_size_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "shmd_batch_size_sum %d\n", m.batchSizeSum.Load())
	fmt.Fprintf(w, "shmd_batch_size_count %d\n", m.batchSizeCount.Load())

	fmt.Fprintln(w, "# HELP shmd_batch_wait_seconds Per-lane wait between enqueue and batch flush.")
	fmt.Fprintln(w, "# TYPE shmd_batch_wait_seconds histogram")
	cum = 0
	for i, le := range batchWaitBuckets {
		cum += m.batchWait[i].Load()
		fmt.Fprintf(w, "shmd_batch_wait_seconds_bucket{le=\"%g\"} %d\n", le, cum)
	}
	cum += m.batchWaitOver.Load()
	fmt.Fprintf(w, "shmd_batch_wait_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "shmd_batch_wait_seconds_sum %g\n", float64(m.batchWaitSumNS.Load())/1e9)
	fmt.Fprintf(w, "shmd_batch_wait_seconds_count %d\n", m.batchWaitCount.Load())

	fmt.Fprintln(w, "# HELP shmd_wire_connections_total SHMDWIRE connections accepted since boot.")
	fmt.Fprintln(w, "# TYPE shmd_wire_connections_total counter")
	fmt.Fprintf(w, "shmd_wire_connections_total %d\n", m.wireConnsTotal.Load())

	fmt.Fprintln(w, "# HELP shmd_wire_connections_active SHMDWIRE connections currently open.")
	fmt.Fprintln(w, "# TYPE shmd_wire_connections_active gauge")
	fmt.Fprintf(w, "shmd_wire_connections_active %d\n", m.wireConnsActive.Load())

	fmt.Fprintln(w, "# HELP shmd_wire_frames_total Frames read off SHMDWIRE connections.")
	fmt.Fprintln(w, "# TYPE shmd_wire_frames_total counter")
	fmt.Fprintf(w, "shmd_wire_frames_total %d\n", m.wireFrames.Load())

	fmt.Fprintln(w, "# HELP shmd_wire_unknown_frames_total Unknown-type frames skipped with a warning.")
	fmt.Fprintln(w, "# TYPE shmd_wire_unknown_frames_total counter")
	fmt.Fprintf(w, "shmd_wire_unknown_frames_total %d\n", m.wireUnknownFrames.Load())

	fmt.Fprintln(w, "# HELP shmd_wire_goaways_total GOAWAY frames sent to draining clients.")
	fmt.Fprintln(w, "# TYPE shmd_wire_goaways_total counter")
	fmt.Fprintf(w, "shmd_wire_goaways_total %d\n", m.wireGoAways.Load())

	m.writeModelProm(w)
	m.writeTenantProm(w)

	if pool != nil {
		writePoolProm(w, pool)
	}
}

// writeTenantProm renders the per-tenant admission counters and the
// per-class gate-wait histograms. Tenant rows are sorted so the
// exposition is deterministic.
func (m *Metrics) writeTenantProm(w io.Writer) {
	m.tenantMu.Lock()
	names := make([]string, 0, len(m.tenantSeries))
	for name := range m.tenantSeries {
		names = append(names, name)
	}
	sort.Strings(names)
	type shedRow struct {
		tenant, class, reason string
		n                     uint64
	}
	type accRow struct {
		tenant, class string
		n             uint64
	}
	var accepted []accRow
	var shed []shedRow
	for _, name := range names {
		tc := m.tenantSeries[name]
		accepted = append(accepted, accRow{name, tc.class, tc.accepted.Load()})
		reasons := make([]string, 0, len(tc.shed))
		for reason := range tc.shed {
			reasons = append(reasons, reason)
		}
		sort.Strings(reasons)
		for _, reason := range reasons {
			shed = append(shed, shedRow{name, tc.class, reason, tc.shed[reason].Load()})
		}
	}
	m.tenantMu.Unlock()
	if len(accepted) > 0 {
		fmt.Fprintln(w, "# HELP shmd_tenant_accepted_total Requests admitted, by tenant and priority class.")
		fmt.Fprintln(w, "# TYPE shmd_tenant_accepted_total counter")
		for _, r := range accepted {
			fmt.Fprintf(w, "shmd_tenant_accepted_total{tenant=%q,class=%q} %d\n", r.tenant, r.class, r.n)
		}
	}
	if len(shed) > 0 {
		fmt.Fprintln(w, "# HELP shmd_tenant_shed_total Requests rejected, by tenant, class, and shed reason.")
		fmt.Fprintln(w, "# TYPE shmd_tenant_shed_total counter")
		for _, r := range shed {
			fmt.Fprintf(w, "shmd_tenant_shed_total{tenant=%q,class=%q,reason=%q} %d\n", r.tenant, r.class, r.reason, r.n)
		}
	}
	if m.tenantOverflow.Load() > 0 {
		fmt.Fprintln(w, "# HELP shmd_tenant_label_overflow_total Admissions folded into the overflow tenant label at the cardinality cap.")
		fmt.Fprintln(w, "# TYPE shmd_tenant_label_overflow_total counter")
		fmt.Fprintf(w, "shmd_tenant_label_overflow_total %d\n", m.tenantOverflow.Load())
	}

	fmt.Fprintln(w, "# HELP shmd_tenant_queue_wait_seconds Admission-gate wait before a pool slot, by priority class.")
	fmt.Fprintln(w, "# TYPE shmd_tenant_queue_wait_seconds histogram")
	for c := 0; c < numClasses; c++ {
		cum := uint64(0)
		for i, le := range classWaitBuckets {
			cum += m.classWait[c][i].Load()
			fmt.Fprintf(w, "shmd_tenant_queue_wait_seconds_bucket{class=%q,le=\"%g\"} %d\n", classLabel[c], le, cum)
		}
		cum += m.classWaitOver[c].Load()
		fmt.Fprintf(w, "shmd_tenant_queue_wait_seconds_bucket{class=%q,le=\"+Inf\"} %d\n", classLabel[c], cum)
		fmt.Fprintf(w, "shmd_tenant_queue_wait_seconds_sum{class=%q} %g\n", classLabel[c], float64(m.classWaitSumNS[c].Load())/1e9)
		fmt.Fprintf(w, "shmd_tenant_queue_wait_seconds_count{class=%q} %d\n", classLabel[c], m.classWaitCount[c].Load())
	}
}

// writePoolProm renders the per-session supervisor gauges: recovery
// state, health counters, and the fault-rate canary readings.
func writePoolProm(w io.Writer, pool *Pool) {
	fmt.Fprintln(w, "# HELP shmd_pool_sessions Pooled supervised sessions.")
	fmt.Fprintln(w, "# TYPE shmd_pool_sessions gauge")
	fmt.Fprintf(w, "shmd_pool_sessions %d\n", pool.Size())

	fmt.Fprintln(w, "# HELP shmd_pool_double_checkouts_total Session-exclusivity violations (must be 0).")
	fmt.Fprintln(w, "# TYPE shmd_pool_double_checkouts_total counter")
	fmt.Fprintf(w, "shmd_pool_double_checkouts_total %d\n", pool.DoubleCheckouts())

	fmt.Fprintln(w, "# HELP shmd_pool_quarantines_total Slots pulled from rotation as terminally degraded.")
	fmt.Fprintln(w, "# TYPE shmd_pool_quarantines_total counter")
	fmt.Fprintf(w, "shmd_pool_quarantines_total %d\n", pool.Quarantines())

	fmt.Fprintln(w, "# HELP shmd_pool_respawns_total Quarantined slots rebuilt and returned to rotation.")
	fmt.Fprintln(w, "# TYPE shmd_pool_respawns_total counter")
	fmt.Fprintf(w, "shmd_pool_respawns_total %d\n", pool.Respawns())

	fmt.Fprintln(w, "# HELP shmd_pool_quarantined Slots currently out of rotation (quarantined or respawning).")
	fmt.Fprintln(w, "# TYPE shmd_pool_quarantined gauge")
	fmt.Fprintf(w, "shmd_pool_quarantined %d\n", pool.QuarantinedNow())

	type row struct {
		name  string
		value func(*Slot) string
	}
	rows := []row{
		{"shmd_session_state", func(s *Slot) string { return fmt.Sprintf("%d", int(s.Sup.State())) }},
		{"shmd_session_generation", func(s *Slot) string { return fmt.Sprintf("%d", s.Gen) }},
		{"shmd_session_lifecycle", func(s *Slot) string { return fmt.Sprintf("%d", int(s.Lifecycle())) }},
		{"shmd_session_model_version", func(s *Slot) string { return fmt.Sprintf("%d", s.Model) }},
		{"shmd_session_target_fault_rate", func(s *Slot) string { return fmt.Sprintf("%g", s.Sup.TargetRate()) }},
		{"shmd_session_undervolt_mv", func(s *Slot) string { return fmt.Sprintf("%g", s.Sup.Session().Depth()) }},
		{"shmd_session_supply_volts", func(s *Slot) string { return fmt.Sprintf("%g", s.Det.SupplyVoltage()) }},
	}
	help := map[string]string{
		"shmd_session_state":             "Supervisor recovery state (0 healthy, 1 retrying, 2 degraded).",
		"shmd_session_generation":        "Rebuild generation of the slot occupying this index (0 = boot slot).",
		"shmd_session_lifecycle":         "Slot lifecycle state (0 active, 1 quarantined, 2 respawning).",
		"shmd_session_model_version":     "Registry version of the model this slot serves (0 = compiled-in).",
		"shmd_session_target_fault_rate": "Calibrated fault rate the canary defends.",
		"shmd_session_undervolt_mv":      "Detection-time undervolt depth applied on enter.",
		"shmd_session_supply_volts":      "Current supply voltage (nominal between detections).",
	}
	for _, r := range rows {
		fmt.Fprintf(w, "# HELP %s %s\n", r.name, help[r.name])
		fmt.Fprintf(w, "# TYPE %s gauge\n", r.name)
		for _, slot := range pool.Slots() {
			fmt.Fprintf(w, "%s{session=\"%d\"} %s\n", r.name, slot.ID, r.value(slot))
		}
	}

	counters := []struct {
		name, help string
		value      func(h healthSnapshot) uint64
	}{
		{"shmd_session_detections_total", "Detection requests served.", func(h healthSnapshot) uint64 { return h.Detections }},
		{"shmd_session_protected_total", "Detections served undervolted.", func(h healthSnapshot) uint64 { return h.Protected }},
		{"shmd_session_unprotected_total", "Detections served degraded.", func(h healthSnapshot) uint64 { return h.Unprotected }},
		{"shmd_session_retries_total", "Faulted cycle retries.", func(h healthSnapshot) uint64 { return h.Retries }},
		{"shmd_session_failures_total", "Detection requests whose protected attempts all faulted.", func(h healthSnapshot) uint64 { return h.Failures }},
		{"shmd_session_breaker_trips_total", "Circuit-breaker trips into degraded mode.", func(h healthSnapshot) uint64 { return h.Trips }},
		{"shmd_session_recoveries_total", "Breaker recoveries back to protected mode.", func(h healthSnapshot) uint64 { return h.Recoveries }},
		{"shmd_session_canaries_total", "Known-answer fault-rate canary probes run.", func(h healthSnapshot) uint64 { return h.Canaries }},
		{"shmd_session_drifts_total", "Canary probes that found the rate outside tolerance.", func(h healthSnapshot) uint64 { return h.Drifts }},
		{"shmd_session_recalibrations_total", "Successful undervolt-depth recalibrations.", func(h healthSnapshot) uint64 { return h.Recalibrations }},
		{"shmd_session_canary_failures_total", "Canary probes that could not run at all.", func(h healthSnapshot) uint64 { return h.CanaryFailures }},
	}
	snaps := make([]healthSnapshot, pool.Size())
	for i, slot := range pool.Slots() {
		snaps[i] = snapshotHealth(slot)
	}
	for _, c := range counters {
		fmt.Fprintf(w, "# HELP %s %s\n", c.name, c.help)
		fmt.Fprintf(w, "# TYPE %s counter\n", c.name)
		for i := range snaps {
			fmt.Fprintf(w, "%s{session=\"%d\"} %d\n", c.name, i, c.value(snaps[i]))
		}
	}

	fmt.Fprintln(w, "# HELP shmd_session_canary_fault_rate Last observed known-answer canary fault rate (-1 before the first probe).")
	fmt.Fprintln(w, "# TYPE shmd_session_canary_fault_rate gauge")
	for i := range snaps {
		rate := -1.0
		if snaps[i].CanaryValid {
			rate = snaps[i].LastCanaryRate
		}
		fmt.Fprintf(w, "shmd_session_canary_fault_rate{session=\"%d\"} %g\n", i, rate)
	}
}

// healthSnapshot mirrors core.Health plus derived fields, decoupling
// the renderer from lock-holding reads.
type healthSnapshot struct {
	Detections, Protected, Unprotected   uint64
	Retries, Failures, Trips, Recoveries uint64
	Canaries, Drifts, Recalibrations     uint64
	CanaryFailures                       uint64
	LastCanaryRate                       float64
	CanaryValid                          bool
}

// snapshotHealth reads one slot's supervisor counters.
func snapshotHealth(slot *Slot) healthSnapshot {
	h := slot.Sup.Health()
	return healthSnapshot{
		Detections:     h.Detections,
		Protected:      h.Protected,
		Unprotected:    h.Unprotected,
		Retries:        h.Retries,
		Failures:       h.Failures,
		Trips:          h.Trips,
		Recoveries:     h.Recoveries,
		Canaries:       h.Canaries,
		Drifts:         h.Drifts,
		Recalibrations: h.Recalibrations,
		CanaryFailures: h.CanaryFailures,
		LastCanaryRate: h.LastCanaryRate,
		CanaryValid:    h.Canaries > 0,
	}
}
