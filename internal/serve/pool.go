package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"shmd/internal/chaos"
	"shmd/internal/core"
	"shmd/internal/faults"
	"shmd/internal/hmd"
	"shmd/internal/rng"
	"shmd/internal/volt"
)

// poolStreamLabel separates the pool slots' fault streams from every
// other labelled stream in the repo (0x5BD detector, 0x5A4D sharding).
const poolStreamLabel = 0x5E54

// PoolConfig sizes and seeds a session pool.
type PoolConfig struct {
	// Size is the number of pooled sessions (default 4). Each slot owns
	// a buffer-fresh copy of the detector, its own voltage plane, its
	// own fault stream, and its own supervisor, so slots never contend
	// on anything but the checkout channel.
	Size int
	// ErrorRate / UndervoltMV select the operating point, exactly as
	// core.Options (mutually exclusive; both zero means nominal).
	ErrorRate   float64
	UndervoltMV float64
	// Seed roots the per-slot fault streams.
	Seed uint64
	// Chaos builds each slot on a fault-injecting chaos.Env instead of
	// the ideal regulator, so the supervisors have faults to ride out.
	Chaos bool
	// ChaosConfig overrides the per-slot chaos configuration (implies
	// Chaos; a zero Seed is replaced with the slot's derived seed).
	// Tests use an empty-rule config plus scripted Env triggers.
	ChaosConfig *chaos.Config
	// Supervisor tunes the per-slot recovery machinery.
	Supervisor core.SupervisorConfig
	// Lifecycle tunes quarantine/respawn of terminally degraded slots
	// (opt-in via Lifecycle.Enabled).
	Lifecycle LifecycleConfig
	// JournalPath, when set, persists each slot's calibrated operating
	// point to a crash-safe journal. On startup a journaled depth is
	// adopted and verified with a canary read instead of recalibrating
	// from scratch; corrupt or stale journals are discarded, logged,
	// and regenerated.
	JournalPath string
	// JournalMaxAge ages journal entries out (0 = DefaultJournalMaxAge;
	// negative = never stale).
	JournalMaxAge time.Duration
	// Logf receives lifecycle and journal log lines (nil = silent).
	Logf func(format string, args ...any)
	// TraceDraws enables per-decision draw recording on every slot's
	// detector (set by the server when a trace sink is configured).
	// Recording is observational: verdicts are bit-identical either way.
	TraceDraws bool
	// ModelVersion is the registry version of the base detector (0 for
	// a compiled-in model outside a registry deployment). Slots carry
	// their model version for metrics, traces, and canary rollout.
	ModelVersion uint32
}

// withDefaults fills unset fields.
func (cfg PoolConfig) withDefaults() PoolConfig {
	if cfg.Size == 0 {
		cfg.Size = 4
	}
	cfg.Lifecycle = cfg.Lifecycle.withDefaults()
	return cfg
}

// LifecycleState is a slot's position in the lifecycle state machine:
// active → quarantined → respawning → active (as a fresh slot).
type LifecycleState int32

const (
	// SlotActive: the slot is in rotation (parked or checked out).
	SlotActive LifecycleState = iota
	// SlotQuarantined: the slot tripped terminal degradation and has
	// been pulled from rotation; teardown is imminent.
	SlotQuarantined
	// SlotRespawning: the quarantined slot is being torn down and
	// rebuilt from the base detector with a fresh fault stream.
	SlotRespawning
)

// String names the lifecycle state for health reports and logs.
func (s LifecycleState) String() string {
	switch s {
	case SlotActive:
		return "active"
	case SlotQuarantined:
		return "quarantined"
	case SlotRespawning:
		return "respawning"
	default:
		return fmt.Sprintf("serve.LifecycleState(%d)", int32(s))
	}
}

// Slot is one pooled supervised session.
type Slot struct {
	// ID is the slot index, echoed in responses and metrics labels.
	ID int
	// Gen counts rebuilds of this slot index: 0 for the boot-time slot,
	// incremented on every respawn. The slot's derived fault-stream
	// seed folds Gen in, so a respawned slot never replays its
	// predecessor's stochastic trajectory.
	Gen int
	// Sup is the slot's self-healing supervisor.
	Sup *core.Supervisor
	// Det is the slot's stochastic detector (metrics read its voltage).
	Det *core.StochasticHMD
	// Seed is the slot's derived fault-stream seed (recorded in decision
	// traces so an auditor can tie a verdict back to its stream lineage).
	Seed uint64
	// Model is the registry version of the detector this slot serves
	// (0 = the compiled-in model). Respawns preserve it; Roll changes
	// it by rebuilding the slot.
	Model uint32

	// busy guards the exclusivity invariant: 0 parked, 1 checked out.
	busy atomic.Int32
	// lifecycle is the slot's lifecycle state (see LifecycleState).
	lifecycle atomic.Int32
	// degradedReleases counts consecutive releases observed with the
	// breaker open. Only touched while the slot is exclusively owned.
	degradedReleases int
}

// Lifecycle returns the slot's lifecycle state.
func (s *Slot) Lifecycle() LifecycleState { return LifecycleState(s.lifecycle.Load()) }

// Pool is a fixed set of supervised stochastic sessions with
// channel-based checkout. Every slot wraps its own buffer-fresh
// detector copy (hmd.WithFreshBuffers via core construction), so two
// in-flight requests can never share scratch buffers, fault streams,
// or voltage planes.
//
// With Lifecycle.Enabled the pool also manages slot lifetimes: a slot
// that trips terminal degradation (dead plane, wedged voltage, breaker
// open past the budget, repeated canary failure) is quarantined out of
// rotation and respawned from the base detector under capped
// exponential backoff.
type Pool struct {
	base *hmd.HMD
	cfg  PoolConfig

	// mu guards all (respawns swap slots while metrics/health read).
	mu  sync.RWMutex
	all []*Slot

	// modelsMu guards models, the version → detector table slots are
	// built from. Respawns keep a slot's version; Roll rebuilds a slot
	// onto a different one.
	modelsMu sync.RWMutex
	models   map[uint32]*hmd.HMD

	slots     chan *Slot
	closed    atomic.Bool
	closeOnce sync.Once
	stop      chan struct{}
	respawnWG sync.WaitGroup

	// doubleCheckouts counts violations of the exclusivity invariant
	// (always zero unless the checkout discipline is broken).
	doubleCheckouts atomic.Uint64
	respawns        atomic.Uint64
	quarantines     atomic.Uint64
	quarantinedNow  atomic.Int64
	rolls           atomic.Uint64

	journal *journalStore // nil when journaling is disabled
}

// NewPool builds cfg.Size supervised sessions around base.
func NewPool(base *hmd.HMD, cfg PoolConfig) (*Pool, error) {
	if base == nil {
		return nil, fmt.Errorf("serve: nil base detector")
	}
	cfg = cfg.withDefaults()
	if cfg.Size < 1 {
		return nil, fmt.Errorf("serve: pool size %d < 1", cfg.Size)
	}
	p := &Pool{
		base:   base,
		cfg:    cfg,
		models: map[uint32]*hmd.HMD{cfg.ModelVersion: base},
		slots:  make(chan *Slot, cfg.Size),
		stop:   make(chan struct{}),
	}
	if cfg.JournalPath != "" {
		p.journal = newJournalStore(cfg.JournalPath, cfg.JournalMaxAge, p.logf)
	}
	for i := 0; i < cfg.Size; i++ {
		slot, err := p.buildSlot(i, 0, cfg.ModelVersion)
		if err != nil {
			return nil, fmt.Errorf("serve: building pool slot %d: %w", i, err)
		}
		p.all = append(p.all, slot)
		p.slots <- slot
	}
	return p, nil
}

// RegisterModel makes a detector available for Roll under a version
// number. Registering the same detector twice is a no-op; a different
// detector under a taken version is an error (the registry's
// fingerprint check is the authority — the pool just refuses silent
// swaps).
func (p *Pool) RegisterModel(version uint32, det *hmd.HMD) error {
	if det == nil {
		return fmt.Errorf("serve: nil detector for model version %d", version)
	}
	p.modelsMu.Lock()
	defer p.modelsMu.Unlock()
	if old, ok := p.models[version]; ok && old != det {
		return fmt.Errorf("serve: model version %d already bound to a different detector", version)
	}
	p.models[version] = det
	return nil
}

// model resolves a registered model version.
func (p *Pool) model(version uint32) (*hmd.HMD, error) {
	p.modelsMu.RLock()
	defer p.modelsMu.RUnlock()
	det, ok := p.models[version]
	if !ok {
		return nil, fmt.Errorf("serve: model version %d not registered with pool", version)
	}
	return det, nil
}

// logf forwards to the configured logger, if any.
func (p *Pool) logf(format string, args ...any) {
	if p.cfg.Logf != nil {
		p.cfg.Logf(format, args...)
	}
}

// buildSlot builds one pooled session — detector copy, hardware,
// supervisor — for slot index i at rebuild generation gen, serving the
// given model version. When a fresh journal entry covers this device
// and rate, the slot boots at the journaled depth and verifies it with
// a canary read instead of running the full calibration flow.
func (p *Pool) buildSlot(i, gen int, version uint32) (*Slot, error) {
	base, err := p.model(version)
	if err != nil {
		return nil, err
	}
	cfg := p.cfg
	opts := core.Options{
		ErrorRate:   cfg.ErrorRate,
		UndervoltMV: cfg.UndervoltMV,
		Seed:        rng.DeriveSeed(cfg.Seed, poolStreamLabel, uint64(i), uint64(gen)),
	}
	profile := volt.NewDeviceProfile(opts.DeviceSeed)
	entry := p.journalLookup(profile, cfg.ErrorRate)
	if entry != nil {
		// Journal hit: adopt the journaled depth directly (no
		// CalibrateToRate) and pin the injector to the exact target
		// rate afterwards, mirroring what SetErrorRate would have done.
		opts.ErrorRate = 0
		opts.UndervoltMV = entry.DepthMV
	}
	det, err := p.newDetector(base, opts, profile)
	if err != nil && entry != nil {
		// The journaled depth is unusable on this device (e.g. beyond
		// the freeze threshold): discard it and calibrate from scratch.
		p.logf("serve: slot %d: journaled depth %.1f mV rejected (%v); recalibrating", i, entry.DepthMV, err)
		p.journalDrop(*entry)
		entry = nil
		opts.ErrorRate = cfg.ErrorRate
		opts.UndervoltMV = cfg.UndervoltMV
		det, err = p.newDetector(base, opts, profile)
	}
	if err != nil {
		return nil, err
	}
	if entry != nil {
		if err := det.Injector().SetRate(cfg.ErrorRate); err != nil {
			return nil, err
		}
	}
	sup, err := core.NewSupervisor(det, cfg.Supervisor)
	if err != nil {
		return nil, err
	}
	if cfg.TraceDraws {
		det.EnableDecisionTrace()
	}
	slot := &Slot{ID: i, Gen: gen, Sup: sup, Det: det, Seed: opts.Seed, Model: version}
	if p.journal != nil && cfg.ErrorRate > 0 {
		if entry != nil {
			p.verifyJournaled(slot, profile, cfg.ErrorRate)
		} else {
			p.journalRecord(profile, cfg.ErrorRate, sup.Session().Depth(), det.Regulator().Temperature())
		}
	}
	return slot, nil
}

// newDetector builds the slot's stochastic detector on ideal or
// chaos-wrapped hardware, per the pool configuration, around the given
// base model.
func (p *Pool) newDetector(base *hmd.HMD, opts core.Options, profile volt.DeviceProfile) (*core.StochasticHMD, error) {
	cfg := p.cfg
	if !cfg.Chaos && cfg.ChaosConfig == nil {
		return core.New(base.WithFreshBuffers(), opts)
	}
	reg, err := volt.NewRegulator(volt.PlaneCore, profile)
	if err != nil {
		return nil, err
	}
	chaosCfg := chaos.DefaultConfig(opts.Seed)
	if cfg.ChaosConfig != nil {
		chaosCfg = *cfg.ChaosConfig
		if chaosCfg.Seed == 0 {
			chaosCfg.Seed = opts.Seed
		}
	}
	env, err := chaos.NewEnv(reg, chaosCfg)
	if err != nil {
		return nil, err
	}
	inj, err := faults.NewInjector(0, nil, rng.NewRand(opts.Seed, 0x5BD))
	if err != nil {
		return nil, err
	}
	det, err := core.NewWithHardware(base.WithFreshBuffers(), env, inj, opts)
	if err != nil {
		return nil, err
	}
	// A chaos-built detector runs on caller-supplied hardware, whose
	// fault unit cannot be re-derived per lane; opt it into batched
	// serving with lane streams rooted at the slot seed so micro-batched
	// dispatch keeps working — and keeps its moving-target re-rolls —
	// under chaos pools too.
	det.EnableBatchStreams(opts.Seed, nil)
	return det, nil
}

// Size returns the number of pooled sessions.
func (p *Pool) Size() int { return p.cfg.Size }

// Slots returns a snapshot of every slot for read-only inspection
// (health, metrics). Respawns swap slots underneath, so callers get a
// copy; they must not detect through a slot they have not acquired.
func (p *Pool) Slots() []*Slot {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return append([]*Slot(nil), p.all...)
}

// ErrPoolClosed is returned by Acquire after Close.
var ErrPoolClosed = errors.New("serve: pool closed")

// AcquireError reports a checkout that ended without a session because
// the caller's context was cancelled or expired. It unwraps to the
// context error, so errors.Is(err, context.DeadlineExceeded) and
// friends keep working; the handler maps it to a 503 (or a 499 when
// the client itself went away) rather than a generic 500.
type AcquireError struct{ Cause error }

// Error implements error.
func (e *AcquireError) Error() string { return "serve: no session acquired: " + e.Cause.Error() }

// Unwrap exposes the context cause.
func (e *AcquireError) Unwrap() error { return e.Cause }

// Acquire checks a session out of the pool, blocking until one parks
// or ctx is done. An already-cancelled context fails fast — the slot
// channel is never consulted — with an *AcquireError wrapping the
// context cause. The returned slot is exclusively owned until Release.
func (p *Pool) Acquire(ctx context.Context) (*Slot, error) {
	if p.closed.Load() {
		return nil, ErrPoolClosed
	}
	if err := ctx.Err(); err != nil {
		return nil, &AcquireError{Cause: err}
	}
	select {
	case slot := <-p.slots:
		if !slot.busy.CompareAndSwap(0, 1) {
			// The invariant is broken (a slot was parked while checked
			// out); count it and refuse the slot rather than hand out a
			// shared session.
			p.doubleCheckouts.Add(1)
			return nil, fmt.Errorf("serve: pool handed out a busy session (slot %d)", slot.ID)
		}
		return slot, nil
	case <-ctx.Done():
		return nil, &AcquireError{Cause: ctx.Err()}
	}
}

// TryAcquire checks a session out without blocking: (nil, false) when
// the pool is closed or no slot is parked. Hedged dispatch uses it so
// a hedge never waits behind primary traffic.
func (p *Pool) TryAcquire() (*Slot, bool) {
	if p.closed.Load() {
		return nil, false
	}
	select {
	case slot := <-p.slots:
		if !slot.busy.CompareAndSwap(0, 1) {
			p.doubleCheckouts.Add(1)
			return nil, false
		}
		return slot, true
	default:
		return nil, false
	}
}

// Release parks a session back into the pool — unless lifecycle
// management finds it terminally degraded, in which case the slot is
// quarantined out of rotation and a respawn is scheduled instead.
func (p *Pool) Release(slot *Slot) {
	if slot == nil {
		return
	}
	if p.shouldQuarantine(slot) {
		p.quarantine(slot)
		return
	}
	if !slot.busy.CompareAndSwap(1, 0) {
		p.doubleCheckouts.Add(1)
		return
	}
	select {
	case p.slots <- slot:
	default:
		// Cannot happen with CAS-disciplined checkout (the channel has
		// capacity for every slot); tolerate rather than block.
		p.doubleCheckouts.Add(1)
	}
}

// Roll rebuilds slot id onto a registered model version at the next
// generation, through the same checkout discipline requests use: the
// slot is acquired exclusively (so no request is ever interrupted, and
// none is ever lost), retired, and replaced by a freshly built slot.
// Wrong slots coming off the channel are released untouched and the
// checkout retried. A build failure releases the incumbent slot back
// into rotation unharmed; a closed pool aborts with ErrPoolClosed.
func (p *Pool) Roll(ctx context.Context, id int, version uint32) error {
	if id < 0 || id >= p.cfg.Size {
		return fmt.Errorf("serve: roll of unknown slot %d", id)
	}
	if _, err := p.model(version); err != nil {
		return err
	}
	for {
		slot, err := p.Acquire(ctx)
		if err != nil {
			return err
		}
		if slot.ID != id {
			p.Release(slot)
			select {
			case <-ctx.Done():
				return &AcquireError{Cause: ctx.Err()}
			case <-time.After(200 * time.Microsecond):
			}
			continue
		}
		return p.rollSlot(slot, version)
	}
}

// rollSlot swaps an exclusively owned slot for a fresh build on the
// given model version.
func (p *Pool) rollSlot(old *Slot, version uint32) error {
	fresh, err := p.buildSlot(old.ID, old.Gen+1, version)
	if err != nil {
		// The replacement could not be built: the incumbent keeps
		// serving, untouched.
		p.Release(old)
		return fmt.Errorf("serve: rolling slot %d to model v%d: %w", old.ID, version, err)
	}
	// Retire the incumbent: quarantined state guarantees no path ever
	// re-parks it, and its plane goes back to nominal.
	old.lifecycle.Store(int32(SlotQuarantined))
	if err := old.Sup.Session().ForceNominal(); err != nil {
		p.logf("serve: slot %d: nominal rollback on retire: %v", old.ID, err)
	}
	p.mu.Lock()
	p.all[old.ID] = fresh
	p.mu.Unlock()
	p.rolls.Add(1)
	p.logf("serve: slot %d rolled to model v%d (gen %d)", fresh.ID, version, fresh.Gen)
	if p.closed.Load() {
		// Drain raced the roll: park nothing and leave the fresh slot
		// at nominal, mirroring Close's fail-safe.
		if err := fresh.Sup.Session().ForceNominal(); err != nil {
			p.logf("serve: slot %d: nominal rollback on closed pool: %v", fresh.ID, err)
		}
		return ErrPoolClosed
	}
	p.slots <- fresh
	return nil
}

// Rolls reports how many slots have been rebuilt by model rollout.
func (p *Pool) Rolls() uint64 { return p.rolls.Load() }

// ModelVersions returns the model version each slot currently serves,
// indexed by slot ID.
func (p *Pool) ModelVersions() []uint32 {
	slots := p.Slots()
	out := make([]uint32, len(slots))
	for _, s := range slots {
		out[s.ID] = s.Model
	}
	return out
}

// DoubleCheckouts reports violations of the session-exclusivity
// invariant (must stay zero).
func (p *Pool) DoubleCheckouts() uint64 { return p.doubleCheckouts.Load() }

// Respawns reports how many quarantined slots have been rebuilt.
func (p *Pool) Respawns() uint64 { return p.respawns.Load() }

// Quarantines reports how many slots have ever been quarantined.
func (p *Pool) Quarantines() uint64 { return p.quarantines.Load() }

// QuarantinedNow reports how many slots are currently out of rotation
// (quarantined or mid-respawn).
func (p *Pool) QuarantinedNow() int64 { return p.quarantinedNow.Load() }

// Close marks the pool closed, stops any pending respawns, and rolls
// every session's voltage plane back to nominal via ForceNominal — the
// fail-safe half of graceful shutdown. Safe to call more than once and
// concurrently with checkouts: a slot checked out at Close time is
// rolled to nominal here and again by its session exit when the
// in-flight detection finishes.
func (p *Pool) Close() error {
	p.closed.Store(true)
	p.closeOnce.Do(func() { close(p.stop) })
	p.respawnWG.Wait()
	var errs []error
	for _, slot := range p.Slots() {
		if err := slot.Sup.Session().ForceNominal(); err != nil {
			errs = append(errs, fmt.Errorf("slot %d: %w", slot.ID, err))
		}
	}
	return errors.Join(errs...)
}

// Degraded reports whether every pooled supervisor sits in the
// Degraded breaker state (the service has lost all moving-target
// protection).
func (p *Pool) Degraded() bool {
	for _, slot := range p.Slots() {
		if slot.Sup.State() != core.Degraded {
			return false
		}
	}
	return true
}
