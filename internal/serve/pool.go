package serve

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"shmd/internal/chaos"
	"shmd/internal/core"
	"shmd/internal/faults"
	"shmd/internal/hmd"
	"shmd/internal/rng"
	"shmd/internal/volt"
)

// poolStreamLabel separates the pool slots' fault streams from every
// other labelled stream in the repo (0x5BD detector, 0x5A4D sharding).
const poolStreamLabel = 0x5E54

// PoolConfig sizes and seeds a session pool.
type PoolConfig struct {
	// Size is the number of pooled sessions (default 4). Each slot owns
	// a buffer-fresh copy of the detector, its own voltage plane, its
	// own fault stream, and its own supervisor, so slots never contend
	// on anything but the checkout channel.
	Size int
	// ErrorRate / UndervoltMV select the operating point, exactly as
	// core.Options (mutually exclusive; both zero means nominal).
	ErrorRate   float64
	UndervoltMV float64
	// Seed roots the per-slot fault streams.
	Seed uint64
	// Chaos builds each slot on a fault-injecting chaos.Env instead of
	// the ideal regulator, so the supervisors have faults to ride out.
	Chaos bool
	// ChaosConfig overrides the per-slot chaos configuration (implies
	// Chaos; a zero Seed is replaced with the slot's derived seed).
	// Tests use an empty-rule config plus scripted Env triggers.
	ChaosConfig *chaos.Config
	// Supervisor tunes the per-slot recovery machinery.
	Supervisor core.SupervisorConfig
}

// withDefaults fills unset fields.
func (cfg PoolConfig) withDefaults() PoolConfig {
	if cfg.Size == 0 {
		cfg.Size = 4
	}
	return cfg
}

// Slot is one pooled supervised session.
type Slot struct {
	// ID is the slot index, echoed in responses and metrics labels.
	ID int
	// Sup is the slot's self-healing supervisor.
	Sup *core.Supervisor
	// Det is the slot's stochastic detector (metrics read its voltage).
	Det *core.StochasticHMD

	// busy guards the exclusivity invariant: 0 parked, 1 checked out.
	busy atomic.Int32
}

// Pool is a fixed set of supervised stochastic sessions with
// channel-based checkout. Every slot wraps its own buffer-fresh
// detector copy (hmd.WithFreshBuffers via core construction), so two
// in-flight requests can never share scratch buffers, fault streams,
// or voltage planes.
type Pool struct {
	slots  chan *Slot
	all    []*Slot
	closed atomic.Bool
	// doubleCheckouts counts violations of the exclusivity invariant
	// (always zero unless the checkout discipline is broken).
	doubleCheckouts atomic.Uint64
}

// NewPool builds cfg.Size supervised sessions around base.
func NewPool(base *hmd.HMD, cfg PoolConfig) (*Pool, error) {
	if base == nil {
		return nil, fmt.Errorf("serve: nil base detector")
	}
	cfg = cfg.withDefaults()
	if cfg.Size < 1 {
		return nil, fmt.Errorf("serve: pool size %d < 1", cfg.Size)
	}
	p := &Pool{slots: make(chan *Slot, cfg.Size)}
	for i := 0; i < cfg.Size; i++ {
		slot, err := newSlot(base, cfg, i)
		if err != nil {
			return nil, fmt.Errorf("serve: building pool slot %d: %w", i, err)
		}
		p.all = append(p.all, slot)
		p.slots <- slot
	}
	return p, nil
}

// newSlot builds one pooled session: detector copy, hardware, and
// supervisor.
func newSlot(base *hmd.HMD, cfg PoolConfig, i int) (*Slot, error) {
	opts := core.Options{
		ErrorRate:   cfg.ErrorRate,
		UndervoltMV: cfg.UndervoltMV,
		Seed:        rng.DeriveSeed(cfg.Seed, poolStreamLabel, uint64(i)),
	}
	var det *core.StochasticHMD
	var err error
	if cfg.Chaos || cfg.ChaosConfig != nil {
		reg, rErr := volt.NewRegulator(volt.PlaneCore, volt.NewDeviceProfile(opts.DeviceSeed))
		if rErr != nil {
			return nil, rErr
		}
		chaosCfg := chaos.DefaultConfig(opts.Seed)
		if cfg.ChaosConfig != nil {
			chaosCfg = *cfg.ChaosConfig
			if chaosCfg.Seed == 0 {
				chaosCfg.Seed = opts.Seed
			}
		}
		env, eErr := chaos.NewEnv(reg, chaosCfg)
		if eErr != nil {
			return nil, eErr
		}
		inj, iErr := faults.NewInjector(0, nil, rng.NewRand(opts.Seed, 0x5BD))
		if iErr != nil {
			return nil, iErr
		}
		det, err = core.NewWithHardware(base.WithFreshBuffers(), env, inj, opts)
	} else {
		det, err = core.New(base.WithFreshBuffers(), opts)
	}
	if err != nil {
		return nil, err
	}
	sup, err := core.NewSupervisor(det, cfg.Supervisor)
	if err != nil {
		return nil, err
	}
	return &Slot{ID: i, Sup: sup, Det: det}, nil
}

// Size returns the number of pooled sessions.
func (p *Pool) Size() int { return len(p.all) }

// Slots returns every slot for read-only inspection (health, metrics).
// Callers must not detect through a slot they have not acquired.
func (p *Pool) Slots() []*Slot { return p.all }

// ErrPoolClosed is returned by Acquire after Close.
var ErrPoolClosed = errors.New("serve: pool closed")

// Acquire checks a session out of the pool, blocking until one parks
// or ctx is done. The returned slot is exclusively owned until
// Release.
func (p *Pool) Acquire(ctx context.Context) (*Slot, error) {
	if p.closed.Load() {
		return nil, ErrPoolClosed
	}
	select {
	case slot := <-p.slots:
		if !slot.busy.CompareAndSwap(0, 1) {
			// The invariant is broken (a slot was parked while checked
			// out); count it and refuse the slot rather than hand out a
			// shared session.
			p.doubleCheckouts.Add(1)
			return nil, fmt.Errorf("serve: pool handed out a busy session (slot %d)", slot.ID)
		}
		return slot, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Release parks a session back into the pool.
func (p *Pool) Release(slot *Slot) {
	if slot == nil {
		return
	}
	if !slot.busy.CompareAndSwap(1, 0) {
		p.doubleCheckouts.Add(1)
		return
	}
	select {
	case p.slots <- slot:
	default:
		// Cannot happen with CAS-disciplined checkout (the channel has
		// capacity for every slot); tolerate rather than block.
		p.doubleCheckouts.Add(1)
	}
}

// DoubleCheckouts reports violations of the session-exclusivity
// invariant (must stay zero).
func (p *Pool) DoubleCheckouts() uint64 { return p.doubleCheckouts.Load() }

// Close marks the pool closed and rolls every session's voltage plane
// back to nominal via ForceNominal — the fail-safe half of graceful
// shutdown. Safe to call more than once.
func (p *Pool) Close() error {
	p.closed.Store(true)
	var errs []error
	for _, slot := range p.all {
		if err := slot.Sup.Session().ForceNominal(); err != nil {
			errs = append(errs, fmt.Errorf("slot %d: %w", slot.ID, err))
		}
	}
	return errors.Join(errs...)
}

// Degraded reports whether every pooled supervisor sits in the
// Degraded breaker state (the service has lost all moving-target
// protection).
func (p *Pool) Degraded() bool {
	for _, slot := range p.all {
		if slot.Sup.State() != core.Degraded {
			return false
		}
	}
	return true
}
