package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"shmd/internal/tenant"
	"shmd/internal/trace"
	"shmd/internal/wire"
)

// frozenClock is a clock that never advances: token buckets refill
// nothing, so admission counts are exact.
func frozenClock() func() time.Time {
	at := time.Unix(1700000000, 0)
	return func() time.Time { return at }
}

// postTenantDetect posts one detect carrying an X-Tenant header.
func postTenantDetect(t *testing.T, ts *httptest.Server, tenantID string, body []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/detect", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if tenantID != "" {
		req.Header.Set(tenantHeader, tenantID)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// TestTenantAdmissionHTTP pins the HTTP tenant middleware: quota
// sheds 429 with Retry-After, unknown tenants are 403, the resolved
// identity is echoed in the body and header, and per-tenant counters
// move.
func TestTenantAdmissionHTTP(t *testing.T) {
	srv := newTestServer(t, Config{
		JitterSeed: 1,
		Tenancy: &tenant.Config{
			Tenants: []tenant.Spec{{ID: "acme", Class: tenant.Realtime, Rate: 1, Burst: 2}},
			Now:     frozenClock(),
		},
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	body := detectBody(t, testWindows(t, trace.Trojan, 0, 4))

	// Burst capacity 2 with a frozen clock: two admits, then rate-shed.
	for i := 0; i < 2; i++ {
		resp, raw := postTenantDetect(t, ts, "acme", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, resp.StatusCode, raw)
		}
		if got := resp.Header.Get(tenantHeader); got != "acme" {
			t.Errorf("request %d: %s echo = %q, want acme", i, tenantHeader, got)
		}
		var dr DetectResponse
		if err := json.Unmarshal(raw, &dr); err != nil {
			t.Fatal(err)
		}
		if dr.Tenant != "acme" {
			t.Errorf("request %d: body tenant = %q, want acme", i, dr.Tenant)
		}
	}
	resp, raw := postTenantDetect(t, ts, "acme", body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota status = %d: %s", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("rate shed missing Retry-After")
	}

	// No Default spec: an unlisted tenant and an anonymous request are
	// both hard 403s, never 429s.
	for _, id := range []string{"stranger", ""} {
		resp, raw := postTenantDetect(t, ts, id, body)
		if resp.StatusCode != http.StatusForbidden {
			t.Fatalf("tenant %q status = %d: %s", id, resp.StatusCode, raw)
		}
	}

	var prom bytes.Buffer
	srv.Metrics().WriteProm(&prom, nil)
	out := prom.String()
	for _, want := range []string{
		`shmd_tenant_accepted_total{tenant="acme",class="realtime"} 2`,
		`shmd_tenant_shed_total{tenant="acme",class="realtime",reason="rate"} 1`,
		`shmd_tenant_shed_total{tenant="stranger",class="batch",reason="unknown"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestTenantConcurrencyCapHTTP pins the in-flight cap: with
// MaxInFlight 1 and the only pool slot held, a second concurrent
// request sheds 429 with reason "concurrency".
func TestTenantConcurrencyCapHTTP(t *testing.T) {
	srv := newTestServer(t, Config{
		Pool:       PoolConfig{Size: 1},
		QueueDepth: 4,
		JitterSeed: 1,
		Tenancy: &tenant.Config{
			Tenants: []tenant.Spec{{ID: "acme", Class: tenant.Standard, MaxInFlight: 1}},
			Now:     frozenClock(),
		},
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	body := detectBody(t, testWindows(t, trace.Trojan, 0, 4))

	slot, err := srv.Pool().Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	first := make(chan int, 1)
	go func() {
		resp, _ := postTenantDetect(t, ts, "acme", body)
		first <- resp.StatusCode
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.tenants.InFlight("acme") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	resp, raw := postTenantDetect(t, ts, "acme", body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap status = %d: %s", resp.StatusCode, raw)
	}
	srv.Pool().Release(slot)
	if code := <-first; code != http.StatusOK {
		t.Fatalf("first request status = %d", code)
	}
}

// TestTenantCrossTransportRoundTrip is the tenant twin of the
// cross-transport conformance pin: the same identity sent as an HTTP
// header and as a SHMDWIRE payload tag comes back bit-identically on
// both transports.
func TestTenantCrossTransportRoundTrip(t *testing.T) {
	cfg := Config{
		JitterSeed: 1,
		Tenancy: &tenant.Config{
			Tenants: []tenant.Spec{{ID: "acme-corp", Class: tenant.Realtime}},
			Now:     frozenClock(),
		},
	}
	httpSrv := newTestServer(t, cfg)
	defer httpSrv.Close()
	ts := httptest.NewServer(httpSrv.Handler())
	defer ts.Close()

	wireSrv := newTestServer(t, cfg)
	defer wireSrv.Close()
	addr, stop := startWireServer(t, wireSrv)
	defer stop()

	body := detectBody(t, testWindows(t, trace.Trojan, 0, 4))
	resp, raw := postTenantDetect(t, ts, "acme-corp", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP status %d: %s", resp.StatusCode, raw)
	}
	var dr DetectResponse
	if err := json.Unmarshal(raw, &dr); err != nil {
		t.Fatal(err)
	}

	c := wireDial(t, addr)
	req := wireDetectRequest(testWindows(t, trace.Trojan, 0, 4))
	req.Tenant = "acme-corp"
	payload, err := wire.AppendDetectRequest(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WriteFrame(wire.Frame{Type: wire.FrameDetect, Corr: 1, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	f, err := c.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != wire.FrameVerdict {
		t.Fatalf("reply = %v, want VERDICT", f.Type)
	}
	v, err := wire.DecodeVerdict(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if v.Tenant != dr.Tenant || v.Tenant != "acme-corp" {
		t.Fatalf("wire tenant %q vs HTTP tenant %q, want acme-corp on both", v.Tenant, dr.Tenant)
	}
}

// TestWireClientHelloBindsTenant pins the v1.1 client HELLO: its
// metadata binds the connection identity for untagged DETECTs, and
// the extended latch makes shed ERRORs carry the machine-readable
// RetryAfterSec tail.
func TestWireClientHelloBindsTenant(t *testing.T) {
	srv := newTestServer(t, Config{
		JitterSeed: 1,
		Tenancy: &tenant.Config{
			Tenants: []tenant.Spec{{ID: "edge-7", Class: tenant.Standard, Rate: 1, Burst: 1}},
			Now:     frozenClock(),
		},
	})
	defer srv.Close()
	addr, stop := startWireServer(t, srv)
	defer stop()

	c := wireDial(t, addr)
	hello := wire.AppendHello(nil, wire.Hello{
		Version:  wire.ProtoVersion,
		MaxFrame: uint32(wire.DefaultMaxFramePayload),
		Meta:     map[string]string{wire.MetaTenant: "edge-7"},
	})
	if err := c.WriteFrame(wire.Frame{Type: wire.FrameHello, Payload: hello}); err != nil {
		t.Fatal(err)
	}

	// An untagged DETECT is accounted to the HELLO identity.
	payload, err := wire.AppendDetectRequest(nil, wireDetectRequest(testWindows(t, trace.Trojan, 0, 4)))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WriteFrame(wire.Frame{Type: wire.FrameDetect, Corr: 2, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	f, err := c.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != wire.FrameVerdict {
		t.Fatalf("reply = %v, want VERDICT", f.Type)
	}
	v, err := wire.DecodeVerdict(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if v.Tenant != "edge-7" {
		t.Fatalf("verdict tenant = %q, want edge-7 (from HELLO)", v.Tenant)
	}

	// Burst 1 is spent: the next DETECT rate-sheds, and because this
	// peer sent a client HELLO the ERROR carries the retry tail.
	if err := c.WriteFrame(wire.Frame{Type: wire.FrameDetect, Corr: 3, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	f, err = c.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != wire.FrameError || f.Corr != 3 {
		t.Fatalf("reply = %v corr %d, want ERROR corr 3", f.Type, f.Corr)
	}
	e, err := wire.DecodeErrorFrame(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if e.Code != wire.CodeOverloaded {
		t.Fatalf("code = %d, want %d", e.Code, wire.CodeOverloaded)
	}
	if e.RetryAfterSec == 0 {
		t.Error("extended peer's shed ERROR missing RetryAfterSec tail")
	}
}

// TestWireStreamSlidingWindow pins the long-lived stream contract:
// windows append across frames, re-scorings trigger every stride
// windows over the trailing detection period, verdict IDs carry the
// stream label and window index, and close tears the state down.
func TestWireStreamSlidingWindow(t *testing.T) {
	srv := newTestServer(t, Config{JitterSeed: 1})
	defer srv.Close()
	addr, stop := startWireServer(t, srv)
	defer stop()
	c := wireDial(t, addr)

	windows := testWindows(t, trace.Trojan, 0, 6)
	send := func(corr uint64, req wire.StreamRequest) wire.Verdict {
		t.Helper()
		payload, err := wire.AppendStreamRequest(nil, req)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.WriteFrame(wire.Frame{Type: wire.FrameStream, Corr: corr, Payload: payload}); err != nil {
			t.Fatal(err)
		}
		f, err := c.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		if f.Type != wire.FrameVerdict || f.Corr != corr {
			t.Fatalf("reply = %v corr %d, want VERDICT corr %d", f.Type, f.Corr, corr)
		}
		v, err := wire.DecodeVerdict(f.Payload)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}

	// Stride 2 over the test model's period-1 window: windows 2 and 4
	// trigger re-scorings, window 5 only buffers.
	v := send(1, wire.StreamRequest{StreamID: 9, ID: "cam", Stride: 2, Windows: windows[:3]})
	if len(v.Results) != 1 || v.Results[0].ID != "cam#2" {
		t.Fatalf("append 1 results = %+v, want one cam#2", v.Results)
	}
	v = send(2, wire.StreamRequest{StreamID: 9, Windows: windows[3:4]})
	if len(v.Results) != 1 || v.Results[0].ID != "cam#4" {
		t.Fatalf("append 2 results = %+v, want one cam#4", v.Results)
	}
	// One more window does not reach the stride: buffered, acked empty.
	v = send(3, wire.StreamRequest{StreamID: 9, Windows: windows[4:5]})
	if len(v.Results) != 0 {
		t.Fatalf("append 3 results = %+v, want ack", v.Results)
	}
	// Close tears down; re-closing is an idempotent ack.
	for corr := uint64(4); corr <= 5; corr++ {
		if v := send(corr, wire.StreamRequest{StreamID: 9, Close: true}); len(v.Results) != 0 {
			t.Fatalf("close results = %+v, want ack", v.Results)
		}
	}
	// The stream is gone: a fresh append with the same id restarts the
	// window count from zero.
	v = send(6, wire.StreamRequest{StreamID: 9, ID: "cam2", Stride: 1, Windows: windows[:1]})
	if len(v.Results) != 1 || v.Results[0].ID != "cam2#1" {
		t.Fatalf("reopened stream results = %+v, want one cam2#1", v.Results)
	}
}

// TestWireStreamTenantBinding pins stream tenancy: an opening append
// binds the stream to a tenant, appends are charged per window-batch
// (not once at open), and a foreign tenant tag on an open stream is
// rejected.
func TestWireStreamTenantBinding(t *testing.T) {
	srv := newTestServer(t, Config{
		JitterSeed: 1,
		Tenancy: &tenant.Config{
			Tenants: []tenant.Spec{
				{ID: "cams", Class: tenant.Realtime, Rate: 1, Burst: 2, Stride: 2},
				{ID: "other", Class: tenant.Batch},
			},
			Now: frozenClock(),
		},
	})
	defer srv.Close()
	addr, stop := startWireServer(t, srv)
	defer stop()
	c := wireDial(t, addr)

	windows := testWindows(t, trace.Trojan, 0, 4)
	write := func(corr uint64, req wire.StreamRequest) wire.Frame {
		t.Helper()
		payload, err := wire.AppendStreamRequest(nil, req)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.WriteFrame(wire.Frame{Type: wire.FrameStream, Corr: corr, Payload: payload}); err != nil {
			t.Fatal(err)
		}
		f, err := c.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		if f.Corr != corr {
			t.Fatalf("reply corr %d, want %d", f.Corr, corr)
		}
		return f
	}

	// Open + first charged append; tenant stride (2) applies, so two
	// windows trigger one re-scoring tagged with the tenant.
	f := write(1, wire.StreamRequest{StreamID: 1, ID: "cam", Tenant: "cams", Windows: windows[:2]})
	if f.Type != wire.FrameVerdict {
		t.Fatalf("open reply = %v, want VERDICT", f.Type)
	}
	v, err := wire.DecodeVerdict(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if v.Tenant != "cams" || len(v.Results) != 1 || v.Results[0].ID != "cam#2" {
		t.Fatalf("open verdict = tenant %q results %+v, want cams/cam#2", v.Tenant, v.Results)
	}

	// A foreign tenant tag cannot re-bill the open stream.
	f = write(2, wire.StreamRequest{StreamID: 1, Tenant: "other", Windows: windows[2:3]})
	if f.Type != wire.FrameError {
		t.Fatalf("foreign tag reply = %v, want ERROR", f.Type)
	}

	// Burst 2 with a frozen clock: one more charged append succeeds,
	// the next rate-sheds with a typed 429 — per-append admission.
	if f = write(3, wire.StreamRequest{StreamID: 1, Windows: windows[2:3]}); f.Type != wire.FrameVerdict {
		t.Fatalf("second append reply = %v, want VERDICT", f.Type)
	}
	f = write(4, wire.StreamRequest{StreamID: 1, Windows: windows[3:4]})
	if f.Type != wire.FrameError {
		t.Fatalf("over-quota append reply = %v, want ERROR", f.Type)
	}
	e, err := wire.DecodeErrorFrame(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if e.Code != wire.CodeOverloaded {
		t.Fatalf("over-quota code = %d, want %d", e.Code, wire.CodeOverloaded)
	}
}

// TestTenantMetricsCardinalityCap is the label-cardinality guard: past
// maxTenantSeries distinct tenants, new identities fold into the
// "other" row instead of growing the exposition without bound.
func TestTenantMetricsCardinalityCap(t *testing.T) {
	m := NewMetrics()
	for i := 0; i < maxTenantSeries+40; i++ {
		m.TenantAccepted(fmt.Sprintf("tenant-%03d", i), "standard")
	}
	m.TenantShed("yet-another", "batch", "rate")
	if got, limit := m.TenantSeriesCount(), maxTenantSeries+1; got > limit {
		t.Fatalf("tenant series = %d, want <= %d", got, limit)
	}
	var buf bytes.Buffer
	m.WriteProm(&buf, nil)
	out := buf.String()
	if !strings.Contains(out, `shmd_tenant_accepted_total{tenant="other",class="other"} 40`) {
		t.Error("overflow row missing or miscounted")
	}
	if !strings.Contains(out, `shmd_tenant_shed_total{tenant="other",class="other",reason="rate"} 1`) {
		t.Error("overflow shed row missing")
	}
	if !strings.Contains(out, "shmd_tenant_label_overflow_total 41") {
		t.Error("overflow counter missing")
	}
	if strings.Contains(out, "yet-another") {
		t.Error("over-cap tenant got its own series")
	}
}

// TestTenantTraceFilter pins TraceTenants: only the listed tenants'
// decisions reach the sink, and each record carries its tenant.
func TestTenantTraceFilter(t *testing.T) {
	records := make(chan string, 16)
	// The sink is file-backed; filtering is pinned at the traceRecord
	// layer instead via a tiny server with the filter installed.
	srv := newTestServer(t, Config{
		JitterSeed: 1,
		Tenancy: &tenant.Config{
			Tenants: []tenant.Spec{
				{ID: "keep", Class: tenant.Standard},
				{ID: "drop", Class: tenant.Standard},
			},
			Now: frozenClock(),
		},
		TraceTenants: []string{"keep"},
	})
	defer srv.Close()
	if !srv.traceTenants["keep"] || srv.traceTenants["drop"] {
		t.Fatal("trace filter not built from TraceTenants")
	}
	close(records)
}
