package serve

import (
	"math"
	"math/rand"
	"testing"

	"shmd/internal/rng"
)

// TestConfidenceProperties checks the normalization invariants over
// randomized scores and thresholds rather than hand-picked points:
// the value is always a valid probability-like margin in [0, 1], it
// grows monotonically with the distance from the threshold on the
// decided side, and relabeling a mirrored score is symmetric.
func TestConfidenceProperties(t *testing.T) {
	r := rand.New(rand.NewSource(int64(rng.NewRand(1234).Uint64())))
	randScore := func() float64 {
		// Mix in-range, boundary, and out-of-range scores: raw network
		// outputs can overshoot [0, 1] before clamping upstream.
		switch r.Intn(4) {
		case 0:
			return r.Float64()
		case 1:
			return -0.5 + 2*r.Float64()
		case 2:
			return float64(r.Intn(3)) / 2 // exactly 0, 0.5, or 1
		default:
			return r.NormFloat64()
		}
	}

	t.Run("bounded", func(t *testing.T) {
		for i := 0; i < 10000; i++ {
			score := randScore()
			threshold := 0.01 + 0.98*r.Float64()
			for _, malware := range []bool{false, true} {
				c := Confidence(score, threshold, malware)
				if math.IsNaN(c) || c < 0 || c > 1 {
					t.Fatalf("Confidence(%v, %v, %v) = %v, outside [0,1]",
						score, threshold, malware, c)
				}
			}
		}
	})

	t.Run("zero at threshold", func(t *testing.T) {
		for i := 0; i < 1000; i++ {
			threshold := 0.01 + 0.98*r.Float64()
			for _, malware := range []bool{false, true} {
				if c := Confidence(threshold, threshold, malware); c != 0 {
					t.Fatalf("Confidence at threshold %v (malware=%v) = %v, want 0",
						threshold, malware, c)
				}
			}
		}
	})

	t.Run("monotone in margin", func(t *testing.T) {
		for i := 0; i < 5000; i++ {
			threshold := 0.01 + 0.98*r.Float64()
			// Two scores on the malware side of the threshold: the one
			// further from it must never report lower confidence.
			a := threshold + (1-threshold)*r.Float64()
			b := threshold + (1-threshold)*r.Float64()
			if a > b {
				a, b = b, a
			}
			if ca, cb := Confidence(a, threshold, true), Confidence(b, threshold, true); ca > cb {
				t.Fatalf("malware confidence not monotone: C(%v)=%v > C(%v)=%v (threshold %v)",
					a, ca, b, cb, threshold)
			}
			// And mirrored on the benign side.
			a = threshold * r.Float64()
			b = threshold * r.Float64()
			if a < b {
				a, b = b, a
			}
			if ca, cb := Confidence(a, threshold, false), Confidence(b, threshold, false); ca > cb {
				t.Fatalf("benign confidence not monotone: C(%v)=%v > C(%v)=%v (threshold %v)",
					a, ca, b, cb, threshold)
			}
		}
	})

	t.Run("flip symmetry", func(t *testing.T) {
		// Reflecting the score and threshold about 1/2 and flipping the
		// label must preserve the margin. Floating-point division by the
		// two different denominators allows a 1-ulp-scale wobble, so the
		// comparison is toleranced, not bit-exact.
		const tol = 1e-12
		for i := 0; i < 10000; i++ {
			score := randScore()
			threshold := 0.01 + 0.98*r.Float64()
			for _, malware := range []bool{false, true} {
				c1 := Confidence(score, threshold, malware)
				c2 := Confidence(1-score, 1-threshold, !malware)
				if math.Abs(c1-c2) > tol {
					t.Fatalf("flip asymmetry: C(%v,%v,%v)=%v vs C(%v,%v,%v)=%v",
						score, threshold, malware, c1, 1-score, 1-threshold, !malware, c2)
				}
			}
		}
	})

	t.Run("saturates", func(t *testing.T) {
		for i := 0; i < 1000; i++ {
			threshold := 0.01 + 0.98*r.Float64()
			if c := Confidence(1, threshold, true); c != 1 {
				t.Fatalf("saturated malware score: C=%v, want 1 (threshold %v)", c, threshold)
			}
			if c := Confidence(0, threshold, false); c != 1 {
				t.Fatalf("saturated benign score: C=%v, want 1 (threshold %v)", c, threshold)
			}
		}
	})
}
