package serve

import (
	"context"
	"errors"
	"sync"
	"time"

	"shmd/internal/core"
	"shmd/internal/faults"
	"shmd/internal/trace"
)

// The micro-batching serve path: concurrent /v1/detect programs
// coalesce into lane batches, each served by ONE pool-slot checkout
// and ONE batched undervolted pass (core.Supervisor.DetectBatch feeding
// the batch-lane kernels) instead of a slot checkout and a scalar pass
// per program. Admission control, per-request deadlines, hedged
// dispatch, and decision tracing all survive unchanged:
//
//   - the admission queue token is held by each request's handler for
//     its whole life, batching wait included;
//   - a lane whose request deadline expires while the batch forms is
//     shed at flush time (its handler has already replied 503) and
//     never occupies a kernel lane;
//   - a batch past the hedge budget re-dispatches onto a second idle
//     slot, first outcome winning, exactly like scalar dispatch;
//   - with a trace sink attached, every lane's verdict records its own
//     per-lane draw log, replayable through the unchanged scalar
//     replay path (batched lane scores are bit-identical to scalar).
type batcher struct {
	srv  *Server
	max  int
	wait time.Duration

	mu      sync.Mutex
	pending []*lane
	// gen counts flushes; the flush timer captures the generation it was
	// armed for and stands down if the batch it guarded already flushed
	// full, so a late timer never double-flushes or mislabels a flush.
	gen   uint64
	timer *time.Timer
}

// lane is one program awaiting batched detection.
type lane struct {
	windows []trace.WindowCounts
	// tenant is the accounting identity the lane's request was
	// admitted under (trace provenance; lanes from different tenants
	// share batches freely).
	tenant string
	ctx    context.Context
	enq    time.Time
	// done receives the lane's outcome; buffered so a flusher delivering
	// to an abandoned lane (deadline already expired) never blocks.
	done chan laneOutcome
}

// laneOutcome is one lane's verdict (or failure) as delivered to its
// waiting handler.
type laneOutcome struct {
	v       core.Verdict
	session int
	// model is the model version of the slot that scored the lane.
	model  uint32
	hedged bool
	err    error
}

// newBatcher wires the dispatcher to the server's pool and metrics.
func newBatcher(srv *Server) *batcher {
	return &batcher{srv: srv, max: srv.cfg.MaxBatch, wait: srv.cfg.MaxBatchWait}
}

// dispatch submits every program as a lane and assembles the request's
// results as lanes complete. Lanes from one request may land in
// different batches (and thus different slots); the reported session is
// the first lane's. A request error (deadline, pool closed) aborts the
// request; verdict-level degradation does not.
func (b *batcher) dispatch(ctx context.Context, tenantID string, programs []DecodedProgram) (batchOutcome, error) {
	lanes := make([]*lane, len(programs))
	now := time.Now()
	for i, p := range programs {
		lanes[i] = &lane{windows: p.Windows, tenant: tenantID, ctx: ctx, enq: now, done: make(chan laneOutcome, 1)}
		b.submit(lanes[i])
	}
	out := batchOutcome{results: make([]DetectResult, len(programs)), session: -1}
	for i, ln := range lanes {
		select {
		case lo := <-ln.done:
			if lo.err != nil {
				return batchOutcome{}, lo.err
			}
			if out.session < 0 {
				out.session = lo.session
			}
			out.hedge = out.hedge || lo.hedged
			conf := Confidence(lo.v.Score, b.srv.threshold, lo.v.Malware)
			b.srv.observeDecision(lo.model, lo.v.Malware, conf)
			out.results[i] = DetectResult{
				ID:          programs[i].ID,
				Malware:     lo.v.Malware,
				Score:       lo.v.Score,
				Confidence:  conf,
				Unprotected: lo.v.Unprotected,
				Attempts:    lo.v.Attempts,
				Windows:     len(programs[i].Windows),
			}
		case <-ctx.Done():
			// The remaining lanes stay in the batcher; the flusher sheds
			// or completes them into their buffered channels.
			return batchOutcome{}, ctx.Err()
		}
	}
	return out, nil
}

// submit adds one lane to the forming batch, flushing when it reaches
// MaxBatch and arming the MaxBatchWait timer when it opens a new batch.
func (b *batcher) submit(ln *lane) {
	b.mu.Lock()
	b.pending = append(b.pending, ln)
	if len(b.pending) >= b.max {
		batch := b.take()
		b.mu.Unlock()
		b.flushAsync(batch, "full")
		return
	}
	if len(b.pending) == 1 {
		gen := b.gen
		b.timer = time.AfterFunc(b.wait, func() { b.onTimer(gen) })
	}
	b.mu.Unlock()
}

// take claims the forming batch and disarms its timer. Callers hold
// b.mu.
func (b *batcher) take() []*lane {
	batch := b.pending
	b.pending = nil
	b.gen++
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	return batch
}

// onTimer flushes the batch the timer was armed for, unless that batch
// already flushed full (the generation moved on).
func (b *batcher) onTimer(gen uint64) {
	b.mu.Lock()
	if gen != b.gen || len(b.pending) == 0 {
		b.mu.Unlock()
		return
	}
	batch := b.take()
	b.mu.Unlock()
	b.flushAsync(batch, "timer")
}

// flushAsync runs the flush in a tracked goroutine: a flush can outlive
// every one of its lanes' handlers (all deadlines expired), and
// shutdown must still wait for it to release its slot.
func (b *batcher) flushAsync(lanes []*lane, reason string) {
	b.srv.detWG.Add(1)
	go func() {
		defer b.srv.detWG.Done()
		b.flush(lanes, reason)
	}()
}

// flush sheds expired lanes, acquires one slot for the survivors, and
// runs them as one batch.
func (b *batcher) flush(lanes []*lane, reason string) {
	m := b.srv.metrics
	m.BatchFlush(reason, len(lanes))
	now := time.Now()
	live := lanes[:0]
	for _, ln := range lanes {
		m.ObserveBatchWait(now.Sub(ln.enq))
		if err := ln.ctx.Err(); err != nil {
			// The handler already replied (503 on deadline, 499 on a gone
			// client); the buffered send is bookkeeping for a listener
			// that may still be in its select.
			ln.done <- laneOutcome{err: err}
			continue
		}
		live = append(live, ln)
	}
	for len(live) > 0 {
		slot, err := b.srv.pool.Acquire(live[0].ctx)
		if err == nil {
			b.run(slot, live)
			return
		}
		if errors.Is(err, ErrPoolClosed) {
			for _, ln := range live {
				ln.done <- laneOutcome{err: err}
			}
			return
		}
		// Acquire gave up because live[0]'s context ended while waiting;
		// fail that lane and keep acquiring for the rest, whose deadlines
		// may still have room.
		live[0].done <- laneOutcome{err: err}
		live = live[1:]
	}
}

// batchRun is one runner's outcome for a whole batch.
type batchRun struct {
	verdicts []core.Verdict
	session  int
	model    uint32
	hedge    bool
	err      error
}

// run executes the batch on the acquired slot, hedging onto a second
// idle slot past the configured budget exactly like scalar dispatch;
// the first successful outcome fans out to the lanes.
func (b *batcher) run(primary *Slot, lanes []*lane) {
	traces := make([][]trace.WindowCounts, len(lanes))
	tenants := make([]string, len(lanes))
	for i, ln := range lanes {
		traces[i] = ln.windows
		tenants[i] = ln.tenant
	}
	// Buffered for every possible runner so a loser's send never blocks.
	outcomes := make(chan batchRun, 2)
	b.runDetached(primary, traces, tenants, false, outcomes)

	var hedgeC <-chan time.Time
	if b.srv.cfg.HedgeAfter > 0 {
		tm := time.NewTimer(b.srv.cfg.HedgeAfter)
		defer tm.Stop()
		hedgeC = tm.C
	}
	pending := 1
	var firstErr error
	for pending > 0 {
		select {
		case out := <-outcomes:
			pending--
			if out.err == nil {
				for j, ln := range lanes {
					ln.done <- laneOutcome{v: out.verdicts[j], session: out.session, model: out.model, hedged: out.hedge}
				}
				return
			}
			if firstErr == nil {
				firstErr = out.err
			}
		case <-hedgeC:
			hedgeC = nil
			// Never wait for a hedge slot: hedging spends only capacity
			// that is idle right now.
			if hslot, ok := b.srv.pool.TryAcquire(); ok {
				b.srv.metrics.Hedge()
				pending++
				b.runDetached(hslot, traces, tenants, true, outcomes)
			}
		}
	}
	for _, ln := range lanes {
		ln.done <- laneOutcome{err: firstErr}
	}
}

// runDetached starts one tracked runner that serves the whole batch
// through the slot's supervisor in a single batched detection, records
// each lane's provenance when tracing is on, and always releases its
// own slot — so a hedged loser can finish after the winner replied.
func (b *batcher) runDetached(slot *Slot, traces [][]trace.WindowCounts, tenants []string, hedge bool, outcomes chan<- batchRun) {
	s := b.srv
	s.detWG.Add(1)
	go func() {
		defer s.detWG.Done()
		record := s.cfg.Trace != nil
		verdicts, logs, err := slot.Sup.DetectBatch(traces, record)
		if err == nil && record {
			for j, v := range verdicts {
				draws := faults.DrawLog{InitialGap: -1}
				if logs != nil && !v.Unprotected {
					draws = logs[j]
				}
				s.traceRecord(slot, traces[j], v, Confidence(v.Score, s.threshold, v.Malware), draws, tenants[j])
			}
		}
		s.pool.Release(slot)
		outcomes <- batchRun{verdicts: verdicts, session: slot.ID, model: slot.Model, hedge: hedge, err: err}
	}()
}
