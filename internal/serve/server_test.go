package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"shmd/internal/chaos"
	"shmd/internal/fann"
	"shmd/internal/features"
	"shmd/internal/hmd"
	"shmd/internal/trace"
)

// testHMD builds a deterministic untrained detector (seeded random
// weights): decisions are arbitrary but stable, which is all the
// service-layer tests need.
func testHMD(t testing.TB) *hmd.HMD {
	t.Helper()
	net, err := fann.New(fann.Config{
		Layers: []int{features.DimInstrFreq, 8, 1},
		Hidden: fann.SigmoidSymmetric,
		Output: fann.Sigmoid,
		Seed:   7,
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := hmd.FromNetwork(net, hmd.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// testWindows synthesizes a deterministic program trace.
func testWindows(t testing.TB, cls trace.Class, index, n int) []trace.WindowCounts {
	t.Helper()
	prog, err := trace.NewProgram(cls, index, 1)
	if err != nil {
		t.Fatal(err)
	}
	windows, err := prog.Trace(n, 512)
	if err != nil {
		t.Fatal(err)
	}
	return windows
}

// detectBody marshals a batch request over the given traces.
func detectBody(t testing.TB, traces ...[]trace.WindowCounts) []byte {
	t.Helper()
	req := DetectRequest{}
	for i, tr := range traces {
		req.Programs = append(req.Programs, ProgramJSON{
			ID:      fmt.Sprintf("prog-%d", i),
			Windows: EncodeWindows(tr),
		})
	}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// newTestServer builds a server with a small pool.
func newTestServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	if cfg.Pool.Size == 0 {
		cfg.Pool.Size = 2
	}
	if cfg.Pool.ErrorRate == 0 && cfg.Pool.UndervoltMV == 0 {
		cfg.Pool.ErrorRate = 0.1
	}
	if cfg.Pool.Seed == 0 {
		cfg.Pool.Seed = 1
	}
	srv, err := New(testHMD(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func postDetect(t testing.TB, ts *httptest.Server, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/detect", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func TestDetectBasic(t *testing.T) {
	srv := newTestServer(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := detectBody(t,
		testWindows(t, trace.Trojan, 0, 8),
		testWindows(t, trace.Benign, 0, 8))
	resp, raw := postDetect(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, raw)
	}
	var dr DetectResponse
	if err := json.Unmarshal(raw, &dr); err != nil {
		t.Fatalf("bad response %s: %v", raw, err)
	}
	if len(dr.Results) != 2 {
		t.Fatalf("results = %d", len(dr.Results))
	}
	if dr.Session < 0 || dr.Session >= srv.Pool().Size() {
		t.Errorf("session = %d outside pool", dr.Session)
	}
	for i, r := range dr.Results {
		if r.ID != fmt.Sprintf("prog-%d", i) {
			t.Errorf("result %d id = %q", i, r.ID)
		}
		if r.Score < 0 || r.Score > 1 {
			t.Errorf("result %d score = %v", i, r.Score)
		}
		if r.Confidence < 0 || r.Confidence > 1 {
			t.Errorf("result %d confidence = %v", i, r.Confidence)
		}
		if r.Attempts < 1 {
			t.Errorf("result %d attempts = %d", i, r.Attempts)
		}
		if r.Windows != 8 {
			t.Errorf("result %d windows = %d", i, r.Windows)
		}
		if r.Unprotected {
			t.Errorf("result %d unprotected on ideal hardware", i)
		}
	}
	// The decision margin and the confidence must agree.
	for i, r := range dr.Results {
		want := Confidence(r.Score, 0.5, r.Malware)
		if r.Confidence != want {
			t.Errorf("result %d confidence %v, margin says %v", i, r.Confidence, want)
		}
	}
}

// TestDetectConcurrent hammers /v1/detect with 64 concurrent clients
// over a 4-session pool sized so none shed; every request must get a
// decision, the pool must never hand two requests the same session,
// and the counters must reconcile.
func TestDetectConcurrent(t *testing.T) {
	const clients, perClient = 64, 4
	srv := newTestServer(t, Config{
		Pool:       PoolConfig{Size: 4},
		QueueDepth: clients, // admit all 64 concurrent clients
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ts.Client().Transport = &http.Transport{MaxIdleConnsPerHost: clients}

	bodies := [][]byte{
		detectBody(t, testWindows(t, trace.Trojan, 1, 4)),
		detectBody(t, testWindows(t, trace.Benign, 1, 4)),
		detectBody(t, testWindows(t, trace.Worm, 2, 4), testWindows(t, trace.Backdoor, 3, 4)),
	}
	var wg sync.WaitGroup
	var ok, decisions atomic.Uint64
	errc := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				body := bodies[(c+i)%len(bodies)]
				resp, err := ts.Client().Post(ts.URL+"/v1/detect", "application/json", bytes.NewReader(body))
				if err != nil {
					errc <- err
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("client %d: status %d: %s", c, resp.StatusCode, raw)
					return
				}
				var dr DetectResponse
				if err := json.Unmarshal(raw, &dr); err != nil {
					errc <- err
					return
				}
				ok.Add(1)
				decisions.Add(uint64(len(dr.Results)))
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if got := ok.Load(); got != clients*perClient {
		t.Errorf("successful requests = %d, want %d", got, clients*perClient)
	}
	if got := srv.Pool().DoubleCheckouts(); got != 0 {
		t.Fatalf("pool handed out a session twice: %d violations", got)
	}

	// The supervisors' own counters must account for every decision.
	var served uint64
	for _, slot := range srv.Pool().Slots() {
		served += slot.Sup.Health().Detections
	}
	if served != decisions.Load() {
		t.Errorf("supervisors served %d detections, responses carried %d", served, decisions.Load())
	}
}

// TestBackpressure verifies overload sheds with 429 instead of growing
// the queue: with the single session held and the admission queue
// full, a new request is rejected immediately.
func TestBackpressure(t *testing.T) {
	srv := newTestServer(t, Config{Pool: PoolConfig{Size: 1}, QueueDepth: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Hold the only session so admitted requests queue.
	slot, err := srv.Pool().Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	body := detectBody(t, testWindows(t, trace.Trojan, 0, 2))

	// Fill the admission queue (capacity pool+queue = 2).
	type result struct {
		status int
		err    error
	}
	results := make(chan result, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := ts.Client().Post(ts.URL+"/v1/detect", "application/json", bytes.NewReader(body))
			if err != nil {
				results <- result{err: err}
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			results <- result{status: resp.StatusCode}
		}()
	}
	// Wait until both requests hold admission tokens.
	deadline := time.Now().Add(5 * time.Second)
	for len(srv.queue) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("queued requests never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	// The queue is full: the next request must shed with 429.
	resp, raw := postDetect(t, ts, body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload status = %d, want 429 (%s)", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After")
	}

	// Release the session: the queued requests complete normally.
	srv.Pool().Release(slot)
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.status != http.StatusOK {
			t.Errorf("queued request status = %d", r.status)
		}
	}
	if srv.Metrics().queueRejects.Load() == 0 {
		t.Error("queue reject not counted")
	}
}

// TestMalformedRequests exercises the rejection surface: every bad
// payload maps to its proper status code, none panic, none consume a
// detection.
func TestMalformedRequests(t *testing.T) {
	srv := newTestServer(t, Config{
		Limits: Limits{MaxBodyBytes: 64 << 10, MaxPrograms: 2, MaxWindows: 4},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	valid := testWindows(t, trace.Trojan, 0, 2)
	tooManyPrograms := detectBody(t, valid, valid, valid)
	tooManyWindows := detectBody(t, testWindows(t, trace.Trojan, 0, 5))

	shortOpcode := DetectRequest{Programs: []ProgramJSON{{Windows: []WindowJSON{{Opcode: []int{1, 2, 3}}}}}}
	shortOpcodeBody, _ := json.Marshal(shortOpcode)

	negCount := DetectRequest{Programs: []ProgramJSON{{Windows: EncodeWindows(valid)}}}
	negCount.Programs[0].Windows[0].Opcode[5] = -1
	negCountBody, _ := json.Marshal(negCount)

	badTaken := DetectRequest{Programs: []ProgramJSON{{Windows: EncodeWindows(valid)}}}
	badTaken.Programs[0].Windows[0].Taken = 1 << 29
	badTakenBody, _ := json.Marshal(badTaken)

	badStride := DetectRequest{Programs: []ProgramJSON{{Windows: EncodeWindows(valid)}}}
	badStride.Programs[0].Windows[0].Stride = []int{1, 2}
	badStrideBody, _ := json.Marshal(badStride)

	emptyWindow := DetectRequest{Programs: []ProgramJSON{{Windows: []WindowJSON{{Opcode: make([]int, features.DimInstrFreq)}}}}}
	emptyWindowBody, _ := json.Marshal(emptyWindow)

	oversized := append([]byte(`{"programs":[{"windows":[`), bytes.Repeat([]byte("0,"), 80<<10)...)

	cases := []struct {
		name string
		body []byte
		want int
	}{
		{"invalid JSON", []byte("{nope"), http.StatusBadRequest},
		{"wrong type", []byte(`{"programs": 3}`), http.StatusBadRequest},
		{"unknown field", []byte(`{"progams": []}`), http.StatusBadRequest},
		{"empty batch", []byte(`{"programs": []}`), http.StatusBadRequest},
		{"trailing garbage", append(detectBody(t, valid), []byte("{}")...), http.StatusBadRequest},
		{"no windows", []byte(`{"programs":[{"windows":[]}]}`), http.StatusBadRequest},
		{"too many programs", tooManyPrograms, http.StatusBadRequest},
		{"too many windows", tooManyWindows, http.StatusBadRequest},
		{"short opcode vector", shortOpcodeBody, http.StatusBadRequest},
		{"negative count", negCountBody, http.StatusBadRequest},
		{"taken exceeds branches", badTakenBody, http.StatusBadRequest},
		{"bad stride length", badStrideBody, http.StatusBadRequest},
		{"empty window", emptyWindowBody, http.StatusBadRequest},
		{"oversized body", oversized, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, raw := postDetect(t, ts, tc.body)
			if resp.StatusCode != tc.want {
				t.Errorf("status = %d, want %d (%s)", resp.StatusCode, tc.want, raw)
			}
		})
	}

	// No rejected request reached a supervisor.
	for _, slot := range srv.Pool().Slots() {
		if n := slot.Sup.Health().Detections; n != 0 {
			t.Errorf("slot %d served %d detections from rejected requests", slot.ID, n)
		}
	}

	// Method checks.
	resp, err := ts.Client().Get(ts.URL + "/v1/detect")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/detect = %d", resp.StatusCode)
	}
	postResp, err := ts.Client().Post(ts.URL+"/healthz", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	postResp.Body.Close()
	if postResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /healthz = %d", postResp.StatusCode)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	srv := newTestServer(t, Config{Pool: PoolConfig{Size: 2}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Serve a little traffic first.
	for i := 0; i < 3; i++ {
		resp, raw := postDetect(t, ts, detectBody(t, testWindows(t, trace.Trojan, i, 4)))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("detect status = %d (%s)", resp.StatusCode, raw)
		}
	}

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d (%s)", resp.StatusCode, raw)
	}
	var hr HealthReport
	if err := json.Unmarshal(raw, &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Status != "ok" {
		t.Errorf("status = %q", hr.Status)
	}
	if len(hr.Sessions) != 2 {
		t.Fatalf("sessions = %d", len(hr.Sessions))
	}
	var served uint64
	for _, s := range hr.Sessions {
		served += s.Detections
		if s.TargetRate != 0.1 {
			t.Errorf("session %d target rate = %v", s.Session, s.TargetRate)
		}
		if s.State != "healthy" && s.State != "retrying" {
			t.Errorf("session %d state = %q", s.Session, s.State)
		}
	}
	if served != 3 {
		t.Errorf("healthz sessions served %d detections, want 3", served)
	}

	mResp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mRaw, _ := io.ReadAll(mResp.Body)
	mResp.Body.Close()
	if mResp.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %d", mResp.StatusCode)
	}
	metrics := string(mRaw)
	for _, want := range []string{
		`shmd_requests_total{code="200"} 5`, // 3 detects + healthz + this scrape
		"shmd_pool_sessions 2",
		"shmd_pool_double_checkouts_total 0",
		`shmd_session_target_fault_rate{session="0"} 0.1`,
		`shmd_session_state{session="1"} `,
		"shmd_detect_duration_seconds_count 3",
		`shmd_detect_duration_seconds_bucket{le="+Inf"} 3`,
		"shmd_decisions_total{verdict=",
		"shmd_queue_rejects_total 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
	// Decisions by class reconcile with requests served.
	var malware, benign int
	fmt.Sscanf(findLine(metrics, `shmd_decisions_total{verdict="malware"}`), `shmd_decisions_total{verdict="malware"} %d`, &malware)
	fmt.Sscanf(findLine(metrics, `shmd_decisions_total{verdict="benign"}`), `shmd_decisions_total{verdict="benign"} %d`, &benign)
	if malware+benign != 3 {
		t.Errorf("decision counters %d+%d, want 3", malware, benign)
	}
}

// findLine returns the first metrics line with the given prefix.
func findLine(metrics, prefix string) string {
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, prefix) {
			return line
		}
	}
	return ""
}

// TestHealthzDegraded kills the pool's only regulator and verifies the
// request still gets a (flagged) decision while /healthz flips to 503
// and /metrics exposes the breaker trip.
func TestHealthzDegraded(t *testing.T) {
	srv := newTestServer(t, Config{
		Pool: PoolConfig{Size: 1, ChaosConfig: &chaos.Config{Seed: 9}},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	slot := srv.Pool().Slots()[0]
	env, ok := slot.Det.Regulator().(*chaos.Env)
	if !ok {
		t.Fatalf("slot regulator is %T, want *chaos.Env", slot.Det.Regulator())
	}
	if err := env.Trigger(chaos.Rule{Kind: chaos.PermanentMSR}); err != nil {
		t.Fatal(err)
	}

	// Fail-safe availability: the decision still arrives, degraded.
	resp, raw := postDetect(t, ts, detectBody(t, testWindows(t, trace.Trojan, 0, 4)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("detect on dead regulator = %d (%s)", resp.StatusCode, raw)
	}
	var dr DetectResponse
	if err := json.Unmarshal(raw, &dr); err != nil {
		t.Fatal(err)
	}
	if !dr.Results[0].Unprotected {
		t.Error("decision on dead regulator not flagged Unprotected")
	}

	hResp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hRaw, _ := io.ReadAll(hResp.Body)
	hResp.Body.Close()
	if hResp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded healthz = %d (%s)", hResp.StatusCode, hRaw)
	}
	var hr HealthReport
	if err := json.Unmarshal(hRaw, &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Status != "degraded" {
		t.Errorf("status = %q", hr.Status)
	}
	if hr.Sessions[0].Trips == 0 {
		t.Error("breaker trip not reported")
	}
}

// TestGracefulShutdownDrains runs the real listener path: in-flight
// requests complete, the listener closes, and every voltage plane ends
// at nominal.
func TestGracefulShutdownDrains(t *testing.T) {
	srv := newTestServer(t, Config{Pool: PoolConfig{Size: 1}, QueueDepth: 4})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()

	// Hold the only session so a request is pinned in flight, then
	// start that request.
	slot, err := srv.Pool().Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	body := detectBody(t, testWindows(t, trace.Worm, 0, 4))
	inflightDone := make(chan error, 1)
	go func() {
		resp, err := http.Post(base+"/v1/detect", "application/json", bytes.NewReader(body))
		if err != nil {
			inflightDone <- err
			return
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != http.StatusOK {
			inflightDone <- fmt.Errorf("in-flight request status %d", resp.StatusCode)
			return
		}
		inflightDone <- nil
	}()
	deadline := time.Now().Add(5 * time.Second)
	for len(srv.queue) < 1 {
		if time.Now().After(deadline) {
			t.Fatal("in-flight request never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	// Begin shutdown while the request is in flight, then release the
	// session so it can finish.
	cancel()
	time.Sleep(10 * time.Millisecond)
	srv.Pool().Release(slot)

	if err := <-inflightDone; err != nil {
		t.Errorf("in-flight request during shutdown: %v", err)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Errorf("Serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after shutdown")
	}

	// The listener is closed and every plane sits at nominal voltage.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("listener still accepting after shutdown")
	}
	for _, slot := range srv.Pool().Slots() {
		if !slot.Sup.Session().AtNominal() {
			t.Errorf("slot %d not at nominal voltage after shutdown", slot.ID)
		}
	}
	// The pool is closed: new work is refused.
	if _, err := srv.Pool().Acquire(context.Background()); err == nil {
		t.Error("pool still open after shutdown")
	}
}

// TestDrain covers the handler-level drain path tests and embedders
// use (no http.Server involved).
func TestDrain(t *testing.T) {
	srv := newTestServer(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, raw := postDetect(t, ts, detectBody(t, testWindows(t, trace.Rogue, 0, 4)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("detect = %d (%s)", resp.StatusCode, raw)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	for _, slot := range srv.Pool().Slots() {
		if !slot.Sup.Session().AtNominal() {
			t.Errorf("slot %d not nominal after drain", slot.ID)
		}
	}
	// Post-drain requests are refused with 503, not served.
	resp2, raw2 := postDetect(t, ts, detectBody(t, testWindows(t, trace.Rogue, 0, 4)))
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain detect = %d (%s)", resp2.StatusCode, raw2)
	}
}

func TestConfidence(t *testing.T) {
	cases := []struct {
		score, thr float64
		malware    bool
		want       float64
	}{
		{0.5, 0.5, true, 0},
		{1, 0.5, true, 1},
		{0, 0.5, false, 1},
		{0.75, 0.5, true, 0.5},
		{0.25, 0.5, false, 0.5},
		{0.4, 0.5, true, 0}, // inconsistent inputs clamp
		{0.95, 0.9, true, 0.5},
	}
	for _, tc := range cases {
		got := Confidence(tc.score, tc.thr, tc.malware)
		if diff := got - tc.want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("Confidence(%v, %v, %v) = %v, want %v", tc.score, tc.thr, tc.malware, got, tc.want)
		}
	}
}

func TestServerValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Error("nil base must be rejected")
	}
	if _, err := New(testHMD(t), Config{QueueDepth: -1}); err == nil {
		t.Error("negative queue depth must be rejected")
	}
	if _, err := NewPool(testHMD(t), PoolConfig{Size: -1}); err == nil {
		t.Error("negative pool size must be rejected")
	}
	if _, err := NewPool(nil, PoolConfig{}); err == nil {
		t.Error("nil base pool must be rejected")
	}
	// Mutually exclusive operating-point knobs surface core's error.
	if _, err := NewPool(testHMD(t), PoolConfig{ErrorRate: 0.1, UndervoltMV: 100}); err == nil {
		t.Error("both rate and depth must be rejected")
	}
}
