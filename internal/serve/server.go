package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"shmd/internal/hmd"
)

// Config configures the detection service.
type Config struct {
	// Pool sizes and seeds the session pool.
	Pool PoolConfig
	// Limits bounds request decoding. MinWindows is overridden from the
	// model's detection period.
	Limits Limits
	// QueueDepth is how many requests may wait for a session beyond the
	// ones being served (default 2×pool). A request arriving with the
	// queue full is shed immediately with a 429 — overload produces
	// fast rejections, not queue growth.
	QueueDepth int
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
}

// withDefaults fills unset fields (pool defaults resolve first so the
// queue depth can key off the final size).
func (cfg Config) withDefaults() Config {
	cfg.Pool = cfg.Pool.withDefaults()
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 2 * cfg.Pool.Size
	}
	return cfg
}

// Server is the detection service: an http.Handler serving /v1/detect,
// /healthz, and /metrics off a session pool.
type Server struct {
	cfg       Config
	pool      *Pool
	metrics   *Metrics
	mux       *http.ServeMux
	threshold float64
	// queue is the admission semaphore: in-service plus waiting
	// requests. Full queue → 429.
	queue chan struct{}
	// inflight tracks requests holding a queue token, for the drain in
	// Shutdown (http.Server.Shutdown already waits on connections; this
	// guards the direct-handler path tests use).
	inflight chan struct{}
}

// New builds a Server around a trained baseline detector.
func New(base *hmd.HMD, cfg Config) (*Server, error) {
	if base == nil {
		return nil, fmt.Errorf("serve: nil base detector")
	}
	cfg = cfg.withDefaults()
	if cfg.QueueDepth < 0 {
		return nil, fmt.Errorf("serve: negative queue depth %d", cfg.QueueDepth)
	}
	pool, err := NewPool(base, cfg.Pool)
	if err != nil {
		return nil, err
	}
	cfg.Limits = cfg.Limits.withDefaults()
	cfg.Limits.MinWindows = base.Config().Period
	s := &Server{
		cfg:       cfg,
		pool:      pool,
		metrics:   NewMetrics(),
		threshold: base.Config().Threshold,
		queue:     make(chan struct{}, pool.Size()+cfg.QueueDepth),
		inflight:  make(chan struct{}, pool.Size()+cfg.QueueDepth),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/detect", s.handleDetect)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	if cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Pool exposes the session pool (tests and metrics inspect it).
func (s *Server) Pool() *Pool { return s.pool }

// Metrics exposes the counter block.
func (s *Server) Metrics() *Metrics { return s.metrics }

// status writes an error reply and records the request.
func (s *Server) status(w http.ResponseWriter, code int, msg string) {
	s.metrics.Request(code)
	http.Error(w, msg, code)
}

// handleDetect serves POST /v1/detect.
func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.status(w, http.StatusMethodNotAllowed, "POST only")
		return
	}

	// Admission control before any decode work: shed at the
	// backpressure limit so overload costs the caller one channel probe.
	select {
	case s.queue <- struct{}{}:
		defer func() { <-s.queue }()
	default:
		s.metrics.QueueReject()
		w.Header().Set("Retry-After", "1")
		s.status(w, http.StatusTooManyRequests, "detection queue full")
		return
	}
	s.inflight <- struct{}{}
	defer func() { <-s.inflight }()

	body := http.MaxBytesReader(w, r.Body, s.cfg.Limits.MaxBodyBytes)
	programs, err := DecodeDetectRequest(body, s.cfg.Limits)
	if err != nil {
		s.status(w, StatusOf(err), err.Error())
		return
	}

	slot, err := s.pool.Acquire(r.Context())
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// The client went away while queued.
			s.metrics.Request(statusClientClosedRequest)
			return
		}
		s.status(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	defer s.pool.Release(slot)

	resp := DetectResponse{Results: make([]DetectResult, len(programs)), Session: slot.ID}
	for i, p := range programs {
		v, err := slot.Sup.DetectProgram(p.Windows)
		if err != nil {
			s.status(w, http.StatusInternalServerError, fmt.Sprintf("program %d: %v", i, err))
			return
		}
		s.metrics.Decision(v.Malware, v.Unprotected)
		resp.Results[i] = DetectResult{
			ID:          p.ID,
			Malware:     v.Malware,
			Score:       v.Score,
			Confidence:  confidence(v.Score, s.threshold, v.Malware),
			Unprotected: v.Unprotected,
			Attempts:    v.Attempts,
			Windows:     len(p.Windows),
		}
	}
	s.metrics.Request(http.StatusOK)
	s.metrics.Observe(time.Since(start))
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// statusClientClosedRequest is the de-facto code (nginx's 499) used
// only as a metrics label for requests abandoned while queued.
const statusClientClosedRequest = 499

// confidence normalizes the decision margin into [0, 1]: the distance
// between the mean window score and the threshold, relative to the
// room on the decided side. Scores at the threshold — the ones a
// stochastic re-roll could flip — report 0; saturated scores report 1.
func confidence(score, threshold float64, malware bool) float64 {
	var c float64
	if malware {
		c = (score - threshold) / (1 - threshold)
	} else {
		c = (threshold - score) / threshold
	}
	if c < 0 {
		return 0
	}
	if c > 1 {
		return 1
	}
	return c
}

// HealthReport is the GET /healthz body.
type HealthReport struct {
	// Status is "ok" while any session retains protected detection,
	// "degraded" when every breaker is open.
	Status string `json:"status"`
	// Sessions reports each pooled supervisor.
	Sessions []SessionHealth `json:"sessions"`
}

// SessionHealth is one pooled session's health snapshot.
type SessionHealth struct {
	Session        int     `json:"session"`
	State          string  `json:"state"`
	TargetRate     float64 `json:"targetRate"`
	Detections     uint64  `json:"detections"`
	Protected      uint64  `json:"protected"`
	Unprotected    uint64  `json:"unprotected"`
	Retries        uint64  `json:"retries"`
	Failures       uint64  `json:"failures"`
	Trips          uint64  `json:"trips"`
	Recoveries     uint64  `json:"recoveries"`
	Canaries       uint64  `json:"canaries"`
	Drifts         uint64  `json:"drifts"`
	Recalibrations uint64  `json:"recalibrations"`
	// LastCanaryRate is the most recent observed fault rate (null
	// semantics: omitted until the first canary runs).
	LastCanaryRate *float64 `json:"lastCanaryRate,omitempty"`
}

// handleHealthz serves GET /healthz: 200 while at least one session
// can still detect protected, 503 when the whole pool is degraded.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.status(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	report := HealthReport{Status: "ok"}
	for _, slot := range s.pool.Slots() {
		h := slot.Sup.Health()
		sh := SessionHealth{
			Session:        slot.ID,
			State:          h.State.String(),
			TargetRate:     slot.Sup.TargetRate(),
			Detections:     h.Detections,
			Protected:      h.Protected,
			Unprotected:    h.Unprotected,
			Retries:        h.Retries,
			Failures:       h.Failures,
			Trips:          h.Trips,
			Recoveries:     h.Recoveries,
			Canaries:       h.Canaries,
			Drifts:         h.Drifts,
			Recalibrations: h.Recalibrations,
		}
		if h.Canaries > 0 {
			rate := h.LastCanaryRate
			sh.LastCanaryRate = &rate
		}
		report.Sessions = append(report.Sessions, sh)
	}
	code := http.StatusOK
	if s.pool.Degraded() {
		report.Status = "degraded"
		code = http.StatusServiceUnavailable
	}
	s.metrics.Request(code)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(report)
}

// handleMetrics serves GET /metrics in the Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.status(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.metrics.Request(http.StatusOK)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WriteProm(w, s.pool)
}

// Serve accepts connections on ln until Shutdown. It returns the
// error from the embedded http.Server (http.ErrServerClosed after a
// clean shutdown is filtered to nil).
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	httpSrv := &http.Server{Handler: s.mux, ReadHeaderTimeout: 10 * time.Second}
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()
	select {
	case <-ctx.Done():
		shCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		err := httpSrv.Shutdown(shCtx) // drains in-flight requests
		if closeErr := s.Close(); err == nil {
			err = closeErr
		}
		<-done
		return err
	case err := <-done:
		closeErr := s.Close()
		if errors.Is(err, http.ErrServerClosed) || err == nil {
			return closeErr
		}
		return err
	}
}

// Drain waits until no request holds a queue token, then rolls every
// pooled session back to nominal voltage. Tests drive the handler
// directly (no http.Server), so this is their graceful-shutdown
// entry point; Serve gets the same drain from http.Server.Shutdown.
func (s *Server) Drain(ctx context.Context) error {
	for i := 0; i < cap(s.inflight); i++ {
		select {
		case s.inflight <- struct{}{}:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	// All tokens held: no handler is past admission. Release them and
	// roll the pool to nominal.
	for i := 0; i < cap(s.inflight); i++ {
		<-s.inflight
	}
	return s.Close()
}

// Close rolls every pooled session's plane back to nominal voltage.
func (s *Server) Close() error { return s.pool.Close() }
