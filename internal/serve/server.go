package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"shmd/internal/backoff"
	"shmd/internal/core"
	"shmd/internal/faults"
	"shmd/internal/hmd"
	"shmd/internal/registry"
	"shmd/internal/replay"
	"shmd/internal/tenant"
	"shmd/internal/trace"
)

// Config configures the detection service.
type Config struct {
	// Pool sizes and seeds the session pool.
	Pool PoolConfig
	// Limits bounds request decoding. MinWindows is overridden from the
	// model's detection period.
	Limits Limits
	// QueueDepth is how many requests may wait for a session beyond the
	// ones being served (default 2×pool). A request arriving with the
	// queue full is shed immediately with a 429 — overload produces
	// fast rejections, not queue growth.
	QueueDepth int
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// DefaultDeadline bounds each /v1/detect request when the caller
	// does not send an X-Detect-Deadline-Ms header (0 = unbounded).
	DefaultDeadline time.Duration
	// HedgeAfter re-dispatches a still-running batch onto a second idle
	// slot after this latency budget; the first verdict wins and the
	// loser's slot is returned cleanly (0 = hedging off). Hedging trades
	// spare pool capacity for tail latency — a slot mid-recovery can
	// stall a batch for many retry cycles while an idle neighbour would
	// answer immediately.
	HedgeAfter time.Duration
	// MaxBatch enables dynamic micro-batching: programs from concurrent
	// /v1/detect requests coalesce into lane batches of up to MaxBatch,
	// each served by ONE slot checkout and ONE batched undervolted pass
	// through the batch-lane kernels, with per-program verdicts fanned
	// back out to their requests. 0 or 1 leaves the scalar per-request
	// dispatch path in place.
	MaxBatch int
	// MaxBatchWait bounds how long a partial batch waits for more lanes
	// before flushing (default 2ms when MaxBatch enables batching). The
	// knob trades a bounded first-lane latency penalty for lane
	// occupancy under load; full batches flush immediately.
	MaxBatchWait time.Duration
	// ReadHeaderTimeout bounds how long Serve waits for request headers
	// (default 10s).
	ReadHeaderTimeout time.Duration
	// ShutdownTimeout bounds the graceful drain when Serve's context is
	// cancelled (default 30s).
	ShutdownTimeout time.Duration
	// Trace, when non-nil, receives a replay.Record for every decision
	// served (opt-in auditing). The sink is lossy by design: a full ring
	// drops the record and bumps a counter rather than stalling
	// detection. The server enables per-slot draw recording when set;
	// the caller owns the sink's lifetime (Close after Serve returns).
	Trace *replay.Sink
	// JitterSeed seeds the Retry-After jitter so shed clients do not
	// retry in lockstep (0 = seed from the clock at startup; tests pin
	// a seed for reproducible hints).
	JitterSeed int64
	// Tenancy, when non-nil, enables the multi-tenant QoS layer: each
	// request resolves a tenant (X-Tenant header, wire tag, or
	// connection HELLO metadata) whose token bucket, concurrency cap,
	// and shaping rules gate admission, and whose priority class
	// orders dequeue at the slot pool under saturation. Nil serves
	// every request untagged through the flat admission queue.
	Tenancy *tenant.Config
	// TraceTenants restricts the trace sink to decisions served for
	// the listed tenant IDs (empty = trace every decision). Only
	// meaningful with Trace set.
	TraceTenants []string
	// Registry, when non-nil, is the versioned model store behind the
	// /v1/admin/models surface: new SHMDMDL1 manifests POSTed there are
	// registered, canaried slot-by-slot, and auto-promoted or rolled
	// back by the rollout controller, which persists promotions through
	// Registry.Activate. Nil serves the compiled-in model only.
	Registry *registry.Registry
	// Rollout tunes the canary rollout controller (zero value =
	// defaults; see RolloutConfig).
	Rollout RolloutConfig
}

// withDefaults fills unset fields (pool defaults resolve first so the
// queue depth can key off the final size).
func (cfg Config) withDefaults() Config {
	cfg.Pool = cfg.Pool.withDefaults()
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 2 * cfg.Pool.Size
	}
	if cfg.ReadHeaderTimeout == 0 {
		cfg.ReadHeaderTimeout = 10 * time.Second
	}
	if cfg.ShutdownTimeout == 0 {
		cfg.ShutdownTimeout = 30 * time.Second
	}
	if cfg.MaxBatch > 1 && cfg.MaxBatchWait == 0 {
		cfg.MaxBatchWait = 2 * time.Millisecond
	}
	return cfg
}

// Server is the detection service: an http.Handler serving /v1/detect,
// /healthz, and /metrics off a session pool.
type Server struct {
	cfg       Config
	pool      *Pool
	metrics   *Metrics
	mux       *http.ServeMux
	threshold float64
	// queue is the admission semaphore: in-service plus waiting
	// requests. Full queue → 429.
	queue chan struct{}
	// inflight tracks requests holding a queue token, for the drain in
	// Shutdown (http.Server.Shutdown already waits on connections; this
	// guards the direct-handler path tests use).
	inflight chan struct{}
	// detWG tracks dispatch runner goroutines. A hedged loser can
	// outlive its handler (its verdict is discarded but its batch must
	// finish and its slot must be released), so shutdown waits here as
	// well as on inflight.
	detWG sync.WaitGroup
	// jitter randomizes Retry-After hints on shed responses.
	jitter *backoff.Jitter
	// draining flips the moment a graceful shutdown begins, before any
	// in-flight request finishes: /readyz turns 503 immediately so load
	// balancers stop routing here while the drain completes, even
	// though /healthz (liveness) keeps answering for the pool.
	draining atomic.Bool
	// batcher coalesces concurrent programs into lane batches when
	// Config.MaxBatch enables micro-batching (nil = scalar dispatch).
	batcher *batcher
	// wire tracks live SHMDWIRE connections so a graceful drain can
	// broadcast GOAWAY and wait for their in-flight detects.
	wire wireState
	// tenants answers per-tenant admission (nil = tenancy off).
	tenants *tenant.Registry
	// gate orders dequeue by priority class in front of the pool on
	// the scalar dispatch path (nil = tenancy off; the micro-batcher
	// keeps FIFO lanes — batching already amortizes the slot).
	gate *tenant.Gate
	// traceTenants filters the trace sink by tenant ID (nil = all).
	traceTenants map[string]bool
	// rollout is the canary rollout controller. Always constructed
	// (Begin refuses without spare slots); it persists promotions only
	// when Config.Registry is set.
	rollout *rollout
}

// New builds a Server around a trained baseline detector.
func New(base *hmd.HMD, cfg Config) (*Server, error) {
	if base == nil {
		return nil, fmt.Errorf("serve: nil base detector")
	}
	cfg = cfg.withDefaults()
	if cfg.QueueDepth < 0 {
		return nil, fmt.Errorf("serve: negative queue depth %d", cfg.QueueDepth)
	}
	cfg.Pool.TraceDraws = cfg.Trace != nil
	pool, err := NewPool(base, cfg.Pool)
	if err != nil {
		return nil, err
	}
	cfg.Limits = cfg.Limits.withDefaults()
	cfg.Limits.MinWindows = base.Config().Period
	seed := cfg.JitterSeed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	if cfg.MaxBatch < 0 {
		return nil, fmt.Errorf("serve: negative max batch %d", cfg.MaxBatch)
	}
	s := &Server{
		cfg:       cfg,
		pool:      pool,
		metrics:   NewMetrics(),
		threshold: base.Config().Threshold,
		queue:     make(chan struct{}, pool.Size()+cfg.QueueDepth),
		inflight:  make(chan struct{}, pool.Size()+cfg.QueueDepth),
		jitter:    backoff.New(seed),
	}
	if cfg.MaxBatch > 1 {
		s.batcher = newBatcher(s)
	}
	if cfg.Tenancy != nil {
		if s.tenants, err = tenant.NewRegistry(*cfg.Tenancy); err != nil {
			pool.Close()
			return nil, err
		}
		// Gate capacity mirrors the pool so free slots grant instantly;
		// the flat queue already bounds waiters, so the gate itself is
		// unbounded.
		s.gate = tenant.NewGate(pool.Size(), 0)
	}
	if len(cfg.TraceTenants) > 0 {
		s.traceTenants = make(map[string]bool, len(cfg.TraceTenants))
		for _, id := range cfg.TraceTenants {
			s.traceTenants[id] = true
		}
	}
	s.rollout = newRollout(s, cfg.Registry, cfg.Rollout)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/detect", s.handleDetect)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	if cfg.Registry != nil {
		s.mux.HandleFunc("/v1/admin/models", s.handleAdminModels)
	}
	if cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Pool exposes the session pool (tests and metrics inspect it).
func (s *Server) Pool() *Pool { return s.pool }

// Metrics exposes the counter block.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Rollout exposes the canary rollout controller (tests and the soak
// harness drive and inspect it directly).
func (s *Server) Rollout() *rollout { return s.rollout }

// logf forwards to the pool's configured logger.
func (s *Server) logf(format string, args ...any) { s.pool.logf(format, args...) }

// observeOutcome records per-model decision metrics for a winning
// outcome and feeds the rollout controller's drift comparison. Both
// dispatch paths (scalar and micro-batched) and both transports (HTTP
// and SHMDWIRE route through the same dispatchers) land here, winner
// outcomes only — hedge losers are discarded before observation.
func (s *Server) observeDecision(model uint32, malware bool, confidence float64) {
	s.metrics.ModelDecision(model, malware)
	s.rollout.Observe(model, malware, confidence)
}

// status writes an error reply and records the request.
func (s *Server) status(w http.ResponseWriter, code int, msg string) {
	s.metrics.Request(code)
	http.Error(w, msg, code)
}

// shedHint sets a jittered Retry-After header (1–3s) on a shed
// response so rejected clients spread their retries instead of
// stampeding back together.
func (s *Server) shedHint(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.Itoa(s.jitter.RetryAfter()))
}

// tenantHeader carries the tenant identity on HTTP requests and is
// echoed (with the resolved accounting identity) on replies.
const tenantHeader = "X-Tenant"

// admissionLoad is the load signal the shaping rules consume: flat
// admission-queue occupancy in [0, 1].
func (s *Server) admissionLoad() float64 {
	return float64(len(s.queue)) / float64(cap(s.queue))
}

// admitTenant runs the tenant-QoS decision for one request carrying
// identity id. Nil when tenancy is off.
func (s *Server) admitTenant(id string) *tenant.Admission {
	if s.tenants == nil {
		return nil
	}
	return s.tenants.Admit(id, s.admissionLoad())
}

// rejectTenant writes the HTTP reply for a refused admission: 403 for
// an unknown tenant, 429 with a jittered Retry-After for quota and
// pressure sheds.
func (s *Server) rejectTenant(w http.ResponseWriter, adm *tenant.Admission) {
	s.metrics.TenantShed(adm.Tenant, adm.Class.String(), adm.Outcome.String())
	if adm.Outcome == tenant.Unknown {
		s.status(w, http.StatusForbidden, fmt.Sprintf("unknown tenant %q", adm.Tenant))
		return
	}
	s.shedHint(w)
	s.status(w, http.StatusTooManyRequests, fmt.Sprintf("tenant %s over %s limit", adm.Tenant, adm.Outcome))
}

// handleDetect serves POST /v1/detect.
func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.status(w, http.StatusMethodNotAllowed, "POST only")
		return
	}

	// Tenant QoS first: quota, concurrency, and load shaping decide
	// whether this tenant may submit at all, before the flat queue
	// decides whether the server has room.
	var tenantID string
	var class tenant.Class
	if adm := s.admitTenant(r.Header.Get(tenantHeader)); adm != nil {
		defer adm.Release()
		if !adm.OK() {
			s.rejectTenant(w, adm)
			return
		}
		tenantID, class = adm.Tenant, adm.Class
		s.metrics.TenantAccepted(adm.Tenant, adm.Class.String())
		w.Header().Set(tenantHeader, adm.Tenant)
	}

	// Admission control before any decode work: shed at the
	// backpressure limit so overload costs the caller one channel probe.
	select {
	case s.queue <- struct{}{}:
		defer func() { <-s.queue }()
	default:
		s.metrics.QueueReject()
		if s.tenants != nil {
			s.metrics.TenantShed(tenantID, class.String(), "queue")
		}
		s.shedHint(w)
		s.status(w, http.StatusTooManyRequests, "detection queue full")
		return
	}
	s.inflight <- struct{}{}
	defer func() { <-s.inflight }()

	body := http.MaxBytesReader(w, r.Body, s.cfg.Limits.MaxBodyBytes)
	programs, err := DecodeDetectRequest(body, s.cfg.Limits)
	if err != nil {
		s.status(w, StatusOf(err), err.Error())
		return
	}

	deadline, err := requestDeadline(r, s.cfg.DefaultDeadline)
	if err != nil {
		s.status(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx := r.Context()
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}

	var out batchOutcome
	if s.batcher != nil {
		out, err = s.batcher.dispatch(ctx, tenantID, programs)
	} else {
		out, err = s.dispatch(ctx, class, tenantID, programs)
	}
	if err != nil {
		s.failDetect(w, r, err)
		return
	}
	if out.hedge {
		s.metrics.HedgeWin()
	}
	for _, res := range out.results {
		s.metrics.Decision(res.Malware, res.Unprotected)
	}
	resp := DetectResponse{Results: out.results, Session: out.session, Hedged: out.hedge, Tenant: tenantID}
	s.metrics.Request(http.StatusOK)
	s.metrics.Observe(time.Since(start))
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// deadlineHeader carries a per-request detection deadline in integer
// milliseconds; it overrides Config.DefaultDeadline for one request.
const deadlineHeader = "X-Detect-Deadline-Ms"

// requestDeadline resolves the effective deadline for one request:
// the header when present (a positive integer millisecond count),
// otherwise the server default.
func requestDeadline(r *http.Request, def time.Duration) (time.Duration, error) {
	raw := r.Header.Get(deadlineHeader)
	if raw == "" {
		return def, nil
	}
	ms, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || ms <= 0 {
		return 0, fmt.Errorf("%s: %q is not a positive integer millisecond count", deadlineHeader, raw)
	}
	return time.Duration(ms) * time.Millisecond, nil
}

// failDetect maps a dispatch failure to its HTTP reply. Deadline
// expiry is the server shedding load, not an internal fault: it maps
// to a 503 with Retry-After, never a 500. A client that went away is
// recorded under the de-facto 499 with nothing written.
func (s *Server) failDetect(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case r.Context().Err() != nil:
		// The client disconnected or cancelled; nobody is listening.
		s.metrics.Request(statusClientClosedRequest)
	case errors.Is(err, context.DeadlineExceeded):
		s.metrics.DeadlineExpired()
		s.shedHint(w)
		s.status(w, http.StatusServiceUnavailable, "detection deadline exceeded")
	case errors.Is(err, tenant.ErrQueueFull):
		s.metrics.QueueReject()
		s.shedHint(w)
		s.status(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, ErrPoolClosed):
		s.status(w, http.StatusServiceUnavailable, err.Error())
	default:
		var ae *AcquireError
		if errors.As(err, &ae) {
			s.shedHint(w)
			s.status(w, http.StatusServiceUnavailable, err.Error())
			return
		}
		s.status(w, http.StatusInternalServerError, err.Error())
	}
}

// batchOutcome is one runner's verdict set for a batch.
type batchOutcome struct {
	results []DetectResult
	session int
	// model is the model version of the slot that produced the outcome
	// (scalar path; batched lanes observe per-lane instead).
	model uint32
	// hedge marks the outcome as produced by the hedge runner.
	hedge bool
	err   error
}

// dispatch runs the batch on an acquired slot, optionally hedging onto
// a second idle slot after the configured latency budget. The first
// successful outcome wins; every runner releases its own slot, so a
// losing runner can finish after the handler has replied without
// violating the exclusivity invariant. Decision metrics are recorded
// by the caller for the winner only.
//
// With tenancy on, the class-aware gate fronts the pool: free
// capacity grants immediately, and under saturation realtime lanes
// dequeue ahead of standard ahead of batch.
func (s *Server) dispatch(ctx context.Context, class tenant.Class, tenantID string, programs []DecodedProgram) (batchOutcome, error) {
	if s.gate != nil {
		wait := time.Now()
		if err := s.gate.Acquire(ctx, class); err != nil {
			return batchOutcome{}, err
		}
		defer s.gate.Release()
		s.metrics.ObserveClassWait(int(class), time.Since(wait))
	}
	slot, err := s.pool.Acquire(ctx)
	if err != nil {
		return batchOutcome{}, err
	}
	// Buffered for every possible runner: a loser's send never blocks,
	// even when the handler has already returned.
	outcomes := make(chan batchOutcome, 2)
	s.runDetached(ctx, slot, programs, tenantID, false, outcomes)

	var hedgeC <-chan time.Time
	if s.cfg.HedgeAfter > 0 {
		t := time.NewTimer(s.cfg.HedgeAfter)
		defer t.Stop()
		hedgeC = t.C
	}
	pending := 1
	var firstErr error
	for pending > 0 {
		select {
		case out := <-outcomes:
			pending--
			if out.err == nil {
				for _, res := range out.results {
					s.observeDecision(out.model, res.Malware, res.Confidence)
				}
				return out, nil
			}
			if firstErr == nil {
				firstErr = out.err
			}
		case <-hedgeC:
			hedgeC = nil
			// Never wait for a hedge slot: hedging spends only capacity
			// that is idle right now.
			if hslot, ok := s.pool.TryAcquire(); ok {
				s.metrics.Hedge()
				pending++
				s.runDetached(ctx, hslot, programs, tenantID, true, outcomes)
			}
		case <-ctx.Done():
			// Deadline or client cancellation. Runners poll ctx between
			// programs, finish their current one, and release their own
			// slots; nothing here leaks.
			return batchOutcome{}, ctx.Err()
		}
	}
	return batchOutcome{}, firstErr
}

// runDetached starts one tracked runner goroutine that executes the
// batch on slot and always releases the slot itself.
func (s *Server) runDetached(ctx context.Context, slot *Slot, programs []DecodedProgram, tenantID string, hedge bool, outcomes chan<- batchOutcome) {
	s.detWG.Add(1)
	go func() {
		defer s.detWG.Done()
		out := s.runBatch(ctx, slot, programs, tenantID)
		out.hedge = hedge
		s.pool.Release(slot)
		outcomes <- out
	}()
}

// runBatch scores every program in the batch on one slot, checking the
// request context between programs (DetectProgram itself is the unit
// of non-cancellable work).
func (s *Server) runBatch(ctx context.Context, slot *Slot, programs []DecodedProgram, tenantID string) batchOutcome {
	out := batchOutcome{session: slot.ID, model: slot.Model, results: make([]DetectResult, len(programs))}
	for i, p := range programs {
		if err := ctx.Err(); err != nil {
			out.err = err
			return out
		}
		v, err := slot.Sup.DetectProgram(p.Windows)
		if err != nil {
			out.err = fmt.Errorf("program %d: %v", i, err)
			return out
		}
		conf := Confidence(v.Score, s.threshold, v.Malware)
		out.results[i] = DetectResult{
			ID:          p.ID,
			Malware:     v.Malware,
			Score:       v.Score,
			Confidence:  conf,
			Unprotected: v.Unprotected,
			Attempts:    v.Attempts,
			Windows:     len(p.Windows),
		}
		if s.cfg.Trace != nil {
			s.traceDecision(slot, p, v, conf, tenantID)
		}
	}
	return out
}

// traceDecision offers one decision's provenance to the trace sink.
// A protected verdict carries the draw log of its final scoring pass
// (earlier retries were overwritten by the attempt that produced the
// verdict); a degraded verdict ran on the exact unit and records an
// empty log, which replays as exact arithmetic.
func (s *Server) traceDecision(slot *Slot, p DecodedProgram, v core.Verdict, conf float64, tenantID string) {
	draws := faults.DrawLog{InitialGap: -1}
	if !v.Unprotected {
		draws = slot.Det.LastDraws()
	}
	s.traceRecord(slot, p.Windows, v, conf, draws, tenantID)
}

// traceRecord offers one decision's provenance to the trace sink with
// an explicit draw log — the shared tail of the scalar path (which
// reads the slot detector's last recorded pass) and the batched path
// (which carries each lane's own log from the batched pass). With a
// TraceTenants filter configured, only the listed tenants' decisions
// reach the sink.
func (s *Server) traceRecord(slot *Slot, windows []trace.WindowCounts, v core.Verdict, conf float64, draws faults.DrawLog, tenantID string) {
	if s.traceTenants != nil && !s.traceTenants[tenantID] {
		return
	}
	s.cfg.Trace.Record(replay.Record{
		Tenant:       tenantID,
		ModelVersion: slot.Model,
		Seed:         slot.Seed,
		Slot:        slot.ID,
		Gen:         slot.Gen,
		Rate:        slot.Sup.TargetRate(),
		DepthMV:     slot.Sup.Session().Depth(),
		Threshold:   s.threshold,
		Malware:     v.Malware,
		Unprotected: v.Unprotected,
		Score:       v.Score,
		Confidence:  conf,
		Draws:       draws,
		Windows:     windows,
	})
}

// statusClientClosedRequest is the de-facto code (nginx's 499) used
// only as a metrics label for requests abandoned while queued.
const statusClientClosedRequest = 499

// Confidence normalizes the decision margin into [0, 1]: the distance
// between the mean window score and the threshold, relative to the
// room on the decided side. Scores at the threshold — the ones a
// stochastic re-roll could flip — report 0; saturated scores report 1.
// Exported so `shmd replay` can reproduce served confidences through
// replay.Verify without the replay package importing the server.
func Confidence(score, threshold float64, malware bool) float64 {
	var c float64
	if malware {
		c = (score - threshold) / (1 - threshold)
	} else {
		c = (threshold - score) / threshold
	}
	if c < 0 {
		return 0
	}
	if c > 1 {
		return 1
	}
	return c
}

// HealthReport is the GET /healthz body.
type HealthReport struct {
	// Status is "ok" while any session retains protected detection,
	// "degraded" when every breaker is open.
	Status string `json:"status"`
	// Respawns counts slots rebuilt after quarantine since boot.
	Respawns uint64 `json:"respawns"`
	// Quarantined counts slots currently out of rotation.
	Quarantined int64 `json:"quarantined"`
	// ModelVersion is the incumbent model version (0 = compiled-in
	// model, no registry).
	ModelVersion uint32 `json:"modelVersion"`
	// Rollout reports the canary rollout controller's state.
	Rollout RolloutStatus `json:"rollout"`
	// Sessions reports each pooled supervisor.
	Sessions []SessionHealth `json:"sessions"`
}

// SessionHealth is one pooled session's health snapshot.
type SessionHealth struct {
	Session int `json:"session"`
	// Generation counts rebuilds of this slot index (0 = boot slot).
	Generation int    `json:"generation"`
	State      string `json:"state"`
	// Lifecycle is the slot's lifecycle state: active, quarantined, or
	// respawning.
	Lifecycle string `json:"lifecycle"`
	// ModelVersion is the registry version of the model this slot
	// serves (0 = compiled-in model).
	ModelVersion   uint32  `json:"modelVersion"`
	TargetRate     float64 `json:"targetRate"`
	Detections     uint64  `json:"detections"`
	Protected      uint64  `json:"protected"`
	Unprotected    uint64  `json:"unprotected"`
	Retries        uint64  `json:"retries"`
	Failures       uint64  `json:"failures"`
	Trips          uint64  `json:"trips"`
	Recoveries     uint64  `json:"recoveries"`
	Canaries       uint64  `json:"canaries"`
	Drifts         uint64  `json:"drifts"`
	Recalibrations uint64  `json:"recalibrations"`
	CanaryFailures uint64  `json:"canaryFailures"`
	// LastCanaryRate is the most recent observed fault rate (null
	// semantics: omitted until the first canary runs).
	LastCanaryRate *float64 `json:"lastCanaryRate,omitempty"`
}

// healthReport assembles the pool health snapshot shared by the HTTP
// /healthz handler and the wire HEALTH frame, plus the status code it
// maps to (200 ok, 503 degraded).
func (s *Server) healthReport() (HealthReport, int) {
	report := HealthReport{
		Status:       "ok",
		Respawns:     s.pool.Respawns(),
		Quarantined:  s.pool.QuarantinedNow(),
		ModelVersion: s.rollout.Incumbent(),
		Rollout:      s.rollout.Status(),
	}
	for _, slot := range s.pool.Slots() {
		h := slot.Sup.Health()
		sh := SessionHealth{
			Session:        slot.ID,
			Generation:     slot.Gen,
			State:          h.State.String(),
			Lifecycle:      slot.Lifecycle().String(),
			ModelVersion:   slot.Model,
			TargetRate:     slot.Sup.TargetRate(),
			Detections:     h.Detections,
			Protected:      h.Protected,
			Unprotected:    h.Unprotected,
			Retries:        h.Retries,
			Failures:       h.Failures,
			Trips:          h.Trips,
			Recoveries:     h.Recoveries,
			Canaries:       h.Canaries,
			Drifts:         h.Drifts,
			Recalibrations: h.Recalibrations,
			CanaryFailures: h.CanaryFailures,
		}
		if h.Canaries > 0 {
			rate := h.LastCanaryRate
			sh.LastCanaryRate = &rate
		}
		report.Sessions = append(report.Sessions, sh)
	}
	code := http.StatusOK
	if s.pool.Degraded() {
		report.Status = "degraded"
		code = http.StatusServiceUnavailable
	}
	return report, code
}

// handleHealthz serves GET /healthz: 200 while at least one session
// can still detect protected, 503 when the whole pool is degraded.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.status(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	report, code := s.healthReport()
	s.metrics.Request(code)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(report)
}

// ReadyReport is the GET /readyz body.
type ReadyReport struct {
	// Ready is true while the server should receive new traffic.
	Ready bool `json:"ready"`
	// Reason explains a false Ready: "draining" (graceful shutdown in
	// progress) or "degraded" (every pooled breaker is open).
	Reason string `json:"reason,omitempty"`
}

// handleReadyz serves GET /readyz: readiness, as distinct from the
// liveness /healthz reports. It turns 503 the moment a graceful drain
// begins — while in-flight requests are still completing — so a router
// health-probing this endpoint stops sending new work before the
// listener disappears. A fully degraded pool is also not ready: the
// fleet should prefer backends that still detect protected.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.status(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	report := ReadyReport{Ready: true}
	switch {
	case s.draining.Load():
		report = ReadyReport{Reason: "draining"}
	case s.pool.Degraded():
		report = ReadyReport{Reason: "degraded"}
	}
	code := http.StatusOK
	if !report.Ready {
		code = http.StatusServiceUnavailable
		s.shedHint(w)
	}
	s.metrics.Request(code)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(report)
}

// handleMetrics serves GET /metrics in the Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.status(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.metrics.Request(http.StatusOK)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WriteProm(w, s.pool)
	fmt.Fprintf(w, "# HELP shmd_model_active_version Incumbent model version (0 = compiled-in model).\n")
	fmt.Fprintf(w, "# TYPE shmd_model_active_version gauge\n")
	fmt.Fprintf(w, "shmd_model_active_version %d\n", s.rollout.Incumbent())
	if s.cfg.Trace != nil {
		fmt.Fprintf(w, "# HELP shmd_trace_records_total Decision-trace records durably written.\n")
		fmt.Fprintf(w, "# TYPE shmd_trace_records_total counter\n")
		fmt.Fprintf(w, "shmd_trace_records_total %d\n", s.cfg.Trace.Written())
		fmt.Fprintf(w, "# HELP shmd_trace_dropped_total Decision-trace records dropped (ring full or sink wedged).\n")
		fmt.Fprintf(w, "# TYPE shmd_trace_dropped_total counter\n")
		fmt.Fprintf(w, "shmd_trace_dropped_total %d\n", s.cfg.Trace.Dropped())
	}
}

// Serve accepts connections on ln until Shutdown. It returns the
// error from the embedded http.Server (http.ErrServerClosed after a
// clean shutdown is filtered to nil).
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	httpSrv := &http.Server{Handler: s.mux, ReadHeaderTimeout: s.cfg.ReadHeaderTimeout}
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()
	select {
	case <-ctx.Done():
		s.draining.Store(true) // /readyz goes 503 before the drain starts
		shCtx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownTimeout)
		defer cancel()
		err := httpSrv.Shutdown(shCtx) // drains in-flight requests
		s.waitRunners(shCtx)           // hedged losers can outlive their handlers
		if closeErr := s.Close(); err == nil {
			err = closeErr
		}
		<-done
		return err
	case err := <-done:
		closeErr := s.Close()
		if errors.Is(err, http.ErrServerClosed) || err == nil {
			return closeErr
		}
		return err
	}
}

// waitRunners blocks until every dispatch runner goroutine has
// finished and released its slot, or ctx expires.
func (s *Server) waitRunners(ctx context.Context) {
	done := make(chan struct{})
	go func() { s.detWG.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
	}
}

// Drain waits until no request holds a queue token, then rolls every
// pooled session back to nominal voltage. Tests drive the handler
// directly (no http.Server), so this is their graceful-shutdown
// entry point; Serve gets the same drain from http.Server.Shutdown.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	for i := 0; i < cap(s.inflight); i++ {
		select {
		case s.inflight <- struct{}{}:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	// All tokens held: no handler is past admission. Release them, wait
	// for any hedged losers still finishing their batches, and roll the
	// pool to nominal.
	for i := 0; i < cap(s.inflight); i++ {
		<-s.inflight
	}
	s.waitRunners(ctx)
	if err := ctx.Err(); err != nil {
		return err
	}
	return s.Close()
}

// Close rolls every pooled session's plane back to nominal voltage.
func (s *Server) Close() error { return s.pool.Close() }
