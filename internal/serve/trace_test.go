package serve

import (
	"encoding/json"
	"io"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"shmd/internal/replay"
	"shmd/internal/trace"
)

// TestServeTraceReplaysBitIdentically is the tentpole contract at the
// service boundary: every decision served with a trace sink attached
// must replay off-hardware to the exact recorded verdict, score, and
// confidence.
func TestServeTraceReplaysBitIdentically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "decisions.trace")
	sink, err := replay.OpenSink(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	srv := newTestServer(t, Config{Trace: sink})
	ts := httptest.NewServer(srv.Handler())

	// Serve a few batches so multiple slots (and their distinct fault
	// streams) contribute records.
	scored := 0
	for i := 0; i < 6; i++ {
		body := detectBody(t,
			testWindows(t, trace.Trojan, i, 8),
			testWindows(t, trace.Benign, i, 8))
		resp, raw := postDetect(t, ts, body)
		if resp.StatusCode != 200 {
			t.Fatalf("request %d: status %d, body %s", i, resp.StatusCode, raw)
		}
		scored += 2
	}

	// Metrics must expose the trace counters while the sink is live.
	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mb), "shmd_trace_records_total") ||
		!strings.Contains(string(mb), "shmd_trace_dropped_total") {
		t.Errorf("metrics missing trace counters:\n%s", mb)
	}

	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if sink.Written()+sink.Dropped() < uint64(scored) {
		t.Fatalf("sink accounted %d+%d records, served %d decisions",
			sink.Written(), sink.Dropped(), scored)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rd, err := replay.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	base := testHMD(t)
	n := 0
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("record %d: %v", n, err)
		}
		if rec.Rate != 0.1 {
			t.Errorf("record %d: rate %v, want 0.1", n, rec.Rate)
		}
		if rec.DepthMV <= 0 {
			t.Errorf("record %d: depth %v, want undervolted", n, rec.DepthMV)
		}
		if rec.Unprotected {
			t.Errorf("record %d: unprotected on ideal hardware", n)
		}
		if rec.Seed == 0 {
			t.Errorf("record %d: zero stream seed", n)
		}
		if err := replay.Verify(base, rec, Confidence); err != nil {
			t.Errorf("record %d (slot %d gen %d): %v", n, rec.Slot, rec.Gen, err)
		}
		n++
	}
	if uint64(n) != sink.Written() {
		t.Fatalf("trace holds %d records, sink wrote %d", n, sink.Written())
	}
}

// TestServeTraceObservational pins that attaching a sink does not
// perturb verdicts: the same pool seed with and without tracing
// produces bit-identical scores.
func TestServeTraceObservational(t *testing.T) {
	body := detectBody(t, testWindows(t, trace.Backdoor, 3, 8))
	run := func(sink *replay.Sink) float64 {
		srv := newTestServer(t, Config{Trace: sink, Pool: PoolConfig{Size: 1, Seed: 42, ErrorRate: 0.1}})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		defer srv.Close()
		resp, raw := postDetect(t, ts, body)
		if resp.StatusCode != 200 {
			t.Fatalf("status %d: %s", resp.StatusCode, raw)
		}
		var dr DetectResponse
		if err := json.Unmarshal(raw, &dr); err != nil {
			t.Fatal(err)
		}
		return dr.Results[0].Score
	}
	plain := run(nil)
	path := filepath.Join(t.TempDir(), "t.trace")
	sink, err := replay.OpenSink(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	traced := run(sink)
	sink.Close()
	if math.Float64bits(plain) != math.Float64bits(traced) {
		t.Fatalf("tracing perturbed the verdict: %v != %v", traced, plain)
	}
}

// TestSinkLossDoesNotBlockServing drives a tiny ring with a wedged
// file (closed underneath) — decisions must keep flowing and losses
// must be counted, never block the handler.
func TestSinkLossDoesNotBlockServing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.trace")
	sink, err := replay.OpenSink(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv := newTestServer(t, Config{Trace: sink})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 8; i++ {
			resp, raw := postDetect(t, ts, detectBody(t, testWindows(t, trace.Worm, i, 8)))
			if resp.StatusCode != 200 {
				t.Errorf("request %d: status %d, body %s", i, resp.StatusCode, raw)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("serving blocked behind the trace sink")
	}
	srv.Close()
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if sink.Written()+sink.Dropped() < 8 {
		t.Fatalf("sink accounted %d+%d of 8 decisions", sink.Written(), sink.Dropped())
	}
}
