package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"shmd/internal/fann"
	"shmd/internal/features"
	"shmd/internal/hmd"
	"shmd/internal/registry"
	"shmd/internal/replay"
	"shmd/internal/trace"
	"shmd/pkg/sdk"
)

// testHMDSeed builds a deterministic detector from a given weight
// seed, so tests can mint distinct model versions.
func testHMDSeed(t testing.TB, seed uint64) *hmd.HMD {
	t.Helper()
	net, err := fann.New(fann.Config{
		Layers: []int{features.DimInstrFreq, 8, 1},
		Hidden: fann.SigmoidSymmetric,
		Output: fann.Sigmoid,
		Seed:   seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := hmd.FromNetwork(net, hmd.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// fakeClock is an injectable rollout clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// waitRollout polls until cond holds or the deadline passes.
func waitRollout(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// waitCanaryOn waits for slot 0 to carry the version.
func waitCanaryOn(t *testing.T, srv *Server, version uint32) {
	t.Helper()
	waitRollout(t, fmt.Sprintf("canary slot on v%d", version), func() bool {
		return srv.Pool().ModelVersions()[0] == version
	})
}

func TestRolloutBeginValidation(t *testing.T) {
	srv := newTestServer(t, Config{Pool: PoolConfig{Size: 2, ModelVersion: 1}})
	defer srv.Close()
	ro := srv.Rollout()

	if err := ro.Begin(9); err == nil {
		t.Fatal("Begin(unregistered) = nil, want error")
	}
	if err := ro.Begin(1); err == nil {
		t.Fatal("Begin(incumbent) = nil, want error")
	}
	if err := srv.Pool().RegisterModel(2, testHMDSeed(t, 9)); err != nil {
		t.Fatal(err)
	}
	if err := ro.Begin(2); err != nil {
		t.Fatal(err)
	}
	if err := ro.Begin(2); err == nil {
		t.Fatal("second Begin while canarying = nil, want error")
	}

	// A canary set as large as the pool leaves no incumbent stream.
	big := newTestServer(t, Config{Pool: PoolConfig{Size: 2}, Rollout: RolloutConfig{CanarySlots: 2}})
	defer big.Close()
	if err := big.Pool().RegisterModel(2, testHMDSeed(t, 9)); err != nil {
		t.Fatal(err)
	}
	if err := big.Rollout().Begin(2); err == nil {
		t.Fatal("Begin with canary slots == pool size = nil, want error")
	}
}

// TestRolloutCanaryPromote drives the full agreement path under a fake
// clock: the candidate rolls onto the canary slot, agreeing decision
// streams accumulate, the MinCanaryTime gate holds promotion until the
// clock advances, and promotion rolls every slot and retires the
// canary state.
func TestRolloutCanaryPromote(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1700000000, 0)}
	srv := newTestServer(t, Config{
		Pool: PoolConfig{Size: 3, ModelVersion: 1, Logf: t.Logf},
		Rollout: RolloutConfig{
			Window: 16, MinCanary: 4,
			MinCanaryTime: time.Hour,
			Now:           clock.Now,
		},
	})
	defer srv.Close()
	ro := srv.Rollout()
	if err := srv.Pool().RegisterModel(2, testHMDSeed(t, 9)); err != nil {
		t.Fatal(err)
	}
	if err := ro.Begin(2); err != nil {
		t.Fatal(err)
	}
	waitCanaryOn(t, srv, 2)

	// Perfectly agreeing streams: both sides all-benign, confident.
	feed := func(n int) {
		for i := 0; i < n; i++ {
			ro.Observe(2, false, 0.9)
			ro.Observe(1, false, 0.9)
		}
	}
	feed(30)
	if st := ro.Status(); st.Phase != "canarying" {
		t.Fatalf("phase before MinCanaryTime = %q, want canarying", st.Phase)
	}

	clock.Advance(2 * time.Hour)
	feed(1)
	waitRollout(t, "promotion", func() bool {
		st := ro.Status()
		return st.Phase == "idle" && st.Incumbent == 2
	})
	for id, v := range srv.Pool().ModelVersions() {
		if v != 2 {
			t.Errorf("slot %d on v%d after promote, want v2", id, v)
		}
	}
	if st := ro.Status(); st.Promoted != 1 || st.RolledBack != 0 || st.Aborted != 0 {
		t.Errorf("counters = %+v, want exactly one promotion", st)
	}
	if got := srv.Metrics().ModelRollouts("promoted"); got != 1 {
		t.Errorf("shmd_model_rollouts_total{outcome=promoted} = %d, want 1", got)
	}
}

// TestRolloutDriftRollback: a candidate whose verdict stream diverges
// from the incumbent's rolls back automatically, restoring the
// incumbent on the canary slots and leaving it the active version.
func TestRolloutDriftRollback(t *testing.T) {
	srv := newTestServer(t, Config{
		Pool:    PoolConfig{Size: 3, ModelVersion: 1, Logf: t.Logf},
		Rollout: RolloutConfig{Window: 16, MinCanary: 4},
	})
	defer srv.Close()
	ro := srv.Rollout()
	if err := srv.Pool().RegisterModel(2, testHMDSeed(t, 9)); err != nil {
		t.Fatal(err)
	}
	if err := ro.Begin(2); err != nil {
		t.Fatal(err)
	}
	waitCanaryOn(t, srv, 2)

	// Incumbent all-benign, candidate all-malware: verdicts diverge.
	for i := 0; i < 16; i++ {
		ro.Observe(1, false, 0.9)
		ro.Observe(2, true, 0.9)
	}
	waitRollout(t, "rollback", func() bool {
		st := ro.Status()
		return st.Phase == "idle" && st.RolledBack == 1
	})
	if got := ro.Incumbent(); got != 1 {
		t.Fatalf("incumbent after rollback = v%d, want v1", got)
	}
	for id, v := range srv.Pool().ModelVersions() {
		if v != 1 {
			t.Errorf("slot %d on v%d after rollback, want v1", id, v)
		}
	}
	if got := srv.Metrics().ModelRollouts("rolledback"); got != 1 {
		t.Errorf("shmd_model_rollouts_total{outcome=rolledback} = %d, want 1", got)
	}
}

// TestRolloutRollbackDuringDrain: a rollback decided after the pool
// has closed cannot roll slots; the controller must abort cleanly
// (counted, phase idle) instead of hanging the drain.
func TestRolloutRollbackDuringDrain(t *testing.T) {
	srv := newTestServer(t, Config{
		Pool:    PoolConfig{Size: 2, ModelVersion: 1, Logf: t.Logf},
		Rollout: RolloutConfig{Window: 8, MinCanary: 2},
	})
	ro := srv.Rollout()
	if err := srv.Pool().RegisterModel(2, testHMDSeed(t, 9)); err != nil {
		t.Fatal(err)
	}
	if err := ro.Begin(2); err != nil {
		t.Fatal(err)
	}
	waitCanaryOn(t, srv, 2)

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		ro.Observe(1, false, 0.9)
		ro.Observe(2, true, 0.9)
	}
	waitRollout(t, "abort after drain", func() bool {
		st := ro.Status()
		return st.Phase == "idle" && st.Aborted == 1
	})
	// The drain must complete: every transition goroutine is tracked.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.waitRunners(ctx)
	if err := ctx.Err(); err != nil {
		t.Fatalf("runners still live after abort: %v", err)
	}
}

// TestRolloutActivateUnknownVersionKeepsIncumbent: the admin activate
// path refuses a version the registry does not hold, with a typed
// error and the incumbent untouched.
func TestRolloutActivateUnknownVersionKeepsIncumbent(t *testing.T) {
	dir := t.TempDir()
	reg, err := registry.Open(filepath.Join(dir, "registry"), t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	det := testHMD(t)
	m, err := registry.NewManifest(1, registry.FannType, det, 42, registry.DefaultGoldenSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(m); err != nil {
		t.Fatal(err)
	}
	if err := reg.Activate(1); err != nil {
		t.Fatal(err)
	}
	srv, err := New(det, Config{
		Pool:     PoolConfig{Size: 2, ErrorRate: 0.1, Seed: 1, ModelVersion: 1},
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := ts.Client().Post(ts.URL+"/v1/admin/models?mode=activate&version=9", "application/octet-stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("activate unknown version: status %d (%s), want 404", resp.StatusCode, body)
	}
	if got := srv.Rollout().Incumbent(); got != 1 {
		t.Fatalf("incumbent after failed activate = v%d, want v1", got)
	}
	if v, ok := reg.Active(); !ok || v != 1 {
		t.Fatalf("registry active after failed activate = %d/%v, want 1/true", v, ok)
	}
}

// TestAdminCanaryRolloutOverHTTP pushes a v2 manifest through the
// admin surface and drives it to promotion with live traffic: the end
// to end path the soak harness exercises, in miniature.
func TestAdminCanaryRolloutOverHTTP(t *testing.T) {
	dir := t.TempDir()
	reg, err := registry.Open(filepath.Join(dir, "registry"), t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	det := testHMD(t)
	m1, err := registry.NewManifest(1, registry.FannType, det, 42, registry.DefaultGoldenSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(m1); err != nil {
		t.Fatal(err)
	}
	if err := reg.Activate(1); err != nil {
		t.Fatal(err)
	}
	srv, err := New(det, Config{
		Pool:     PoolConfig{Size: 2, ErrorRate: 0.1, Seed: 1, ModelVersion: 1, Logf: t.Logf},
		Registry: reg,
		Rollout:  RolloutConfig{Window: 8, MinCanary: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// v2 is the same network re-encoded: identical verdicts, so the
	// canary must agree and promote.
	m2, err := registry.NewManifest(2, registry.FannType, det, 43, registry.DefaultGoldenSpecs())
	if err != nil {
		t.Fatal(err)
	}
	blob, err := registry.EncodeManifest(m2)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/admin/models", "application/octet-stream", strings.NewReader(string(blob)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("admin push: status %d (%s), want 202", resp.StatusCode, body)
	}
	waitCanaryOn(t, srv, 2)

	// Live traffic through both versions until the controller promotes.
	reqBody := detectBody(t,
		testWindows(t, trace.Trojan, 0, 8),
		testWindows(t, trace.Benign, 0, 8))
	waitRollout(t, "promotion via live traffic", func() bool {
		resp, raw := postDetect(t, ts, reqBody)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("detect during rollout: status %d (%s)", resp.StatusCode, raw)
		}
		st := srv.Rollout().Status()
		return st.Phase == "idle" && st.Incumbent == 2
	})
	if v, ok := reg.Active(); !ok || v != 2 {
		t.Fatalf("registry active after promote = %d/%v, want 2/true", v, ok)
	}

	// GET surface reflects the new incumbent.
	getResp, err := ts.Client().Get(ts.URL + "/v1/admin/models")
	if err != nil {
		t.Fatal(err)
	}
	defer getResp.Body.Close()
	var report AdminModelsReport
	if err := json.NewDecoder(getResp.Body).Decode(&report); err != nil {
		t.Fatal(err)
	}
	if report.Active != 2 || len(report.Models) != 2 {
		t.Fatalf("admin GET = %+v, want active 2 over 2 models", report)
	}
}

// TestWarmRestartAdoptsActiveVersion is the zero-recalibration pin: a
// restart that re-opens the registry and the calibration journal must
// boot every slot on the journaled ACTIVE version without a single
// recalibration, witnessed by the regulator's Calibrations counter.
func TestWarmRestartAdoptsActiveVersion(t *testing.T) {
	dir := t.TempDir()
	regDir := filepath.Join(dir, "registry")
	journal := filepath.Join(dir, "calibration.journal")

	reg, err := registry.Open(regDir, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	m, err := registry.NewManifest(1, registry.FannType, testHMD(t), 42, registry.DefaultGoldenSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(m); err != nil {
		t.Fatal(err)
	}
	if err := reg.Activate(1); err != nil {
		t.Fatal(err)
	}

	boot := func(reg *registry.Registry) (*Pool, uint64) {
		t.Helper()
		active, ok := reg.Active()
		if !ok {
			t.Fatal("registry has no active version")
		}
		mdl, err := reg.Model(active)
		if err != nil {
			t.Fatal(err)
		}
		pool, err := NewPool(mdl.Detector(), PoolConfig{
			Size: 2, ErrorRate: 0.1, Seed: 5,
			JournalPath: journal, ModelVersion: active, Logf: t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		var calibs uint64
		for _, slot := range pool.Slots() {
			if slot.Model != active {
				t.Errorf("slot %d on v%d, want journaled active v%d", slot.ID, slot.Model, active)
			}
			c, ok := slot.Det.Regulator().(interface{ Calibrations() uint64 })
			if !ok {
				t.Fatal("regulator does not count calibrations")
			}
			calibs += c.Calibrations()
		}
		return pool, calibs
	}

	cold, coldCalibs := boot(reg)
	if coldCalibs == 0 {
		t.Fatal("cold boot ran no calibrations; journal adoption is untestable")
	}
	if err := cold.Close(); err != nil {
		t.Fatal(err)
	}

	// The restart: fresh registry handle, fresh pool, same journal.
	reg2, err := registry.Open(regDir, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	warm, warmCalibs := boot(reg2)
	defer warm.Close()
	if warmCalibs != 0 {
		t.Fatalf("warm restart ran %d calibrations, want 0 (journal adoption)", warmCalibs)
	}
}

// promScrape parses a Prometheus text exposition into sample name
// (with labels, verbatim) → value.
func promScrape(t *testing.T, body string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	sc := bufio.NewScanner(strings.NewReader(body))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable exposition line %q", line)
		}
		var v float64
		if _, err := fmt.Sscanf(line[i+1:], "%g", &v); err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		samples[line[:i]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples
}

// TestModelVersionMetricsAndHealth pins the observability surface for
// versioned models: the per-session shmd_session_model_version gauge,
// the shmd_model_active_version gauge, per-version decision counters,
// and the modelVersion fields in /healthz — all via a real scrape.
func TestModelVersionMetricsAndHealth(t *testing.T) {
	srv := newTestServer(t, Config{Pool: PoolConfig{Size: 2, ModelVersion: 7}})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, raw := postDetect(t, ts, detectBody(t,
		testWindows(t, trace.Trojan, 0, 8),
		testWindows(t, trace.Benign, 0, 8)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("detect: status %d (%s)", resp.StatusCode, raw)
	}

	mResp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mResp.Body)
	mResp.Body.Close()
	samples := promScrape(t, string(body))

	for session := 0; session < 2; session++ {
		name := fmt.Sprintf("shmd_session_model_version{session=\"%d\"}", session)
		if got, ok := samples[name]; !ok || got != 7 {
			t.Errorf("%s = %g/%v, want 7", name, got, ok)
		}
	}
	if got := samples["shmd_model_active_version"]; got != 7 {
		t.Errorf("shmd_model_active_version = %g, want 7", got)
	}
	decided := samples[`shmd_model_decisions_total{version="7",verdict="malware"}`] +
		samples[`shmd_model_decisions_total{version="7",verdict="benign"}`]
	if decided != 2 {
		t.Errorf("shmd_model_decisions_total{version=7} = %g, want 2", decided)
	}

	hResp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hResp.Body.Close()
	var report HealthReport
	if err := json.NewDecoder(hResp.Body).Decode(&report); err != nil {
		t.Fatal(err)
	}
	if report.ModelVersion != 7 {
		t.Errorf("healthz modelVersion = %d, want 7", report.ModelVersion)
	}
	if report.Rollout.Phase != "idle" {
		t.Errorf("healthz rollout phase = %q, want idle", report.Rollout.Phase)
	}
	for _, sh := range report.Sessions {
		if sh.ModelVersion != 7 {
			t.Errorf("session %d modelVersion = %d, want 7", sh.Session, sh.ModelVersion)
		}
	}
}

// TestRegistryModelBitIdenticalServe is the cross-version identity
// pin at the serve layer: a registry-loaded copy of the seed model
// must produce bit-identical verdicts, scores, and confidences to the
// compiled-in detector at batch 1, 16, and 64 — over HTTP and over
// SHMDWIRE. Four fresh servers share a pool seed; each serves exactly
// one request, so all four consume their fault streams identically.
func TestRegistryModelBitIdenticalServe(t *testing.T) {
	reg, err := registry.Open(filepath.Join(t.TempDir(), "registry"), t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	m, err := registry.NewManifest(1, registry.FannType, testHMD(t), 42, registry.DefaultGoldenSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(m); err != nil {
		t.Fatal(err)
	}
	mdl, err := reg.Model(1)
	if err != nil {
		t.Fatal(err)
	}

	for _, batch := range []int{1, 16, 64} {
		t.Run(fmt.Sprintf("batch=%d", batch), func(t *testing.T) {
			traces := make([][]trace.WindowCounts, batch)
			for i := range traces {
				cls := trace.Benign
				if i%2 == 0 {
					cls = trace.Trojan
				}
				traces[i] = testWindows(t, cls, i/2, 4)
			}
			maxBatch := 0
			if batch > 1 {
				maxBatch = batch
			}
			mkCfg := func(version uint32) Config {
				return Config{
					Pool:     PoolConfig{Size: 1, Seed: 11, ErrorRate: 0.1, ModelVersion: version},
					MaxBatch: maxBatch,
					Limits:   Limits{MaxBodyBytes: 32 << 20},
				}
			}
			serveHTTP := func(det *hmd.HMD, version uint32) []DetectResult {
				srv, err := New(det, mkCfg(version))
				if err != nil {
					t.Fatal(err)
				}
				defer srv.Close()
				ts := httptest.NewServer(srv.Handler())
				defer ts.Close()
				resp, raw := postDetect(t, ts, detectBody(t, traces...))
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("HTTP status %d: %s", resp.StatusCode, raw)
				}
				var dr DetectResponse
				if err := json.Unmarshal(raw, &dr); err != nil {
					t.Fatal(err)
				}
				return dr.Results
			}
			serveWire := func(det *hmd.HMD, version uint32) []DetectResult {
				srv, err := New(det, mkCfg(version))
				if err != nil {
					t.Fatal(err)
				}
				defer srv.Close()
				addr, stop := startWireServer(t, srv)
				defer stop()
				cl, err := sdk.Dial(addr, sdk.Options{JitterSeed: 1})
				if err != nil {
					t.Fatal(err)
				}
				defer cl.Close()
				v, err := cl.Detect(context.Background(), wireDetectRequest(traces...))
				if err != nil {
					t.Fatal(err)
				}
				out := make([]DetectResult, len(v.Results))
				for i, r := range v.Results {
					out[i] = DetectResult{
						ID: r.ID, Malware: r.Malware, Score: r.Score,
						Confidence: r.Confidence, Unprotected: r.Unprotected,
					}
				}
				return out
			}

			compiledHTTP := serveHTTP(testHMD(t), 0)
			registryHTTP := serveHTTP(mdl.Detector(), 1)
			compiledWire := serveWire(testHMD(t), 0)
			registryWire := serveWire(mdl.Detector(), 1)

			check := func(name string, got []DetectResult) {
				t.Helper()
				if len(got) != len(compiledHTTP) {
					t.Fatalf("%s: %d results, want %d", name, len(got), len(compiledHTTP))
				}
				for i, r := range got {
					ref := compiledHTTP[i]
					if r.Malware != ref.Malware ||
						math.Float64bits(r.Score) != math.Float64bits(ref.Score) ||
						math.Float64bits(r.Confidence) != math.Float64bits(ref.Confidence) {
						t.Errorf("%s result %d: %+v != compiled %+v", name, i, r, ref)
					}
				}
			}
			check("registry/HTTP", registryHTTP)
			check("compiled/wire", compiledWire)
			check("registry/wire", registryWire)
		})
	}
}

// TestMixedVersionTracesReplayPerVersion audits a mid-rollout trace:
// with slot 0 rolled to v2 and slot 1 still on v1, every decision
// record carries its serving model version, and replay.Verify
// reproduces each verdict bit-identically against that version's
// detector.
func TestMixedVersionTracesReplayPerVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "decisions.trace")
	sink, err := replay.OpenSink(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	detV1 := testHMD(t)
	detV2 := testHMDSeed(t, 9)
	srv, err := New(detV1, Config{
		Pool:  PoolConfig{Size: 2, Seed: 5, ErrorRate: 0.1, ModelVersion: 1, Logf: t.Logf},
		Trace: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Pool().RegisterModel(2, detV2); err != nil {
		t.Fatal(err)
	}
	if err := srv.Pool().Roll(context.Background(), 0, 2); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())

	for i := 0; i < 12; i++ {
		resp, raw := postDetect(t, ts, detectBody(t, testWindows(t, trace.Trojan, i%4, 8)))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d (%s)", i, resp.StatusCode, raw)
		}
	}
	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rd, err := replay.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint32]int{}
	for n := 0; ; n++ {
		rec, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("record %d: %v", n, err)
		}
		var base *hmd.HMD
		switch rec.ModelVersion {
		case 1:
			base = detV1
		case 2:
			base = detV2
		default:
			t.Fatalf("record %d: model version %d, want 1 or 2", n, rec.ModelVersion)
		}
		seen[rec.ModelVersion]++
		if err := replay.Verify(base, rec, Confidence); err != nil {
			t.Errorf("record %d (v%d slot %d): %v", n, rec.ModelVersion, rec.Slot, err)
		}
	}
	if seen[1] == 0 || seen[2] == 0 {
		t.Fatalf("trace versions seen = %v, want both v1 and v2 present", seen)
	}
}
