package serve

import (
	"errors"
	"fmt"
	"io/fs"
	"sync"
	"time"

	"shmd/internal/journal"
	"shmd/internal/volt"
)

// DefaultJournalMaxAge is how old a journal entry may be before it is
// treated as stale and recalibrated (silicon aging and seasonal
// ambient shifts move the curve on week scales, not request scales).
const DefaultJournalMaxAge = 30 * 24 * time.Hour

// journalVerifyMuls is the canary probe length used to verify a
// journaled depth at boot. At the paper's operating rates the binomial
// noise over this many multiplications sits far inside the supervisor
// tolerance band, so a passing probe is statistically meaningful.
const journalVerifyMuls = 4096

// journalStore is the pool's cache over the on-disk calibration
// journal: entries keyed by (device fingerprint, rate), rewritten
// atomically through journal.Save on every record.
type journalStore struct {
	mu      sync.Mutex
	path    string
	maxAge  time.Duration
	logf    func(format string, args ...any)
	entries map[string]journal.Entry
}

// journalKey keys entries by device and requested rate.
func journalKey(device string, rate float64) string {
	return fmt.Sprintf("%s|%.9g", device, rate)
}

// newJournalStore loads the journal at path. A missing file is a cold
// start; a corrupt or unreadable one is logged and discarded — the
// pool recalibrates every slot and the next record regenerates a valid
// file. Journals are never trusted over their own checksum.
func newJournalStore(path string, maxAge time.Duration, logf func(string, ...any)) *journalStore {
	if maxAge == 0 {
		maxAge = DefaultJournalMaxAge
	}
	js := &journalStore{path: path, maxAge: maxAge, logf: logf, entries: map[string]journal.Entry{}}
	entries, err := journal.Load(path)
	switch {
	case err == nil:
		for _, e := range entries {
			js.entries[journalKey(e.Device, e.Rate)] = e
		}
	case errors.Is(err, fs.ErrNotExist):
		// Cold start: nothing journaled yet.
	default:
		logf("serve: calibration journal %s rejected: %v (recalibrating from scratch)", path, err)
	}
	return js
}

// lookup returns a fresh journal entry for (device, rate), or nil on
// miss or staleness. Stale entries are dropped (and logged) so the
// recalibration that follows rewrites them.
func (js *journalStore) lookup(device string, rate float64) *journal.Entry {
	js.mu.Lock()
	defer js.mu.Unlock()
	e, ok := js.entries[journalKey(device, rate)]
	if !ok {
		return nil
	}
	if js.maxAge > 0 && time.Since(time.Unix(e.SavedUnix, 0)) > js.maxAge {
		js.logf("serve: journal entry for device %s rate %g is stale (saved %s); recalibrating",
			device, rate, time.Unix(e.SavedUnix, 0).Format(time.RFC3339))
		delete(js.entries, journalKey(device, rate))
		return nil
	}
	return &e
}

// record stores an entry and rewrites the journal file atomically.
func (js *journalStore) record(e journal.Entry) {
	js.mu.Lock()
	defer js.mu.Unlock()
	js.entries[journalKey(e.Device, e.Rate)] = e
	js.saveLocked()
}

// drop removes an entry (an unusable depth) and rewrites the file.
func (js *journalStore) drop(e journal.Entry) {
	js.mu.Lock()
	defer js.mu.Unlock()
	delete(js.entries, journalKey(e.Device, e.Rate))
	js.saveLocked()
}

// saveLocked writes the current entry set through journal.Save.
// Callers hold js.mu. Persistence failures are logged, not fatal: the
// journal is an accelerator, never a correctness dependency.
func (js *journalStore) saveLocked() {
	entries := make([]journal.Entry, 0, len(js.entries))
	for _, e := range js.entries {
		entries = append(entries, e)
	}
	if err := journal.Save(js.path, entries); err != nil {
		js.logf("serve: calibration journal write failed: %v", err)
	}
}

// journalLookup resolves a journal entry for this pool's operating
// point, or nil when journaling is off, the operating point is not
// rate-targeted, or the journal has no fresh entry.
func (p *Pool) journalLookup(profile volt.DeviceProfile, rate float64) *journal.Entry {
	if p.journal == nil || rate <= 0 {
		return nil
	}
	return p.journal.lookup(journal.DeviceKey(profile), rate)
}

// journalRecord persists a freshly calibrated operating point.
func (p *Pool) journalRecord(profile volt.DeviceProfile, rate, depthMV, tempC float64) {
	if p.journal == nil {
		return
	}
	p.journal.record(journal.Entry{
		Device:    journal.DeviceKey(profile),
		Rate:      rate,
		DepthMV:   depthMV,
		TempC:     tempC,
		SavedUnix: time.Now().Unix(),
	})
}

// journalDrop discards an entry that proved unusable.
func (p *Pool) journalDrop(e journal.Entry) {
	if p.journal == nil {
		return
	}
	p.journal.drop(e)
}

// verifyJournaled checks a journal-booted slot with a known-answer
// canary read: the observed fault rate must land inside the supervisor
// tolerance band around the target. A passing probe means the restart
// reached ready without a single CalibrateToRate call; a failing one
// means the journal was stale — the slot recalibrates in place and the
// journal is rewritten with the corrected depth.
func (p *Pool) verifyJournaled(slot *Slot, profile volt.DeviceProfile, rate float64) {
	sess := slot.Sup.Session()
	tol := p.cfg.Supervisor.RateTolerance
	if tol == 0 {
		tol = 0.35
	}
	var observed float64
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		observed, err = sess.ObserveRate(journalVerifyMuls)
		if err == nil || permanentErr(err) {
			break
		}
	}
	if err != nil {
		// The probe itself faulted: leave the journaled depth in place;
		// the supervisor's own canaries take over from here.
		p.logf("serve: slot %d: journal verify canary failed: %v", slot.ID, err)
		return
	}
	if observed >= rate*(1-tol) && observed <= rate*(1+tol) {
		return // journaled depth verified — calibration skipped entirely
	}
	p.logf("serve: slot %d: journaled depth produces rate %.4g, target %.4g; recalibrating", slot.ID, observed, rate)
	depth, err := sess.Recalibrate(rate)
	if err != nil {
		p.logf("serve: slot %d: recalibration after stale journal failed: %v", slot.ID, err)
		return
	}
	p.journalRecord(profile, rate, depth, slot.Det.Regulator().Temperature())
}
