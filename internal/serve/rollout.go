package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"shmd/internal/conform"
	"shmd/internal/registry"
)

// Canary rollout: a new model version is rolled onto N canary slots
// through Pool.Roll (the same acquire-exclusively-and-rebuild motion
// the quarantine/respawn machinery uses, so no request is ever dropped
// or double-served), and the canary slots' verdict and low-confidence
// streams are compared against the incumbent slots' over a sliding
// window with Wald sequential tests from internal/conform. Agreement
// auto-promotes (remaining slots roll, the registry ACTIVE pointer
// flips); drift auto-rolls the canaries back to the incumbent.

// RolloutConfig tunes the canary rollout controller.
type RolloutConfig struct {
	// CanarySlots is how many slots carry the candidate during the
	// canary phase (default 1; must be < pool size so an incumbent
	// stream exists to compare against).
	CanarySlots int
	// Window is the sliding observation window per side, in decisions
	// (default 64).
	Window int
	// Delta is the indifference half-width on the compared rates:
	// drifts smaller than Delta are tolerated by design (default 0.2).
	Delta float64
	// Alpha and Beta bound the per-test false-alarm and miss
	// probabilities (default 0.02 each).
	Alpha float64
	Beta  float64
	// MinCanary is the minimum number of decisions each side must
	// contribute before the tests may conclude anything (default 16).
	MinCanary int
	// MinCanaryTime keeps the canary soaking at least this long even
	// after statistical agreement (default 0 = promote on agreement).
	MinCanaryTime time.Duration
	// Now is the clock (nil = time.Now). Tests inject a fake clock to
	// drive MinCanaryTime deterministically.
	Now func() time.Time
}

// withDefaults fills unset fields.
func (cfg RolloutConfig) withDefaults() RolloutConfig {
	if cfg.CanarySlots == 0 {
		cfg.CanarySlots = 1
	}
	if cfg.Window == 0 {
		cfg.Window = 64
	}
	if cfg.Delta == 0 {
		cfg.Delta = 0.2
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = 0.02
	}
	if cfg.Beta == 0 {
		cfg.Beta = 0.02
	}
	if cfg.MinCanary == 0 {
		cfg.MinCanary = 16
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return cfg
}

// RolloutPhase is the rollout state machine's position.
type RolloutPhase int32

const (
	// RolloutIdle: no rollout in flight.
	RolloutIdle RolloutPhase = iota
	// RolloutCanarying: canary slots carry the candidate; streams are
	// being compared.
	RolloutCanarying
	// RolloutPromoting: agreement reached; remaining slots are rolling
	// onto the candidate.
	RolloutPromoting
	// RolloutRollingBack: drift detected; canary slots are rolling
	// back to the incumbent.
	RolloutRollingBack
)

// String names the phase for health reports and logs.
func (p RolloutPhase) String() string {
	switch p {
	case RolloutIdle:
		return "idle"
	case RolloutCanarying:
		return "canarying"
	case RolloutPromoting:
		return "promoting"
	case RolloutRollingBack:
		return "rollingback"
	default:
		return fmt.Sprintf("serve.RolloutPhase(%d)", int32(p))
	}
}

// obsRing is one side's sliding window of decision observations.
type obsRing struct {
	malware []bool
	lowConf []bool
	n       int // total pushed (ring holds min(n, cap))
}

func newObsRing(window int) *obsRing {
	return &obsRing{malware: make([]bool, 0, window), lowConf: make([]bool, 0, window)}
}

func (r *obsRing) push(malware, lowConf bool) {
	if len(r.malware) < cap(r.malware) {
		r.malware = append(r.malware, malware)
		r.lowConf = append(r.lowConf, lowConf)
	} else {
		i := r.n % cap(r.malware)
		r.malware[i] = malware
		r.lowConf[i] = lowConf
	}
	r.n++
}

func (r *obsRing) len() int  { return len(r.malware) }
func (r *obsRing) full() bool { return len(r.malware) == cap(r.malware) }

func rateOf(bits []bool) float64 {
	if len(bits) == 0 {
		return 0
	}
	n := 0
	for _, b := range bits {
		if b {
			n++
		}
	}
	return float64(n) / float64(len(bits))
}

// lowConfidenceMargin classifies a decision as low-confidence for the
// drift comparison: the score sat within a quarter of the usable
// margin of the threshold. A model whose scores cluster near the
// boundary flips verdicts under stochastic re-rolls even when its
// verdict rate happens to match.
const lowConfidenceMargin = 0.25

// rollout is the canary rollout controller.
type rollout struct {
	srv *Server
	cfg RolloutConfig
	reg *registry.Registry // nil when serving without a registry

	mu        sync.Mutex
	phase     RolloutPhase
	incumbent uint32
	candidate uint32
	canaryIDs []int
	started   time.Time
	canary    *obsRing // candidate-version decisions
	baseline  *obsRing // incumbent-version decisions

	promoted   uint64
	rolledBack uint64
	aborted    uint64
}

func newRollout(srv *Server, reg *registry.Registry, cfg RolloutConfig) *rollout {
	return &rollout{
		srv:       srv,
		cfg:       cfg.withDefaults(),
		reg:       reg,
		incumbent: srv.cfg.Pool.ModelVersion,
	}
}

// RolloutStatus is the controller's observable state, reported by
// /healthz and GET /v1/admin/models.
type RolloutStatus struct {
	Phase     string `json:"phase"`
	Incumbent uint32 `json:"incumbent"`
	Candidate uint32 `json:"candidate,omitempty"`
	CanarySlots []int `json:"canarySlots,omitempty"`
	// CanaryObs / BaselineObs count windowed observations per side.
	CanaryObs   int `json:"canaryObs"`
	BaselineObs int `json:"baselineObs"`
	// CanaryMalwareRate / BaselineMalwareRate are the windowed verdict
	// rates the drift tests compare.
	CanaryMalwareRate   float64 `json:"canaryMalwareRate"`
	BaselineMalwareRate float64 `json:"baselineMalwareRate"`
	Promoted            uint64  `json:"promoted"`
	RolledBack          uint64  `json:"rolledBack"`
	Aborted             uint64  `json:"aborted"`
}

// Status snapshots the controller.
func (ro *rollout) Status() RolloutStatus {
	ro.mu.Lock()
	defer ro.mu.Unlock()
	st := RolloutStatus{
		Phase:      ro.phase.String(),
		Incumbent:  ro.incumbent,
		Candidate:  ro.candidate,
		Promoted:   ro.promoted,
		RolledBack: ro.rolledBack,
		Aborted:    ro.aborted,
	}
	if ro.phase != RolloutIdle {
		st.CanarySlots = append([]int(nil), ro.canaryIDs...)
	}
	if ro.canary != nil {
		st.CanaryObs = ro.canary.len()
		st.CanaryMalwareRate = rateOf(ro.canary.malware)
	}
	if ro.baseline != nil {
		st.BaselineObs = ro.baseline.len()
		st.BaselineMalwareRate = rateOf(ro.baseline.malware)
	}
	return st
}

// Incumbent returns the version the controller considers active.
func (ro *rollout) Incumbent() uint32 {
	ro.mu.Lock()
	defer ro.mu.Unlock()
	return ro.incumbent
}

// Begin starts canarying a candidate version, which must already be
// registered with the pool. The canary slots roll in a tracked
// goroutine; a roll failure (e.g. the pool draining away mid-rollout)
// aborts the rollout and rolls back whatever had rolled.
func (ro *rollout) Begin(candidate uint32) error {
	pool := ro.srv.pool
	if _, err := pool.model(candidate); err != nil {
		return err
	}
	n := ro.cfg.CanarySlots
	if n >= pool.Size() {
		return fmt.Errorf("serve: %d canary slots need a pool larger than %d", n, pool.Size())
	}
	ro.mu.Lock()
	if ro.phase != RolloutIdle {
		ro.mu.Unlock()
		return fmt.Errorf("serve: rollout already in flight (%s v%d)", ro.phase, ro.candidate)
	}
	if candidate == ro.incumbent {
		ro.mu.Unlock()
		return fmt.Errorf("serve: candidate v%d is already the incumbent", candidate)
	}
	ro.phase = RolloutCanarying
	ro.candidate = candidate
	ro.canaryIDs = make([]int, n)
	for i := range ro.canaryIDs {
		ro.canaryIDs[i] = i
	}
	ids := append([]int(nil), ro.canaryIDs...)
	ro.started = ro.cfg.Now()
	ro.canary = newObsRing(ro.cfg.Window)
	ro.baseline = newObsRing(ro.cfg.Window)
	ro.mu.Unlock()
	ro.srv.logf("serve: rollout: canarying v%d on slots %v against incumbent v%d", candidate, ids, ro.Incumbent())

	ro.srv.detWG.Add(1)
	go func() {
		defer ro.srv.detWG.Done()
		for _, id := range ids {
			if err := pool.Roll(context.Background(), id, candidate); err != nil {
				ro.srv.logf("serve: rollout: canary roll of slot %d failed: %v", id, err)
				ro.abort()
				return
			}
		}
	}()
	return nil
}

// ForceActivate skips the canary: every slot rolls straight onto the
// candidate and the registry pointer flips. Activating the incumbent
// is an idempotent no-op.
func (ro *rollout) ForceActivate(candidate uint32) error {
	if _, err := ro.srv.pool.model(candidate); err != nil {
		return err
	}
	ro.mu.Lock()
	if candidate == ro.incumbent && ro.phase == RolloutIdle {
		ro.mu.Unlock()
		return nil
	}
	if ro.phase != RolloutIdle {
		ro.mu.Unlock()
		return fmt.Errorf("serve: rollout already in flight (%s v%d)", ro.phase, ro.candidate)
	}
	ro.phase = RolloutPromoting
	ro.candidate = candidate
	ro.mu.Unlock()
	ro.srv.logf("serve: rollout: force-activating v%d on all slots", candidate)

	ro.srv.detWG.Add(1)
	go func() {
		defer ro.srv.detWG.Done()
		ro.promote(candidate)
	}()
	return nil
}

// Observe feeds one served decision (winner outcomes only; hedge
// losers are discarded). Called from both the scalar and micro-batched
// dispatch paths, which serve HTTP and SHMDWIRE alike.
func (ro *rollout) Observe(version uint32, malware bool, confidence float64) {
	ro.mu.Lock()
	if ro.phase != RolloutCanarying {
		ro.mu.Unlock()
		return
	}
	lowConf := confidence < lowConfidenceMargin
	switch version {
	case ro.candidate:
		ro.canary.push(malware, lowConf)
	case ro.incumbent:
		ro.baseline.push(malware, lowConf)
	default:
		ro.mu.Unlock()
		return
	}
	verdict := ro.decide()
	ro.mu.Unlock()

	switch verdict {
	case conform.RejectNull:
		ro.transition(RolloutRollingBack)
	case conform.AcceptNull:
		ro.transition(RolloutPromoting)
	}
}

// decide judges the two stream pairs under ro.mu. RejectNull = drift
// (roll back), AcceptNull = agreement (promote), Continue = keep
// canarying.
func (ro *rollout) decide() conform.Status {
	if ro.canary.len() < ro.cfg.MinCanary || ro.baseline.len() < ro.cfg.MinCanary {
		return conform.Continue
	}
	verdicts := judgeStream(ro.baseline.malware, ro.canary.malware, ro.cfg)
	confs := judgeStream(ro.baseline.lowConf, ro.canary.lowConf, ro.cfg)
	if verdicts == conform.RejectNull || confs == conform.RejectNull {
		return conform.RejectNull
	}
	agreed := verdicts == conform.AcceptNull && confs == conform.AcceptNull
	// Window-exhausted fallback, mirroring conform.Result's contract: a
	// walk still undecided after the full window sat inside the
	// indifference region for the whole budget — that is agreement, not
	// limbo (Wald's bounds guarantee a drift ≥ Delta would have been
	// rejected with probability ≥ 1-Beta within it).
	if !agreed && ro.canary.full() && ro.baseline.full() &&
		verdicts != conform.RejectNull && confs != conform.RejectNull {
		agreed = true
	}
	if !agreed {
		return conform.Continue
	}
	if ro.cfg.Now().Sub(ro.started) < ro.cfg.MinCanaryTime {
		return conform.Continue
	}
	return conform.AcceptNull
}

// judgeStream sequentially tests the candidate's Bernoulli stream
// against the incumbent window's observed rate. The incumbent rate is
// folded to q = min(p, 1-p): when q leaves room on both sides the
// two-sided RateCheck runs as-is, and when q sits at a boundary (a
// stream that never — or always — fires, exactly where RateCheck's
// down test has no room) the one-sided UpCheck watches for the only
// drift that exists there: the disagreement rate rising.
func judgeStream(incumbent, candidate []bool, cfg RolloutConfig) conform.Status {
	p := rateOf(incumbent)
	folded := p > 0.5
	q := p
	if folded {
		q = 1 - p
	}
	observe := func(chk interface{ Observe(bool) conform.Status }) conform.Status {
		st := conform.Continue
		for _, b := range candidate {
			st = chk.Observe(b != folded)
			if st != conform.Continue {
				return st
			}
		}
		return st
	}
	if q-cfg.Delta > 0 && q+cfg.Delta < 1 {
		chk, err := conform.NewRateCheck(q, cfg.Delta, cfg.Alpha, cfg.Beta)
		if err != nil {
			return conform.Continue
		}
		return observe(chk)
	}
	// Floor the null rate well above zero: stochastic inference flips
	// borderline verdicts by design, so a lone disagreement against a
	// zero-rate incumbent window must not carry a whole rejection on
	// its own (at p0=0.05, crossing Wald's upper bound takes ~3 net
	// disagreements, not 1).
	p0 := q
	if p0 < 0.05 {
		p0 = 0.05
	}
	p1 := q + cfg.Delta
	if p1 >= 1 {
		p1 = 0.999
	}
	if p1 <= p0 {
		return conform.Continue
	}
	chk, err := conform.NewUpCheck(p0, p1, cfg.Alpha, cfg.Beta)
	if err != nil {
		return conform.Continue
	}
	return observe(chk)
}

// transition moves Canarying → Promoting/RollingBack and runs the
// slot rolls in a tracked goroutine. Exactly one caller wins the
// transition; late observers see the phase already moved.
func (ro *rollout) transition(to RolloutPhase) {
	ro.mu.Lock()
	if ro.phase != RolloutCanarying {
		ro.mu.Unlock()
		return
	}
	ro.phase = to
	candidate, incumbent := ro.candidate, ro.incumbent
	ids := append([]int(nil), ro.canaryIDs...)
	ro.mu.Unlock()

	ro.srv.detWG.Add(1)
	go func() {
		defer ro.srv.detWG.Done()
		if to == RolloutPromoting {
			ro.promote(candidate)
		} else {
			ro.rollback(candidate, incumbent, ids)
		}
	}()
}

// promote rolls every slot still on another version onto the
// candidate, flips the registry ACTIVE pointer, and finishes the
// rollout. A roll failure mid-promote (pool draining) aborts; the
// registry pointer is only flipped after every slot carries the
// candidate.
func (ro *rollout) promote(candidate uint32) {
	pool := ro.srv.pool
	for id, v := range pool.ModelVersions() {
		if v == candidate {
			continue
		}
		if err := pool.Roll(context.Background(), id, candidate); err != nil {
			ro.srv.logf("serve: rollout: promote roll of slot %d failed: %v", id, err)
			ro.abort()
			return
		}
	}
	if ro.reg != nil {
		if err := ro.reg.Activate(candidate); err != nil {
			// The fleet is already serving v-candidate; a failed pointer
			// write must not undo that. It costs re-adoption on the next
			// warm restart, nothing live.
			ro.srv.logf("serve: rollout: persisting ACTIVE=v%d failed: %v", candidate, err)
		}
	}
	ro.mu.Lock()
	ro.incumbent = candidate
	ro.candidate = 0
	ro.phase = RolloutIdle
	ro.promoted++
	ro.mu.Unlock()
	ro.srv.metrics.ModelRollout("promoted")
	ro.srv.logf("serve: rollout: v%d promoted on all %d slots", candidate, pool.Size())
}

// rollback returns the canary slots to the incumbent and finishes the
// rollout.
func (ro *rollout) rollback(candidate, incumbent uint32, ids []int) {
	pool := ro.srv.pool
	for _, id := range ids {
		if err := pool.Roll(context.Background(), id, incumbent); err != nil {
			ro.srv.logf("serve: rollout: rollback roll of slot %d failed: %v", id, err)
			ro.abort()
			return
		}
	}
	ro.mu.Lock()
	ro.candidate = 0
	ro.phase = RolloutIdle
	ro.rolledBack++
	ro.mu.Unlock()
	ro.srv.metrics.ModelRollout("rolledback")
	ro.srv.logf("serve: rollout: v%d rolled back, incumbent v%d restored on slots %v", candidate, incumbent, ids)
}

// abort ends a rollout that can no longer make progress (typically
// the pool closed mid-roll during a drain). Slots keep whatever
// version they carry; the registry pointer was never flipped.
func (ro *rollout) abort() {
	ro.mu.Lock()
	ro.candidate = 0
	ro.phase = RolloutIdle
	ro.aborted++
	ro.mu.Unlock()
	ro.srv.metrics.ModelRollout("aborted")
}
