package serve

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"
)

// getReadyz hits /readyz on the handler directly and decodes the body.
func getReadyz(t *testing.T, srv *Server) (int, ReadyReport, http.Header) {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	var report ReadyReport
	if err := json.Unmarshal(rec.Body.Bytes(), &report); err != nil {
		t.Fatalf("readyz body: %v", err)
	}
	return rec.Code, report, rec.Header()
}

// TestReadyzReady pins the happy path: a fresh server is ready, and
// readiness is distinct from the liveness report on /healthz.
func TestReadyzReady(t *testing.T) {
	srv := newTestServer(t, Config{})
	defer srv.Close()
	code, report, _ := getReadyz(t, srv)
	if code != http.StatusOK {
		t.Fatalf("readyz = %d, want 200", code)
	}
	if !report.Ready || report.Reason != "" {
		t.Errorf("report = %+v, want ready with no reason", report)
	}

	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/readyz", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /readyz = %d, want 405", rec.Code)
	}
}

// TestReadyzDrain is the satellite's essential property: /readyz turns
// 503 the moment a graceful drain begins, while /healthz (liveness)
// still answers 200 for the healthy pool.
func TestReadyzDrain(t *testing.T) {
	srv := newTestServer(t, Config{})
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	code, report, hdr := getReadyz(t, srv)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain = %d, want 503", code)
	}
	if report.Ready || report.Reason != "draining" {
		t.Errorf("report = %+v, want not-ready/draining", report)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("draining 503 missing Retry-After")
	}

	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("healthz during drain = %d, want 200 (liveness is not readiness)", rec.Code)
	}
}

// TestReadyzDrainDuringServe checks the Serve shutdown path flips
// readiness too, not just the direct Drain entry point.
func TestReadyzDrainDuringServe(t *testing.T) {
	srv := newTestServer(t, Config{ShutdownTimeout: 5 * time.Second})

	ctx, cancel := context.WithCancel(context.Background())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	code, report, _ := getReadyz(t, srv)
	if code != http.StatusServiceUnavailable || report.Reason != "draining" {
		t.Errorf("after Serve shutdown: code %d report %+v, want 503/draining", code, report)
	}
}

// TestShedHintJitter pins the seeded jitter contract: hints stay in
// [1, 3] and an equal seed reproduces the exact sequence.
func TestShedHintJitter(t *testing.T) {
	draw := func(seed int64, n int) []string {
		srv := newTestServer(t, Config{JitterSeed: seed})
		defer srv.Close()
		hints := make([]string, n)
		for i := range hints {
			rec := httptest.NewRecorder()
			srv.shedHint(rec)
			hints[i] = rec.Header().Get("Retry-After")
			v, err := strconv.Atoi(hints[i])
			if err != nil || v < 1 || v > 3 {
				t.Fatalf("hint %q outside [1,3]", hints[i])
			}
		}
		return hints
	}
	a, b := draw(77, 64), draw(77, 64)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hint %d diverged under equal seeds: %s vs %s", i, a[i], b[i])
		}
	}
	distinct := map[string]bool{}
	for _, h := range draw(78, 64) {
		distinct[h] = true
	}
	if len(distinct) < 2 {
		t.Error("64 hints never varied; jitter is not jittering")
	}
}
