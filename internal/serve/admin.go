package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"shmd/internal/registry"
)

// The model admin surface: GET /v1/admin/models lists the registry and
// the rollout controller's state; POST /v1/admin/models pushes a new
// SHMDMDL1 manifest (or names an already-registered version) and
// starts a canary rollout, a plain registration, or a direct
// activation. Mounted only when Config.Registry is set.

// adminMaxManifestBytes bounds the POST body: the largest manifest the
// registry codec itself accepts, plus framing slack.
const adminMaxManifestBytes = 9 << 20

// AdminModelsReport is the GET /v1/admin/models body.
type AdminModelsReport struct {
	// Active is the incumbent model version serving traffic.
	Active uint32 `json:"active"`
	// Rollout is the canary rollout controller's state.
	Rollout RolloutStatus `json:"rollout"`
	// Models lists every version the registry holds.
	Models []registry.Info `json:"models"`
}

// AdminModelsReply is the POST /v1/admin/models success body.
type AdminModelsReply struct {
	Version uint32 `json:"version"`
	// Action is what the POST started: "registered", "canarying", or
	// "activating".
	Action string `json:"action"`
}

// handleAdminModels serves the model admin surface.
func (s *Server) handleAdminModels(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.adminListModels(w)
	case http.MethodPost:
		s.adminPushModel(w, r)
	default:
		w.Header().Set("Allow", "GET, POST")
		s.status(w, http.StatusMethodNotAllowed, "GET or POST only")
	}
}

// adminListModels serves GET: the registry inventory plus live rollout
// state.
func (s *Server) adminListModels(w http.ResponseWriter) {
	report := AdminModelsReport{
		Active:  s.rollout.Incumbent(),
		Rollout: s.rollout.Status(),
		Models:  s.cfg.Registry.Versions(),
	}
	s.metrics.Request(http.StatusOK)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(report)
}

// adminPushModel serves POST: register the manifest in the body (when
// present), then act on the version per ?mode= — "canary" (default)
// begins a canary rollout, "register" stops after registration,
// "activate" rolls every slot immediately. An empty body with
// ?version=N acts on an already-registered version.
func (s *Server) adminPushModel(w http.ResponseWriter, r *http.Request) {
	mode := r.URL.Query().Get("mode")
	if mode == "" {
		mode = "canary"
	}
	switch mode {
	case "canary", "register", "activate":
	default:
		s.status(w, http.StatusBadRequest, fmt.Sprintf("unknown mode %q (want canary, register, or activate)", mode))
		return
	}

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, adminMaxManifestBytes))
	if err != nil {
		s.status(w, http.StatusRequestEntityTooLarge, err.Error())
		return
	}
	var version uint32
	if len(body) > 0 {
		m, err := registry.DecodeManifest(body)
		if err != nil {
			s.status(w, http.StatusBadRequest, err.Error())
			return
		}
		if err := s.cfg.Registry.Register(m); err != nil {
			s.status(w, adminRegisterStatus(err), err.Error())
			return
		}
		version = m.Version
	} else {
		raw := r.URL.Query().Get("version")
		if raw == "" {
			s.status(w, http.StatusBadRequest, "empty body needs ?version=N")
			return
		}
		v, err := strconv.ParseUint(raw, 10, 32)
		if err != nil || v == 0 {
			s.status(w, http.StatusBadRequest, fmt.Sprintf("version %q is not a positive 32-bit integer", raw))
			return
		}
		version = uint32(v)
	}

	if mode == "register" {
		s.adminReply(w, http.StatusOK, AdminModelsReply{Version: version, Action: "registered"})
		return
	}

	// Canary and activate both need the decoded model in the pool's
	// version map before any slot can roll onto it.
	mdl, err := s.cfg.Registry.Model(version)
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, registry.ErrUnknownVersion) {
			code = http.StatusNotFound
		} else if errors.Is(err, registry.ErrCorrupt) || errors.Is(err, registry.ErrGoldenMismatch) || errors.Is(err, registry.ErrUnknownType) {
			code = http.StatusConflict
		}
		s.status(w, code, err.Error())
		return
	}
	if err := s.pool.RegisterModel(version, mdl.Detector()); err != nil {
		s.status(w, http.StatusConflict, err.Error())
		return
	}
	if mode == "activate" {
		if err := s.rollout.ForceActivate(version); err != nil {
			s.status(w, http.StatusConflict, err.Error())
			return
		}
		s.adminReply(w, http.StatusAccepted, AdminModelsReply{Version: version, Action: "activating"})
		return
	}
	if err := s.rollout.Begin(version); err != nil {
		s.status(w, http.StatusConflict, err.Error())
		return
	}
	s.adminReply(w, http.StatusAccepted, AdminModelsReply{Version: version, Action: "canarying"})
}

// adminRegisterStatus maps a registry.Register failure to its HTTP
// status: malformed or mistyped manifests are the caller's fault,
// version collisions are conflicts.
func adminRegisterStatus(err error) int {
	switch {
	case errors.Is(err, registry.ErrVersionExists):
		return http.StatusConflict
	case errors.Is(err, registry.ErrCorrupt),
		errors.Is(err, registry.ErrUnknownType),
		errors.Is(err, registry.ErrGoldenMismatch):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// adminReply writes a JSON success body.
func (s *Server) adminReply(w http.ResponseWriter, code int, reply AdminModelsReply) {
	s.metrics.Request(code)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(reply)
}
